#include <gtest/gtest.h>

#include "util/errors.hpp"
#include "util/hash.hpp"
#include "util/interner.hpp"

namespace aalwines {
namespace {

TEST(Interner, AssignsDenseIdsInOrder) {
    StringInterner interner;
    EXPECT_EQ(interner.intern("alpha"), 0u);
    EXPECT_EQ(interner.intern("beta"), 1u);
    EXPECT_EQ(interner.intern("gamma"), 2u);
    EXPECT_EQ(interner.size(), 3u);
}

TEST(Interner, ReturnsExistingIdForKnownString) {
    StringInterner interner;
    const auto id = interner.intern("router-0");
    EXPECT_EQ(interner.intern("router-0"), id);
    EXPECT_EQ(interner.size(), 1u);
}

TEST(Interner, RoundTripsThroughAt) {
    StringInterner interner;
    const auto id = interner.intern("et-1/3/0.2");
    EXPECT_EQ(interner.at(id), "et-1/3/0.2");
}

TEST(Interner, FindDoesNotIntern) {
    StringInterner interner;
    EXPECT_FALSE(interner.find("missing").has_value());
    EXPECT_TRUE(interner.empty());
    interner.intern("present");
    ASSERT_TRUE(interner.find("present").has_value());
    EXPECT_EQ(*interner.find("present"), 0u);
}

TEST(Interner, SurvivesManyInsertionsWithoutDanglingKeys) {
    // Short strings are SSO; a vector-backed interner would dangle on
    // reallocation.  Exercise enough growth to catch that class of bug.
    StringInterner interner;
    for (int i = 0; i < 10000; ++i)
        interner.intern("s" + std::to_string(i));
    for (int i = 0; i < 10000; ++i) {
        auto id = interner.find("s" + std::to_string(i));
        ASSERT_TRUE(id.has_value());
        EXPECT_EQ(interner.at(*id), "s" + std::to_string(i));
    }
}

TEST(Hash, CombineDiffersByOrder) {
    EXPECT_NE(hash_all(1, 2), hash_all(2, 1));
    EXPECT_EQ(hash_all(1, 2), hash_all(1, 2));
}

TEST(Errors, ParseErrorCarriesPosition) {
    const parse_error error("bad token", SourcePos{3, 7});
    EXPECT_EQ(error.where().line, 3u);
    EXPECT_EQ(error.where().column, 7u);
    EXPECT_NE(std::string(error.what()).find("line 3"), std::string::npos);
}

} // namespace
} // namespace aalwines
