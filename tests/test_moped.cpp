#include <gtest/gtest.h>

#include "pda_test_util.hpp"
#include "util/errors.hpp"
#include "verify/moped_format.hpp"

namespace aalwines::verify {
namespace {

using pda::testutil::random_pda;

TEST(MopedFormat, RoundTripsEveryRuleShape) {
    pda::Pda original(5);
    for (int i = 0; i < 3; ++i) original.add_state();
    original.set_symbol_class(0, 0);
    original.set_symbol_class(1, 1);
    original.set_symbol_class(2, 0);

    original.add_rule({0, 1, pda::PreSpec::concrete(2), pda::Rule::OpKind::Swap, 3,
                       pda::k_no_symbol, pda::Weight::one(), 7});
    original.add_rule({1, 2, pda::PreSpec::of_class(1), pda::Rule::OpKind::Pop,
                       pda::k_no_symbol, pda::k_no_symbol, pda::Weight::one(), 8});
    original.add_rule({2, 0, pda::PreSpec::any(), pda::Rule::OpKind::Push, 4,
                       pda::k_same_symbol, pda::Weight::one(), 9});
    original.add_rule({2, 1, pda::PreSpec::concrete(0), pda::Rule::OpKind::Push, 1, 2,
                       pda::Weight::one(), UINT32_MAX});

    const auto text = write_moped_format(original);
    const auto parsed = parse_moped_format(text);

    ASSERT_EQ(parsed.state_count(), original.state_count());
    ASSERT_EQ(parsed.rule_count(), original.rule_count());
    EXPECT_EQ(parsed.alphabet_size(), original.alphabet_size());
    for (pda::Symbol s = 0; s < 5; ++s)
        EXPECT_EQ(parsed.class_of(s), original.class_of(s));
    for (pda::RuleId id = 0; id < original.rule_count(); ++id) {
        const auto& a = original.rule(id);
        const auto& b = parsed.rule(id);
        EXPECT_EQ(a.from, b.from);
        EXPECT_EQ(a.to, b.to);
        EXPECT_EQ(a.pre, b.pre);
        EXPECT_EQ(a.op, b.op);
        EXPECT_EQ(a.label1, b.label1);
        EXPECT_EQ(a.label2, b.label2);
        EXPECT_EQ(a.tag, b.tag);
    }
}

TEST(MopedFormat, RandomPdasRoundTrip) {
    std::mt19937_64 rng(2024);
    for (int round = 0; round < 20; ++round) {
        const auto original = random_pda(rng, 5, 4, 12, false);
        const auto parsed = parse_moped_format(write_moped_format(original));
        ASSERT_EQ(parsed.rule_count(), original.rule_count());
        for (pda::RuleId id = 0; id < original.rule_count(); ++id) {
            const auto& a = original.rule(id);
            const auto& b = parsed.rule(id);
            EXPECT_TRUE(a.from == b.from && a.to == b.to && a.pre == b.pre &&
                        a.op == b.op && a.label1 == b.label1 && a.label2 == b.label2 &&
                        a.tag == b.tag)
                << "round " << round << " rule " << id;
        }
    }
}

TEST(MopedFormat, RejectsGarbage) {
    EXPECT_THROW(parse_moped_format("not a pds"), aalwines::parse_error);
    EXPECT_THROW(parse_moped_format("pds x y"), aalwines::parse_error);
    EXPECT_THROW(parse_moped_format("pds 1 1\nrule 0 q 0 swap 0 - 0 0"), aalwines::parse_error);
    EXPECT_THROW(parse_moped_format("pds 1 1\nrule 0 c 0 jump 0 - 0 0"), aalwines::parse_error);
    EXPECT_THROW(parse_moped_format("pds 1 1\nbanana"), aalwines::parse_error);
}

} // namespace
} // namespace aalwines::verify
