#include <gtest/gtest.h>

#include "model/trace.hpp"
#include "synthesis/dataplane.hpp"

namespace aalwines {
namespace {

/// The paper's traces σ0..σ3 (Figure 1c) over make_figure1_network, whose
/// links e0..e7 get ids 0..7 in construction order.
class Figure1Traces : public ::testing::Test {
protected:
    Network net = synthesis::make_figure1_network();

    Label label(LabelType type, std::string_view name) {
        const auto found = net.labels.find(type, name);
        EXPECT_TRUE(found.has_value()) << name;
        return *found;
    }
    Label ip1 = label(LabelType::Ip, "ip1");
    Label s10 = label(LabelType::MplsBos, "10");
    Label s11 = label(LabelType::MplsBos, "11");
    Label s20 = label(LabelType::MplsBos, "20");
    Label s21 = label(LabelType::MplsBos, "21");
    Label m30 = label(LabelType::Mpls, "30");
    Label s40 = label(LabelType::MplsBos, "40");
    Label s41 = label(LabelType::MplsBos, "41");
    Label s42 = label(LabelType::MplsBos, "42");
    Label s43 = label(LabelType::MplsBos, "43");
    Label s44 = label(LabelType::MplsBos, "44");

    Trace sigma0{{{0, {ip1}}, {1, {ip1, s20}}, {4, {ip1, s21}}, {7, {ip1}}}};
    Trace sigma1{{{0, {ip1}}, {2, {ip1, s10}}, {3, {ip1, s11}}, {7, {ip1}}}};
    Trace sigma2{{{0, {ip1}},
                  {1, {ip1, s20}},
                  {5, {ip1, s21, m30}},
                  {6, {ip1, s21}},
                  {7, {ip1}}}};
    Trace sigma3{{{0, {ip1, s40}},
                  {1, {ip1, s41}},
                  {5, {ip1, s42}},
                  {6, {ip1, s43}},
                  {7, {ip1, s44}}}};
};

TEST_F(Figure1Traces, Sigma0FeasibleWithoutFailures) {
    const auto result = check_feasibility(net, sigma0, 0);
    EXPECT_TRUE(result.feasible) << result.reason;
    EXPECT_TRUE(result.required_failures.empty());
    EXPECT_EQ(result.failures_total, 0u);
}

TEST_F(Figure1Traces, Sigma1FeasibleWithoutFailures) {
    const auto result = check_feasibility(net, sigma1, 0);
    EXPECT_TRUE(result.feasible) << result.reason;
}

TEST_F(Figure1Traces, Sigma2NeedsOneFailure) {
    const auto at_zero = check_feasibility(net, sigma2, 0);
    EXPECT_FALSE(at_zero.feasible);
    const auto at_one = check_feasibility(net, sigma2, 1);
    EXPECT_TRUE(at_one.feasible) << at_one.reason;
    EXPECT_EQ(at_one.required_failures, (std::vector<LinkId>{4})); // e4
    EXPECT_EQ(at_one.failures_total, 1u);
}

TEST_F(Figure1Traces, Sigma3FeasibleWithoutFailures) {
    const auto result = check_feasibility(net, sigma3, 0);
    EXPECT_TRUE(result.feasible) << result.reason;
    EXPECT_EQ(result.failures_total, 0u);
}

TEST_F(Figure1Traces, WrongRewriteIsInfeasible) {
    Trace bogus = sigma0;
    bogus.entries[1].header = {ip1, s21}; // v0 pushes s20, not s21
    const auto result = check_feasibility(net, bogus, 8);
    EXPECT_FALSE(result.feasible);
    EXPECT_NE(result.reason.find("no rule"), std::string::npos);
}

TEST_F(Figure1Traces, InvalidHeaderIsInfeasible) {
    Trace bogus = sigma0;
    bogus.entries[0].header = {s20}; // no IP bottom
    EXPECT_FALSE(check_feasibility(net, bogus, 8).feasible);
}

TEST_F(Figure1Traces, EmptyTraceIsInfeasible) {
    EXPECT_FALSE(check_feasibility(net, Trace{}, 8).feasible);
}

TEST_F(Figure1Traces, SingleEntryTraceIsTriviallyFeasible) {
    const Trace only_arrival{{{0, {ip1}}}};
    EXPECT_TRUE(check_feasibility(net, only_arrival, 0).feasible);
}

TEST_F(Figure1Traces, DisplayTraceMentionsLinksAndHeaders) {
    const auto text = display_trace(net, sigma2);
    EXPECT_NE(text.find("30 o s21 o ip1"), std::string::npos);
    EXPECT_NE(text.find("v2"), std::string::npos);
}

/// A trace must not use a link it simultaneously requires to fail.
TEST(TraceFeasibility, UsedLinkInFailureSetIsRejected) {
    Network net;
    net.name = "conflict";
    auto& topology = net.topology;
    const auto a = topology.add_router("A");
    const auto b = topology.add_router("B");
    const auto c = topology.add_router("C");
    auto link = [&](RouterId s, std::string_view si, RouterId t, std::string_view ti) {
        return topology.add_link(s, topology.add_interface(s, si), t,
                                 topology.add_interface(t, ti));
    };
    const auto x = link(a, "x", b, "xi"); // A -> B
    const auto y = link(b, "y", c, "yi"); // B -> C primary
    const auto z = link(b, "z", c, "zi"); // B -> C backup
    const auto w = link(c, "w", b, "wi"); // C -> B return

    const auto ell = net.labels.add(LabelType::MplsBos, "l");
    const auto ip = net.labels.add(LabelType::Ip, "ip");
    (void)ip;
    // B: primary over y, backup over z (requires y failed).
    net.routing.add_rule(x, ell, 1, y, {});
    net.routing.add_rule(x, ell, 2, z, {});
    // C bounces the packet back to B, and B then forwards over y.
    net.routing.add_rule(z, ell, 1, w, {});
    net.routing.add_rule(w, ell, 1, y, {});
    net.routing.validate(topology);

    const Header h{ip, ell};
    // Uses z (requires y ∈ F), then later uses y itself: contradiction.
    const Trace trace{{{x, h}, {z, h}, {w, h}, {y, h}}};
    const auto result = check_feasibility(net, trace, 8);
    EXPECT_FALSE(result.feasible);
    EXPECT_NE(result.reason.find("both used and required to fail"), std::string::npos);

    // The shorter prefix that stops before reusing y is fine with k >= 1.
    const Trace prefix{{{x, h}, {z, h}, {w, h}}};
    EXPECT_TRUE(check_feasibility(net, prefix, 1).feasible);
    EXPECT_FALSE(check_feasibility(net, prefix, 0).feasible);
}

} // namespace
} // namespace aalwines
