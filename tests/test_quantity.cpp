#include <gtest/gtest.h>

#include "model/quantity.hpp"
#include "synthesis/dataplane.hpp"

namespace aalwines {
namespace {

class QuantityFixture : public ::testing::Test {
protected:
    Network net = synthesis::make_figure1_network();

    Label get(LabelType type, std::string_view name) {
        return *net.labels.find(type, name);
    }
    Label ip1 = get(LabelType::Ip, "ip1");
    Label s10 = get(LabelType::MplsBos, "10");
    Label s11 = get(LabelType::MplsBos, "11");
    Label s20 = get(LabelType::MplsBos, "20");
    Label s21 = get(LabelType::MplsBos, "21");
    Label m30 = get(LabelType::Mpls, "30");
    Label s40 = get(LabelType::MplsBos, "40");
    Label s41 = get(LabelType::MplsBos, "41");
    Label s42 = get(LabelType::MplsBos, "42");
    Label s43 = get(LabelType::MplsBos, "43");
    Label s44 = get(LabelType::MplsBos, "44");

    Trace sigma0{{{0, {ip1}}, {1, {ip1, s20}}, {4, {ip1, s21}}, {7, {ip1}}}};
    Trace sigma1{{{0, {ip1}}, {2, {ip1, s10}}, {3, {ip1, s11}}, {7, {ip1}}}};
    Trace sigma2{{{0, {ip1}},
                  {1, {ip1, s20}},
                  {5, {ip1, s21, m30}},
                  {6, {ip1, s21}},
                  {7, {ip1}}}};
    Trace sigma3{{{0, {ip1, s40}},
                  {1, {ip1, s41}},
                  {5, {ip1, s42}},
                  {6, {ip1, s43}},
                  {7, {ip1, s44}}}};
};

// Paper §3: Hops(σ0) = Links(σ0) = 4, Hops(σ3) = Links(σ3) = 5,
// Failures(σ2) = 1, Failures(σ3) = 0, Tunnels(σ1) = 1, Tunnels(σ2) = 2,
// Tunnels(σ3) = 0.
TEST_F(QuantityFixture, PaperValues) {
    EXPECT_EQ(evaluate_atomic(net, sigma0, Quantity::Links), 4u);
    EXPECT_EQ(evaluate_atomic(net, sigma0, Quantity::Hops), 4u);
    EXPECT_EQ(evaluate_atomic(net, sigma3, Quantity::Links), 5u);
    EXPECT_EQ(evaluate_atomic(net, sigma3, Quantity::Hops), 5u);
    EXPECT_EQ(evaluate_atomic(net, sigma2, Quantity::Failures), 1u);
    EXPECT_EQ(evaluate_atomic(net, sigma3, Quantity::Failures), 0u);
    EXPECT_EQ(evaluate_atomic(net, sigma1, Quantity::Tunnels), 1u);
    EXPECT_EQ(evaluate_atomic(net, sigma2, Quantity::Tunnels), 2u);
    EXPECT_EQ(evaluate_atomic(net, sigma3, Quantity::Tunnels), 0u);
}

// Paper §3 minimum-witness example: for (Hops, Failures + 3·Tunnels),
// σ2 evaluates to (5, 7) and σ3 to (5, 0).
TEST_F(QuantityFixture, PaperMinimisationVector) {
    const auto expr = parse_weight_expression("hops, failures + 3*tunnels");
    EXPECT_EQ(evaluate(net, sigma2, expr), (std::vector<std::uint64_t>{5, 7}));
    EXPECT_EQ(evaluate(net, sigma3, expr), (std::vector<std::uint64_t>{5, 0}));
}

TEST_F(QuantityFixture, DistanceSumsLinkDistances) {
    // Figure-1 links default to distance 1 each.
    EXPECT_EQ(evaluate_atomic(net, sigma0, Quantity::Distance), 4u);
    net.topology.set_distance(1, 100);
    EXPECT_EQ(evaluate_atomic(net, sigma0, Quantity::Distance), 103u);
}

TEST_F(QuantityFixture, StepAndInitialWeightsDecomposeTraceValue) {
    // Sum of initial weight + per-step weights equals the whole-trace value,
    // for each atomic quantity of σ2 (the trace with a failover push).
    const std::vector<Quantity> quantities{Quantity::Links, Quantity::Hops,
                                           Quantity::Distance, Quantity::Tunnels,
                                           Quantity::Failures};
    // Per-step (out_link, ops, local failures) of σ2's forwarding decisions.
    struct Step {
        LinkId out;
        std::vector<Op> ops;
        std::uint64_t fails;
    };
    const std::vector<Step> steps{
        {1, {Op::push(s20)}, 0},
        {5, {Op::swap(s21), Op::push(m30)}, 1},
        {6, {Op::pop()}, 0},
        {7, {Op::pop()}, 0},
    };
    for (const auto quantity : quantities) {
        LinearExpr expr{{{1, quantity}}};
        auto total = initial_weight(net, expr, 0);
        for (const auto& step : steps)
            total += step_weight(net, expr, step.out, step.ops, step.fails);
        EXPECT_EQ(total, evaluate_atomic(net, sigma2, quantity))
            << to_string(quantity);
    }
}

TEST(WeightParser, ParsesVectorsAndCoefficients) {
    const auto expr = parse_weight_expression(" hops , failures + 3*tunnels, 2 * distance ");
    ASSERT_EQ(expr.size(), 3u);
    EXPECT_EQ(expr.priorities[0].terms.size(), 1u);
    EXPECT_EQ(expr.priorities[0].terms[0].quantity, Quantity::Hops);
    EXPECT_EQ(expr.priorities[1].terms.size(), 2u);
    EXPECT_EQ(expr.priorities[1].terms[1].coefficient, 3u);
    EXPECT_EQ(expr.priorities[1].terms[1].quantity, Quantity::Tunnels);
    EXPECT_EQ(expr.priorities[2].terms[0].coefficient, 2u);
}

TEST(WeightParser, AcceptsTrailingCoefficientAndLatencyAlias) {
    const auto expr = parse_weight_expression("links*4 + latency");
    ASSERT_EQ(expr.size(), 1u);
    EXPECT_EQ(expr.priorities[0].terms[0].coefficient, 4u);
    EXPECT_EQ(expr.priorities[0].terms[1].quantity, Quantity::Distance);
}

TEST(WeightParser, RejectsGarbage) {
    EXPECT_THROW(parse_weight_expression(""), parse_error);
    EXPECT_THROW(parse_weight_expression("speed"), parse_error);
    EXPECT_THROW(parse_weight_expression("hops +"), parse_error);
    EXPECT_THROW(parse_weight_expression("3 hops"), parse_error);
}

TEST(WeightParser, RoundTripsThroughToString) {
    const auto expr = parse_weight_expression("hops, failures + 3*tunnels");
    EXPECT_EQ(to_string(expr), "hops, failures + 3*tunnels");
    EXPECT_EQ(parse_weight_expression(to_string(expr)), expr);
}

TEST(Weights, WeightOfBuildsSingleton) {
    const auto expr = weight_of(Quantity::Failures);
    ASSERT_EQ(expr.size(), 1u);
    EXPECT_EQ(expr.priorities[0].terms[0].quantity, Quantity::Failures);
}

} // namespace
} // namespace aalwines
