// The sweep engine (src/verify/sweep.*): grid planning, the template
// instantiation helper, and the sweep ≡ one-by-one equivalence battery —
// every cell must be byte-identical (canonical result JSON, witness traces
// included) to an independent verify_batch run of the same query on the
// same scenario network, across lazy/eager translation and solver-thread
// counts.  AALWINES_SWEEP_BATTERY scales the battery (nightly runs it on a
// NORDUnet-like instance).

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "delta/delta.hpp"
#include "io/results_json.hpp"
#include "json/json.hpp"
#include "model/quantity.hpp"
#include "synthesis/dataplane.hpp"
#include "synthesis/networks.hpp"
#include "synthesis/topologies.hpp"
#include "util/errors.hpp"
#include "verify/batch.hpp"
#include "verify/sweep.hpp"

namespace aalwines::verify {
namespace {

/// The byte-identity form: result JSON without stats, wall-clock stripped.
std::string canonical(const Network& network, const std::string& query_text,
                      const VerifyResult& result) {
    auto value = io::result_to_json_value(network, query_text, result, false);
    value.as_object().erase("seconds");
    return json::write(value, 0);
}

/// The scenario snapshot an independent verification would run against —
/// the same delta pipeline the sweep uses internally.
std::shared_ptr<const Network> scenario_network(const Network& base,
                                                const SweepScenario& scenario) {
    if (scenario.failed_links.empty())
        return std::shared_ptr<const Network>(std::shared_ptr<const Network>{}, &base);
    delta::NetworkDelta delta;
    for (const auto& [router, interface] : scenario.failed_links) {
        delta::DeltaOp op;
        op.kind = delta::DeltaOp::Kind::LinkState;
        op.router = router;
        op.out_interface = interface;
        op.up = false;
        delta.ops.push_back(std::move(op));
    }
    return delta::apply_delta(base, delta).network;
}

/// Every cell of `sweep` must match a one-by-one verify_batch run of the
/// same query on the same scenario network with the same options.
void expect_equivalent(const Network& base, const SweepSpec& spec,
                       const SweepResult& sweep, const VerifyOptions& options) {
    const auto& scenarios = spec.scenarios;
    std::vector<std::shared_ptr<const Network>> nets;
    nets.reserve(scenarios.size());
    for (const auto& scenario : scenarios) nets.push_back(scenario_network(base, scenario));
    for (const auto& cell : sweep.cells) {
        ASSERT_TRUE(cell.error.empty())
            << cell.query_text << " [scenario " << cell.scenario << "]: " << cell.error;
        const auto& net = *nets[cell.scenario];
        const auto reference = verify_batch(net, {cell.query_text}, options, 1);
        ASSERT_EQ(reference.size(), 1u);
        ASSERT_TRUE(reference[0].error.empty()) << reference[0].error;
        EXPECT_EQ(canonical(net, cell.query_text, cell.result),
                  canonical(net, cell.query_text, reference[0].result))
            << cell.query_text << " [scenario " << cell.scenario << ", "
            << to_string(cell.path) << "]";
    }
}

std::size_t battery_scale() {
    if (const char* env = std::getenv("AALWINES_SWEEP_BATTERY")) {
        const auto scale = std::atoi(env);
        if (scale > 0) return static_cast<std::size_t>(scale);
    }
    return 0; // the deep battery only runs when asked for
}

TEST(Sweep, InstantiateTemplate) {
    EXPECT_EQ(instantiate_template("<ip> [.#{src}] .* [{dst}#.] <ip> {k}", "v0", "v3", 2),
              "<ip> [.#v0] .* [v3#.] <ip> 2");
    // Every occurrence substitutes; absent placeholders are fine.
    EXPECT_EQ(instantiate_template("{src}{src}", "a", "b", 0), "aa");
    EXPECT_EQ(instantiate_template("<ip> .* <ip> 1", "a", "b", 9), "<ip> .* <ip> 1");
}

TEST(Sweep, SingleFailureScenarios) {
    const auto net = synthesis::make_figure1_network();
    const auto scenarios = make_single_failure_scenarios(net);
    ASSERT_FALSE(scenarios.empty());
    EXPECT_EQ(scenarios[0].name, "baseline");
    EXPECT_TRUE(scenarios[0].failed_links.empty());
    EXPECT_EQ(scenarios.size(), net.topology.link_count() + 1);
    for (std::size_t s = 1; s < scenarios.size(); ++s)
        EXPECT_EQ(scenarios[s].failed_links.size(), 1u);
    // The cap bounds failure scenarios, not the baseline.
    EXPECT_EQ(make_single_failure_scenarios(net, 3).size(), 4u);
}

TEST(Sweep, GridShapeAndStats) {
    const auto net = synthesis::make_figure1_network();
    SweepSpec spec;
    spec.query_template = "<ip> [.#{src}] .* [{dst}#.] <ip> {k}";
    spec.endpoint_pairs = {{"v0", "v3"}, {"v0", "v2"}};
    spec.failure_budgets = {0, 1};
    spec.scenarios = make_single_failure_scenarios(net, 4);

    const auto sweep = run_sweep(net, spec, {}, 2);
    const auto n_cells =
        spec.endpoint_pairs.size() * spec.failure_budgets.size() * spec.scenarios.size();
    ASSERT_EQ(sweep.cells.size(), n_cells);
    EXPECT_EQ(sweep.stats.cells, n_cells);
    EXPECT_EQ(sweep.stats.errors, 0u);
    // One NFA compile per endpoint pair, not per cell.
    EXPECT_EQ(sweep.stats.nfa_compiles, spec.endpoint_pairs.size());
    // Every cell is accounted to exactly one sharing tier.
    EXPECT_EQ(sweep.stats.cold_saturations + sweep.stats.reused_frontiers +
                  sweep.stats.shared_saturations,
              n_cells);
    // The default (dual, lazy) engine is warm-capable: each chain saturates
    // cold exactly once, every later scenario rebases or carries over.
    EXPECT_EQ(sweep.stats.cold_saturations,
              spec.endpoint_pairs.size() * spec.failure_budgets.size());
    // Cell indexes follow the documented pair-major layout.
    for (std::size_t i = 0; i < sweep.cells.size(); ++i) {
        const auto& cell = sweep.cells[i];
        const auto expected =
            (cell.pair * spec.failure_budgets.size() + cell.budget) *
                spec.scenarios.size() +
            cell.scenario;
        EXPECT_EQ(i, expected);
        EXPECT_EQ(cell.query_text,
                  instantiate_template(spec.query_template,
                                       spec.endpoint_pairs[cell.pair].first,
                                       spec.endpoint_pairs[cell.pair].second,
                                       spec.failure_budgets[cell.budget]));
    }
}

TEST(Sweep, MatchesOneByOneDualLazy) {
    const auto net = synthesis::make_figure1_network();
    SweepSpec spec;
    spec.query_template = "<ip> [.#{src}] .* [{dst}#.] <ip> {k}";
    spec.endpoint_pairs = {{"v0", "v3"}, {"v1", "v3"}};
    spec.failure_budgets = {0, 1};
    spec.scenarios = make_single_failure_scenarios(net);

    const auto sweep = run_sweep(net, spec, {}, 2);
    expect_equivalent(net, spec, sweep, {});
}

TEST(Sweep, MatchesOneByOneAcrossModesAndThreads) {
    const auto net = synthesis::build_dataplane(synthesis::make_ring(6),
                                                {.service_chains = 2, .seed = 11});
    const auto& topology = net.network.topology;
    SweepSpec spec;
    spec.query_template = "<ip> [.#{src}] .* [{dst}#.] <ip> {k}";
    spec.endpoint_pairs = {{topology.router_name(0), topology.router_name(3)},
                           {topology.router_name(1), topology.router_name(4)}};
    spec.failure_budgets = {0, 1};
    spec.scenarios = make_single_failure_scenarios(net.network, 5);

    const auto weights = parse_weight_expression("hops");
    for (const auto translation : {TranslationMode::Lazy, TranslationMode::Eager}) {
        for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
            VerifyOptions options;
            options.engine = EngineKind::Weighted;
            options.weights = &weights;
            options.translation = translation;
            options.solver_threads = threads;
            const auto sweep = run_sweep(net.network, spec, options, 2);
            SCOPED_TRACE("translation=" + std::string(to_string(translation)) +
                         " threads=" + std::to_string(threads));
            expect_equivalent(net.network, spec, sweep, options);
            // Eager translations cannot rebase: every cell saturates cold.
            if (translation == TranslationMode::Eager)
                EXPECT_EQ(sweep.stats.cold_saturations, sweep.stats.cells);
        }
    }
}

TEST(Sweep, ErrorsAreConfinedToTheirChain) {
    const auto net = synthesis::make_figure1_network();
    SweepSpec spec;
    spec.query_template = "<ip> [.#{src}] .* [{dst}#.] <ip> {k}";
    spec.endpoint_pairs = {{"v0", "v3"}, {"ghost", "v3"}};
    spec.failure_budgets = {0};
    spec.scenarios = make_single_failure_scenarios(net, 2);

    const auto sweep = run_sweep(net, spec, {}, 1);
    for (const auto& cell : sweep.cells) {
        if (cell.pair == 1) {
            EXPECT_FALSE(cell.error.empty());
            EXPECT_NE(cell.error.find("ghost"), std::string::npos);
        } else {
            EXPECT_TRUE(cell.error.empty()) << cell.error;
        }
    }
    EXPECT_EQ(sweep.stats.errors, spec.scenarios.size());
    // Only the good pair's template compiled.
    EXPECT_EQ(sweep.stats.nfa_compiles, 1u);
}

TEST(Sweep, UnknownScenarioLinkThrowsBeforeRunning) {
    const auto net = synthesis::make_figure1_network();
    SweepSpec spec;
    spec.query_template = "<ip> [.#v0] .* [v3#.] <ip> 0";
    spec.scenarios.push_back({"bad", {{"ghost", "eth0"}}});
    EXPECT_THROW((void)run_sweep(net, spec, {}, 1), model_error);
    SweepSpec empty;
    EXPECT_THROW((void)run_sweep(net, empty, {}, 1), model_error);
}

TEST(Sweep, EmptyAxesCollapseToOneCell) {
    const auto net = synthesis::make_figure1_network();
    SweepSpec spec;
    spec.query_template = "<ip> [.#v0] .* [v3#.] <ip> 0";
    const auto sweep = run_sweep(net, spec, {}, 1);
    ASSERT_EQ(sweep.cells.size(), 1u);
    EXPECT_TRUE(sweep.cells[0].error.empty()) << sweep.cells[0].error;
    EXPECT_EQ(sweep.cells[0].result.answer, Answer::Yes);
    EXPECT_EQ(sweep.stats.cold_saturations, 1u);
}

TEST(Sweep, NightlyBattery) {
    const auto scale = battery_scale();
    if (scale == 0) GTEST_SKIP() << "set AALWINES_SWEEP_BATTERY=N to run";
    const auto net = synthesis::make_nordunet_like(40, 1);
    const auto& topology = net.network.topology;
    SweepSpec spec;
    spec.query_template = "<ip> [.#{src}] .* [{dst}#.] <ip> {k}";
    for (std::size_t i = 0; i + 1 < net.lsp_pairs.size() && spec.endpoint_pairs.size() < 2 * scale;
         i += 2)
        spec.endpoint_pairs.emplace_back(topology.router_name(net.lsp_pairs[i].first),
                                         topology.router_name(net.lsp_pairs[i].second));
    spec.failure_budgets = {0, 1};
    spec.scenarios = make_single_failure_scenarios(net.network, 4 * scale);

    for (const auto translation : {TranslationMode::Lazy, TranslationMode::Eager}) {
        for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
            VerifyOptions options;
            options.translation = translation;
            options.solver_threads = threads;
            const auto sweep = run_sweep(net.network, spec, options, 4);
            SCOPED_TRACE("translation=" + std::string(to_string(translation)) +
                         " threads=" + std::to_string(threads));
            expect_equivalent(net.network, spec, sweep, options);
        }
    }
}

} // namespace
} // namespace aalwines::verify
