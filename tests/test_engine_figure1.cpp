// Integration tests: the paper's running example (Figure 1) end to end.
// Expected answers come from Figure 1d and the §3 minimum-witness example.

#include <gtest/gtest.h>

#include <set>

#include "model/quantity.hpp"
#include "synthesis/dataplane.hpp"
#include "verify/engine.hpp"

namespace aalwines::verify {
namespace {

class Figure1Engine : public ::testing::Test {
protected:
    Network net = synthesis::make_figure1_network();

    VerifyResult run(const std::string& text, VerifyOptions options = {}) {
        return verify(net, query::parse_query(text, net), options);
    }
};

TEST_F(Figure1Engine, Phi0IsSatisfied) {
    const auto result = run("<ip> [.#v0] .* [v3#.] <ip> 0");
    EXPECT_EQ(result.answer, Answer::Yes);
    ASSERT_TRUE(result.trace.has_value());
    const auto feasibility = check_feasibility(net, *result.trace, 0);
    EXPECT_TRUE(feasibility.feasible) << feasibility.reason;
    EXPECT_EQ(result.trace->size(), 4u); // σ0 or σ1
}

TEST_F(Figure1Engine, Phi1IsSatisfiedAvoidingE4) {
    const auto result = run("<ip> [.#v0] [^v2#v3]* [v3#.] <ip> 2");
    EXPECT_EQ(result.answer, Answer::Yes);
    ASSERT_TRUE(result.trace.has_value());
    for (const auto& entry : result.trace->entries)
        EXPECT_NE(entry.link, 4u) << "witness must avoid e4";
}

TEST_F(Figure1Engine, Phi2ServiceRoutingIsSatisfied) {
    const auto result = run("<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0");
    EXPECT_EQ(result.answer, Answer::Yes);
    ASSERT_TRUE(result.trace.has_value());
    // σ3: e0 e1 e5 e6 e7.
    std::vector<LinkId> links;
    for (const auto& entry : result.trace->entries) links.push_back(entry.link);
    EXPECT_EQ(links, (std::vector<LinkId>{0, 1, 5, 6, 7}));
}

TEST_F(Figure1Engine, Phi3TransparencyHolds) {
    // No trace leaks an extra MPLS label on top of the service label,
    // even under one failure: conclusive NO.
    const auto result = run("<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1");
    EXPECT_EQ(result.answer, Answer::No);
    EXPECT_FALSE(result.trace.has_value());
}

TEST_F(Figure1Engine, Phi4SatisfiedWithOneFailure) {
    const auto result = run("<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1");
    EXPECT_EQ(result.answer, Answer::Yes);
    ASSERT_TRUE(result.trace.has_value());
    EXPECT_GE(result.trace->size(), 5u);
}

TEST_F(Figure1Engine, Phi4AtZeroFailuresOnlySigma3) {
    const auto result = run("<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 0");
    EXPECT_EQ(result.answer, Answer::Yes);
    ASSERT_TRUE(result.trace.has_value());
    // Only σ3 works without failures: it starts with the s40 header.
    EXPECT_EQ(result.trace->entries.front().header.size(), 2u);
}

TEST_F(Figure1Engine, WeightedMinimumWitnessIsSigma3) {
    // §3: minimise (Hops, Failures + 3*Tunnels) over φ4's witnesses → σ3
    // with value (5, 0), beating σ2's (5, 7).
    const auto weights = parse_weight_expression("hops, failures + 3*tunnels");
    VerifyOptions options;
    options.engine = EngineKind::Weighted;
    options.weights = &weights;
    const auto result =
        run("<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1", options);
    EXPECT_EQ(result.answer, Answer::Yes);
    EXPECT_EQ(result.weight, (std::vector<std::uint64_t>{5, 0}));
    ASSERT_TRUE(result.trace.has_value());
    EXPECT_EQ(evaluate(net, *result.trace, weights), (std::vector<std::uint64_t>{5, 0}));
}

TEST_F(Figure1Engine, WeightedFailuresFindsZeroFailureWitness) {
    const auto weights = weight_of(Quantity::Failures);
    VerifyOptions options;
    options.engine = EngineKind::Weighted;
    options.weights = &weights;
    const auto result = run("<ip> [.#v0] .* [v3#.] <ip> 2", options);
    EXPECT_EQ(result.answer, Answer::Yes);
    EXPECT_EQ(result.weight, (std::vector<std::uint64_t>{0}));
}

TEST_F(Figure1Engine, ForcedFailoverPathNeedsBudget) {
    // The only way through v4 with an IP packet is the protection tunnel,
    // which needs e4 to fail.
    const auto no_budget = run("<ip> [.#v0] .* [.#v4] .* [v3#.] <ip> 0");
    EXPECT_EQ(no_budget.answer, Answer::No);
    const auto with_budget = run("<ip> [.#v0] .* [.#v4] .* [v3#.] <ip> 1");
    EXPECT_EQ(with_budget.answer, Answer::Yes);
    ASSERT_TRUE(with_budget.trace.has_value());
    EXPECT_TRUE(check_feasibility(net, *with_budget.trace, 1).feasible);
}

TEST_F(Figure1Engine, UnsatisfiableHeaderIsConclusiveNo) {
    // There is no rule for label s44 inside the network: a trace cannot
    // START with it at v0 and leave at v3.
    const auto result = run("<s44 ip> [.#v0] .+ [v3#.] <smpls ip> 2");
    EXPECT_EQ(result.answer, Answer::No);
}

TEST_F(Figure1Engine, MopedEngineAgreesOnAllFigureQueries) {
    const std::vector<std::pair<std::string, Answer>> cases = {
        {"<ip> [.#v0] .* [v3#.] <ip> 0", Answer::Yes},
        {"<ip> [.#v0] [^v2#v3]* [v3#.] <ip> 2", Answer::Yes},
        {"<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0", Answer::Yes},
        {"<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1", Answer::No},
        {"<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1", Answer::Yes},
        {"<ip> [.#v0] .* [.#v4] .* [v3#.] <ip> 0", Answer::No},
        {"<ip> [.#v0] .* [.#v4] .* [v3#.] <ip> 1", Answer::Yes},
    };
    for (const auto& [text, expected] : cases) {
        VerifyOptions options;
        options.engine = EngineKind::Moped;
        const auto result = run(text, options);
        EXPECT_EQ(result.answer, expected) << "moped on " << text;
        if (expected == Answer::Yes) {
            ASSERT_TRUE(result.trace.has_value()) << text;
            const auto query = query::parse_query(text, net);
            EXPECT_TRUE(check_feasibility(net, *result.trace, query.max_failures).feasible)
                << text;
        }
    }
}

TEST_F(Figure1Engine, MopedRejectsWeights) {
    const auto weights = weight_of(Quantity::Hops);
    VerifyOptions options;
    options.engine = EngineKind::Moped;
    options.weights = &weights;
    EXPECT_THROW(run("<ip> .* <ip> 0", options), model_error);
}

TEST_F(Figure1Engine, WeightedEngineRequiresWeights) {
    VerifyOptions options;
    options.engine = EngineKind::Weighted;
    EXPECT_THROW(run("<ip> .* <ip> 0", options), model_error);
}

TEST_F(Figure1Engine, StatsArePopulated) {
    const auto result = run("<ip> [.#v0] .* [v3#.] <ip> 0");
    EXPECT_TRUE(result.stats.over.ran);
    EXPECT_GT(result.stats.over.pda_rules, 0u);
    EXPECT_GT(result.stats.over.saturation_iterations, 0u);
    EXPECT_GE(result.stats.total_seconds, 0.0);
}

TEST_F(Figure1Engine, NoTraceOptionSkipsWitness) {
    VerifyOptions options;
    options.build_trace = false;
    const auto result = run("<ip> [.#v0] .* [v3#.] <ip> 0", options);
    EXPECT_EQ(result.answer, Answer::Yes);
    EXPECT_FALSE(result.trace.has_value());
}


/// A network where the over-approximation is satisfiable but every real
/// trace is contradictory: B's backup route (through z) requires link y to
/// have failed, yet the only continuation later uses y itself.
Network conflict_network() {
    Network net;
    net.name = "conflict";
    auto& topology = net.topology;
    const auto a = topology.add_router("A");
    const auto b = topology.add_router("B");
    const auto c = topology.add_router("C");
    const auto d = topology.add_router("D");
    auto link = [&](RouterId s, std::string_view si, RouterId t, std::string_view ti) {
        return topology.add_link(s, topology.add_interface(s, si), t,
                                 topology.add_interface(t, ti));
    };
    const auto x = link(a, "x", b, "xi"); // A -> B (entry)
    const auto y = link(b, "y", c, "yi"); // B -> C primary
    const auto z = link(b, "z", c, "zi"); // B -> C backup
    const auto w = link(c, "w", b, "wi"); // C -> B return
    const auto out = link(c, "o", d, "oi"); // C -> D (exit)
    const auto ell = net.labels.add(LabelType::MplsBos, "l");
    const auto ip = net.labels.add(LabelType::Ip, "ip");
    (void)ip;
    net.routing.add_rule(x, ell, 1, y, {});
    net.routing.add_rule(x, ell, 2, z, {});
    net.routing.add_rule(z, ell, 1, w, {}); // backup bounces via C -> B
    net.routing.add_rule(w, ell, 1, y, {}); // ...and B then insists on y
    net.routing.add_rule(y, ell, 1, out, {});
    net.routing.validate(topology);
    return net;
}

TEST_F(Figure1Engine, OverModeTrustsOverApproximation) {
    // Reaching D via the backup link z needs y failed AND used: DUAL is
    // inconclusive (over-sat, under finds no valid trace), OVER reports a
    // flagged YES.
    const auto conflict = conflict_network();
    const auto text = "<smpls ip> [A#B] [B#C.zi] .* [C#D] <smpls ip> 1";
    const auto dual =
        verify(conflict, query::parse_query(text, conflict), {});
    EXPECT_EQ(dual.answer, Answer::Inconclusive);
    const auto over = verify(
        conflict, query::parse_query(text + std::string(" OVER"), conflict), {});
    EXPECT_EQ(over.answer, Answer::Yes);
    EXPECT_NE(over.note.find("spurious"), std::string::npos);

    // When the over-approximation itself is empty, OVER still answers NO.
    const auto no = run("<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1 OVER");
    EXPECT_EQ(no.answer, Answer::No);
}

TEST_F(Figure1Engine, UnderModeOnlyTrustsYes) {
    const auto yes = run("<ip> [.#v0] .* [.#v4] .* [v3#.] <ip> 1 UNDER");
    EXPECT_EQ(yes.answer, Answer::Yes);
    ASSERT_TRUE(yes.trace.has_value());
    // Unsatisfiable query: UNDER cannot conclude NO.
    const auto maybe = run("<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1 UNDER");
    EXPECT_EQ(maybe.answer, Answer::Inconclusive);
}


TEST_F(Figure1Engine, EnumeratesAlternativeWitnesses) {
    // φ0 has exactly two witnesses: σ0 (via v2) and σ1 (via v1).
    VerifyOptions options;
    options.max_witnesses = 5;
    const auto result = run("<ip> [.#v0] .* [v3#.] <ip> 0", options);
    ASSERT_EQ(result.answer, Answer::Yes);
    ASSERT_EQ(result.witnesses.size(), 2u);
    EXPECT_NE(result.witnesses[0], result.witnesses[1]);
    std::set<LinkId> second_links;
    for (const auto& trace : result.witnesses) {
        EXPECT_TRUE(check_feasibility(net, trace, 0).feasible);
        EXPECT_EQ(trace.size(), 4u);
        second_links.insert(trace.entries[1].link);
    }
    EXPECT_EQ(second_links, (std::set<LinkId>{1, 2})); // e1 and e2
    ASSERT_TRUE(result.trace.has_value());
    EXPECT_EQ(*result.trace, result.witnesses.front());
}

TEST_F(Figure1Engine, WeightedWitnessesComeInWeightOrder) {
    // φ4 at k=1 has witnesses σ3 (5,0) and σ2 (5,7): the weighted engine
    // must list σ3 first.
    const auto weights = parse_weight_expression("hops, failures + 3*tunnels");
    VerifyOptions options;
    options.engine = EngineKind::Weighted;
    options.weights = &weights;
    options.max_witnesses = 4;
    const auto result =
        run("<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1", options);
    ASSERT_EQ(result.answer, Answer::Yes);
    ASSERT_GE(result.witnesses.size(), 2u);
    EXPECT_EQ(evaluate(net, result.witnesses[0], weights),
              (std::vector<std::uint64_t>{5, 0})); // σ3
    EXPECT_LE(evaluate(net, result.witnesses[0], weights),
              evaluate(net, result.witnesses[1], weights));
    bool found_sigma2 = false;
    for (const auto& trace : result.witnesses)
        if (evaluate(net, trace, weights) == (std::vector<std::uint64_t>{5, 7}))
            found_sigma2 = true;
    EXPECT_TRUE(found_sigma2);
}

TEST_F(Figure1Engine, SingleWitnessStillPopulatesWitnesses) {
    const auto result = run("<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0");
    ASSERT_EQ(result.answer, Answer::Yes);
    ASSERT_EQ(result.witnesses.size(), 1u);
    EXPECT_EQ(result.witnesses.front(), *result.trace);
}

} // namespace
} // namespace aalwines::verify
