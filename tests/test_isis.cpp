#include <gtest/gtest.h>

#include "io/isis.hpp"
#include "verify/engine.hpp"

namespace aalwines::io {
namespace {

TEST(IsisMapping, ParsesPaperExample) {
    const auto entries = parse_isis_mapping(
        "192.0.0.1,R1:R1-adj.xml:R1-route.xml:R1-pfe.xml\n"
        "192.0.0.2,10.10.0.2,E1\n");
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].aliases,
              (std::vector<std::string>{"192.0.0.1", "R1"}));
    EXPECT_EQ(entries[0].adjacency_file, "R1-adj.xml");
    EXPECT_EQ(entries[0].route_file, "R1-route.xml");
    EXPECT_EQ(entries[0].pfe_file, "R1-pfe.xml");
    EXPECT_FALSE(entries[0].is_edge());
    EXPECT_TRUE(entries[1].is_edge());
    EXPECT_EQ(entries[1].aliases,
              (std::vector<std::string>{"192.0.0.2", "10.10.0.2", "E1"}));
}

TEST(IsisMapping, SkipsCommentsAndBlankLines) {
    const auto entries = parse_isis_mapping("# comment\n\nE1\n  \n# more\nE2\n");
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].aliases.front(), "E1");
}

TEST(IsisMapping, RejectsMalformedLines) {
    EXPECT_THROW(parse_isis_mapping("R1:adj.xml"), parse_error);
    EXPECT_THROW(parse_isis_mapping("R1:a:b:"), parse_error);
    EXPECT_THROW(parse_isis_mapping(":a:b:c"), parse_error);
}

/// A two-core-router + two-edge network in the simplified IS-IS export
/// schema: E0 -> R0 -> R3 -> E1, with a swap at R0 and a pop at R3, plus a
/// weight-2 backup next-hop at R0 (through the direct R0->R3 parallel
/// adjacency is not available here, so backup reuses the same interface
/// with a different operation chain).
std::vector<IsisRouterDocuments> example_documents() {
    IsisRouterDocuments r0;
    r0.entry = {.aliases = {"192.0.0.1", "R0"},
                .adjacency_file = "r0-adj.xml",
                .route_file = "r0-route.xml",
                .pfe_file = "r0-pfe.xml"};
    r0.adjacency_xml = R"(
        <isis-adjacency-information>
          <isis-adjacency>
            <interface-name>et-3/0/0.2</interface-name>
            <system-name>R3</system-name>
            <adjacency-state>Up</adjacency-state>
          </isis-adjacency>
          <isis-adjacency>
            <interface-name>ae1.11</interface-name>
            <system-name>E0</system-name>
            <adjacency-state>Up</adjacency-state>
          </isis-adjacency>
          <isis-adjacency>
            <interface-name>ge-9/9/9</interface-name>
            <system-name>R3</system-name>
            <adjacency-state>Down</adjacency-state>
          </isis-adjacency>
        </isis-adjacency-information>)";
    r0.route_xml = R"(
        <forwarding-table-information>
          <rt-entry>
            <label>s300292</label>
            <incoming-interface>ae1.11</incoming-interface>
            <nh weight="1"><via>et-3/0/0.2</via><nh-index>1048574</nh-index></nh>
          </rt-entry>
          <rt-entry>
            <label type="ip">ip_E1</label>
            <incoming-interface>ae1.11</incoming-interface>
            <nh weight="1"><via>et-3/0/0.2</via><nh-index>1048575</nh-index></nh>
          </rt-entry>
        </forwarding-table-information>)";
    r0.pfe_xml = R"(
        <pfe-next-hop-information>
          <next-hop><nh-index>1048574</nh-index>
            <operations>Swap s300293</operations></next-hop>
          <next-hop><nh-index>1048575</nh-index>
            <operations>Push s300293</operations></next-hop>
        </pfe-next-hop-information>)";

    IsisRouterDocuments r3;
    r3.entry = {.aliases = {"192.0.0.3", "R3"},
                .adjacency_file = "r3-adj.xml",
                .route_file = "r3-route.xml",
                .pfe_file = "r3-pfe.xml"};
    r3.adjacency_xml = R"(
        <isis-adjacency-information>
          <isis-adjacency>
            <interface-name>et-1/3/0.2</interface-name>
            <system-name>192.0.0.1</system-name>
            <adjacency-state>Up</adjacency-state>
          </isis-adjacency>
          <isis-adjacency>
            <interface-name>ae2.0</interface-name>
            <system-name>E1</system-name>
            <adjacency-state>Up</adjacency-state>
          </isis-adjacency>
        </isis-adjacency-information>)";
    r3.route_xml = R"(
        <forwarding-table-information>
          <rt-entry>
            <label>s300293</label>
            <incoming-interface>et-1/3/0.2</incoming-interface>
            <nh weight="1"><via>ae2.0</via><nh-index>7</nh-index></nh>
          </rt-entry>
        </forwarding-table-information>)";
    r3.pfe_xml = R"(
        <pfe-next-hop-information>
          <next-hop><nh-index>7</nh-index><operations>Pop</operations></next-hop>
        </pfe-next-hop-information>)";

    IsisRouterDocuments e0;
    e0.entry = {.aliases = {"E0"}, .adjacency_file = "", .route_file = "", .pfe_file = ""};
    IsisRouterDocuments e1;
    e1.entry = {.aliases = {"E1"}, .adjacency_file = "", .route_file = "", .pfe_file = ""};
    return {r0, r3, e0, e1};
}

TEST(IsisImport, ReconstructsTopologyAndRouting) {
    const auto network = read_isis(example_documents());
    EXPECT_EQ(network.topology.router_count(), 4u);
    // Three duplex connections: R0-R3, R0-E0, R3-E1 (the Down adjacency is
    // ignored).
    EXPECT_EQ(network.topology.link_count(), 6u);
    EXPECT_EQ(network.routing.rule_count(), 3u);

    const auto r0 = *network.topology.find_router("192.0.0.1");
    EXPECT_TRUE(network.topology.out_link_through(r0, "et-3/0/0.2").has_value());

    // Label conventions: s-prefixed labels land in the bottom-of-stack set,
    // ip-prefixed labels are IP destinations.
    EXPECT_TRUE(network.labels.find(LabelType::MplsBos, "300292").has_value());
    EXPECT_TRUE(network.labels.find(LabelType::MplsBos, "300293").has_value());
    EXPECT_TRUE(network.labels.find(LabelType::Ip, "ip_E1").has_value());
}

TEST(IsisImport, ImportedNetworkVerifiesEndToEnd) {
    const auto network = read_isis(example_documents());
    // An IP packet for ip_E1 entering R0 is tunneled over the R0->R3 LSP
    // (push at ingress, pop at egress) and delivered to E1 as plain IP.
    // Router names in queries are the canonical (first) aliases.
    const auto query = query::parse_query(
        "<ip> [.#192.0.0.1] .* [192.0.0.3#E1] <ip> 0", network);
    const auto result = verify::verify(network, query, {});
    EXPECT_EQ(result.answer, verify::Answer::Yes);
    ASSERT_TRUE(result.trace.has_value());
    EXPECT_EQ(result.trace->size(), 3u);
    // Mid-trace the packet carries the LSP label on top of the IP label.
    EXPECT_EQ(result.trace->entries[1].header.size(), 2u);
    EXPECT_EQ(result.trace->entries.back().header.size(), 1u);
}

TEST(IsisImport, ErrorsAreDiagnosed) {
    auto docs = example_documents();
    // Unknown neighbour.
    auto broken = docs;
    broken[0].adjacency_xml = R"(
        <isis-adjacency-information>
          <isis-adjacency>
            <interface-name>x</interface-name>
            <system-name>GHOST</system-name>
          </isis-adjacency>
        </isis-adjacency-information>)";
    EXPECT_THROW(read_isis(broken), model_error);

    // Missing reciprocal adjacency.
    broken = docs;
    broken[1].adjacency_xml = R"(
        <isis-adjacency-information>
          <isis-adjacency>
            <interface-name>ae2.0</interface-name>
            <system-name>E1</system-name>
          </isis-adjacency>
        </isis-adjacency-information>)";
    EXPECT_THROW(read_isis(broken), model_error);

    // Forwarding through a non-existent interface.
    broken = docs;
    broken[0].route_xml = R"(
        <forwarding-table-information>
          <rt-entry>
            <label>s300292</label>
            <incoming-interface>nope</incoming-interface>
            <nh weight="1"><via>et-3/0/0.2</via><nh-index>1048574</nh-index></nh>
          </rt-entry>
        </forwarding-table-information>)";
    EXPECT_THROW(read_isis(broken), model_error);

    // PFE index referenced but absent.
    broken = docs;
    broken[0].pfe_xml = "<pfe-next-hop-information/>";
    EXPECT_THROW(read_isis(broken), model_error);

    // Duplicate alias across routers.
    broken = docs;
    broken[2].entry.aliases = {"R3"};
    EXPECT_THROW(read_isis(broken), model_error);
}

TEST(IsisImport, OperationsGrammar) {
    auto docs = example_documents();
    docs[0].pfe_xml = R"(
        <pfe-next-hop-information>
          <next-hop><nh-index>1048574</nh-index>
            <operations>Swap s300293, Push 42</operations></next-hop>
          <next-hop><nh-index>1048575</nh-index>
            <operations>Push s300293</operations></next-hop>
        </pfe-next-hop-information>)";
    const auto network = read_isis(docs);
    EXPECT_TRUE(network.labels.find(LabelType::Mpls, "42").has_value());
    // The rule carries both operations in order.
    bool found = false;
    network.routing.for_each([&](LinkId, Label, const RoutingEntry& groups) {
        for (const auto& group : groups)
            for (const auto& rule : group)
                if (rule.ops.size() == 2) {
                    EXPECT_EQ(rule.ops[0].kind, Op::Kind::Swap);
                    EXPECT_EQ(rule.ops[1].kind, Op::Kind::Push);
                    found = true;
                }
    });
    EXPECT_TRUE(found);
}

} // namespace
} // namespace aalwines::io
