// End-to-end fuzzing: simulate concrete packets under explicit failure
// sets, then require the verifier to find every simulated behaviour.
// (Network-state fuzzing in the spirit of Shukla et al., which the paper
// cites as motivation for data-plane verification.)

#include <gtest/gtest.h>

#include <random>

#include "model/quantity.hpp"
#include "model/simulator.hpp"
#include "synthesis/networks.hpp"
#include "verify/engine.hpp"

namespace aalwines {
namespace {

/// Build a valid header whose top is `label` (filling the strata below
/// from the network's label table); nullopt if the table lacks pieces.
std::optional<Header> header_with_top(const LabelTable& labels, Label label,
                                      std::mt19937_64& rng) {
    const auto ips = labels.of_type(LabelType::Ip);
    const auto bos = labels.of_type(LabelType::MplsBos);
    if (ips.empty()) return std::nullopt;
    switch (labels.type_of(label)) {
        case LabelType::Ip: return Header{label};
        case LabelType::MplsBos: return Header{ips[rng() % ips.size()], label};
        case LabelType::Mpls: {
            if (bos.empty()) return std::nullopt;
            return Header{ips[rng() % ips.size()], bos[rng() % bos.size()], label};
        }
    }
    return std::nullopt;
}

struct FuzzStats {
    std::size_t simulated = 0;
    std::size_t verified = 0;
};

/// Simulate random packets on `network` and assert the verifier confirms
/// every multi-hop behaviour with a YES and a feasible witness.
/// (Out-parameter because gtest ASSERT_* requires a void return type.)
void fuzz_network(const Network& network, std::mt19937_64& rng, std::size_t rounds,
                  FuzzStats& stats) {
    // Collect the (in-link, label) keys that have routing entries; random
    // walks start there so most runs actually forward.
    std::vector<std::pair<LinkId, Label>> entry_points;
    network.routing.for_each([&](LinkId link, Label label, const RoutingEntry&) {
        entry_points.emplace_back(link, label);
    });
    if (entry_points.empty()) return;

    for (std::size_t round = 0; round < rounds; ++round) {
        // Random failure scenario with |F| <= 2.
        FailureSet failed;
        const auto failure_count = rng() % 3;
        for (std::uint64_t i = 0; i < failure_count; ++i)
            failed.insert(static_cast<LinkId>(rng() % network.topology.link_count()));

        const auto& [link, label] = entry_points[rng() % entry_points.size()];
        if (failed.contains(link)) continue;
        const auto header = header_with_top(network.labels, label, rng);
        if (!header) continue;

        Simulator simulator(network, failed);
        const auto trace = simulator.run(link, *header, rng, 12);
        if (trace.size() < 2) continue; // nothing forwarded
        ++stats.simulated;

        // The simulated trace is feasible within |F| by construction.
        const auto budget = static_cast<std::uint64_t>(failed.size());
        const auto feasibility = check_feasibility(network, trace, budget);
        ASSERT_TRUE(feasibility.feasible)
            << "simulator produced an infeasible trace: " << feasibility.reason
            << "\n" << display_trace(network, trace);

        // The verifier must confirm the exact behaviour.
        const auto text = query_for_trace(network, trace, budget);
        const auto query = query::parse_query(text, network);
        const auto result = verify::verify(network, query, {});
        ASSERT_EQ(result.answer, verify::Answer::Yes)
            << "verifier missed a simulated behaviour\nquery: " << text << "\ntrace:\n"
            << display_trace(network, trace);
        ASSERT_TRUE(result.trace.has_value());
        EXPECT_TRUE(
            check_feasibility(network, *result.trace, budget).feasible);

        // The weighted engine's minimum can never exceed the simulated
        // trace's own value.
        const auto weights = parse_weight_expression("links, failures");
        verify::VerifyOptions options;
        options.engine = verify::EngineKind::Weighted;
        options.weights = &weights;
        const auto weighted = verify::verify(network, query, options);
        ASSERT_EQ(weighted.answer, verify::Answer::Yes) << text;
        EXPECT_LE(weighted.weight, evaluate(network, trace, weights)) << text;
        ++stats.verified;
    }
}

TEST(Fuzz, Figure1NetworkBehavioursAreAllVerified) {
    std::mt19937_64 rng(1234);
    const auto network = synthesis::make_figure1_network();
    FuzzStats stats;
    fuzz_network(network, rng, 200, stats);
    EXPECT_GT(stats.simulated, 50u);
    EXPECT_EQ(stats.simulated, stats.verified);
}

TEST(Fuzz, SynthesizedRingBehavioursAreAllVerified) {
    std::mt19937_64 rng(99);
    const auto net = synthesis::build_dataplane(synthesis::make_ring(6),
                                                {.service_chains = 3, .seed = 17});
    FuzzStats stats;
    fuzz_network(net.network, rng, 60, stats);
    EXPECT_GT(stats.simulated, 20u);
    EXPECT_EQ(stats.simulated, stats.verified);
}

TEST(Fuzz, BackboneBehavioursAreAllVerified) {
    std::mt19937_64 rng(2718);
    const auto net = synthesis::build_dataplane(
        synthesis::make_backbone(5, 2, 3), {.max_lsp_pairs = 30, .seed = 5});
    FuzzStats stats;
    fuzz_network(net.network, rng, 40, stats);
    EXPECT_GT(stats.simulated, 10u);
    EXPECT_EQ(stats.simulated, stats.verified);
}

TEST(Simulator, FollowsFailoverUnderFailure) {
    const auto network = synthesis::make_figure1_network();
    const auto ip1 = *network.labels.find(LabelType::Ip, "ip1");
    // Fail e4 (v2 -> v3): the only continuation from v2 with s20 is the
    // priority-2 tunnel via e5 — the paper's σ2.
    Simulator simulator(network, FailureSet{4});
    std::mt19937_64 rng(7);
    for (int round = 0; round < 20; ++round) {
        const auto trace = simulator.run(0, Header{ip1}, rng, 16);
        ASSERT_GE(trace.size(), 2u);
        if (trace.entries[1].link == 1) { // took e1 toward v2
            ASSERT_EQ(trace.size(), 5u);
            EXPECT_EQ(trace.entries[2].link, 5u); // e5: the tunnel
            EXPECT_EQ(trace.entries[2].header.size(), 3u); // pushed label 30
        }
    }
}

TEST(Simulator, StopsOnDeliveredPackets) {
    const auto network = synthesis::make_figure1_network();
    const auto ip1 = *network.labels.find(LabelType::Ip, "ip1");
    Simulator simulator(network, {});
    std::mt19937_64 rng(3);
    const auto trace = simulator.run(0, Header{ip1}, rng, 100);
    // Always terminates at e7 (no routing entry beyond the egress).
    EXPECT_EQ(trace.entries.back().link, 7u);
    EXPECT_EQ(trace.size(), 4u);
}

TEST(Simulator, InactiveStartYieldsEmptyTrace) {
    const auto network = synthesis::make_figure1_network();
    const auto ip1 = *network.labels.find(LabelType::Ip, "ip1");
    Simulator simulator(network, FailureSet{0});
    std::mt19937_64 rng(3);
    EXPECT_TRUE(simulator.run(0, Header{ip1}, rng).empty());
}

TEST(QueryForTrace, ProducesExactWitnessQuery) {
    const auto network = synthesis::make_figure1_network();
    const auto ip1 = *network.labels.find(LabelType::Ip, "ip1");
    const auto s20 = *network.labels.find(LabelType::MplsBos, "20");
    const auto s21 = *network.labels.find(LabelType::MplsBos, "21");
    const Trace sigma0{{{0, {ip1}}, {1, {ip1, s20}}, {4, {ip1, s21}}, {7, {ip1}}}};
    const auto text = query_for_trace(network, sigma0, 0);
    const auto query = query::parse_query(text, network);
    const auto result = verify::verify(network, query, {});
    EXPECT_EQ(result.answer, verify::Answer::Yes) << text;
    // The query pins the exact link sequence, so the witness is σ0 itself.
    ASSERT_TRUE(result.trace.has_value());
    EXPECT_EQ(*result.trace, sigma0);
}

} // namespace
} // namespace aalwines
