#pragma once
// Shared helpers for the PDA solver tests: tiny NFA builders, a brute-force
// configuration-space explorer used as a reference implementation, and a
// random PDA generator for property tests.

#include <deque>
#include <map>
#include <random>
#include <set>
#include <vector>

#include "nfa/nfa.hpp"
#include "pda/solver.hpp"

namespace aalwines::pda::testutil {

/// NFA accepting exactly one word.
inline nfa::Nfa exact_word(const std::vector<Symbol>& word) {
    std::vector<nfa::Regex> atoms;
    for (const auto s : word) atoms.push_back(nfa::Regex::atom(nfa::SymbolSet::single(s)));
    return nfa::Nfa::compile(nfa::Regex::concat(std::move(atoms)));
}

/// NFA accepting any non-empty stack over the domain.
inline nfa::Nfa any_stack() {
    return nfa::Nfa::compile(
        nfa::Regex::plus(nfa::Regex::atom(nfa::SymbolSet::any())));
}

using Config = std::pair<StateId, std::vector<Symbol>>; // stack top-first

/// All configurations reachable from `initial` with at most `max_steps` rule
/// applications and stacks no deeper than `max_depth` (reference model).
inline std::set<Config> brute_force_reachable(const Pda& pda,
                                              const std::vector<Config>& initial,
                                              std::size_t max_steps = 64,
                                              std::size_t max_depth = 6) {
    std::set<Config> seen(initial.begin(), initial.end());
    std::deque<std::pair<Config, std::size_t>> queue;
    for (const auto& config : initial) queue.push_back({config, 0});
    while (!queue.empty()) {
        auto [config, steps] = queue.front();
        queue.pop_front();
        if (steps >= max_steps || config.second.empty()) continue;
        const auto top = config.second.front();
        pda.for_each_applicable(
            config.first, top, [&](RuleId rule_id, const nfa::SymbolSet&) {
                const auto& rule = pda.rule(rule_id);
                Config next;
                next.first = rule.to;
                switch (rule.op) {
                    case Rule::OpKind::Pop:
                        next.second.assign(config.second.begin() + 1, config.second.end());
                        break;
                    case Rule::OpKind::Swap:
                        next.second = config.second;
                        next.second.front() = rule.label1;
                        break;
                    case Rule::OpKind::Push: {
                        const auto below =
                            rule.label2 == k_same_symbol ? top : rule.label2;
                        next.second.push_back(rule.label1);
                        next.second.push_back(below);
                        next.second.insert(next.second.end(), config.second.begin() + 1,
                                           config.second.end());
                        break;
                    }
                }
                if (next.second.size() > max_depth) return;
                if (seen.insert(next).second) queue.push_back({next, steps + 1});
            });
    }
    return seen;
}

/// Deterministically seeded random PDA over `alphabet` symbols and `states`
/// control states, with optional per-rule scalar weights.
inline Pda random_pda(std::mt19937_64& rng, StateId states, Symbol alphabet,
                      std::size_t rules, bool weighted, bool with_classes = true) {
    Pda pda(alphabet);
    for (StateId s = 0; s < states; ++s) pda.add_state();
    if (with_classes)
        for (Symbol s = 0; s < alphabet; ++s)
            pda.set_symbol_class(s, static_cast<SymbolClass>(s % 2));
    for (std::size_t i = 0; i < rules; ++i) {
        Rule rule;
        rule.from = static_cast<StateId>(rng() % states);
        rule.to = static_cast<StateId>(rng() % states);
        switch (with_classes ? rng() % 4 : 0) {
            case 1: rule.pre = PreSpec::of_class(static_cast<SymbolClass>(rng() % 2)); break;
            case 2: rule.pre = PreSpec::any(); break;
            default: rule.pre = PreSpec::concrete(static_cast<Symbol>(rng() % alphabet));
        }
        switch (rng() % 3) {
            case 0: rule.op = Rule::OpKind::Pop; break;
            case 1:
                rule.op = Rule::OpKind::Swap;
                rule.label1 = static_cast<Symbol>(rng() % alphabet);
                break;
            default:
                rule.op = Rule::OpKind::Push;
                rule.label1 = static_cast<Symbol>(rng() % alphabet);
                rule.label2 = rng() % 3 == 0 ? k_same_symbol
                                             : static_cast<Symbol>(rng() % alphabet);
                break;
        }
        if (weighted) rule.weight = Weight::scalar(rng() % 5);
        rule.tag = static_cast<std::uint32_t>(i);
        pda.add_rule(std::move(rule));
    }
    return pda;
}

/// Initial automaton accepting exactly the given configurations.
inline PAutomaton automaton_for_configs(const Pda& pda,
                                        const std::vector<Config>& configs) {
    PAutomaton aut(pda);
    for (const auto& [state, stack] : configs) {
        StateId current = state;
        for (std::size_t i = 0; i < stack.size(); ++i) {
            const auto next = aut.add_state();
            aut.add_transition(current, EdgeLabel::of(stack[i]), next, Weight::one(), {});
            current = next;
        }
        aut.set_final(current);
    }
    return aut;
}

} // namespace aalwines::pda::testutil
