#include <gtest/gtest.h>

#include "pda/reduction.hpp"
#include "pda_test_util.hpp"

namespace aalwines::pda {
namespace {

using testutil::automaton_for_configs;
using testutil::brute_force_reachable;
using testutil::Config;
using testutil::exact_word;
using testutil::random_pda;

constexpr Symbol A = 0, B = 1, C = 2;

TEST(Reduction, LevelZeroIsNoOp) {
    Pda pda(3);
    const auto p0 = pda.add_state();
    pda.add_rule({p0, p0, PreSpec::concrete(C), Rule::OpKind::Swap, C, k_no_symbol,
                  Weight::one(), 0});
    const TosSeed seeds[] = {{p0, nfa::SymbolSet::single(A), nfa::SymbolSet::none()}};
    const auto stats = reduce(pda, seeds, nfa::SymbolSet::none(), 0);
    EXPECT_EQ(stats.removed(), 0u);
}

TEST(Reduction, RemovesRuleWithUnreachableTop) {
    Pda pda(3);
    const auto p0 = pda.add_state();
    const auto p1 = pda.add_state();
    // From (p0, top=A): the C-rule at p0 can never fire; nor can p1's rule
    // on A, because p1 is only entered with top B.
    pda.add_rule({p0, p1, PreSpec::concrete(A), Rule::OpKind::Swap, B, k_no_symbol,
                  Weight::one(), 0});
    pda.add_rule({p0, p1, PreSpec::concrete(C), Rule::OpKind::Swap, C, k_no_symbol,
                  Weight::one(), 1});
    pda.add_rule({p1, p0, PreSpec::concrete(A), Rule::OpKind::Swap, A, k_no_symbol,
                  Weight::one(), 2});
    pda.add_rule({p1, p0, PreSpec::concrete(B), Rule::OpKind::Swap, A, k_no_symbol,
                  Weight::one(), 3});
    const TosSeed seeds[] = {{p0, nfa::SymbolSet::single(A), nfa::SymbolSet::none()}};
    const auto stats = reduce(pda, seeds, nfa::SymbolSet::none(), 1);
    EXPECT_EQ(stats.rules_before, 4u);
    EXPECT_EQ(stats.rules_after, 2u);
    // The surviving rules are the A-swap at p0 and the B-swap at p1.
    for (const auto& rule : pda.rules())
        EXPECT_TRUE(rule.tag == 0 || rule.tag == 3);
}

TEST(Reduction, Level2TracksSecondSymbolThroughPop) {
    Pda pda(3);
    const auto p0 = pda.add_state();
    const auto p1 = pda.add_state();
    const auto p2 = pda.add_state(); // sink: no feedback into p0/p1
    // (p0, A B): pop reveals B at p1.  Level 2 knows the revealed symbol is
    // exactly B and drops p1's rule on C; level 1 falls back to the coarse
    // "anything buried" set which here includes C via the deep seed.
    pda.add_rule({p0, p1, PreSpec::concrete(A), Rule::OpKind::Pop, k_no_symbol,
                  k_no_symbol, Weight::one(), 0});
    pda.add_rule({p1, p2, PreSpec::concrete(C), Rule::OpKind::Swap, C, k_no_symbol,
                  Weight::one(), 1});
    pda.add_rule({p1, p2, PreSpec::concrete(B), Rule::OpKind::Swap, B, k_no_symbol,
                  Weight::one(), 2});

    {
        auto copy = pda;
        const TosSeed seeds[] = {{p0, nfa::SymbolSet::single(A), nfa::SymbolSet::single(B)}};
        const auto stats = reduce(copy, seeds, nfa::SymbolSet::single(C), 2);
        EXPECT_EQ(stats.rules_after, 2u) << "level 2 should drop the C rule";
    }
    {
        auto copy = pda;
        const TosSeed seeds[] = {{p0, nfa::SymbolSet::single(A), nfa::SymbolSet::single(B)}};
        const auto stats = reduce(copy, seeds, nfa::SymbolSet::single(C), 1);
        EXPECT_EQ(stats.rules_after, 3u) << "level 1 cannot distinguish buried symbols";
    }
}

class ReductionRandom : public ::testing::TestWithParam<int> {};

/// Soundness: reduction never changes the reachable configuration set.
TEST_P(ReductionRandom, PreservesReachability) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 3);
    const Symbol alphabet = 3;
    auto pda = random_pda(rng, 4, alphabet, 10, false);
    const std::vector<Config> initial{{0, {0, 1}}};

    const auto before = brute_force_reachable(pda, initial, 40, 5);

    const TosSeed seeds[] = {
        {0, nfa::SymbolSet::single(0), nfa::SymbolSet::single(1)}};
    // Deep symbols: nothing deeper than the two-symbol initial stack.
    for (const int level : {1, 2}) {
        auto copy = pda;
        reduce(copy, seeds, nfa::SymbolSet::none(), level);
        const auto after = brute_force_reachable(copy, initial, 40, 5);
        EXPECT_EQ(before, after) << "seed " << GetParam() << " level " << level;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionRandom, ::testing::Range(0, 32));

} // namespace
} // namespace aalwines::pda
