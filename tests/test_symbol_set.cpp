#include <gtest/gtest.h>

#include <random>

#include "nfa/symbol_set.hpp"

namespace aalwines::nfa {
namespace {

TEST(SymbolSet, DefaultIsEmpty) {
    SymbolSet set;
    EXPECT_TRUE(set.is_empty_set());
    EXPECT_FALSE(set.contains(0));
}

TEST(SymbolSet, IncludeSemantics) {
    const auto set = SymbolSet::of({3, 1, 3, 2});
    EXPECT_TRUE(set.contains(1));
    EXPECT_TRUE(set.contains(2));
    EXPECT_TRUE(set.contains(3));
    EXPECT_FALSE(set.contains(0));
    EXPECT_EQ(set.symbols(), (std::vector<Symbol>{1, 2, 3})); // sorted, deduped
}

TEST(SymbolSet, ExcludeSemantics) {
    const auto set = SymbolSet::excluding({1, 3});
    EXPECT_TRUE(set.contains(0));
    EXPECT_FALSE(set.contains(1));
    EXPECT_TRUE(set.contains(2));
    EXPECT_FALSE(set.contains(3));
}

TEST(SymbolSet, ExcludingNothingIsAny) {
    EXPECT_TRUE(SymbolSet::excluding({}).is_any());
}

TEST(SymbolSet, PickFindsSmallestMember) {
    EXPECT_EQ(SymbolSet::any().pick(5), 0u);
    EXPECT_EQ(SymbolSet::of({3, 4}).pick(5), 3u);
    EXPECT_EQ(SymbolSet::excluding({0, 1, 2}).pick(5), 3u);
    EXPECT_FALSE(SymbolSet::excluding({0, 1, 2}).pick(3).has_value());
    EXPECT_FALSE(SymbolSet::of({7}).pick(5).has_value());
    EXPECT_FALSE(SymbolSet::any().pick(0).has_value());
}

TEST(SymbolSet, EmptinessInDomain) {
    EXPECT_TRUE(SymbolSet::none().is_empty_in(10));
    EXPECT_TRUE(SymbolSet::excluding({0, 1}).is_empty_in(2));
    EXPECT_FALSE(SymbolSet::excluding({0, 1}).is_empty_in(3));
}

TEST(SymbolSet, MaterializeListsDomainMembers) {
    EXPECT_EQ(SymbolSet::any().materialize(3), (std::vector<Symbol>{0, 1, 2}));
    EXPECT_EQ(SymbolSet::of({1, 9}).materialize(5), (std::vector<Symbol>{1}));
    EXPECT_EQ(SymbolSet::excluding({1}).materialize(4), (std::vector<Symbol>{0, 2, 3}));
}

/// Property: intersection/union agree with per-symbol semantics on random sets.
TEST(SymbolSetProperty, BooleanOperationsMatchMembership) {
    std::mt19937_64 rng(42);
    constexpr Symbol domain = 24;
    auto random_set = [&]() {
        std::vector<Symbol> symbols;
        for (Symbol s = 0; s < domain; ++s)
            if (rng() % 3 == 0) symbols.push_back(s);
        switch (rng() % 3) {
            case 0: return SymbolSet::of(symbols);
            case 1: return SymbolSet::excluding(symbols);
            default: return SymbolSet::any();
        }
    };
    for (int round = 0; round < 200; ++round) {
        const auto a = random_set();
        const auto b = random_set();
        const auto inter = SymbolSet::intersection(a, b);
        const auto uni = SymbolSet::set_union(a, b);
        for (Symbol s = 0; s < domain; ++s) {
            EXPECT_EQ(inter.contains(s), a.contains(s) && b.contains(s))
                << "intersection mismatch at " << s;
            EXPECT_EQ(uni.contains(s), a.contains(s) || b.contains(s))
                << "union mismatch at " << s;
        }
    }
}

TEST(SymbolSet, EqualityComparesContent) {
    EXPECT_EQ(SymbolSet::of({1, 2}), SymbolSet::of({2, 1}));
    EXPECT_FALSE(SymbolSet::of({1}) == SymbolSet::of({2}));
    EXPECT_FALSE(SymbolSet::of({1}) == SymbolSet::excluding({1}));
}

} // namespace
} // namespace aalwines::nfa
