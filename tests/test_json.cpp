#include <gtest/gtest.h>

#include "json/json.hpp"

namespace aalwines::json {
namespace {

TEST(JsonParser, ParsesScalars) {
    EXPECT_TRUE(parse("null").is_null());
    EXPECT_EQ(parse("true").as_bool(), true);
    EXPECT_EQ(parse("false").as_bool(), false);
    EXPECT_EQ(parse("42").as_int(), 42);
    EXPECT_EQ(parse("-7").as_int(), -7);
    EXPECT_DOUBLE_EQ(parse("2.5").as_double(), 2.5);
    EXPECT_DOUBLE_EQ(parse("1e3").as_double(), 1000.0);
    EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParser, ParsesContainers) {
    const auto value = parse(R"({"a": [1, 2, {"b": true}], "c": null})");
    ASSERT_TRUE(value.is_object());
    const auto& array = value.at("a").as_array();
    ASSERT_EQ(array.size(), 3u);
    EXPECT_EQ(array[0].as_int(), 1);
    EXPECT_TRUE(array[2].at("b").as_bool());
    EXPECT_TRUE(value.at("c").is_null());
}

TEST(JsonParser, ParsesEscapes) {
    EXPECT_EQ(parse(R"("a\nb\t\"\\")").as_string(), "a\nb\t\"\\");
    EXPECT_EQ(parse(R"("A")").as_string(), "A");
    EXPECT_EQ(parse(R"("é")").as_string(), "\xc3\xa9");           // é
    EXPECT_EQ(parse(R"("😀")").as_string(), "\xf0\x9f\x98\x80"); // 😀
}

TEST(JsonParser, RejectsMalformedInput) {
    EXPECT_THROW(parse("{"), parse_error);
    EXPECT_THROW(parse("[1,]"), parse_error);
    EXPECT_THROW(parse("tru"), parse_error);
    EXPECT_THROW(parse("\"unterminated"), parse_error);
    EXPECT_THROW(parse("1 2"), parse_error);
    EXPECT_THROW(parse(R"("\ud800x")"), parse_error); // unpaired surrogate
}

TEST(JsonParser, LocationFileShape) {
    const auto value = parse(R"({ "R0": { "lat": 46.5, "lng": 7.3} })");
    EXPECT_DOUBLE_EQ(value.at("R0").at("lat").as_double(), 46.5);
    EXPECT_DOUBLE_EQ(value.at("R0").at("lng").as_double(), 7.3);
}

TEST(JsonWriter, RoundTrips) {
    Object object;
    object.emplace("name", Value("demo \"net\""));
    object.emplace("count", Value(31));
    object.emplace("ratio", Value(0.125));
    Array list;
    list.push_back(Value(true));
    list.push_back(Value(nullptr));
    object.emplace("flags", Value(std::move(list)));

    const Value original{std::move(object)};
    EXPECT_EQ(parse(write(original)), original);
    EXPECT_EQ(parse(write(original, 2)), original); // pretty-printed too
}

TEST(JsonWriter, FindReturnsNullptrForMissing) {
    const auto value = parse(R"({"x": 1})");
    EXPECT_EQ(value.find("y"), nullptr);
    EXPECT_NE(value.find("x"), nullptr);
}

} // namespace
} // namespace aalwines::json
