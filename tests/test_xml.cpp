#include <gtest/gtest.h>

#include "xml/xml.hpp"

namespace aalwines::xml {
namespace {

TEST(XmlParser, ParsesElementWithAttributes) {
    const auto root = parse(R"(<router name="R0" kind='edge'/>)");
    EXPECT_EQ(root.name, "router");
    EXPECT_EQ(root.attr("name"), "R0");
    EXPECT_EQ(root.attr("kind"), "edge");
    EXPECT_FALSE(root.attr("missing").has_value());
}

TEST(XmlParser, ParsesNestedChildren) {
    const auto root = parse("<a><b/><c><d/></c><b/></a>");
    EXPECT_EQ(root.children.size(), 3u);
    EXPECT_EQ(root.children_named("b").size(), 2u);
    ASSERT_NE(root.first_child("c"), nullptr);
    EXPECT_EQ(root.first_child("c")->children.size(), 1u);
}

TEST(XmlParser, DecodesEntities) {
    const auto root = parse("<t a=\"&lt;&amp;&gt;\">x &#65;&#x42; &quot;</t>");
    EXPECT_EQ(root.attr("a"), "<&>");
    EXPECT_EQ(root.text, "x AB \"");
}

TEST(XmlParser, HandlesCommentsAndDeclaration) {
    const auto root = parse(
        "<?xml version=\"1.0\"?><!-- hi --><root><!-- inner -->body</root>");
    EXPECT_EQ(root.name, "root");
    EXPECT_EQ(root.text, "body");
}

TEST(XmlParser, HandlesCdata) {
    const auto root = parse("<r><![CDATA[<not-a-tag> & raw]]></r>");
    EXPECT_EQ(root.text, "<not-a-tag> & raw");
}

TEST(XmlParser, RejectsMismatchedClose) {
    EXPECT_THROW(parse("<a><b></a></b>"), parse_error);
}

TEST(XmlParser, RejectsTrailingContent) {
    EXPECT_THROW(parse("<a/><b/>"), parse_error);
}

TEST(XmlParser, RejectsUnterminatedTag) {
    EXPECT_THROW(parse("<a attr=\"v\""), parse_error);
}

TEST(XmlParser, ReportsErrorPosition) {
    try {
        parse("<a>\n  <b>\n</a>");
        FAIL() << "expected parse_error";
    } catch (const parse_error& error) {
        EXPECT_GE(error.where().line, 3u);
    }
}

TEST(XmlParser, RequiredAttrThrowsWhenMissing) {
    const auto root = parse("<x/>");
    EXPECT_THROW((void)root.required_attr("name"), model_error);
}

TEST(XmlWriter, RoundTripsDocument) {
    Element root;
    root.name = "network";
    root.attributes.emplace_back("name", "demo <&> \"q\"");
    Element child;
    child.name = "router";
    child.text = "some <text>";
    root.children.push_back(child);

    const auto text = write(root);
    const auto reparsed = parse(text);
    EXPECT_EQ(reparsed.name, "network");
    EXPECT_EQ(reparsed.attr("name"), "demo <&> \"q\"");
    ASSERT_EQ(reparsed.children.size(), 1u);
    EXPECT_EQ(reparsed.children[0].text, "some <text>");
}

TEST(XmlWriter, CompactModeHasNoNewlines) {
    Element root;
    root.name = "a";
    root.children.emplace_back();
    root.children.back().name = "b";
    const auto text = write(root, {.pretty = false, .declaration = false});
    EXPECT_EQ(text.find('\n'), std::string::npos);
    EXPECT_EQ(text, "<a><b/></a>");
}

} // namespace
} // namespace aalwines::xml
