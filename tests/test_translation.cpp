#include <gtest/gtest.h>

#include "model/quantity.hpp"
#include "synthesis/dataplane.hpp"
#include "synthesis/networks.hpp"
#include "synthesis/queries.hpp"
#include "verify/engine.hpp"
#include "verify/translation.hpp"

namespace aalwines::verify {
namespace {

class TranslationFixture : public ::testing::Test {
protected:
    Network net = synthesis::make_figure1_network();

    query::Query parse(const std::string& text) { return query::parse_query(text, net); }
};

TEST_F(TranslationFixture, ValidHeaderRegexMatchesH) {
    const auto nfa = nfa::Nfa::compile(valid_header_regex(net.labels));
    const auto ip1 = *net.labels.find(LabelType::Ip, "ip1");
    const auto s20 = *net.labels.find(LabelType::MplsBos, "20");
    const auto m30 = *net.labels.find(LabelType::Mpls, "30");
    // Top-first words.
    EXPECT_TRUE(nfa.accepts(std::vector<nfa::Symbol>{ip1}));
    EXPECT_TRUE(nfa.accepts(std::vector<nfa::Symbol>{s20, ip1}));
    EXPECT_TRUE(nfa.accepts(std::vector<nfa::Symbol>{m30, s20, ip1}));
    EXPECT_TRUE(nfa.accepts(std::vector<nfa::Symbol>{m30, m30, s20, ip1}));
    EXPECT_FALSE(nfa.accepts(std::vector<nfa::Symbol>{m30, ip1}));
    EXPECT_FALSE(nfa.accepts(std::vector<nfa::Symbol>{ip1, ip1}));
    EXPECT_FALSE(nfa.accepts(std::vector<nfa::Symbol>{s20, s20, ip1}));
    EXPECT_FALSE(nfa.accepts(std::vector<nfa::Symbol>{}));
}

TEST_F(TranslationFixture, BuildsControlStatesAndRules) {
    const auto query = parse("<ip> [.#v0] .* [v3#.] <ip> 0");
    Translation translation(net, query, {});
    EXPECT_GT(translation.pda().state_count(), 0u);
    EXPECT_GT(translation.pda().rule_count(), 0u);
    EXPECT_FALSE(translation.initial_states().empty());
    EXPECT_FALSE(translation.accepting_states().empty());
}

TEST_F(TranslationFixture, PostStarFindsWitnessTrace) {
    const auto query = parse("<ip> [.#v0] .* [v3#.] <ip> 0");
    Translation translation(net, query, {});
    auto aut = translation.make_initial_automaton();
    pda::post_star(aut);
    const auto accepted =
        pda::find_accepted(aut, translation.accepting_states(),
                           translation.final_header_nfa(),
                           static_cast<pda::Symbol>(net.labels.size()));
    ASSERT_TRUE(accepted.has_value());
    const auto witness = pda::unroll_post_star(aut, *accepted);
    ASSERT_TRUE(witness.has_value());
    const auto trace = translation.witness_to_trace(*witness);
    ASSERT_TRUE(trace.has_value());
    // The witness must be one of σ0 / σ1: 4 links, starting at e0 (id 0),
    // ending at e7 (id 7), feasible without failures.
    ASSERT_EQ(trace->size(), 4u);
    EXPECT_EQ(trace->entries.front().link, 0u);
    EXPECT_EQ(trace->entries.back().link, 7u);
    const auto feasibility = check_feasibility(net, *trace, 0);
    EXPECT_TRUE(feasibility.feasible) << feasibility.reason;
}

TEST_F(TranslationFixture, UnderApproximationBoundsFailures) {
    // k=0 under-approximation must not contain the failover trace σ2.
    const auto query = parse("<ip> [.#v0] [v0#v2] [v2#v4] [v4#v3] [v3#.] <ip> 0");
    TranslationOptions options;
    options.approximation = Approximation::Under;
    Translation translation(net, query, options);
    auto aut = translation.make_initial_automaton();
    pda::post_star(aut);
    EXPECT_FALSE(pda::find_accepted(aut, translation.accepting_states(),
                                    translation.final_header_nfa(),
                                    static_cast<pda::Symbol>(net.labels.size()))
                     .has_value());
}

TEST_F(TranslationFixture, UnderApproximationAdmitsWithBudget) {
    const auto query = parse("<ip> [.#v0] [v0#v2] [v2#v4] [v4#v3] [v3#.] <ip> 1");
    TranslationOptions options;
    options.approximation = Approximation::Under;
    Translation translation(net, query, options);
    auto aut = translation.make_initial_automaton();
    pda::post_star(aut);
    const auto accepted =
        pda::find_accepted(aut, translation.accepting_states(),
                           translation.final_header_nfa(),
                           static_cast<pda::Symbol>(net.labels.size()));
    ASSERT_TRUE(accepted.has_value());
    const auto witness = pda::unroll_post_star(aut, *accepted);
    ASSERT_TRUE(witness.has_value());
    const auto trace = translation.witness_to_trace(*witness);
    ASSERT_TRUE(trace.has_value());
    EXPECT_TRUE(check_feasibility(net, *trace, 1).feasible);
    EXPECT_EQ(trace->size(), 5u); // σ2
}

TEST_F(TranslationFixture, ReductionShrinksRuleSet) {
    // A very specific query: most forwarding entries cannot participate.
    const auto query = parse("<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0");
    Translation with(net, query, {});
    const auto before = with.pda().rule_count();
    const auto stats = with.reduce(2);
    EXPECT_EQ(stats.rules_before, before);
    EXPECT_LT(stats.rules_after, before);

    // Reduction must not change the verdict.
    auto aut = with.make_initial_automaton();
    pda::post_star(aut);
    EXPECT_TRUE(pda::find_accepted(aut, with.accepting_states(), with.final_header_nfa(),
                                   static_cast<pda::Symbol>(net.labels.size()))
                    .has_value());
}

TEST_F(TranslationFixture, WeightedTranslationReportsMinimum) {
    // φ4 with (Hops, Failures + 3*Tunnels): minimum witness is σ3 = (5, 0).
    const auto query = parse("<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1");
    const auto weights = parse_weight_expression("hops, failures + 3*tunnels");
    TranslationOptions options;
    options.weights = &weights;
    Translation translation(net, query, options);
    auto aut = translation.make_initial_automaton();
    pda::post_star(aut);
    const auto accepted =
        pda::find_accepted(aut, translation.accepting_states(),
                           translation.final_header_nfa(),
                           static_cast<pda::Symbol>(net.labels.size()));
    ASSERT_TRUE(accepted.has_value());
    EXPECT_EQ(accepted->weight.components(), (std::vector<std::uint64_t>{5, 0}));
    const auto witness = pda::unroll_post_star(aut, *accepted);
    ASSERT_TRUE(witness.has_value());
    const auto trace = translation.witness_to_trace(*witness);
    ASSERT_TRUE(trace.has_value());
    EXPECT_EQ(evaluate(net, *trace, weights), (std::vector<std::uint64_t>{5, 0}));
}

TEST_F(TranslationFixture, FinalAutomatonDrivesPreStar) {
    const auto query = parse("<ip> [.#v0] .* [v3#.] <ip> 0");
    Translation translation(net, query, {});
    auto aut = translation.make_final_automaton();
    pda::pre_star(aut);
    const auto accepted =
        pda::find_accepted(aut, translation.initial_states(),
                           translation.initial_header_nfa(),
                           static_cast<pda::Symbol>(net.labels.size()));
    ASSERT_TRUE(accepted.has_value());
    const auto witness = pda::unroll_pre_star(aut, *accepted);
    ASSERT_TRUE(witness.has_value());
    const auto trace = translation.witness_to_trace(*witness);
    ASSERT_TRUE(trace.has_value());
    EXPECT_TRUE(check_feasibility(net, *trace, 0).feasible);
}


/// Deep operation chains: pops reveal unknown symbols, so the translation
/// must branch per stratum mid-chain and still produce exact traces.
TEST(TranslationChains, MultiPopChainsVerifyEndToEnd) {
    Network net;
    net.name = "chains";
    auto& topology = net.topology;
    const auto a = topology.add_router("A");
    const auto b = topology.add_router("B");
    const auto c = topology.add_router("C");
    auto link = [&](RouterId s, std::string_view si, RouterId t, std::string_view ti) {
        return topology.add_link(s, topology.add_interface(s, si), t,
                                 topology.add_interface(t, ti));
    };
    const auto ab = link(a, "o", b, "i");
    const auto bc = link(b, "o", c, "i");
    auto& labels = net.labels;
    const auto ip1 = labels.add(LabelType::Ip, "ip1");
    const auto ip2 = labels.add(LabelType::Ip, "ip2");
    const auto s0 = labels.add(LabelType::MplsBos, "0");
    const auto m0 = labels.add(LabelType::Mpls, "m0");
    const auto m1 = labels.add(LabelType::Mpls, "m1");
    (void)ip1;
    (void)m1;
    // Terminate a two-level tunnel and rewrite the revealed IP in one rule:
    // pop (m0 off), pop (s0 off), swap(ip2).
    net.routing.add_rule(ab, m0, 1, bc, {Op::pop(), Op::pop(), Op::swap(ip2)});
    // And a deep push chain in the other direction of processing:
    // swap(m1) then two pushes (stack grows by two).
    net.routing.add_rule(ab, s0, 1, bc, {Op::swap(s0), Op::push(m0), Op::push(m1)});
    net.routing.validate(topology);

    {
        const auto q = query::parse_query("<m0 s0 ip> [A#B] [B#C] <ip2> 0", net);
        const auto result = verify(net, q, {});
        ASSERT_EQ(result.answer, Answer::Yes);
        ASSERT_TRUE(result.trace.has_value());
        EXPECT_EQ(result.trace->entries.back().header, (Header{ip2}));
    }
    {
        // The multi-pop rule must NOT fire when the stack is too shallow
        // for its rewrite to stay valid (pop pop on [s0 ip] pops the ip).
        const auto q = query::parse_query("<s0 ip> [A#B] [B#C] <ip2> 0", net);
        EXPECT_EQ(verify(net, q, {}).answer, Answer::No);
    }
    {
        const auto q =
            query::parse_query("<s0 ip> [A#B] [B#C] <m1 m0 s0 ip> 0", net);
        const auto result = verify(net, q, {});
        ASSERT_EQ(result.answer, Answer::Yes);
        ASSERT_TRUE(result.trace.has_value());
        EXPECT_EQ(result.trace->entries.back().header.size(), 4u);
    }
}

// ---------------------------------------------------------------------------
// Demand-driven (lazy) translation equivalence.

/// The counting pass behind the lazy interior pool must be *exact*: after
/// materialize_all the lazy PDA has rule-for-rule and state-for-state the
/// same totals as an eager build (ids and order may differ), and the pool
/// is fully consumed — no interior left over, none missing.
TEST_F(TranslationFixture, LazyMaterializeAllMatchesEagerTotals) {
    const std::vector<std::string> queries = {
        "<ip> [.#v0] .* [v3#.] <ip> 0",
        "<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0",
        "<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 2",
        "<ip> .* <ip> 1",
    };
    for (const auto& text : queries) {
        const auto query = parse(text);
        for (const auto approx : {Approximation::Over, Approximation::Under}) {
            TranslationOptions eager_opts;
            eager_opts.approximation = approx;
            Translation eager(net, query, eager_opts);

            TranslationOptions lazy_opts = eager_opts;
            lazy_opts.lazy = true;
            Translation lazy(net, query, lazy_opts);
            EXPECT_TRUE(lazy.pda().lazy());
            EXPECT_EQ(lazy.pda().rule_count(), 0u) << text;
            EXPECT_EQ(lazy.total_rules(), eager.pda().rule_count()) << text;

            lazy.pda().materialize_all();
            EXPECT_TRUE(lazy.pda().fully_materialized());
            EXPECT_EQ(lazy.pda().rule_count(), eager.pda().rule_count()) << text;
            // State parity pins the interior pool: every chain interior the
            // eager build created exists in the pool, and vice versa.
            EXPECT_EQ(lazy.pda().state_count(), eager.pda().state_count()) << text;
        }
    }
}

/// Lazy and eager must give identical answers, witness traces and weights
/// through the full verify() pipeline (reduction on for eager, skipped for
/// lazy — the demand filter subsumes it).
TEST_F(TranslationFixture, LazyVerifyMatchesEagerVerify) {
    const std::vector<std::string> queries = {
        "<ip> [.#v0] .* [v3#.] <ip> 0",
        "<ip> [.#v0] [v0#v2] [v2#v4] [v4#v3] [v3#.] <ip> 0",
        "<ip> [.#v0] [v0#v2] [v2#v4] [v4#v3] [v3#.] <ip> 1",
        "<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1",
        "<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 2",
        "<ip> .* <smpls ip> 0",
    };
    for (const auto& text : queries) {
        const auto query = parse(text);
        VerifyOptions lazy_opts;
        lazy_opts.translation = TranslationMode::Lazy;
        VerifyOptions eager_opts;
        eager_opts.translation = TranslationMode::Eager;
        const auto lazy = verify(net, query, lazy_opts);
        const auto eager = verify(net, query, eager_opts);
        EXPECT_EQ(lazy.answer, eager.answer) << text;
        EXPECT_EQ(lazy.weight, eager.weight) << text;
        ASSERT_EQ(lazy.trace.has_value(), eager.trace.has_value()) << text;
        // Byte-identical traces are a sequential-solver guarantee: the
        // parallel solver shards by state id, and lazy translation interns
        // states in demand order, so equal-weight tie-breaks may differ.
        if (lazy.trace && eager.trace && lazy.stats.over.solver_threads == 1 &&
            eager.stats.over.solver_threads == 1)
            EXPECT_EQ(*lazy.trace, *eager.trace) << text;
        EXPECT_TRUE(lazy.stats.over.lazy_translation) << text;
        EXPECT_FALSE(eager.stats.over.lazy_translation) << text;
        EXPECT_LE(lazy.stats.over.pda_rules_materialized,
                  lazy.stats.over.pda_rules_total)
            << text;
    }
}

/// Weighted equivalence: the minimum witness and its weight vector must not
/// depend on when rules materialize.
TEST_F(TranslationFixture, LazyWeightedVerifyMatchesEager) {
    const auto query = parse("<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1");
    const auto weights = parse_weight_expression("hops, failures + 3*tunnels");
    for (const auto mode : {TranslationMode::Lazy, TranslationMode::Eager}) {
        VerifyOptions options;
        options.engine = EngineKind::Weighted;
        options.weights = &weights;
        options.translation = mode;
        const auto result = verify(net, query, options);
        EXPECT_EQ(result.answer, Answer::Yes);
        EXPECT_EQ(result.weight, (std::vector<std::uint64_t>{5, 0}));
        ASSERT_TRUE(result.trace.has_value());
        EXPECT_EQ(evaluate(net, *result.trace, weights),
                  (std::vector<std::uint64_t>{5, 0}));
    }
}

/// Battery-level equivalence on a synthesized operator network, including a
/// case where lazy materializes strictly less than the eager total.
TEST(TranslationLazy, NordunetBatteryMatchesEagerAndSavesWork) {
    auto synth = synthesis::make_nordunet_like();
    const auto& net = synth.network;
    synthesis::QueryBatteryOptions battery_options;
    battery_options.count = 8;
    const auto battery = synthesis::make_query_battery(synth, battery_options);
    ASSERT_FALSE(battery.empty());

    std::size_t partial = 0;
    for (const auto& text : battery) {
        const auto query = query::parse_query(text, net);
        VerifyOptions lazy_opts;
        lazy_opts.translation = TranslationMode::Lazy;
        VerifyOptions eager_opts;
        eager_opts.translation = TranslationMode::Eager;
        const auto lazy = verify(net, query, lazy_opts);
        const auto eager = verify(net, query, eager_opts);
        EXPECT_EQ(lazy.answer, eager.answer) << text;
        EXPECT_EQ(lazy.weight, eager.weight) << text;
        ASSERT_EQ(lazy.trace.has_value(), eager.trace.has_value()) << text;
        // See LazyVerifyMatchesEagerVerify: byte-equality of traces only
        // holds for the sequential solver's tie-break order.
        if (lazy.trace && eager.trace && lazy.stats.over.solver_threads == 1 &&
            eager.stats.over.solver_threads == 1)
            EXPECT_EQ(*lazy.trace, *eager.trace) << text;
        if (lazy.stats.over.pda_rules_materialized < lazy.stats.over.pda_rules_total)
            ++partial;
    }
    // Early termination must leave at least some batteries partially
    // materialized — otherwise the lazy path degenerated to eager-with-steps.
    EXPECT_GT(partial, 0u);
}

} // namespace
} // namespace aalwines::verify
