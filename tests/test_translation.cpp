#include <gtest/gtest.h>

#include "model/quantity.hpp"
#include "synthesis/dataplane.hpp"
#include "verify/engine.hpp"
#include "verify/translation.hpp"

namespace aalwines::verify {
namespace {

class TranslationFixture : public ::testing::Test {
protected:
    Network net = synthesis::make_figure1_network();

    query::Query parse(const std::string& text) { return query::parse_query(text, net); }
};

TEST_F(TranslationFixture, ValidHeaderRegexMatchesH) {
    const auto nfa = nfa::Nfa::compile(valid_header_regex(net.labels));
    const auto ip1 = *net.labels.find(LabelType::Ip, "ip1");
    const auto s20 = *net.labels.find(LabelType::MplsBos, "20");
    const auto m30 = *net.labels.find(LabelType::Mpls, "30");
    // Top-first words.
    EXPECT_TRUE(nfa.accepts(std::vector<nfa::Symbol>{ip1}));
    EXPECT_TRUE(nfa.accepts(std::vector<nfa::Symbol>{s20, ip1}));
    EXPECT_TRUE(nfa.accepts(std::vector<nfa::Symbol>{m30, s20, ip1}));
    EXPECT_TRUE(nfa.accepts(std::vector<nfa::Symbol>{m30, m30, s20, ip1}));
    EXPECT_FALSE(nfa.accepts(std::vector<nfa::Symbol>{m30, ip1}));
    EXPECT_FALSE(nfa.accepts(std::vector<nfa::Symbol>{ip1, ip1}));
    EXPECT_FALSE(nfa.accepts(std::vector<nfa::Symbol>{s20, s20, ip1}));
    EXPECT_FALSE(nfa.accepts(std::vector<nfa::Symbol>{}));
}

TEST_F(TranslationFixture, BuildsControlStatesAndRules) {
    const auto query = parse("<ip> [.#v0] .* [v3#.] <ip> 0");
    Translation translation(net, query, {});
    EXPECT_GT(translation.pda().state_count(), 0u);
    EXPECT_GT(translation.pda().rule_count(), 0u);
    EXPECT_FALSE(translation.initial_states().empty());
    EXPECT_FALSE(translation.accepting_states().empty());
}

TEST_F(TranslationFixture, PostStarFindsWitnessTrace) {
    const auto query = parse("<ip> [.#v0] .* [v3#.] <ip> 0");
    Translation translation(net, query, {});
    auto aut = translation.make_initial_automaton();
    pda::post_star(aut);
    const auto accepted =
        pda::find_accepted(aut, translation.accepting_states(),
                           translation.final_header_nfa(),
                           static_cast<pda::Symbol>(net.labels.size()));
    ASSERT_TRUE(accepted.has_value());
    const auto witness = pda::unroll_post_star(aut, *accepted);
    ASSERT_TRUE(witness.has_value());
    const auto trace = translation.witness_to_trace(*witness);
    ASSERT_TRUE(trace.has_value());
    // The witness must be one of σ0 / σ1: 4 links, starting at e0 (id 0),
    // ending at e7 (id 7), feasible without failures.
    ASSERT_EQ(trace->size(), 4u);
    EXPECT_EQ(trace->entries.front().link, 0u);
    EXPECT_EQ(trace->entries.back().link, 7u);
    const auto feasibility = check_feasibility(net, *trace, 0);
    EXPECT_TRUE(feasibility.feasible) << feasibility.reason;
}

TEST_F(TranslationFixture, UnderApproximationBoundsFailures) {
    // k=0 under-approximation must not contain the failover trace σ2.
    const auto query = parse("<ip> [.#v0] [v0#v2] [v2#v4] [v4#v3] [v3#.] <ip> 0");
    TranslationOptions options;
    options.approximation = Approximation::Under;
    Translation translation(net, query, options);
    auto aut = translation.make_initial_automaton();
    pda::post_star(aut);
    EXPECT_FALSE(pda::find_accepted(aut, translation.accepting_states(),
                                    translation.final_header_nfa(),
                                    static_cast<pda::Symbol>(net.labels.size()))
                     .has_value());
}

TEST_F(TranslationFixture, UnderApproximationAdmitsWithBudget) {
    const auto query = parse("<ip> [.#v0] [v0#v2] [v2#v4] [v4#v3] [v3#.] <ip> 1");
    TranslationOptions options;
    options.approximation = Approximation::Under;
    Translation translation(net, query, options);
    auto aut = translation.make_initial_automaton();
    pda::post_star(aut);
    const auto accepted =
        pda::find_accepted(aut, translation.accepting_states(),
                           translation.final_header_nfa(),
                           static_cast<pda::Symbol>(net.labels.size()));
    ASSERT_TRUE(accepted.has_value());
    const auto witness = pda::unroll_post_star(aut, *accepted);
    ASSERT_TRUE(witness.has_value());
    const auto trace = translation.witness_to_trace(*witness);
    ASSERT_TRUE(trace.has_value());
    EXPECT_TRUE(check_feasibility(net, *trace, 1).feasible);
    EXPECT_EQ(trace->size(), 5u); // σ2
}

TEST_F(TranslationFixture, ReductionShrinksRuleSet) {
    // A very specific query: most forwarding entries cannot participate.
    const auto query = parse("<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0");
    Translation with(net, query, {});
    const auto before = with.pda().rule_count();
    const auto stats = with.reduce(2);
    EXPECT_EQ(stats.rules_before, before);
    EXPECT_LT(stats.rules_after, before);

    // Reduction must not change the verdict.
    auto aut = with.make_initial_automaton();
    pda::post_star(aut);
    EXPECT_TRUE(pda::find_accepted(aut, with.accepting_states(), with.final_header_nfa(),
                                   static_cast<pda::Symbol>(net.labels.size()))
                    .has_value());
}

TEST_F(TranslationFixture, WeightedTranslationReportsMinimum) {
    // φ4 with (Hops, Failures + 3*Tunnels): minimum witness is σ3 = (5, 0).
    const auto query = parse("<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1");
    const auto weights = parse_weight_expression("hops, failures + 3*tunnels");
    TranslationOptions options;
    options.weights = &weights;
    Translation translation(net, query, options);
    auto aut = translation.make_initial_automaton();
    pda::post_star(aut);
    const auto accepted =
        pda::find_accepted(aut, translation.accepting_states(),
                           translation.final_header_nfa(),
                           static_cast<pda::Symbol>(net.labels.size()));
    ASSERT_TRUE(accepted.has_value());
    EXPECT_EQ(accepted->weight.components(), (std::vector<std::uint64_t>{5, 0}));
    const auto witness = pda::unroll_post_star(aut, *accepted);
    ASSERT_TRUE(witness.has_value());
    const auto trace = translation.witness_to_trace(*witness);
    ASSERT_TRUE(trace.has_value());
    EXPECT_EQ(evaluate(net, *trace, weights), (std::vector<std::uint64_t>{5, 0}));
}

TEST_F(TranslationFixture, FinalAutomatonDrivesPreStar) {
    const auto query = parse("<ip> [.#v0] .* [v3#.] <ip> 0");
    Translation translation(net, query, {});
    auto aut = translation.make_final_automaton();
    pda::pre_star(aut);
    const auto accepted =
        pda::find_accepted(aut, translation.initial_states(),
                           translation.initial_header_nfa(),
                           static_cast<pda::Symbol>(net.labels.size()));
    ASSERT_TRUE(accepted.has_value());
    const auto witness = pda::unroll_pre_star(aut, *accepted);
    ASSERT_TRUE(witness.has_value());
    const auto trace = translation.witness_to_trace(*witness);
    ASSERT_TRUE(trace.has_value());
    EXPECT_TRUE(check_feasibility(net, *trace, 0).feasible);
}


/// Deep operation chains: pops reveal unknown symbols, so the translation
/// must branch per stratum mid-chain and still produce exact traces.
TEST(TranslationChains, MultiPopChainsVerifyEndToEnd) {
    Network net;
    net.name = "chains";
    auto& topology = net.topology;
    const auto a = topology.add_router("A");
    const auto b = topology.add_router("B");
    const auto c = topology.add_router("C");
    auto link = [&](RouterId s, std::string_view si, RouterId t, std::string_view ti) {
        return topology.add_link(s, topology.add_interface(s, si), t,
                                 topology.add_interface(t, ti));
    };
    const auto ab = link(a, "o", b, "i");
    const auto bc = link(b, "o", c, "i");
    auto& labels = net.labels;
    const auto ip1 = labels.add(LabelType::Ip, "ip1");
    const auto ip2 = labels.add(LabelType::Ip, "ip2");
    const auto s0 = labels.add(LabelType::MplsBos, "0");
    const auto m0 = labels.add(LabelType::Mpls, "m0");
    const auto m1 = labels.add(LabelType::Mpls, "m1");
    (void)ip1;
    (void)m1;
    // Terminate a two-level tunnel and rewrite the revealed IP in one rule:
    // pop (m0 off), pop (s0 off), swap(ip2).
    net.routing.add_rule(ab, m0, 1, bc, {Op::pop(), Op::pop(), Op::swap(ip2)});
    // And a deep push chain in the other direction of processing:
    // swap(m1) then two pushes (stack grows by two).
    net.routing.add_rule(ab, s0, 1, bc, {Op::swap(s0), Op::push(m0), Op::push(m1)});
    net.routing.validate(topology);

    {
        const auto q = query::parse_query("<m0 s0 ip> [A#B] [B#C] <ip2> 0", net);
        const auto result = verify(net, q, {});
        ASSERT_EQ(result.answer, Answer::Yes);
        ASSERT_TRUE(result.trace.has_value());
        EXPECT_EQ(result.trace->entries.back().header, (Header{ip2}));
    }
    {
        // The multi-pop rule must NOT fire when the stack is too shallow
        // for its rewrite to stay valid (pop pop on [s0 ip] pops the ip).
        const auto q = query::parse_query("<s0 ip> [A#B] [B#C] <ip2> 0", net);
        EXPECT_EQ(verify(net, q, {}).answer, Answer::No);
    }
    {
        const auto q =
            query::parse_query("<s0 ip> [A#B] [B#C] <m1 m0 s0 ip> 0", net);
        const auto result = verify(net, q, {});
        ASSERT_EQ(result.answer, Answer::Yes);
        ASSERT_TRUE(result.trace.has_value());
        EXPECT_EQ(result.trace->entries.back().header.size(), 4u);
    }
}

} // namespace
} // namespace aalwines::verify
