// Witness-replay validation (src/validate/witness.hpp) and differential
// cross-engine checking (src/validate/cross_check.hpp): real engine results
// must replay cleanly through the concrete dataplane semantics, and every
// seeded trace corruption — wrong rewrite, budget violation, tampered
// weight — must be flagged.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "model/quantity.hpp"
#include "model/simulator.hpp"
#include "synthesis/dataplane.hpp"
#include "validate/cross_check.hpp"
#include "validate/witness.hpp"
#include "verify/engine.hpp"

namespace aalwines::validate {
namespace {

Network figure1() { return synthesis::make_figure1_network(); }

verify::VerifyResult run(const Network& net, const query::Query& query,
                         verify::VerifyOptions options = {}) {
    options.max_witnesses = std::max<std::size_t>(options.max_witnesses, 3);
    return verify::verify(net, query, options);
}

// ---- replay of genuine engine witnesses -------------------------------------

TEST(WitnessReplay, EngineWitnessReplaysAndAccumulatesLikeEvaluate) {
    const auto net = figure1();
    const auto query = query::parse_query("<ip> [.#v0] .* [v3#.] <ip> 0", net);
    const auto result = run(net, query);
    ASSERT_EQ(result.answer, verify::Answer::Yes);
    ASSERT_TRUE(result.trace.has_value());

    Report report;
    const auto replay = replay_trace(net, *result.trace, report);
    ASSERT_TRUE(replay.has_value()) << report.to_string();
    EXPECT_TRUE(report.ok()) << report.to_string();
    EXPECT_TRUE(replay->required_failures.empty());

    // The replayer's accumulation is an independent implementation of the
    // atomic quantities; it must agree with model/quantity.hpp exactly.
    const auto weights =
        parse_weight_expression("links, hops, distance, failures, tunnels");
    const auto reference = evaluate(net, *result.trace, weights);
    ASSERT_EQ(reference.size(), 5u);
    EXPECT_EQ(replay->of(Quantity::Links), reference[0]);
    EXPECT_EQ(replay->of(Quantity::Hops), reference[1]);
    EXPECT_EQ(replay->of(Quantity::Distance), reference[2]);
    EXPECT_EQ(replay->of(Quantity::Failures), reference[3]);
    EXPECT_EQ(replay->of(Quantity::Tunnels), reference[4]);
}

TEST(WitnessReplay, PropertyEveryYesWitnessOfTheQueryBatteryReplays) {
    const auto net = figure1();
    const std::vector<std::string> battery = {
        "<ip> .* <ip> 0",
        "<ip> [.#v0] .* [v3#.] <ip> 0",
        "<smpls ip> .* <smpls ip> 1",
        "<smpls? ip> [.#v0] .* [v3#.] <smpls? ip> 1",
        "<ip> [.#v0] .* [v3#.] <mpls* smpls ip> 2",
        "<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1",
    };
    for (const auto& text : battery) {
        const auto query = query::parse_query(text, net);
        const auto result = run(net, query);
        const auto report = check_result(net, query, result);
        EXPECT_TRUE(report.ok()) << text << "\n" << report.to_string();
    }
}

TEST(WitnessReplay, WeightedResultWeightMatchesReEvaluation) {
    const auto net = figure1();
    const auto query =
        query::parse_query("<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1", net);
    const auto weights = parse_weight_expression("hops, failures + 3*tunnels");
    verify::VerifyOptions options;
    options.engine = verify::EngineKind::Weighted;
    options.weights = &weights;
    const auto result = run(net, query, options);
    ASSERT_EQ(result.answer, verify::Answer::Yes);
    EXPECT_TRUE(check_result(net, query, result, &weights).ok());
}

// ---- seeded corruptions must be flagged -------------------------------------

TEST(WitnessMutation, TamperedHeaderIsFlagged) {
    const auto net = figure1();
    const auto query = query::parse_query("<ip> [.#v0] .* [v3#.] <ip> 0", net);
    auto result = run(net, query);
    ASSERT_TRUE(result.trace.has_value());
    ASSERT_GE(result.trace->size(), 3u);

    const auto mpls = net.labels.find(LabelType::Mpls, "30");
    ASSERT_TRUE(mpls.has_value());
    result.trace->entries[1].header.push_back(*mpls);
    Report report;
    EXPECT_FALSE(replay_trace(net, *result.trace, report).has_value());
    EXPECT_FALSE(report.ok());
}

TEST(WitnessMutation, TamperedLinkIsFlagged) {
    const auto net = figure1();
    const auto query = query::parse_query("<ip> [.#v0] .* [v3#.] <ip> 0", net);
    auto result = run(net, query);
    ASSERT_TRUE(result.trace.has_value());
    ASSERT_GE(result.trace->size(), 3u);

    // Reroute a middle entry over a link its predecessor cannot reach.
    auto& entry = result.trace->entries[1];
    entry.link = (entry.link + 3) % static_cast<LinkId>(net.topology.link_count());
    Report report;
    EXPECT_FALSE(replay_trace(net, *result.trace, report).has_value());
    EXPECT_FALSE(report.ok());
}

TEST(WitnessMutation, DroppedStepIsFlagged) {
    const auto net = figure1();
    const auto query = query::parse_query("<ip> [.#v0] .* [v3#.] <ip> 0", net);
    auto result = run(net, query);
    ASSERT_TRUE(result.trace.has_value());
    ASSERT_GE(result.trace->size(), 3u);

    result.trace->entries.erase(result.trace->entries.begin() + 1);
    Report report;
    check_witness(net, query, *result.trace, report);
    EXPECT_FALSE(report.ok());
}

TEST(WitnessMutation, BackupGroupTraceExceedsZeroFailureBudget) {
    const auto net = figure1();
    // Enter v2 on e1 with '20' on top: priority 1 forwards over e4, the
    // priority-2 protection path swaps to '21' and pushes '30' over e5.
    const auto v0 = net.topology.find_router("v0");
    ASSERT_TRUE(v0.has_value());
    const auto e1 = net.topology.out_link_through(*v0, "e1");
    ASSERT_TRUE(e1.has_value());
    const auto ip = net.labels.find(LabelType::Ip, "ip1");
    const auto s20 = net.labels.find(LabelType::MplsBos, "20");
    ASSERT_TRUE(ip && s20);
    const Header header{*ip, *s20};

    const auto* entry = net.routing.entry(*e1, *s20);
    ASSERT_NE(entry, nullptr);
    ASSERT_GE(entry->size(), 2u);
    const auto primary = (*entry)[0].front().out_link;

    const Simulator simulator(net, {primary});
    Trace trace{{{*e1, header}}};
    bool stepped = false;
    for (const auto& rule : simulator.active_choices(*e1, header)) {
        if (auto next = simulator.step(trace.entries.front(), rule)) {
            trace.entries.push_back(std::move(*next));
            stepped = true;
            break;
        }
    }
    ASSERT_TRUE(stepped) << "no active protection alternative under F={primary}";

    // Within budget k=1 the trace is a fine witness of its own query...
    const auto lenient =
        query::parse_query(query_for_trace(net, trace, 1), net);
    Report ok_report;
    check_witness(net, lenient, trace, ok_report);
    EXPECT_TRUE(ok_report.ok()) << ok_report.to_string();

    // ...but claiming the protection path without any failure budget means
    // the router skipped a live priority group: the validator must object.
    const auto strict = query::parse_query(query_for_trace(net, trace, 0), net);
    Report report;
    check_witness(net, strict, trace, report);
    EXPECT_FALSE(report.ok());
    EXPECT_NE(report.to_string().find("query budget"), std::string::npos)
        << report.to_string();
}

TEST(WitnessMutation, TamperedWeightVectorIsFlagged) {
    const auto net = figure1();
    const auto query =
        query::parse_query("<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1", net);
    const auto weights = parse_weight_expression("hops, failures + 3*tunnels");
    verify::VerifyOptions options;
    options.engine = verify::EngineKind::Weighted;
    options.weights = &weights;
    auto result = run(net, query, options);
    ASSERT_EQ(result.answer, verify::Answer::Yes);
    ASSERT_FALSE(result.weight.empty());

    result.weight[0] += 1;
    const auto report = check_result(net, query, result, &weights);
    EXPECT_FALSE(report.ok());
    EXPECT_NE(report.to_string().find("does not match"), std::string::npos)
        << report.to_string();
}

TEST(WitnessMutation, NonYesAnswerWithAttachedTraceIsFlagged) {
    const auto net = figure1();
    const auto query = query::parse_query("<ip> [.#v0] .* [v3#.] <ip> 0", net);
    auto result = run(net, query);
    ASSERT_EQ(result.answer, verify::Answer::Yes);
    ASSERT_TRUE(result.trace.has_value());
    result.answer = verify::Answer::No; // keep the trace attached
    EXPECT_FALSE(check_result(net, query, result).ok());
}

TEST(WitnessMutation, CanonicalTraceMissingFromWitnessListIsFlagged) {
    const auto net = figure1();
    const auto query = query::parse_query("<ip> [.#v0] .* [v3#.] <ip> 0", net);
    auto result = run(net, query);
    ASSERT_EQ(result.answer, verify::Answer::Yes);
    ASSERT_FALSE(result.witnesses.empty());

    // Replace the canonical trace with a *different* (still valid) witness
    // of the same query: the protection variant one hop longer, if any —
    // otherwise simply truncate the witness list inconsistently.
    result.witnesses.erase(result.witnesses.begin());
    if (std::find(result.witnesses.begin(), result.witnesses.end(), *result.trace) ==
        result.witnesses.end() &&
        !result.witnesses.empty()) {
        const auto report = check_result(net, query, result);
        EXPECT_FALSE(report.ok());
        EXPECT_NE(report.to_string().find("canonical trace is missing"),
                  std::string::npos)
            << report.to_string();
    }
}

// ---- differential cross-engine checking -------------------------------------

TEST(CrossCheck, ScenarioCountIsBinomialSumWithSaturation) {
    EXPECT_EQ(exact_scenario_count(3, 0), 1u);
    EXPECT_EQ(exact_scenario_count(3, 1), 4u);
    EXPECT_EQ(exact_scenario_count(3, 2), 7u);
    EXPECT_EQ(exact_scenario_count(3, 3), 8u);
    EXPECT_EQ(exact_scenario_count(3, 99), 8u); // k clamps to |E|
    EXPECT_EQ(exact_scenario_count(200, 100), UINT64_MAX);
}

TEST(CrossCheck, EnginesAgreeOnFigure1) {
    const auto net = figure1();
    for (const auto* text : {"<ip> [.#v0] .* [v3#.] <ip> 0",
                             "<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1"}) {
        const auto query = query::parse_query(text, net);
        CrossCheckOptions options;
        options.deep = true;
        const auto outcome = cross_check(net, query, options);
        EXPECT_TRUE(outcome.ok()) << text << "\n" << outcome.report.to_string();
        EXPECT_TRUE(outcome.moped.has_value()) << text;
        EXPECT_TRUE(outcome.exact.has_value())
            << text << ": figure1 is small enough for the exact engine";
    }
}

TEST(CrossCheck, WeightedDeepCheckMatchesExactMinimum) {
    const auto net = figure1();
    const auto query =
        query::parse_query("<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1", net);
    const auto weights = parse_weight_expression("hops, failures + 3*tunnels");
    CrossCheckOptions options;
    options.weights = &weights;
    options.deep = true;
    const auto outcome = cross_check(net, query, options);
    EXPECT_TRUE(outcome.ok()) << outcome.report.to_string();
    EXPECT_FALSE(outcome.moped.has_value()) << "Moped cannot carry weights";
    ASSERT_TRUE(outcome.exact.has_value());
    EXPECT_EQ(outcome.dual.weight, outcome.exact->weight);
}

} // namespace
} // namespace aalwines::validate
