#include <gtest/gtest.h>

#include "pda_test_util.hpp"

namespace aalwines::pda {
namespace {

using testutil::automaton_for_configs;
using testutil::exact_word;

constexpr Symbol A = 0, B = 1, C = 2;

TEST(PreStar, SwapRule) {
    Pda pda(3);
    const auto p0 = pda.add_state();
    const auto p1 = pda.add_state();
    pda.add_rule({p0, p1, PreSpec::concrete(A), Rule::OpKind::Swap, B, k_no_symbol,
                  Weight::one(), 0});
    // Target set: (p1, B).  pre* must also accept (p0, A).
    auto aut = automaton_for_configs(pda, {{p1, {B}}});
    pre_star(aut);
    const StateId starts[] = {p0};
    EXPECT_TRUE(find_accepted(aut, starts, exact_word({A}), 3).has_value());
    EXPECT_FALSE(find_accepted(aut, starts, exact_word({B}), 3).has_value());
}

TEST(PreStar, PushThenPopWitnessRunsForward) {
    Pda pda(3);
    const auto p0 = pda.add_state();
    const auto p1 = pda.add_state();
    const auto p2 = pda.add_state();
    pda.add_rule({p0, p1, PreSpec::concrete(A), Rule::OpKind::Push, B, k_same_symbol,
                  Weight::one(), 0});
    pda.add_rule({p1, p2, PreSpec::concrete(B), Rule::OpKind::Pop, k_no_symbol,
                  k_no_symbol, Weight::one(), 1});
    auto aut = automaton_for_configs(pda, {{p2, {A}}});
    pre_star(aut);

    const StateId starts[] = {p0};
    const auto accepted = find_accepted(aut, starts, exact_word({A}), 3);
    ASSERT_TRUE(accepted.has_value());
    const auto witness = unroll_pre_star(aut, *accepted);
    ASSERT_TRUE(witness.has_value());
    EXPECT_EQ(witness->initial_state, p0);
    EXPECT_EQ(witness->initial_stack, (std::vector<Symbol>{A}));
    ASSERT_EQ(witness->rules.size(), 2u);
    EXPECT_EQ(pda.rule(witness->rules[0]).tag, 0u);
    EXPECT_EQ(pda.rule(witness->rules[1]).tag, 1u);
    const auto replay = replay_witness(pda, *witness);
    ASSERT_TRUE(replay.has_value());
    EXPECT_EQ(replay->back().first, p2);
    EXPECT_EQ(replay->back().second, (std::vector<Symbol>{A}));
}

TEST(PreStar, PopRuleAloneReachesTargetState) {
    // Target: (p1, ε-reachable only through the pop) — we encode the target
    // (p1, A) and ask which (p0, ? A) configurations can reach it.
    Pda pda(3);
    const auto p0 = pda.add_state();
    const auto p1 = pda.add_state();
    pda.add_rule({p0, p1, PreSpec::concrete(B), Rule::OpKind::Pop, k_no_symbol,
                  k_no_symbol, Weight::one(), 0});
    auto aut = automaton_for_configs(pda, {{p1, {A}}});
    pre_star(aut);
    const StateId starts[] = {p0};
    EXPECT_TRUE(find_accepted(aut, starts, exact_word({B, A}), 3).has_value());
    EXPECT_FALSE(find_accepted(aut, starts, exact_word({C, A}), 3).has_value());
}

TEST(PreStar, WeightedPrefersCheaperDerivation) {
    Pda pda(3);
    const auto p0 = pda.add_state();
    const auto p1 = pda.add_state();
    const auto p2 = pda.add_state();
    pda.add_rule({p0, p2, PreSpec::concrete(A), Rule::OpKind::Swap, C, k_no_symbol,
                  Weight::scalar(10), 0});
    pda.add_rule({p0, p1, PreSpec::concrete(A), Rule::OpKind::Swap, B, k_no_symbol,
                  Weight::scalar(2), 1});
    pda.add_rule({p1, p2, PreSpec::concrete(B), Rule::OpKind::Swap, C, k_no_symbol,
                  Weight::scalar(3), 2});
    auto aut = automaton_for_configs(pda, {{p2, {C}}});
    pre_star(aut);
    const StateId starts[] = {p0};
    const auto accepted = find_accepted(aut, starts, exact_word({A}), 3);
    ASSERT_TRUE(accepted.has_value());
    EXPECT_EQ(accepted->weight.components(), (std::vector<std::uint64_t>{5}));
}

TEST(PreStar, ClassPreRulesYieldSetTransitions) {
    // p0 [class0] -> p1 B: pre* over target (p1, B) accepts (p0, s) for
    // every class-0 symbol s.
    Pda pda(4);
    for (Symbol s = 0; s < 4; ++s) pda.set_symbol_class(s, s % 2);
    const auto p0 = pda.add_state();
    const auto p1 = pda.add_state();
    pda.add_rule({p0, p1, PreSpec::of_class(0), Rule::OpKind::Swap, B, k_no_symbol,
                  Weight::one(), 0});
    auto aut = automaton_for_configs(pda, {{p1, {B}}});
    pre_star(aut);
    const StateId starts[] = {p0};
    EXPECT_TRUE(find_accepted(aut, starts, exact_word({0}), 4).has_value());
    EXPECT_TRUE(find_accepted(aut, starts, exact_word({2}), 4).has_value());
    EXPECT_FALSE(find_accepted(aut, starts, exact_word({3}), 4).has_value());
}

TEST(PreStar, SameSymbolPushIntersectsPreClass) {
    // p0 [class0] -> p1 B <matched>: reaching (p1, B s A) for a class-0 s
    // requires starting from (p0, s A).
    Pda pda(4);
    for (Symbol s = 0; s < 4; ++s) pda.set_symbol_class(s, s % 2);
    const auto p0 = pda.add_state();
    const auto p1 = pda.add_state();
    pda.add_rule({p0, p1, PreSpec::of_class(0), Rule::OpKind::Push, B, k_same_symbol,
                  Weight::one(), 0});
    auto aut = automaton_for_configs(pda, {{p1, {B, 2, A}}, {p1, {B, 3, A}}});
    pre_star(aut);
    const StateId starts[] = {p0};
    EXPECT_TRUE(find_accepted(aut, starts, exact_word({2, A}), 4).has_value());
    // Symbol 3 is class 1: the rule cannot have produced (p1, B 3 A).
    EXPECT_FALSE(find_accepted(aut, starts, exact_word({3, A}), 4).has_value());
}

} // namespace
} // namespace aalwines::pda
