// Property tests: the dual engine against an exhaustive reference that
// enumerates failure sets explicitly (the semantics of Definition 4 and
// Problem 1), on small random networks.

#include <gtest/gtest.h>

#include <deque>
#include <random>
#include <set>

#include <functional>

#include "model/quantity.hpp"
#include "model/simulator.hpp"
#include "nfa/nfa.hpp"
#include "verify/engine.hpp"

namespace aalwines::verify {
namespace {

/// Random small network: `routers` routers in a ring plus random chords,
/// random per-(link,label) rules with ops valid on the expected stratum.
Network random_network(std::mt19937_64& rng, std::size_t routers) {
    Network net;
    net.name = "random";
    auto& topology = net.topology;
    for (std::size_t i = 0; i < routers; ++i) topology.add_router("r" + std::to_string(i));
    std::size_t iface = 0;
    auto duplex = [&](RouterId a, RouterId b) {
        topology.add_duplex(a, "i" + std::to_string(iface++), b,
                            "i" + std::to_string(iface++));
    };
    for (std::size_t i = 0; i < routers; ++i)
        duplex(static_cast<RouterId>(i), static_cast<RouterId>((i + 1) % routers));
    for (std::size_t i = 0; i < routers / 2; ++i) {
        const auto a = static_cast<RouterId>(rng() % routers);
        const auto b = static_cast<RouterId>(rng() % routers);
        if (a != b) duplex(a, b);
    }

    auto& labels = net.labels;
    const auto ip = labels.add(LabelType::Ip, "ip0");
    const std::vector<Label> bos{labels.add(LabelType::MplsBos, "b0"),
                                 labels.add(LabelType::MplsBos, "b1")};
    const std::vector<Label> mpls{labels.add(LabelType::Mpls, "m0"),
                                  labels.add(LabelType::Mpls, "m1")};
    std::vector<Label> all{ip, bos[0], bos[1], mpls[0], mpls[1]};

    auto random_ops = [&](Label top) {
        std::vector<Op> ops;
        const auto type = labels.type_of(top);
        switch (rng() % 5) {
            case 0: break; // ε
            case 1:        // swap within stratum
                if (type == LabelType::MplsBos) ops.push_back(Op::swap(bos[rng() % 2]));
                else if (type == LabelType::Mpls) ops.push_back(Op::swap(mpls[rng() % 2]));
                break;
            case 2: // push valid on stratum
                if (type == LabelType::Ip) ops.push_back(Op::push(bos[rng() % 2]));
                else ops.push_back(Op::push(mpls[rng() % 2]));
                break;
            case 3: // pop when possible
                if (type != LabelType::Ip) ops.push_back(Op::pop());
                break;
            default: // swap o push
                if (type == LabelType::MplsBos) {
                    ops.push_back(Op::swap(bos[rng() % 2]));
                    ops.push_back(Op::push(mpls[rng() % 2]));
                }
                break;
        }
        return ops;
    };

    auto& routing = net.routing;
    for (const auto& link : topology.links()) {
        for (const auto label : all) {
            if (rng() % 3 != 0) continue; // sparse tables
            const auto at = link.target;
            const auto& outs = topology.out_links(at);
            const auto groups = 1 + rng() % 2;
            for (std::uint32_t g = 1; g <= groups; ++g) {
                const auto out = outs[rng() % outs.size()];
                routing.add_rule(link.id, label, g, out, random_ops(label));
            }
        }
    }
    routing.validate(topology);
    return net;
}

/// Exhaustive reference: enumerate failure sets F with |F| <= k; under each
/// F, search (link, header, path-state) products breadth-first with bounded
/// header depth and step count.
bool reference_satisfiable(const Network& net, const query::Query& query,
                           std::size_t max_steps = 10, std::size_t max_depth = 4) {
    const auto domain = static_cast<nfa::Symbol>(net.labels.size());
    const auto nfa_a = nfa::Nfa::compile(query.initial_header);
    const auto nfa_b = nfa::Nfa::compile(query.path);
    const auto nfa_c = nfa::Nfa::compile(query.final_header);

    // Initial headers: enumerate valid headers up to max_depth accepted by a.
    std::vector<Header> initial_headers;
    {
        std::vector<Header> partial;
        for (const auto ip : net.labels.of_type(LabelType::Ip)) partial.push_back({ip});
        for (auto& h : partial) {
            initial_headers.push_back(h);
            for (const auto b : net.labels.of_type(LabelType::MplsBos)) {
                Header with_bos = h;
                with_bos.push_back(b);
                initial_headers.push_back(with_bos);
                Header grow = with_bos;
                while (grow.size() < max_depth) {
                    for (const auto m : net.labels.of_type(LabelType::Mpls)) {
                        Header next = grow;
                        next.push_back(m);
                        initial_headers.push_back(next);
                    }
                    grow.push_back(net.labels.of_type(LabelType::Mpls)[0]);
                }
            }
        }
    }
    auto accepts_header = [&](const nfa::Nfa& nfa, const Header& header) {
        std::vector<nfa::Symbol> word(header.rbegin(), header.rend()); // top first
        return nfa.accepts(word);
    };

    // Enumerate failure sets.
    const auto link_count = net.topology.link_count();
    std::vector<std::vector<LinkId>> failure_sets{{}};
    if (query.max_failures >= 1)
        for (LinkId e = 0; e < link_count; ++e) failure_sets.push_back({e});
    if (query.max_failures >= 2)
        for (LinkId e = 0; e < link_count; ++e)
            for (LinkId f = e + 1; f < link_count; ++f) failure_sets.push_back({e, f});

    for (const auto& failed_links : failure_sets) {
        std::set<LinkId> failed(failed_links.begin(), failed_links.end());
        struct State {
            LinkId link;
            Header header;
            std::set<nfa::Nfa::StateId> path_states;
            std::size_t steps;
            bool operator<(const State& other) const {
                return std::tie(link, header, path_states, steps) <
                       std::tie(other.link, other.header, other.path_states, other.steps);
            }
        };
        std::deque<State> queue;
        std::set<std::tuple<LinkId, Header, std::set<nfa::Nfa::StateId>>> seen;
        auto path_accepting = [&](const std::set<nfa::Nfa::StateId>& states) {
            for (const auto s : states)
                if (nfa_b.states()[s].accepting) return true;
            return false;
        };
        auto step_path = [&](const std::set<nfa::Nfa::StateId>& states, LinkId link) {
            std::set<nfa::Nfa::StateId> next;
            for (const auto s : states)
                for (const auto& edge : nfa_b.states()[s].edges)
                    if (edge.symbols.contains(link)) next.insert(edge.target);
            return next;
        };
        (void)domain;

        for (LinkId e1 = 0; e1 < link_count; ++e1) {
            if (failed.contains(e1)) continue;
            const auto q1 = step_path(
                {nfa_b.initial().begin(), nfa_b.initial().end()}, e1);
            if (q1.empty()) continue;
            for (const auto& h1 : initial_headers) {
                if (!accepts_header(nfa_a, h1)) continue;
                State state{e1, h1, q1, 0};
                if (seen.emplace(e1, h1, q1).second) queue.push_back(std::move(state));
            }
        }
        while (!queue.empty()) {
            auto state = queue.front();
            queue.pop_front();
            if (path_accepting(state.path_states) && accepts_header(nfa_c, state.header))
                return true;
            if (state.steps >= max_steps) continue;
            const auto* groups = net.routing.entry(state.link, state.header.back());
            if (groups == nullptr) continue;
            // First active group under F.
            for (const auto& group : *groups) {
                bool any_active = false;
                for (const auto& rule : group) {
                    if (failed.contains(rule.out_link)) continue;
                    any_active = true;
                    auto next_header = apply_ops(net.labels, state.header, rule.ops);
                    if (!next_header || next_header->size() > max_depth) continue;
                    const auto next_states = step_path(state.path_states, rule.out_link);
                    if (next_states.empty()) continue;
                    if (seen.emplace(rule.out_link, *next_header, next_states).second)
                        queue.push_back({rule.out_link, std::move(*next_header),
                                         next_states, state.steps + 1});
                }
                if (any_active) break; // only the first active group forwards
            }
        }
    }
    return false;
}

/// Exhaustive minimum (Problem 2 reference): enumerate every witness trace
/// (bounded steps/header depth) under every failure set |F| <= k, evaluate
/// the weight vector on each, and return the lexicographic minimum.
std::optional<std::vector<std::uint64_t>> reference_minimum(
    const Network& net, const query::Query& query, const WeightExpr& weights,
    std::size_t max_steps = 8, std::size_t max_depth = 4) {
    const auto nfa_a = nfa::Nfa::compile(query.initial_header);
    const auto nfa_b = nfa::Nfa::compile(query.path);
    const auto nfa_c = nfa::Nfa::compile(query.final_header);
    auto accepts_header = [&](const nfa::Nfa& nfa, const Header& header) {
        std::vector<nfa::Symbol> word(header.rbegin(), header.rend());
        return nfa.accepts(word);
    };

    std::vector<Header> initial_headers;
    for (const auto ip : net.labels.of_type(LabelType::Ip)) {
        initial_headers.push_back({ip});
        for (const auto b : net.labels.of_type(LabelType::MplsBos)) {
            Header h{ip, b};
            initial_headers.push_back(h);
            for (const auto m : net.labels.of_type(LabelType::Mpls)) {
                Header h2 = h;
                h2.push_back(m);
                initial_headers.push_back(h2);
            }
        }
    }

    const auto link_count = net.topology.link_count();
    std::vector<std::vector<LinkId>> failure_sets{{}};
    if (query.max_failures >= 1)
        for (LinkId e = 0; e < link_count; ++e) failure_sets.push_back({e});

    std::optional<std::vector<std::uint64_t>> best;
    auto consider = [&](const Trace& trace) {
        const auto value = evaluate(net, trace, weights);
        if (!best || value < *best) best = value;
    };

    // DFS over traces (not just states): weights depend on the whole trace.
    for (const auto& failed_links : failure_sets) {
        std::set<LinkId> failed(failed_links.begin(), failed_links.end());
        Simulator simulator(net, FailureSet(failed.begin(), failed.end()));
        std::function<void(Trace&, std::set<nfa::Nfa::StateId>)> extend =
            [&](Trace& trace, std::set<nfa::Nfa::StateId> states) {
                bool accepting = false;
                for (const auto s : states)
                    if (nfa_b.states()[s].accepting) accepting = true;
                if (accepting && accepts_header(nfa_c, trace.entries.back().header)) {
                    // A candidate witness; it must also be globally feasible.
                    if (check_feasibility(net, trace, query.max_failures).feasible)
                        consider(trace);
                }
                if (trace.size() >= max_steps) return;
                for (const auto& rule :
                     simulator.active_choices(trace.entries.back().link,
                                              trace.entries.back().header)) {
                    auto next = simulator.step(trace.entries.back(), rule);
                    if (!next || next->header.size() > max_depth) continue;
                    std::set<nfa::Nfa::StateId> next_states;
                    for (const auto s : states)
                        for (const auto& edge : nfa_b.states()[s].edges)
                            if (edge.symbols.contains(rule.out_link))
                                next_states.insert(edge.target);
                    if (next_states.empty()) continue;
                    trace.entries.push_back(std::move(*next));
                    extend(trace, std::move(next_states));
                    trace.entries.pop_back();
                }
            };
        for (LinkId e1 = 0; e1 < link_count; ++e1) {
            if (failed.contains(e1)) continue;
            std::set<nfa::Nfa::StateId> q1;
            for (const auto q0 : nfa_b.initial())
                for (const auto& edge : nfa_b.states()[q0].edges)
                    if (edge.symbols.contains(e1)) q1.insert(edge.target);
            if (q1.empty()) continue;
            for (const auto& h1 : initial_headers) {
                if (!accepts_header(nfa_a, h1)) continue;
                Trace trace{{{e1, h1}}};
                extend(trace, q1);
            }
        }
    }
    return best;
}

class EngineRandom : public ::testing::TestWithParam<int> {};

/// Problem 2: the weighted engine returns the lexicographic minimum over
/// all witnesses, matched against exhaustive enumeration.
TEST_P(EngineRandom, WeightedEngineFindsTheMinimumWitness) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 7907 + 23);
    const auto net = random_network(rng, 4);
    const auto weights = parse_weight_expression("links, tunnels + 2*failures");

    const std::vector<std::string> shapes = {
        "<ip> .* <ip> K",
        "<smpls ip> .* <(mpls* smpls)? ip> K",
        "<ip> [.#r0] .* [.#r2] <ip> K",
    };
    for (const auto& shape : shapes) {
        for (const std::uint64_t k : {0, 1}) {
            auto text = shape;
            text.replace(text.find('K'), 1, std::to_string(k));
            const auto query = query::parse_query(text, net);
            const auto reference = reference_minimum(net, query, weights);
            if (!reference) continue; // no bounded witness: nothing to compare

            verify::VerifyOptions options;
            options.engine = verify::EngineKind::Weighted;
            options.weights = &weights;
            const auto result = verify::verify(net, query, options);
            ASSERT_EQ(result.answer, Answer::Yes)
                << "seed " << GetParam() << " query " << text;
            // The engine may know an even cheaper witness beyond the
            // enumeration bound, never a more expensive one.
            EXPECT_LE(result.weight, *reference)
                << "seed " << GetParam() << " query " << text;
            ASSERT_TRUE(result.trace.has_value());
            // And its witness must evaluate to exactly the reported weight.
            EXPECT_EQ(evaluate(net, *result.trace, weights), result.weight) << text;
        }
    }
}

TEST_P(EngineRandom, DualEngineAgreesWithExhaustiveReference) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 48271 + 11);
    const auto net = random_network(rng, 4 + rng() % 2);

    const std::vector<std::string> shapes = {
        "<ip> .* <ip> K",
        "<smpls ip> .* <smpls ip> K",
        "<ip> [.#r0] .* [.#r2] <ip> K",
        "<smpls? ip> .* <. smpls ip> K",
        "<ip> [.#r1] .* [.#r3] <(mpls* smpls)? ip> K",
    };
    for (const auto& shape : shapes) {
        for (const std::uint64_t k : {0, 1}) {
            auto text = shape;
            text.replace(text.find('K'), 1, std::to_string(k));
            const auto query = query::parse_query(text, net);
            const bool reference = reference_satisfiable(net, query);
            const auto result = verify(net, query, {});

            if (result.answer == Answer::No) {
                EXPECT_FALSE(reference)
                    << "seed " << GetParam() << ": engine says NO but reference "
                    << "found a witness for " << text;
            }
            if (reference) {
                EXPECT_NE(result.answer, Answer::No)
                    << "seed " << GetParam() << " query " << text;
            }
            if (result.answer == Answer::Yes) {
                ASSERT_TRUE(result.trace.has_value()) << text;
                const auto feasibility =
                    check_feasibility(net, *result.trace, query.max_failures);
                EXPECT_TRUE(feasibility.feasible)
                    << "seed " << GetParam() << " query " << text << ": "
                    << feasibility.reason;
                // The witness must also match the query's languages.
                const auto nfa_a = nfa::Nfa::compile(query.initial_header);
                const auto nfa_b = nfa::Nfa::compile(query.path);
                const auto nfa_c = nfa::Nfa::compile(query.final_header);
                std::vector<nfa::Symbol> links;
                for (const auto& entry : result.trace->entries)
                    links.push_back(entry.link);
                EXPECT_TRUE(nfa_b.accepts(links)) << text;
                const auto& first = result.trace->entries.front().header;
                const auto& last = result.trace->entries.back().header;
                EXPECT_TRUE(nfa_a.accepts(
                    std::vector<nfa::Symbol>(first.rbegin(), first.rend())))
                    << text;
                EXPECT_TRUE(nfa_c.accepts(
                    std::vector<nfa::Symbol>(last.rbegin(), last.rend())))
                    << text;
            }

            // Moped must reach the same conclusive verdicts.
            VerifyOptions moped;
            moped.engine = EngineKind::Moped;
            const auto moped_result = verify(net, query, moped);
            EXPECT_EQ(result.answer == Answer::No, moped_result.answer == Answer::No)
                << "seed " << GetParam() << " query " << text;
            if (result.answer == Answer::Yes && moped_result.answer == Answer::Yes &&
                moped_result.trace) {
                EXPECT_TRUE(
                    check_feasibility(net, *moped_result.trace, query.max_failures)
                        .feasible)
                    << text;
            }
        }
    }
}

/// The exact engine is conclusive and must dominate the bounded reference:
/// whatever the reference finds, exact confirms; whatever exact denies, the
/// reference must not find.
TEST_P(EngineRandom, ExactEngineMatchesExhaustiveReference) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 15485863 + 3);
    const auto net = random_network(rng, 4);
    const std::vector<std::string> shapes = {
        "<ip> .* <ip> K",
        "<smpls ip> [.#r0] .* [.#r2] <(mpls* smpls)? ip> K",
    };
    for (const auto& shape : shapes) {
        for (const std::uint64_t k : {0, 1}) {
            auto text = shape;
            text.replace(text.find('K'), 1, std::to_string(k));
            const auto query = query::parse_query(text, net);
            const bool reference = reference_satisfiable(net, query);
            VerifyOptions options;
            options.engine = EngineKind::Exact;
            const auto exact = verify(net, query, options);
            ASSERT_NE(exact.answer, Answer::Inconclusive) << text;
            if (reference) {
                EXPECT_EQ(exact.answer, Answer::Yes)
                    << "seed " << GetParam() << " query " << text;
            }
            if (exact.answer == Answer::No) {
                EXPECT_FALSE(reference) << "seed " << GetParam() << " query " << text;
            }
            if (exact.answer == Answer::Yes) {
                ASSERT_TRUE(exact.trace.has_value()) << text;
                EXPECT_TRUE(
                    check_feasibility(net, *exact.trace, query.max_failures).feasible)
                    << text;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineRandom, ::testing::Range(0, 12));

} // namespace
} // namespace aalwines::verify
