#include <gtest/gtest.h>

#include "pda/pautomaton.hpp"

namespace aalwines::pda {
namespace {

Pda two_state_pda() {
    Pda pda(4);
    pda.add_state();
    pda.add_state();
    return pda;
}

TEST(EdgeLabel, ConcreteAndSetBehaviour) {
    const auto concrete = EdgeLabel::of(3);
    EXPECT_TRUE(concrete.is_concrete());
    EXPECT_TRUE(concrete.contains(3));
    EXPECT_FALSE(concrete.contains(2));
    EXPECT_EQ(concrete.pick(8), 3u);
    EXPECT_FALSE(concrete.pick(2).has_value()); // outside the domain

    const auto set = EdgeLabel::of_set(nfa::SymbolSet::of({1, 2}));
    EXPECT_FALSE(set.is_concrete());
    EXPECT_TRUE(set.contains(1));
    EXPECT_EQ(set.pick(8), 1u);

    // Singleton include-sets collapse to the concrete representation.
    EXPECT_TRUE(EdgeLabel::of_set(nfa::SymbolSet::of({5})).is_concrete());
}

TEST(EdgeLabel, IntersectReturnsNulloptWhenEmpty) {
    const auto label = EdgeLabel::of_set(nfa::SymbolSet::of({1, 2}));
    EXPECT_FALSE(label.intersect(nfa::SymbolSet::of({3})).has_value());
    const auto inter = label.intersect(nfa::SymbolSet::of({2, 3}));
    ASSERT_TRUE(inter.has_value());
    EXPECT_TRUE(inter->is_concrete());
    EXPECT_EQ(inter->concrete, 2u);
    EXPECT_FALSE(EdgeLabel::of(1).intersect(nfa::SymbolSet::of({2})).has_value());
}

TEST(PAutomaton, ControlStatesMirrorThePda) {
    const auto pda = two_state_pda();
    PAutomaton aut(pda);
    EXPECT_EQ(aut.state_count(), 2u);
    EXPECT_TRUE(aut.is_control_state(0));
    EXPECT_TRUE(aut.is_control_state(1));
    const auto extra = aut.add_state();
    EXPECT_FALSE(aut.is_control_state(extra));
    EXPECT_FALSE(aut.is_final(extra));
    aut.set_final(extra);
    EXPECT_TRUE(aut.is_final(extra));
}

TEST(PAutomaton, ConcreteTransitionsDeduplicate) {
    const auto pda = two_state_pda();
    PAutomaton aut(pda);
    const auto q = aut.add_state();
    const auto [id1, fresh1] =
        aut.add_transition(0, EdgeLabel::of(1), q, Weight::scalar(5), {});
    EXPECT_TRUE(fresh1);
    // Worse weight: no change.
    const auto [id2, fresh2] =
        aut.add_transition(0, EdgeLabel::of(1), q, Weight::scalar(9), {});
    EXPECT_EQ(id1, id2);
    EXPECT_FALSE(fresh2);
    EXPECT_EQ(aut.transition(id1).weight, Weight::scalar(5));
    // Better weight: relaxed in place.
    const auto [id3, improved] =
        aut.add_transition(0, EdgeLabel::of(1), q, Weight::scalar(2), {});
    EXPECT_EQ(id1, id3);
    EXPECT_TRUE(improved);
    EXPECT_EQ(aut.transition(id1).weight, Weight::scalar(2));
    EXPECT_EQ(aut.transition_count(), 1u);
    EXPECT_EQ(aut.transitions_from(0).size(), 1u);
}

TEST(PAutomaton, SetTransitionsDeduplicateByContent) {
    const auto pda = two_state_pda();
    PAutomaton aut(pda);
    const auto q = aut.add_state();
    const auto set = nfa::SymbolSet::of({1, 2, 3});
    const auto [id1, f1] =
        aut.add_transition(0, EdgeLabel::of_set(set), q, Weight::one(), {});
    const auto [id2, f2] =
        aut.add_transition(0, EdgeLabel::of_set(nfa::SymbolSet::of({1, 2, 3})), q,
                           Weight::one(), {});
    EXPECT_EQ(id1, id2);
    EXPECT_TRUE(f1);
    EXPECT_FALSE(f2);
    // A different set on the same endpoints is a distinct transition.
    const auto [id3, f3] = aut.add_transition(
        0, EdgeLabel::of_set(nfa::SymbolSet::of({1, 2})), q, Weight::one(), {});
    EXPECT_NE(id1, id3);
    EXPECT_TRUE(f3);
}

TEST(PAutomaton, EpsilonDeduplicationAndIndexes) {
    const auto pda = two_state_pda();
    PAutomaton aut(pda);
    const auto q = aut.add_state();
    const auto [e1, f1] = aut.add_epsilon(0, q, Weight::scalar(4), {});
    EXPECT_TRUE(f1);
    const auto [e2, f2] = aut.add_epsilon(0, q, Weight::scalar(6), {});
    EXPECT_EQ(e1, e2);
    EXPECT_FALSE(f2);
    const auto [e3, improved] = aut.add_epsilon(0, q, Weight::scalar(1), {});
    EXPECT_EQ(e1, e3);
    EXPECT_TRUE(improved);
    EXPECT_EQ(aut.epsilon(e1).weight, Weight::scalar(1));
    ASSERT_EQ(aut.epsilons_into(q).size(), 1u);
    ASSERT_EQ(aut.epsilons_from(0).size(), 1u);
    EXPECT_EQ(aut.epsilons_into(q)[0], e1);
}

TEST(PAutomaton, MidStatesAreSharedPerTargetAndSymbol) {
    const auto pda = two_state_pda();
    PAutomaton aut(pda);
    const auto m1 = aut.mid_state(1, 2);
    const auto m2 = aut.mid_state(1, 2);
    const auto m3 = aut.mid_state(1, 3);
    const auto m4 = aut.mid_state(0, 2);
    EXPECT_EQ(m1, m2);
    EXPECT_NE(m1, m3);
    EXPECT_NE(m1, m4);
    EXPECT_FALSE(aut.is_control_state(m1));
}

} // namespace
} // namespace aalwines::pda
