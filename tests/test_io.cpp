#include <gtest/gtest.h>

#include "io/formats.hpp"
#include "synthesis/topologies.hpp"
#include "synthesis/dataplane.hpp"
#include "verify/engine.hpp"

namespace aalwines::io {
namespace {

TEST(TopologyXml, ParsesPaperAppendixShape) {
    const auto topology = read_topology_xml(R"(
        <network name="demo">
          <routers>
            <router name="R0">
              <interfaces>
                <interface name="ae1.11"/>
                <interface name="et-3/0/0.2"/>
              </interfaces>
            </router>
            <router name="R3" lat="55.5" lng="12.5">
              <interfaces><interface name="et-1/3/0.2"/></interfaces>
            </router>
          </routers>
          <links>
            <sides distance="12">
              <shared_interface interface="et-3/0/0.2" router="R0"/>
              <shared_interface interface="et-1/3/0.2" router="R3"/>
            </sides>
          </links>
        </network>)");
    EXPECT_EQ(topology.router_count(), 2u);
    EXPECT_EQ(topology.link_count(), 2u); // duplex pair
    const auto r0 = topology.find_router("R0");
    const auto r3 = topology.find_router("R3");
    ASSERT_TRUE(r0 && r3);
    EXPECT_TRUE(topology.find_interface(*r0, "ae1.11").has_value());
    const auto forward = topology.out_link_through(*r0, "et-3/0/0.2");
    ASSERT_TRUE(forward.has_value());
    EXPECT_EQ(topology.link(*forward).target, *r3);
    EXPECT_EQ(topology.link(*forward).distance, 12u);
    ASSERT_TRUE(topology.coordinate(*r3).has_value());
    EXPECT_DOUBLE_EQ(topology.coordinate(*r3)->latitude, 55.5);
}

TEST(TopologyXml, RejectsBadDocuments) {
    EXPECT_THROW(read_topology_xml("<nope/>"), model_error);
    EXPECT_THROW(read_topology_xml(R"(
        <network><routers><router name="A"/></routers>
        <links><sides>
          <shared_interface interface="x" router="A"/>
        </sides></links></network>)"),
                 model_error);
    EXPECT_THROW(read_topology_xml(R"(
        <network><routers><router name="A"/></routers>
        <links><sides>
          <shared_interface interface="x" router="A"/>
          <shared_interface interface="y" router="GHOST"/>
        </sides></links></network>)"),
                 model_error);
}

TEST(NetworkXml, Figure1RoundTrips) {
    const auto original = aalwines::synthesis::make_figure1_network();
    const auto topo_doc = write_topology_xml(original.topology, original.name);
    const auto route_doc = write_routing_xml(original);
    const auto reloaded = read_network_xml(topo_doc, route_doc);

    EXPECT_EQ(reloaded.topology.router_count(), original.topology.router_count());
    EXPECT_EQ(reloaded.routing.rule_count(), original.routing.rule_count());

    // The reloaded network must verify identically on the running example.
    for (const auto& [text, expected] :
         std::vector<std::pair<std::string, verify::Answer>>{
             {"<ip> [.#v0] .* [v3#.] <ip> 0", verify::Answer::Yes},
             {"<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1", verify::Answer::No}}) {
        const auto result =
            verify::verify(reloaded, query::parse_query(text, reloaded), {});
        EXPECT_EQ(result.answer, expected) << text;
    }
}

TEST(NetworkXml, SyntheticDataplaneRoundTrips) {
    auto synth = aalwines::synthesis::build_dataplane(
        aalwines::synthesis::make_ring(6), {.max_lsp_pairs = 10, .service_chains = 2});
    const auto& original = synth.network;
    const auto reloaded = read_network_xml(
        write_topology_xml(original.topology, original.name), write_routing_xml(original));
    EXPECT_EQ(reloaded.topology.link_count(), original.topology.link_count());
    EXPECT_EQ(reloaded.routing.rule_count(), original.routing.rule_count());
    // Only labels referenced by rules survive the round trip; the generator
    // may allocate a few never-used destination labels on top of those.
    EXPECT_LE(reloaded.labels.size(), original.labels.size());
    EXPECT_GE(reloaded.labels.size() + 4, original.labels.size());
}

TEST(Locations, AppliesAndWrites) {
    Topology topology;
    const auto r0 = topology.add_router("R0");
    topology.add_router("R1");
    const auto applied = apply_locations_json(
        R"({ "R0": { "lat": 46.5, "lng": 7.3 }, "GHOST": {"lat": 1, "lng": 2} })",
        topology);
    EXPECT_EQ(applied, 1u);
    ASSERT_TRUE(topology.coordinate(r0).has_value());
    EXPECT_DOUBLE_EQ(topology.coordinate(r0)->longitude, 7.3);

    const auto text = write_locations_json(topology);
    Topology other;
    other.add_router("R0");
    EXPECT_EQ(apply_locations_json(text, other), 1u);
}

TEST(Locations, RejectsNonObject) {
    Topology topology;
    EXPECT_THROW(apply_locations_json("[1,2]", topology), model_error);
}

TEST(Gml, ParsesTopologyZooStyle) {
    std::string name;
    const auto topology = read_gml(R"(
        # a comment
        Creator "Topology Zoo"
        graph [
          label "TestNet"
          node [ id 0 label "Copenhagen" Latitude 55.67 Longitude 12.56 ]
          node [ id 1 label "Stockholm" Latitude 59.33 Longitude 18.06 ]
          node [ id 2 label "Oslo" ]
          edge [ source 0 target 1 LinkLabel "leased" ]
          edge [ source 1 target 2 ]
        ])",
                                   &name);
    EXPECT_EQ(name, "TestNet");
    EXPECT_EQ(topology.router_count(), 3u);
    EXPECT_EQ(topology.link_count(), 4u); // two duplex pairs
    const auto cph = topology.find_router("Copenhagen");
    const auto sto = topology.find_router("Stockholm");
    ASSERT_TRUE(cph && sto);
    const auto links = topology.links_between(*cph, *sto);
    ASSERT_EQ(links.size(), 1u);
    EXPECT_GT(topology.link(links[0]).distance, 400'000u); // from coordinates
}

TEST(Gml, HandlesDuplicateLabelsAndMissingLabels) {
    const auto topology = read_gml(R"(
        graph [
          node [ id 0 label "X" ]
          node [ id 1 label "X" ]
          node [ id 2 ]
          edge [ source 0 target 2 ]
        ])");
    EXPECT_EQ(topology.router_count(), 3u);
    EXPECT_TRUE(topology.find_router("X").has_value());
    EXPECT_TRUE(topology.find_router("X_1").has_value());
    EXPECT_TRUE(topology.find_router("N2").has_value());
}

TEST(Gml, WriteRoundTrips) {
    const auto original = aalwines::synthesis::make_ring(6).topology;
    std::string name;
    const auto reloaded = read_gml(write_gml(original, "ring6"), &name);
    EXPECT_EQ(name, "ring6");
    EXPECT_EQ(reloaded.router_count(), original.router_count());
    EXPECT_EQ(reloaded.link_count(), original.link_count());
    for (RouterId r = 0; r < original.router_count(); ++r) {
        ASSERT_TRUE(reloaded.find_router(original.router_name(r)).has_value());
        ASSERT_TRUE(reloaded.coordinate(r).has_value());
        EXPECT_NEAR(reloaded.coordinate(r)->latitude,
                    original.coordinate(r)->latitude, 1e-4);
    }
}

TEST(Gml, RejectsMalformed) {
    EXPECT_THROW(read_gml("graph [ node [ id 0 ]"), parse_error); // unterminated
    EXPECT_THROW(read_gml("nograph 1"), model_error);
    EXPECT_THROW(read_gml("graph [ edge [ source 0 target 1 ] ]"), model_error);
}

} // namespace
} // namespace aalwines::io
