// Property tests cross-validating the saturation solvers against a
// brute-force configuration-space explorer and against each other.

#include <gtest/gtest.h>

#include <queue>

#include "pda_test_util.hpp"

namespace aalwines::pda {
namespace {

using testutil::any_stack;
using testutil::automaton_for_configs;
using testutil::brute_force_reachable;
using testutil::Config;
using testutil::exact_word;
using testutil::random_pda;

class PdaRandom : public ::testing::TestWithParam<int> {};

/// post* soundness & completeness (up to the brute-force bound): every
/// brute-force-reachable configuration is accepted, and the witness for any
/// accepted target configuration replays to that configuration.
TEST_P(PdaRandom, PostStarMatchesBruteForce) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
    const Symbol alphabet = 3;
    const auto pda = random_pda(rng, 4, alphabet, 8, false);
    const std::vector<Config> initial{{0, {0, 1}}};

    auto aut = automaton_for_configs(pda, initial);
    post_star(aut);
    const auto reachable = brute_force_reachable(pda, initial, 48, 5);

    for (const auto& [state, stack] : reachable) {
        const StateId starts[] = {state};
        const auto accepted = find_accepted(aut, starts, exact_word(stack), alphabet);
        EXPECT_TRUE(accepted.has_value())
            << "seed " << GetParam() << ": post* misses a reachable config at state "
            << state << " stack depth " << stack.size();
        if (!accepted) continue;
        const auto witness = unroll_post_star(aut, *accepted);
        ASSERT_TRUE(witness.has_value()) << "seed " << GetParam();
        const auto replay = replay_witness(pda, *witness);
        ASSERT_TRUE(replay.has_value()) << "seed " << GetParam() << ": witness invalid";
        EXPECT_EQ(replay->back().first, state);
        EXPECT_EQ(replay->back().second, stack);
        // The witness must start from a declared initial configuration.
        const Config start{witness->initial_state, witness->initial_stack};
        EXPECT_TRUE(std::find(initial.begin(), initial.end(), start) != initial.end());
    }
}

/// pre* agrees with post* on satisfiability: post*(I) ∩ F ≠ ∅ iff
/// I ∩ pre*(F) ≠ ∅, for random instances and fixed target configs.
TEST_P(PdaRandom, PreStarAgreesWithPostStar) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 5);
    const Symbol alphabet = 3;
    const auto pda = random_pda(rng, 4, alphabet, 9, false);
    const std::vector<Config> initial{{0, {1, 0}}};

    auto fwd = automaton_for_configs(pda, initial);
    post_star(fwd);

    // Try a panel of target configurations.
    const std::vector<Config> targets{
        {1, {0}}, {2, {1, 0}}, {3, {2, 2, 0}}, {1, {2}}, {0, {0, 0}},
    };
    for (const auto& target : targets) {
        const StateId fwd_starts[] = {target.first};
        const bool post_sat =
            find_accepted(fwd, fwd_starts, exact_word(target.second), alphabet)
                .has_value();

        auto bwd = automaton_for_configs(pda, {target});
        pre_star(bwd);
        const StateId bwd_starts[] = {initial[0].first};
        const bool pre_sat =
            find_accepted(bwd, bwd_starts, exact_word(initial[0].second), alphabet)
                .has_value();
        EXPECT_EQ(post_sat, pre_sat)
            << "seed " << GetParam() << " target state " << target.first;
    }
}

/// Weighted post*: the reported minimum equals a Dijkstra over the concrete
/// (bounded) configuration graph when the optimum lies within the bound.
TEST_P(PdaRandom, WeightedPostStarFindsMinimum) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 1);
    const Symbol alphabet = 3;
    const auto pda = random_pda(rng, 4, alphabet, 8, true);
    const std::vector<Config> initial{{0, {0, 1}}};

    // Brute-force Dijkstra over configurations (stack depth <= 5).
    std::map<Config, std::uint64_t> dist;
    using Item = std::pair<std::uint64_t, Config>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
    dist[initial[0]] = 0;
    queue.push({0, initial[0]});
    while (!queue.empty()) {
        auto [d, config] = queue.top();
        queue.pop();
        if (dist.at(config) != d || config.second.empty()) continue;
        const auto top = config.second.front();
        pda.for_each_applicable(config.first, top, [&](RuleId rule_id,
                                                       const nfa::SymbolSet&) {
            const auto& rule = pda.rule(rule_id);
            Config next;
            next.first = rule.to;
            switch (rule.op) {
                case Rule::OpKind::Pop:
                    next.second.assign(config.second.begin() + 1, config.second.end());
                    break;
                case Rule::OpKind::Swap:
                    next.second = config.second;
                    next.second.front() = rule.label1;
                    break;
                case Rule::OpKind::Push: {
                    const auto below = rule.label2 == k_same_symbol ? top : rule.label2;
                    next.second = std::vector<Symbol>{rule.label1, below};
                    next.second.insert(next.second.end(), config.second.begin() + 1,
                                       config.second.end());
                    break;
                }
            }
            if (next.second.size() > 5) return;
            const auto nd = d + rule.weight.components().front();
            auto it = dist.find(next);
            if (it == dist.end() || nd < it->second) {
                dist[next] = nd;
                queue.push({nd, next});
            }
        });
    }

    auto aut = automaton_for_configs(pda, initial);
    post_star(aut);

    for (const auto& [config, d] : dist) {
        const StateId starts[] = {config.first};
        const auto accepted =
            find_accepted(aut, starts, exact_word(config.second), alphabet);
        ASSERT_TRUE(accepted.has_value()) << "seed " << GetParam();
        const std::uint64_t reported = accepted->weight.is_one()
                                           ? 0
                                           : accepted->weight.components().front();
        // post* explores unbounded stacks, so it may know a cheaper route
        // that the depth-bounded Dijkstra missed — never a more expensive one.
        EXPECT_LE(reported, d) << "seed " << GetParam();
        // And the witness must replay with exactly the reported weight.
        const auto witness = unroll_post_star(aut, *accepted);
        ASSERT_TRUE(witness.has_value());
        std::uint64_t replayed = 0;
        for (const auto rule_id : witness->rules) {
            const auto& w = pda.rule(rule_id).weight;
            replayed += w.is_one() ? 0 : w.components().front();
        }
        EXPECT_EQ(replayed, reported) << "seed " << GetParam();
    }
}

/// The direct (fully concrete) encoding accepts exactly the same
/// configurations as the symbolic PDA.
TEST_P(PdaRandom, ConcreteExpansionPreservesReachability) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 193939 + 7);
    const Symbol alphabet = 3;
    const auto pda = random_pda(rng, 4, alphabet, 8, false);
    const auto expanded = pda.expand_concrete();

    // Expansion eliminates every symbolic left-hand side and "same" push.
    for (const auto& rule : expanded.rules()) {
        EXPECT_EQ(rule.pre.kind, PreSpec::Kind::Concrete);
        EXPECT_NE(rule.label2, k_same_symbol);
    }

    const std::vector<Config> initial{{0, {0, 1}}};
    EXPECT_EQ(brute_force_reachable(pda, initial, 40, 5),
              brute_force_reachable(expanded, initial, 40, 5))
        << "seed " << GetParam();

    // And post* over both answers identically on a panel of targets.
    auto symbolic_aut = automaton_for_configs(pda, initial);
    post_star(symbolic_aut);
    auto concrete_aut = automaton_for_configs(expanded, initial);
    post_star(concrete_aut);
    const std::vector<Config> targets{{1, {0}}, {2, {1, 0}}, {3, {2, 2, 0}}, {0, {2}}};
    for (const auto& target : targets) {
        const StateId starts[] = {target.first};
        EXPECT_EQ(
            find_accepted(symbolic_aut, starts, exact_word(target.second), alphabet)
                .has_value(),
            find_accepted(concrete_aut, starts, exact_word(target.second), alphabet)
                .has_value())
            << "seed " << GetParam() << " target " << target.first;
    }
}

/// The bucket queue and the binary heap finalize items in the identical
/// (weight, insertion) order, so saturating with either worklist must yield
/// the same automaton shape, the same minimal weights, and the same
/// equal-weight enumeration order — for post* and pre* alike.
TEST_P(PdaRandom, BucketAndHeapWorklistsAgree) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 48611 + 3);
    const Symbol alphabet = 3;
    const auto pda = random_pda(rng, 4, alphabet, 9, true);
    ASSERT_TRUE(pda.all_weights_scalar());
    const std::vector<Config> initial{{0, {0, 1}}};

    const auto saturate = [&](Worklist worklist, bool pre) {
        auto aut = automaton_for_configs(pda, initial);
        SolverOptions options;
        options.worklist = worklist;
        const auto stats = pre ? pre_star(aut, options) : post_star(aut, options);
        return std::make_pair(std::move(aut), stats);
    };

    for (const bool pre : {false, true}) {
        auto [heap_aut, heap_stats] = saturate(Worklist::Heap, pre);
        auto [bucket_aut, bucket_stats] = saturate(Worklist::Bucket, pre);
        EXPECT_FALSE(heap_stats.bucket_worklist);
        EXPECT_TRUE(bucket_stats.bucket_worklist) << "seed " << GetParam();
        EXPECT_EQ(heap_stats.iterations, bucket_stats.iterations)
            << "seed " << GetParam() << (pre ? " pre*" : " post*");
        EXPECT_EQ(heap_stats.transitions, bucket_stats.transitions);
        EXPECT_EQ(heap_stats.epsilons, bucket_stats.epsilons);

        for (StateId state = 0; state < 4; ++state) {
            const StateId starts[] = {state};
            const auto from_heap =
                find_accepted_n(heap_aut, starts, any_stack(), alphabet, 6);
            const auto from_bucket =
                find_accepted_n(bucket_aut, starts, any_stack(), alphabet, 6);
            ASSERT_EQ(from_heap.size(), from_bucket.size())
                << "seed " << GetParam() << " state " << state;
            for (std::size_t i = 0; i < from_heap.size(); ++i) {
                EXPECT_EQ(from_heap[i].weight, from_bucket[i].weight);
                EXPECT_EQ(from_heap[i].control_state, from_bucket[i].control_state);
                // Same spelled stack, symbol by symbol (transition ids may
                // differ between runs; the spelled configuration may not).
                ASSERT_EQ(from_heap[i].path.size(), from_bucket[i].path.size());
                for (std::size_t j = 0; j < from_heap[i].path.size(); ++j)
                    EXPECT_EQ(from_heap[i].path[j].second, from_bucket[i].path[j].second)
                        << "seed " << GetParam() << " state " << state;
            }
        }
    }
}

/// Replays an eagerly built PDA's rules one source state at a time — the
/// minimal honest RuleProvider.
class ReplayProvider final : public RuleProvider {
public:
    explicit ReplayProvider(const Pda& source) : _source(&source) {}
    void materialize_state(Pda& pda, StateId state) override {
        for (const auto& rule : _source->rules())
            if (rule.from == state) pda.add_rule(rule);
    }

private:
    const Pda* _source;
};

/// A rule-less twin of `source` that materializes through `provider`.
Pda lazy_twin(const Pda& source, ReplayProvider& provider) {
    Pda twin(source.alphabet_size());
    for (StateId s = 0; s < source.state_count(); ++s) twin.add_state();
    for (Symbol s = 0; s < source.alphabet_size(); ++s)
        if (source.class_of(s) != k_no_class) twin.set_symbol_class(s, source.class_of(s));
    twin.set_rule_provider(&provider, source.all_weights_scalar());
    return twin;
}

/// Demand-driven rule materialization is invisible to the solvers: a lazy
/// PDA saturates identically to its eager twin.  Per-(state, symbol) match
/// lists keep their relative order under lazy replay, so even the
/// saturation statistics must match exactly, not just the language.  pre*
/// exercises the materialize_all fallback (it consumes rules by target).
TEST_P(PdaRandom, LazyProviderMatchesEagerSaturation) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 75503 + 11);
    const Symbol alphabet = 3;
    for (const bool weighted : {false, true}) {
        const auto eager = random_pda(rng, 4, alphabet, 9, weighted);
        ReplayProvider provider(eager);
        const auto lazy = lazy_twin(eager, provider);
        ASSERT_TRUE(lazy.lazy());
        ASSERT_EQ(lazy.rule_count(), 0u);
        EXPECT_EQ(lazy.all_weights_scalar(), eager.all_weights_scalar());

        const std::vector<Config> initial{{0, {0, 1}}};
        EXPECT_EQ(brute_force_reachable(eager, initial, 40, 5),
                  brute_force_reachable(lazy, initial, 40, 5))
            << "seed " << GetParam();

        auto eager_aut = automaton_for_configs(eager, initial);
        const auto eager_stats = post_star(eager_aut);
        auto lazy_aut = automaton_for_configs(lazy, initial);
        const auto lazy_stats = post_star(lazy_aut);
        EXPECT_EQ(eager_stats.iterations, lazy_stats.iterations) << "seed " << GetParam();
        EXPECT_EQ(eager_stats.transitions, lazy_stats.transitions);
        EXPECT_EQ(eager_stats.epsilons, lazy_stats.epsilons);
        // post* only ever demanded rules; it must not have invented any.
        EXPECT_LE(lazy.rule_count(), eager.rule_count());

        const std::vector<Config> targets{
            {1, {0}}, {2, {1, 0}}, {3, {2, 2, 0}}, {0, {2}}, {1, {2, 0}},
        };
        for (const auto& target : targets) {
            const StateId starts[] = {target.first};
            const auto from_eager =
                find_accepted(eager_aut, starts, exact_word(target.second), alphabet);
            const auto from_lazy =
                find_accepted(lazy_aut, starts, exact_word(target.second), alphabet);
            ASSERT_EQ(from_eager.has_value(), from_lazy.has_value())
                << "seed " << GetParam() << " target state " << target.first;
            if (from_eager && from_lazy)
                EXPECT_EQ(from_eager->weight, from_lazy->weight) << "seed " << GetParam();

            auto bwd_eager = automaton_for_configs(eager, {target});
            pre_star(bwd_eager);
            auto bwd_lazy = automaton_for_configs(lazy, {target});
            pre_star(bwd_lazy); // forces materialize_all via the target index
            const StateId bwd_starts[] = {initial[0].first};
            EXPECT_EQ(find_accepted(bwd_eager, bwd_starts, exact_word(initial[0].second),
                                    alphabet)
                          .has_value(),
                      find_accepted(bwd_lazy, bwd_starts, exact_word(initial[0].second),
                                    alphabet)
                          .has_value())
                << "seed " << GetParam() << " target state " << target.first;
        }
        EXPECT_TRUE(lazy.fully_materialized());
        EXPECT_EQ(lazy.rule_count(), eager.rule_count());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PdaRandom, ::testing::Range(0, 40));

} // namespace
} // namespace aalwines::pda
