#!/usr/bin/env bash
# End-to-end serve test driven through scripts/aalwines-client: start the
# daemon with a preloaded demo network, query it (cold, then cached), and
# check that SIGTERM drains to exit 0.  Exits 127 (ctest SKIP) without curl.
set -eu

bin="$1"
client="$2"
port="${AALWINES_SERVE_TEST_PORT:-18923}"

command -v curl >/dev/null 2>&1 || exit 127

"$bin" serve --port "$port" --demo figure1 --workers 2 &
pid=$!
trap 'kill "$pid" 2>/dev/null || true' EXIT

# Bounded retry on the health endpoint: succeed as soon as the daemon
# answers, bail out early if it died, and fail loudly (instead of letting a
# later query produce a confusing connection error) when the budget runs
# out on a slow runner.
ready=
for _ in $(seq 150); do
    if "$client" -s "127.0.0.1:$port" health >/dev/null 2>&1; then
        ready=1
        break
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "serve_roundtrip: daemon exited before answering health checks" >&2
        wait "$pid" || true
        exit 1
    fi
    sleep 0.1
done
if [ -z "$ready" ]; then
    echo "serve_roundtrip: daemon not healthy within 15s" >&2
    exit 1
fi

out=$("$client" -s "127.0.0.1:$port" query n1 '<ip> [.#v0] .* [v3#.] <ip> 0')
echo "$out" | grep -q '"answer": "yes"'
echo "$out" | grep -q '"cached": false'

out=$("$client" -s "127.0.0.1:$port" query n1 '<ip> [.#v0] .* [v3#.] <ip> 0')
echo "$out" | grep -q '"answer": "yes"'
echo "$out" | grep -q '"cached": true'

"$client" -s "127.0.0.1:$port" metrics | grep -q '"aalwines-metrics-1"'

kill -TERM "$pid"
wait "$pid" # graceful drain must exit 0
trap - EXIT
echo ok
