#!/usr/bin/env bash
# End-to-end serve test driven through scripts/aalwines-client: start the
# daemon with a preloaded demo network and an access log, query it (cold,
# then cached), scrape both metrics formats, and check that SIGTERM drains
# to exit 0.  Exits 127 (ctest SKIP) without curl.
set -eu

bin="$1"
client="$2"
port="${AALWINES_SERVE_TEST_PORT:-18923}"
access_log="${TMPDIR:-/tmp}/serve_roundtrip_access.$$.log"

command -v curl >/dev/null 2>&1 || exit 127

"$bin" serve --port "$port" --demo figure1 --workers 2 \
       --access-log "$access_log" &
pid=$!
trap 'kill "$pid" 2>/dev/null || true' EXIT

# Bounded retry on the health endpoint: succeed as soon as the daemon
# answers, bail out early if it died, and fail loudly (instead of letting a
# later query produce a confusing connection error) when the budget runs
# out on a slow runner.
ready=
for _ in $(seq 150); do
    if "$client" -s "127.0.0.1:$port" health >/dev/null 2>&1; then
        ready=1
        break
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "serve_roundtrip: daemon exited before answering health checks" >&2
        wait "$pid" || true
        exit 1
    fi
    sleep 0.1
done
if [ -z "$ready" ]; then
    echo "serve_roundtrip: daemon not healthy within 15s" >&2
    exit 1
fi

out=$("$client" -s "127.0.0.1:$port" query n1 '<ip> [.#v0] .* [v3#.] <ip> 0')
echo "$out" | grep -q '"answer": "yes"'
echo "$out" | grep -q '"cached": false'

out=$("$client" -s "127.0.0.1:$port" query n1 '<ip> [.#v0] .* [v3#.] <ip> 0')
echo "$out" | grep -q '"answer": "yes"'
echo "$out" | grep -q '"cached": true'

# A lazy-translation query through the daemon must produce the same answer
# document as the one-shot CLI: identical bytes once the per-run fields
# ("seconds" wall clock, the server-only "cached" marker) are dropped.
if command -v python3 >/dev/null 2>&1; then
    lazy_query='<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1'
    server_out=$("$client" -s "127.0.0.1:$port" query n1 "$lazy_query" --translation lazy)
    echo "$server_out" | grep -q '"cached": false'
    cli_out=$("$bin" --demo figure1 -q "$lazy_query" --translation lazy --json)
    SERVER_OUT="$server_out" CLI_OUT="$cli_out" python3 - <<'PYEOF'
import json, os, sys
server = json.loads(os.environ["SERVER_OUT"])
cli = json.loads(os.environ["CLI_OUT"])[0]
for doc in (server, cli):
    doc.pop("cached", None)
    doc.pop("seconds", None)
a = json.dumps(server, sort_keys=True, indent=2)
b = json.dumps(cli, sort_keys=True, indent=2)
if a != b:
    sys.exit("serve_roundtrip: lazy daemon answer differs from one-shot CLI\n"
             f"--- daemon ---\n{a}\n--- cli ---\n{b}")
PYEOF
fi

"$client" -s "127.0.0.1:$port" metrics | grep -q '"aalwines-metrics-2"'

# Prometheus exposition: validated line-by-line when the checker is present.
prom=$("$client" -s "127.0.0.1:$port" metrics --prometheus)
echo "$prom" | grep -q '^# TYPE aalwines_server_requests_total counter$'
echo "$prom" | grep -q '^# TYPE aalwines_request_duration_seconds histogram$'
check_prom="$(dirname "$client")/check-prometheus"
if command -v python3 >/dev/null 2>&1 && [ -x "$check_prom" ]; then
    echo "$prom" | "$check_prom"
fi

# The explain subcommand renders the per-phase breakdown of a stats query.
if command -v python3 >/dev/null 2>&1; then
    "$client" -s "127.0.0.1:$port" explain n1 '<ip> [.#v0] .* [v3#.] <ip> 0' \
        | grep -q 'over pass:'
fi

kill -TERM "$pid"
wait "$pid" # graceful drain must exit 0
trap - EXIT

# Every request above must have produced one JSON line in the access log.
[ -s "$access_log" ]
requests=$(wc -l < "$access_log")
[ "$requests" -ge 5 ]
grep -q '"queryHash"' "$access_log"
head -n 1 "$access_log" | grep -q '"id":1,'
rm -f "$access_log"
echo ok
