#include <gtest/gtest.h>

#include "nfa/nfa.hpp"
#include "query/query.hpp"
#include "synthesis/dataplane.hpp"

namespace aalwines {
namespace {

using nfa::Nfa;

class QueryParser : public ::testing::Test {
protected:
    Network net = synthesis::make_figure1_network();

    Label get(LabelType type, std::string_view name) {
        return *net.labels.find(type, name);
    }

    static bool accepts(const nfa::Regex& regex, std::vector<nfa::Symbol> word) {
        return Nfa::compile(regex).accepts(word);
    }
};

TEST_F(QueryParser, ParsesPhi0Structure) {
    const auto q = query::parse_query("<ip> [.#v0] .* [v3#.] <ip> 0", net);
    EXPECT_EQ(q.max_failures, 0u);
    EXPECT_EQ(q.text, "<ip> [.#v0] .* [v3#.] <ip> 0");
    // Initial/final header: exactly one IP label.
    EXPECT_TRUE(accepts(q.initial_header, {get(LabelType::Ip, "ip1")}));
    EXPECT_FALSE(accepts(q.initial_header, {get(LabelType::MplsBos, "40")}));
    // Path: e0 (into v0), anything, e7 (out of v3).
    EXPECT_TRUE(accepts(q.path, {0, 1, 4, 7}));
    EXPECT_TRUE(accepts(q.path, {0, 7}));
    EXPECT_FALSE(accepts(q.path, {1, 4, 7})); // e1 is not into v0
    EXPECT_FALSE(accepts(q.path, {0, 1, 4})); // e4 does not leave v3
}

TEST_F(QueryParser, ComplementLinkSet) {
    const auto q = query::parse_query("<ip> [.#v0] [^v2#v3]* [v3#.] <ip> 2", net);
    EXPECT_EQ(q.max_failures, 2u);
    EXPECT_TRUE(accepts(q.path, {0, 2, 3, 7}));  // σ1: avoids e4
    EXPECT_FALSE(accepts(q.path, {0, 1, 4, 7})); // σ0 uses e4 = [v2#v3]
    EXPECT_TRUE(accepts(q.path, {0, 1, 5, 6, 7})); // σ2 avoids e4
}

TEST_F(QueryParser, ConcreteLabelWithSPrefix) {
    const auto q = query::parse_query("<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0", net);
    const auto s40 = get(LabelType::MplsBos, "40");
    const auto ip1 = get(LabelType::Ip, "ip1");
    EXPECT_TRUE(accepts(q.initial_header, {s40, ip1}));
    EXPECT_FALSE(accepts(q.initial_header, {get(LabelType::MplsBos, "41"), ip1}));
    // Final: any bottom-of-stack label over ip.
    EXPECT_TRUE(accepts(q.final_header, {get(LabelType::MplsBos, "44"), ip1}));
    EXPECT_FALSE(accepts(q.final_header, {get(LabelType::Mpls, "30"), ip1}));
}

TEST_F(QueryParser, MplsClassesAndOperators) {
    const auto q =
        query::parse_query("<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1", net);
    const auto ip1 = get(LabelType::Ip, "ip1");
    const auto m30 = get(LabelType::Mpls, "30");
    const auto s44 = get(LabelType::MplsBos, "44");
    EXPECT_TRUE(accepts(q.final_header, {m30, s44, ip1}));
    EXPECT_TRUE(accepts(q.final_header, {m30, m30, s44, ip1}));
    EXPECT_FALSE(accepts(q.final_header, {s44, ip1})); // mpls+ needs >= 1
}

TEST_F(QueryParser, OptionalAndAlternation) {
    const auto q = query::parse_query("<smpls? ip> .* <(smpls | mpls) ip> 1", net);
    const auto ip1 = get(LabelType::Ip, "ip1");
    EXPECT_TRUE(accepts(q.initial_header, {ip1}));
    EXPECT_TRUE(accepts(q.initial_header, {get(LabelType::MplsBos, "20"), ip1}));
    EXPECT_FALSE(accepts(q.initial_header, {get(LabelType::Mpls, "30"), ip1}));
    EXPECT_TRUE(accepts(q.final_header, {get(LabelType::Mpls, "30"), ip1}));
}

TEST_F(QueryParser, InterfaceQualifiedLinks) {
    // e1 leaves v0 through interface "e1" and enters v2 through "in1".
    const auto q = query::parse_query("<ip> [v0.e1#v2.in1] <ip> 0", net);
    EXPECT_TRUE(accepts(q.path, {1}));
    EXPECT_FALSE(accepts(q.path, {2}));
}

TEST_F(QueryParser, DotIsAnyLabelInHeaderContext) {
    const auto q = query::parse_query("<. smpls ip> .* <ip> 0", net);
    const auto ip1 = get(LabelType::Ip, "ip1");
    EXPECT_TRUE(accepts(q.initial_header,
                        {get(LabelType::Mpls, "30"), get(LabelType::MplsBos, "21"), ip1}));
}

TEST_F(QueryParser, LinkSetUnion) {
    const auto q = query::parse_query("<ip> [v0#v1, v0#v2] <ip> 0", net);
    EXPECT_TRUE(accepts(q.path, {1})); // e1: v0 -> v2
    EXPECT_TRUE(accepts(q.path, {2})); // e2: v0 -> v1
    EXPECT_FALSE(accepts(q.path, {3}));
}

TEST_F(QueryParser, UnknownLabelGivesEmptyAtom) {
    const auto q = query::parse_query("<nosuchlabel ip> .* <ip> 0", net);
    EXPECT_TRUE(Nfa::compile(q.initial_header)
                    .empty_language(static_cast<nfa::Symbol>(net.labels.size())));
}

TEST_F(QueryParser, UnknownRouterIsError) {
    EXPECT_THROW(query::parse_query("<ip> [.#nope] <ip> 0", net), parse_error);
}

TEST_F(QueryParser, UnknownInterfaceIsError) {
    EXPECT_THROW(query::parse_query("<ip> [v0.badif#v2] <ip> 0", net), parse_error);
}

TEST_F(QueryParser, MalformedQueriesAreErrors) {
    EXPECT_THROW(query::parse_query("<ip> .*", net), parse_error);           // no <c> k
    EXPECT_THROW(query::parse_query("<ip> .* <ip>", net), parse_error);      // missing k
    EXPECT_THROW(query::parse_query("<ip> .* <ip> 0 junk", net), parse_error);
    EXPECT_THROW(query::parse_query("ip .* <ip> 0", net), parse_error);      // missing <
    EXPECT_THROW(query::parse_query("<ip> [v0#] <ip> 0", net), parse_error); // bad side
}

TEST_F(QueryParser, QuotedNames) {
    const auto q = query::parse_query("<'40' ip> .* <ip> 0", net);
    // '40' resolves by raw name across strata: both s40 (bos "40") exists.
    EXPECT_TRUE(accepts(q.initial_header,
                        {get(LabelType::MplsBos, "40"), get(LabelType::Ip, "ip1")}));
}

TEST_F(QueryParser, WildcardBothSidesMatchesEverything) {
    const auto q = query::parse_query("<ip> [.#.]* <ip> 3", net);
    EXPECT_TRUE(accepts(q.path, {0, 1, 2, 3, 4, 5, 6, 7}));
    EXPECT_EQ(q.max_failures, 3u);
}


TEST_F(QueryParser, BoundedRepetition) {
    const auto q = query::parse_query("<ip> .{2,3} <ip> 0", net);
    EXPECT_FALSE(accepts(q.path, {0}));
    EXPECT_TRUE(accepts(q.path, {0, 1}));
    EXPECT_TRUE(accepts(q.path, {0, 1, 4}));
    EXPECT_FALSE(accepts(q.path, {0, 1, 4, 7}));

    const auto exact = query::parse_query("<mpls{2} smpls ip> .* <ip> 1", net);
    const auto m30 = get(LabelType::Mpls, "30");
    const auto s20 = get(LabelType::MplsBos, "20");
    const auto ip1 = get(LabelType::Ip, "ip1");
    EXPECT_TRUE(accepts(exact.initial_header, {m30, m30, s20, ip1}));
    EXPECT_FALSE(accepts(exact.initial_header, {m30, s20, ip1}));

    const auto open = query::parse_query("<ip> .{3,} <ip> 0", net);
    EXPECT_FALSE(accepts(open.path, {0, 1}));
    EXPECT_TRUE(accepts(open.path, {0, 1, 4}));
    EXPECT_TRUE(accepts(open.path, {0, 1, 4, 7}));
}

TEST_F(QueryParser, RepetitionBoundErrors) {
    EXPECT_THROW(query::parse_query("<ip> .{3,2} <ip> 0", net), parse_error);
    EXPECT_THROW(query::parse_query("<ip> .{a} <ip> 0", net), parse_error);
    EXPECT_THROW(query::parse_query("<ip> .{2 <ip> 0", net), parse_error);
}

TEST_F(QueryParser, ModeSuffix) {
    EXPECT_EQ(query::parse_query("<ip> .* <ip> 0", net).mode, query::Mode::Dual);
    EXPECT_EQ(query::parse_query("<ip> .* <ip> 1 OVER", net).mode, query::Mode::Over);
    EXPECT_EQ(query::parse_query("<ip> .* <ip> 1 under", net).mode, query::Mode::Under);
    EXPECT_EQ(query::parse_query("<ip> .* <ip> 2 DUAL", net).mode, query::Mode::Dual);
    EXPECT_THROW(query::parse_query("<ip> .* <ip> 1 SIDEWAYS", net), parse_error);
}

} // namespace
} // namespace aalwines
