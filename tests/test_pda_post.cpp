#include <gtest/gtest.h>

#include "pda_test_util.hpp"

namespace aalwines::pda {
namespace {

using testutil::any_stack;
using testutil::automaton_for_configs;
using testutil::exact_word;

constexpr Symbol A = 0, B = 1, C = 2;

TEST(PostStar, SwapRule) {
    Pda pda(3);
    const auto p0 = pda.add_state();
    const auto p1 = pda.add_state();
    pda.add_rule({p0, p1, PreSpec::concrete(A), Rule::OpKind::Swap, B, k_no_symbol,
                  Weight::one(), 0});
    auto aut = automaton_for_configs(pda, {{p0, {A}}});
    post_star(aut);

    const StateId starts1[] = {p1};
    EXPECT_TRUE(find_accepted(aut, starts1, exact_word({B}), 3).has_value());
    EXPECT_FALSE(find_accepted(aut, starts1, exact_word({A}), 3).has_value());
    const StateId starts0[] = {p0};
    EXPECT_TRUE(find_accepted(aut, starts0, exact_word({A}), 3).has_value());
}

TEST(PostStar, PushThenPop) {
    Pda pda(3);
    const auto p0 = pda.add_state();
    const auto p1 = pda.add_state();
    const auto p2 = pda.add_state();
    // p0 A -> p1 B A ; p1 B -> p2 ε : net effect (p0, A) ->* (p2, A).
    pda.add_rule({p0, p1, PreSpec::concrete(A), Rule::OpKind::Push, B, k_same_symbol,
                  Weight::one(), 0});
    pda.add_rule({p1, p2, PreSpec::concrete(B), Rule::OpKind::Pop, k_no_symbol,
                  k_no_symbol, Weight::one(), 1});
    auto aut = automaton_for_configs(pda, {{p0, {A}}});
    post_star(aut);

    const StateId starts[] = {p2};
    const auto accepted = find_accepted(aut, starts, exact_word({A}), 3);
    ASSERT_TRUE(accepted.has_value());
    const auto witness = unroll_post_star(aut, *accepted);
    ASSERT_TRUE(witness.has_value());
    EXPECT_EQ(witness->initial_state, p0);
    EXPECT_EQ(witness->initial_stack, (std::vector<Symbol>{A}));
    EXPECT_EQ(witness->rules.size(), 2u);
    const auto replay = replay_witness(pda, *witness);
    ASSERT_TRUE(replay.has_value());
    EXPECT_EQ(replay->back().first, p2);
    EXPECT_EQ(replay->back().second, (std::vector<Symbol>{A}));
}

TEST(PostStar, UnboundedStackGrowthStaysFinite) {
    // p0 A -> p0 B A : post* set is infinite; the automaton must stay finite
    // and accept (p0, B^n A) for every n.
    Pda pda(2);
    const auto p0 = pda.add_state();
    pda.add_rule({p0, p0, PreSpec::any(), Rule::OpKind::Push, B, k_same_symbol,
                  Weight::one(), 0});
    auto aut = automaton_for_configs(pda, {{p0, {A}}});
    const auto stats = post_star(aut);
    EXPECT_FALSE(stats.truncated);

    const StateId starts[] = {p0};
    EXPECT_TRUE(find_accepted(aut, starts, exact_word({A}), 2).has_value());
    EXPECT_TRUE(find_accepted(aut, starts, exact_word({B, A}), 2).has_value());
    EXPECT_TRUE(find_accepted(aut, starts, exact_word({B, B, B, B, A}), 2).has_value());
    EXPECT_FALSE(find_accepted(aut, starts, exact_word({A, B}), 2).has_value());
}

TEST(PostStar, WeightedPrefersCheaperPath) {
    // Two routes from (p0, A) to (p2, C): direct swap (cost 10) or
    // two-step swap through p1 (cost 2 + 3).
    Pda pda(3);
    const auto p0 = pda.add_state();
    const auto p1 = pda.add_state();
    const auto p2 = pda.add_state();
    pda.add_rule({p0, p2, PreSpec::concrete(A), Rule::OpKind::Swap, C, k_no_symbol,
                  Weight::scalar(10), 0});
    pda.add_rule({p0, p1, PreSpec::concrete(A), Rule::OpKind::Swap, B, k_no_symbol,
                  Weight::scalar(2), 1});
    pda.add_rule({p1, p2, PreSpec::concrete(B), Rule::OpKind::Swap, C, k_no_symbol,
                  Weight::scalar(3), 2});
    auto aut = automaton_for_configs(pda, {{p0, {A}}});
    post_star(aut);

    const StateId starts[] = {p2};
    const auto accepted = find_accepted(aut, starts, exact_word({C}), 3);
    ASSERT_TRUE(accepted.has_value());
    EXPECT_EQ(accepted->weight.components(), (std::vector<std::uint64_t>{5}));
    const auto witness = unroll_post_star(aut, *accepted);
    ASSERT_TRUE(witness.has_value());
    ASSERT_EQ(witness->rules.size(), 2u);
    EXPECT_EQ(pda.rule(witness->rules[0]).tag, 1u);
    EXPECT_EQ(pda.rule(witness->rules[1]).tag, 2u);
}

TEST(PostStar, LexicographicWeightOrdersByPriority) {
    // Route X: weight (1, 100); route Y: weight (2, 0).  Lexicographic min
    // must pick X even though its second component is larger.
    Pda pda(3);
    const auto p0 = pda.add_state();
    const auto p1 = pda.add_state();
    pda.add_rule({p0, p1, PreSpec::concrete(A), Rule::OpKind::Swap, B, k_no_symbol,
                  Weight::of({1, 100}), 0});
    pda.add_rule({p0, p1, PreSpec::concrete(A), Rule::OpKind::Swap, C, k_no_symbol,
                  Weight::of({2, 0}), 1});
    auto aut = automaton_for_configs(pda, {{p0, {A}}});
    post_star(aut);
    const StateId starts[] = {p1};
    const auto accepted = find_accepted(aut, starts, any_stack(), 3);
    ASSERT_TRUE(accepted.has_value());
    EXPECT_EQ(accepted->weight.components(), (std::vector<std::uint64_t>{1, 100}));
}

TEST(PostStar, ClassWildcardAfterPop) {
    // Rules modelling `pop o swap(C)` on an unknown revealed symbol of
    // class 0 (even symbols): p0 A -> p1 ε ; p1 [class0] -> p2 C.
    Pda pda(4);
    for (Symbol s = 0; s < 4; ++s) pda.set_symbol_class(s, s % 2);
    const auto p0 = pda.add_state();
    const auto p1 = pda.add_state();
    const auto p2 = pda.add_state();
    pda.add_rule({p0, p1, PreSpec::concrete(1), Rule::OpKind::Pop, k_no_symbol,
                  k_no_symbol, Weight::one(), 0});
    pda.add_rule({p1, p2, PreSpec::of_class(0), Rule::OpKind::Swap, 2, k_no_symbol,
                  Weight::one(), 1});
    // Initial configs: (p0, 1 0) and (p0, 1 3): only the first has a
    // class-0 symbol below the popped top.
    auto aut = automaton_for_configs(pda, {{p0, {1, 0}}, {p0, {1, 3}}});
    post_star(aut);
    const StateId starts[] = {p2};
    EXPECT_TRUE(find_accepted(aut, starts, exact_word({2}), 4).has_value());
    // From (p0, 1 3): the pop reaches p1 with top 3 (class 1), so the swap
    // cannot fire; (p2, anything) is reachable only via the class-0 branch.
    const StateId starts1[] = {p1};
    EXPECT_TRUE(find_accepted(aut, starts1, exact_word({3}), 4).has_value());
}

TEST(PostStar, SetLabelledInitialAutomaton) {
    // Initial stack language: [0|1] A — a set-labelled first edge.
    Pda pda(3);
    const auto p0 = pda.add_state();
    const auto p1 = pda.add_state();
    pda.add_rule({p0, p1, PreSpec::concrete(B), Rule::OpKind::Swap, C, k_no_symbol,
                  Weight::one(), 0});
    PAutomaton aut(pda);
    const auto mid = aut.add_state();
    const auto fin = aut.add_state();
    aut.add_transition(p0, EdgeLabel::of_set(nfa::SymbolSet::of({A, B})), mid,
                       Weight::one(), {});
    aut.add_transition(mid, EdgeLabel::of(A), fin, Weight::one(), {});
    aut.set_final(fin);
    post_star(aut);
    const StateId starts[] = {p1};
    // Only the B branch of the set admits the swap rule.
    const auto accepted = find_accepted(aut, starts, exact_word({C, A}), 3);
    EXPECT_TRUE(accepted.has_value());
}

TEST(PostStar, IterationCapTruncates) {
    Pda pda(2);
    const auto p0 = pda.add_state();
    pda.add_rule({p0, p0, PreSpec::any(), Rule::OpKind::Push, B, k_same_symbol,
                  Weight::one(), 0});
    auto aut = automaton_for_configs(pda, {{p0, {A}}});
    const auto stats = post_star(aut, {.max_iterations = 2});
    EXPECT_TRUE(stats.truncated);
    EXPECT_LE(stats.iterations, 2u);
}


TEST(FindAcceptedN, EnumeratesAlternativesInWeightOrder) {
    // Two disjoint routes from (p0, A): cheap swap to B at p1, expensive
    // swap to C at p1.  find_accepted_n must list both, cheapest first.
    Pda pda(3);
    const auto p0 = pda.add_state();
    const auto p1 = pda.add_state();
    pda.add_rule({p0, p1, PreSpec::concrete(A), Rule::OpKind::Swap, B, k_no_symbol,
                  Weight::scalar(1), 0});
    pda.add_rule({p0, p1, PreSpec::concrete(A), Rule::OpKind::Swap, C, k_no_symbol,
                  Weight::scalar(7), 1});
    auto aut = testutil::automaton_for_configs(pda, {{p0, {A}}});
    post_star(aut);
    const StateId starts[] = {p1};
    const auto configs = find_accepted_n(aut, starts, testutil::any_stack(), 3, 8);
    ASSERT_EQ(configs.size(), 2u);
    EXPECT_EQ(configs[0].weight, Weight::scalar(1));
    EXPECT_EQ(configs[1].weight, Weight::scalar(7));
    ASSERT_EQ(configs[0].path.size(), 1u);
    EXPECT_EQ(configs[0].path[0].second, B);
    EXPECT_EQ(configs[1].path[0].second, C);
    // Each enumerated config unrolls to a valid witness.
    for (const auto& config : configs) {
        const auto witness = unroll_post_star(aut, config);
        ASSERT_TRUE(witness.has_value());
        EXPECT_TRUE(replay_witness(pda, *witness).has_value());
    }
    // Count = 1 behaves like find_accepted.
    const auto one = find_accepted_n(aut, starts, testutil::any_stack(), 3, 1);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0].weight, Weight::scalar(1));
}

TEST(FindAcceptedN, EqualWeightTieBreakIsDeterministic) {
    // Three equal-weight alternatives from (p0, A).  The k-shortest search
    // settles ties by insertion sequence, so the enumeration order must be
    // the rule-addition order — and identical across repeated calls and
    // across independently saturated automata.
    const Symbol D = 3;
    const auto build = [&] {
        Pda pda(4);
        const auto p0 = pda.add_state();
        const auto p1 = pda.add_state();
        for (const Symbol target : {B, C, D})
            pda.add_rule({p0, p1, PreSpec::concrete(A), Rule::OpKind::Swap, target,
                          k_no_symbol, Weight::scalar(2), target});
        return pda;
    };
    const auto enumerate = [&](const Pda& pda) {
        auto aut = automaton_for_configs(pda, {{0, {A}}});
        post_star(aut);
        const StateId starts[] = {1};
        std::vector<Symbol> tops;
        for (const auto& config : find_accepted_n(aut, starts, any_stack(), 4, 8)) {
            EXPECT_EQ(config.weight, Weight::scalar(2));
            EXPECT_EQ(config.path.size(), 1u);
            tops.push_back(config.path.empty() ? k_no_symbol : config.path[0].second);
        }
        return tops;
    };
    const auto pda = build();
    const auto first = enumerate(pda);
    ASSERT_EQ(first, (std::vector<Symbol>{B, C, D}));
    EXPECT_EQ(enumerate(pda), first);   // same PDA, fresh saturation
    EXPECT_EQ(enumerate(build()), first); // independently built PDA
}

TEST(PostStar, WorkspaceArenasAreReusedAcrossCalls) {
    // Repeated saturations through one SolverWorkspace must recycle the
    // high-water arena footprint: after the first call no further chunks
    // are acquired, and the answers stay identical.
    Pda pda(3);
    const auto p0 = pda.add_state();
    const auto p1 = pda.add_state();
    pda.add_rule({p0, p0, PreSpec::any(), Rule::OpKind::Push, B, k_same_symbol,
                  Weight::scalar(1), 0});
    pda.add_rule({p0, p1, PreSpec::concrete(B), Rule::OpKind::Swap, C, k_no_symbol,
                  Weight::scalar(1), 1});

    SolverWorkspace workspace;
    SolverOptions options;
    options.workspace = &workspace;
    options.max_iterations = 64;

    // The parallel solver (AALWINES_SOLVER_THREADS > 1) queues into the
    // per-shard arenas instead of `worklist`; either way the footprint must
    // stabilize after round 0.
    const auto queue_capacity = [&] {
        std::size_t total = workspace.worklist.capacity();
        for (const auto& arena : workspace.shard_arenas) total += arena.capacity();
        return total;
    };

    std::optional<Weight> first_weight;
    std::size_t worklist_capacity = 0, search_capacity = 0;
    for (int round = 0; round < 4; ++round) {
        auto aut = automaton_for_configs(pda, {{p0, {A}}});
        post_star(aut, options);
        const StateId starts[] = {p1};
        const auto accepted =
            find_accepted(aut, starts, exact_word({C, A}), 3, &workspace);
        ASSERT_TRUE(accepted.has_value()) << "round " << round;
        if (!first_weight) {
            first_weight = accepted->weight;
            worklist_capacity = queue_capacity();
            search_capacity = workspace.search.capacity();
            EXPECT_GT(worklist_capacity, 0u);
        } else {
            EXPECT_EQ(accepted->weight, *first_weight) << "round " << round;
            // The footprint of round 0 satisfies every later round.
            EXPECT_EQ(queue_capacity(), worklist_capacity) << "round " << round;
            EXPECT_EQ(workspace.search.capacity(), search_capacity)
                << "round " << round;
        }
    }
}

TEST(FindAcceptedN, FindsLongerConfigsThroughAcceptingNodes) {
    // (p0, B^n A) for every n: the accepting product node is revisited, so
    // enumeration must continue past earlier acceptances.
    Pda pda(2);
    const auto p0 = pda.add_state();
    pda.add_rule({p0, p0, PreSpec::any(), Rule::OpKind::Push, B, k_same_symbol,
                  Weight::scalar(1), 0});
    auto aut = testutil::automaton_for_configs(pda, {{p0, {A}}});
    post_star(aut);
    const StateId starts[] = {p0};
    const auto configs = find_accepted_n(aut, starts, testutil::any_stack(), 2, 4);
    ASSERT_EQ(configs.size(), 4u);
    // Stacks of increasing length: A, BA, BBA, BBBA.
    for (std::size_t i = 0; i < configs.size(); ++i)
        EXPECT_EQ(configs[i].path.size(), i + 1);
}

} // namespace
} // namespace aalwines::pda
