#include <gtest/gtest.h>

#include "model/routing.hpp"

namespace aalwines {
namespace {

TEST(LabelTable, InternsPerTypeAndName) {
    LabelTable labels;
    const auto a = labels.add(LabelType::Mpls, "30");
    const auto b = labels.add(LabelType::MplsBos, "30");
    const auto c = labels.add(LabelType::Ip, "ip1");
    EXPECT_NE(a, b); // same name, different stratum
    EXPECT_EQ(labels.add(LabelType::Mpls, "30"), a);
    EXPECT_EQ(labels.size(), 3u);
    EXPECT_EQ(labels.type_of(b), LabelType::MplsBos);
    EXPECT_EQ(labels.name_of(c), "ip1");
}

TEST(LabelTable, DisplayPrefixesBottomOfStack) {
    LabelTable labels;
    const auto bos = labels.add(LabelType::MplsBos, "40");
    const auto plain = labels.add(LabelType::Mpls, "30");
    EXPECT_EQ(labels.display(bos), "s40");
    EXPECT_EQ(labels.display(plain), "30");
}

TEST(LabelTable, FindByNameSpansStrata) {
    LabelTable labels;
    labels.add(LabelType::Mpls, "7");
    labels.add(LabelType::MplsBos, "7");
    EXPECT_EQ(labels.find_by_name("7").size(), 2u);
    EXPECT_TRUE(labels.find_by_name("nope").empty());
}

TEST(LabelTable, OfTypeReturnsStratum) {
    LabelTable labels;
    labels.add(LabelType::Mpls, "1");
    labels.add(LabelType::Ip, "ip1");
    labels.add(LabelType::Mpls, "2");
    EXPECT_EQ(labels.of_type(LabelType::Mpls).size(), 2u);
    EXPECT_EQ(labels.of_type(LabelType::Ip).size(), 1u);
    EXPECT_TRUE(labels.of_type(LabelType::MplsBos).empty());
}

TEST(Topology, RejectsDuplicateRouterNames) {
    Topology topology;
    topology.add_router("R0");
    EXPECT_THROW(topology.add_router("R0"), model_error);
}

TEST(Topology, DuplexCreatesBothDirections) {
    Topology topology;
    const auto a = topology.add_router("A");
    const auto b = topology.add_router("B");
    const auto [forward, backward] = topology.add_duplex(a, "to_b", b, "to_a", 10);
    EXPECT_EQ(topology.link(forward).source, a);
    EXPECT_EQ(topology.link(forward).target, b);
    EXPECT_EQ(topology.link(backward).source, b);
    EXPECT_EQ(topology.link(backward).target, a);
    EXPECT_EQ(topology.link(forward).distance, 10u);
    EXPECT_EQ(topology.out_links(a).size(), 1u);
    EXPECT_EQ(topology.in_links(a).size(), 1u);
}

TEST(Topology, InterfaceLookupsResolveLinks) {
    Topology topology;
    const auto a = topology.add_router("A");
    const auto b = topology.add_router("B");
    const auto [forward, backward] = topology.add_duplex(a, "eth0", b, "eth1");
    EXPECT_EQ(topology.out_link_through(a, "eth0"), forward);
    EXPECT_EQ(topology.in_link_through(b, "eth1"), forward);
    EXPECT_EQ(topology.out_link_through(b, "eth1"), backward);
    EXPECT_FALSE(topology.out_link_through(a, "missing").has_value());
}

TEST(Topology, LinksBetweenSupportsMultigraph) {
    Topology topology;
    const auto a = topology.add_router("A");
    const auto b = topology.add_router("B");
    topology.add_duplex(a, "p0", b, "q0");
    topology.add_duplex(a, "p1", b, "q1");
    EXPECT_EQ(topology.links_between(a, b).size(), 2u);
    EXPECT_EQ(topology.links_between(b, a).size(), 2u);
}

TEST(Topology, RejectsForeignInterface) {
    Topology topology;
    const auto a = topology.add_router("A");
    const auto b = topology.add_router("B");
    const auto iface_b = topology.add_interface(b, "x");
    EXPECT_THROW(topology.add_link(a, iface_b, b, iface_b), model_error);
}

TEST(Topology, HaversineKnownDistance) {
    // Copenhagen to Stockholm is roughly 520 km.
    const Coordinate cph{55.68, 12.57};
    const Coordinate sto{59.33, 18.06};
    const double d = haversine_meters(cph, sto);
    EXPECT_GT(d, 480'000.0);
    EXPECT_LT(d, 560'000.0);
    EXPECT_NEAR(haversine_meters(cph, cph), 0.0, 1e-6);
}

TEST(Topology, DistancesFromCoordinates) {
    Topology topology;
    const auto a = topology.add_router("A");
    const auto b = topology.add_router("B");
    topology.set_coordinate(a, {55.68, 12.57});
    topology.set_coordinate(b, {59.33, 18.06});
    const auto [forward, backward] = topology.add_duplex(a, "i", b, "j");
    topology.distances_from_coordinates();
    EXPECT_GT(topology.link(forward).distance, 480'000u);
    EXPECT_EQ(topology.link(forward).distance, topology.link(backward).distance);
}

TEST(RoutingTable, GroupsByPriority) {
    Topology topology;
    const auto a = topology.add_router("A");
    const auto b = topology.add_router("B");
    const auto c = topology.add_router("C");
    const auto [ab, ba] = topology.add_duplex(a, "i0", b, "j0");
    const auto [bc, cb] = topology.add_duplex(b, "i1", c, "j1");
    (void)ba;
    (void)cb;

    LabelTable labels;
    const auto ip = labels.add(LabelType::Ip, "ip1");
    RoutingTable routing;
    routing.add_rule(ab, ip, 2, bc, {});
    routing.add_rule(ab, ip, 1, bc, {Op::push(labels.add(LabelType::MplsBos, "x"))});
    const auto* entry = routing.entry(ab, ip);
    ASSERT_NE(entry, nullptr);
    ASSERT_EQ(entry->size(), 2u);
    EXPECT_EQ((*entry)[0].size(), 1u);
    EXPECT_EQ((*entry)[1].size(), 1u);
    EXPECT_EQ((*entry)[0][0].ops.size(), 1u); // priority 1 has the push
    EXPECT_EQ(routing.rule_count(), 2u);
    EXPECT_EQ(routing.entry_count(), 1u);
    routing.validate(topology);
}

TEST(RoutingTable, RejectsPriorityZero) {
    RoutingTable routing;
    EXPECT_THROW(routing.add_rule(0, 0, 0, 0, {}), model_error);
}

TEST(RoutingTable, ValidateCatchesWrongRouter) {
    Topology topology;
    const auto a = topology.add_router("A");
    const auto b = topology.add_router("B");
    const auto c = topology.add_router("C");
    const auto [ab, ba] = topology.add_duplex(a, "i0", b, "j0");
    const auto [ac, ca] = topology.add_duplex(a, "i1", c, "j1");
    (void)ba;
    (void)ca;
    LabelTable labels;
    const auto ip = labels.add(LabelType::Ip, "ip1");
    RoutingTable routing;
    // ab enters B, but ac leaves A: invalid forwarding rule.
    routing.add_rule(ab, ip, 1, ac, {});
    EXPECT_THROW(routing.validate(topology), model_error);
}

TEST(RoutingTable, ForEachIsDeterministic) {
    Topology topology;
    const auto a = topology.add_router("A");
    const auto b = topology.add_router("B");
    const auto [ab, ba] = topology.add_duplex(a, "i", b, "j");
    LabelTable labels;
    RoutingTable routing;
    for (int i = 0; i < 10; ++i)
        routing.add_rule(ab, labels.add(LabelType::MplsBos, std::to_string(i)), 1, ba, {});
    std::vector<Label> order_a, order_b;
    routing.for_each([&](LinkId, Label l, const RoutingEntry&) { order_a.push_back(l); });
    routing.for_each([&](LinkId, Label l, const RoutingEntry&) { order_b.push_back(l); });
    EXPECT_EQ(order_a, order_b);
    EXPECT_EQ(order_a.size(), 10u);
}

TEST(Ops, StackDeltaAndTunnels) {
    LabelTable labels;
    const auto x = labels.add(LabelType::Mpls, "x");
    EXPECT_EQ(stack_delta({Op::push(x), Op::push(x)}), 2);
    EXPECT_EQ(stack_delta({Op::pop(), Op::push(x)}), 0);
    EXPECT_EQ(stack_delta({Op::pop(), Op::pop()}), -2);
    EXPECT_EQ(tunnels_opened({Op::swap(x), Op::push(x)}), 1u);
    EXPECT_EQ(tunnels_opened({Op::pop()}), 0u);
}

TEST(Ops, Describe) {
    LabelTable labels;
    const auto s21 = labels.add(LabelType::MplsBos, "21");
    const auto m30 = labels.add(LabelType::Mpls, "30");
    EXPECT_EQ(describe_ops(labels, {Op::swap(s21), Op::push(m30)}),
              "swap(s21) o push(30)");
    EXPECT_EQ(describe_ops(labels, {}), "-");
    EXPECT_EQ(describe_ops(labels, {Op::pop()}), "pop");
}

} // namespace
} // namespace aalwines
