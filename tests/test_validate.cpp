// Mutation tests for the structural checkers (src/validate/validate.hpp):
// every checker must accept the real structures the pipeline builds and must
// fire on each seeded corruption — a checker that never fires is dead code.

#include <gtest/gtest.h>

#include "nfa/nfa.hpp"
#include "pda/pautomaton.hpp"
#include "query/query.hpp"
#include "synthesis/dataplane.hpp"
#include "validate/validate.hpp"

namespace aalwines::validate {
namespace {

// ---- network-level checkers -------------------------------------------------

TEST(ValidateNetwork, Figure1IsWellFormed) {
    const auto net = synthesis::make_figure1_network();
    const auto report = check_network(net);
    EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ValidateNetwork, ReportCountsOnlyErrors) {
    Report report;
    report.warning("x", "just a warning");
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.error_count(), 0u);
    report.error("x", "a real problem");
    EXPECT_FALSE(report.ok());
    EXPECT_EQ(report.error_count(), 1u);
    EXPECT_EQ(report.issues().size(), 2u);

    Report other;
    other.error("y", "another");
    report.merge(other);
    EXPECT_EQ(report.error_count(), 2u);
    EXPECT_NE(report.to_string().find("error(y): another"), std::string::npos);
}

TEST(ValidateRouting, FlagsOutLinkLeavingTheWrongRouter) {
    auto net = synthesis::make_figure1_network();
    ASSERT_TRUE(check_network(net).ok());

    // Rules for link 0 apply at its target router; pick an out-link that
    // leaves some *other* router and append it as a bogus alternative.
    const auto& topology = net.topology;
    const auto at_router = topology.link(0).target;
    LinkId foreign = k_invalid_id;
    for (const auto& link : topology.links())
        if (link.source != at_router) {
            foreign = link.id;
            break;
        }
    ASSERT_NE(foreign, k_invalid_id);
    const auto ip = net.labels.find(LabelType::Ip, "ip1");
    ASSERT_TRUE(ip.has_value());
    net.routing.add_rule(0, *ip, 1, foreign, {});

    Report report;
    check_routing(net, report);
    EXPECT_FALSE(report.ok()) << "foreign out-link not flagged";
    EXPECT_NE(report.to_string().find("does not leave router"), std::string::npos)
        << report.to_string();
}

TEST(ValidateRouting, FlagsPushOfIpLabel) {
    auto net = synthesis::make_figure1_network();
    const auto& topology = net.topology;
    const auto at_router = topology.link(0).target;
    const auto out = topology.out_links(at_router).front();
    const auto ip = net.labels.find(LabelType::Ip, "ip1");
    ASSERT_TRUE(ip.has_value());
    net.routing.add_rule(0, *ip, 1, out, {Op::push(*ip)});

    Report report;
    check_routing(net, report);
    EXPECT_FALSE(report.ok());
    EXPECT_NE(report.to_string().find("pushes IP label"), std::string::npos)
        << report.to_string();
}

// ---- PDA rule checker -------------------------------------------------------

pda::Pda small_pda() {
    pda::Pda pda(4);
    const auto s0 = pda.add_state();
    const auto s1 = pda.add_state();

    pda::Rule swap;
    swap.from = s0;
    swap.to = s1;
    swap.pre = pda::PreSpec::concrete(0);
    swap.op = pda::Rule::OpKind::Swap;
    swap.label1 = 1;
    pda.add_rule(swap);

    pda::Rule push;
    push.from = s1;
    push.to = s0;
    push.pre = pda::PreSpec::any();
    push.op = pda::Rule::OpKind::Push;
    push.label1 = 2;
    push.label2 = pda::k_same_symbol;
    pda.add_rule(push);

    pda::Rule pop;
    pop.from = s0;
    pop.to = s0;
    pop.pre = pda::PreSpec::concrete(3);
    pop.op = pda::Rule::OpKind::Pop;
    pda.add_rule(pop);
    return pda;
}

TEST(ValidatePda, AcceptsWellFormedRules) {
    const auto pda = small_pda();
    const auto report = check_pda(pda);
    EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ValidatePda, FlagsEachRuleCorruption) {
    const auto pda = small_pda();
    // Corrupt a *copy* of the rule vector; the checker works component-level
    // precisely so mutation tests never have to break the Pda invariants.
    const auto flags = [&](const char* what, auto&& mutate) {
        auto rules = pda.rules();
        mutate(rules);
        Report report;
        check_pda_rules(rules, pda.state_count(), pda.alphabet_size(), report);
        EXPECT_FALSE(report.ok()) << what << " not flagged";
    };
    flags("dangling from-state", [](auto& r) { r[0].from = 99; });
    flags("dangling to-state", [](auto& r) { r[0].to = 99; });
    flags("precondition outside alphabet", [](auto& r) { r[0].pre.symbol = 99; });
    flags("class precondition without class",
          [](auto& r) { r[0].pre = pda::PreSpec::of_class(pda::k_no_class); });
    flags("swap symbol outside alphabet", [](auto& r) { r[0].label1 = 99; });
    flags("push top outside alphabet", [](auto& r) { r[1].label1 = 99; });
    flags("push below-top outside alphabet", [](auto& r) { r[1].label2 = 99; });
}

// ---- P-automaton checker ----------------------------------------------------

struct SmallAutomaton {
    pda::Pda pda = small_pda();
    pda::PAutomaton automaton{pda};
    pda::StateId final_state;
    pda::TransId trans;
    std::uint32_t eps;

    SmallAutomaton() {
        final_state = automaton.add_state();
        automaton.set_final(final_state);
        trans = automaton
                    .add_transition(0, pda::EdgeLabel::of(0), final_state,
                                    pda::Weight::one(), {})
                    .first;
        eps = automaton.add_epsilon(1, final_state, pda::Weight::one(), {}).first;
    }
};

TEST(ValidatePAutomaton, AcceptsWellFormedAutomaton) {
    SmallAutomaton s;
    const auto report = check_pautomaton(s.automaton);
    EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ValidatePAutomaton, FlagsDanglingTransitionTarget) {
    SmallAutomaton s;
    s.automaton.transition(s.trans).to = 99;
    EXPECT_FALSE(check_pautomaton(s.automaton).ok());
}

TEST(ValidatePAutomaton, FlagsTransitionIndexMismatch) {
    SmallAutomaton s;
    // Changing `from` behind the index's back both dangles and breaks the
    // per-state partition; either way the checker must fire.
    s.automaton.transition(s.trans).from = 1;
    const auto report = check_pautomaton(s.automaton);
    EXPECT_FALSE(report.ok());
    EXPECT_NE(report.to_string().find("indexed under state"), std::string::npos)
        << report.to_string();
}

TEST(ValidatePAutomaton, FlagsEmptyEdgeLabel) {
    SmallAutomaton s;
    s.automaton.transition(s.trans).label = pda::EdgeLabel::of_set(nfa::SymbolSet::none());
    const auto report = check_pautomaton(s.automaton);
    EXPECT_FALSE(report.ok());
    EXPECT_NE(report.to_string().find("definitely-empty edge label"), std::string::npos);
}

TEST(ValidatePAutomaton, FlagsInfiniteWeight) {
    SmallAutomaton s;
    s.automaton.transition(s.trans).weight = pda::Weight::infinity();
    EXPECT_FALSE(check_pautomaton(s.automaton).ok());
}

TEST(ValidatePAutomaton, FlagsUnresolvableProvenance) {
    SmallAutomaton s;
    auto& prov = s.automaton.transition(s.trans).prov;
    prov.kind = pda::Provenance::Kind::PostSwap;
    prov.rule = 99; // small_pda has 3 rules
    const auto report = check_pautomaton(s.automaton);
    EXPECT_FALSE(report.ok());
    EXPECT_NE(report.to_string().find("unknown rule"), std::string::npos);
}

TEST(ValidatePAutomaton, FlagsEpsilonIntoControlState) {
    SmallAutomaton s;
    s.automaton.epsilon(s.eps).to = 0; // control states mirror the PDA's
    const auto report = check_pautomaton(s.automaton);
    EXPECT_FALSE(report.ok());
    EXPECT_NE(report.to_string().find("enters a control state"), std::string::npos);
}

TEST(ValidatePAutomaton, FlagsEpsilonFromNonControlState) {
    SmallAutomaton s;
    s.automaton.epsilon(s.eps).from = s.final_state;
    const auto report = check_pautomaton(s.automaton);
    EXPECT_FALSE(report.ok());
    EXPECT_NE(report.to_string().find("leaves a non-control state"), std::string::npos);
}

// ---- NFA checker ------------------------------------------------------------

TEST(ValidateNfa, AcceptsCompiledQueryAutomata) {
    const auto net = synthesis::make_figure1_network();
    const auto query = query::parse_query("<smpls? ip> [.#v0] .* [v3#.] <smpls? ip> 1", net);
    Report report;
    check_nfa(nfa::Nfa::compile(query.initial_header), "query.initial", report);
    check_nfa(nfa::Nfa::compile(query.path), "query.path", report);
    check_nfa(nfa::Nfa::compile(query.final_header), "query.final", report);
    EXPECT_TRUE(report.ok()) << report.to_string();
}

} // namespace
} // namespace aalwines::validate
