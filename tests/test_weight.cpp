#include <gtest/gtest.h>

#include <random>

#include "pda/weight.hpp"

namespace aalwines::pda {
namespace {

TEST(Weight, OneIsNeutralUnderExtend) {
    const auto w = Weight::of({3, 1, 4});
    EXPECT_EQ(extend(w, Weight::one()), w);
    EXPECT_EQ(extend(Weight::one(), w), w);
    EXPECT_TRUE(Weight::one().is_one());
    EXPECT_FALSE(w.is_one());
}

TEST(Weight, InfinityIsAbsorbing) {
    const auto w = Weight::of({3});
    EXPECT_TRUE(extend(w, Weight::infinity()).is_infinite());
    EXPECT_TRUE(extend(Weight::infinity(), w).is_infinite());
    EXPECT_TRUE(Weight::infinity().is_infinite());
}

TEST(Weight, ExtendIsComponentwiseWithPadding) {
    const auto a = Weight::of({1, 2});
    const auto b = Weight::of({10, 20, 30});
    EXPECT_EQ(extend(a, b).components(), (std::vector<std::uint64_t>{11, 22, 30}));
    EXPECT_EQ(extend(b, a).components(), (std::vector<std::uint64_t>{11, 22, 30}));
}

TEST(Weight, LexicographicOrdering) {
    EXPECT_LT(Weight::of({1, 100}), Weight::of({2, 0}));
    EXPECT_LT(Weight::of({1, 0}), Weight::of({1, 1}));
    EXPECT_EQ(Weight::of({1, 0}), Weight::of({1}));   // missing components = 0
    EXPECT_EQ(Weight::one(), Weight::of({0, 0}));
    EXPECT_LT(Weight::of({5}), Weight::infinity());
    EXPECT_EQ(Weight::infinity(), Weight::infinity());
    EXPECT_LT(Weight::one(), Weight::scalar(1));
}

TEST(Weight, ScalarShorthand) {
    EXPECT_EQ(Weight::scalar(7).components(), (std::vector<std::uint64_t>{7}));
}

TEST(Weight, ToStringShapes) {
    EXPECT_EQ(Weight::one().to_string(), "(0)");
    EXPECT_EQ(Weight::infinity().to_string(), "inf");
    EXPECT_EQ(Weight::of({5, 0}).to_string(), "(5, 0)");
}

TEST(Weight, ExtendSaturatesInsteadOfWrapping) {
    const auto huge = Weight::of({UINT64_MAX - 1});
    const auto more = Weight::of({10});
    const auto sum = extend(huge, more);
    EXPECT_EQ(sum.components(), (std::vector<std::uint64_t>{UINT64_MAX}));
    // Saturation keeps monotonicity: huge <= huge + more.
    EXPECT_LE(huge, sum);
}

/// Semiring laws on random samples: ⊗ commutative & associative with 1̄ as
/// identity; ordering total and monotone under ⊗ (the Dijkstra requirement).
TEST(WeightProperty, SemiringLaws) {
    std::mt19937_64 rng(7);
    auto random_weight = [&]() {
        if (rng() % 8 == 0) return Weight::infinity();
        if (rng() % 8 == 0) return Weight::one();
        std::vector<std::uint64_t> components;
        const auto n = 1 + rng() % 3;
        for (std::uint64_t i = 0; i < n; ++i) components.push_back(rng() % 50);
        return Weight::of(std::move(components));
    };
    for (int round = 0; round < 500; ++round) {
        const auto a = random_weight();
        const auto b = random_weight();
        const auto c = random_weight();
        EXPECT_EQ(extend(a, b), extend(b, a));
        EXPECT_EQ(extend(extend(a, b), c), extend(a, extend(b, c)));
        EXPECT_EQ(extend(a, Weight::one()), a);
        // Totality of the order.
        EXPECT_TRUE(a < b || b < a || a == b);
        // Monotonicity: x <= x ⊗ y for non-negative weights.
        EXPECT_LE(a, extend(a, b));
        // Monotone in both arguments: a <= b implies a⊗c <= b⊗c.
        if (a <= b) EXPECT_LE(extend(a, c), extend(b, c));
    }
}

} // namespace
} // namespace aalwines::pda
