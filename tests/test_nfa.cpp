#include <gtest/gtest.h>

#include <random>

#include "nfa/nfa.hpp"

namespace aalwines::nfa {
namespace {

Regex sym(Symbol s) { return Regex::atom(SymbolSet::single(s)); }

std::vector<Symbol> word(std::initializer_list<Symbol> symbols) { return symbols; }

TEST(Nfa, AcceptsSingleSymbol) {
    const auto nfa = Nfa::compile(sym(3));
    EXPECT_TRUE(nfa.accepts(word({3})));
    EXPECT_FALSE(nfa.accepts(word({2})));
    EXPECT_FALSE(nfa.accepts(word({})));
    EXPECT_FALSE(nfa.accepts(word({3, 3})));
}

TEST(Nfa, AcceptsConcat) {
    std::vector<Regex> children;
    children.push_back(sym(1));
    children.push_back(sym(2));
    const auto nfa = Nfa::compile(Regex::concat(std::move(children)));
    EXPECT_TRUE(nfa.accepts(word({1, 2})));
    EXPECT_FALSE(nfa.accepts(word({1})));
    EXPECT_FALSE(nfa.accepts(word({2, 1})));
}

TEST(Nfa, AcceptsAlternation) {
    std::vector<Regex> children;
    children.push_back(sym(1));
    children.push_back(sym(2));
    const auto nfa = Nfa::compile(Regex::alt(std::move(children)));
    EXPECT_TRUE(nfa.accepts(word({1})));
    EXPECT_TRUE(nfa.accepts(word({2})));
    EXPECT_FALSE(nfa.accepts(word({3})));
}

TEST(Nfa, StarAcceptsZeroOrMore) {
    const auto nfa = Nfa::compile(Regex::star(sym(5)));
    EXPECT_TRUE(nfa.accepts(word({})));
    EXPECT_TRUE(nfa.accepts(word({5})));
    EXPECT_TRUE(nfa.accepts(word({5, 5, 5})));
    EXPECT_FALSE(nfa.accepts(word({5, 4})));
    EXPECT_TRUE(nfa.accepts_epsilon());
}

TEST(Nfa, PlusRequiresOne) {
    const auto nfa = Nfa::compile(Regex::plus(sym(5)));
    EXPECT_FALSE(nfa.accepts(word({})));
    EXPECT_TRUE(nfa.accepts(word({5})));
    EXPECT_TRUE(nfa.accepts(word({5, 5})));
}

TEST(Nfa, OptAcceptsZeroOrOne) {
    const auto nfa = Nfa::compile(Regex::opt(sym(5)));
    EXPECT_TRUE(nfa.accepts(word({})));
    EXPECT_TRUE(nfa.accepts(word({5})));
    EXPECT_FALSE(nfa.accepts(word({5, 5})));
}

TEST(Nfa, EmptyLanguageAcceptsNothing) {
    const auto nfa = Nfa::compile(Regex::empty());
    EXPECT_FALSE(nfa.accepts(word({})));
    EXPECT_FALSE(nfa.accepts(word({0})));
    EXPECT_TRUE(nfa.empty_language(8));
}

TEST(Nfa, EpsilonAcceptsOnlyEmptyWord) {
    const auto nfa = Nfa::compile(Regex::epsilon());
    EXPECT_TRUE(nfa.accepts(word({})));
    EXPECT_FALSE(nfa.accepts(word({0})));
}

TEST(Nfa, SetAtomsAndExclusion) {
    const auto nfa = Nfa::compile(Regex::atom(SymbolSet::excluding({2})));
    EXPECT_TRUE(nfa.accepts(word({0})));
    EXPECT_FALSE(nfa.accepts(word({2})));
}

TEST(Nfa, RepeatExpandsToExactCount) {
    const auto nfa = Nfa::compile(Regex::repeat(sym(1), 3));
    EXPECT_TRUE(nfa.accepts(word({1, 1, 1})));
    EXPECT_FALSE(nfa.accepts(word({1, 1})));
    EXPECT_FALSE(nfa.accepts(word({1, 1, 1, 1})));
}

TEST(Nfa, IntersectionOfOverlappingLanguages) {
    // (1|2)* ∩ (2|3)* = 2*
    std::vector<Regex> ab;
    ab.push_back(Regex::atom(SymbolSet::of({1, 2})));
    std::vector<Regex> bc;
    bc.push_back(Regex::atom(SymbolSet::of({2, 3})));
    const auto left = Nfa::compile(Regex::star(Regex::alt(std::move(ab))));
    const auto right = Nfa::compile(Regex::star(Regex::alt(std::move(bc))));
    const auto inter = Nfa::intersection(left, right);
    EXPECT_TRUE(inter.accepts(word({})));
    EXPECT_TRUE(inter.accepts(word({2, 2})));
    EXPECT_FALSE(inter.accepts(word({1})));
    EXPECT_FALSE(inter.accepts(word({3})));
}

TEST(Nfa, ExampleWordIsShortestAccepted) {
    // 1 1 (2 | 1 1)
    std::vector<Regex> tail;
    tail.push_back(sym(2));
    std::vector<Regex> two;
    two.push_back(sym(1));
    two.push_back(sym(1));
    tail.push_back(Regex::concat(std::move(two)));
    std::vector<Regex> all;
    all.push_back(sym(1));
    all.push_back(sym(1));
    all.push_back(Regex::alt(std::move(tail)));
    const auto nfa = Nfa::compile(Regex::concat(std::move(all)));
    const auto example = nfa.example_word(4);
    ASSERT_TRUE(example.has_value());
    EXPECT_EQ(*example, word({1, 1, 2}));
    EXPECT_FALSE(nfa.empty_language(4));
}

TEST(Nfa, EmptyLanguageDetectsUnsatisfiableDomain) {
    // atom over symbol 9, domain of size 4: no member.
    const auto nfa = Nfa::compile(sym(9));
    EXPECT_TRUE(nfa.empty_language(4));
    EXPECT_FALSE(nfa.empty_language(16));
}

/// Property: a randomly built regex and a direct recursive matcher agree.
class NfaRandomProperty : public ::testing::TestWithParam<int> {};

namespace matcher {
// Reference matcher by brute-force expansion (languages restricted to words
// up to length 4 over a 3-symbol domain).
bool matches(const Regex& regex, const std::vector<Symbol>& input, std::size_t from,
             std::size_t to);

bool match_concat(const std::vector<Regex>& children, std::size_t index,
                  const std::vector<Symbol>& input, std::size_t from, std::size_t to) {
    if (index == children.size()) return from == to;
    for (std::size_t mid = from; mid <= to; ++mid)
        if (matches(children[index], input, from, mid) &&
            match_concat(children, index + 1, input, mid, to))
            return true;
    return false;
}

bool matches(const Regex& regex, const std::vector<Symbol>& input, std::size_t from,
             std::size_t to) {
    switch (regex.kind()) {
        case Regex::Kind::Empty: return false;
        case Regex::Kind::Epsilon: return from == to;
        case Regex::Kind::Atom:
            return to == from + 1 && regex.symbols().contains(input[from]);
        case Regex::Kind::Concat:
            return match_concat(regex.children(), 0, input, from, to);
        case Regex::Kind::Alt:
            for (const auto& child : regex.children())
                if (matches(child, input, from, to)) return true;
            return false;
        case Regex::Kind::Star: {
            if (from == to) return true;
            for (std::size_t mid = from + 1; mid <= to; ++mid)
                if (matches(regex.children().front(), input, from, mid) &&
                    matches(regex, input, mid, to))
                    return true;
            return false;
        }
        case Regex::Kind::Plus: {
            // plus accepts ε exactly when its body does.
            if (from == to) return matches(regex.children().front(), input, from, to);
            for (std::size_t mid = from + 1; mid <= to; ++mid)
                if (matches(regex.children().front(), input, from, mid) &&
                    (mid == to || matches(regex, input, mid, to)))
                    return true;
            return false;
        }
        case Regex::Kind::Opt:
            return from == to || matches(regex.children().front(), input, from, to);
    }
    return false;
}
} // namespace matcher

Regex random_regex(std::mt19937_64& rng, int depth) {
    const int choice = depth <= 0 ? static_cast<int>(rng() % 2)
                                  : static_cast<int>(rng() % 7);
    switch (choice) {
        case 0: return Regex::atom(SymbolSet::single(static_cast<Symbol>(rng() % 3)));
        case 1: return Regex::atom(SymbolSet::of({static_cast<Symbol>(rng() % 3),
                                                  static_cast<Symbol>(rng() % 3)}));
        case 2: {
            std::vector<Regex> children;
            children.push_back(random_regex(rng, depth - 1));
            children.push_back(random_regex(rng, depth - 1));
            return Regex::concat(std::move(children));
        }
        case 3: {
            std::vector<Regex> children;
            children.push_back(random_regex(rng, depth - 1));
            children.push_back(random_regex(rng, depth - 1));
            return Regex::alt(std::move(children));
        }
        case 4: return Regex::star(random_regex(rng, depth - 1));
        case 5: return Regex::plus(random_regex(rng, depth - 1));
        default: return Regex::opt(random_regex(rng, depth - 1));
    }
}

TEST_P(NfaRandomProperty, CompiledNfaAgreesWithReferenceMatcher) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
    const auto regex = random_regex(rng, 3);
    const auto nfa = Nfa::compile(regex);
    // Enumerate all words over {0,1,2} up to length 4.
    std::vector<std::vector<Symbol>> words{{}};
    for (int len = 1; len <= 4; ++len) {
        const auto start = words.size();
        std::vector<std::vector<Symbol>> next;
        for (const auto& w : words)
            if (w.size() == static_cast<std::size_t>(len - 1))
                for (Symbol s = 0; s < 3; ++s) {
                    auto extended = w;
                    extended.push_back(s);
                    next.push_back(std::move(extended));
                }
        words.insert(words.end(), next.begin(), next.end());
        (void)start;
    }
    for (const auto& w : words) {
        EXPECT_EQ(nfa.accepts(w), matcher::matches(regex, w, 0, w.size()))
            << "seed " << GetParam() << " word size " << w.size();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NfaRandomProperty, ::testing::Range(0, 60));

} // namespace
} // namespace aalwines::nfa
