// The exact (scenario-enumerating) engine: ground truth against which the
// polynomial dual pipeline is validated.

#include <gtest/gtest.h>

#include <random>

#include "model/quantity.hpp"
#include "synthesis/dataplane.hpp"
#include "verify/engine.hpp"

namespace aalwines::verify {
namespace {

class ExactEngine : public ::testing::Test {
protected:
    Network net = synthesis::make_figure1_network();

    VerifyResult run(const std::string& text, VerifyOptions options = {}) {
        options.engine = EngineKind::Exact;
        return verify(net, query::parse_query(text, net), options);
    }
};

TEST_F(ExactEngine, AgreesWithPaperAnswersOnFigure1) {
    const std::vector<std::pair<std::string, Answer>> cases = {
        {"<ip> [.#v0] .* [v3#.] <ip> 0", Answer::Yes},
        {"<ip> [.#v0] [^v2#v3]* [v3#.] <ip> 2", Answer::Yes},
        {"<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0", Answer::Yes},
        {"<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1", Answer::No},
        {"<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1", Answer::Yes},
        {"<ip> [.#v0] .* [.#v4] .* [v3#.] <ip> 0", Answer::No},
        {"<ip> [.#v0] .* [.#v4] .* [v3#.] <ip> 1", Answer::Yes},
    };
    for (const auto& [text, expected] : cases) {
        const auto result = run(text);
        EXPECT_EQ(result.answer, expected) << text;
        if (expected == Answer::Yes) {
            ASSERT_TRUE(result.trace.has_value()) << text;
            const auto query = query::parse_query(text, net);
            const auto feasibility =
                check_feasibility(net, *result.trace, query.max_failures);
            EXPECT_TRUE(feasibility.feasible) << text << ": " << feasibility.reason;
        }
        EXPECT_NE(result.note.find("failure scenarios"), std::string::npos);
    }
}

TEST_F(ExactEngine, WeightedMinimumMatchesWeightedEngine) {
    const auto weights = parse_weight_expression("hops, failures + 3*tunnels");
    VerifyOptions options;
    options.weights = &weights;
    const auto exact = run("<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1", options);
    EXPECT_EQ(exact.answer, Answer::Yes);
    EXPECT_EQ(exact.weight, (std::vector<std::uint64_t>{5, 0})); // σ3
}

TEST_F(ExactEngine, DecidesWhatTheDualEngineCannot) {
    // The conflict network (backup requires a link the continuation uses):
    // DUAL is inconclusive; EXACT proves a conclusive NO.
    Network conflict;
    conflict.name = "conflict";
    auto& topology = conflict.topology;
    const auto a = topology.add_router("A");
    const auto b = topology.add_router("B");
    const auto c = topology.add_router("C");
    const auto d = topology.add_router("D");
    auto link = [&](RouterId s, std::string_view si, RouterId t, std::string_view ti) {
        return topology.add_link(s, topology.add_interface(s, si), t,
                                 topology.add_interface(t, ti));
    };
    const auto x = link(a, "x", b, "xi");
    const auto y = link(b, "y", c, "yi");
    const auto z = link(b, "z", c, "zi");
    const auto w = link(c, "w", b, "wi");
    const auto out = link(c, "o", d, "oi");
    const auto ell = conflict.labels.add(LabelType::MplsBos, "l");
    conflict.labels.add(LabelType::Ip, "ip");
    conflict.routing.add_rule(x, ell, 1, y, {});
    conflict.routing.add_rule(x, ell, 2, z, {});
    conflict.routing.add_rule(z, ell, 1, w, {});
    conflict.routing.add_rule(w, ell, 1, y, {});
    conflict.routing.add_rule(y, ell, 1, out, {});
    conflict.routing.validate(topology);

    const auto query = query::parse_query(
        "<smpls ip> [A#B] [B#C.zi] .* [C#D] <smpls ip> 1", conflict);
    EXPECT_EQ(verify(conflict, query, {}).answer, Answer::Inconclusive);
    VerifyOptions exact;
    exact.engine = EngineKind::Exact;
    EXPECT_EQ(verify(conflict, query, exact).answer, Answer::No);
}

TEST_F(ExactEngine, DualNeverContradictsExactOnSynthesizedNetworks) {
    const auto synth = synthesis::build_dataplane(synthesis::make_ring(4),
                                                  {.service_chains = 2, .seed = 21});
    const auto& network = synth.network;
    std::mt19937_64 rng(5);
    const auto& topo = network.topology;
    for (int round = 0; round < 6; ++round) {
        const auto a = topo.router_name(synth.edge_routers[rng() % synth.edge_routers.size()]);
        const auto b = topo.router_name(synth.edge_routers[rng() % synth.edge_routers.size()]);
        for (const std::uint64_t k : {0, 1}) {
            const auto text =
                "<ip> [.#" + a + "] .* [.#" + b + "] <ip> " + std::to_string(k);
            const auto query = query::parse_query(text, network);
            const auto dual = verify(network, query, {});
            VerifyOptions opts;
            opts.engine = EngineKind::Exact;
            const auto exact = verify(network, query, opts);
            ASSERT_NE(exact.answer, Answer::Inconclusive) << text;
            if (dual.answer != Answer::Inconclusive)
                EXPECT_EQ(dual.answer, exact.answer) << text;
        }
    }
}

TEST_F(ExactEngine, ScenarioCountGrowsCombinatorially) {
    // |E| = 8 on figure1: k=0 -> 1 scenario, k=1 -> 9, k=2 -> 37.
    auto count = [&](const std::string& text) {
        const auto note = run(text).note;
        const auto pos = note.find("exact: ");
        return std::stoul(note.substr(pos + 7));
    };
    EXPECT_EQ(count("<ip> [.#v0] .* [v3#.] <ip> 0"), 1u);
    EXPECT_EQ(count("<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1"), 9u);
    EXPECT_EQ(count("<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 2"), 37u);
}

} // namespace
} // namespace aalwines::verify
