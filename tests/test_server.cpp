// Loopback integration tests for the verification daemon (src/server/):
// real sockets against an in-process Server, covering the REST surface,
// the compiled-query cache, admission control, deadline handling and
// graceful drain.  The concurrent-client tests also run under the tsan CI
// job (ctest -R Server).

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <fstream>

#include "cli/options.hpp"
#include "json/json.hpp"
#include "server/access_log.hpp"
#include "server/cache.hpp"
#include "server/server.hpp"
#include "server/service.hpp"
#include "telemetry/telemetry.hpp"

namespace aalwines::server {
namespace {

constexpr const char* k_yes_query = "<ip> [.#v0] .* [v3#.] <ip> 0";
constexpr const char* k_no_query = "<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1";

struct Reply {
    int status = 0; ///< 0 = connect/read failure
    std::string body;
    std::string raw;
};

/// One raw HTTP exchange over a fresh loopback connection.
Reply roundtrip(std::uint16_t port, const std::string& method, const std::string& target,
                const std::string& body = {}) {
    Reply reply;
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return reply;
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&address), sizeof address) != 0) {
        ::close(fd);
        return reply;
    }
    std::string request = method + " " + target + " HTTP/1.1\r\nHost: localhost\r\n";
    if (!body.empty()) request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    request += "\r\n" + body;
    if (!http::write_all(fd, request)) {
        ::close(fd);
        return reply;
    }
    char chunk[4096];
    for (;;) {
        const auto n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n <= 0) break;
        reply.raw.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);
    if (reply.raw.rfind("HTTP/1.1 ", 0) == 0)
        reply.status = std::atoi(reply.raw.c_str() + 9);
    if (const auto split = reply.raw.find("\r\n\r\n"); split != std::string::npos)
        reply.body = reply.raw.substr(split + 4);
    return reply;
}

json::Value parse_body(const Reply& reply) { return json::parse(reply.body); }

/// Service + Server on an ephemeral port, stopped on destruction.
struct Daemon {
    explicit Daemon(ServerConfig config = {}, ServiceConfig service_config = {})
        : service(service_config), server(service, std::move(config)) {
        server.start();
    }
    ~Daemon() { server.stop(); }

    [[nodiscard]] std::string load_figure1() {
        const auto reply =
            roundtrip(server.port(), "POST", "/networks", R"({"demo":"figure1"})");
        EXPECT_EQ(reply.status, 201) << reply.raw;
        return parse_body(reply).at("id").as_string();
    }

    Service service;
    Server server;
};

TEST(Server, HealthzAndUnknownEndpoints) {
    Daemon daemon;
    const auto health = roundtrip(daemon.server.port(), "GET", "/healthz");
    EXPECT_EQ(health.status, 200);
    EXPECT_EQ(parse_body(health).at("status").as_string(), "ok");

    EXPECT_EQ(roundtrip(daemon.server.port(), "GET", "/nope").status, 404);
    EXPECT_EQ(roundtrip(daemon.server.port(), "GET", "/networks/n1/other").status, 404);
    EXPECT_EQ(roundtrip(daemon.server.port(), "PUT", "/networks").status, 405);
    EXPECT_EQ(roundtrip(daemon.server.port(), "POST", "/healthz").status, 405);
}

TEST(Server, LoadQueryAndCacheHit) {
    Daemon daemon;
    const auto before = telemetry::snapshot();
    const auto id = daemon.load_figure1();

    const auto body = std::string(R"({"query":")") + k_yes_query + R"("})";
    const auto first =
        roundtrip(daemon.server.port(), "POST", "/networks/" + id + "/query", body);
    ASSERT_EQ(first.status, 200) << first.raw;
    auto first_json = parse_body(first);
    EXPECT_EQ(first_json.at("answer").as_string(), "yes");
    EXPECT_FALSE(first_json.at("cached").as_bool());

    const auto second =
        roundtrip(daemon.server.port(), "POST", "/networks/" + id + "/query", body);
    ASSERT_EQ(second.status, 200);
    auto second_json = parse_body(second);
    EXPECT_EQ(second_json.at("answer").as_string(), "yes");
    EXPECT_TRUE(second_json.at("cached").as_bool());

    // Identical modulo the timing field and the cache marker.
    first_json.as_object().erase("seconds");
    first_json.as_object().erase("cached");
    second_json.as_object().erase("seconds");
    second_json.as_object().erase("cached");
    EXPECT_EQ(first_json, second_json);

    // The hit/miss totals surface through telemetry and /metrics.
    const auto metrics =
        roundtrip(daemon.server.port(), "GET", "/metrics");
    ASSERT_EQ(metrics.status, 200);
    const auto document = parse_body(metrics);
    const auto& cache = document.at("server").at("cache");
#if AALWINES_TELEMETRY_ENABLED
    const auto after = telemetry::snapshot();
    EXPECT_GE(after.counter(telemetry::Counter::server_cache_hits),
              before.counter(telemetry::Counter::server_cache_hits) + 1);
    EXPECT_GE(after.counter(telemetry::Counter::server_cache_misses),
              before.counter(telemetry::Counter::server_cache_misses) + 1);
    EXPECT_GE(cache.at("hits").as_int(), 1);
#else
    (void)before;
#endif
    EXPECT_EQ(cache.at("entries").as_int(), 1);
    EXPECT_EQ(document.at("server").at("workspaces").as_int(), 1);
}

TEST(Server, BatchQueriesWithPerItemErrors) {
    Daemon daemon;
    const auto id = daemon.load_figure1();
    const auto body = std::string(R"({"jobs": 2, "queries": [")") + k_yes_query +
                      R"(", "garbage", ")" + k_no_query + R"("]})";
    const auto reply =
        roundtrip(daemon.server.port(), "POST", "/networks/" + id + "/query", body);
    ASSERT_EQ(reply.status, 200) << reply.raw;
    const auto document = parse_body(reply);
    const auto& results = document.at("results").as_array();
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].at("answer").as_string(), "yes");
    EXPECT_NE(results[1].find("error"), nullptr);
    EXPECT_EQ(results[2].at("answer").as_string(), "no");
}

TEST(Server, SweepEndpointReturnsHealthMatrix) {
    Daemon daemon;
    const auto id = daemon.load_figure1();
    const auto reply = roundtrip(
        daemon.server.port(), "POST", "/networks/" + id + "/sweep",
        R"({"template":"<ip> [.#{src}] .* [{dst}#.] <ip> {k}",
            "pairs":[["v0","v3"]], "budgets":[0,1],
            "singleFailures":0, "stats":true})");
    ASSERT_EQ(reply.status, 200) << reply.raw;
    const auto body = parse_body(reply);
    EXPECT_EQ(body.at("network").as_string(), id);
    EXPECT_EQ(body.at("template").as_string(), "<ip> [.#{src}] .* [{dst}#.] <ip> {k}");
    const auto& cells = body.at("cells").as_array();
    const auto& stats = body.at("stats").as_object();
    // figure1 has 8 up links: baseline + 8 scenarios, 1 pair x 2 budgets.
    EXPECT_EQ(body.at("scenarios").as_array().size(), 9u);
    ASSERT_EQ(cells.size(), 18u);
    EXPECT_EQ(stats.at("cells").as_int(), 18);
    EXPECT_EQ(stats.at("errors").as_int(), 0);
    EXPECT_EQ(stats.at("nfaCompiles").as_int(), 1);
    EXPECT_GT(stats.at("reusedFrontiers").as_int() +
                  stats.at("sharedSaturations").as_int(),
              0);

    // The baseline k=0 cell is exactly k_yes_query; its answer must agree
    // with the one-by-one /query endpoint.
    EXPECT_EQ(cells[0].at("answer").as_string(), "yes");
    EXPECT_EQ(cells[0].at("path").as_string(), "cold");
    // --stats carries each cell's full per-query detail.
    EXPECT_NE(cells[0].find("detail"), nullptr);

    // Missing template is a usage error; unresolvable scenario names are a
    // model error (422), reported before anything runs.
    EXPECT_EQ(roundtrip(daemon.server.port(), "POST", "/networks/" + id + "/sweep",
                        R"({"pairs":[["v0","v3"]]})")
                  .status,
              400);
    EXPECT_EQ(roundtrip(daemon.server.port(), "POST", "/networks/" + id + "/sweep",
                        R"({"template":"<ip> .* <ip> 0",
                            "scenarios":[{"failedLinks":[["ghost","x"]]}]})")
                  .status,
              422);
    // Sweep on an unknown workspace.
    EXPECT_EQ(roundtrip(daemon.server.port(), "POST", "/networks/n999/sweep",
                        R"({"template":"<ip> .* <ip> 0"})")
                  .status,
              404);
}

TEST(Server, QueryOptionsSelectEngineAndWeights) {
    Daemon daemon;
    const auto id = daemon.load_figure1();
    const auto weighted = roundtrip(
        daemon.server.port(), "POST", "/networks/" + id + "/query",
        R"({"query":"<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1",)"
        R"("weight":"hops, failures + 3*tunnels"})");
    ASSERT_EQ(weighted.status, 200) << weighted.raw;
    const auto weighted_json = parse_body(weighted);
    const auto& weight = weighted_json.at("weight").as_array();
    ASSERT_EQ(weight.size(), 2u);
    EXPECT_EQ(weight[0].as_int(), 5);
    EXPECT_EQ(weight[1].as_int(), 0);

    const auto moped = roundtrip(daemon.server.port(), "POST",
                                 "/networks/" + id + "/query",
                                 std::string(R"({"engine":"moped","query":")") +
                                     k_yes_query + R"("})");
    ASSERT_EQ(moped.status, 200);
    EXPECT_EQ(parse_body(moped).at("answer").as_string(), "yes");

    const auto bad_engine = roundtrip(
        daemon.server.port(), "POST", "/networks/" + id + "/query",
        std::string(R"({"engine":"quantum","query":")") + k_yes_query + R"("})");
    EXPECT_EQ(bad_engine.status, 400);
}

TEST(Server, ErrorStatusCodes) {
    Daemon daemon;
    // Unknown network id.
    EXPECT_EQ(roundtrip(daemon.server.port(), "POST", "/networks/n999/query",
                        R"({"query":"x"})")
                  .status,
              404);
    // Malformed JSON body.
    const auto id = daemon.load_figure1();
    EXPECT_EQ(roundtrip(daemon.server.port(), "POST", "/networks/" + id + "/query",
                        "{not json")
                  .status,
              400);
    // Parse error in the (single) query text.
    EXPECT_EQ(roundtrip(daemon.server.port(), "POST", "/networks/" + id + "/query",
                        R"({"query":"not a query"})")
                  .status,
              400);
    // Missing network source.
    EXPECT_EQ(roundtrip(daemon.server.port(), "POST", "/networks", R"({})").status, 400);
    // Malformed network documents.
    EXPECT_EQ(roundtrip(daemon.server.port(), "POST", "/networks",
                        R"({"topologyXml":"<broken", "routingXml":"<routes/>"})")
                  .status,
              400);
    // Malformed HTTP framing.
    EXPECT_EQ(roundtrip(daemon.server.port(), "BROKEN_NO_TARGET", "/x\r\nbad").status,
              400);
}

TEST(Server, WorkspaceLifecycle) {
    Daemon daemon;
    const auto id = daemon.load_figure1();
    const auto list = roundtrip(daemon.server.port(), "GET", "/networks");
    ASSERT_EQ(list.status, 200);
    EXPECT_EQ(parse_body(list).at("networks").as_array().size(), 1u);

    const auto info = roundtrip(daemon.server.port(), "GET", "/networks/" + id);
    ASSERT_EQ(info.status, 200);
    EXPECT_EQ(parse_body(info).at("routers").as_int(), 7);

    EXPECT_EQ(roundtrip(daemon.server.port(), "DELETE", "/networks/" + id).status, 204);
    EXPECT_EQ(roundtrip(daemon.server.port(), "GET", "/networks/" + id).status, 404);
    EXPECT_EQ(roundtrip(daemon.server.port(), "POST", "/networks/" + id + "/query",
                        std::string(R"({"query":")") + k_yes_query + R"("})")
                  .status,
              404);
}

TEST(Server, PatchAppliesDeltaAndScopesInvalidation) {
    Daemon daemon;
    const auto port = daemon.server.port();
    const auto patched = daemon.load_figure1();
    const auto bystander = daemon.load_figure1();

    // Prime both workspaces' result caches.
    const auto query_body = std::string(R"({"query":")") + k_yes_query + R"("})";
    for (const auto* id : {&patched, &bystander})
        ASSERT_EQ(roundtrip(port, "POST", "/networks/" + *id + "/query", query_body).status,
                  200);

    constexpr const char* k_down_e1 = R"({"operations": [
        {"op": "link-state", "router": "v0", "interface": "e1", "up": false}]})";
    EXPECT_EQ(roundtrip(port, "PATCH", "/networks/nosuch", k_down_e1).status, 404);
    EXPECT_EQ(roundtrip(port, "PATCH", "/networks/" + patched,
                        R"({"operations": [{"op": "frobnicate"}]})")
                  .status,
              422);
    EXPECT_EQ(roundtrip(port, "PATCH", "/networks/" + patched, R"({"operations": [
        {"op": "link-state", "router": "nosuch", "interface": "e1", "up": false}]})")
                  .status,
              422);

    const auto reply = roundtrip(port, "PATCH", "/networks/" + patched, k_down_e1);
    ASSERT_EQ(reply.status, 200) << reply.raw;
    const auto body = parse_body(reply);
    EXPECT_EQ(body.at("generation").as_int(), 1);
    EXPECT_EQ(body.at("operations").as_int(), 1);
    EXPECT_EQ(body.at("invalidations").as_int(), 1);
    // Only the patched workspace's cached result was retired.
    EXPECT_EQ(body.at("cacheEvictions").as_int(), 1);
    EXPECT_EQ(body.at("effects").at("stateLinks").as_array().size(), 1u);
    EXPECT_FALSE(body.at("effects").at("labelAdded").as_bool());

    const auto info = roundtrip(port, "GET", "/networks/" + patched);
    ASSERT_EQ(info.status, 200);
    EXPECT_EQ(parse_body(info).at("generation").as_int(), 1);

    // A patched workspace answers through its Reverifier: still yes (the
    // query re-routes via e2), freshly computed, with the tier surfaced.
    const auto requery = roundtrip(port, "POST", "/networks/" + patched + "/query", query_body);
    ASSERT_EQ(requery.status, 200) << requery.raw;
    const auto requery_json = parse_body(requery);
    EXPECT_EQ(requery_json.at("answer").as_string(), "yes");
    EXPECT_FALSE(requery_json.at("cached").as_bool());
    EXPECT_TRUE(requery_json.find("path") != nullptr);

    // The bystander workspace still serves its cached result.
    const auto untouched = roundtrip(port, "POST", "/networks/" + bystander + "/query",
                                     query_body);
    ASSERT_EQ(untouched.status, 200);
    EXPECT_TRUE(parse_body(untouched).at("cached").as_bool());
}

TEST(Server, ConcurrentPatchAndQueries) {
    // PATCH races against in-flight queries: every query must land on a
    // coherent generation (yes either way — figure1 keeps an alternate path
    // through e2 while e1 is down) and the daemon must stay consistent.
    // Exercised under the tsan CI job (ctest -R Server).
    Daemon daemon;
    const auto port = daemon.server.port();
    const auto id = daemon.load_figure1();
    const auto query_body = std::string(R"({"query":")") + k_yes_query + R"("})";

    std::atomic<int> failures{0};
    std::thread patcher([&] {
        const char* deltas[] = {
            R"({"operations": [{"op": "link-state", "router": "v0", "interface": "e1",
                                "up": false}]})",
            R"({"operations": [{"op": "link-state", "router": "v0", "interface": "e1",
                                "up": true}]})",
        };
        for (int i = 0; i < 24; ++i) {
            const auto reply = roundtrip(port, "PATCH", "/networks/" + id, deltas[i % 2]);
            if (reply.status != 200) ++failures;
        }
    });
    std::vector<std::thread> queriers;
    for (int t = 0; t < 3; ++t) {
        queriers.emplace_back([&] {
            for (int i = 0; i < 16; ++i) {
                const auto reply =
                    roundtrip(port, "POST", "/networks/" + id + "/query", query_body);
                if (reply.status != 200 ||
                    parse_body(reply).at("answer").as_string() != "yes")
                    ++failures;
            }
        });
    }
    patcher.join();
    for (auto& querier : queriers) querier.join();
    EXPECT_EQ(failures.load(), 0);

    const auto info = roundtrip(port, "GET", "/networks/" + id);
    ASSERT_EQ(info.status, 200);
    EXPECT_EQ(parse_body(info).at("generation").as_int(), 24);
}

TEST(Server, LoadsGmlDocuments) {
    Daemon daemon;
    const std::string gml =
        "graph [\n"
        "  node [ id 0 label \"a\" ]\n  node [ id 1 label \"b\" ]\n"
        "  node [ id 2 label \"c\" ]\n  node [ id 3 label \"d\" ]\n"
        "  edge [ source 0 target 1 ]\n  edge [ source 1 target 2 ]\n"
        "  edge [ source 2 target 3 ]\n  edge [ source 3 target 0 ]\n"
        "]\n";
    json::Object body;
    body.emplace("gml", gml);
    body.emplace("name", "ring4");
    const auto reply = roundtrip(daemon.server.port(), "POST", "/networks",
                                 json::write(json::Value(std::move(body))));
    ASSERT_EQ(reply.status, 201) << reply.raw;
    const auto info = parse_body(reply);
    EXPECT_EQ(info.at("name").as_string(), "ring4");
    // 4 ring nodes plus one synthesized external stub per edge router.
    EXPECT_EQ(info.at("routers").as_int(), 8);
}

/// Gate test instrumentation: lets the test hold worker threads mid-request.
struct Gate {
    void open() {
        {
            const std::lock_guard lock(mutex);
            released = true;
        }
        cv.notify_all();
    }
    void wait_entered() {
        std::unique_lock lock(mutex);
        cv.wait(lock, [this] { return entered > 0; });
    }
    void block(const http::Request& request) {
        if (request.target.find("/query") == std::string::npos) return;
        std::unique_lock lock(mutex);
        ++entered;
        cv.notify_all();
        cv.wait(lock, [this] { return released; });
    }

    std::mutex mutex;
    std::condition_variable cv;
    int entered = 0;
    bool released = false;
};

TEST(Server, AdmissionControlRejectsWithRetryAfter) {
    Gate gate;
    ServerConfig config;
    config.workers = 1;
    config.queue_capacity = 1;
    config.on_request = [&gate](const http::Request& request) { gate.block(request); };
    Daemon daemon(config);
    const auto id = daemon.load_figure1();
    const auto port = daemon.server.port();
    const auto body = std::string(R"({"query":")") + k_yes_query + R"("})";
    const auto before = telemetry::snapshot();

    // A occupies the single worker; B fills the queue; C must bounce.
    std::thread a([&] {
        const auto reply = roundtrip(port, "POST", "/networks/" + id + "/query", body);
        EXPECT_EQ(reply.status, 200) << reply.raw;
    });
    gate.wait_entered();
    std::thread b([&] {
        const auto reply = roundtrip(port, "POST", "/networks/" + id + "/query", body);
        EXPECT_EQ(reply.status, 200) << reply.raw;
    });
    for (int i = 0; i < 2000 && daemon.server.queue_depth() < 1; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(daemon.server.queue_depth(), 1u);

    const auto rejected = roundtrip(port, "GET", "/healthz");
    EXPECT_EQ(rejected.status, 503) << rejected.raw;
    EXPECT_NE(rejected.raw.find("Retry-After:"), std::string::npos);

    gate.open();
    a.join();
    b.join();
#if AALWINES_TELEMETRY_ENABLED
    const auto after = telemetry::snapshot();
    EXPECT_GE(after.counter(telemetry::Counter::server_rejected),
              before.counter(telemetry::Counter::server_rejected) + 1);
#else
    (void)before;
#endif
}

TEST(Server, GracefulShutdownDrainsInFlightRequests) {
    Gate gate;
    ServerConfig config;
    config.workers = 2;
    config.on_request = [&gate](const http::Request& request) { gate.block(request); };
    Daemon daemon(config);
    const auto id = daemon.load_figure1();
    const auto port = daemon.server.port();

    std::thread client([&] {
        const auto reply =
            roundtrip(port, "POST", "/networks/" + id + "/query",
                      std::string(R"({"query":")") + k_yes_query + R"("})");
        EXPECT_EQ(reply.status, 200) << reply.raw;
        EXPECT_EQ(parse_body(reply).at("answer").as_string(), "yes");
    });
    gate.wait_entered();
    daemon.server.request_stop(); // the in-flight request must still answer
    gate.open();
    daemon.server.wait();
    client.join();

    // Fully drained: new connections are refused.
    EXPECT_EQ(roundtrip(port, "GET", "/healthz").status, 0);
}

TEST(Server, DeadlineExpiresQueuedRequests) {
    Gate gate;
    ServerConfig config;
    config.workers = 1;
    config.queue_capacity = 8;
    config.deadline_ms = 50;
    config.on_request = [&gate](const http::Request& request) { gate.block(request); };
    Daemon daemon(config);
    const auto id = daemon.load_figure1();
    const auto port = daemon.server.port();
    const auto body = std::string(R"({"query":")") + k_yes_query + R"("})";

    std::thread a([&] { (void)roundtrip(port, "POST", "/networks/" + id + "/query", body); });
    gate.wait_entered();
    std::thread b([&] {
        // Queued behind the gated request for > deadline_ms: expired, 504.
        const auto reply = roundtrip(port, "GET", "/healthz");
        EXPECT_EQ(reply.status, 504) << reply.raw;
    });
    for (int i = 0; i < 2000 && daemon.server.queue_depth() < 1; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    gate.open();
    a.join();
    b.join();
}

// Also exercised by the tsan CI job: many clients, mixed cached/uncached
// queries and metrics scrapes, all against one shared workspace.
TEST(Server, ConcurrentClients) {
    Daemon daemon;
    const auto id = daemon.load_figure1();
    const auto port = daemon.server.port();
    const std::vector<std::string> queries = {
        k_yes_query, k_no_query, "<ip> .* <ip> 0", "<smpls ip> .* <smpls ip> 1"};
    std::atomic<int> failures{0};
    std::vector<std::thread> clients;
    clients.reserve(8);
    for (int c = 0; c < 8; ++c) {
        clients.emplace_back([&, c] {
            for (int i = 0; i < 6; ++i) {
                if (i == 3 && c % 2 == 0) {
                    if (roundtrip(port, "GET", "/metrics").status != 200) ++failures;
                    continue;
                }
                const auto& query = queries[static_cast<std::size_t>(c + i) % queries.size()];
                const auto reply = roundtrip(port, "POST", "/networks/" + id + "/query",
                                             R"({"query":")" + query + R"("})");
                if (reply.status != 200) ++failures;
            }
        });
    }
    for (auto& client : clients) client.join();
    EXPECT_EQ(failures.load(), 0);
}

TEST(Server, PrometheusMetricsExposition) {
    Daemon daemon;
    const auto id = daemon.load_figure1();
    ASSERT_EQ(roundtrip(daemon.server.port(), "POST", "/networks/" + id + "/query",
                        std::string(R"({"query":")") + k_yes_query + R"("})")
                  .status,
              200);

    const auto reply =
        roundtrip(daemon.server.port(), "GET", "/metrics?format=prometheus");
    ASSERT_EQ(reply.status, 200) << reply.raw;
    EXPECT_NE(reply.raw.find("text/plain; version=0.0.4"), std::string::npos);
    const auto& text = reply.body;
    EXPECT_NE(text.find("# TYPE aalwines_server_requests_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE aalwines_request_duration_seconds histogram"),
              std::string::npos);
    EXPECT_NE(text.find("aalwines_request_duration_seconds_bucket{le=\"+Inf\"}"),
              std::string::npos);
    EXPECT_NE(text.find("aalwines_cache_entries 1\n"), std::string::npos);
    EXPECT_NE(text.find("aalwines_workspaces 1\n"), std::string::npos);

    // Extract the single un-labelled sample value of `series`.
    const auto value_of = [&](const std::string& series) {
        const auto pos = text.find("\n" + series + " ");
        EXPECT_NE(pos, std::string::npos) << series;
        if (pos == std::string::npos) return -1LL;
        return std::stoll(text.substr(pos + series.size() + 2));
    };
    // Counter and duration histogram fire together after routing, so any
    // scrape — including this one — sees them equal.
    EXPECT_EQ(value_of("aalwines_request_duration_seconds_count"),
              value_of("aalwines_server_requests_total"));

    // The plain endpoint still answers JSON, now as metrics-2.
    const auto json_reply = roundtrip(daemon.server.port(), "GET", "/metrics");
    ASSERT_EQ(json_reply.status, 200);
    const auto document = parse_body(json_reply);
    EXPECT_EQ(document.at("schema").as_string(), "aalwines-metrics-2");
    EXPECT_EQ(document.at("current").at("cacheEntries").as_int(), 1);
#if AALWINES_TELEMETRY_ENABLED
    EXPECT_TRUE(document.at("histograms").as_object().contains("request_duration"));
#endif
}

TEST(Server, AccessLogRoundTrip) {
    const std::string path =
        "/tmp/aalwines_access_" + std::to_string(::getpid()) + ".log";
    ::unlink(path.c_str());
    ServiceConfig service_config;
    service_config.access_log_path = path;
    service_config.slow_query_ms = 3'600'000; // nothing qualifies as slow
    std::string id;
    {
        Daemon daemon({}, service_config);
        id = daemon.load_figure1();
        const auto body = std::string(R"({"query":")") + k_yes_query + R"("})";
        ASSERT_EQ(roundtrip(daemon.server.port(), "POST",
                            "/networks/" + id + "/query", body)
                      .status,
                  200);
        ASSERT_EQ(roundtrip(daemon.server.port(), "POST",
                            "/networks/" + id + "/query", body)
                      .status,
                  200);
    }

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open()) << path;
    std::vector<json::Value> records;
    std::string line;
    while (std::getline(in, line))
        if (!line.empty()) records.push_back(json::parse(line));
    ::unlink(path.c_str());

    ASSERT_EQ(records.size(), 3u); // load + two queries, in request order
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i].at("id").as_int(), static_cast<std::int64_t>(i + 1));
        EXPECT_EQ(records[i].at("method").as_string(), "POST");
        EXPECT_GE(records[i].at("durationMs").as_double(), 0.0);
        const auto time = records[i].at("time").as_string();
        ASSERT_EQ(time.size(), 20u) << time;
        EXPECT_EQ(time[10], 'T');
        EXPECT_EQ(time.back(), 'Z');
        EXPECT_EQ(records[i].find("slow"), nullptr);
        EXPECT_EQ(records[i].find("queryTexts"), nullptr); // slow-only detail
    }
    EXPECT_EQ(records[0].at("target").as_string(), "/networks");
    EXPECT_EQ(records[0].at("status").as_int(), 201);

    const auto& first = records[1];
    const auto& second = records[2];
    EXPECT_EQ(first.at("network").as_string(), id);
    EXPECT_EQ(first.at("queries").as_int(), 1);
    EXPECT_EQ(first.at("answer").as_string(), "yes");
    EXPECT_EQ(first.at("cacheMisses").as_int(), 1);
    EXPECT_EQ(first.at("cacheHits").as_int(), 0);
    EXPECT_EQ(second.at("cacheHits").as_int(), 1);
    EXPECT_EQ(second.at("cacheMisses").as_int(), 0);
    // Identical query => identical stable hash, 16 lower-case hex digits.
    const auto hash = first.at("queryHash").as_string();
    EXPECT_EQ(hash.size(), 16u);
    EXPECT_EQ(hash.find_first_not_of("0123456789abcdef"), std::string::npos);
    EXPECT_EQ(hash, second.at("queryHash").as_string());
}

TEST(AccessLog, StableHashIdsAndTimestamp) {
    // FNV-1a 64: hash of "" is the offset basis, "a" is the textbook value.
    EXPECT_EQ(stable_hash_hex(""), "cbf29ce484222325");
    EXPECT_EQ(stable_hash_hex("a"), "af63dc4c8601ec8c");
    EXPECT_NE(stable_hash_hex("<ip> .* <ip> 0"), stable_hash_hex("<ip> .* <ip> 1"));

    AccessLog slow_only("", 5);
    EXPECT_TRUE(slow_only.enabled());
    EXPECT_EQ(slow_only.slow_ms(), 5u);

    // Ids are stamped by write() itself, so line order == id order.
    const auto path = "/tmp/aalwines_access_ids_" + std::to_string(::getpid()) + ".log";
    {
        AccessLog log(path, 0);
        log.write(json::Object{{"target", json::Value("/a")}}, false);
        log.write(json::Object{{"target", json::Value("/b")}}, false);
    }
    std::ifstream stream(path);
    std::string line;
    std::uint64_t expected_id = 0;
    while (std::getline(stream, line)) {
        const auto record = json::parse(line);
        EXPECT_EQ(record.at("id").as_int(), static_cast<std::int64_t>(++expected_id));
    }
    EXPECT_EQ(expected_id, 2u);
    ::unlink(path.c_str());

    AccessLog disabled("", 0);
    EXPECT_FALSE(disabled.enabled());

    EXPECT_THROW(AccessLog("/nonexistent-dir/x.log", 0), std::runtime_error);

    const auto time = log_timestamp();
    ASSERT_EQ(time.size(), 20u) << time;
    EXPECT_EQ(time[4], '-');
    EXPECT_EQ(time[10], 'T');
    EXPECT_EQ(time.back(), 'Z');
}

// --- TSan regression tests (the tsan CI job runs ctest -R Server) --------

TEST(Server, AccessLogConcurrentWritesKeepIdOrder) {
    // Regression: ids used to be minted in a critical section separate from
    // the line write (Service asked next_id(), then AccessLog locked again
    // to append), so two racing requests could land in the file out of id
    // order.  write() now stamps the id under the same lock as the append.
    const auto path =
        "/tmp/aalwines_access_race_" + std::to_string(::getpid()) + ".log";
    ::unlink(path.c_str());
    constexpr int k_threads = 8;
    constexpr int k_writes = 50;
    {
        AccessLog log(path, 0);
        std::vector<std::thread> writers;
        writers.reserve(k_threads);
        for (int t = 0; t < k_threads; ++t)
            writers.emplace_back([&log] {
                for (int i = 0; i < k_writes; ++i)
                    log.write(json::Object{{"target", json::Value("/race")}}, false);
            });
        for (auto& writer : writers) writer.join();
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open()) << path;
    std::string line;
    std::int64_t expected = 0;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        EXPECT_EQ(json::parse(line).at("id").as_int(), ++expected);
    }
    ::unlink(path.c_str());
    EXPECT_EQ(expected, k_threads * k_writes);
}

TEST(Server, ConcurrentStopAndWaitDrainTogether) {
    // Regression: a second concurrent wait() caller used to return straight
    // away while the first was still joining the worker pool — its caller
    // then observed a daemon that was still serving.  Every stop() caller
    // must come back only once the listener is really gone.
    ServiceConfig service_config;
    Service service(service_config);
    Server server(service, {});
    server.start();
    const auto port = server.port();
    ASSERT_EQ(roundtrip(port, "GET", "/healthz").status, 200);

    constexpr int k_threads = 4;
    std::vector<std::thread> stoppers;
    stoppers.reserve(k_threads);
    for (int t = 0; t < k_threads; ++t)
        stoppers.emplace_back([&server, port] {
            server.stop();
            // stop() returned => the drain is complete for *this* caller
            // too, so the listening socket must be closed already.
            EXPECT_EQ(roundtrip(port, "GET", "/healthz").status, 0);
        });
    for (auto& stopper : stoppers) stopper.join();
}

TEST(Server, ResultCacheConcurrentInsertFindEvict) {
    // The LRU list and index share one mutex; hammer insert/find/evict from
    // several threads (32 hot keys against capacity 8 forces constant
    // eviction) and check the structural invariants afterwards.
    ResultCache cache(8);
    constexpr int k_threads = 4;
    constexpr int k_ops = 400;
    std::vector<std::thread> workers;
    workers.reserve(k_threads);
    for (int t = 0; t < k_threads; ++t)
        workers.emplace_back([&cache, t] {
            for (int i = 0; i < k_ops; ++i) {
                const auto key = "key-" + std::to_string((t * k_ops + i) % 32);
                if (cache.find(key) == nullptr)
                    cache.insert(key, std::make_shared<verify::VerifyResult>());
            }
        });
    for (auto& worker : workers) worker.join();
    EXPECT_GT(cache.size(), 0u);
    EXPECT_LE(cache.size(), cache.capacity());
    const auto snap = telemetry::snapshot();
    const auto high_water = snap.gauges[static_cast<std::size_t>(
        telemetry::Gauge::cache_entries_high_water)];
    EXPECT_GE(high_water, 1u); // raised under the same lock as the insert
}

// --- option-layer units shared with the daemon (src/cli/options) ---------

TEST(ServerOptions, SplitQueriesHandlesCommentsAndSemicolons) {
    const auto queries = cli::split_queries(
        "# comment line\n<ip> .* <ip> 0 ; <ip> [.#v0] .* <ip> 1\n\n  \t\n<ip> .* <ip> 2\n");
    ASSERT_EQ(queries.size(), 3u);
    EXPECT_EQ(queries[0], "<ip> .* <ip> 0");
    EXPECT_EQ(queries[1], "<ip> [.#v0] .* <ip> 1"); // '#' kept inside link atoms
    EXPECT_EQ(queries[2], "<ip> .* <ip> 2");
}

TEST(ServerOptions, LoadersThrowInsteadOfExiting) {
    EXPECT_THROW((void)cli::read_file("/nonexistent/file"), cli::io_error);
    EXPECT_THROW((void)cli::load_network(cli::NetworkSource{}), cli::usage_error);
    cli::NetworkSource bad_demo;
    bad_demo.demo = "bogus";
    EXPECT_THROW((void)cli::load_network(bad_demo), cli::usage_error);
    cli::NetworkDocuments docs;
    docs.topology_xml = "<broken";
    docs.routing_xml = "<routes/>";
    EXPECT_THROW((void)cli::load_network(docs), std::exception);
}

TEST(ServerOptions, VerifySpecValidation) {
    WeightExpr weights;
    cli::VerifySpec spec;
    spec.engine = "weighted";
    EXPECT_THROW((void)cli::make_verify_options(spec, weights), cli::usage_error);
    spec.engine = "nope";
    EXPECT_THROW((void)cli::make_verify_options(spec, weights), cli::usage_error);
    spec.engine = "dual";
    spec.reduction = 7;
    EXPECT_THROW((void)cli::make_verify_options(spec, weights), cli::usage_error);
    spec.reduction = 1;
    spec.weight = "hops";
    const auto options = cli::make_verify_options(spec, weights);
    EXPECT_EQ(options.engine, verify::EngineKind::Weighted);
    EXPECT_EQ(options.reduction_level, 1);
}

} // namespace
} // namespace aalwines::server
