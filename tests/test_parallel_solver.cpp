// Sequential ≡ parallel equivalence battery for the sharded saturation
// solver: identical accepting sets and minimal weights at every thread
// count, replay-valid witnesses, deterministic schedules at a fixed count,
// and a pinned shard-assignment hash (see solver_shard_of).

#include <gtest/gtest.h>

#include <algorithm>

#include "pda_test_util.hpp"
#include "synthesis/dataplane.hpp"
#include "synthesis/networks.hpp"
#include "synthesis/queries.hpp"
#include "verify/engine.hpp"

namespace aalwines::pda {
namespace {

using testutil::automaton_for_configs;
using testutil::brute_force_reachable;
using testutil::Config;
using testutil::exact_word;
using testutil::random_pda;

SolverOptions with_threads(std::size_t threads) {
    // Explicit count: overrides any AALWINES_SOLVER_THREADS the CI matrix
    // exports, so the baseline below really is the sequential engine.
    SolverOptions options;
    options.threads = threads;
    return options;
}

TEST(SolverShard, AssignmentIsPinned) {
    // Deterministic-seed contract: these values may only change together
    // with an intentional rebalancing of the owner hash.
    const unsigned at4[] = {0, 0, 3, 1, 2, 2, 1, 3};
    const unsigned at2[] = {0, 0, 1, 1, 0, 0, 1, 1};
    for (StateId s = 0; s < 8; ++s) {
        EXPECT_EQ(solver_shard_of(s, 4), at4[s]) << "state " << s;
        EXPECT_EQ(solver_shard_of(s, 2), at2[s]) << "state " << s;
    }
    EXPECT_EQ(solver_shard_of(12345, 8), 6u);
    EXPECT_EQ(solver_shard_of(0xFFFFFFFFu, 4), 1u);
    for (StateId s = 0; s < 64; ++s) EXPECT_EQ(solver_shard_of(s, 1), 0u);
}

class ParallelRandom : public ::testing::TestWithParam<int> {};

/// post*: every thread count accepts exactly the configurations the
/// sequential engine accepts, at the same minimal weight, with witnesses
/// that replay to the probed configuration.
TEST_P(ParallelRandom, PostStarMatchesSequential) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 3);
    const Symbol alphabet = 3;
    const auto pda = random_pda(rng, 6, alphabet, 14, true);
    const std::vector<Config> initial{{0, {0, 1}}};

    auto sequential = automaton_for_configs(pda, initial);
    post_star(sequential, with_threads(1));

    // Probe every configuration up to depth 3 plus everything brute-force
    // reachable (covers configs the automata must *reject* too).
    std::vector<Config> probes;
    for (StateId s = 0; s < pda.state_count(); ++s)
        for (Symbol a = 0; a < alphabet; ++a) {
            probes.push_back({s, {a}});
            for (Symbol b = 0; b < alphabet; ++b) probes.push_back({s, {a, b}});
        }
    for (const auto& config : brute_force_reachable(pda, initial, 48, 4))
        probes.push_back(config);

    for (const std::size_t threads : {2u, 8u}) {
        auto parallel = automaton_for_configs(pda, initial);
        const auto stats = post_star(parallel, with_threads(threads));
        EXPECT_EQ(stats.threads_used, threads);
        EXPECT_EQ(stats.shard_pops.size(), threads);
        // The balance gauge must be populated whenever the sharded loop
        // popped anything: max/mean per-shard pops is ≥ 1.0 by construction
        // and at most the thread count.
        std::size_t total_pops = 0;
        for (const auto pops : stats.shard_pops) total_pops += pops;
        if (total_pops > 0) {
            EXPECT_GE(stats.shard_imbalance, 1.0)
                << "seed " << GetParam() << " threads " << threads;
            EXPECT_LE(stats.shard_imbalance, static_cast<double>(threads))
                << "seed " << GetParam() << " threads " << threads;
        }
        std::size_t mismatches = 0;
        for (const auto& [state, stack] : probes) {
            const StateId starts[] = {state};
            const auto nfa = exact_word(stack);
            const auto seq = find_accepted(sequential, starts, nfa, alphabet);
            const auto par = find_accepted(parallel, starts, nfa, alphabet);
            if (seq.has_value() != par.has_value() ||
                (seq && par && !(seq->weight == par->weight)))
                ++mismatches;
            if (!par) continue;
            const auto witness = unroll_post_star(parallel, *par);
            ASSERT_TRUE(witness.has_value()) << "seed " << GetParam();
            const auto replay = replay_witness(pda, *witness);
            ASSERT_TRUE(replay.has_value())
                << "seed " << GetParam() << " threads " << threads;
            EXPECT_EQ(replay->back().first, state);
            EXPECT_EQ(replay->back().second, stack);
        }
        EXPECT_EQ(mismatches, 0u) << "seed " << GetParam() << " threads " << threads;
    }
}

/// pre*: same equivalence, probing source configurations against a panel of
/// saturated target automata.
TEST_P(ParallelRandom, PreStarMatchesSequential) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 24593 + 11);
    const Symbol alphabet = 3;
    const auto pda = random_pda(rng, 5, alphabet, 12, true);
    const std::vector<Config> targets{{1, {0}}, {2, {1, 0}}, {0, {2, 2}}};

    for (const auto& target : targets) {
        auto sequential = automaton_for_configs(pda, {target});
        pre_star(sequential, with_threads(1));
        auto parallel = automaton_for_configs(pda, {target});
        const auto stats = pre_star(parallel, with_threads(4));
        EXPECT_EQ(stats.threads_used, 4u);

        std::size_t mismatches = 0;
        for (StateId s = 0; s < pda.state_count(); ++s)
            for (Symbol a = 0; a < alphabet; ++a)
                for (Symbol b = 0; b < alphabet; ++b) {
                    const StateId starts[] = {s};
                    const auto nfa = exact_word({a, b});
                    const auto seq = find_accepted(sequential, starts, nfa, alphabet);
                    const auto par = find_accepted(parallel, starts, nfa, alphabet);
                    if (seq.has_value() != par.has_value() ||
                        (seq && par && !(seq->weight == par->weight)))
                        ++mismatches;
                }
        EXPECT_EQ(mismatches, 0u)
            << "seed " << GetParam() << " target state " << target.first;
    }
}

/// At a fixed thread count the schedule is deterministic: repeated runs
/// produce byte-identical automata (same ids, weights, provenance).
TEST_P(ParallelRandom, FixedThreadCountIsDeterministic) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 40961 + 7);
    const auto pda = random_pda(rng, 6, 3, 14, true);
    const std::vector<Config> initial{{0, {0, 1}}};

    const auto saturate = [&] {
        auto aut = automaton_for_configs(pda, initial);
        post_star(aut, with_threads(3));
        return aut;
    };
    const auto first = saturate();
    const auto second = saturate();
    ASSERT_EQ(first.transition_count(), second.transition_count());
    ASSERT_EQ(first.epsilon_count(), second.epsilon_count());
    for (TransId id = 0; id < first.transition_count(); ++id) {
        const auto& a = first.transition(id);
        const auto& b = second.transition(id);
        EXPECT_EQ(a.from, b.from) << id;
        EXPECT_EQ(a.to, b.to) << id;
        EXPECT_TRUE(a.label == b.label) << id;
        EXPECT_TRUE(a.weight == b.weight) << id;
        EXPECT_EQ(a.prov.kind, b.prov.kind) << id;
        EXPECT_EQ(a.prov.rule, b.prov.rule) << id;
    }
    for (std::uint32_t id = 0; id < first.epsilon_count(); ++id) {
        const auto& a = first.epsilon(id);
        const auto& b = second.epsilon(id);
        EXPECT_EQ(a.from, b.from) << id;
        EXPECT_EQ(a.to, b.to) << id;
        EXPECT_TRUE(a.weight == b.weight) << id;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelRandom, ::testing::Range(0, 12));

/// The iteration cap stays exact under sharded drains: never exceeded, and
/// truncation is reported whenever work remains.
TEST(ParallelSolver, IterationCapIsExact) {
    Pda pda(2);
    const auto p0 = pda.add_state();
    pda.add_rule({p0, p0, PreSpec::any(), Rule::OpKind::Push, 1, k_same_symbol,
                  Weight::one(), 0});
    const auto full = [&] {
        auto aut = automaton_for_configs(pda, {{p0, {0}}});
        return post_star(aut, with_threads(4)).iterations;
    }();
    ASSERT_GE(full, 3u);
    for (const std::size_t cap : {std::size_t{1}, std::size_t{2}, full - 1}) {
        auto aut = automaton_for_configs(pda, {{p0, {0}}});
        SolverOptions options = with_threads(4);
        options.max_iterations = cap;
        const auto stats = post_star(aut, options);
        EXPECT_TRUE(stats.truncated) << cap;
        EXPECT_LE(stats.iterations, cap);
    }
}

} // namespace
} // namespace aalwines::pda

namespace aalwines::verify {
namespace {

/// End-to-end equivalence on the paper's running example and a synthesized
/// operator network: answers and weights must be identical at 1, 2 and 8
/// solver threads (witness tie-breaks may differ; feasibility may not).
class ParallelVerify : public ::testing::Test {
protected:
    static VerifyOptions with_threads(std::size_t threads) {
        VerifyOptions options;
        options.solver_threads = threads;
        return options;
    }

    void expect_equivalent(const Network& net, const std::string& text,
                           const WeightExpr* weights = nullptr,
                           bool expect_parallel = true) {
        const auto query = query::parse_query(text, net);
        std::optional<VerifyResult> baseline;
        for (const std::size_t threads : {1u, 2u, 8u}) {
            auto options = with_threads(threads);
            if (weights != nullptr) {
                options.engine = EngineKind::Weighted;
                options.weights = weights;
            }
            const auto result = verify(net, query, options);
            // Multi-component weight vectors are bucket-ineligible, so the
            // solver falls back to sequential regardless of the request.
            EXPECT_EQ(result.stats.over.solver_threads,
                      expect_parallel ? threads : 1u)
                << text;
            if (result.trace) {
                const auto feasibility =
                    check_feasibility(net, *result.trace, query.max_failures);
                EXPECT_TRUE(feasibility.feasible)
                    << text << " threads " << threads << ": " << feasibility.reason;
            }
            if (!baseline) {
                baseline = result;
                continue;
            }
            EXPECT_EQ(result.answer, baseline->answer) << text << " @" << threads;
            EXPECT_EQ(result.weight, baseline->weight) << text << " @" << threads;
            EXPECT_EQ(result.trace.has_value(), baseline->trace.has_value())
                << text << " @" << threads;
        }
    }
};

TEST_F(ParallelVerify, Figure1QueriesMatchAcrossThreadCounts) {
    const auto net = synthesis::make_figure1_network();
    for (const auto* text : {
             "<ip> [.#v0] .* [v3#.] <ip> 0",
             "<ip> [.#v0] [^v2#v3]* [v3#.] <ip> 2",
             "<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0",
             "<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1",
             "<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1",
         })
        expect_equivalent(net, text);
}

TEST_F(ParallelVerify, Figure1WeightedMinimumMatchesAcrossThreadCounts) {
    const auto net = synthesis::make_figure1_network();
    // Scalar objective: bucket-eligible, so the sharded solver really runs.
    const auto hops = parse_weight_expression("hops");
    expect_equivalent(net, "<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1", &hops);
    // Lexicographic vector objective: gracefully sequential at any request.
    const auto vector = parse_weight_expression("hops, failures + 3*tunnels");
    expect_equivalent(net, "<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1",
                      &vector, /*expect_parallel=*/false);
}

TEST_F(ParallelVerify, NordunetBatteryMatchesAcrossThreadCounts) {
    auto synth = synthesis::make_nordunet_like();
    synthesis::QueryBatteryOptions battery_options;
    battery_options.count = 8;
    const auto battery = synthesis::make_query_battery(synth, battery_options);
    ASSERT_FALSE(battery.empty());
    for (const auto& text : battery) expect_equivalent(synth.network, text);
}

} // namespace
} // namespace aalwines::verify
