#include <gtest/gtest.h>

#include <random>

#include "model/header.hpp"

namespace aalwines {
namespace {

class HeaderFixture : public ::testing::Test {
protected:
    LabelTable labels;
    Label ip1 = labels.add(LabelType::Ip, "ip1");
    Label ip2 = labels.add(LabelType::Ip, "ip2");
    Label s20 = labels.add(LabelType::MplsBos, "20");
    Label s21 = labels.add(LabelType::MplsBos, "21");
    Label m30 = labels.add(LabelType::Mpls, "30");
    Label m31 = labels.add(LabelType::Mpls, "31");
};

TEST_F(HeaderFixture, ValidHeaderShapes) {
    EXPECT_TRUE(is_valid_header(labels, {ip1}));
    EXPECT_TRUE(is_valid_header(labels, {ip1, s20}));
    EXPECT_TRUE(is_valid_header(labels, {ip1, s20, m30}));
    EXPECT_TRUE(is_valid_header(labels, {ip1, s20, m30, m31}));
}

TEST_F(HeaderFixture, InvalidHeaderShapes) {
    EXPECT_FALSE(is_valid_header(labels, {}));
    EXPECT_FALSE(is_valid_header(labels, {s20}));            // no IP bottom
    EXPECT_FALSE(is_valid_header(labels, {ip1, m30}));       // mpls directly on ip
    EXPECT_FALSE(is_valid_header(labels, {ip1, s20, s21}));  // two bos labels
    EXPECT_FALSE(is_valid_header(labels, {ip1, ip2}));       // stacked ip
    EXPECT_FALSE(is_valid_header(labels, {ip1, s20, m30, s21})); // bos above mpls
}

TEST_F(HeaderFixture, PaperExampleRewrite) {
    // H(30 s20 ip1, pop o swap(s21) o push(31)) = 31 s21 ip1  (paper §2.2).
    const Header start{ip1, s20, m30};
    const std::vector<Op> ops{Op::pop(), Op::swap(s21), Op::push(m31)};
    const auto result = apply_ops(labels, start, ops);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(*result, (Header{ip1, s21, m31}));
}

TEST_F(HeaderFixture, PopUndefinedOnIp) {
    EXPECT_FALSE(apply_ops(labels, {ip1}, std::vector<Op>{Op::pop()}).has_value());
}

TEST_F(HeaderFixture, SwapAcrossStrataUndefined) {
    EXPECT_FALSE(apply_ops(labels, {ip1, s20}, std::vector<Op>{Op::swap(m30)}).has_value());
    EXPECT_FALSE(apply_ops(labels, {ip1, s20, m30}, std::vector<Op>{Op::swap(s21)}).has_value());
    EXPECT_FALSE(apply_ops(labels, {ip1}, std::vector<Op>{Op::swap(s20)}).has_value());
}

TEST_F(HeaderFixture, SwapWithinStratumDefined) {
    EXPECT_EQ(apply_ops(labels, {ip1}, std::vector<Op>{Op::swap(ip2)}), (Header{ip2}));
    EXPECT_EQ(apply_ops(labels, {ip1, s20}, std::vector<Op>{Op::swap(s21)}),
              (Header{ip1, s21}));
    EXPECT_EQ(apply_ops(labels, {ip1, s20, m30}, std::vector<Op>{Op::swap(m31)}),
              (Header{ip1, s20, m31}));
}

TEST_F(HeaderFixture, PushRules) {
    // smpls onto ip: ok.  mpls onto ip: undefined.  ip onto anything: undefined.
    EXPECT_EQ(apply_ops(labels, {ip1}, std::vector<Op>{Op::push(s20)}),
              (Header{ip1, s20}));
    EXPECT_FALSE(apply_ops(labels, {ip1}, std::vector<Op>{Op::push(m30)}).has_value());
    EXPECT_EQ(apply_ops(labels, {ip1, s20}, std::vector<Op>{Op::push(m30)}),
              (Header{ip1, s20, m30}));
    EXPECT_EQ(apply_ops(labels, {ip1, s20, m30}, std::vector<Op>{Op::push(m31)}),
              (Header{ip1, s20, m30, m31}));
    EXPECT_FALSE(apply_ops(labels, {ip1, s20}, std::vector<Op>{Op::push(s21)}).has_value());
    EXPECT_FALSE(apply_ops(labels, {ip1}, std::vector<Op>{Op::push(ip2)}).has_value());
}

TEST_F(HeaderFixture, DisplayIsTopFirst) {
    EXPECT_EQ(display_header(labels, {ip1, s21, m30}), "30 o s21 o ip1");
    EXPECT_EQ(display_header(labels, {ip1}), "ip1");
}

/// Property (Definition 3 invariant): applying any defined operation
/// sequence to a valid header yields a valid header.
TEST_F(HeaderFixture, RandomOpSequencesPreserveValidity) {
    std::mt19937_64 rng(99);
    const std::vector<Label> all{ip1, ip2, s20, s21, m30, m31};
    for (int round = 0; round < 3000; ++round) {
        Header header{ip1};
        if (rng() % 2) {
            header.push_back(s20);
            while (rng() % 3 == 0) header.push_back(rng() % 2 ? m30 : m31);
        }
        if (header.size() > 1 && rng() % 4 == 0) header = {ip2};
        ASSERT_TRUE(is_valid_header(labels, header));

        std::vector<Op> ops;
        const auto op_count = rng() % 5;
        for (std::uint64_t i = 0; i < op_count; ++i) {
            switch (rng() % 3) {
                case 0: ops.push_back(Op::pop()); break;
                case 1: ops.push_back(Op::swap(all[rng() % all.size()])); break;
                default: ops.push_back(Op::push(all[rng() % all.size()])); break;
            }
        }
        const auto result = apply_ops(labels, header, ops);
        if (result) {
            EXPECT_TRUE(is_valid_header(labels, *result))
                << "ops " << describe_ops(labels, ops) << " on "
                << display_header(labels, header) << " gave invalid "
                << display_header(labels, *result);
        }
    }
}

/// Property: op_applicable exactly predicts single-op definedness on valid headers.
TEST_F(HeaderFixture, ApplicablePredictsDefinedness) {
    const std::vector<Header> headers{
        {ip1}, {ip2}, {ip1, s20}, {ip1, s20, m30}, {ip1, s21, m31, m30}};
    const std::vector<Label> all{ip1, ip2, s20, s21, m30, m31};
    std::vector<Op> ops{Op::pop()};
    for (const auto l : all) {
        ops.push_back(Op::swap(l));
        ops.push_back(Op::push(l));
    }
    for (const auto& header : headers) {
        for (const auto& op : ops) {
            const bool defined =
                apply_ops(labels, header, std::vector<Op>{op}).has_value();
            EXPECT_EQ(defined, op_applicable(labels, header.back(), op))
                << display_header(labels, header) << " with "
                << describe_ops(labels, {op});
        }
    }
}

} // namespace
} // namespace aalwines
