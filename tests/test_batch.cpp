#include <gtest/gtest.h>

#include "synthesis/networks.hpp"
#include "synthesis/queries.hpp"
#include "verify/batch.hpp"

namespace aalwines::verify {
namespace {

TEST(Batch, MatchesSequentialAnswers) {
    const auto net = synthesis::build_dataplane(synthesis::make_ring(6),
                                                {.service_chains = 2, .seed = 11});
    const auto texts = synthesis::make_query_battery(net, {.count = 15, .seed = 2});

    const auto parallel = verify_batch(net.network, texts, {}, 4);
    ASSERT_EQ(parallel.size(), texts.size());
    for (std::size_t i = 0; i < texts.size(); ++i) {
        ASSERT_TRUE(parallel[i].error.empty()) << parallel[i].error;
        const auto query = query::parse_query(texts[i], net.network);
        const auto sequential = verify(net.network, query, {});
        EXPECT_EQ(parallel[i].result.answer, sequential.answer) << texts[i];
        EXPECT_EQ(parallel[i].query_text, texts[i]);
    }
}

TEST(Batch, CapturesPerQueryErrors) {
    const auto net = synthesis::make_figure1_network();
    const std::vector<std::string> texts = {
        "<ip> [.#v0] .* [v3#.] <ip> 0",
        "not a query at all",
        "<ip> [.#ghost] .* <ip> 0",
    };
    const auto items = verify_batch(net, texts, {}, 2);
    ASSERT_EQ(items.size(), 3u);
    EXPECT_TRUE(items[0].error.empty());
    EXPECT_EQ(items[0].result.answer, Answer::Yes);
    EXPECT_FALSE(items[1].error.empty());
    EXPECT_FALSE(items[2].error.empty());
    EXPECT_NE(items[2].error.find("ghost"), std::string::npos);
}

TEST(Batch, SingleJobAndEmptyBatch) {
    const auto net = synthesis::make_figure1_network();
    EXPECT_TRUE(verify_batch(net, {}, {}, 1).empty());
    const auto items =
        verify_batch(net, {"<ip> [.#v0] .* [v3#.] <ip> 0"}, {}, 1);
    ASSERT_EQ(items.size(), 1u);
    EXPECT_EQ(items[0].result.answer, Answer::Yes);
}

TEST(Batch, WeightedOptionsApplyToEveryItem) {
    const auto net = synthesis::make_figure1_network();
    const auto weights = parse_weight_expression("hops");
    VerifyOptions options;
    options.engine = EngineKind::Weighted;
    options.weights = &weights;
    const auto items = verify_batch(
        net,
        {"<ip> [.#v0] .* [v3#.] <ip> 0", "<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0"},
        options, 2);
    for (const auto& item : items) {
        ASSERT_TRUE(item.error.empty());
        EXPECT_EQ(item.result.answer, Answer::Yes);
        EXPECT_FALSE(item.result.weight.empty());
    }
}

TEST(Batch, ManyThreadsOnLargerNetwork) {
    const auto net = synthesis::make_nordunet_like(50, 3);
    const auto texts = synthesis::make_query_battery(net, {.count = 24, .seed = 8});
    const auto items = verify_batch(net.network, texts, {}, 8);
    std::size_t conclusive = 0;
    for (const auto& item : items) {
        ASSERT_TRUE(item.error.empty()) << item.error;
        if (item.result.answer != Answer::Inconclusive) ++conclusive;
    }
    EXPECT_GT(conclusive, items.size() / 2);
}

} // namespace
} // namespace aalwines::verify
