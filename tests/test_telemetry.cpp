// Telemetry subsystem: span nesting, counter/histogram aggregation across
// verify_batch worker threads, the trace-JSON schema round trip, and the
// Prometheus / Chrome-trace exposition formats.

#include <gtest/gtest.h>

#include <thread>

#include "json/json.hpp"
#include "synthesis/networks.hpp"
#include "telemetry/exposition.hpp"
#include "telemetry/telemetry.hpp"
#include "verify/batch.hpp"

namespace {

using namespace aalwines;

const std::vector<std::string> k_queries = {
    "<ip> [.#v0] .* [v3#.] <ip> 0",
    "<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1",
    "<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1",
    "<ip> .* <ip> 0",
};

TEST(Telemetry, SpanNestingAndOrdering) {
#if !AALWINES_TELEMETRY_ENABLED
    GTEST_SKIP() << "telemetry compiled out";
#else
    telemetry::reset();
    {
        AALWINES_SPAN("outer");
        { AALWINES_SPAN("inner_first"); }
        { AALWINES_SPAN("inner_second"); }
    }
    const auto snap = telemetry::snapshot();

    const telemetry::SpanNode* outer = nullptr;
    for (const auto& thread : snap.threads)
        for (const auto& root : thread.roots)
            if (root.name == "outer") outer = &root;
    ASSERT_NE(outer, nullptr);
    EXPECT_FALSE(outer->open);
    ASSERT_EQ(outer->children.size(), 2u);
    EXPECT_EQ(outer->children[0].name, "inner_first");
    EXPECT_EQ(outer->children[1].name, "inner_second");
    // Children opened in order, and nested inside the parent's interval.
    EXPECT_LE(outer->children[0].start_us, outer->children[1].start_us);
    for (const auto& child : outer->children) {
        EXPECT_GE(child.start_us, outer->start_us);
        EXPECT_LE(child.start_us + child.duration_us,
                  outer->start_us + outer->duration_us + 1.0 /* µs rounding */);
    }
#endif
}

TEST(Telemetry, OpenSpanSurvivesResetAndIsMarkedOpen) {
#if !AALWINES_TELEMETRY_ENABLED
    GTEST_SKIP() << "telemetry compiled out";
#else
    telemetry::reset();
    AALWINES_SPAN("held_open");
    telemetry::reset(); // must keep the open chain, re-rooted
    const auto snap = telemetry::snapshot();
    bool found = false;
    for (const auto& thread : snap.threads)
        for (const auto& root : thread.roots)
            if (root.name == "held_open") {
                found = true;
                EXPECT_TRUE(root.open);
            }
    EXPECT_TRUE(found);
#endif
}

TEST(Telemetry, PipelineCountersFire) {
    telemetry::reset();
    const auto network = synthesis::make_figure1_network();
    const auto batch = verify::verify_batch(network, k_queries, {}, 1);
    for (const auto& item : batch) EXPECT_TRUE(item.error.empty()) << item.error;

    const auto snap = telemetry::snapshot();
#if AALWINES_TELEMETRY_ENABLED
    using C = telemetry::Counter;
    EXPECT_EQ(snap.counter(C::queries_parsed), k_queries.size());
    EXPECT_GT(snap.counter(C::nfa_states_built), 0u);
    // The default (lazy) pipeline materializes rules on demand.
    EXPECT_GT(snap.counter(C::pda_rules_total), 0u);
    EXPECT_GT(snap.counter(C::pda_rules_materialized), 0u);
    EXPECT_GT(snap.counter(C::pda_states_materialized), 0u);
    EXPECT_LE(snap.counter(C::pda_rules_materialized), snap.counter(C::pda_rules_total));
    EXPECT_EQ(snap.counter(C::pda_rules_emitted), 0u);
    EXPECT_EQ(snap.counter(C::reduction_rules_pruned), 0u);
    EXPECT_GT(snap.counter(C::post_star_pops), 0u);
    EXPECT_GT(snap.counter(C::edge_relaxations), 0u);
    EXPECT_GT(snap.counter(C::accept_decrease_keys), 0u);
    EXPECT_GT(snap.counter(C::traces_reconstructed), 0u);
    EXPECT_GT(snap.gauge(telemetry::Gauge::transition_high_water), 0u);
    EXPECT_GT(snap.gauge(telemetry::Gauge::worklist_high_water), 0u);

    // The eager pipeline still fires the emission and reduction counters.
    telemetry::reset();
    verify::VerifyOptions eager;
    eager.translation = verify::TranslationMode::Eager;
    const auto eager_batch = verify::verify_batch(network, k_queries, eager, 1);
    for (const auto& item : eager_batch) EXPECT_TRUE(item.error.empty()) << item.error;
    const auto eager_snap = telemetry::snapshot();
    EXPECT_GT(eager_snap.counter(C::pda_rules_emitted), 0u);
    EXPECT_GT(eager_snap.counter(C::reduction_rules_pruned), 0u);
    EXPECT_EQ(eager_snap.counter(C::pda_rules_materialized), 0u);
#else
    for (const auto value : snap.counters) EXPECT_EQ(value, 0u);
    EXPECT_TRUE(snap.threads.empty());
#endif
}

TEST(Telemetry, CounterTotalsAreThreadCountInvariant) {
#if !AALWINES_TELEMETRY_ENABLED
    GTEST_SKIP() << "telemetry compiled out";
#else
    const auto network = synthesis::make_figure1_network();

    telemetry::reset();
    (void)verify::verify_batch(network, k_queries, {}, 1);
    const auto serial = telemetry::snapshot();

    telemetry::reset();
    (void)verify::verify_batch(network, k_queries, {}, 4);
    const auto parallel = telemetry::snapshot();

    // Queries are verified independently and probes batch per run, so the
    // totals must not depend on how queries were spread over workers.
    for (std::size_t i = 0; i < telemetry::k_counter_count; ++i)
        EXPECT_EQ(serial.counters[i], parallel.counters[i])
            << telemetry::name_of(static_cast<telemetry::Counter>(i));
    for (std::size_t i = 0; i < telemetry::k_gauge_count; ++i)
        EXPECT_EQ(serial.gauges[i], parallel.gauges[i])
            << telemetry::name_of(static_cast<telemetry::Gauge>(i));
    // Histogram merge is pure bucket addition, so observation COUNTS are
    // thread-count invariant too.  Timing histograms place observations in
    // value-dependent buckets, so only the deterministic materialized-rule
    // ratio histogram must match bucket-for-bucket (byte-identical).
    for (std::size_t i = 0; i < telemetry::k_histogram_count; ++i)
        EXPECT_EQ(serial.histograms[i].count, parallel.histograms[i].count)
            << telemetry::name_of(static_cast<telemetry::Histogram>(i));
    const auto& serial_pct =
        serial.histogram(telemetry::Histogram::materialized_rule_pct);
    const auto& parallel_pct =
        parallel.histogram(telemetry::Histogram::materialized_rule_pct);
    EXPECT_GT(serial_pct.count, 0u);
    EXPECT_EQ(serial_pct.sum, parallel_pct.sum);
    EXPECT_EQ(serial_pct.buckets, parallel_pct.buckets);
#endif
}

TEST(Telemetry, HistogramBucketBoundaries) {
    using telemetry::histogram_bucket;
    using telemetry::histogram_bucket_upper;
    EXPECT_EQ(histogram_bucket(0), 0u);
    EXPECT_EQ(histogram_bucket(1), 1u);
    EXPECT_EQ(histogram_bucket(2), 2u);
    EXPECT_EQ(histogram_bucket(3), 2u);
    EXPECT_EQ(histogram_bucket(4), 3u);
    EXPECT_EQ(histogram_bucket_upper(0), 0u);
    EXPECT_EQ(histogram_bucket_upper(10), 1023u);
    // Everything at or past 2^46 lands in the overflow (+Inf) bucket.
    EXPECT_EQ(histogram_bucket(std::uint64_t{1} << 60),
              telemetry::k_histogram_buckets - 1);
    // Every value maps inside its bucket's range.
    for (std::uint64_t v : {0ull, 1ull, 7ull, 100ull, 12345ull, (1ull << 40) + 17}) {
        const auto b = histogram_bucket(v);
        EXPECT_LE(v, histogram_bucket_upper(b)) << v;
        if (b > 0) EXPECT_GT(v, histogram_bucket_upper(b - 1)) << v;
    }
}

TEST(Telemetry, HistogramQuantileInterpolation) {
    telemetry::HistogramData data{};
    EXPECT_EQ(data.quantile(0.5), 0.0); // empty: no observations

    // All observations exactly zero: every quantile is zero.
    data.buckets[0] = 10;
    data.count = 10;
    EXPECT_EQ(data.p50(), 0.0);
    EXPECT_EQ(data.p99(), 0.0);

    // Ten observations of ~100 (bucket [64, 127]): quantiles interpolate
    // inside the bucket and never leave it.
    data = {};
    data.buckets[telemetry::histogram_bucket(100)] = 10;
    data.count = 10;
    data.sum = 1000;
    for (const double q : {0.5, 0.9, 0.99}) {
        EXPECT_GE(data.quantile(q), 64.0) << q;
        EXPECT_LE(data.quantile(q), 127.0) << q;
    }
    EXPECT_LE(data.p50(), data.p90());
    EXPECT_LE(data.p90(), data.p99());

    // Bimodal: half at ~2, half at ~1000 — p50 in the low bucket, p99 high.
    data = {};
    data.buckets[telemetry::histogram_bucket(2)] = 50;
    data.buckets[telemetry::histogram_bucket(1000)] = 50;
    data.count = 100;
    EXPECT_LE(data.p50(), 3.0);
    EXPECT_GE(data.p99(), 512.0);
}

TEST(Telemetry, HistogramMergeIsByteIdenticalAcrossThreadCounts) {
#if !AALWINES_TELEMETRY_ENABLED
    GTEST_SKIP() << "telemetry compiled out";
#else
    constexpr auto k_hist = telemetry::Histogram::materialized_rule_pct;
    // 256 deterministic observations, recorded once on one thread and once
    // spread over 8 threads: the merged snapshot must be byte-identical.
    const auto value_at = [](std::size_t i) {
        return static_cast<std::uint64_t>((i * 37 + 11) % 101);
    };

    telemetry::reset();
    for (std::size_t i = 0; i < 256; ++i) telemetry::observe(k_hist, value_at(i));
    const auto single = telemetry::snapshot();

    telemetry::reset();
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < 8; ++t)
        threads.emplace_back([&, t] {
            for (std::size_t i = t; i < 256; i += 8)
                telemetry::observe(k_hist, value_at(i));
        });
    for (auto& thread : threads) thread.join();
    const auto merged = telemetry::snapshot();

    const auto& a = single.histogram(k_hist);
    const auto& b = merged.histogram(k_hist);
    EXPECT_EQ(a.count, 256u);
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.sum, b.sum);
    EXPECT_EQ(a.buckets, b.buckets);
    // And hence identical serializations, quantiles included.
    EXPECT_EQ(telemetry::to_json(single, 0), telemetry::to_json(merged, 0));
#endif
}

TEST(Telemetry, PrometheusExposition) {
#if !AALWINES_TELEMETRY_ENABLED
    GTEST_SKIP() << "telemetry compiled out";
#else
    telemetry::reset();
    // 1000ns request -> bucket [512, 1023], le boundary 1023 * 1e-9.
    telemetry::observe(telemetry::Histogram::request_duration, 1000);
    telemetry::observe(telemetry::Histogram::query_duration_dual, 5);
    telemetry::count(telemetry::Counter::queries_parsed);
    const auto snap = telemetry::snapshot();

    const auto text = telemetry::to_prometheus(
        snap, {{"aalwines_test_extra_gauge", "An injected gauge.", 7.0}});

    const auto has = [&](std::string_view needle) {
        return text.find(needle) != std::string::npos;
    };
    EXPECT_TRUE(has("# TYPE aalwines_queries_parsed_total counter"));
    EXPECT_TRUE(has("aalwines_queries_parsed_total 1\n"));
    EXPECT_TRUE(has("aalwines_test_extra_gauge 7\n"));
    EXPECT_TRUE(has("# TYPE aalwines_process_peak_rss_kilobytes gauge"));
    EXPECT_TRUE(has("# TYPE aalwines_request_duration_seconds histogram"));
    EXPECT_TRUE(has("aalwines_request_duration_seconds_bucket{le=\"1.023e-06\"} 1\n"));
    EXPECT_TRUE(has("aalwines_request_duration_seconds_bucket{le=\"+Inf\"} 1\n"));
    EXPECT_TRUE(has("aalwines_request_duration_seconds_sum 1e-06\n"));
    EXPECT_TRUE(has("aalwines_request_duration_seconds_count 1\n"));
    // Per-engine variants share one family: HELP/TYPE once, labelled series.
    EXPECT_TRUE(has("aalwines_query_duration_seconds_bucket{engine=\"dual\",le=\"+Inf\"} 1\n"));
    EXPECT_TRUE(has("aalwines_query_duration_seconds_count{engine=\"moped\"} 0\n"));
    std::size_t type_lines = 0;
    for (std::size_t pos = 0;
         (pos = text.find("# TYPE aalwines_query_duration_seconds histogram", pos)) !=
         std::string::npos;
         ++pos)
        ++type_lines;
    EXPECT_EQ(type_lines, 1u);

    // Buckets are cumulative: the +Inf bucket equals the _count series.
    EXPECT_TRUE(has("aalwines_query_duration_seconds_count{engine=\"dual\"} 1\n"));
#endif
}

TEST(Telemetry, ChromeTraceExport) {
    telemetry::reset();
    const auto network = synthesis::make_figure1_network();
    (void)verify::verify_batch(network, {k_queries.front()}, {}, 1);

    const auto document = json::parse(telemetry::to_chrome_trace(telemetry::snapshot()));
    EXPECT_EQ(document.at("displayTimeUnit").as_string(), "ms");
    const auto& events = document.at("traceEvents").as_array();
#if AALWINES_TELEMETRY_ENABLED
    ASSERT_FALSE(events.empty());
    for (const auto& event : events) {
        EXPECT_EQ(event.at("ph").as_string(), "X");
        EXPECT_FALSE(event.at("name").as_string().empty());
        EXPECT_GE(event.at("dur").as_double(), 0.0);
        EXPECT_TRUE(event.find("ts") != nullptr);
        EXPECT_TRUE(event.find("pid") != nullptr);
        EXPECT_TRUE(event.find("tid") != nullptr);
    }
#else
    EXPECT_TRUE(events.empty());
#endif
}

TEST(Telemetry, TraceJsonRoundTrip) {
    telemetry::reset();
    const auto network = synthesis::make_figure1_network();
    (void)verify::verify_batch(network, {k_queries.front()}, {}, 1);

    const auto snap = telemetry::snapshot();
    const auto document = json::parse(telemetry::to_json(snap, 2));

    EXPECT_EQ(document.at("schema").as_string(), "aalwines-trace-2");
    const auto& counters = document.at("counters").as_object();
    ASSERT_EQ(counters.size(), telemetry::k_counter_count);
    for (std::size_t i = 0; i < telemetry::k_counter_count; ++i) {
        const auto name =
            std::string(telemetry::name_of(static_cast<telemetry::Counter>(i)));
        ASSERT_TRUE(counters.contains(name)) << name;
        EXPECT_EQ(static_cast<std::uint64_t>(counters.at(name).as_int()),
                  snap.counters[i])
            << name;
    }
    const auto& gauges = document.at("gauges").as_object();
    ASSERT_EQ(gauges.size(), telemetry::k_gauge_count);
    // trace-2: histogram summaries ride along (only non-empty ones).
    const auto& histograms = document.at("histograms").as_object();
    for (const auto& [name, entry] : histograms) {
        EXPECT_GT(entry.at("count").as_int(), 0) << name;
        EXPECT_TRUE(entry.at("buckets").is_array()) << name;
    }
#if AALWINES_TELEMETRY_ENABLED
    EXPECT_TRUE(histograms.contains("query_duration_dual"));
#endif
    ASSERT_TRUE(document.at("threads").is_array());
#if AALWINES_TELEMETRY_ENABLED
    ASSERT_FALSE(document.at("threads").as_array().empty());
    const auto& first_thread = document.at("threads").as_array().front().as_object();
    ASSERT_TRUE(first_thread.contains("spans"));
    const auto& spans = first_thread.at("spans").as_array();
    ASSERT_FALSE(spans.empty());
    const auto& span = spans.front().as_object();
    EXPECT_TRUE(span.contains("name"));
    EXPECT_TRUE(span.contains("start_us"));
    EXPECT_TRUE(span.contains("duration_us"));
    EXPECT_TRUE(span.contains("children"));
#endif
}

TEST(Telemetry, PeakRssIsReported) {
    // /proc is available on every platform the test suite targets; if the
    // file is missing the helper degrades to 0 rather than failing.
    EXPECT_GT(telemetry::peak_rss_kb(), 0u);
}

} // namespace
