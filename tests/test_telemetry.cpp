// Telemetry subsystem: span nesting, counter aggregation across
// verify_batch worker threads, and the trace-JSON schema round trip.

#include <gtest/gtest.h>

#include "json/json.hpp"
#include "synthesis/networks.hpp"
#include "telemetry/telemetry.hpp"
#include "verify/batch.hpp"

namespace {

using namespace aalwines;

const std::vector<std::string> k_queries = {
    "<ip> [.#v0] .* [v3#.] <ip> 0",
    "<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1",
    "<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1",
    "<ip> .* <ip> 0",
};

TEST(Telemetry, SpanNestingAndOrdering) {
#if !AALWINES_TELEMETRY_ENABLED
    GTEST_SKIP() << "telemetry compiled out";
#else
    telemetry::reset();
    {
        AALWINES_SPAN("outer");
        { AALWINES_SPAN("inner_first"); }
        { AALWINES_SPAN("inner_second"); }
    }
    const auto snap = telemetry::snapshot();

    const telemetry::SpanNode* outer = nullptr;
    for (const auto& thread : snap.threads)
        for (const auto& root : thread.roots)
            if (root.name == "outer") outer = &root;
    ASSERT_NE(outer, nullptr);
    EXPECT_FALSE(outer->open);
    ASSERT_EQ(outer->children.size(), 2u);
    EXPECT_EQ(outer->children[0].name, "inner_first");
    EXPECT_EQ(outer->children[1].name, "inner_second");
    // Children opened in order, and nested inside the parent's interval.
    EXPECT_LE(outer->children[0].start_us, outer->children[1].start_us);
    for (const auto& child : outer->children) {
        EXPECT_GE(child.start_us, outer->start_us);
        EXPECT_LE(child.start_us + child.duration_us,
                  outer->start_us + outer->duration_us + 1.0 /* µs rounding */);
    }
#endif
}

TEST(Telemetry, OpenSpanSurvivesResetAndIsMarkedOpen) {
#if !AALWINES_TELEMETRY_ENABLED
    GTEST_SKIP() << "telemetry compiled out";
#else
    telemetry::reset();
    AALWINES_SPAN("held_open");
    telemetry::reset(); // must keep the open chain, re-rooted
    const auto snap = telemetry::snapshot();
    bool found = false;
    for (const auto& thread : snap.threads)
        for (const auto& root : thread.roots)
            if (root.name == "held_open") {
                found = true;
                EXPECT_TRUE(root.open);
            }
    EXPECT_TRUE(found);
#endif
}

TEST(Telemetry, PipelineCountersFire) {
    telemetry::reset();
    const auto network = synthesis::make_figure1_network();
    const auto batch = verify::verify_batch(network, k_queries, {}, 1);
    for (const auto& item : batch) EXPECT_TRUE(item.error.empty()) << item.error;

    const auto snap = telemetry::snapshot();
#if AALWINES_TELEMETRY_ENABLED
    using C = telemetry::Counter;
    EXPECT_EQ(snap.counter(C::queries_parsed), k_queries.size());
    EXPECT_GT(snap.counter(C::nfa_states_built), 0u);
    // The default (lazy) pipeline materializes rules on demand.
    EXPECT_GT(snap.counter(C::pda_rules_total), 0u);
    EXPECT_GT(snap.counter(C::pda_rules_materialized), 0u);
    EXPECT_GT(snap.counter(C::pda_states_materialized), 0u);
    EXPECT_LE(snap.counter(C::pda_rules_materialized), snap.counter(C::pda_rules_total));
    EXPECT_EQ(snap.counter(C::pda_rules_emitted), 0u);
    EXPECT_EQ(snap.counter(C::reduction_rules_pruned), 0u);
    EXPECT_GT(snap.counter(C::post_star_pops), 0u);
    EXPECT_GT(snap.counter(C::edge_relaxations), 0u);
    EXPECT_GT(snap.counter(C::accept_decrease_keys), 0u);
    EXPECT_GT(snap.counter(C::traces_reconstructed), 0u);
    EXPECT_GT(snap.gauge(telemetry::Gauge::transition_high_water), 0u);
    EXPECT_GT(snap.gauge(telemetry::Gauge::worklist_high_water), 0u);

    // The eager pipeline still fires the emission and reduction counters.
    telemetry::reset();
    verify::VerifyOptions eager;
    eager.translation = verify::TranslationMode::Eager;
    const auto eager_batch = verify::verify_batch(network, k_queries, eager, 1);
    for (const auto& item : eager_batch) EXPECT_TRUE(item.error.empty()) << item.error;
    const auto eager_snap = telemetry::snapshot();
    EXPECT_GT(eager_snap.counter(C::pda_rules_emitted), 0u);
    EXPECT_GT(eager_snap.counter(C::reduction_rules_pruned), 0u);
    EXPECT_EQ(eager_snap.counter(C::pda_rules_materialized), 0u);
#else
    for (const auto value : snap.counters) EXPECT_EQ(value, 0u);
    EXPECT_TRUE(snap.threads.empty());
#endif
}

TEST(Telemetry, CounterTotalsAreThreadCountInvariant) {
#if !AALWINES_TELEMETRY_ENABLED
    GTEST_SKIP() << "telemetry compiled out";
#else
    const auto network = synthesis::make_figure1_network();

    telemetry::reset();
    (void)verify::verify_batch(network, k_queries, {}, 1);
    const auto serial = telemetry::snapshot();

    telemetry::reset();
    (void)verify::verify_batch(network, k_queries, {}, 4);
    const auto parallel = telemetry::snapshot();

    // Queries are verified independently and probes batch per run, so the
    // totals must not depend on how queries were spread over workers.
    for (std::size_t i = 0; i < telemetry::k_counter_count; ++i)
        EXPECT_EQ(serial.counters[i], parallel.counters[i])
            << telemetry::name_of(static_cast<telemetry::Counter>(i));
    for (std::size_t i = 0; i < telemetry::k_gauge_count; ++i)
        EXPECT_EQ(serial.gauges[i], parallel.gauges[i])
            << telemetry::name_of(static_cast<telemetry::Gauge>(i));
#endif
}

TEST(Telemetry, TraceJsonRoundTrip) {
    telemetry::reset();
    const auto network = synthesis::make_figure1_network();
    (void)verify::verify_batch(network, {k_queries.front()}, {}, 1);

    const auto snap = telemetry::snapshot();
    const auto document = json::parse(telemetry::to_json(snap, 2));

    EXPECT_EQ(document.at("schema").as_string(), "aalwines-trace-1");
    const auto& counters = document.at("counters").as_object();
    ASSERT_EQ(counters.size(), telemetry::k_counter_count);
    for (std::size_t i = 0; i < telemetry::k_counter_count; ++i) {
        const auto name =
            std::string(telemetry::name_of(static_cast<telemetry::Counter>(i)));
        ASSERT_TRUE(counters.contains(name)) << name;
        EXPECT_EQ(static_cast<std::uint64_t>(counters.at(name).as_int()),
                  snap.counters[i])
            << name;
    }
    const auto& gauges = document.at("gauges").as_object();
    ASSERT_EQ(gauges.size(), telemetry::k_gauge_count);
    ASSERT_TRUE(document.at("threads").is_array());
#if AALWINES_TELEMETRY_ENABLED
    ASSERT_FALSE(document.at("threads").as_array().empty());
    const auto& first_thread = document.at("threads").as_array().front().as_object();
    ASSERT_TRUE(first_thread.contains("spans"));
    const auto& spans = first_thread.at("spans").as_array();
    ASSERT_FALSE(spans.empty());
    const auto& span = spans.front().as_object();
    EXPECT_TRUE(span.contains("name"));
    EXPECT_TRUE(span.contains("start_us"));
    EXPECT_TRUE(span.contains("duration_us"));
    EXPECT_TRUE(span.contains("children"));
#endif
}

TEST(Telemetry, PeakRssIsReported) {
    // /proc is available on every platform the test suite targets; if the
    // file is missing the helper degrades to 0 rather than failing.
    EXPECT_GT(telemetry::peak_rss_kb(), 0u);
}

} // namespace
