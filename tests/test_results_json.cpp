#include <gtest/gtest.h>

#include <algorithm>

#include "io/html_report.hpp"
#include "io/results_json.hpp"
#include "synthesis/dataplane.hpp"

namespace aalwines::io {
namespace {

class ResultsJson : public ::testing::Test {
protected:
    Network net = synthesis::make_figure1_network();

    verify::VerifyResult run(const std::string& text, verify::VerifyOptions options = {}) {
        return verify::verify(net, query::parse_query(text, net), options);
    }
};

TEST_F(ResultsJson, YesResultCarriesTraceWithOps) {
    const std::string text = "<ip> [.#v0] .* [v3#.] <ip> 0";
    const auto result = run(text);
    const auto value = json::parse(result_to_json(net, text, result));
    EXPECT_EQ(value.at("answer").as_string(), "yes");
    EXPECT_EQ(value.at("query").as_string(), text);
    EXPECT_GE(value.at("seconds").as_double(), 0.0);
    const auto& trace = value.at("trace").as_array();
    ASSERT_EQ(trace.size(), 4u);
    // Every non-final step reports the operations the router applied.
    for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
        const auto& ops = trace[i].at("ops").as_string();
        EXPECT_NE(ops, "?") << i;
    }
    EXPECT_EQ(trace.back().find("ops"), nullptr);
    // First hop of σ0/σ1 pushes a bottom-of-stack label.
    EXPECT_NE(trace[0].at("ops").as_string().find("push"), std::string::npos);
}

TEST_F(ResultsJson, NoResultHasNoTrace) {
    const std::string text = "<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1";
    const auto result = run(text);
    const auto value = json::parse(result_to_json(net, text, result));
    EXPECT_EQ(value.at("answer").as_string(), "no");
    EXPECT_EQ(value.find("trace"), nullptr);
    EXPECT_EQ(value.find("weight"), nullptr);
}

TEST_F(ResultsJson, WeightedResultCarriesWeightVector) {
    const auto weights = parse_weight_expression("hops, failures + 3*tunnels");
    verify::VerifyOptions options;
    options.engine = verify::EngineKind::Weighted;
    options.weights = &weights;
    const std::string text = "<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1";
    const auto result = run(text, options);
    const auto value = json::parse(result_to_json(net, text, result));
    const auto& weight = value.at("weight").as_array();
    ASSERT_EQ(weight.size(), 2u);
    EXPECT_EQ(weight[0].as_int(), 5);
    EXPECT_EQ(weight[1].as_int(), 0);
}

TEST_F(ResultsJson, StatsOnRequest) {
    const std::string text = "<ip> [.#v0] .* [v3#.] <ip> 0";
    const auto result = run(text);
    const auto with = json::parse(result_to_json(net, text, result, true));
    EXPECT_NE(with.find("stats"), nullptr);
    EXPECT_GT(with.at("stats").at("pdaRulesBeforeReduction").as_int(), 0);
    EXPECT_FALSE(with.at("stats").at("usedUnderApproximation").as_bool());
    const auto without = json::parse(result_to_json(net, text, result, false));
    EXPECT_EQ(without.find("stats"), nullptr);
}


TEST_F(ResultsJson, HtmlReportRendersTopologyAndWitnesses) {
    verify::VerifyOptions options;
    options.max_witnesses = 4;
    std::vector<ReportEntry> entries;
    entries.push_back({"<ip> [.#v0] .* [v3#.] <ip> 0",
                       run("<ip> [.#v0] .* [v3#.] <ip> 0", options)});
    entries.push_back({"<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1",
                       run("<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1")});
    const auto html = write_html_report(net, entries);
    // Self-contained document with one SVG per query.
    EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
    EXPECT_EQ(std::count(html.begin(), html.end(), '\0'), 0);
    auto count = [&](const std::string& needle) {
        std::size_t n = 0;
        for (auto pos = html.find(needle); pos != std::string::npos;
             pos = html.find(needle, pos + 1))
            ++n;
        return n;
    };
    EXPECT_EQ(count("<svg"), 2u);
    EXPECT_EQ(count("</svg>"), 2u);
    // Both witnesses of φ0 are tabulated; the NO query has no table.
    EXPECT_EQ(count("<table>"), 2u);
    EXPECT_NE(html.find("answer yes"), std::string::npos);
    EXPECT_NE(html.find("answer no"), std::string::npos);
    // Query text is escaped (the <ip> atoms must not become tags).
    EXPECT_NE(html.find("&lt;ip&gt;"), std::string::npos);
    // All seven routers are labelled.
    for (const auto* name : {"v0", "v1", "v2", "v3", "v4", "src", "dst"})
        EXPECT_NE(html.find(">" + std::string(name) + "<"), std::string::npos) << name;
}

TEST_F(ResultsJson, HtmlReportWithoutCoordinatesUsesCircularLayout) {
    // figure1 has no coordinates: the layout must still place everything
    // inside the viewbox (no NaNs).
    const auto html = write_html_report(
        net, {{"<ip> .* <ip> 0", run("<ip> .* <ip> 0")}});
    EXPECT_EQ(html.find("nan"), std::string::npos);
    EXPECT_EQ(html.find("inf"), std::string::npos);
}

} // namespace
} // namespace aalwines::io
