#include <gtest/gtest.h>

#include "synthesis/networks.hpp"
#include "synthesis/queries.hpp"
#include "verify/engine.hpp"

namespace aalwines::synthesis {
namespace {

TEST(Topologies, RingShape) {
    const auto topo = make_ring(8);
    EXPECT_EQ(topo.topology.router_count(), 8u);
    EXPECT_EQ(topo.topology.link_count(), 16u); // 8 duplex connections
    EXPECT_EQ(topo.edge_routers.size(), 8u);
    for (RouterId r = 0; r < 8; ++r) EXPECT_EQ(topo.topology.out_links(r).size(), 2u);
}

TEST(Topologies, GridShape) {
    const auto topo = make_grid(3, 4);
    EXPECT_EQ(topo.topology.router_count(), 12u);
    // 3x4 grid: 2*4 + 3*3 = 17 connections, duplex.
    EXPECT_EQ(topo.topology.link_count(), 34u);
    EXPECT_EQ(topo.edge_routers.size(), 10u); // border routers
}

TEST(Topologies, WaxmanIsConnectedAndDeterministic) {
    const auto a = make_waxman(30, 0.4, 0.25, 42);
    const auto b = make_waxman(30, 0.4, 0.25, 42);
    EXPECT_EQ(a.topology.link_count(), b.topology.link_count());
    EXPECT_GE(a.topology.link_count(), 2 * 29u); // spanning tree minimum
    EXPECT_GE(a.edge_routers.size(), 2u);
    // Connectivity: BFS from router 0 reaches everyone.
    std::vector<bool> seen(a.topology.router_count(), false);
    std::vector<RouterId> stack{0};
    seen[0] = true;
    while (!stack.empty()) {
        const auto r = stack.back();
        stack.pop_back();
        for (const auto l : a.topology.out_links(r)) {
            const auto t = a.topology.link(l).target;
            if (!seen[t]) {
                seen[t] = true;
                stack.push_back(t);
            }
        }
    }
    for (const auto reached : seen) EXPECT_TRUE(reached);
}

TEST(Topologies, BackboneHasLeavesAsEdges) {
    const auto topo = make_backbone(6, 3, 1);
    EXPECT_EQ(topo.edge_routers.size(), 18u);
    for (const auto leaf : topo.edge_routers)
        EXPECT_TRUE(topo.topology.router_name(leaf).starts_with("L"));
}

TEST(Topologies, ClosIsFullBipartiteMesh) {
    const auto topo = make_clos(3, 5);
    EXPECT_EQ(topo.topology.router_count(), 8u);
    EXPECT_EQ(topo.topology.link_count(), 2u * 3u * 5u);
    EXPECT_EQ(topo.edge_routers.size(), 5u);
    // Every leaf sees every spine.
    for (const auto leaf : topo.edge_routers)
        EXPECT_EQ(topo.topology.out_links(leaf).size(), 3u);
    // A clos dataplane has rich failover (parallel spine choices).
    const auto net = build_dataplane(make_clos(3, 5), {.seed = 4});
    net.network.routing.validate(net.network.topology);
    const auto& t = net.network.topology;
    const auto a = t.router_name(net.lsp_pairs[0].first);
    const auto b = t.router_name(net.lsp_pairs[0].second);
    const auto q = query::parse_query(
        "<ip> [.#" + a + "] .* [.#" + b + "] <ip> 1", net.network);
    EXPECT_EQ(verify::verify(net.network, q, {}).answer, verify::Answer::Yes);
}

TEST(Dataplane, BuildsValidRoutingWithFailover) {
    auto net = build_dataplane(make_ring(6), {.service_chains = 3, .seed = 5});
    EXPECT_GT(net.network.routing.rule_count(), 0u);
    EXPECT_EQ(net.ip_labels.size(), net.edge_routers.size());
    EXPECT_EQ(net.service_labels.size(), 3u);
    // validate() ran inside build_dataplane; re-run for good measure.
    net.network.routing.validate(net.network.topology);

    // Failover must have produced priority-2 groups somewhere.
    bool has_backup = false;
    net.network.routing.for_each(
        [&](LinkId, Label, const RoutingEntry& groups) {
            if (groups.size() >= 2 && !groups[1].empty()) has_backup = true;
        });
    EXPECT_TRUE(has_backup);
}

TEST(Dataplane, ReachabilityHoldsOnPrimaryPaths) {
    const auto net = build_dataplane(make_ring(5), {.seed = 3});
    const auto& topology = net.network.topology;
    // Every generated LSP pair answers YES for plain reachability at k=0.
    const auto a = topology.router_name(net.edge_routers[0]);
    const auto b = topology.router_name(net.edge_routers[2]);
    const auto query = query::parse_query(
        "<ip> [.#" + a + "] .* [.#" + b + "] <ip> 0", net.network);
    const auto result = verify::verify(net.network, query, {});
    EXPECT_EQ(result.answer, verify::Answer::Yes);
}

TEST(Dataplane, FailoverSurvivesSingleLinkFailure) {
    // Ring: the protected primary hop can be routed around, so reachability
    // through the backup requires exactly one failure.
    const auto net = build_dataplane(make_ring(5), {.seed = 3});
    const auto& topology = net.network.topology;
    const auto a = topology.router_name(net.edge_routers[0]);
    const auto b = topology.router_name(net.edge_routers[1]);
    // Force the witness through some failover: ask for a strictly longer
    // path than the primary (ring detours are long).
    const auto query = query::parse_query(
        "<ip> [.#" + a + "] . . . . .* [.#" + b + "] <ip> 1", net.network);
    const auto result = verify::verify(net.network, query, {});
    EXPECT_NE(result.answer, verify::Answer::Inconclusive);
}

TEST(Networks, NordunetLikeShape) {
    const auto net = make_nordunet_like(50, 1);
    EXPECT_EQ(net.network.topology.router_count(),
              31u + net.edge_routers.size()); // + external stubs
    EXPECT_GT(net.network.routing.rule_count(), 500u);
    EXPECT_EQ(net.service_labels.size(), 50u);
    net.network.routing.validate(net.network.topology);
    // Latencies derive from geography: some long-haul link must be present.
    bool long_haul = false;
    for (const auto& link : net.network.topology.links())
        if (link.distance > 1'000'000) long_haul = true;
    EXPECT_TRUE(long_haul);
}

TEST(Networks, NordunetRuleCountScalesWithServiceChains) {
    const auto small = make_nordunet_like(10, 1);
    const auto large = make_nordunet_like(200, 1);
    EXPECT_GT(large.network.routing.rule_count(),
              small.network.routing.rule_count() + 500);
}

TEST(Networks, ZooLikeSuiteIsDeterministic) {
    ASSERT_GE(zoo_like_count(), 10u);
    const auto a = make_zoo_like(3);
    const auto b = make_zoo_like(3);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.net.network.routing.rule_count(), b.net.network.routing.rule_count());
    EXPECT_EQ(a.net.network.topology.router_count(),
              b.net.network.topology.router_count());
}

TEST(Networks, ZooLikeSizesSpanTheDistribution) {
    std::size_t smallest = SIZE_MAX, largest = 0;
    for (std::size_t i = 0; i < zoo_like_count(); ++i) {
        const auto instance = make_zoo_like(i);
        const auto routers = instance.net.network.topology.router_count();
        smallest = std::min(smallest, routers);
        largest = std::max(largest, routers);
    }
    // Router counts include the external stubs added per edge router.
    EXPECT_LE(smallest, 32u);
    EXPECT_GE(largest, 200u);
}

TEST(Queries, BatteryParsesAgainstItsNetwork) {
    const auto net = build_dataplane(make_ring(6), {.service_chains = 2, .seed = 9});
    const auto battery = make_query_battery(net, {.count = 25, .seed = 4});
    ASSERT_EQ(battery.size(), 25u);
    for (const auto& text : battery)
        EXPECT_NO_THROW((void)query::parse_query(text, net.network)) << text;
}

TEST(Queries, Table1QueriesParseAgainstNordunet) {
    const auto net = make_nordunet_like(20, 1);
    const auto queries = make_table1_queries(net);
    ASSERT_EQ(queries.size(), 6u);
    for (const auto& text : queries)
        EXPECT_NO_THROW((void)query::parse_query(text, net.network)) << text;
}

TEST(Queries, BatteryIsDeterministic) {
    const auto net = build_dataplane(make_ring(6), {.seed = 9});
    EXPECT_EQ(make_query_battery(net, {.count = 10, .seed = 4}),
              make_query_battery(net, {.count = 10, .seed = 4}));
}

} // namespace
} // namespace aalwines::synthesis
