// The what-if delta subsystem (src/delta/): wire-format parsing, copy-on-
// write apply semantics, the tiered Reverifier, and the delta ≡ cold-
// recompile equivalence batteries over figure1 and a NORDUnet-like
// instance.  The batteries are the subsystem's correctness contract: every
// patched re-verification must be byte-identical (canonical result JSON,
// witness traces included) to a from-scratch verification of the same
// snapshot.  AALWINES_DELTA_BATTERY scales the battery length (nightly
// runs it deeper).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "cli/options.hpp"
#include "delta/delta.hpp"
#include "delta/reverify.hpp"
#include "io/results_json.hpp"
#include "json/json.hpp"
#include "query/query.hpp"
#include "synthesis/dataplane.hpp"
#include "synthesis/networks.hpp"
#include "synthesis/queries.hpp"
#include "util/errors.hpp"
#include "verify/engine.hpp"

namespace aalwines::delta {
namespace {

constexpr const char* k_fig1_yes = "<ip> [.#v0] .* [v3#.] <ip> 0";

NetworkDelta parse_delta(const std::string& text) {
    return NetworkDelta::from_json(json::parse(text));
}

/// The byte-identity form: result JSON without stats, wall-clock stripped.
std::string canonical(const Network& network, const std::string& query_text,
                      const verify::VerifyResult& result) {
    auto value = io::result_to_json_value(network, query_text, result, false);
    value.as_object().erase("seconds");
    return json::write(value, 0);
}

std::size_t battery_scale() {
    if (const char* env = std::getenv("AALWINES_DELTA_BATTERY")) {
        const auto scale = std::atoi(env);
        if (scale > 0) return static_cast<std::size_t>(scale);
    }
    return 1;
}

/// One forwarding rule addressed by names, with its remove/re-add pair —
/// only uniquely-addressable rules qualify (remove-rule removes every
/// (in, label, out, ops) match, so duplicates cannot be toggled singly).
struct RuleSite {
    DeltaOp remove;
    DeltaOp add;
};

DeltaOp::LabelRef label_ref(const LabelTable& labels, Label label) {
    return {labels.type_of(label), labels.name_of(label)};
}

std::vector<RuleSite> collect_sites(const Network& network) {
    const auto& topology = network.topology;
    std::vector<RuleSite> sites;
    std::vector<std::string> signatures;
    const auto signature_of = [](LinkId in_link, Label label, const ForwardingRule& rule) {
        std::string sig = std::to_string(in_link) + '/' + std::to_string(label) + '/' +
                          std::to_string(rule.out_link);
        for (const auto& op : rule.ops) {
            sig += '/';
            sig += std::to_string(static_cast<int>(op.kind));
            sig += ':';
            sig += std::to_string(op.label);
        }
        return sig;
    };
    network.routing.for_each([&](LinkId in_link, Label label, const RoutingEntry& groups) {
        for (const auto& group : groups)
            for (const auto& rule : group) signatures.push_back(signature_of(in_link, label, rule));
    });
    std::sort(signatures.begin(), signatures.end());
    const auto unique = [&](const std::string& sig) {
        const auto it = std::lower_bound(signatures.begin(), signatures.end(), sig);
        return it != signatures.end() && (it + 1 == signatures.end() || *(it + 1) != sig);
    };
    network.routing.for_each([&](LinkId in_link, Label label, const RoutingEntry& groups) {
        const auto& in = topology.link(in_link);
        for (std::size_t g = 0; g < groups.size(); ++g) {
            for (const auto& rule : groups[g]) {
                if (!unique(signature_of(in_link, label, rule))) continue;
                const auto& out = topology.link(rule.out_link);
                RuleSite site;
                auto& remove = site.remove;
                remove.kind = DeltaOp::Kind::RemoveRule;
                remove.router = topology.router_name(in.target);
                remove.in_interface = topology.interface(in.target_interface).name;
                remove.out_interface = topology.interface(out.source_interface).name;
                remove.label = label_ref(network.labels, label);
                remove.match_ops = true;
                for (const auto& op : rule.ops)
                    remove.ops.push_back({op.kind, op.kind == Op::Kind::Pop
                                                       ? DeltaOp::LabelRef{}
                                                       : label_ref(network.labels, op.label)});
                auto& add = site.add;
                add = remove;
                add.kind = DeltaOp::Kind::AddRule;
                add.match_ops = false;
                add.priority = static_cast<std::uint32_t>(g + 1);
                sites.push_back(std::move(site));
            }
        }
    });
    return sites;
}

/// A link addressed the way the wire format does (source router + outgoing
/// interface), for link-state and distance ops.
struct LinkSite {
    std::string router;
    std::string interface;
};

std::vector<LinkSite> collect_links(const Network& network) {
    std::vector<LinkSite> sites;
    for (const auto& link : network.topology.links())
        sites.push_back({network.topology.router_name(link.source),
                         network.topology.interface(link.source_interface).name});
    return sites;
}

DeltaOp link_state_op(const LinkSite& site, bool up) {
    DeltaOp op;
    op.kind = DeltaOp::Kind::LinkState;
    op.router = site.router;
    op.out_interface = site.interface;
    op.up = up;
    return op;
}

DeltaOp distance_op(const LinkSite& site, std::uint64_t distance) {
    DeltaOp op;
    op.kind = DeltaOp::Kind::SetDistance;
    op.router = site.router;
    op.out_interface = site.interface;
    op.distance = distance;
    return op;
}

// ---- wire format -----------------------------------------------------

TEST(DeltaFormat, ParsesEveryOpKind) {
    const auto delta = parse_delta(R"({"operations": [
        {"op": "add-rule", "router": "v0", "from": "e0", "label": "ip1", "type": "ip",
         "priority": 2, "to": "e1", "ops": [{"op": "push", "label": "20", "type": "smpls"},
                                            {"op": "pop"}]},
        {"op": "remove-rule", "router": "v1", "from": "in2", "label": "10", "type": "smpls",
         "to": "e3", "ops": [{"op": "swap", "label": "11", "type": "smpls"}]},
        {"op": "remove-entry", "router": "v2", "from": "in1", "label": "20", "type": "smpls"},
        {"op": "link-state", "router": "v0", "interface": "e1", "up": false},
        {"op": "set-distance", "router": "v0", "interface": "e2", "distance": 7}
    ]})");
    ASSERT_EQ(delta.ops.size(), 5u);
    EXPECT_EQ(delta.ops[0].kind, DeltaOp::Kind::AddRule);
    EXPECT_EQ(delta.ops[0].label.type, LabelType::Ip);
    EXPECT_EQ(delta.ops[0].priority, 2u);
    ASSERT_EQ(delta.ops[0].ops.size(), 2u);
    EXPECT_EQ(delta.ops[0].ops[0].kind, Op::Kind::Push);
    EXPECT_EQ(delta.ops[0].ops[0].label.type, LabelType::MplsBos);
    EXPECT_EQ(delta.ops[0].ops[1].kind, Op::Kind::Pop);
    EXPECT_EQ(delta.ops[1].kind, DeltaOp::Kind::RemoveRule);
    EXPECT_TRUE(delta.ops[1].match_ops);
    EXPECT_EQ(delta.ops[2].kind, DeltaOp::Kind::RemoveEntry);
    EXPECT_EQ(delta.ops[3].kind, DeltaOp::Kind::LinkState);
    EXPECT_FALSE(delta.ops[3].up);
    EXPECT_EQ(delta.ops[4].kind, DeltaOp::Kind::SetDistance);
    EXPECT_EQ(delta.ops[4].distance, 7u);
}

TEST(DeltaFormat, RemoveRuleWithoutOpsMatchesAnyOps) {
    const auto delta = parse_delta(R"({"operations": [
        {"op": "remove-rule", "router": "v1", "from": "in2", "label": "10", "type": "smpls",
         "to": "e3"}]})");
    EXPECT_FALSE(delta.ops.at(0).match_ops);
}

TEST(DeltaFormat, RejectsMalformedDocuments) {
    EXPECT_THROW(parse_delta(R"({"operations": [{"op": "frobnicate", "router": "v0"}]})"),
                 model_error);
    EXPECT_THROW(parse_delta(R"({"operations": [
        {"op": "add-rule", "router": "v0", "from": "e0", "label": "x", "type": "bogus",
         "to": "e1"}]})"),
                 model_error);
    EXPECT_THROW(parse_delta(R"({"operations": [
        {"op": "add-rule", "router": "v0", "from": "e0", "label": "x", "priority": 0,
         "to": "e1"}]})"),
                 model_error);
    EXPECT_THROW(parse_delta(R"({"operations": [
        {"op": "set-distance", "router": "v0", "interface": "e1", "distance": -1}]})"),
                 model_error);
}

// ---- apply semantics -------------------------------------------------

TEST(DeltaApply, AddRuleIsCopyOnWrite) {
    const auto base = synthesis::make_figure1_network();
    const auto base_rules = base.routing.rule_count();
    const auto delta = parse_delta(R"({"operations": [
        {"op": "add-rule", "router": "v2", "from": "in1", "label": "20", "type": "smpls",
         "to": "e5", "ops": [{"op": "pop"}]}]})");
    const auto applied = apply_delta(base, delta);
    EXPECT_EQ(base.routing.rule_count(), base_rules);
    EXPECT_EQ(applied.network->routing.rule_count(), base_rules + 1);
    EXPECT_FALSE(applied.effects.label_added);
    const auto in1 = *base.topology.in_link_through(*base.topology.find_router("v2"), "in1");
    EXPECT_EQ(applied.effects.entry_links, std::vector<LinkId>{in1});
    EXPECT_TRUE(applied.effects.state_links.empty());

    // Structural sharing: untouched entries are the same objects; the
    // patched entry was cloned.
    const auto in2 = *base.topology.in_link_through(*base.topology.find_router("v1"), "in2");
    const auto s10 = *base.labels.find(LabelType::MplsBos, "10");
    const auto s20 = *base.labels.find(LabelType::MplsBos, "20");
    EXPECT_EQ(base.routing.entry(in2, s10), applied.network->routing.entry(in2, s10));
    EXPECT_NE(base.routing.entry(in1, s20), applied.network->routing.entry(in1, s20));
}

TEST(DeltaApply, MintingALabelSetsLabelAdded) {
    const auto base = synthesis::make_figure1_network();
    const auto delta = parse_delta(R"({"operations": [
        {"op": "add-rule", "router": "v2", "from": "in1", "label": "999", "type": "smpls",
         "to": "e5", "ops": [{"op": "pop"}]}]})");
    const auto applied = apply_delta(base, delta);
    EXPECT_TRUE(applied.effects.label_added);
    EXPECT_EQ(applied.network->labels.size(), base.labels.size() + 1);
    EXPECT_FALSE(base.labels.find(LabelType::MplsBos, "999").has_value());
}

TEST(DeltaApply, RemoveRuleAndEntryReportMisses) {
    const auto base = synthesis::make_figure1_network();
    const auto remove = parse_delta(R"({"operations": [
        {"op": "remove-rule", "router": "v2", "from": "in1", "label": "20", "type": "smpls",
         "to": "e4", "ops": [{"op": "swap", "label": "21", "type": "smpls"}]}]})");
    const auto applied = apply_delta(base, remove);
    EXPECT_EQ(applied.network->routing.rule_count(), base.routing.rule_count() - 1);
    // The same removal against the patched snapshot matches nothing.
    EXPECT_THROW(apply_delta(*applied.network, remove), model_error);
    EXPECT_THROW(apply_delta(base, parse_delta(R"({"operations": [
        {"op": "remove-entry", "router": "v2", "from": "in1", "label": "404",
         "type": "smpls"}]})")),
                 model_error);
    EXPECT_THROW(apply_delta(base, parse_delta(R"({"operations": [
        {"op": "remove-rule", "router": "nosuch", "from": "in1", "label": "20",
         "type": "smpls", "to": "e4"}]})")),
                 model_error);
}

TEST(DeltaApply, LinkStateAndDistanceRecordEffectsOnlyOnChange) {
    const auto base = synthesis::make_figure1_network();
    const auto down = parse_delta(R"({"operations": [
        {"op": "link-state", "router": "v0", "interface": "e1", "up": false}]})");
    const auto applied = apply_delta(base, down);
    const auto e1 = *base.topology.out_link_through(*base.topology.find_router("v0"), "e1");
    EXPECT_EQ(applied.effects.state_links, std::vector<LinkId>{e1});
    EXPECT_FALSE(applied.network->topology.link_up(e1));
    EXPECT_TRUE(base.topology.link_up(e1));
    // Re-applying the same state is a no-op with no recorded effect.
    const auto again = apply_delta(*applied.network, down);
    EXPECT_TRUE(again.effects.empty());

    const auto dist = apply_delta(base, parse_delta(R"({"operations": [
        {"op": "set-distance", "router": "v0", "interface": "e2", "distance": 9}]})"));
    const auto e2 = *base.topology.out_link_through(*base.topology.find_router("v0"), "e2");
    EXPECT_EQ(dist.effects.distance_links, std::vector<LinkId>{e2});
    EXPECT_EQ(dist.network->topology.link(e2).distance, 9u);
}

// ---- the tiered re-verifier ------------------------------------------

TEST(Reverifier, RepeatQueryIsReusedAndDeltasRebase) {
    Reverifier reverifier(std::make_shared<const Network>(synthesis::make_figure1_network()));
    const cli::VerifySpec spec;
    const auto cold = reverifier.verify(k_fig1_yes, spec);
    EXPECT_EQ(cold.path, VerifyPath::Cold);
    EXPECT_EQ(cold.result.answer, verify::Answer::Yes);

    const auto repeat = reverifier.verify(k_fig1_yes, spec);
    EXPECT_EQ(repeat.path, VerifyPath::Reused);
    EXPECT_EQ(canonical(*reverifier.network(), k_fig1_yes, repeat.result),
              canonical(*reverifier.network(), k_fig1_yes, cold.result));

    // A delta on the materialized footprint (v0's ip1 entry starts the
    // demanded region) forces a Tier-2 rebase, not a rebuild.
    const auto applied = reverifier.apply(parse_delta(R"({"operations": [
        {"op": "add-rule", "router": "v0", "from": "e0", "label": "ip1", "type": "ip",
         "to": "e1", "ops": [{"op": "push", "label": "20", "type": "smpls"}]}]})"));
    EXPECT_EQ(applied.generation, 1u);
    const auto warm = reverifier.verify(k_fig1_yes, spec);
    EXPECT_EQ(warm.path, VerifyPath::Warm);
    EXPECT_EQ(warm.generation, 1u);

    // A delta on rules the query never demands (v4's s43 entry lies beyond
    // the 0-failure trace region) is invisible: Tier-1 reuse.
    reverifier.apply(parse_delta(R"({"operations": [
        {"op": "remove-rule", "router": "v4", "from": "in5", "label": "42", "type": "smpls",
         "to": "e6", "ops": [{"op": "swap", "label": "43", "type": "smpls"}]}]})"));
    const auto reused = reverifier.verify(k_fig1_yes, spec);
    EXPECT_EQ(reused.path, VerifyPath::Reused);
}

TEST(Reverifier, ColdFallbacks) {
    const auto network = std::make_shared<const Network>(synthesis::make_figure1_network());
    const cli::VerifySpec spec;

    Reverifier sessionless(network, /*max_sessions=*/0);
    EXPECT_EQ(sessionless.verify(k_fig1_yes, spec).path, VerifyPath::Cold);
    EXPECT_EQ(sessionless.verify(k_fig1_yes, spec).path, VerifyPath::Cold);

    // Minting a label widens the PDA alphabet: the cached translation is
    // stale and the session rebuilds cold.
    Reverifier minting(network);
    EXPECT_EQ(minting.verify(k_fig1_yes, spec).path, VerifyPath::Cold);
    minting.apply(parse_delta(R"({"operations": [
        {"op": "add-rule", "router": "v2", "from": "in1", "label": "fresh", "type": "smpls",
         "to": "e5", "ops": [{"op": "pop"}]}]})"));
    EXPECT_EQ(minting.verify(k_fig1_yes, spec).path, VerifyPath::Cold);

    // Engines without a lazy translation cannot rebase.
    Reverifier moped(network);
    cli::VerifySpec moped_spec;
    moped_spec.engine = "moped";
    EXPECT_EQ(moped.verify(k_fig1_yes, moped_spec).path, VerifyPath::Cold);
}

TEST(Reverifier, EffectsWindowOverflowForcesRebuild) {
    Reverifier reverifier(std::make_shared<const Network>(synthesis::make_figure1_network()));
    const cli::VerifySpec spec;
    ASSERT_EQ(reverifier.verify(k_fig1_yes, spec).path, VerifyPath::Cold);
    // Push the session's base generation out of the effects window; the
    // pending-delta summary is gone, so the session must rebuild.
    const auto bump = parse_delta(R"({"operations": [
        {"op": "set-distance", "router": "v0", "interface": "e2", "distance": 2}]})");
    const auto reset = parse_delta(R"({"operations": [
        {"op": "set-distance", "router": "v0", "interface": "e2", "distance": 1}]})");
    for (int i = 0; i < 600; ++i) {
        reverifier.apply(bump);
        reverifier.apply(reset);
    }
    const auto outcome = reverifier.verify(k_fig1_yes, spec);
    EXPECT_EQ(outcome.path, VerifyPath::Cold);
    EXPECT_EQ(outcome.result.answer, verify::Answer::Yes);
}

TEST(Reverifier, LinkDownRoundTripRestoresTheAnswer) {
    Reverifier reverifier(std::make_shared<const Network>(synthesis::make_figure1_network()));
    const cli::VerifySpec spec;
    const auto before = reverifier.verify(k_fig1_yes, spec);
    const auto before_bytes = canonical(*reverifier.network(), k_fig1_yes, before.result);

    // e1 is on the 0-failure witness; with it down the query must re-route
    // (still yes via e2) — and the answer must match a cold verification of
    // the downed snapshot byte for byte.
    reverifier.apply(parse_delta(R"({"operations": [
        {"op": "link-state", "router": "v0", "interface": "e1", "up": false}]})"));
    const auto down = reverifier.verify(k_fig1_yes, spec);
    const auto snapshot = reverifier.network();
    const auto query = query::parse_query(k_fig1_yes, *snapshot);
    WeightExpr weights;
    const auto options = cli::make_verify_options(spec, weights);
    const auto oracle = verify::verify(*snapshot, query, options);
    EXPECT_EQ(canonical(*snapshot, k_fig1_yes, down.result),
              canonical(*snapshot, k_fig1_yes, oracle));

    reverifier.apply(parse_delta(R"({"operations": [
        {"op": "link-state", "router": "v0", "interface": "e1", "up": true}]})"));
    const auto after = reverifier.verify(k_fig1_yes, spec);
    EXPECT_EQ(canonical(*reverifier.network(), k_fig1_yes, after.result), before_bytes);
}

// ---- delta ≡ cold-recompile equivalence batteries --------------------

/// Run `iterations` random deltas (rule toggles, link flips, distance
/// changes) through a Reverifier and assert byte-identical canonical
/// results against a cold verification of every snapshot.  Returns the
/// tier mix for the caller's sanity assertions.
struct BatteryOutcome {
    std::size_t reused = 0, warm = 0, cold = 0;
};

void run_battery(const Network& base, const std::string& query_text,
                 const cli::VerifySpec& spec, std::size_t iterations,
                 std::uint32_t seed, BatteryOutcome& outcome) {
    Reverifier reverifier(std::make_shared<const Network>(base));
    (void)reverifier.verify(query_text, spec);

    const auto sites = collect_sites(base);
    const auto links = collect_links(base);
    const auto query = query::parse_query(query_text, base);
    WeightExpr oracle_weights;
    const auto oracle_options = cli::make_verify_options(spec, oracle_weights);

    std::mt19937 rng(seed);
    std::uniform_int_distribution<std::size_t> pick_site(0, sites.size() - 1);
    std::uniform_int_distribution<std::size_t> pick_link(0, links.size() - 1);
    std::uniform_int_distribution<int> pick_kind(0, 3);
    std::vector<char> rule_removed(sites.size(), 0);
    std::vector<char> link_down(links.size(), 0);
    std::vector<char> link_far(links.size(), 0);

    for (std::size_t i = 0; i < iterations; ++i) {
        NetworkDelta delta;
        switch (pick_kind(rng)) {
            case 0:
            case 1: { // rule toggle (the most common operator edit)
                const auto index = pick_site(rng);
                delta.ops.push_back(rule_removed[index] ? sites[index].add
                                                        : sites[index].remove);
                rule_removed[index] ^= 1;
                break;
            }
            case 2: { // link flip
                const auto index = pick_link(rng);
                delta.ops.push_back(link_state_op(links[index], link_down[index]));
                link_down[index] ^= 1;
                break;
            }
            default: { // distance toggle
                const auto index = pick_link(rng);
                delta.ops.push_back(distance_op(links[index], link_far[index] ? 1 : 50));
                link_far[index] ^= 1;
                break;
            }
        }
        reverifier.apply(delta);
        const auto verified = reverifier.verify(query_text, spec);
        switch (verified.path) {
            case VerifyPath::Reused: ++outcome.reused; break;
            case VerifyPath::Warm: ++outcome.warm; break;
            case VerifyPath::Cold: ++outcome.cold; break;
        }
        const auto snapshot = reverifier.network();
        const auto oracle = verify::verify(*snapshot, query, oracle_options);
        ASSERT_EQ(canonical(*snapshot, query_text, verified.result),
                  canonical(*snapshot, query_text, oracle))
            << "delta battery diverged from cold recompile at iteration " << i;
    }
}

TEST(DeltaBattery, Figure1Equivalence) {
    const auto base = synthesis::make_figure1_network();
    BatteryOutcome outcome;
    run_battery(base, k_fig1_yes, cli::VerifySpec{}, 60 * battery_scale(), 0xf19u, outcome);
    // Both incremental tiers must actually be exercised by the battery.
    EXPECT_GT(outcome.reused, 0u);
    EXPECT_GT(outcome.warm, 0u);
}

TEST(DeltaBattery, Figure1WeightedEquivalence) {
    const auto base = synthesis::make_figure1_network();
    cli::VerifySpec spec;
    spec.engine = "weighted";
    spec.weight = "distance, hops";
    BatteryOutcome outcome;
    run_battery(base, "<smpls? ip> [.#v0] .* [v3#.] <smpls? ip> 1", spec,
                40 * battery_scale(), 0xd157u, outcome);
    EXPECT_GT(outcome.reused + outcome.warm, 0u);
}

TEST(DeltaBattery, NordunetEquivalence) {
    const auto net = synthesis::make_nordunet_like(40, 1);
    const auto queries = synthesis::make_table1_queries(net);
    ASSERT_FALSE(queries.empty());
    BatteryOutcome outcome;
    run_battery(net.network, queries[0], cli::VerifySpec{}, 30 * battery_scale(), 0x40du,
                outcome);
    EXPECT_GT(outcome.reused + outcome.warm, 0u);
}

} // namespace
} // namespace aalwines::delta
