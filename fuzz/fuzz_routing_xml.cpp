// Fuzz harness for the XML routing loader (io/routing_xml.cpp), parsed
// against a fixed topology so interface references can actually resolve.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "io/formats.hpp"
#include "synthesis/networks.hpp"
#include "util/errors.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
    static const aalwines::Network base = aalwines::synthesis::make_figure1_network();
    const std::string_view document(reinterpret_cast<const char*>(data), size);
    try {
        aalwines::LabelTable labels;
        (void)aalwines::io::read_routing_xml(document, base.topology, labels);
    } catch (const aalwines::parse_error&) {
        // not XML
    } catch (const aalwines::model_error&) {
        // XML, but not a routing table for this topology
    }
    return 0;
}
