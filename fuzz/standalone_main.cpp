// Corpus-replay driver used when the compiler has no libFuzzer runtime
// (-fsanitize=fuzzer): runs LLVMFuzzerTestOneInput over every file given on
// the command line (directories are walked recursively).  No coverage
// feedback — this keeps the harnesses buildable and the corpus regression-
// tested on toolchains without fuzzing support.

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

int run_one(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::cerr << "cannot open '" << path.string() << "'\n";
        return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string bytes = buffer.str();
    LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                           bytes.size());
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    std::vector<std::filesystem::path> inputs;
    for (int i = 1; i < argc; ++i) {
        const std::filesystem::path arg = argv[i];
        if (arg.string().starts_with("-")) continue; // ignore libFuzzer-style flags
        if (std::filesystem::is_directory(arg)) {
            for (const auto& entry : std::filesystem::recursive_directory_iterator(arg))
                if (entry.is_regular_file()) inputs.push_back(entry.path());
        } else {
            inputs.push_back(arg);
        }
    }
    if (inputs.empty()) {
        std::cerr << "usage: " << argv[0] << " <corpus file or directory>...\n";
        return 2;
    }
    int failures = 0;
    for (const auto& input : inputs) failures += run_one(input);
    std::cout << "replayed " << (inputs.size() - static_cast<std::size_t>(failures))
              << "/" << inputs.size() << " corpus inputs\n";
    return failures == 0 ? 0 : 1;
}
