// Fuzz harness for the query parser (query/parser.cpp): arbitrary bytes must
// either parse or throw parse_error/model_error — any other escape (crash,
// sanitizer report, foreign exception) is a real bug.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "query/query.hpp"
#include "synthesis/networks.hpp"
#include "util/errors.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
    static const aalwines::Network network = aalwines::synthesis::make_figure1_network();
    const std::string_view text(reinterpret_cast<const char*>(data), size);
    try {
        (void)aalwines::query::parse_query(text, network);
    } catch (const aalwines::parse_error&) {
        // malformed query text: the expected rejection path
    } catch (const aalwines::model_error&) {
        // well-formed text referencing things this network does not have
    }
    return 0;
}
