// Fuzz harness for the XML topology loader (io/topology_xml.cpp).

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "io/formats.hpp"
#include "util/errors.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
    const std::string_view document(reinterpret_cast<const char*>(data), size);
    try {
        std::string name;
        (void)aalwines::io::read_topology_xml(document, &name);
    } catch (const aalwines::parse_error&) {
        // not XML
    } catch (const aalwines::model_error&) {
        // XML, but not a topology
    }
    return 0;
}
