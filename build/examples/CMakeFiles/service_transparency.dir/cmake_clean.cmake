file(REMOVE_RECURSE
  "CMakeFiles/service_transparency.dir/service_transparency.cpp.o"
  "CMakeFiles/service_transparency.dir/service_transparency.cpp.o.d"
  "service_transparency"
  "service_transparency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_transparency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
