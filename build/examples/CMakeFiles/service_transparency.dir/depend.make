# Empty dependencies file for service_transparency.
# This may be replaced when dependencies are built.
