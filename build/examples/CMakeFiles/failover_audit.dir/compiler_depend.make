# Empty compiler generated dependencies file for failover_audit.
# This may be replaced when dependencies are built.
