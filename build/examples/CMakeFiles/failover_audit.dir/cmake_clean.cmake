file(REMOVE_RECURSE
  "CMakeFiles/failover_audit.dir/failover_audit.cpp.o"
  "CMakeFiles/failover_audit.dir/failover_audit.cpp.o.d"
  "failover_audit"
  "failover_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failover_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
