# Empty dependencies file for batch_audit.
# This may be replaced when dependencies are built.
