file(REMOVE_RECURSE
  "CMakeFiles/batch_audit.dir/batch_audit.cpp.o"
  "CMakeFiles/batch_audit.dir/batch_audit.cpp.o.d"
  "batch_audit"
  "batch_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
