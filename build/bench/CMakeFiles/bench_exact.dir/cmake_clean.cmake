file(REMOVE_RECURSE
  "CMakeFiles/bench_exact.dir/bench_exact.cpp.o"
  "CMakeFiles/bench_exact.dir/bench_exact.cpp.o.d"
  "bench_exact"
  "bench_exact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
