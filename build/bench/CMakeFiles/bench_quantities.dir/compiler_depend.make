# Empty compiler generated dependencies file for bench_quantities.
# This may be replaced when dependencies are built.
