file(REMOVE_RECURSE
  "CMakeFiles/bench_quantities.dir/bench_quantities.cpp.o"
  "CMakeFiles/bench_quantities.dir/bench_quantities.cpp.o.d"
  "bench_quantities"
  "bench_quantities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quantities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
