# Empty dependencies file for bench_pda.
# This may be replaced when dependencies are built.
