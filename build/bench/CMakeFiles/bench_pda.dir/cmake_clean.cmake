file(REMOVE_RECURSE
  "CMakeFiles/bench_pda.dir/bench_pda.cpp.o"
  "CMakeFiles/bench_pda.dir/bench_pda.cpp.o.d"
  "bench_pda"
  "bench_pda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
