# Empty compiler generated dependencies file for aalwines_tests.
# This may be replaced when dependencies are built.
