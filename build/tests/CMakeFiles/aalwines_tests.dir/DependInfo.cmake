
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_batch.cpp" "tests/CMakeFiles/aalwines_tests.dir/test_batch.cpp.o" "gcc" "tests/CMakeFiles/aalwines_tests.dir/test_batch.cpp.o.d"
  "/root/repo/tests/test_engine_figure1.cpp" "tests/CMakeFiles/aalwines_tests.dir/test_engine_figure1.cpp.o" "gcc" "tests/CMakeFiles/aalwines_tests.dir/test_engine_figure1.cpp.o.d"
  "/root/repo/tests/test_engine_property.cpp" "tests/CMakeFiles/aalwines_tests.dir/test_engine_property.cpp.o" "gcc" "tests/CMakeFiles/aalwines_tests.dir/test_engine_property.cpp.o.d"
  "/root/repo/tests/test_exact.cpp" "tests/CMakeFiles/aalwines_tests.dir/test_exact.cpp.o" "gcc" "tests/CMakeFiles/aalwines_tests.dir/test_exact.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/aalwines_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/aalwines_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_header.cpp" "tests/CMakeFiles/aalwines_tests.dir/test_header.cpp.o" "gcc" "tests/CMakeFiles/aalwines_tests.dir/test_header.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/aalwines_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/aalwines_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_isis.cpp" "tests/CMakeFiles/aalwines_tests.dir/test_isis.cpp.o" "gcc" "tests/CMakeFiles/aalwines_tests.dir/test_isis.cpp.o.d"
  "/root/repo/tests/test_json.cpp" "tests/CMakeFiles/aalwines_tests.dir/test_json.cpp.o" "gcc" "tests/CMakeFiles/aalwines_tests.dir/test_json.cpp.o.d"
  "/root/repo/tests/test_model.cpp" "tests/CMakeFiles/aalwines_tests.dir/test_model.cpp.o" "gcc" "tests/CMakeFiles/aalwines_tests.dir/test_model.cpp.o.d"
  "/root/repo/tests/test_moped.cpp" "tests/CMakeFiles/aalwines_tests.dir/test_moped.cpp.o" "gcc" "tests/CMakeFiles/aalwines_tests.dir/test_moped.cpp.o.d"
  "/root/repo/tests/test_nfa.cpp" "tests/CMakeFiles/aalwines_tests.dir/test_nfa.cpp.o" "gcc" "tests/CMakeFiles/aalwines_tests.dir/test_nfa.cpp.o.d"
  "/root/repo/tests/test_pautomaton.cpp" "tests/CMakeFiles/aalwines_tests.dir/test_pautomaton.cpp.o" "gcc" "tests/CMakeFiles/aalwines_tests.dir/test_pautomaton.cpp.o.d"
  "/root/repo/tests/test_pda_post.cpp" "tests/CMakeFiles/aalwines_tests.dir/test_pda_post.cpp.o" "gcc" "tests/CMakeFiles/aalwines_tests.dir/test_pda_post.cpp.o.d"
  "/root/repo/tests/test_pda_pre.cpp" "tests/CMakeFiles/aalwines_tests.dir/test_pda_pre.cpp.o" "gcc" "tests/CMakeFiles/aalwines_tests.dir/test_pda_pre.cpp.o.d"
  "/root/repo/tests/test_pda_property.cpp" "tests/CMakeFiles/aalwines_tests.dir/test_pda_property.cpp.o" "gcc" "tests/CMakeFiles/aalwines_tests.dir/test_pda_property.cpp.o.d"
  "/root/repo/tests/test_quantity.cpp" "tests/CMakeFiles/aalwines_tests.dir/test_quantity.cpp.o" "gcc" "tests/CMakeFiles/aalwines_tests.dir/test_quantity.cpp.o.d"
  "/root/repo/tests/test_query.cpp" "tests/CMakeFiles/aalwines_tests.dir/test_query.cpp.o" "gcc" "tests/CMakeFiles/aalwines_tests.dir/test_query.cpp.o.d"
  "/root/repo/tests/test_reduction.cpp" "tests/CMakeFiles/aalwines_tests.dir/test_reduction.cpp.o" "gcc" "tests/CMakeFiles/aalwines_tests.dir/test_reduction.cpp.o.d"
  "/root/repo/tests/test_results_json.cpp" "tests/CMakeFiles/aalwines_tests.dir/test_results_json.cpp.o" "gcc" "tests/CMakeFiles/aalwines_tests.dir/test_results_json.cpp.o.d"
  "/root/repo/tests/test_symbol_set.cpp" "tests/CMakeFiles/aalwines_tests.dir/test_symbol_set.cpp.o" "gcc" "tests/CMakeFiles/aalwines_tests.dir/test_symbol_set.cpp.o.d"
  "/root/repo/tests/test_synthesis.cpp" "tests/CMakeFiles/aalwines_tests.dir/test_synthesis.cpp.o" "gcc" "tests/CMakeFiles/aalwines_tests.dir/test_synthesis.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/aalwines_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/aalwines_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_translation.cpp" "tests/CMakeFiles/aalwines_tests.dir/test_translation.cpp.o" "gcc" "tests/CMakeFiles/aalwines_tests.dir/test_translation.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/aalwines_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/aalwines_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_weight.cpp" "tests/CMakeFiles/aalwines_tests.dir/test_weight.cpp.o" "gcc" "tests/CMakeFiles/aalwines_tests.dir/test_weight.cpp.o.d"
  "/root/repo/tests/test_xml.cpp" "tests/CMakeFiles/aalwines_tests.dir/test_xml.cpp.o" "gcc" "tests/CMakeFiles/aalwines_tests.dir/test_xml.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aalwines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
