
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/gml.cpp" "src/CMakeFiles/aalwines.dir/io/gml.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/io/gml.cpp.o.d"
  "/root/repo/src/io/html_report.cpp" "src/CMakeFiles/aalwines.dir/io/html_report.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/io/html_report.cpp.o.d"
  "/root/repo/src/io/isis.cpp" "src/CMakeFiles/aalwines.dir/io/isis.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/io/isis.cpp.o.d"
  "/root/repo/src/io/locations.cpp" "src/CMakeFiles/aalwines.dir/io/locations.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/io/locations.cpp.o.d"
  "/root/repo/src/io/results_json.cpp" "src/CMakeFiles/aalwines.dir/io/results_json.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/io/results_json.cpp.o.d"
  "/root/repo/src/io/routing_xml.cpp" "src/CMakeFiles/aalwines.dir/io/routing_xml.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/io/routing_xml.cpp.o.d"
  "/root/repo/src/io/topology_xml.cpp" "src/CMakeFiles/aalwines.dir/io/topology_xml.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/io/topology_xml.cpp.o.d"
  "/root/repo/src/json/json.cpp" "src/CMakeFiles/aalwines.dir/json/json.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/json/json.cpp.o.d"
  "/root/repo/src/model/header.cpp" "src/CMakeFiles/aalwines.dir/model/header.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/model/header.cpp.o.d"
  "/root/repo/src/model/label.cpp" "src/CMakeFiles/aalwines.dir/model/label.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/model/label.cpp.o.d"
  "/root/repo/src/model/quantity.cpp" "src/CMakeFiles/aalwines.dir/model/quantity.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/model/quantity.cpp.o.d"
  "/root/repo/src/model/routing.cpp" "src/CMakeFiles/aalwines.dir/model/routing.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/model/routing.cpp.o.d"
  "/root/repo/src/model/simulator.cpp" "src/CMakeFiles/aalwines.dir/model/simulator.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/model/simulator.cpp.o.d"
  "/root/repo/src/model/topology.cpp" "src/CMakeFiles/aalwines.dir/model/topology.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/model/topology.cpp.o.d"
  "/root/repo/src/model/trace.cpp" "src/CMakeFiles/aalwines.dir/model/trace.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/model/trace.cpp.o.d"
  "/root/repo/src/nfa/nfa.cpp" "src/CMakeFiles/aalwines.dir/nfa/nfa.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/nfa/nfa.cpp.o.d"
  "/root/repo/src/nfa/regex.cpp" "src/CMakeFiles/aalwines.dir/nfa/regex.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/nfa/regex.cpp.o.d"
  "/root/repo/src/nfa/symbol_set.cpp" "src/CMakeFiles/aalwines.dir/nfa/symbol_set.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/nfa/symbol_set.cpp.o.d"
  "/root/repo/src/pda/pautomaton.cpp" "src/CMakeFiles/aalwines.dir/pda/pautomaton.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/pda/pautomaton.cpp.o.d"
  "/root/repo/src/pda/pda.cpp" "src/CMakeFiles/aalwines.dir/pda/pda.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/pda/pda.cpp.o.d"
  "/root/repo/src/pda/reduction.cpp" "src/CMakeFiles/aalwines.dir/pda/reduction.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/pda/reduction.cpp.o.d"
  "/root/repo/src/pda/solver.cpp" "src/CMakeFiles/aalwines.dir/pda/solver.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/pda/solver.cpp.o.d"
  "/root/repo/src/query/lexer.cpp" "src/CMakeFiles/aalwines.dir/query/lexer.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/query/lexer.cpp.o.d"
  "/root/repo/src/query/parser.cpp" "src/CMakeFiles/aalwines.dir/query/parser.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/query/parser.cpp.o.d"
  "/root/repo/src/synthesis/dataplane.cpp" "src/CMakeFiles/aalwines.dir/synthesis/dataplane.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/synthesis/dataplane.cpp.o.d"
  "/root/repo/src/synthesis/nordunet.cpp" "src/CMakeFiles/aalwines.dir/synthesis/nordunet.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/synthesis/nordunet.cpp.o.d"
  "/root/repo/src/synthesis/queries.cpp" "src/CMakeFiles/aalwines.dir/synthesis/queries.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/synthesis/queries.cpp.o.d"
  "/root/repo/src/synthesis/topologies.cpp" "src/CMakeFiles/aalwines.dir/synthesis/topologies.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/synthesis/topologies.cpp.o.d"
  "/root/repo/src/synthesis/zoo.cpp" "src/CMakeFiles/aalwines.dir/synthesis/zoo.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/synthesis/zoo.cpp.o.d"
  "/root/repo/src/util/errors.cpp" "src/CMakeFiles/aalwines.dir/util/errors.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/util/errors.cpp.o.d"
  "/root/repo/src/util/interner.cpp" "src/CMakeFiles/aalwines.dir/util/interner.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/util/interner.cpp.o.d"
  "/root/repo/src/verify/batch.cpp" "src/CMakeFiles/aalwines.dir/verify/batch.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/verify/batch.cpp.o.d"
  "/root/repo/src/verify/engine.cpp" "src/CMakeFiles/aalwines.dir/verify/engine.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/verify/engine.cpp.o.d"
  "/root/repo/src/verify/exact_engine.cpp" "src/CMakeFiles/aalwines.dir/verify/exact_engine.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/verify/exact_engine.cpp.o.d"
  "/root/repo/src/verify/moped_engine.cpp" "src/CMakeFiles/aalwines.dir/verify/moped_engine.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/verify/moped_engine.cpp.o.d"
  "/root/repo/src/verify/moped_format.cpp" "src/CMakeFiles/aalwines.dir/verify/moped_format.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/verify/moped_format.cpp.o.d"
  "/root/repo/src/verify/translation.cpp" "src/CMakeFiles/aalwines.dir/verify/translation.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/verify/translation.cpp.o.d"
  "/root/repo/src/xml/xml_parser.cpp" "src/CMakeFiles/aalwines.dir/xml/xml_parser.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/xml/xml_parser.cpp.o.d"
  "/root/repo/src/xml/xml_writer.cpp" "src/CMakeFiles/aalwines.dir/xml/xml_writer.cpp.o" "gcc" "src/CMakeFiles/aalwines.dir/xml/xml_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
