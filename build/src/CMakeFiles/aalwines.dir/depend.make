# Empty dependencies file for aalwines.
# This may be replaced when dependencies are built.
