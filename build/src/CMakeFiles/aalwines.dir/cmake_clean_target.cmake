file(REMOVE_RECURSE
  "libaalwines.a"
)
