file(REMOVE_RECURSE
  "CMakeFiles/aalwines-cli.dir/cli/main.cpp.o"
  "CMakeFiles/aalwines-cli.dir/cli/main.cpp.o.d"
  "aalwines"
  "aalwines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aalwines-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
