# Empty dependencies file for aalwines-cli.
# This may be replaced when dependencies are built.
