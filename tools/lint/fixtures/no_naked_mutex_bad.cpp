// Positive fixture for aalwines-no-naked-mutex: every marked line must
// produce the diagnostic (scripts/aalwines-lint --fixtures verifies the
// markers; a check that stops firing fails the lint.* ctest entries).
// Self-contained: compiles standalone for the clang-tidy engine and scans
// identically under the lexical engine.
#include <condition_variable>
#include <mutex>

namespace fixture {

struct Queue {
    std::mutex mutex;              // expect: aalwines-no-naked-mutex
    std::condition_variable ready; // expect: aalwines-no-naked-mutex
    int depth = 0;

    void push() {
        const std::lock_guard<std::mutex> lock(mutex); // expect: aalwines-no-naked-mutex
        ++depth;
    }

    void drain() {
        std::unique_lock<std::mutex> lock(mutex); // expect: aalwines-no-naked-mutex
        ready.wait(lock, [this] { return depth == 0; });
    }
};

} // namespace fixture
