// Positive fixture for aalwines-unchecked-user-lookup: .at() on a map that
// (in the real tree) would be fed by a network loader.  A miss surfaces as
// std::out_of_range instead of the contract-checked model_error.
#include <map>
#include <string>
#include <unordered_map>

namespace fixture {

int resolve(const std::map<std::string, int>& by_alias, const std::string& name) {
    return by_alias.at(name); // expect: aalwines-unchecked-user-lookup
}

int resolve_hashed(const std::unordered_map<std::string, int>& table,
                   const std::string& name) {
    return table.at(name); // expect: aalwines-unchecked-user-lookup
}

} // namespace fixture
