// Positive fixture for aalwines-no-alloc-in-hot-path: inside a function
// marked AALWINES_HOT_PATH (the saturation inner loop), new-expressions and
// node-based std containers are diagnosed — every pop would pay a heap
// round-trip that util::Arena exists to avoid.
#include <map>
#include <vector>

#define AALWINES_HOT_PATH __attribute__((annotate("aalwines_hot_path")))

namespace fixture {

AALWINES_HOT_PATH void saturate(std::vector<int>& out) {
    std::map<int, int> order; // expect: aalwines-no-alloc-in-hot-path
    int* node = new int(7);   // expect: aalwines-no-alloc-in-hot-path
    out.push_back(*node + static_cast<int>(order.size()));
    delete node;
}

} // namespace fixture
