// Negative fixture for aalwines-no-naked-mutex: the annotated wrappers are
// exactly what the check steers toward, so this file must stay clean.  The
// stub util namespace stands in for src/util/mutex.hpp (fixtures compile
// standalone, without the repository include path).
namespace util {
class Mutex {};
class MutexLock {
public:
    explicit MutexLock(Mutex&) {}
};
} // namespace util

namespace fixture {

struct Cache {
    util::Mutex mutex;
    int hits = 0;

    int get() {
        const util::MutexLock lock(mutex);
        return ++hits;
    }
};

} // namespace fixture
