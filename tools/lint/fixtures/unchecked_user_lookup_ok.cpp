// Negative fixture for aalwines-unchecked-user-lookup: find() with an
// AALWINES_CHECK guard (stubbed here) is the sanctioned pattern — malformed
// input throws the model error, and the hot lookup stays branch-predictable.
#include <map>
#include <stdexcept>
#include <string>

#define AALWINES_CHECK(condition, message)                                   \
    do {                                                                     \
        if (!(condition)) throw std::runtime_error(message);                 \
    } while (false)

namespace fixture {

int resolve(const std::map<std::string, int>& by_alias, const std::string& name) {
    const auto it = by_alias.find(name);
    AALWINES_CHECK(it != by_alias.end(), "unknown system '" + name + "'");
    return it->second;
}

} // namespace fixture
