// Negative fixture for aalwines-no-alloc-in-hot-path: flat containers that
// amortize (vector) are fine inside a hot-path function, and unmarked
// functions may allocate freely.
#include <vector>

#define AALWINES_HOT_PATH __attribute__((annotate("aalwines_hot_path")))

namespace fixture {

AALWINES_HOT_PATH void relax(std::vector<int>& worklist) {
    worklist.push_back(1); // amortized growth is allowed in the hot path
}

void cold_path(std::vector<int*>& owners) {
    owners.push_back(new int(0)); // unmarked function: allocation is fine
}

} // namespace fixture
