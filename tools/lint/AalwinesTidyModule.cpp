// aalwines-* clang-tidy checks — the project's own static-analysis rules,
// loaded out-of-tree into a stock clang-tidy via `-load` (clang-tidy >= 15;
// see tools/lint/CMakeLists.txt and scripts/aalwines-lint).
//
//   aalwines-no-naked-mutex        raw std::mutex primitives outside
//                                  src/util/ — use util::Mutex/MutexLock/
//                                  CondVar (util/mutex.hpp) so clang's
//                                  thread-safety analysis sees every lock
//   aalwines-unchecked-user-lookup .at() on loader-fed associative
//                                  containers in src/io/, src/cli/,
//                                  src/server/ — use find() plus an
//                                  AALWINES_CHECK guard so malformed input
//                                  throws model_error, not std::out_of_range
//   aalwines-no-alloc-in-hot-path  new-expressions or node-based std
//                                  containers inside a function marked
//                                  AALWINES_HOT_PATH (util/hot_path.hpp) —
//                                  the saturation inner loop allocates
//                                  through util::Arena only
//
// Each check exposes a `PathFilter` option (POSIX ERE over the presumed
// file name) so the fixture harness can widen the scope to its own files;
// the defaults encode the repository policy above.

#include "clang-tidy/ClangTidyCheck.h"
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/Support/Regex.h"

namespace clang::tidy::aalwines {

using namespace clang::ast_matchers;

namespace {

/// True when `loc` belongs to a file whose path matches `filter` and does
/// not match `exclude` (either empty = no constraint).
bool in_scope(const SourceManager& sm, SourceLocation loc, llvm::StringRef filter,
              llvm::StringRef exclude) {
    if (loc.isInvalid()) return false;
    const auto file = sm.getFilename(sm.getExpansionLoc(loc));
    if (file.empty()) return false;
    if (!filter.empty() && !llvm::Regex(filter).match(file)) return false;
    if (!exclude.empty() && llvm::Regex(exclude).match(file)) return false;
    return true;
}

bool has_hot_path_annotation(const FunctionDecl& function) {
    for (const auto* attr : function.specific_attrs<AnnotateAttr>())
        if (attr->getAnnotation() == "aalwines_hot_path") return true;
    return false;
}

} // namespace

// --- aalwines-no-naked-mutex ---------------------------------------------

class NoNakedMutexCheck : public ClangTidyCheck {
public:
    NoNakedMutexCheck(llvm::StringRef name, ClangTidyContext* context)
        : ClangTidyCheck(name, context),
          _filter(Options.get("PathFilter", "")),
          _exclude(Options.get("PathExclude", "(^|/)src/util/")) {}

    void storeOptions(ClangTidyOptions::OptionMap& options) override {
        Options.store(options, "PathFilter", _filter);
        Options.store(options, "PathExclude", _exclude);
    }

    void registerMatchers(MatchFinder* finder) override {
        finder->addMatcher(
            typeLoc(loc(qualType(hasDeclaration(namedDecl(hasAnyName(
                        "::std::mutex", "::std::timed_mutex", "::std::recursive_mutex",
                        "::std::recursive_timed_mutex", "::std::shared_mutex",
                        "::std::shared_timed_mutex", "::std::condition_variable",
                        "::std::condition_variable_any", "::std::lock_guard",
                        "::std::unique_lock", "::std::scoped_lock",
                        "::std::shared_lock"))))))
                .bind("type"),
            this);
    }

    void check(const MatchFinder::MatchResult& result) override {
        const auto* type = result.Nodes.getNodeAs<TypeLoc>("type");
        const auto loc = type->getBeginLoc();
        if (!in_scope(*result.SourceManager, loc, _filter, _exclude)) return;
        diag(loc, "naked std synchronization primitive; use util::Mutex / "
                  "util::MutexLock / util::CondVar from util/mutex.hpp so the "
                  "thread-safety analysis sees this lock");
    }

private:
    const StringRef _filter;
    const StringRef _exclude;
};

// --- aalwines-unchecked-user-lookup --------------------------------------

class UncheckedUserLookupCheck : public ClangTidyCheck {
public:
    UncheckedUserLookupCheck(llvm::StringRef name, ClangTidyContext* context)
        : ClangTidyCheck(name, context),
          _filter(Options.get("PathFilter", "(^|/)src/(io|cli|server)/")),
          _exclude(Options.get("PathExclude", "")) {}

    void storeOptions(ClangTidyOptions::OptionMap& options) override {
        Options.store(options, "PathFilter", _filter);
        Options.store(options, "PathExclude", _exclude);
    }

    void registerMatchers(MatchFinder* finder) override {
        finder->addMatcher(
            cxxMemberCallExpr(
                callee(cxxMethodDecl(
                    hasName("at"),
                    ofClass(hasAnyName("::std::map", "::std::unordered_map",
                                       "::std::multimap", "::std::unordered_multimap")))))
                .bind("call"),
            this);
    }

    void check(const MatchFinder::MatchResult& result) override {
        const auto* call = result.Nodes.getNodeAs<CXXMemberCallExpr>("call");
        const auto loc = call->getExprLoc();
        if (!in_scope(*result.SourceManager, loc, _filter, _exclude)) return;
        diag(loc, "unchecked .at() on a loader-fed container; use find() and "
                  "guard the miss with AALWINES_CHECK so malformed input "
                  "throws model_error, not std::out_of_range");
    }

private:
    const StringRef _filter;
    const StringRef _exclude;
};

// --- aalwines-no-alloc-in-hot-path ---------------------------------------

class NoAllocInHotPathCheck : public ClangTidyCheck {
public:
    NoAllocInHotPathCheck(llvm::StringRef name, ClangTidyContext* context)
        : ClangTidyCheck(name, context),
          _filter(Options.get("PathFilter", "")),
          _exclude(Options.get("PathExclude", "")) {}

    void storeOptions(ClangTidyOptions::OptionMap& options) override {
        Options.store(options, "PathFilter", _filter);
        Options.store(options, "PathExclude", _exclude);
    }

    void registerMatchers(MatchFinder* finder) override {
        const auto hot = functionDecl(hasAttr(attr::Annotate)).bind("func");
        finder->addMatcher(cxxNewExpr(hasAncestor(hot)).bind("new"), this);
        finder->addMatcher(
            varDecl(hasAncestor(hot),
                    hasType(hasUnqualifiedDesugaredType(recordType(hasDeclaration(
                        classTemplateSpecializationDecl(hasAnyName(
                            "::std::map", "::std::multimap", "::std::set",
                            "::std::multiset", "::std::unordered_map",
                            "::std::unordered_multimap", "::std::unordered_set",
                            "::std::unordered_multiset")))))))
                .bind("container"),
            this);
    }

    void check(const MatchFinder::MatchResult& result) override {
        const auto* function = result.Nodes.getNodeAs<FunctionDecl>("func");
        if (function == nullptr || !has_hot_path_annotation(*function)) return;
        if (const auto* new_expr = result.Nodes.getNodeAs<CXXNewExpr>("new")) {
            const auto loc = new_expr->getBeginLoc();
            if (!in_scope(*result.SourceManager, loc, _filter, _exclude)) return;
            diag(loc, "new-expression inside an AALWINES_HOT_PATH function; the "
                      "saturation inner loop allocates through util::Arena only");
            return;
        }
        if (const auto* container = result.Nodes.getNodeAs<VarDecl>("container")) {
            const auto loc = container->getLocation();
            if (!in_scope(*result.SourceManager, loc, _filter, _exclude)) return;
            diag(loc, "node-based std container inside an AALWINES_HOT_PATH "
                      "function; it heap-allocates per insert — use util::Arena "
                      "backed structures or flat vectors");
        }
    }

private:
    const StringRef _filter;
    const StringRef _exclude;
};

// --- module registration --------------------------------------------------

class AalwinesModule : public ClangTidyModule {
public:
    void addCheckFactories(ClangTidyCheckFactories& factories) override {
        factories.registerCheck<NoNakedMutexCheck>("aalwines-no-naked-mutex");
        factories.registerCheck<UncheckedUserLookupCheck>(
            "aalwines-unchecked-user-lookup");
        factories.registerCheck<NoAllocInHotPathCheck>(
            "aalwines-no-alloc-in-hot-path");
    }
};

static ClangTidyModuleRegistry::Add<AalwinesModule>
    aalwines_module("aalwines-module", "aalwines project-specific checks");

} // namespace clang::tidy::aalwines

// Anchor so -load can verify the module really registered.
volatile int aalwines_tidy_module_anchor = 0;
