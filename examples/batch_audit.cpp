// Fleet-style batch audit: verify a whole battery of operator queries over
// a network snapshot in parallel, then aggregate the results the way a CI
// gate or nightly compliance job would.
//
//   $ ./batch_audit [jobs]

#include <chrono>
#include <iomanip>
#include <iostream>

#include "synthesis/networks.hpp"
#include "synthesis/queries.hpp"
#include "verify/batch.hpp"

int main(int argc, char** argv) {
    using namespace aalwines;
    const std::size_t jobs = argc > 1 ? std::stoul(argv[1]) : 0; // 0 = all cores

    const auto synth = synthesis::make_nordunet_like(/*service_chains=*/400, /*seed=*/1);
    const auto& net = synth.network;
    const auto queries =
        synthesis::make_query_battery(synth, {.count = 60, .seed = 31});
    std::cout << "auditing " << queries.size() << " queries on " << net.name << " ("
              << net.routing.rule_count() << " rules) with "
              << (jobs ? std::to_string(jobs) : std::string("all")) << " threads\n\n";

    const auto start = std::chrono::steady_clock::now();
    const auto items = verify::verify_batch(net, queries, {}, jobs);
    const auto wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

    std::size_t yes = 0, no = 0, inconclusive = 0, errors = 0;
    double engine_time = 0.0, slowest = 0.0;
    std::string slowest_query;
    for (const auto& item : items) {
        if (!item.error.empty()) {
            ++errors;
            continue;
        }
        engine_time += item.result.stats.total_seconds;
        if (item.result.stats.total_seconds > slowest) {
            slowest = item.result.stats.total_seconds;
            slowest_query = item.query_text;
        }
        switch (item.result.answer) {
            case verify::Answer::Yes: ++yes; break;
            case verify::Answer::No: ++no; break;
            case verify::Answer::Inconclusive: ++inconclusive; break;
        }
    }

    std::cout << std::fixed << std::setprecision(3);
    std::cout << "answers:   yes " << yes << "  no " << no << "  inconclusive "
              << inconclusive << "  errors " << errors << "\n";
    std::cout << "wall time: " << wall << "s   engine time: " << engine_time
              << "s   parallel speedup: " << engine_time / wall << "x\n";
    std::cout << "slowest:   " << slowest << "s  " << slowest_query << "\n\n";

    // Anything inconclusive deserves a second, more expensive look — print
    // them so the operator can rerun with OVER/UNDER modes or higher k.
    for (const auto& item : items)
        if (item.error.empty() && item.result.answer == verify::Answer::Inconclusive)
            std::cout << "INCONCLUSIVE: " << item.query_text << "\n              "
                      << item.result.note << "\n";
    return errors == 0 ? 0 : 1;
}
