// Traffic engineering: minimum-latency witness search on a geographic
// operator network.
//
// The NORDUnet-like backbone carries link latencies derived from real
// coordinates.  For a pair of edge routers we ask for the shortest route by
// several different objectives — hops, geographic distance, tunnels — and
// compare the witnesses the weighted engine returns, under increasing
// failure budgets.
//
//   $ ./traffic_engineering

#include <iostream>

#include "model/quantity.hpp"
#include "synthesis/networks.hpp"
#include "verify/engine.hpp"

int main() {
    using namespace aalwines;

    const auto synth = synthesis::make_nordunet_like(/*service_chains=*/100, /*seed=*/1);
    const auto& net = synth.network;
    std::cout << "network: " << net.name << " — " << net.topology.router_count()
              << " routers, " << net.routing.rule_count() << " rules\n\n";

    const auto a = net.topology.router_name(synth.edge_routers.front());
    const auto b = net.topology.router_name(synth.edge_routers.back());

    const std::vector<std::string> objectives = {
        "hops",
        "distance",
        "tunnels, hops",
        "failures, distance",
    };

    for (const std::uint64_t k : {0, 1, 2}) {
        const auto text = "<ip> [.#" + a + "] .* [.#" + b + "] <ip> " + std::to_string(k);
        const auto query = query::parse_query(text, net);
        std::cout << "query (k=" << k << "): " << text << "\n";
        for (const auto& objective : objectives) {
            const auto weights = parse_weight_expression(objective);
            verify::VerifyOptions options;
            options.engine = verify::EngineKind::Weighted;
            options.weights = &weights;
            const auto result = verify::verify(net, query, options);
            std::cout << "  minimise [" << objective << "] -> "
                      << verify::to_string(result.answer);
            if (result.answer == verify::Answer::Yes) {
                std::cout << ", weight (";
                for (std::size_t i = 0; i < result.weight.size(); ++i)
                    std::cout << (i ? ", " : "") << result.weight[i];
                std::cout << "), " << (result.trace ? result.trace->size() : 0)
                          << " links";
                if (result.trace) {
                    // Report the end-to-end geographic length of the witness.
                    std::uint64_t metres = 0;
                    for (const auto& entry : result.trace->entries)
                        metres += net.topology.link(entry.link).distance;
                    std::cout << ", " << metres / 1000 << " km";
                }
            }
            std::cout << "\n";
        }
        std::cout << "\n";
    }
    return 0;
}
