// Service transparency audit: does the network leak internal MPLS labels to
// neighbouring networks?  (The paper's φ3, at operator scale.)
//
// For every generated service chain we verify that a packet entering with
// the agreed service label can never leave the network with an *additional*
// MPLS label on top of it, even under k link failures — the property the
// NORDUnet operators asked about in §5.  A YES here is a misconfiguration;
// the expected fleet-wide result is a column of conclusive NOs.
//
//   $ ./service_transparency

#include <iostream>

#include "synthesis/networks.hpp"
#include "verify/engine.hpp"

int main() {
    using namespace aalwines;

    const auto synth = synthesis::make_nordunet_like(/*service_chains=*/40, /*seed=*/7);
    const auto& net = synth.network;
    std::cout << "auditing " << synth.service_labels.size()
              << " service chains on " << net.name << " ("
              << net.routing.rule_count() << " rules) under k=1 failures\n\n";

    std::size_t leaks = 0, clean = 0, inconclusive = 0;
    for (std::size_t i = 0; i < synth.service_labels.size(); ++i) {
        const auto& label_name = net.labels.name_of(synth.service_labels[i]);
        // A leak: the service packet LEAVES the network (crosses an exit
        // link) with extra labels on top of the service label.  Mid-network
        // states legitimately carry failover tunnel labels, so the last
        // link must be anchored at the exits, as in the paper's phi3.
        const auto text = "<[" + label_name + "] ip> .* " +
                          synthesis::all_exits_atom(synth) + " <mpls+ smpls ip> 1";
        const auto result = verify::verify(net, query::parse_query(text, net), {});
        switch (result.answer) {
            case verify::Answer::Yes:
                ++leaks;
                std::cout << "LEAK  " << label_name << "\n";
                if (result.trace) std::cout << display_trace(net, *result.trace);
                break;
            case verify::Answer::No: ++clean; break;
            case verify::Answer::Inconclusive: ++inconclusive; break;
        }
    }
    std::cout << "clean: " << clean << "  leaks: " << leaks
              << "  inconclusive: " << inconclusive << "\n";

    // Positive control: the same chains *do* deliver their service label
    // (so the NOs above are meaningful, not vacuous).
    std::size_t delivered = 0;
    const std::size_t sample = std::min<std::size_t>(10, synth.service_labels.size());
    for (std::size_t i = 0; i < sample; ++i) {
        const auto& label_name = net.labels.name_of(synth.service_labels[i]);
        const auto text = "<[" + label_name + "] ip> .+ <smpls ip> 0";
        const auto result = verify::verify(net, query::parse_query(text, net), {});
        if (result.answer == verify::Answer::Yes) ++delivered;
    }
    std::cout << "positive control: " << delivered << "/" << sample
              << " sampled chains deliver their service label\n";
    return leaks == 0 ? 0 : 1;
}
