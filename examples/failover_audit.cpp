// What-if failover audit: sweep the failure budget k and watch reachability
// and witness quality degrade or survive.
//
// For a set of edge-router pairs on a zoo-like network, this example asks
// the same reachability query at k = 0, 1, 2 and reports, per budget, the
// answer plus the minimum number of hops and failures a witness needs —
// exactly the what-if questions an operator asks before a maintenance
// window ("if these links can fail, does traffic still arrive, and how much
// longer does the path get?").
//
//   $ ./failover_audit

#include <iomanip>
#include <iostream>

#include "model/quantity.hpp"
#include "synthesis/networks.hpp"
#include "synthesis/queries.hpp"
#include "verify/engine.hpp"

int main() {
    using namespace aalwines;

    const auto instance = synthesis::make_zoo_like(13); // a backbone-style net
    const auto& synth = instance.net;
    const auto& net = synth.network;
    std::cout << "network: " << instance.name << " — " << net.topology.router_count()
              << " routers, " << net.routing.rule_count() << " rules\n\n";

    const auto weights = parse_weight_expression("hops, failures");
    std::cout << std::left << std::setw(44) << "pair" << std::setw(6) << "k"
              << std::setw(14) << "answer" << "min (hops, failures)\n";

    const std::size_t pairs = std::min<std::size_t>(4, synth.lsp_pairs.size());
    for (std::size_t i = 0; i < pairs; ++i) {
        // Audit provisioned LSP pairs (queries on unprovisioned pairs are
        // trivially NO).
        const auto& [ra, rb] = synth.lsp_pairs[i * 7 % synth.lsp_pairs.size()];
        const auto a = net.topology.router_name(ra);
        const auto b = net.topology.router_name(rb);
        for (const std::uint64_t k : {0, 1, 2}) {
            const auto text =
                "<ip> [.#" + a + "] .* [.#" + b + "] <ip> " + std::to_string(k);
            const auto query = query::parse_query(text, net);
            verify::VerifyOptions options;
            options.engine = verify::EngineKind::Weighted;
            options.weights = &weights;
            const auto result = verify::verify(net, query, options);
            std::cout << std::left << std::setw(44) << (a + " -> " + b) << std::setw(6)
                      << k << std::setw(14) << verify::to_string(result.answer);
            if (result.answer == verify::Answer::Yes) {
                std::cout << "(";
                for (std::size_t j = 0; j < result.weight.size(); ++j)
                    std::cout << (j ? ", " : "") << result.weight[j];
                std::cout << ")";
            }
            std::cout << "\n";
        }
    }

    // The dual engine also certifies *negative* what-ifs: traffic with an
    // unknown service label is dropped no matter which k links fail.
    std::cout << "\nnegative audit (conclusive NO expected):\n";
    const auto a = net.topology.router_name(synth.edge_routers[0]);
    const auto text = "<[unknownsvc] ip> [.#" + a + "] .+ <smpls ip> 2";
    const auto result = verify::verify(net, query::parse_query(text, net), {});
    std::cout << "  " << text << " -> " << verify::to_string(result.answer) << "\n";
    return 0;
}
