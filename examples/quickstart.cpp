// Quickstart: the paper's running example (Figure 1) end to end.
//
// Builds the five-router network of Figure 1a/1b programmatically, verifies
// the queries φ0..φ4 of Figure 1d with the dual engine, and solves the §3
// minimum-witness problem for the weight vector (Hops, Failures+3·Tunnels).
//
//   $ ./quickstart

#include <iostream>

#include "model/quantity.hpp"
#include "synthesis/dataplane.hpp"
#include "verify/engine.hpp"

int main() {
    using namespace aalwines;

    const Network net = synthesis::make_figure1_network();
    std::cout << "Figure 1 network: " << net.topology.router_count() << " routers, "
              << net.topology.link_count() << " links, " << net.routing.rule_count()
              << " forwarding rules\n\n";

    const std::vector<std::pair<std::string, std::string>> queries = {
        {"phi0", "<ip> [.#v0] .* [v3#.] <ip> 0"},
        {"phi1", "<ip> [.#v0] [^v2#v3]* [v3#.] <ip> 2"},
        {"phi2", "<s40 ip> [.#v0] .* [v3#.] <smpls ip> 0"},
        {"phi3", "<s40 ip> [.#v0] .* [v3#.] <mpls+ smpls ip> 1"},
        {"phi4", "<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1"},
    };

    for (const auto& [name, text] : queries) {
        const auto query = query::parse_query(text, net);
        const auto result = verify::verify(net, query, {});
        std::cout << name << " = " << text << "\n  answer: "
                  << verify::to_string(result.answer) << "\n";
        if (result.trace)
            std::cout << "  witness:\n" << display_trace(net, *result.trace);
        std::cout << "\n";
    }

    // Problem 2 (minimum witness): minimise (Hops, Failures + 3*Tunnels)
    // over the witnesses of φ4 — the paper's §3 example, answer σ3 = (5, 0).
    const auto weights = parse_weight_expression("hops, failures + 3*tunnels");
    verify::VerifyOptions options;
    options.engine = verify::EngineKind::Weighted;
    options.weights = &weights;
    const auto query =
        query::parse_query("<smpls? ip> [.#v0] . . . .* [v3#.] <smpls? ip> 1", net);
    const auto result = verify::verify(net, query, options);
    std::cout << "minimum witness for (" << to_string(weights) << "): weight (";
    for (std::size_t i = 0; i < result.weight.size(); ++i)
        std::cout << (i ? ", " : "") << result.weight[i];
    std::cout << ")\n";
    if (result.trace) std::cout << display_trace(net, *result.trace);
    return result.answer == verify::Answer::Yes ? 0 : 1;
}
