#pragma once
// Routing table τ : E × L → (2^(E×Op*))*  (paper, Definition 2).
//
// For every (incoming link, top-of-stack label) the table yields a priority-
// ordered sequence of traffic-engineering groups; each group is a set of
// (outgoing link, operation sequence) alternatives among which the router
// chooses nondeterministically.  Lower group index = higher priority; a
// group is only consulted when every link of all higher-priority groups has
// failed (local fast-failover semantics).

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/label.hpp"
#include "model/topology.hpp"

namespace aalwines {

/// A single MPLS label-stack operation.
struct Op {
    enum class Kind : std::uint8_t { Push, Swap, Pop };
    Kind kind = Kind::Pop;
    Label label = k_invalid_label; ///< operand for Push/Swap; unused for Pop

    [[nodiscard]] static Op push(Label l) { return {Kind::Push, l}; }
    [[nodiscard]] static Op swap(Label l) { return {Kind::Swap, l}; }
    [[nodiscard]] static Op pop() { return {Kind::Pop, k_invalid_label}; }

    bool operator==(const Op&) const = default;
};

/// Net stack-height change of an operation sequence (pushes minus pops).
[[nodiscard]] int stack_delta(const std::vector<Op>& ops);

/// Number of tunnels opened: the positive part of the stack-height increase,
/// counted push-by-push (matches Tunnels(σ) of paper §3 per forwarding step).
[[nodiscard]] std::uint64_t tunnels_opened(const std::vector<Op>& ops);

[[nodiscard]] std::string describe_ops(const LabelTable& labels, const std::vector<Op>& ops);

/// One (outgoing link, operation sequence) alternative within a TE group.
struct ForwardingRule {
    LinkId out_link = k_invalid_id;
    std::vector<Op> ops;

    bool operator==(const ForwardingRule&) const = default;
};

/// A traffic-engineering group: the set of equally-preferred alternatives.
using TeGroup = std::vector<ForwardingRule>;

/// Priority-ordered sequence of TE groups for one (link, label) pair.
using RoutingEntry = std::vector<TeGroup>;

class RoutingTable {
public:
    /// Append a rule to the group with 1-based `priority` for (in_link, label).
    /// Missing intermediate groups are created empty and skipped at lookup.
    void add_rule(LinkId in_link, Label label, std::uint32_t priority,
                  LinkId out_link, std::vector<Op> ops);

    /// The entry for (in_link, label), or nullptr when none exists.
    [[nodiscard]] const RoutingEntry* entry(LinkId in_link, Label label) const;

    /// Invoke `fn(in_link, label, entry)` for every entry (iteration order is
    /// unspecified but deterministic for a fixed table).
    void for_each(const std::function<void(LinkId, Label, const RoutingEntry&)>& fn) const;

    /// Total number of forwarding rules across all entries and groups.
    [[nodiscard]] std::size_t rule_count() const;

    /// Number of (link, label) entries.
    [[nodiscard]] std::size_t entry_count() const noexcept { return _entries.size(); }

    /// Unordered view of every entry (hash order — NOT deterministic across
    /// processes; use for_each wherever order can leak into results).
    [[nodiscard]] const std::unordered_map<std::uint64_t, RoutingEntry>& entries() const noexcept {
        return _entries;
    }

    /// Check referential integrity against `topology` and header-validity of
    /// every operation sequence: each rule's out-link must leave the router
    /// the in-link enters.  Throws model_error on violation.
    void validate(const Topology& topology) const;

private:
    static std::uint64_t key_of(LinkId in_link, Label label) {
        return (static_cast<std::uint64_t>(in_link) << 32) | label;
    }

    std::unordered_map<std::uint64_t, RoutingEntry> _entries;
};

/// A complete MPLS network: topology, label alphabet and routing function
/// (paper, Definition 2).
struct Network {
    std::string name;
    Topology topology;
    LabelTable labels;
    RoutingTable routing;
};

} // namespace aalwines
