#pragma once
// Routing table τ : E × L → (2^(E×Op*))*  (paper, Definition 2).
//
// For every (incoming link, top-of-stack label) the table yields a priority-
// ordered sequence of traffic-engineering groups; each group is a set of
// (outgoing link, operation sequence) alternatives among which the router
// chooses nondeterministically.  Lower group index = higher priority; a
// group is only consulted when every link of all higher-priority groups has
// failed (local fast-failover semantics).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "model/label.hpp"
#include "model/topology.hpp"

namespace aalwines {

/// A single MPLS label-stack operation.
struct Op {
    enum class Kind : std::uint8_t { Push, Swap, Pop };
    Kind kind = Kind::Pop;
    Label label = k_invalid_label; ///< operand for Push/Swap; unused for Pop

    [[nodiscard]] static Op push(Label l) { return {Kind::Push, l}; }
    [[nodiscard]] static Op swap(Label l) { return {Kind::Swap, l}; }
    [[nodiscard]] static Op pop() { return {Kind::Pop, k_invalid_label}; }

    bool operator==(const Op&) const = default;
};

/// Net stack-height change of an operation sequence (pushes minus pops).
[[nodiscard]] int stack_delta(const std::vector<Op>& ops);

/// Number of tunnels opened: the positive part of the stack-height increase,
/// counted push-by-push (matches Tunnels(σ) of paper §3 per forwarding step).
[[nodiscard]] std::uint64_t tunnels_opened(const std::vector<Op>& ops);

[[nodiscard]] std::string describe_ops(const LabelTable& labels, const std::vector<Op>& ops);

/// One (outgoing link, operation sequence) alternative within a TE group.
struct ForwardingRule {
    LinkId out_link = k_invalid_id;
    std::vector<Op> ops;

    bool operator==(const ForwardingRule&) const = default;
};

/// A traffic-engineering group: the set of equally-preferred alternatives.
using TeGroup = std::vector<ForwardingRule>;

/// Priority-ordered sequence of TE groups for one (link, label) pair.
using RoutingEntry = std::vector<TeGroup>;

/// Entries are held behind shared_ptr in a sorted flat vector, so copying a
/// table is a *structural* copy: one contiguous allocation plus refcount
/// bumps, the entries themselves are shared.  Mutators clone an entry
/// before touching it when any other table still references it
/// (copy-on-write) — this is what makes the what-if delta overlay
/// (src/delta/) cheap: a patched generation shares every untouched entry
/// with its base, and copying a network costs O(entries) pointer copies,
/// not O(rules) deep copies.  Inserts land in a small unsorted tail that is
/// merged into the sorted body once it grows past a threshold (amortised
/// O(n log n) bulk construction, O(log n) lookups).
class RoutingTable {
public:
    /// Append a rule to the group with 1-based `priority` for (in_link, label).
    /// Missing intermediate groups are created empty and skipped at lookup.
    void add_rule(LinkId in_link, Label label, std::uint32_t priority,
                  LinkId out_link, std::vector<Op> ops);

    /// Remove the whole entry for (in_link, label); false when none exists.
    bool remove_entry(LinkId in_link, Label label);

    /// Remove every forwarding rule matching `out_link` (and, when non-null,
    /// exactly `ops`) from the entry's groups.  Emptied groups stay in place
    /// — lookup already skips them, and erasing one would shift the
    /// priorities of the groups below.  An entry left with no rules at all
    /// is erased.  Returns the number of rules removed.
    std::size_t remove_rule(LinkId in_link, Label label, LinkId out_link,
                            const std::vector<Op>* ops = nullptr);

    /// The entry for (in_link, label), or nullptr when none exists.
    [[nodiscard]] const RoutingEntry* entry(LinkId in_link, Label label) const;

    /// Invoke `fn(in_link, label, entry)` for every entry (iteration order is
    /// unspecified but deterministic for a fixed table).
    void for_each(const std::function<void(LinkId, Label, const RoutingEntry&)>& fn) const;

    /// Invoke `fn(label, entry)` for every entry of one incoming link, in the
    /// same relative order `for_each` would visit them (so a per-link index
    /// rebuilt through this matches one built by a full scan).
    void for_each_of(LinkId in_link,
                     const std::function<void(Label, const RoutingEntry&)>& fn) const;

    /// Total number of forwarding rules across all entries and groups.
    [[nodiscard]] std::size_t rule_count() const;

    /// Number of (link, label) entries.
    [[nodiscard]] std::size_t entry_count() const noexcept {
        return _sorted.size() + _tail.size();
    }

    /// Check referential integrity against `topology` and header-validity of
    /// every operation sequence: each rule's out-link must leave the router
    /// the in-link enters.  Throws model_error on violation.
    void validate(const Topology& topology) const;

private:
    /// One (key, shared entry) pair; the entry handle is never null.
    using Slot = std::pair<std::uint64_t, std::shared_ptr<RoutingEntry>>;

    static std::uint64_t key_of(LinkId in_link, Label label) {
        return (static_cast<std::uint64_t>(in_link) << 32) | label;
    }

    [[nodiscard]] const Slot* find_slot(std::uint64_t key) const;
    [[nodiscard]] Slot* find_slot(std::uint64_t key);

    /// Merge `_tail` into `_sorted` (keys are unique across both).
    void compact();

    /// The entry in `slot`, exclusively owned by this table — clones it
    /// first when another table still shares it.  (use_count() == 1 proves
    /// exclusivity: a reference can only be gained by copying a table that
    /// already holds one, so a sole reference can never grow behind our
    /// back.)
    static RoutingEntry& own_entry(Slot& slot);

    std::vector<Slot> _sorted; ///< key-ascending
    std::vector<Slot> _tail;   ///< recent inserts, unsorted, bounded
};

/// A complete MPLS network: topology, label alphabet and routing function
/// (paper, Definition 2).
struct Network {
    std::string name;
    Topology topology;
    LabelTable labels;
    RoutingTable routing;
};

} // namespace aalwines
