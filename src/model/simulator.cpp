#include "model/simulator.hpp"

namespace aalwines {

std::vector<ForwardingRule> Simulator::active_choices(LinkId link,
                                                      const Header& header) const {
    std::vector<ForwardingRule> choices;
    if (header.empty()) return choices;
    const auto* groups = _network->routing.entry(link, header.back());
    if (groups == nullptr) return choices;
    for (const auto& group : *groups) {
        for (const auto& rule : group)
            if (is_active(rule.out_link)) choices.push_back(rule);
        if (!choices.empty()) return choices; // first active group wins
    }
    return choices;
}

std::optional<TraceEntry> Simulator::step(const TraceEntry& at,
                                          const ForwardingRule& rule) const {
    auto rewritten = apply_ops(_network->labels, at.header, rule.ops);
    if (!rewritten) return std::nullopt;
    return TraceEntry{rule.out_link, std::move(*rewritten)};
}

Trace Simulator::run(LinkId start_link, Header header, std::mt19937_64& rng,
                     std::size_t max_steps) const {
    Trace trace;
    if (!is_active(start_link) || !is_valid_header(_network->labels, header))
        return trace;
    trace.entries.push_back({start_link, std::move(header)});
    for (std::size_t i = 0; i < max_steps; ++i) {
        const auto& at = trace.entries.back();
        const auto choices = active_choices(at.link, at.header);
        if (choices.empty()) return trace; // delivered or dropped
        const auto& rule = choices[rng() % choices.size()];
        auto next = step(at, rule);
        if (!next) return trace; // undefined rewrite: packet dropped
        trace.entries.push_back(std::move(*next));
    }
    return trace;
}

std::string query_for_trace(const Network& network, const Trace& trace,
                            std::uint64_t max_failures) {
    const auto& topology = network.topology;
    const auto& labels = network.labels;
    auto header_atoms = [&](const Header& header) {
        std::string out;
        for (auto it = header.rbegin(); it != header.rend(); ++it) {
            if (!out.empty()) out += " ";
            out += "'" + labels.name_of(*it) + "'";
        }
        return out;
    };
    std::string text = "<" + header_atoms(trace.entries.front().header) + "> ";
    for (const auto& entry : trace.entries) {
        const auto& link = topology.link(entry.link);
        text += "[" + topology.router_name(link.source) + "." +
                topology.interface(link.source_interface).name + "#" +
                topology.router_name(link.target) + "." +
                topology.interface(link.target_interface).name + "] ";
    }
    text += "<" + header_atoms(trace.entries.back().header) + "> " +
            std::to_string(max_failures);
    return text;
}

} // namespace aalwines
