#include "model/label.hpp"

#include "util/check.hpp"

namespace aalwines {

std::string_view to_string(LabelType type) {
    switch (type) {
        case LabelType::Mpls: return "mpls";
        case LabelType::MplsBos: return "smpls";
        case LabelType::Ip: return "ip";
    }
    return "?";
}

namespace {
std::uint64_t key_of(LabelType type, std::uint32_t name_id) {
    return (static_cast<std::uint64_t>(type) << 32) | name_id;
}
} // namespace

Label LabelTable::add(LabelType type, std::string_view name) {
    const auto name_id = _names.intern(name);
    const auto key = key_of(type, name_id);
    if (auto it = _by_type_name.find(key); it != _by_type_name.end()) return it->second;
    const Label label = static_cast<Label>(_types.size());
    _types.push_back(type);
    _name_ids.push_back(name_id);
    _by_type_name.emplace(key, label);
    return label;
}

std::optional<Label> LabelTable::find(LabelType type, std::string_view name) const {
    const auto name_id = _names.find(name);
    if (!name_id) return std::nullopt;
    if (auto it = _by_type_name.find(key_of(type, *name_id)); it != _by_type_name.end())
        return it->second;
    return std::nullopt;
}

std::vector<Label> LabelTable::find_by_name(std::string_view name) const {
    std::vector<Label> out;
    for (const auto type : {LabelType::Mpls, LabelType::MplsBos, LabelType::Ip})
        if (auto label = find(type, name)) out.push_back(*label);
    return out;
}

LabelType LabelTable::type_of(Label label) const {
    AALWINES_CHECK(label < _types.size(), "unknown label id " + std::to_string(label));
    return _types[label];
}

const std::string& LabelTable::name_of(Label label) const {
    AALWINES_CHECK(label < _name_ids.size(), "unknown label id " + std::to_string(label));
    return _names.at(_name_ids[label]);
}

std::string LabelTable::display(Label label) const {
    if (type_of(label) == LabelType::MplsBos) return "s" + name_of(label);
    return name_of(label);
}

std::vector<Label> LabelTable::of_type(LabelType type) const {
    std::vector<Label> out;
    for (Label label = 0; label < _types.size(); ++label)
        if (_types[label] == type) out.push_back(label);
    return out;
}

} // namespace aalwines
