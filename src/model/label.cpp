#include "model/label.hpp"

#include "util/check.hpp"

namespace aalwines {

std::string_view to_string(LabelType type) {
    switch (type) {
        case LabelType::Mpls: return "mpls";
        case LabelType::MplsBos: return "smpls";
        case LabelType::Ip: return "ip";
    }
    return "?";
}

namespace {
std::uint64_t key_of(LabelType type, std::uint32_t name_id) {
    return (static_cast<std::uint64_t>(type) << 32) | name_id;
}
} // namespace

LabelTable::LabelTable() : _impl(std::make_shared<Impl>()) {}

LabelTable::Impl& LabelTable::own() {
    if (_impl.use_count() > 1) _impl = std::make_shared<Impl>(*_impl);
    return *_impl;
}

Label LabelTable::add(LabelType type, std::string_view name) {
    // Resolve against the shared state first: interning an *existing* label
    // must not clone (it is a pure lookup).
    if (const auto existing = find(type, name)) return *existing;
    auto& impl = own();
    const auto name_id = impl.names.intern(name);
    const auto key = key_of(type, name_id);
    const Label label = static_cast<Label>(impl.types.size());
    impl.types.push_back(type);
    impl.name_ids.push_back(name_id);
    impl.by_type_name.emplace(key, label);
    return label;
}

std::optional<Label> LabelTable::find(LabelType type, std::string_view name) const {
    const auto name_id = _impl->names.find(name);
    if (!name_id) return std::nullopt;
    if (auto it = _impl->by_type_name.find(key_of(type, *name_id));
        it != _impl->by_type_name.end())
        return it->second;
    return std::nullopt;
}

std::vector<Label> LabelTable::find_by_name(std::string_view name) const {
    std::vector<Label> out;
    for (const auto type : {LabelType::Mpls, LabelType::MplsBos, LabelType::Ip})
        if (auto label = find(type, name)) out.push_back(*label);
    return out;
}

LabelType LabelTable::type_of(Label label) const {
    AALWINES_CHECK(label < _impl->types.size(), "unknown label id " + std::to_string(label));
    return _impl->types[label];
}

const std::string& LabelTable::name_of(Label label) const {
    AALWINES_CHECK(label < _impl->name_ids.size(),
                   "unknown label id " + std::to_string(label));
    return _impl->names.at(_impl->name_ids[label]);
}

std::string LabelTable::display(Label label) const {
    if (type_of(label) == LabelType::MplsBos) return "s" + name_of(label);
    return name_of(label);
}

std::vector<Label> LabelTable::of_type(LabelType type) const {
    std::vector<Label> out;
    for (Label label = 0; label < _impl->types.size(); ++label)
        if (_impl->types[label] == type) out.push_back(label);
    return out;
}

} // namespace aalwines
