#pragma once
// Concrete dataplane simulator: executes packets against the forwarding
// tables under an explicit failure set, producing real traces
// (Definition 4 made operational).
//
// The simulator serves two purposes: it lets examples and operators replay
// "what exactly happens to this packet if these links are down", and it
// drives the fuzzing tests — every simulated trace is by construction a
// witness for the query describing it, so the verifier must answer YES.

#include <cstdint>
#include <optional>
#include <random>
#include <set>
#include <vector>

#include "model/trace.hpp"

namespace aalwines {

/// A concrete failure scenario: the set F of failed links.
using FailureSet = std::set<LinkId>;

class Simulator {
public:
    Simulator(const Network& network, FailureSet failed)
        : _network(&network), _failed(std::move(failed)) {}

    /// The forwarding alternatives available for a packet that arrived on
    /// `link` with `header`: A(τ(e, head(h))) of the paper — the first
    /// priority group with an active link, restricted to active links.
    [[nodiscard]] std::vector<ForwardingRule> active_choices(LinkId link,
                                                             const Header& header) const;

    /// One forwarding step: apply `rule` to the packet.  Returns the next
    /// trace entry, or nullopt when the header rewrite is undefined.
    [[nodiscard]] std::optional<TraceEntry> step(const TraceEntry& at,
                                                 const ForwardingRule& rule) const;

    /// Run the packet from (link, header) for at most `max_steps`, choosing
    /// uniformly among alternatives with `rng`.  Stops when no rule applies
    /// (delivered or dropped).  The returned trace includes the start entry
    /// and is always a valid trace of the network under F.
    [[nodiscard]] Trace run(LinkId start_link, Header header, std::mt19937_64& rng,
                            std::size_t max_steps = 64) const;

    [[nodiscard]] const FailureSet& failed() const noexcept { return _failed; }
    [[nodiscard]] bool is_active(LinkId link) const {
        return !_failed.contains(link) && _network->topology.link_up(link);
    }

private:
    const Network* _network;
    FailureSet _failed;
};

/// Build the exact query this trace witnesses: initial header, the precise
/// link sequence and final header, with `max_failures` as given.  Verifying
/// it must answer YES whenever the trace is feasible within the budget.
[[nodiscard]] std::string query_for_trace(const Network& network, const Trace& trace,
                                          std::uint64_t max_failures);

} // namespace aalwines
