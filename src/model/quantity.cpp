#include "model/quantity.hpp"

#include <cctype>

#include "util/errors.hpp"

namespace aalwines {

std::string_view to_string(Quantity quantity) {
    switch (quantity) {
        case Quantity::Links: return "links";
        case Quantity::Hops: return "hops";
        case Quantity::Distance: return "distance";
        case Quantity::Failures: return "failures";
        case Quantity::Tunnels: return "tunnels";
    }
    return "?";
}

WeightExpr weight_of(Quantity quantity) {
    WeightExpr expr;
    expr.priorities.push_back({{{1, quantity}}});
    return expr;
}

std::uint64_t evaluate_atomic(const Network& network, const Trace& trace,
                              Quantity quantity) {
    const auto& topology = network.topology;
    switch (quantity) {
        case Quantity::Links:
            return trace.size();
        case Quantity::Hops: {
            // Counted per step (self-loops excluded); additive so it can be
            // carried on PDA rules, matching the paper's example values.
            std::uint64_t hops = 0;
            for (const auto& entry : trace.entries) {
                const auto& link = topology.link(entry.link);
                if (link.source != link.target) ++hops;
            }
            return hops;
        }
        case Quantity::Distance: {
            std::uint64_t distance = 0;
            for (const auto& entry : trace.entries)
                distance += topology.link(entry.link).distance;
            return distance;
        }
        case Quantity::Failures:
            // Budget "infinite": we only want Failures(σ), not the check.
            return check_feasibility(network, trace, UINT64_MAX).failures_total;
        case Quantity::Tunnels: {
            std::uint64_t tunnels = 0;
            for (std::size_t i = 0; i + 1 < trace.entries.size(); ++i) {
                const auto current = trace.entries[i].header.size();
                const auto next = trace.entries[i + 1].header.size();
                if (next > current) tunnels += next - current;
            }
            return tunnels;
        }
    }
    return 0;
}

std::uint64_t evaluate(const Network& network, const Trace& trace, const LinearExpr& expr) {
    std::uint64_t total = 0;
    for (const auto& term : expr.terms)
        total += term.coefficient * evaluate_atomic(network, trace, term.quantity);
    return total;
}

std::vector<std::uint64_t> evaluate(const Network& network, const Trace& trace,
                                    const WeightExpr& expr) {
    std::vector<std::uint64_t> out;
    out.reserve(expr.size());
    for (const auto& linear : expr.priorities)
        out.push_back(evaluate(network, trace, linear));
    return out;
}

namespace {
std::uint64_t atomic_step_weight(const Network& network, Quantity quantity,
                                 LinkId out_link, const std::vector<Op>& ops,
                                 std::uint64_t local_failures) {
    const auto& link = network.topology.link(out_link);
    switch (quantity) {
        case Quantity::Links: return 1;
        case Quantity::Hops: return link.source != link.target ? 1 : 0;
        case Quantity::Distance: return link.distance;
        case Quantity::Failures: return local_failures;
        case Quantity::Tunnels: return tunnels_opened(ops);
    }
    return 0;
}
} // namespace

std::uint64_t step_weight(const Network& network, const LinearExpr& expr, LinkId out_link,
                          const std::vector<Op>& ops, std::uint64_t local_failures) {
    std::uint64_t total = 0;
    for (const auto& term : expr.terms)
        total += term.coefficient *
                 atomic_step_weight(network, term.quantity, out_link, ops, local_failures);
    return total;
}

std::uint64_t initial_weight(const Network& network, const LinearExpr& expr,
                             LinkId first_link) {
    // The first trace entry contributes to Links/Hops/Distance but involves
    // no forwarding decision, hence no Failures or Tunnels.
    std::uint64_t total = 0;
    const auto& link = network.topology.link(first_link);
    for (const auto& term : expr.terms) {
        switch (term.quantity) {
            case Quantity::Links: total += term.coefficient; break;
            case Quantity::Hops:
                if (link.source != link.target) total += term.coefficient;
                break;
            case Quantity::Distance: total += term.coefficient * link.distance; break;
            case Quantity::Failures:
            case Quantity::Tunnels: break;
        }
    }
    return total;
}

namespace {

class WeightParser {
public:
    explicit WeightParser(std::string_view text) : _text(text) {}

    WeightExpr parse() {
        WeightExpr expr;
        skip_ws();
        if (at_end()) throw parse_error("empty weight expression");
        expr.priorities.push_back(parse_linear());
        while (!at_end()) {
            expect(',');
            expr.priorities.push_back(parse_linear());
        }
        return expr;
    }

private:
    std::string_view _text;
    std::size_t _pos = 0;

    [[nodiscard]] bool at_end() const { return _pos >= _text.size(); }
    [[nodiscard]] char peek() const { return _text[_pos]; }

    void skip_ws() {
        while (!at_end() && std::isspace(static_cast<unsigned char>(peek()))) ++_pos;
    }

    void expect(char c) {
        skip_ws();
        if (at_end() || peek() != c)
            throw parse_error(std::string("expected '") + c + "' in weight expression");
        ++_pos;
    }

    LinearExpr parse_linear() {
        LinearExpr expr;
        expr.terms.push_back(parse_term());
        for (;;) {
            skip_ws();
            if (at_end() || peek() != '+') return expr;
            ++_pos;
            expr.terms.push_back(parse_term());
        }
    }

    LinearTerm parse_term() {
        skip_ws();
        LinearTerm term;
        if (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
            term.coefficient = parse_number();
            expect('*');
        }
        term.quantity = parse_quantity();
        skip_ws();
        if (!at_end() && peek() == '*') {
            ++_pos;
            skip_ws();
            term.coefficient *= parse_number();
        }
        return term;
    }

    std::uint64_t parse_number() {
        skip_ws();
        if (at_end() || !std::isdigit(static_cast<unsigned char>(peek())))
            throw parse_error("expected a number in weight expression");
        std::uint64_t value = 0;
        while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
            value = value * 10 + static_cast<std::uint64_t>(peek() - '0');
            ++_pos;
        }
        return value;
    }

    Quantity parse_quantity() {
        skip_ws();
        std::string word;
        while (!at_end() && std::isalpha(static_cast<unsigned char>(peek()))) {
            word.push_back(static_cast<char>(
                std::tolower(static_cast<unsigned char>(peek()))));
            ++_pos;
        }
        if (word == "links") return Quantity::Links;
        if (word == "hops") return Quantity::Hops;
        if (word == "distance" || word == "latency") return Quantity::Distance;
        if (word == "failures") return Quantity::Failures;
        if (word == "tunnels") return Quantity::Tunnels;
        throw parse_error("unknown quantity '" + word + "'");
    }
};

} // namespace

WeightExpr parse_weight_expression(std::string_view text) {
    return WeightParser(text).parse();
}

std::string to_string(const WeightExpr& expr) {
    std::string out;
    for (const auto& linear : expr.priorities) {
        if (!out.empty()) out += ", ";
        bool first = true;
        for (const auto& term : linear.terms) {
            if (!first) out += " + ";
            first = false;
            if (term.coefficient != 1) out += std::to_string(term.coefficient) + "*";
            out += to_string(term.quantity);
        }
    }
    return out;
}

} // namespace aalwines
