#pragma once
// Valid MPLS headers and the header-rewrite function H (paper §2.2, Def. 3).
//
// A header is a label stack; we store it bottom-first, i.e. `back()` is the
// top-of-stack (the left-most label in the paper's notation).  Valid headers
// are exactly `ip` or `ip · smpls · mpls*` bottom-to-top.  The rewrite
// function is partial: operation sequences that would leave the valid-header
// language are undefined, which `apply_ops` signals with nullopt.

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "model/label.hpp"
#include "model/routing.hpp"

namespace aalwines {

/// Label stack; back() is the top of the stack.
using Header = std::vector<Label>;

/// Membership in the valid-header language H = L_IP ∪ L_M* L_M⊥ L_IP.
[[nodiscard]] bool is_valid_header(const LabelTable& labels, const Header& header);

/// Whether a single operation is defined on a valid header whose top label
/// is `top`.  These local checks are exactly the definedness conditions of
/// Definition 3, so applying an applicable op to a valid header yields a
/// valid header; the PDA translation instantiates rules only where this
/// predicate holds.
[[nodiscard]] bool op_applicable(const LabelTable& labels, Label top, const Op& op);

/// Apply one operation to the header (precondition: applicable, non-empty).
void apply_op_unchecked(Header& header, const Op& op);

/// H(header, ops): apply the sequence, or nullopt where H is undefined.
[[nodiscard]] std::optional<Header> apply_ops(const LabelTable& labels, Header header,
                                              std::span<const Op> ops);

/// Paper-style rendering, top first: "30 o s21 o ip1".
[[nodiscard]] std::string display_header(const LabelTable& labels, const Header& header);

} // namespace aalwines
