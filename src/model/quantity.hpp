#pragma once
// Quantitative trace measures (paper §3): atomic quantities, linear
// expressions over them, and lexicographically ordered expression vectors
// used for the minimum-witness problem (Problem 2).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "model/trace.hpp"

namespace aalwines {

/// Atomic quantities of a trace (paper §3).
enum class Quantity : std::uint8_t {
    Links,    ///< trace length n
    Hops,     ///< steps over non-self-loop links
    Distance, ///< Σ d(e_i) for the link distance function
    Failures, ///< Σ |failed(i)| (local failures enabling each step)
    Tunnels,  ///< Σ max(0, |h_{i+1}| - |h_i|)
};

[[nodiscard]] std::string_view to_string(Quantity quantity);

/// `coefficient * quantity` term of a linear expression.
struct LinearTerm {
    std::uint64_t coefficient = 1;
    Quantity quantity = Quantity::Links;

    bool operator==(const LinearTerm&) const = default;
};

/// expr ::= p | a * expr | expr + expr  — normalised to a sum of terms.
struct LinearExpr {
    std::vector<LinearTerm> terms;

    bool operator==(const LinearExpr&) const = default;
};

/// Priority vector of linear expressions, compared lexicographically.
struct WeightExpr {
    std::vector<LinearExpr> priorities;

    [[nodiscard]] bool empty() const noexcept { return priorities.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return priorities.size(); }

    bool operator==(const WeightExpr&) const = default;
};

/// Shorthand: a single-priority, single-term weight.
[[nodiscard]] WeightExpr weight_of(Quantity quantity);

/// Evaluate an atomic quantity on a full trace.  `Failures` uses the
/// feasibility analysis (lowest matching TE group per step).
[[nodiscard]] std::uint64_t evaluate_atomic(const Network& network, const Trace& trace,
                                            Quantity quantity);

[[nodiscard]] std::uint64_t evaluate(const Network& network, const Trace& trace,
                                     const LinearExpr& expr);

[[nodiscard]] std::vector<std::uint64_t> evaluate(const Network& network, const Trace& trace,
                                                  const WeightExpr& expr);

/// Per-step contribution of one linear expression, used to weight PDA rules:
/// the step traverses `out_link` applying `ops` after `local_failures`
/// higher-priority links failed.
[[nodiscard]] std::uint64_t step_weight(const Network& network, const LinearExpr& expr,
                                        LinkId out_link, const std::vector<Op>& ops,
                                        std::uint64_t local_failures);

/// Contribution of the initial link of a trace (Links/Hops/Distance only).
[[nodiscard]] std::uint64_t initial_weight(const Network& network, const LinearExpr& expr,
                                           LinkId first_link);

/// Parse e.g. "hops, failures + 3*tunnels" into a weight vector.
/// Accepted atoms: links, hops, distance, failures, tunnels (case-insensitive).
[[nodiscard]] WeightExpr parse_weight_expression(std::string_view text);

[[nodiscard]] std::string to_string(const WeightExpr& expr);

} // namespace aalwines
