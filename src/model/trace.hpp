#pragma once
// Network traces (paper, Definition 4) and the polynomial-time feasibility
// check used by the dual engine: given a candidate trace, decide whether
// some failure set F with |F| <= k enables it.

#include <cstdint>
#include <string>
#include <vector>

#include "model/header.hpp"
#include "model/routing.hpp"

namespace aalwines {

/// One step of a trace: the packet traversed `link` carrying `header`.
struct TraceEntry {
    LinkId link = k_invalid_id;
    Header header;

    bool operator==(const TraceEntry&) const = default;
};

/// A routing of one packet: sequence of (active link, header) pairs.
struct Trace {
    std::vector<TraceEntry> entries;

    [[nodiscard]] bool empty() const noexcept { return entries.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return entries.size(); }

    bool operator==(const Trace&) const = default;
};

/// Multi-line rendering of a trace for diagnostics and the CLI.
[[nodiscard]] std::string display_trace(const Network& network, const Trace& trace);

/// Outcome of checking a trace against the network under a failure budget.
struct Feasibility {
    bool feasible = false;
    std::string reason;                      ///< human-readable cause when infeasible
    std::vector<LinkId> required_failures;   ///< minimal F enabling the trace (sorted)
    std::uint64_t failures_total = 0;        ///< Failures(σ) = Σ_i |failed(i)|
};

/// Check Definition 4 plus the global failure budget: every consecutive pair
/// must be produced by the first TE group (under F) containing a matching
/// rule, F collects all higher-priority links, no used link may be in F, and
/// |F| <= max_failures.
///
/// Per step the candidate failed-link sets form an inclusion chain over the
/// group index, so greedily taking the lowest matching group is exact.
[[nodiscard]] Feasibility check_feasibility(const Network& network, const Trace& trace,
                                            std::uint64_t max_failures);

} // namespace aalwines
