#include "model/topology.hpp"

#include "util/check.hpp"
#include <cmath>
#include <numbers>

namespace aalwines {

double haversine_meters(const Coordinate& a, const Coordinate& b) {
    constexpr double earth_radius_m = 6371008.8;
    const double to_rad = std::numbers::pi / 180.0;
    const double lat1 = a.latitude * to_rad;
    const double lat2 = b.latitude * to_rad;
    const double dlat = (b.latitude - a.latitude) * to_rad;
    const double dlng = (b.longitude - a.longitude) * to_rad;
    const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                     std::cos(lat1) * std::cos(lat2) * std::sin(dlng / 2) * std::sin(dlng / 2);
    return 2.0 * earth_radius_m * std::asin(std::min(1.0, std::sqrt(h)));
}

RouterId Topology::add_router(std::string_view name) {
    std::string key(name);
    if (_router_ids.contains(key))
        throw model_error("duplicate router name '" + key + "'");
    const RouterId id = static_cast<RouterId>(_router_names.size());
    _router_ids.emplace(key, id);
    _router_names.push_back(std::move(key));
    _coordinates.emplace_back();
    _router_interfaces.emplace_back();
    _out_links.emplace_back();
    _in_links.emplace_back();
    return id;
}

InterfaceId Topology::add_interface(RouterId router, std::string_view name) {
    AALWINES_CHECK(router < _router_names.size(),
                   "unknown router id " + std::to_string(router));
    auto& table = _router_interfaces[router];
    std::string key(name);
    if (auto it = table.find(key); it != table.end()) return it->second;
    const InterfaceId id = static_cast<InterfaceId>(_interfaces.size());
    _interfaces.push_back({router, key});
    table.emplace(std::move(key), id);
    return id;
}

LinkId Topology::add_link(RouterId source, InterfaceId source_interface,
                          RouterId target, InterfaceId target_interface,
                          std::uint64_t distance) {
    if (_interfaces.at(source_interface).router != source)
        throw model_error("interface does not belong to source router '" +
                          router_name(source) + "'");
    if (_interfaces.at(target_interface).router != target)
        throw model_error("interface does not belong to target router '" +
                          router_name(target) + "'");
    const LinkId id = static_cast<LinkId>(_links.size());
    _links.push_back({id, source, target, source_interface, target_interface, distance});
    _out_links[source].push_back(id);
    _in_links[target].push_back(id);
    return id;
}

std::pair<LinkId, LinkId> Topology::add_duplex(RouterId a, std::string_view interface_on_a,
                                               RouterId b, std::string_view interface_on_b,
                                               std::uint64_t distance) {
    const auto ia = add_interface(a, interface_on_a);
    const auto ib = add_interface(b, interface_on_b);
    const auto forward = add_link(a, ia, b, ib, distance);
    const auto backward = add_link(b, ib, a, ia, distance);
    return {forward, backward};
}

void Topology::set_coordinate(RouterId router, Coordinate coordinate) {
    AALWINES_CHECK(router < _coordinates.size(),
                   "unknown router id " + std::to_string(router));
    _coordinates[router] = coordinate;
}

std::optional<Coordinate> Topology::coordinate(RouterId router) const {
    AALWINES_CHECK(router < _coordinates.size(),
                   "unknown router id " + std::to_string(router));
    return _coordinates[router];
}

void Topology::distances_from_coordinates() {
    for (auto& link : _links) {
        const auto a = _coordinates[link.source];
        const auto b = _coordinates[link.target];
        if (a && b)
            link.distance = static_cast<std::uint64_t>(std::llround(haversine_meters(*a, *b)));
    }
}

void Topology::set_distance(LinkId link, std::uint64_t distance) {
    _links.at(link).distance = distance;
}

void Topology::set_link_state(LinkId link, bool up) {
    if (link >= _links.size()) throw model_error("set_link_state: unknown link");
    if (up && link >= _link_down.size()) return; // already up, keep sparse
    if (_link_down.size() < _links.size()) _link_down.resize(_links.size(), false);
    _link_down[link] = !up;
}

std::size_t Topology::down_link_count() const {
    std::size_t down = 0;
    for (const auto flag : _link_down) down += flag ? 1 : 0;
    return down;
}

std::optional<RouterId> Topology::find_router(std::string_view name) const {
    if (auto it = _router_ids.find(std::string(name)); it != _router_ids.end())
        return it->second;
    return std::nullopt;
}

std::optional<InterfaceId> Topology::find_interface(RouterId router,
                                                    std::string_view name) const {
    AALWINES_CHECK(router < _router_interfaces.size(),
                   "unknown router id " + std::to_string(router));
    const auto& table = _router_interfaces[router];
    if (auto it = table.find(std::string(name)); it != table.end()) return it->second;
    return std::nullopt;
}

std::optional<LinkId> Topology::out_link_through(RouterId router,
                                                 std::string_view name) const {
    const auto iface = find_interface(router, name);
    if (!iface) return std::nullopt;
    for (const auto link_id : _out_links[router])
        if (_links[link_id].source_interface == *iface) return link_id;
    return std::nullopt;
}

std::optional<LinkId> Topology::in_link_through(RouterId router,
                                                std::string_view name) const {
    const auto iface = find_interface(router, name);
    if (!iface) return std::nullopt;
    for (const auto link_id : _in_links[router])
        if (_links[link_id].target_interface == *iface) return link_id;
    return std::nullopt;
}

const std::string& Topology::router_name(RouterId router) const {
    AALWINES_CHECK(router < _router_names.size(),
                   "unknown router id " + std::to_string(router));
    return _router_names[router];
}

const Interface& Topology::interface(InterfaceId id) const {
    AALWINES_CHECK(id < _interfaces.size(), "unknown interface id " + std::to_string(id));
    return _interfaces[id];
}

const Link& Topology::link(LinkId id) const {
    AALWINES_CHECK(id < _links.size(), "unknown link id " + std::to_string(id));
    return _links[id];
}

const std::vector<LinkId>& Topology::out_links(RouterId router) const {
    AALWINES_CHECK(router < _out_links.size(),
                   "unknown router id " + std::to_string(router));
    return _out_links[router];
}

const std::vector<LinkId>& Topology::in_links(RouterId router) const {
    AALWINES_CHECK(router < _in_links.size(),
                   "unknown router id " + std::to_string(router));
    return _in_links[router];
}

std::vector<LinkId> Topology::links_between(RouterId source, RouterId target) const {
    std::vector<LinkId> out;
    for (const auto link_id : _out_links[source])
        if (_links[link_id].target == target) out.push_back(link_id);
    return out;
}

std::string Topology::describe_link(LinkId id) const {
    const auto& l = link(id);
    return router_name(l.source) + "." + _interfaces[l.source_interface].name + " -> " +
           router_name(l.target) + "." + _interfaces[l.target_interface].name;
}

} // namespace aalwines
