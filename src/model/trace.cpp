#include "model/trace.hpp"

#include <algorithm>
#include <set>

namespace aalwines {

std::string display_trace(const Network& network, const Trace& trace) {
    std::string out;
    for (const auto& entry : trace.entries) {
        out += "  (";
        out += network.topology.describe_link(entry.link);
        out += ", ";
        out += display_header(network.labels, entry.header);
        out += ")\n";
    }
    return out;
}

Feasibility check_feasibility(const Network& network, const Trace& trace,
                              std::uint64_t max_failures) {
    Feasibility result;
    if (trace.empty()) {
        result.reason = "empty trace";
        return result;
    }
    for (const auto& entry : trace.entries) {
        if (!is_valid_header(network.labels, entry.header)) {
            result.reason = "invalid header " + display_header(network.labels, entry.header);
            return result;
        }
    }

    std::set<LinkId> required; // F being assembled
    std::uint64_t failures_total = 0;

    for (std::size_t i = 0; i + 1 < trace.entries.size(); ++i) {
        const auto& current = trace.entries[i];
        const auto& next = trace.entries[i + 1];
        const auto* groups = network.routing.entry(current.link, current.header.back());
        if (groups == nullptr) {
            result.reason = "no routing entry for (" +
                            network.topology.describe_link(current.link) + ", " +
                            network.labels.display(current.header.back()) + ")";
            return result;
        }
        bool matched = false;
        std::set<LinkId> failed_here; // links of higher-priority groups
        for (const auto& group : *groups) {
            for (const auto& rule : group) {
                if (rule.out_link != next.link) continue;
                auto rewritten = apply_ops(network.labels, current.header, rule.ops);
                if (!rewritten || *rewritten != next.header) continue;
                matched = true;
                break;
            }
            if (matched) break;
            // Administratively-down links are failed for free: they never
            // charge the budget, so they are not collected into F.
            for (const auto& rule : group)
                if (network.topology.link_up(rule.out_link))
                    failed_here.insert(rule.out_link);
        }
        if (!matched) {
            result.reason = "step " + std::to_string(i) + ": no rule forwards to " +
                            network.topology.describe_link(next.link) +
                            " with the observed header rewrite";
            return result;
        }
        failures_total += failed_here.size();
        required.insert(failed_here.begin(), failed_here.end());
    }

    // Every used link must be active, i.e. up and not in F.
    for (const auto& entry : trace.entries) {
        if (!network.topology.link_up(entry.link)) {
            result.reason = "link " + network.topology.describe_link(entry.link) +
                            " is administratively down";
            result.failures_total = failures_total;
            return result;
        }
        if (required.contains(entry.link)) {
            result.reason = "link " + network.topology.describe_link(entry.link) +
                            " is both used and required to fail";
            result.failures_total = failures_total;
            return result;
        }
    }
    if (required.size() > max_failures) {
        result.reason = "requires " + std::to_string(required.size()) +
                        " failed links, budget is " + std::to_string(max_failures);
        result.failures_total = failures_total;
        result.required_failures.assign(required.begin(), required.end());
        return result;
    }

    result.feasible = true;
    result.failures_total = failures_total;
    result.required_failures.assign(required.begin(), required.end());
    return result;
}

} // namespace aalwines
