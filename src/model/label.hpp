#pragma once
// MPLS label alphabet (paper, Definition 2).
//
// The label set L is partitioned into plain MPLS labels (L_M), MPLS labels
// with the bottom-of-stack bit set (L_M⊥, rendered with an `s` prefix in the
// paper), and IP destinations (L_IP).  Labels are interned to dense uint32
// ids; the id space is shared across the three strata and forms the stack
// alphabet of the compiled pushdown system.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/interner.hpp"

namespace aalwines {

/// Dense label id; also the PDA stack-symbol id.
using Label = std::uint32_t;
inline constexpr Label k_invalid_label = UINT32_MAX;

enum class LabelType : std::uint8_t {
    Mpls,    ///< L_M: plain MPLS label
    MplsBos, ///< L_M⊥: MPLS label with bottom-of-stack bit (S) set
    Ip,      ///< L_IP: IP destination treated as the stack bottom
};

[[nodiscard]] std::string_view to_string(LabelType type);

/// Interning table for the label alphabet of one network.
///
/// Copy-on-write: copies share the interning state behind a refcount, so
/// copying a Network (the what-if delta overlay, src/delta/) costs nothing
/// here.  The first add() of a *new* label through a shared copy clones the
/// state — rare by design, since minting a label invalidates every compiled
/// PDA over the alphabet anyway (the re-verifier falls back to a cold
/// rebuild, see delta::DeltaEffects::label_added).
class LabelTable {
public:
    LabelTable();

    /// Intern (type, name); returns the existing id when already present.
    Label add(LabelType type, std::string_view name);

    /// Find the label with this exact (type, name), if present.
    [[nodiscard]] std::optional<Label> find(LabelType type, std::string_view name) const;

    /// All labels carrying this name, across strata (query atoms are
    /// name-based and a name may exist e.g. both with and without the S-bit).
    [[nodiscard]] std::vector<Label> find_by_name(std::string_view name) const;

    [[nodiscard]] LabelType type_of(Label label) const;
    [[nodiscard]] const std::string& name_of(Label label) const;

    /// Display form: `s`-prefixed for bottom-of-stack labels (paper convention).
    [[nodiscard]] std::string display(Label label) const;

    /// All labels of one stratum, sorted by id.
    [[nodiscard]] std::vector<Label> of_type(LabelType type) const;

    [[nodiscard]] std::size_t size() const noexcept { return _impl->types.size(); }

private:
    struct Impl {
        StringInterner names;               // interned names (shared across strata)
        std::vector<LabelType> types;       // per label id
        std::vector<std::uint32_t> name_ids; // per label id -> name id
        std::unordered_map<std::uint64_t, Label> by_type_name; // (type,name id) -> label
    };

    /// The state, exclusively owned — cloned first when shared with another
    /// table (use_count() == 1 proves exclusivity; references are only ever
    /// gained by copying a table that already holds one).
    Impl& own();

    std::shared_ptr<Impl> _impl; // never null
};

} // namespace aalwines
