#include "model/header.hpp"

#include "util/check.hpp"

namespace aalwines {

bool is_valid_header(const LabelTable& labels, const Header& header) {
    if (header.empty()) return false;
    if (labels.type_of(header.front()) != LabelType::Ip) return false;
    if (header.size() == 1) return true;
    if (labels.type_of(header[1]) != LabelType::MplsBos) return false;
    for (std::size_t i = 2; i < header.size(); ++i)
        if (labels.type_of(header[i]) != LabelType::Mpls) return false;
    return true;
}

bool op_applicable(const LabelTable& labels, Label top, const Op& op) {
    const auto top_type = labels.type_of(top);
    switch (op.kind) {
        case Op::Kind::Pop:
            // Cannot pop the IP bottom label.
            return top_type == LabelType::Mpls || top_type == LabelType::MplsBos;
        case Op::Kind::Swap:
            // Swapping across strata would break the ip·smpls·mpls* shape.
            return labels.type_of(op.label) == top_type;
        case Op::Kind::Push: {
            const auto pushed = labels.type_of(op.label);
            if (pushed == LabelType::Mpls)
                return top_type == LabelType::Mpls || top_type == LabelType::MplsBos;
            if (pushed == LabelType::MplsBos) return top_type == LabelType::Ip;
            return false; // IP labels can never be pushed onto a stack
        }
    }
    return false;
}

void apply_op_unchecked(Header& header, const Op& op) {
    AALWINES_ASSERT(!header.empty(), "operation applied to an empty header");
    switch (op.kind) {
        case Op::Kind::Pop: header.pop_back(); break;
        case Op::Kind::Swap: header.back() = op.label; break;
        case Op::Kind::Push: header.push_back(op.label); break;
    }
}

std::optional<Header> apply_ops(const LabelTable& labels, Header header,
                                std::span<const Op> ops) {
    for (const auto& op : ops) {
        if (header.empty()) return std::nullopt;
        if (!op_applicable(labels, header.back(), op)) return std::nullopt;
        apply_op_unchecked(header, op);
    }
    if (header.empty()) return std::nullopt;
    return header;
}

std::string display_header(const LabelTable& labels, const Header& header) {
    std::string out;
    for (auto it = header.rbegin(); it != header.rend(); ++it) {
        if (!out.empty()) out += " o ";
        out += labels.display(*it);
    }
    return out.empty() ? "<empty>" : out;
}

} // namespace aalwines
