#pragma once
// Network topology: a directed multigraph of routers and links
// (paper, Definition 1), plus named interfaces and optional coordinates.
//
// Each physical connection between two router interfaces is modelled as two
// directed links (one per direction); failures are asymmetric, so the two
// directions fail independently.  Links carry an integer distance used by
// the `Distance` atomic quantity (e.g. latency in µs or metres).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/errors.hpp"

namespace aalwines {

using RouterId = std::uint32_t;
using LinkId = std::uint32_t;
using InterfaceId = std::uint32_t;

inline constexpr std::uint32_t k_invalid_id = UINT32_MAX;

/// Geographic position (paper, Appendix A.2) used for visualisation and for
/// distance-based quantitative objectives.
struct Coordinate {
    double latitude = 0.0;
    double longitude = 0.0;
};

/// Great-circle distance between two coordinates, in metres.
[[nodiscard]] double haversine_meters(const Coordinate& a, const Coordinate& b);

struct Interface {
    RouterId router = k_invalid_id;
    std::string name;
};

struct Link {
    LinkId id = k_invalid_id;
    RouterId source = k_invalid_id;      ///< s(e)
    RouterId target = k_invalid_id;      ///< t(e)
    InterfaceId source_interface = k_invalid_id; ///< outgoing interface on s(e)
    InterfaceId target_interface = k_invalid_id; ///< incoming interface on t(e)
    std::uint64_t distance = 1;          ///< d(e) for the Distance quantity
};

class Topology {
public:
    /// Add a router; name must be unique.  Throws model_error on duplicates.
    RouterId add_router(std::string_view name);

    /// Add (or fetch) the interface `name` on `router`.
    InterfaceId add_interface(RouterId router, std::string_view name);

    /// Add one directed link.  Interfaces must belong to the given routers.
    LinkId add_link(RouterId source, InterfaceId source_interface,
                    RouterId target, InterfaceId target_interface,
                    std::uint64_t distance = 1);

    /// Add both directions of a physical connection; returns {a->b, b->a}.
    std::pair<LinkId, LinkId> add_duplex(RouterId a, std::string_view interface_on_a,
                                         RouterId b, std::string_view interface_on_b,
                                         std::uint64_t distance = 1);

    /// Administratively set one directed link up or down.  Down links are
    /// "failed for free": the verification layers treat them as permanently
    /// failed without charging the query's failure budget k, and no trace
    /// may start on or traverse them.  State is part of the topology value
    /// (copied with it), so what-if deltas flip it on a copy-on-write
    /// network snapshot without touching the shared base.
    void set_link_state(LinkId link, bool up);
    [[nodiscard]] bool link_up(LinkId link) const {
        return link >= _link_down.size() || !_link_down[link];
    }
    /// Number of links currently administratively down.
    [[nodiscard]] std::size_t down_link_count() const;

    void set_coordinate(RouterId router, Coordinate coordinate);
    [[nodiscard]] std::optional<Coordinate> coordinate(RouterId router) const;

    /// Recompute every link's distance from router coordinates (metres,
    /// rounded); links between routers without coordinates keep distance 1.
    void distances_from_coordinates();

    void set_distance(LinkId link, std::uint64_t distance);

    [[nodiscard]] std::optional<RouterId> find_router(std::string_view name) const;
    [[nodiscard]] std::optional<InterfaceId> find_interface(RouterId router,
                                                            std::string_view name) const;
    /// The directed link leaving `router` through interface `name`, if any.
    [[nodiscard]] std::optional<LinkId> out_link_through(RouterId router,
                                                         std::string_view name) const;
    /// The directed link entering `router` through interface `name`, if any.
    [[nodiscard]] std::optional<LinkId> in_link_through(RouterId router,
                                                        std::string_view name) const;

    [[nodiscard]] const std::string& router_name(RouterId router) const;
    [[nodiscard]] const Interface& interface(InterfaceId id) const;
    [[nodiscard]] const Link& link(LinkId id) const;

    [[nodiscard]] const std::vector<LinkId>& out_links(RouterId router) const;
    [[nodiscard]] const std::vector<LinkId>& in_links(RouterId router) const;

    /// All directed links from `source` to `target`.
    [[nodiscard]] std::vector<LinkId> links_between(RouterId source, RouterId target) const;

    [[nodiscard]] std::size_t router_count() const noexcept { return _router_names.size(); }
    [[nodiscard]] std::size_t link_count() const noexcept { return _links.size(); }
    [[nodiscard]] std::size_t interface_count() const noexcept { return _interfaces.size(); }
    [[nodiscard]] const std::vector<Link>& links() const noexcept { return _links; }

    /// Human-readable "Rsrc.if -> Rdst.if" form, for traces and diagnostics.
    [[nodiscard]] std::string describe_link(LinkId id) const;

private:
    std::vector<std::string> _router_names;
    std::unordered_map<std::string, RouterId> _router_ids;
    std::vector<std::optional<Coordinate>> _coordinates;

    std::vector<Interface> _interfaces;
    std::vector<std::unordered_map<std::string, InterfaceId>> _router_interfaces;

    std::vector<Link> _links;
    std::vector<std::vector<LinkId>> _out_links;
    std::vector<std::vector<LinkId>> _in_links;
    /// Sparse down-flags (empty = every link up); sized lazily on the first
    /// set_link_state so the common all-up topology stays allocation-free.
    std::vector<bool> _link_down;
};

} // namespace aalwines
