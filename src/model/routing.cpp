#include "model/routing.hpp"

#include <algorithm>

namespace aalwines {

int stack_delta(const std::vector<Op>& ops) {
    int delta = 0;
    for (const auto& op : ops) {
        if (op.kind == Op::Kind::Push) ++delta;
        if (op.kind == Op::Kind::Pop) --delta;
    }
    return delta;
}

std::uint64_t tunnels_opened(const std::vector<Op>& ops) {
    // Tunnels(σ) sums max(0, |h_{i+1}| - |h_i|) per step; for a single
    // operation sequence that is the positive part of its net stack delta.
    const int delta = stack_delta(ops);
    return delta > 0 ? static_cast<std::uint64_t>(delta) : 0;
}

std::string describe_ops(const LabelTable& labels, const std::vector<Op>& ops) {
    if (ops.empty()) return "-";
    std::string out;
    for (const auto& op : ops) {
        if (!out.empty()) out += " o ";
        switch (op.kind) {
            case Op::Kind::Push: out += "push(" + labels.display(op.label) + ")"; break;
            case Op::Kind::Swap: out += "swap(" + labels.display(op.label) + ")"; break;
            case Op::Kind::Pop: out += "pop"; break;
        }
    }
    return out;
}

namespace {
/// Tail inserts beyond this trigger a merge into the sorted body; keeps
/// lookups at one binary search plus a short linear scan, and bulk
/// construction at amortised O(n log n).
constexpr std::size_t k_tail_limit = 64;
} // namespace

const RoutingTable::Slot* RoutingTable::find_slot(std::uint64_t key) const {
    const auto it = std::lower_bound(
        _sorted.begin(), _sorted.end(), key,
        [](const Slot& slot, std::uint64_t k) { return slot.first < k; });
    if (it != _sorted.end() && it->first == key) return &*it;
    for (const auto& slot : _tail)
        if (slot.first == key) return &slot;
    return nullptr;
}

RoutingTable::Slot* RoutingTable::find_slot(std::uint64_t key) {
    return const_cast<Slot*>(std::as_const(*this).find_slot(key));
}

void RoutingTable::compact() {
    const auto key_less = [](const Slot& a, const Slot& b) { return a.first < b.first; };
    std::sort(_tail.begin(), _tail.end(), key_less);
    const auto offset = static_cast<std::ptrdiff_t>(_sorted.size());
    _sorted.insert(_sorted.end(), std::make_move_iterator(_tail.begin()),
                   std::make_move_iterator(_tail.end()));
    std::inplace_merge(_sorted.begin(), _sorted.begin() + offset, _sorted.end(), key_less);
    _tail.clear();
}

RoutingEntry& RoutingTable::own_entry(Slot& slot) {
    if (slot.second.use_count() > 1)
        slot.second = std::make_shared<RoutingEntry>(*slot.second); // copy-on-write
    return *slot.second;
}

void RoutingTable::add_rule(LinkId in_link, Label label, std::uint32_t priority,
                            LinkId out_link, std::vector<Op> ops) {
    if (priority == 0) throw model_error("rule priority must be >= 1");
    auto* slot = find_slot(key_of(in_link, label));
    if (slot == nullptr) {
        if (_tail.size() >= k_tail_limit) compact();
        slot = &_tail.emplace_back(key_of(in_link, label), std::make_shared<RoutingEntry>());
    }
    auto& entry_groups = own_entry(*slot);
    if (entry_groups.size() < priority) entry_groups.resize(priority);
    entry_groups[priority - 1].push_back({out_link, std::move(ops)});
}

bool RoutingTable::remove_entry(LinkId in_link, Label label) {
    const auto* slot = find_slot(key_of(in_link, label));
    if (slot == nullptr) return false;
    if (slot >= _tail.data() && slot < _tail.data() + _tail.size())
        _tail.erase(_tail.begin() + (slot - _tail.data()));
    else
        _sorted.erase(_sorted.begin() + (slot - _sorted.data()));
    return true;
}

std::size_t RoutingTable::remove_rule(LinkId in_link, Label label, LinkId out_link,
                                      const std::vector<Op>* ops) {
    auto* slot = find_slot(key_of(in_link, label));
    if (slot == nullptr) return 0;
    const auto matches = [&](const ForwardingRule& rule) {
        return rule.out_link == out_link && (ops == nullptr || rule.ops == *ops);
    };
    // Probe the shared entry first so a miss never clones it.
    std::size_t found = 0;
    for (const auto& group : *slot->second)
        found += static_cast<std::size_t>(std::count_if(group.begin(), group.end(), matches));
    if (found == 0) return 0;
    auto& entry_groups = own_entry(*slot);
    std::size_t removed = 0;
    bool any_left = false;
    for (auto& group : entry_groups) {
        std::erase_if(group, [&](const ForwardingRule& rule) {
            if (!matches(rule)) return false;
            ++removed;
            return true;
        });
        any_left = any_left || !group.empty();
    }
    if (removed > 0 && !any_left) remove_entry(in_link, label);
    return removed;
}

const RoutingEntry* RoutingTable::entry(LinkId in_link, Label label) const {
    const auto* slot = find_slot(key_of(in_link, label));
    return slot == nullptr ? nullptr : slot->second.get();
}

void RoutingTable::for_each(
    const std::function<void(LinkId, Label, const RoutingEntry&)>& fn) const {
    const auto visit = [&](const Slot& slot) {
        const auto in_link = static_cast<LinkId>(slot.first >> 32);
        const auto label = static_cast<Label>(slot.first & 0xFFFFFFFFu);
        fn(in_link, label, *slot.second);
    };
    if (_tail.empty()) { // the common case: key-ascending as stored
        for (const auto& slot : _sorted) visit(slot);
        return;
    }
    // Deterministic order with pending tail inserts: merge-iterate a sorted
    // view of the tail against the sorted body (keys are unique).
    std::vector<const Slot*> tail;
    tail.reserve(_tail.size());
    for (const auto& slot : _tail) tail.push_back(&slot);
    std::sort(tail.begin(), tail.end(),
              [](const Slot* a, const Slot* b) { return a->first < b->first; });
    auto sorted_it = _sorted.begin();
    for (const auto* slot : tail) {
        while (sorted_it != _sorted.end() && sorted_it->first < slot->first)
            visit(*sorted_it++);
        visit(*slot);
    }
    while (sorted_it != _sorted.end()) visit(*sorted_it++);
}

void RoutingTable::for_each_of(
    LinkId in_link, const std::function<void(Label, const RoutingEntry&)>& fn) const {
    const auto lo = key_of(in_link, 0);
    const auto hi = (static_cast<std::uint64_t>(in_link) + 1) << 32;
    const auto visit = [&](const Slot& slot) {
        fn(static_cast<Label>(slot.first & 0xFFFFFFFFu), *slot.second);
    };
    const auto key_less = [](const Slot& slot, std::uint64_t k) {
        return slot.first < k;
    };
    auto sorted_it = std::lower_bound(_sorted.begin(), _sorted.end(), lo, key_less);
    const auto sorted_end = std::lower_bound(sorted_it, _sorted.end(), hi, key_less);
    if (_tail.empty()) {
        for (; sorted_it != sorted_end; ++sorted_it) visit(*sorted_it);
        return;
    }
    // Same merged key order as for_each, restricted to this link's range.
    std::vector<const Slot*> tail;
    for (const auto& slot : _tail)
        if (slot.first >= lo && slot.first < hi) tail.push_back(&slot);
    std::sort(tail.begin(), tail.end(),
              [](const Slot* a, const Slot* b) { return a->first < b->first; });
    for (const auto* slot : tail) {
        while (sorted_it != sorted_end && sorted_it->first < slot->first)
            visit(*sorted_it++);
        visit(*slot);
    }
    while (sorted_it != sorted_end) visit(*sorted_it++);
}

std::size_t RoutingTable::rule_count() const {
    std::size_t count = 0;
    for (const auto* slots : {&_sorted, &_tail})
        for (const auto& [key, entry_groups] : *slots)
            for (const auto& group : *entry_groups) count += group.size();
    return count;
}

void RoutingTable::validate(const Topology& topology) const {
    const auto validate_slot = [&](const Slot& slot) {
        const auto& [key, entry_groups] = slot;
        const auto in_link = static_cast<LinkId>(key >> 32);
        if (in_link >= topology.link_count())
            throw model_error("routing entry references unknown link id " +
                              std::to_string(in_link));
        const auto at_router = topology.link(in_link).target;
        for (const auto& group : *entry_groups) {
            for (const auto& rule : group) {
                if (rule.out_link >= topology.link_count())
                    throw model_error("rule references unknown out-link id " +
                                      std::to_string(rule.out_link));
                if (topology.link(rule.out_link).source != at_router)
                    throw model_error(
                        "rule for link entering '" + topology.router_name(at_router) +
                        "' forwards via link " + topology.describe_link(rule.out_link) +
                        " which does not leave that router");
            }
        }
    };
    for (const auto* slots : {&_sorted, &_tail})
        for (const auto& slot : *slots) validate_slot(slot);
}

} // namespace aalwines
