#include "model/routing.hpp"

#include <algorithm>

namespace aalwines {

int stack_delta(const std::vector<Op>& ops) {
    int delta = 0;
    for (const auto& op : ops) {
        if (op.kind == Op::Kind::Push) ++delta;
        if (op.kind == Op::Kind::Pop) --delta;
    }
    return delta;
}

std::uint64_t tunnels_opened(const std::vector<Op>& ops) {
    // Tunnels(σ) sums max(0, |h_{i+1}| - |h_i|) per step; for a single
    // operation sequence that is the positive part of its net stack delta.
    const int delta = stack_delta(ops);
    return delta > 0 ? static_cast<std::uint64_t>(delta) : 0;
}

std::string describe_ops(const LabelTable& labels, const std::vector<Op>& ops) {
    if (ops.empty()) return "-";
    std::string out;
    for (const auto& op : ops) {
        if (!out.empty()) out += " o ";
        switch (op.kind) {
            case Op::Kind::Push: out += "push(" + labels.display(op.label) + ")"; break;
            case Op::Kind::Swap: out += "swap(" + labels.display(op.label) + ")"; break;
            case Op::Kind::Pop: out += "pop"; break;
        }
    }
    return out;
}

void RoutingTable::add_rule(LinkId in_link, Label label, std::uint32_t priority,
                            LinkId out_link, std::vector<Op> ops) {
    if (priority == 0) throw model_error("rule priority must be >= 1");
    auto& entry_groups = _entries[key_of(in_link, label)];
    if (entry_groups.size() < priority) entry_groups.resize(priority);
    entry_groups[priority - 1].push_back({out_link, std::move(ops)});
}

const RoutingEntry* RoutingTable::entry(LinkId in_link, Label label) const {
    auto it = _entries.find(key_of(in_link, label));
    return it == _entries.end() ? nullptr : &it->second;
}

void RoutingTable::for_each(
    const std::function<void(LinkId, Label, const RoutingEntry&)>& fn) const {
    // Deterministic order: iterate over sorted keys (entry pointers ride
    // along so the loop needs no second hash lookup per entry).
    std::vector<std::pair<std::uint64_t, const RoutingEntry*>> items;
    items.reserve(_entries.size());
    for (const auto& [key, entry_groups] : _entries) items.emplace_back(key, &entry_groups);
    std::sort(items.begin(), items.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [key, entry_groups] : items) {
        const auto in_link = static_cast<LinkId>(key >> 32);
        const auto label = static_cast<Label>(key & 0xFFFFFFFFu);
        fn(in_link, label, *entry_groups);
    }
}

std::size_t RoutingTable::rule_count() const {
    std::size_t count = 0;
    for (const auto& [key, entry_groups] : _entries)
        for (const auto& group : entry_groups) count += group.size();
    return count;
}

void RoutingTable::validate(const Topology& topology) const {
    for (const auto& [key, entry_groups] : _entries) {
        const auto in_link = static_cast<LinkId>(key >> 32);
        if (in_link >= topology.link_count())
            throw model_error("routing entry references unknown link id " +
                              std::to_string(in_link));
        const auto at_router = topology.link(in_link).target;
        for (const auto& group : entry_groups) {
            for (const auto& rule : group) {
                if (rule.out_link >= topology.link_count())
                    throw model_error("rule references unknown out-link id " +
                                      std::to_string(rule.out_link));
                if (topology.link(rule.out_link).source != at_router)
                    throw model_error(
                        "rule for link entering '" + topology.router_name(at_router) +
                        "' forwards via link " + topology.describe_link(rule.out_link) +
                        " which does not leave that router");
            }
        }
    }
}

} // namespace aalwines
