#include "nfa/symbol_set.hpp"

#include <algorithm>
#include <cassert>

namespace aalwines::nfa {

namespace {
const std::vector<Symbol> k_empty_vector;

std::vector<Symbol> normalized(std::vector<Symbol> symbols) {
    std::sort(symbols.begin(), symbols.end());
    symbols.erase(std::unique(symbols.begin(), symbols.end()), symbols.end());
    return symbols;
}

std::vector<Symbol> sorted_union(const std::vector<Symbol>& a, const std::vector<Symbol>& b) {
    std::vector<Symbol> out;
    out.reserve(a.size() + b.size());
    std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
    return out;
}

std::vector<Symbol> sorted_intersection(const std::vector<Symbol>& a,
                                        const std::vector<Symbol>& b) {
    std::vector<Symbol> out;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
    return out;
}

std::vector<Symbol> sorted_difference(const std::vector<Symbol>& a,
                                      const std::vector<Symbol>& b) {
    std::vector<Symbol> out;
    std::set_difference(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
    return out;
}
} // namespace

SymbolSet::SymbolSet(Mode mode, std::vector<Symbol> symbols) : _mode(mode) {
    if (!symbols.empty())
        _symbols = std::make_shared<const std::vector<Symbol>>(std::move(symbols));
}

SymbolSet SymbolSet::of(std::vector<Symbol> symbols) {
    return SymbolSet(Mode::Include, normalized(std::move(symbols)));
}

SymbolSet SymbolSet::excluding(std::vector<Symbol> symbols) {
    auto norm = normalized(std::move(symbols));
    if (norm.empty()) return any();
    return SymbolSet(Mode::Exclude, std::move(norm));
}

const std::vector<Symbol>& SymbolSet::symbols() const {
    return _symbols ? *_symbols : k_empty_vector;
}

bool SymbolSet::contains(Symbol symbol) const {
    switch (_mode) {
        case Mode::Any: return true;
        case Mode::Include:
            return std::binary_search(symbols().begin(), symbols().end(), symbol);
        case Mode::Exclude:
            return !std::binary_search(symbols().begin(), symbols().end(), symbol);
    }
    return false;
}

bool SymbolSet::is_empty_in(Symbol domain_size) const {
    return !pick(domain_size).has_value();
}

std::optional<Symbol> SymbolSet::pick(Symbol domain_size) const {
    switch (_mode) {
        case Mode::Any:
            if (domain_size == 0) return std::nullopt;
            return Symbol{0};
        case Mode::Include: {
            const auto& list = symbols();
            if (!list.empty() && list.front() < domain_size) return list.front();
            return std::nullopt;
        }
        case Mode::Exclude: {
            // Excluded list is sorted; find the first gap below domain_size.
            Symbol candidate = 0;
            for (const Symbol excluded : symbols()) {
                if (excluded > candidate) break;
                if (excluded == candidate) ++candidate;
            }
            if (candidate < domain_size) return candidate;
            return std::nullopt;
        }
    }
    return std::nullopt;
}

std::vector<Symbol> SymbolSet::materialize(Symbol domain_size) const {
    std::vector<Symbol> out;
    switch (_mode) {
        case Mode::Any:
            out.reserve(domain_size);
            for (Symbol s = 0; s < domain_size; ++s) out.push_back(s);
            return out;
        case Mode::Include:
            for (const Symbol s : symbols())
                if (s < domain_size) out.push_back(s);
            return out;
        case Mode::Exclude: {
            const auto& excluded = symbols();
            std::size_t i = 0;
            for (Symbol s = 0; s < domain_size; ++s) {
                while (i < excluded.size() && excluded[i] < s) ++i;
                if (i < excluded.size() && excluded[i] == s) continue;
                out.push_back(s);
            }
            return out;
        }
    }
    return out;
}

SymbolSet SymbolSet::intersection(const SymbolSet& a, const SymbolSet& b) {
    if (a.is_any()) return b;
    if (b.is_any()) return a;
    if (a._mode == Mode::Include && b._mode == Mode::Include)
        return SymbolSet(Mode::Include, sorted_intersection(a.symbols(), b.symbols()));
    if (a._mode == Mode::Include) // b is Exclude
        return SymbolSet(Mode::Include, sorted_difference(a.symbols(), b.symbols()));
    if (b._mode == Mode::Include) // a is Exclude
        return SymbolSet(Mode::Include, sorted_difference(b.symbols(), a.symbols()));
    return SymbolSet(Mode::Exclude, sorted_union(a.symbols(), b.symbols()));
}

SymbolSet SymbolSet::set_union(const SymbolSet& a, const SymbolSet& b) {
    if (a.is_any() || b.is_any()) return any();
    if (a._mode == Mode::Include && b._mode == Mode::Include)
        return SymbolSet(Mode::Include, sorted_union(a.symbols(), b.symbols()));
    if (a._mode == Mode::Exclude && b._mode == Mode::Exclude) {
        auto both = sorted_intersection(a.symbols(), b.symbols());
        if (both.empty()) return any();
        return SymbolSet(Mode::Exclude, std::move(both));
    }
    const SymbolSet& inc = a._mode == Mode::Include ? a : b;
    const SymbolSet& exc = a._mode == Mode::Include ? b : a;
    auto remaining = sorted_difference(exc.symbols(), inc.symbols());
    if (remaining.empty()) return any();
    return SymbolSet(Mode::Exclude, std::move(remaining));
}

bool SymbolSet::intersects(const SymbolSet& a, const SymbolSet& b) {
    if (a.is_empty_set() || b.is_empty_set()) return false;
    if (a.is_any() || b.is_any()) return true;
    if (a._mode == Mode::Exclude && b._mode == Mode::Exclude) return true;
    const SymbolSet& include = a._mode == Mode::Include ? a : b;
    const SymbolSet& other = &include == &a ? b : a;
    // Iterate the smaller include list, membership-test against the other.
    if (other._mode == Mode::Include && other.symbols().size() < include.symbols().size())
        return intersects(other, include);
    for (const auto symbol : include.symbols())
        if (other.contains(symbol)) return true;
    return false;
}

bool SymbolSet::contains_all(const SymbolSet& other) const {
    if (is_any()) return true;
    if (other.is_empty_set()) return true;
    if (other.is_any()) return false;
    if (other._mode == Mode::Include) {
        for (const auto symbol : other.symbols())
            if (!contains(symbol)) return false;
        return true;
    }
    // other is Exclude (cofinite): only an Exclude with a subset of the
    // exclusions can contain it.
    if (_mode != Mode::Exclude) return false;
    return std::includes(other.symbols().begin(), other.symbols().end(),
                         symbols().begin(), symbols().end());
}

bool SymbolSet::operator==(const SymbolSet& other) const {
    return _mode == other._mode && symbols() == other.symbols();
}

} // namespace aalwines::nfa
