#pragma once
// Nondeterministic finite automata with set-labelled edges.
//
// Compiled from Regex by Thompson construction followed by ε-elimination;
// the resulting ε-free automata are what the verification layer consumes
// (path NFAs become part of the PDA control state, header NFAs become the
// initial and final P-automata).

#include <cstdint>
#include <span>
#include <vector>

#include "nfa/regex.hpp"
#include "nfa/symbol_set.hpp"

namespace aalwines::nfa {

class Nfa {
public:
    using StateId = std::uint32_t;

    struct Edge {
        SymbolSet symbols;
        StateId target;
    };

    struct State {
        std::vector<Edge> edges;
        bool accepting = false;
    };

    /// Compile `regex` to an ε-free NFA.
    [[nodiscard]] static Nfa compile(const Regex& regex);

    /// Product automaton accepting the intersection of both languages.
    /// Edges whose symbol-set intersection is definitely empty are dropped.
    [[nodiscard]] static Nfa intersection(const Nfa& a, const Nfa& b);

    [[nodiscard]] const std::vector<State>& states() const noexcept { return _states; }
    [[nodiscard]] const std::vector<StateId>& initial() const noexcept { return _initial; }
    [[nodiscard]] std::size_t size() const noexcept { return _states.size(); }

    /// True when some initial state is accepting (ε in the language).
    [[nodiscard]] bool accepts_epsilon() const;

    /// Membership test by subset simulation; O(|word| * |edges|).
    [[nodiscard]] bool accepts(std::span<const Symbol> word) const;

    /// True when no word over the domain [0, domain_size) is accepted.
    [[nodiscard]] bool empty_language(Symbol domain_size) const;

    /// A shortest accepted word over the domain, if the language is nonempty.
    [[nodiscard]] std::optional<std::vector<Symbol>> example_word(Symbol domain_size) const;

private:
    std::vector<State> _states;
    std::vector<StateId> _initial;
};

} // namespace aalwines::nfa
