#pragma once
// Symbolic sets of 32-bit symbol ids used on NFA and P-automaton edges.
//
// Query atoms like `smpls`, `.` or `[^v2#v3]` denote potentially huge symbol
// sets (NORDUnet-scale networks have >100k labels).  Representing edges with
// {any | include-list | exclude-list} keeps the compiled automata small; the
// payload vector is shared, so copying a SymbolSet is O(1).

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

namespace aalwines::nfa {

using Symbol = std::uint32_t;

class SymbolSet {
public:
    enum class Mode : std::uint8_t {
        Any,     ///< every symbol of the domain
        Include, ///< exactly the listed symbols
        Exclude, ///< every symbol except the listed ones
    };

    /// Default-constructed set is empty (Include of nothing).
    SymbolSet() : _mode(Mode::Include) {}

    [[nodiscard]] static SymbolSet any() { return SymbolSet(Mode::Any, {}); }
    [[nodiscard]] static SymbolSet none() { return SymbolSet(Mode::Include, {}); }
    [[nodiscard]] static SymbolSet of(std::vector<Symbol> symbols);
    [[nodiscard]] static SymbolSet excluding(std::vector<Symbol> symbols);
    [[nodiscard]] static SymbolSet single(Symbol symbol) { return of({symbol}); }

    [[nodiscard]] Mode mode() const noexcept { return _mode; }
    [[nodiscard]] bool is_any() const noexcept { return _mode == Mode::Any; }

    /// The include/exclude payload (sorted, unique); empty for Any.
    [[nodiscard]] const std::vector<Symbol>& symbols() const;

    [[nodiscard]] bool contains(Symbol symbol) const;

    /// True when the set is definitely empty regardless of the domain.
    [[nodiscard]] bool is_empty_set() const {
        return _mode == Mode::Include && symbols().empty();
    }

    /// True when the set contains no symbol of the domain [0, domain_size).
    [[nodiscard]] bool is_empty_in(Symbol domain_size) const;

    /// Smallest member within the domain [0, domain_size), if any.
    [[nodiscard]] std::optional<Symbol> pick(Symbol domain_size) const;

    /// All members within the domain [0, domain_size).
    [[nodiscard]] std::vector<Symbol> materialize(Symbol domain_size) const;

    [[nodiscard]] static SymbolSet intersection(const SymbolSet& a, const SymbolSet& b);
    [[nodiscard]] static SymbolSet set_union(const SymbolSet& a, const SymbolSet& b);

    /// True when a ∩ b is definitely non-empty (ignoring any domain bound);
    /// avoids materializing the intersection.  Exclude/Exclude pairs are
    /// reported as intersecting (they are, for any reasonably large domain).
    [[nodiscard]] static bool intersects(const SymbolSet& a, const SymbolSet& b);

    /// True when this set contains every member of `other` (conservative:
    /// may return false for exotic Include ⊇ Exclude cases).
    [[nodiscard]] bool contains_all(const SymbolSet& other) const;

    bool operator==(const SymbolSet& other) const;

private:
    SymbolSet(Mode mode, std::vector<Symbol> symbols);

    Mode _mode;
    std::shared_ptr<const std::vector<Symbol>> _symbols; ///< sorted, unique; may be null (== empty)
};

} // namespace aalwines::nfa
