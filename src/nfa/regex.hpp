#pragma once
// Regular-expression ASTs over SymbolSet atoms.
//
// The query language (paper §2.5) uses regular expressions both over labels
// (the `a` and `c` parts) and over links (the `b` part).  Both compile to the
// same AST; atoms are symbol sets, so character-class complement (`[^v#u]`)
// is represented directly without a full language complement.

#include <memory>
#include <vector>

#include "nfa/symbol_set.hpp"

namespace aalwines::nfa {

class Regex {
public:
    enum class Kind : std::uint8_t {
        Empty,   ///< the empty language
        Epsilon, ///< the language { ε }
        Atom,    ///< one symbol drawn from a SymbolSet
        Concat,  ///< children in sequence
        Alt,     ///< union of children
        Star,    ///< zero or more of the single child
        Plus,    ///< one or more of the single child
        Opt,     ///< zero or one of the single child
    };

    [[nodiscard]] static Regex empty() { return Regex(Kind::Empty); }
    [[nodiscard]] static Regex epsilon() { return Regex(Kind::Epsilon); }
    [[nodiscard]] static Regex atom(SymbolSet symbols);
    [[nodiscard]] static Regex concat(std::vector<Regex> children);
    [[nodiscard]] static Regex alt(std::vector<Regex> children);
    [[nodiscard]] static Regex star(Regex child);
    [[nodiscard]] static Regex plus(Regex child);
    [[nodiscard]] static Regex opt(Regex child);

    /// Exactly n repetitions of `child`.
    [[nodiscard]] static Regex repeat(const Regex& child, std::size_t n);

    [[nodiscard]] Kind kind() const noexcept { return _kind; }
    [[nodiscard]] const SymbolSet& symbols() const { return _symbols; }
    [[nodiscard]] const std::vector<Regex>& children() const { return _children; }

    /// True when ε is in the language (syntactic nullability check).
    [[nodiscard]] bool nullable() const;

private:
    explicit Regex(Kind kind) : _kind(kind) {}

    Kind _kind;
    SymbolSet _symbols;         // for Atom
    std::vector<Regex> _children; // for composite nodes
};

} // namespace aalwines::nfa
