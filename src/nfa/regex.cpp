#include "nfa/regex.hpp"

namespace aalwines::nfa {

Regex Regex::atom(SymbolSet symbols) {
    if (symbols.is_empty_set()) return empty();
    Regex r(Kind::Atom);
    r._symbols = std::move(symbols);
    return r;
}

Regex Regex::concat(std::vector<Regex> children) {
    // Flatten, drop ε factors, collapse to Empty if any factor is Empty.
    std::vector<Regex> flat;
    for (auto& child : children) {
        if (child.kind() == Kind::Empty) return empty();
        if (child.kind() == Kind::Epsilon) continue;
        if (child.kind() == Kind::Concat) {
            for (auto& grandchild : child._children)
                flat.push_back(std::move(grandchild));
        } else {
            flat.push_back(std::move(child));
        }
    }
    if (flat.empty()) return epsilon();
    if (flat.size() == 1) return std::move(flat.front());
    Regex r(Kind::Concat);
    r._children = std::move(flat);
    return r;
}

Regex Regex::alt(std::vector<Regex> children) {
    std::vector<Regex> flat;
    for (auto& child : children) {
        if (child.kind() == Kind::Empty) continue;
        if (child.kind() == Kind::Alt) {
            for (auto& grandchild : child._children)
                flat.push_back(std::move(grandchild));
        } else {
            flat.push_back(std::move(child));
        }
    }
    if (flat.empty()) return empty();
    if (flat.size() == 1) return std::move(flat.front());
    Regex r(Kind::Alt);
    r._children = std::move(flat);
    return r;
}

Regex Regex::star(Regex child) {
    if (child.kind() == Kind::Empty || child.kind() == Kind::Epsilon) return epsilon();
    if (child.kind() == Kind::Star) return child;
    Regex r(Kind::Star);
    r._children.push_back(std::move(child));
    return r;
}

Regex Regex::plus(Regex child) {
    if (child.kind() == Kind::Empty) return empty();
    if (child.kind() == Kind::Epsilon) return epsilon();
    Regex r(Kind::Plus);
    r._children.push_back(std::move(child));
    return r;
}

Regex Regex::opt(Regex child) {
    if (child.kind() == Kind::Empty || child.kind() == Kind::Epsilon) return epsilon();
    Regex r(Kind::Opt);
    r._children.push_back(std::move(child));
    return r;
}

Regex Regex::repeat(const Regex& child, std::size_t n) {
    if (n == 0) return epsilon();
    std::vector<Regex> copies;
    copies.reserve(n);
    for (std::size_t i = 0; i < n; ++i) copies.push_back(child);
    return concat(std::move(copies));
}

bool Regex::nullable() const {
    switch (_kind) {
        case Kind::Empty: return false;
        case Kind::Epsilon: return true;
        case Kind::Atom: return false;
        case Kind::Star:
        case Kind::Opt: return true;
        case Kind::Plus: return _children.front().nullable();
        case Kind::Concat:
            for (const auto& child : _children)
                if (!child.nullable()) return false;
            return true;
        case Kind::Alt:
            for (const auto& child : _children)
                if (child.nullable()) return true;
            return false;
    }
    return false;
}

} // namespace aalwines::nfa
