#include "nfa/nfa.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "telemetry/telemetry.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"

namespace aalwines::nfa {

namespace {

/// Thompson construction with explicit ε-edges; converted to the public
/// ε-free representation afterwards.
struct ThompsonBuilder {
    struct State {
        std::vector<Nfa::Edge> edges;
        std::vector<Nfa::StateId> eps;
    };

    std::vector<State> states;

    Nfa::StateId add_state() {
        states.emplace_back();
        return static_cast<Nfa::StateId>(states.size() - 1);
    }

    struct Fragment {
        Nfa::StateId start;
        Nfa::StateId accept;
    };

    Fragment build(const Regex& regex) {
        switch (regex.kind()) {
            case Regex::Kind::Empty: {
                const auto start = add_state();
                const auto accept = add_state();
                return {start, accept}; // no connection: empty language
            }
            case Regex::Kind::Epsilon: {
                const auto start = add_state();
                const auto accept = add_state();
                states[start].eps.push_back(accept);
                return {start, accept};
            }
            case Regex::Kind::Atom: {
                const auto start = add_state();
                const auto accept = add_state();
                states[start].edges.push_back({regex.symbols(), accept});
                return {start, accept};
            }
            case Regex::Kind::Concat: {
                Fragment whole = build(regex.children().front());
                for (std::size_t i = 1; i < regex.children().size(); ++i) {
                    Fragment next = build(regex.children()[i]);
                    states[whole.accept].eps.push_back(next.start);
                    whole.accept = next.accept;
                }
                return whole;
            }
            case Regex::Kind::Alt: {
                const auto start = add_state();
                const auto accept = add_state();
                for (const auto& child : regex.children()) {
                    Fragment branch = build(child);
                    states[start].eps.push_back(branch.start);
                    states[branch.accept].eps.push_back(accept);
                }
                return {start, accept};
            }
            case Regex::Kind::Star: {
                const auto start = add_state();
                const auto accept = add_state();
                Fragment body = build(regex.children().front());
                states[start].eps.push_back(body.start);
                states[start].eps.push_back(accept);
                states[body.accept].eps.push_back(body.start);
                states[body.accept].eps.push_back(accept);
                return {start, accept};
            }
            case Regex::Kind::Plus: {
                Fragment body = build(regex.children().front());
                const auto accept = add_state();
                states[body.accept].eps.push_back(body.start);
                states[body.accept].eps.push_back(accept);
                return {body.start, accept};
            }
            case Regex::Kind::Opt: {
                const auto start = add_state();
                const auto accept = add_state();
                Fragment body = build(regex.children().front());
                states[start].eps.push_back(body.start);
                states[start].eps.push_back(accept);
                states[body.accept].eps.push_back(accept);
                return {start, accept};
            }
        }
        AALWINES_ASSERT(false, "unreachable regex kind");
        return {0, 0};
    }

    /// ε-closure of `state`, including itself.
    std::vector<Nfa::StateId> closure(Nfa::StateId state) const {
        std::vector<Nfa::StateId> result;
        std::vector<bool> seen(states.size(), false);
        std::vector<Nfa::StateId> stack{state};
        seen[state] = true;
        while (!stack.empty()) {
            const auto current = stack.back();
            stack.pop_back();
            result.push_back(current);
            for (const auto next : states[current].eps) {
                if (!seen[next]) {
                    seen[next] = true;
                    stack.push_back(next);
                }
            }
        }
        return result;
    }
};

} // namespace

Nfa Nfa::compile(const Regex& regex) {
    ThompsonBuilder builder;
    const auto fragment = builder.build(regex);

    // ε-elimination: state s keeps the symbol edges of everything in its
    // ε-closure; s is accepting iff its closure reaches the fragment accept.
    std::vector<State> eliminated(builder.states.size());
    for (StateId s = 0; s < builder.states.size(); ++s) {
        for (const auto member : builder.closure(s)) {
            for (const auto& edge : builder.states[member].edges)
                eliminated[s].edges.push_back(edge);
            if (member == fragment.accept) eliminated[s].accepting = true;
        }
    }

    // Prune states unreachable from the start via symbol edges.
    std::vector<StateId> remap(eliminated.size(), UINT32_MAX);
    std::vector<StateId> order;
    std::vector<StateId> stack{fragment.start};
    remap[fragment.start] = 0;
    order.push_back(fragment.start);
    while (!stack.empty()) {
        const auto current = stack.back();
        stack.pop_back();
        for (const auto& edge : eliminated[current].edges) {
            if (remap[edge.target] == UINT32_MAX) {
                remap[edge.target] = static_cast<StateId>(order.size());
                order.push_back(edge.target);
                stack.push_back(edge.target);
            }
        }
    }

    Nfa nfa;
    nfa._states.resize(order.size());
    for (StateId new_id = 0; new_id < order.size(); ++new_id) {
        const auto& old_state = eliminated[order[new_id]];
        auto& new_state = nfa._states[new_id];
        new_state.accepting = old_state.accepting;
        for (const auto& edge : old_state.edges)
            new_state.edges.push_back({edge.symbols, remap[edge.target]});
    }
    nfa._initial.push_back(0);
    telemetry::count(telemetry::Counter::nfa_states_built, nfa._states.size());
    std::size_t edge_count = 0;
    for (const auto& state : nfa._states) edge_count += state.edges.size();
    telemetry::count(telemetry::Counter::nfa_edges_built, edge_count);
    return nfa;
}

Nfa Nfa::intersection(const Nfa& a, const Nfa& b) {
    Nfa product;
    std::map<std::pair<StateId, StateId>, StateId> ids;
    std::deque<std::pair<StateId, StateId>> worklist;

    auto state_of = [&](StateId sa, StateId sb) {
        const auto key = std::make_pair(sa, sb);
        if (auto it = ids.find(key); it != ids.end()) return it->second;
        const auto id = static_cast<StateId>(product._states.size());
        product._states.emplace_back();
        product._states.back().accepting =
            a._states[sa].accepting && b._states[sb].accepting;
        ids.emplace(key, id);
        worklist.push_back(key);
        return id;
    };

    for (const auto ia : a._initial)
        for (const auto ib : b._initial)
            product._initial.push_back(state_of(ia, ib));

    while (!worklist.empty()) {
        const auto [sa, sb] = worklist.front();
        worklist.pop_front();
        const auto from = ids.at({sa, sb});
        for (const auto& edge_a : a._states[sa].edges) {
            for (const auto& edge_b : b._states[sb].edges) {
                auto symbols = SymbolSet::intersection(edge_a.symbols, edge_b.symbols);
                if (symbols.is_empty_set()) continue;
                const auto to = state_of(edge_a.target, edge_b.target);
                product._states[from].edges.push_back({std::move(symbols), to});
            }
        }
    }
    return product;
}

bool Nfa::accepts_epsilon() const {
    return std::any_of(_initial.begin(), _initial.end(),
                       [this](StateId s) { return _states[s].accepting; });
}

bool Nfa::accepts(std::span<const Symbol> word) const {
    std::set<StateId> current(_initial.begin(), _initial.end());
    for (const auto symbol : word) {
        std::set<StateId> next;
        for (const auto state : current)
            for (const auto& edge : _states[state].edges)
                if (edge.symbols.contains(symbol)) next.insert(edge.target);
        current = std::move(next);
        if (current.empty()) return false;
    }
    return std::any_of(current.begin(), current.end(),
                       [this](StateId s) { return _states[s].accepting; });
}

bool Nfa::empty_language(Symbol domain_size) const {
    return !example_word(domain_size).has_value();
}

std::optional<std::vector<Symbol>> Nfa::example_word(Symbol domain_size) const {
    struct Visit {
        StateId parent = UINT32_MAX;
        Symbol via = 0;
        bool seen = false;
    };
    std::vector<Visit> visits(_states.size());
    std::deque<StateId> queue;
    for (const auto s : _initial) {
        if (!visits[s].seen) {
            visits[s].seen = true;
            queue.push_back(s);
        }
    }
    std::optional<StateId> found;
    for (const auto s : _initial)
        if (_states[s].accepting) found = s;
    while (!found && !queue.empty()) {
        const auto current = queue.front();
        queue.pop_front();
        for (const auto& edge : _states[current].edges) {
            if (visits[edge.target].seen) continue;
            const auto symbol = edge.symbols.pick(domain_size);
            if (!symbol) continue;
            visits[edge.target] = {current, *symbol, true};
            if (_states[edge.target].accepting) {
                found = edge.target;
                break;
            }
            queue.push_back(edge.target);
        }
    }
    if (!found) return std::nullopt;
    std::vector<Symbol> word;
    StateId cursor = *found;
    while (visits[cursor].parent != UINT32_MAX) {
        word.push_back(visits[cursor].via);
        cursor = visits[cursor].parent;
    }
    std::reverse(word.begin(), word.end());
    return word;
}

} // namespace aalwines::nfa
