#pragma once
// Cross-cutting telemetry for the verification pipeline: scoped RAII span
// timers forming a hierarchical trace tree per thread, monotonic counters,
// max-gauges and log2-bucketed latency/size histograms, aggregated by a
// process-global Registry.
//
// Probes are designed for the solver hot path: counters, gauges and
// histogram observations land in a thread-local buffer (one relaxed atomic
// add, no shared cache line, no lock), so `verify_batch` workers never
// contend.  Only opening/closing a span takes a (thread-local, uncontended)
// mutex, and spans fire per pipeline phase, not per worklist item.  The
// Registry merges live and retired thread buffers on demand into a Snapshot
// that serialises to JSON (see docs/OBSERVABILITY.md for the schema);
// histograms additionally export as Prometheus text exposition and feed the
// bucket-interpolated p50/p90/p99 accessors.
//
// Compile-time gated by the CMake option AALWINES_TELEMETRY (default ON),
// which defines AALWINES_TELEMETRY_ENABLED=1/0.  When disabled, every
// probe — count(), gauge_max(), observe(), Span, AALWINES_SPAN — reduces to
// a no-op and snapshots are empty; the API stays source-compatible.

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.hpp"

#ifndef AALWINES_TELEMETRY_ENABLED
#define AALWINES_TELEMETRY_ENABLED 1
#endif

namespace aalwines::telemetry {

/// Monotonic counters, one per instrumented event class.  Totals are
/// deterministic for a fixed workload regardless of thread count.
enum class Counter : std::uint32_t {
    queries_parsed,         ///< query::parse_query calls
    nfa_states_built,       ///< NFA states constructed (Thompson + product)
    nfa_edges_built,        ///< NFA edges constructed
    pda_states_interned,    ///< PDA control + chain states (translation)
    pda_rules_emitted,      ///< PDA rules emitted by the translation
    pda_rules_total,        ///< rules an eager translation would emit (pre-reduction)
    pda_rules_materialized, ///< rules demand-materialized during lazy saturation
    pda_states_materialized,///< states whose outgoing rules were demanded (lazy)
    reduction_rules_pruned, ///< rules removed by the top-of-stack reduction
    post_star_pops,         ///< post* worklist items finalized
    pre_star_pops,          ///< pre* worklist items finalized
    edge_relaxations,       ///< transition inserts/weight decreases enqueued
    epsilon_relaxations,    ///< ε-transition inserts/decreases enqueued
    accept_decrease_keys,   ///< Dijkstra decrease-keys in find_accepted[_n]
    witness_unroll_steps,   ///< provenance-walk steps during unrolling
    traces_reconstructed,   ///< witnesses successfully mapped to traces
    server_requests,        ///< HTTP requests handled by the verification daemon
    server_rejected,        ///< requests refused by admission control (503)
    server_cache_hits,      ///< compiled-query cache hits (src/server/cache.hpp)
    server_cache_misses,    ///< compiled-query cache misses
    server_cache_evictions, ///< compiled-query cache entries evicted (LRU + invalidation)
    server_patches,         ///< PATCH /networks/{id} deltas applied
    delta_tier1_reused,     ///< patched re-verifies answered by result reuse
    delta_tier2_resaturations, ///< patched re-verifies answered by frontier re-saturation
    delta_cold_rebuilds,    ///< patched re-verifies that fell back to a cold recompile
    delta_states_invalidated, ///< control states un-materialized by delta rebasing
    solver_parallel_pops,   ///< items finalized by the sharded parallel solver
    solver_handoff_tuples,  ///< staged tuples routed to a different owner shard
    solver_parallel_rounds, ///< level-synchronous rounds of the parallel solver
    count_,
};
inline constexpr std::size_t k_counter_count = static_cast<std::size_t>(Counter::count_);

/// High-water marks; aggregation keeps the maximum across threads/runs.
enum class Gauge : std::uint32_t {
    transition_high_water, ///< P-automaton transition table size after saturation
    epsilon_high_water,    ///< ε-transition table size after saturation
    worklist_high_water,   ///< peak saturation worklist length
    server_queue_high_water, ///< peak pending-connection queue depth (daemon)
    cache_entries_high_water, ///< peak compiled-query cache residency (entries)
    solver_threads_high_water, ///< widest saturation thread count used
    shard_imbalance_pct_high_water, ///< worst max/mean per-shard pop ratio × 100
    count_,
};
inline constexpr std::size_t k_gauge_count = static_cast<std::size_t>(Gauge::count_);

/// Latency/size distributions.  Observations drop into fixed log2 buckets
/// (bucket i counts values v with 2^(i-1) <= v < 2^i), so the merge across
/// threads is a plain per-bucket sum: deterministic and thread-count
/// invariant for deterministic observations.  Durations are recorded in
/// nanoseconds; `materialized_rule_pct` records integer percentages.
enum class Histogram : std::uint32_t {
    request_duration,        ///< whole HTTP request handling in the daemon (ns)
    request_queue_wait,      ///< accept -> dequeue wait in the daemon (ns)
    query_duration_dual,     ///< end-to-end verify() wall clock, dual engine (ns)
    query_duration_weighted, ///< ... weighted engine (ns)
    query_duration_moped,    ///< ... moped baseline (ns)
    query_duration_exact,    ///< ... exact engine (ns)
    query_translate,         ///< per phase: translation + reduction + initial automaton (ns)
    query_saturate,          ///< per phase: post* saturation (incl. lazy materialization) (ns)
    query_witness,           ///< per phase: acceptance search + witness unroll (ns)
    cache_lookup,            ///< compiled-query cache probe (ns)
    materialized_rule_pct,   ///< lazy translation: % of eager rules materialized (0-100)
    patch_apply,             ///< PATCH delta application (copy + overlay + rebase) (ns)
    saturation_frontier,     ///< parallel solver: items drained per round (count)
    count_,
};
inline constexpr std::size_t k_histogram_count = static_cast<std::size_t>(Histogram::count_);

/// 48 log2 buckets cover [0, 2^46) exactly (= ~19.5h in nanoseconds) with
/// everything above in the overflow bucket; upper bound of bucket i is
/// 2^i - 1 recorded units (the last bucket is +Inf).
inline constexpr std::size_t k_histogram_buckets = 48;

[[nodiscard]] constexpr std::size_t histogram_bucket(std::uint64_t value) {
    const auto width = static_cast<std::size_t>(std::bit_width(value));
    return width < k_histogram_buckets ? width : k_histogram_buckets - 1;
}

/// Inclusive upper bound of bucket `index` in recorded units; the last
/// bucket is unbounded and reported as +Inf by the exposition writers.
[[nodiscard]] constexpr std::uint64_t histogram_bucket_upper(std::size_t index) {
    return (std::uint64_t{1} << index) - 1;
}

[[nodiscard]] std::string_view name_of(Counter counter);
[[nodiscard]] std::string_view name_of(Gauge gauge);
[[nodiscard]] std::string_view name_of(Histogram histogram);

/// Prometheus exposition metadata for one histogram.  Histograms sharing a
/// `family` differ only in `label` (e.g. the per-engine query durations all
/// expose as `aalwines_query_duration_seconds{engine="..."}`).
struct HistogramInfo {
    std::string_view family; ///< Prometheus metric family name
    std::string_view label;  ///< label pair rendered into every series, may be empty
    double scale = 1.0;      ///< recorded unit -> exposed unit (ns -> s: 1e-9)
    std::string_view help;   ///< one-line HELP text
};

[[nodiscard]] const HistogramInfo& info_of(Histogram histogram);

/// One node of the merged trace tree (times relative to the registry
/// epoch — process start or the last reset()).
struct SpanNode {
    std::string name;
    double start_us = 0.0;
    double duration_us = 0.0;
    bool open = false; ///< still running when the snapshot was taken
    std::vector<SpanNode> children;
};

struct ThreadTrace {
    std::uint32_t thread = 0; ///< registry-assigned dense thread index
    std::vector<SpanNode> roots;
};

/// Merged distribution for one Histogram: per-bucket observation counts
/// plus running count/sum in recorded units.
struct HistogramData {
    std::array<std::uint64_t, k_histogram_buckets> buckets{};
    std::uint64_t count = 0;
    std::uint64_t sum = 0;

    /// Bucket-interpolated quantile (q in [0,1]) in recorded units.  Walks
    /// the buckets to the one holding the q-th observation and interpolates
    /// linearly inside it; exact when every observation in the bucket is
    /// uniformly spread, and always within one power of two of the truth.
    [[nodiscard]] double quantile(double q) const;
    [[nodiscard]] double p50() const { return quantile(0.50); }
    [[nodiscard]] double p90() const { return quantile(0.90); }
    [[nodiscard]] double p99() const { return quantile(0.99); }
};

struct Snapshot {
    std::array<std::uint64_t, k_counter_count> counters{};
    std::array<std::uint64_t, k_gauge_count> gauges{};
    std::array<HistogramData, k_histogram_count> histograms{};
    std::vector<ThreadTrace> threads;

    [[nodiscard]] std::uint64_t counter(Counter c) const {
        return counters[static_cast<std::size_t>(c)];
    }
    [[nodiscard]] std::uint64_t gauge(Gauge g) const {
        return gauges[static_cast<std::size_t>(g)];
    }
    [[nodiscard]] const HistogramData& histogram(Histogram h) const {
        return histograms[static_cast<std::size_t>(h)];
    }
};

namespace detail {

struct SpanRecord {
    const char* name = nullptr; ///< static string (literal) supplied by the probe
    std::int32_t parent = -1;   ///< index into the same buffer; -1 = root
    std::uint64_t start_ns = 0;
    std::uint64_t end_ns = 0;   ///< 0 = still open
};

/// Per-thread probe sink.  Registered with the Registry on construction,
/// retired into it when the thread exits.
class ThreadBuffer {
public:
    ThreadBuffer();
    ~ThreadBuffer();
    ThreadBuffer(const ThreadBuffer&) = delete;
    ThreadBuffer& operator=(const ThreadBuffer&) = delete;

    // Counters/gauges/histograms: written by the owning thread with relaxed
    // atomics, read by snapshots from any thread.  The cache lines are
    // effectively thread-private, so the adds cost the same as plain
    // increments.
    std::array<std::atomic<std::uint64_t>, k_counter_count> counters{};
    std::array<std::atomic<std::uint64_t>, k_gauge_count> gauges{};

    struct HistogramCell {
        std::array<std::atomic<std::uint64_t>, k_histogram_buckets> buckets{};
        std::atomic<std::uint64_t> count{0};
        std::atomic<std::uint64_t> sum{0};
    };
    std::array<HistogramCell, k_histogram_count> histograms{};

    // Spans: mutated only by the owning thread, but snapshots copy them
    // cross-thread, so open/close/copy are guarded.  Spans are per phase,
    // not per worklist item, so this mutex is cold and uncontended.
    util::Mutex span_mutex;
    std::vector<SpanRecord> spans GUARDED_BY(span_mutex);
    std::int32_t current GUARDED_BY(span_mutex) = -1; ///< innermost open span, -1 = none
};

#if AALWINES_TELEMETRY_ENABLED
[[nodiscard]] ThreadBuffer& buffer();
#endif
[[nodiscard]] std::uint64_t now_ns();

} // namespace detail

/// Add `n` to a counter (hot-path safe).
inline void count([[maybe_unused]] Counter counter, [[maybe_unused]] std::uint64_t n = 1) {
#if AALWINES_TELEMETRY_ENABLED
    detail::buffer().counters[static_cast<std::size_t>(counter)].fetch_add(
        n, std::memory_order_relaxed);
#endif
}

/// Raise a gauge to at least `value` (hot-path safe).
inline void gauge_max([[maybe_unused]] Gauge gauge, [[maybe_unused]] std::uint64_t value) {
#if AALWINES_TELEMETRY_ENABLED
    auto& cell = detail::buffer().gauges[static_cast<std::size_t>(gauge)];
    auto current = cell.load(std::memory_order_relaxed);
    while (value > current &&
           !cell.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
    }
#endif
}

/// Record one observation in recorded units (hot-path safe: three relaxed
/// adds on thread-private cache lines).
inline void observe([[maybe_unused]] Histogram histogram,
                    [[maybe_unused]] std::uint64_t value) {
#if AALWINES_TELEMETRY_ENABLED
    auto& cell = detail::buffer().histograms[static_cast<std::size_t>(histogram)];
    cell.buckets[histogram_bucket(value)].fetch_add(1, std::memory_order_relaxed);
    cell.count.fetch_add(1, std::memory_order_relaxed);
    cell.sum.fetch_add(value, std::memory_order_relaxed);
#endif
}

/// Record a duration given in seconds into a nanosecond-unit histogram.
inline void observe_duration([[maybe_unused]] Histogram histogram,
                             [[maybe_unused]] double seconds) {
#if AALWINES_TELEMETRY_ENABLED
    if (seconds < 0) seconds = 0;
    observe(histogram, static_cast<std::uint64_t>(seconds * 1e9));
#endif
}

/// Scoped span timer.  Construction opens a child of the innermost open
/// span on this thread; destruction closes it.  `name` must be a string
/// with static storage duration (a literal).
class Span {
public:
#if AALWINES_TELEMETRY_ENABLED
    explicit Span(const char* name);
    ~Span();
#else
    explicit Span(const char*) noexcept {}
#endif
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

private:
#if AALWINES_TELEMETRY_ENABLED
    std::int32_t _index = -1;
#endif
};

class Registry {
public:
    [[nodiscard]] static Registry& global();

    /// Merge every live and retired thread buffer into one Snapshot.
    /// Counters sum, gauges max, span trees are reported per thread.
    [[nodiscard]] Snapshot snapshot();

    /// Zero all counters/gauges, drop completed spans and retired buffers,
    /// and restart the time epoch.  Spans still open on the calling thread
    /// survive (re-rooted); other threads must not have open spans.
    void reset();

private:
    friend class detail::ThreadBuffer;
    Registry();

    void attach(detail::ThreadBuffer* buffer);
    void detach(detail::ThreadBuffer* buffer);

    struct Retired {
        std::array<std::uint64_t, k_counter_count> counters{};
        std::array<std::uint64_t, k_gauge_count> gauges{};
        std::array<HistogramData, k_histogram_count> histograms{};
        std::vector<detail::SpanRecord> spans;
        std::uint32_t thread_index = 0;
    };
    struct Live {
        detail::ThreadBuffer* buffer = nullptr;
        std::uint32_t thread_index = 0; ///< registry-assigned dense index
    };

    // Lock order: _mutex before any buffer's span_mutex (snapshot/reset/
    // detach all follow it; Span open/close takes only its own span_mutex).
    util::Mutex _mutex;
    std::vector<Live> _live GUARDED_BY(_mutex);
    std::vector<Retired> _retired GUARDED_BY(_mutex);
    std::uint32_t _next_thread_index GUARDED_BY(_mutex) = 0;
    std::uint64_t _epoch_ns GUARDED_BY(_mutex) = 0;
};

/// Shorthands over the global registry.
[[nodiscard]] Snapshot snapshot();
void reset();

/// Serialise a snapshot as the `aalwines-trace-2` JSON document.
[[nodiscard]] std::string to_json(const Snapshot& snap, int indent = 2);

/// Peak resident set size in kB (VmHWM from /proc/self/status; 0 when
/// unavailable on this platform).
[[nodiscard]] std::size_t peak_rss_kb();

} // namespace aalwines::telemetry

#define AALWINES_TELEMETRY_CAT2(a, b) a##b
#define AALWINES_TELEMETRY_CAT(a, b) AALWINES_TELEMETRY_CAT2(a, b)
#if AALWINES_TELEMETRY_ENABLED
/// Open a span for the rest of the enclosing scope.
#define AALWINES_SPAN(name) \
    ::aalwines::telemetry::Span AALWINES_TELEMETRY_CAT(aalwines_span_, __LINE__)(name)
#else
#define AALWINES_SPAN(name) static_cast<void>(0)
#endif
