#pragma once
// Cross-cutting telemetry for the verification pipeline: scoped RAII span
// timers forming a hierarchical trace tree per thread, monotonic counters
// and max-gauges, aggregated by a process-global Registry.
//
// Probes are designed for the solver hot path: counters and gauges land in
// a thread-local buffer (one relaxed atomic add, no shared cache line, no
// lock), so `verify_batch` workers never contend.  Only opening/closing a
// span takes a (thread-local, uncontended) mutex, and spans fire per
// pipeline phase, not per worklist item.  The Registry merges live and
// retired thread buffers on demand into a Snapshot that serialises to JSON
// (see docs/OBSERVABILITY.md for the schema).
//
// Compile-time gated by the CMake option AALWINES_TELEMETRY (default ON),
// which defines AALWINES_TELEMETRY_ENABLED=1/0.  When disabled, every
// probe — count(), gauge_max(), Span, AALWINES_SPAN — reduces to a no-op
// and snapshots are empty; the API stays source-compatible.

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#ifndef AALWINES_TELEMETRY_ENABLED
#define AALWINES_TELEMETRY_ENABLED 1
#endif

namespace aalwines::telemetry {

/// Monotonic counters, one per instrumented event class.  Totals are
/// deterministic for a fixed workload regardless of thread count.
enum class Counter : std::uint32_t {
    queries_parsed,         ///< query::parse_query calls
    nfa_states_built,       ///< NFA states constructed (Thompson + product)
    nfa_edges_built,        ///< NFA edges constructed
    pda_states_interned,    ///< PDA control + chain states (translation)
    pda_rules_emitted,      ///< PDA rules emitted by the translation
    pda_rules_total,        ///< rules an eager translation would emit (pre-reduction)
    pda_rules_materialized, ///< rules demand-materialized during lazy saturation
    pda_states_materialized,///< states whose outgoing rules were demanded (lazy)
    reduction_rules_pruned, ///< rules removed by the top-of-stack reduction
    post_star_pops,         ///< post* worklist items finalized
    pre_star_pops,          ///< pre* worklist items finalized
    edge_relaxations,       ///< transition inserts/weight decreases enqueued
    epsilon_relaxations,    ///< ε-transition inserts/decreases enqueued
    accept_decrease_keys,   ///< Dijkstra decrease-keys in find_accepted[_n]
    witness_unroll_steps,   ///< provenance-walk steps during unrolling
    traces_reconstructed,   ///< witnesses successfully mapped to traces
    server_requests,        ///< HTTP requests handled by the verification daemon
    server_rejected,        ///< requests refused by admission control (503)
    server_cache_hits,      ///< compiled-query cache hits (src/server/cache.hpp)
    server_cache_misses,    ///< compiled-query cache misses
    count_,
};
inline constexpr std::size_t k_counter_count = static_cast<std::size_t>(Counter::count_);

/// High-water marks; aggregation keeps the maximum across threads/runs.
enum class Gauge : std::uint32_t {
    transition_high_water, ///< P-automaton transition table size after saturation
    epsilon_high_water,    ///< ε-transition table size after saturation
    worklist_high_water,   ///< peak saturation worklist length
    server_queue_high_water, ///< peak pending-connection queue depth (daemon)
    count_,
};
inline constexpr std::size_t k_gauge_count = static_cast<std::size_t>(Gauge::count_);

[[nodiscard]] std::string_view name_of(Counter counter);
[[nodiscard]] std::string_view name_of(Gauge gauge);

/// One node of the merged trace tree (times relative to the registry
/// epoch — process start or the last reset()).
struct SpanNode {
    std::string name;
    double start_us = 0.0;
    double duration_us = 0.0;
    bool open = false; ///< still running when the snapshot was taken
    std::vector<SpanNode> children;
};

struct ThreadTrace {
    std::uint32_t thread = 0; ///< registry-assigned dense thread index
    std::vector<SpanNode> roots;
};

struct Snapshot {
    std::array<std::uint64_t, k_counter_count> counters{};
    std::array<std::uint64_t, k_gauge_count> gauges{};
    std::vector<ThreadTrace> threads;

    [[nodiscard]] std::uint64_t counter(Counter c) const {
        return counters[static_cast<std::size_t>(c)];
    }
    [[nodiscard]] std::uint64_t gauge(Gauge g) const {
        return gauges[static_cast<std::size_t>(g)];
    }
};

namespace detail {

struct SpanRecord {
    const char* name = nullptr; ///< static string (literal) supplied by the probe
    std::int32_t parent = -1;   ///< index into the same buffer; -1 = root
    std::uint64_t start_ns = 0;
    std::uint64_t end_ns = 0;   ///< 0 = still open
};

/// Per-thread probe sink.  Registered with the Registry on construction,
/// retired into it when the thread exits.
class ThreadBuffer {
public:
    ThreadBuffer();
    ~ThreadBuffer();
    ThreadBuffer(const ThreadBuffer&) = delete;
    ThreadBuffer& operator=(const ThreadBuffer&) = delete;

    // Counters/gauges: written by the owning thread with relaxed atomics,
    // read by snapshots from any thread.  The cache line is effectively
    // thread-private, so the adds cost the same as plain increments.
    std::array<std::atomic<std::uint64_t>, k_counter_count> counters{};
    std::array<std::atomic<std::uint64_t>, k_gauge_count> gauges{};

    // Spans: mutated only by the owning thread, but snapshots copy them
    // cross-thread, so open/close/copy are guarded.  Spans are per phase,
    // not per worklist item, so this mutex is cold and uncontended.
    std::mutex span_mutex;
    std::vector<SpanRecord> spans;
    std::int32_t current = -1; ///< innermost open span, -1 = none
    std::uint32_t thread_index = 0;
};

#if AALWINES_TELEMETRY_ENABLED
[[nodiscard]] ThreadBuffer& buffer();
#endif
[[nodiscard]] std::uint64_t now_ns();

} // namespace detail

/// Add `n` to a counter (hot-path safe).
inline void count([[maybe_unused]] Counter counter, [[maybe_unused]] std::uint64_t n = 1) {
#if AALWINES_TELEMETRY_ENABLED
    detail::buffer().counters[static_cast<std::size_t>(counter)].fetch_add(
        n, std::memory_order_relaxed);
#endif
}

/// Raise a gauge to at least `value` (hot-path safe).
inline void gauge_max([[maybe_unused]] Gauge gauge, [[maybe_unused]] std::uint64_t value) {
#if AALWINES_TELEMETRY_ENABLED
    auto& cell = detail::buffer().gauges[static_cast<std::size_t>(gauge)];
    auto current = cell.load(std::memory_order_relaxed);
    while (value > current &&
           !cell.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
    }
#endif
}

/// Scoped span timer.  Construction opens a child of the innermost open
/// span on this thread; destruction closes it.  `name` must be a string
/// with static storage duration (a literal).
class Span {
public:
#if AALWINES_TELEMETRY_ENABLED
    explicit Span(const char* name);
    ~Span();
#else
    explicit Span(const char*) noexcept {}
#endif
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

private:
#if AALWINES_TELEMETRY_ENABLED
    std::int32_t _index = -1;
#endif
};

class Registry {
public:
    [[nodiscard]] static Registry& global();

    /// Merge every live and retired thread buffer into one Snapshot.
    /// Counters sum, gauges max, span trees are reported per thread.
    [[nodiscard]] Snapshot snapshot();

    /// Zero all counters/gauges, drop completed spans and retired buffers,
    /// and restart the time epoch.  Spans still open on the calling thread
    /// survive (re-rooted); other threads must not have open spans.
    void reset();

private:
    friend class detail::ThreadBuffer;
    Registry();

    void attach(detail::ThreadBuffer* buffer);
    void detach(detail::ThreadBuffer* buffer);

    struct Retired {
        std::array<std::uint64_t, k_counter_count> counters{};
        std::array<std::uint64_t, k_gauge_count> gauges{};
        std::vector<detail::SpanRecord> spans;
        std::uint32_t thread_index = 0;
    };

    std::mutex _mutex;
    std::vector<detail::ThreadBuffer*> _live;
    std::vector<Retired> _retired;
    std::uint32_t _next_thread_index = 0;
    std::uint64_t _epoch_ns = 0;
};

/// Shorthands over the global registry.
[[nodiscard]] Snapshot snapshot();
void reset();

/// Serialise a snapshot as the `aalwines-trace-1` JSON document.
[[nodiscard]] std::string to_json(const Snapshot& snap, int indent = 2);

/// Peak resident set size in kB (VmHWM from /proc/self/status; 0 when
/// unavailable on this platform).
[[nodiscard]] std::size_t peak_rss_kb();

} // namespace aalwines::telemetry

#define AALWINES_TELEMETRY_CAT2(a, b) a##b
#define AALWINES_TELEMETRY_CAT(a, b) AALWINES_TELEMETRY_CAT2(a, b)
#if AALWINES_TELEMETRY_ENABLED
/// Open a span for the rest of the enclosing scope.
#define AALWINES_SPAN(name) \
    ::aalwines::telemetry::Span AALWINES_TELEMETRY_CAT(aalwines_span_, __LINE__)(name)
#else
#define AALWINES_SPAN(name) static_cast<void>(0)
#endif
