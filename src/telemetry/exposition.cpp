#include "telemetry/exposition.hpp"

#include <cinttypes>
#include <cstdio>

#include "json/json.hpp"

namespace aalwines::telemetry {

namespace {

/// Shortest round-trippable decimal for exposition values; %.9g keeps
/// le-boundaries like 1e-09 compact and locale-independent.
std::string number(double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", value);
    return buf;
}

std::string number(std::uint64_t value) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64, value);
    return buf;
}

void append_series(std::string& out, std::string_view name, std::string_view labels,
                   const std::string& value) {
    out.append(name);
    if (!labels.empty()) {
        out.push_back('{');
        out.append(labels);
        out.push_back('}');
    }
    out.push_back(' ');
    out.append(value);
    out.push_back('\n');
}

void append_header(std::string& out, std::string_view name, std::string_view type,
                   std::string_view help) {
    out.append("# HELP ").append(name).push_back(' ');
    out.append(help).push_back('\n');
    out.append("# TYPE ").append(name).push_back(' ');
    out.append(type).push_back('\n');
}

void append_histogram_series(std::string& out, const HistogramInfo& info,
                             const HistogramData& data) {
    const std::string bucket_name = std::string(info.family) + "_bucket";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < k_histogram_buckets; ++b) {
        cumulative += data.buckets[b];
        std::string labels(info.label);
        if (!labels.empty()) labels.push_back(',');
        labels.append("le=\"");
        if (b + 1 == k_histogram_buckets)
            labels.append("+Inf");
        else
            labels.append(
                number(static_cast<double>(histogram_bucket_upper(b)) * info.scale));
        labels.push_back('"');
        append_series(out, bucket_name, labels, number(cumulative));
    }
    append_series(out, std::string(info.family) + "_sum", info.label,
                  number(static_cast<double>(data.sum) * info.scale));
    append_series(out, std::string(info.family) + "_count", info.label,
                  number(data.count));
}

} // namespace

std::string to_prometheus(const Snapshot& snap, const std::vector<ExpositionGauge>& extra) {
    std::string out;
    out.reserve(1 << 15);

    for (std::size_t i = 0; i < k_counter_count; ++i) {
        const auto name =
            "aalwines_" + std::string(name_of(static_cast<Counter>(i))) + "_total";
        append_header(out, name, "counter",
                      "Monotonic event count since process start or the last reset.");
        append_series(out, name, {}, number(snap.counters[i]));
    }

    for (std::size_t i = 0; i < k_gauge_count; ++i) {
        const auto name = "aalwines_" + std::string(name_of(static_cast<Gauge>(i)));
        append_header(out, name, "gauge",
                      "High-water mark (maximum across threads and runs).");
        append_series(out, name, {}, number(snap.gauges[i]));
    }

    for (const auto& gauge : extra) {
        append_header(out, gauge.name, "gauge", gauge.help);
        append_series(out, gauge.name, {}, number(gauge.value));
    }

    {
        const std::string name = "aalwines_process_peak_rss_kilobytes";
        append_header(out, name, "gauge",
                      "Process-wide peak resident set size (VmHWM), in kilobytes.");
        append_series(out, name, {},
                      number(static_cast<std::uint64_t>(peak_rss_kb())));
    }

    // Histograms sharing a family (the per-engine/per-phase variants) must
    // emit HELP/TYPE once and their labelled series together; variants are
    // adjacent in enum order, so one look-behind suffices.
    for (std::size_t i = 0; i < k_histogram_count; ++i) {
        const auto& info = info_of(static_cast<Histogram>(i));
        const bool new_family =
            i == 0 || info_of(static_cast<Histogram>(i - 1)).family != info.family;
        if (new_family) append_header(out, info.family, "histogram", info.help);
        append_histogram_series(out, info, snap.histograms[i]);
    }

    return out;
}

std::string to_chrome_trace(const Snapshot& snap) {
    json::Array events;
    for (const auto& trace : snap.threads) {
        auto emit = [&](const auto& self, const SpanNode& node) -> void {
            json::Object event;
            event.emplace("name", node.name);
            event.emplace("cat", node.open ? "aalwines,open" : "aalwines");
            event.emplace("ph", "X");
            event.emplace("ts", node.start_us);
            event.emplace("dur", node.duration_us);
            event.emplace("pid", 1);
            event.emplace("tid", static_cast<std::size_t>(trace.thread));
            events.emplace_back(std::move(event));
            for (const auto& child : node.children) self(self, child);
        };
        for (const auto& root : trace.roots) emit(emit, root);
    }
    json::Object document;
    document.emplace("traceEvents", json::Value(std::move(events)));
    document.emplace("displayTimeUnit", "ms");
    return json::write(json::Value(std::move(document)), 1);
}

} // namespace aalwines::telemetry
