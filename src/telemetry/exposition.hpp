#pragma once
// Standard-format exports of a telemetry Snapshot:
//
//  * to_prometheus()   — text exposition format 0.0.4, scrapeable by any
//    Prometheus/Grafana stack (served by `GET /metrics?format=prometheus`).
//  * to_chrome_trace() — Chrome trace-event JSON for the span tree; the
//    file opens directly in ui.perfetto.dev or chrome://tracing (written
//    by the CLI's --trace-chrome flag).
//
// Both writers are deterministic: metric families are emitted in enum
// order and span events in (thread, open-order) order, so fixed inputs
// produce byte-identical output.

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace aalwines::telemetry {

/// Extra point-in-time gauge to splice into the exposition (server state
/// such as cache entries or queue depth that lives outside the registry).
struct ExpositionGauge {
    std::string name;  ///< full Prometheus metric name (aalwines_...)
    std::string help;  ///< one-line HELP text
    double value = 0;
};

/// Render the snapshot in Prometheus text exposition format 0.0.4:
/// counters as `aalwines_<name>_total`, registry gauges as
/// `aalwines_<name>`, histograms as cumulative `_bucket{le=...}` series
/// plus `_sum`/`_count`, and `aalwines_process_peak_rss_kilobytes`.
[[nodiscard]] std::string to_prometheus(const Snapshot& snap,
                                        const std::vector<ExpositionGauge>& extra = {});

/// Render the span tree as a Chrome trace-event JSON document (an object
/// with a `traceEvents` array of "ph":"X" complete events; timestamps and
/// durations in microseconds, tid = registry thread index).
[[nodiscard]] std::string to_chrome_trace(const Snapshot& snap);

} // namespace aalwines::telemetry
