#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <sstream>

#include "json/json.hpp"

namespace aalwines::telemetry {

std::string_view name_of(Counter counter) {
    switch (counter) {
        case Counter::queries_parsed: return "queries_parsed";
        case Counter::nfa_states_built: return "nfa_states_built";
        case Counter::nfa_edges_built: return "nfa_edges_built";
        case Counter::pda_states_interned: return "pda_states_interned";
        case Counter::pda_rules_emitted: return "pda_rules_emitted";
        case Counter::pda_rules_total: return "pda_rules_total";
        case Counter::pda_rules_materialized: return "pda_rules_materialized";
        case Counter::pda_states_materialized: return "pda_states_materialized";
        case Counter::reduction_rules_pruned: return "reduction_rules_pruned";
        case Counter::post_star_pops: return "post_star_pops";
        case Counter::pre_star_pops: return "pre_star_pops";
        case Counter::edge_relaxations: return "edge_relaxations";
        case Counter::epsilon_relaxations: return "epsilon_relaxations";
        case Counter::accept_decrease_keys: return "accept_decrease_keys";
        case Counter::witness_unroll_steps: return "witness_unroll_steps";
        case Counter::traces_reconstructed: return "traces_reconstructed";
        case Counter::server_requests: return "server_requests";
        case Counter::server_rejected: return "server_rejected";
        case Counter::server_cache_hits: return "server_cache_hits";
        case Counter::server_cache_misses: return "server_cache_misses";
        case Counter::server_cache_evictions: return "server_cache_evictions";
        case Counter::server_patches: return "server_patches";
        case Counter::delta_tier1_reused: return "delta_tier1_reused";
        case Counter::delta_tier2_resaturations: return "delta_tier2_resaturations";
        case Counter::delta_cold_rebuilds: return "delta_cold_rebuilds";
        case Counter::delta_states_invalidated: return "delta_states_invalidated";
        case Counter::solver_parallel_pops: return "solver_parallel_pops";
        case Counter::solver_handoff_tuples: return "solver_handoff_tuples";
        case Counter::solver_parallel_rounds: return "solver_parallel_rounds";
        case Counter::count_: break;
    }
    return "?";
}

std::string_view name_of(Gauge gauge) {
    switch (gauge) {
        case Gauge::transition_high_water: return "transition_high_water";
        case Gauge::epsilon_high_water: return "epsilon_high_water";
        case Gauge::worklist_high_water: return "worklist_high_water";
        case Gauge::server_queue_high_water: return "server_queue_high_water";
        case Gauge::cache_entries_high_water: return "cache_entries_high_water";
        case Gauge::solver_threads_high_water: return "solver_threads_high_water";
        case Gauge::shard_imbalance_pct_high_water: return "shard_imbalance_pct_high_water";
        case Gauge::count_: break;
    }
    return "?";
}

std::string_view name_of(Histogram histogram) {
    switch (histogram) {
        case Histogram::request_duration: return "request_duration";
        case Histogram::request_queue_wait: return "request_queue_wait";
        case Histogram::query_duration_dual: return "query_duration_dual";
        case Histogram::query_duration_weighted: return "query_duration_weighted";
        case Histogram::query_duration_moped: return "query_duration_moped";
        case Histogram::query_duration_exact: return "query_duration_exact";
        case Histogram::query_translate: return "query_translate";
        case Histogram::query_saturate: return "query_saturate";
        case Histogram::query_witness: return "query_witness";
        case Histogram::cache_lookup: return "cache_lookup";
        case Histogram::materialized_rule_pct: return "materialized_rule_pct";
        case Histogram::patch_apply: return "patch_apply";
        case Histogram::saturation_frontier: return "saturation_frontier";
        case Histogram::count_: break;
    }
    return "?";
}

const HistogramInfo& info_of(Histogram histogram) {
    static constexpr double k_ns = 1e-9;   // recorded nanoseconds -> seconds
    static constexpr double k_pct = 1e-2;  // recorded percent -> ratio
    static const std::array<HistogramInfo, k_histogram_count> infos = {{
        {"aalwines_request_duration_seconds", "",
         k_ns, "Wall-clock time spent handling one HTTP request in the daemon."},
        {"aalwines_request_queue_wait_seconds", "",
         k_ns, "Time a request waited in the accept queue before a worker picked it up."},
        {"aalwines_query_duration_seconds", "engine=\"dual\"",
         k_ns, "End-to-end verify() wall clock per query, by engine."},
        {"aalwines_query_duration_seconds", "engine=\"weighted\"",
         k_ns, "End-to-end verify() wall clock per query, by engine."},
        {"aalwines_query_duration_seconds", "engine=\"moped\"",
         k_ns, "End-to-end verify() wall clock per query, by engine."},
        {"aalwines_query_duration_seconds", "engine=\"exact\"",
         k_ns, "End-to-end verify() wall clock per query, by engine."},
        {"aalwines_query_phase_seconds", "phase=\"translate\"",
         k_ns, "Per-pass pipeline phase wall clock."},
        {"aalwines_query_phase_seconds", "phase=\"saturate\"",
         k_ns, "Per-pass pipeline phase wall clock."},
        {"aalwines_query_phase_seconds", "phase=\"witness\"",
         k_ns, "Per-pass pipeline phase wall clock."},
        {"aalwines_cache_lookup_seconds", "",
         k_ns, "Compiled-query result cache probe latency."},
        {"aalwines_materialized_rule_ratio", "",
         k_pct, "Fraction of eager-translation rules materialized by lazy saturation."},
        {"aalwines_patch_apply_seconds", "",
         k_ns, "PATCH delta application latency (network copy + overlay + rebase)."},
        {"aalwines_saturation_frontier_items", "",
         1.0, "Items drained per round by the sharded parallel saturation solver."},
    }};
    return infos[static_cast<std::size_t>(histogram)];
}

double HistogramData::quantile(double q) const {
    if (count == 0) return 0.0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    // Rank of the target observation, 1-based, ceil so that q=1 is the max.
    const auto target = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count))));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < k_histogram_buckets; ++i) {
        if (buckets[i] == 0) continue;
        if (seen + buckets[i] < target) {
            seen += buckets[i];
            continue;
        }
        // Interpolate linearly inside bucket i: values lie in
        // [2^(i-1), 2^i - 1] (bucket 0 holds exactly the value 0).
        if (i == 0) return 0.0;
        const auto lower = static_cast<double>(std::uint64_t{1} << (i - 1));
        const auto upper = static_cast<double>(histogram_bucket_upper(i));
        const auto into = static_cast<double>(target - seen - 1);
        const auto width = static_cast<double>(buckets[i]);
        return lower + (upper - lower) * (width > 1.0 ? into / (width - 1.0) : 0.5);
    }
    return static_cast<double>(histogram_bucket_upper(k_histogram_buckets - 1));
}

namespace detail {

std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

ThreadBuffer::ThreadBuffer() { Registry::global().attach(this); }

ThreadBuffer::~ThreadBuffer() { Registry::global().detach(this); }

#if AALWINES_TELEMETRY_ENABLED
ThreadBuffer& buffer() {
    thread_local ThreadBuffer instance;
    return instance;
}
#endif

} // namespace detail

#if AALWINES_TELEMETRY_ENABLED
Span::Span(const char* name) {
    auto& buf = detail::buffer();
    const util::MutexLock lock(buf.span_mutex);
    _index = static_cast<std::int32_t>(buf.spans.size());
    buf.spans.push_back({name, buf.current, detail::now_ns(), 0});
    buf.current = _index;
}

Span::~Span() {
    auto& buf = detail::buffer();
    const util::MutexLock lock(buf.span_mutex);
    buf.spans[static_cast<std::size_t>(_index)].end_ns = detail::now_ns();
    buf.current = buf.spans[static_cast<std::size_t>(_index)].parent;
}
#endif

Registry::Registry() : _epoch_ns(detail::now_ns()) {}

Registry& Registry::global() {
    static Registry instance;
    return instance;
}

void Registry::attach(detail::ThreadBuffer* buffer) {
    const util::MutexLock lock(_mutex);
    _live.push_back({buffer, _next_thread_index++});
}

void Registry::detach(detail::ThreadBuffer* buffer) {
    const util::MutexLock lock(_mutex);
    Retired retired;
    for (auto it = _live.begin(); it != _live.end(); ++it) {
        if (it->buffer != buffer) continue;
        retired.thread_index = it->thread_index;
        _live.erase(it);
        break;
    }
    for (std::size_t i = 0; i < k_counter_count; ++i)
        retired.counters[i] = buffer->counters[i].load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < k_gauge_count; ++i)
        retired.gauges[i] = buffer->gauges[i].load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < k_histogram_count; ++i) {
        auto& cell = buffer->histograms[i];
        auto& data = retired.histograms[i];
        for (std::size_t b = 0; b < k_histogram_buckets; ++b)
            data.buckets[b] = cell.buckets[b].load(std::memory_order_relaxed);
        data.count = cell.count.load(std::memory_order_relaxed);
        data.sum = cell.sum.load(std::memory_order_relaxed);
    }
    {
        // The owning thread is the only span writer and it is in this very
        // destructor, but the contract is per-field, not per-schedule.
        const util::MutexLock span_lock(buffer->span_mutex);
        retired.spans = std::move(buffer->spans);
    }
    _retired.push_back(std::move(retired));
}

namespace {

/// Assemble the nested SpanNode tree from the flat record list (records
/// are appended in open order, so parents precede their children).
std::vector<SpanNode> build_tree(const std::vector<detail::SpanRecord>& records,
                                 std::uint64_t epoch_ns, std::uint64_t now_ns) {
    std::vector<std::vector<std::size_t>> children(records.size());
    std::vector<std::size_t> roots;
    for (std::size_t i = 0; i < records.size(); ++i) {
        if (records[i].parent < 0)
            roots.push_back(i);
        else
            children[static_cast<std::size_t>(records[i].parent)].push_back(i);
    }
    auto make_node = [&](const auto& self, std::size_t index) -> SpanNode {
        const auto& record = records[index];
        SpanNode node;
        node.name = record.name != nullptr ? record.name : "?";
        const auto start = std::max(record.start_ns, epoch_ns);
        const auto end = record.end_ns != 0 ? record.end_ns : now_ns;
        node.open = record.end_ns == 0;
        node.start_us = static_cast<double>(start - epoch_ns) / 1000.0;
        node.duration_us = end > start ? static_cast<double>(end - start) / 1000.0 : 0.0;
        for (const auto child : children[index]) node.children.push_back(self(self, child));
        return node;
    };
    std::vector<SpanNode> result;
    result.reserve(roots.size());
    for (const auto root : roots) result.push_back(make_node(make_node, root));
    return result;
}

} // namespace

Snapshot Registry::snapshot() {
    const util::MutexLock lock(_mutex);
    const auto now = detail::now_ns();
    Snapshot snap;
    std::vector<std::pair<std::uint32_t, std::vector<detail::SpanRecord>>> span_sets;

    for (const auto& retired : _retired) {
        for (std::size_t i = 0; i < k_counter_count; ++i) snap.counters[i] += retired.counters[i];
        for (std::size_t i = 0; i < k_gauge_count; ++i)
            snap.gauges[i] = std::max(snap.gauges[i], retired.gauges[i]);
        for (std::size_t i = 0; i < k_histogram_count; ++i) {
            auto& into = snap.histograms[i];
            const auto& from = retired.histograms[i];
            for (std::size_t b = 0; b < k_histogram_buckets; ++b)
                into.buckets[b] += from.buckets[b];
            into.count += from.count;
            into.sum += from.sum;
        }
        if (!retired.spans.empty()) span_sets.emplace_back(retired.thread_index, retired.spans);
    }
    for (const auto& entry : _live) {
        auto* live = entry.buffer;
        for (std::size_t i = 0; i < k_counter_count; ++i)
            snap.counters[i] += live->counters[i].load(std::memory_order_relaxed);
        for (std::size_t i = 0; i < k_gauge_count; ++i)
            snap.gauges[i] =
                std::max(snap.gauges[i], live->gauges[i].load(std::memory_order_relaxed));
        for (std::size_t i = 0; i < k_histogram_count; ++i) {
            auto& into = snap.histograms[i];
            auto& cell = live->histograms[i];
            for (std::size_t b = 0; b < k_histogram_buckets; ++b)
                into.buckets[b] += cell.buckets[b].load(std::memory_order_relaxed);
            into.count += cell.count.load(std::memory_order_relaxed);
            into.sum += cell.sum.load(std::memory_order_relaxed);
        }
        const util::MutexLock span_lock(live->span_mutex);
        if (!live->spans.empty()) span_sets.emplace_back(entry.thread_index, live->spans);
    }

    std::sort(span_sets.begin(), span_sets.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto& [thread_index, records] : span_sets) {
        ThreadTrace trace;
        trace.thread = thread_index;
        trace.roots = build_tree(records, _epoch_ns, now);
        snap.threads.push_back(std::move(trace));
    }
    return snap;
}

void Registry::reset() {
    const util::MutexLock lock(_mutex);
    _retired.clear();
    _epoch_ns = detail::now_ns();
    for (const auto& entry : _live) {
        auto* live = entry.buffer;
        for (auto& counter : live->counters) counter.store(0, std::memory_order_relaxed);
        for (auto& gauge : live->gauges) gauge.store(0, std::memory_order_relaxed);
        for (auto& cell : live->histograms) {
            for (auto& bucket : cell.buckets) bucket.store(0, std::memory_order_relaxed);
            cell.count.store(0, std::memory_order_relaxed);
            cell.sum.store(0, std::memory_order_relaxed);
        }
        const util::MutexLock span_lock(live->span_mutex);
        // Keep the chain of still-open spans (the caller may hold Span
        // objects across the reset); everything completed is dropped.
        std::vector<detail::SpanRecord> kept;
        for (auto cursor = live->current; cursor >= 0;
             cursor = live->spans[static_cast<std::size_t>(cursor)].parent)
            kept.push_back(live->spans[static_cast<std::size_t>(cursor)]);
        std::reverse(kept.begin(), kept.end());
        for (std::size_t i = 0; i < kept.size(); ++i)
            kept[i].parent = static_cast<std::int32_t>(i) - 1;
        live->spans = std::move(kept);
        live->current = static_cast<std::int32_t>(live->spans.size()) - 1;
    }
}

Snapshot snapshot() { return Registry::global().snapshot(); }

void reset() { Registry::global().reset(); }

namespace {

/// Histogram in recorded units: count/sum/quantiles plus the non-empty
/// buckets as [inclusive_upper_bound, observations] pairs.
json::Value histogram_to_json(const HistogramData& data) {
    json::Object object;
    object.emplace("count", data.count);
    object.emplace("sum", data.sum);
    object.emplace("p50", data.p50());
    object.emplace("p90", data.p90());
    object.emplace("p99", data.p99());
    json::Array buckets;
    for (std::size_t b = 0; b < k_histogram_buckets; ++b) {
        if (data.buckets[b] == 0) continue;
        json::Array pair;
        pair.emplace_back(histogram_bucket_upper(b));
        pair.emplace_back(data.buckets[b]);
        buckets.emplace_back(std::move(pair));
    }
    object.emplace("buckets", json::Value(std::move(buckets)));
    return json::Value(std::move(object));
}

} // namespace

std::string to_json(const Snapshot& snap, int indent) {
    json::Object counters;
    for (std::size_t i = 0; i < k_counter_count; ++i)
        counters.emplace(std::string(name_of(static_cast<Counter>(i))), snap.counters[i]);
    json::Object gauges;
    for (std::size_t i = 0; i < k_gauge_count; ++i)
        gauges.emplace(std::string(name_of(static_cast<Gauge>(i))), snap.gauges[i]);
    json::Object histograms;
    for (std::size_t i = 0; i < k_histogram_count; ++i) {
        if (snap.histograms[i].count == 0) continue; // only observed histograms
        histograms.emplace(std::string(name_of(static_cast<Histogram>(i))),
                           histogram_to_json(snap.histograms[i]));
    }

    auto span_to_json = [](const auto& self, const SpanNode& node) -> json::Value {
        json::Object object;
        object.emplace("name", node.name);
        object.emplace("start_us", node.start_us);
        object.emplace("duration_us", node.duration_us);
        if (node.open) object.emplace("open", true);
        json::Array children;
        for (const auto& child : node.children) children.push_back(self(self, child));
        object.emplace("children", json::Value(std::move(children)));
        return json::Value(std::move(object));
    };

    json::Array threads;
    for (const auto& trace : snap.threads) {
        json::Object entry;
        entry.emplace("thread", static_cast<std::size_t>(trace.thread));
        json::Array spans;
        for (const auto& root : trace.roots) spans.push_back(span_to_json(span_to_json, root));
        entry.emplace("spans", json::Value(std::move(spans)));
        threads.emplace_back(std::move(entry));
    }

    json::Object document;
    document.emplace("schema", "aalwines-trace-2");
    document.emplace("counters", json::Value(std::move(counters)));
    document.emplace("gauges", json::Value(std::move(gauges)));
    document.emplace("histograms", json::Value(std::move(histograms)));
    document.emplace("threads", json::Value(std::move(threads)));
    return json::write(json::Value(std::move(document)), indent);
}

std::size_t peak_rss_kb() {
    std::ifstream status("/proc/self/status");
    if (!status) return 0;
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmHWM:", 0) != 0) continue;
        std::istringstream fields(line.substr(6));
        std::size_t kb = 0;
        fields >> kb;
        return kb;
    }
    return 0;
}

} // namespace aalwines::telemetry
