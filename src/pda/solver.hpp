#pragma once
// Weighted post*/pre* saturation (Reps, Schwoon, Jha, Melski 2005;
// Bouajjani, Esparza, Maler 1997) over P-automata, with:
//   * Dijkstra-ordered worklists — the first time an item is finalized its
//     weight is minimal (weights are monotone: every rule weight ≥ 1̄);
//   * symbolic set-labelled edges, so huge label classes never expand;
//   * per-transition provenance, from which minimum-weight witness rule
//     sequences are reconstructed without a second search.

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "nfa/nfa.hpp"
#include "pda/pautomaton.hpp"
#include "util/arena.hpp"
#include "util/task_pool.hpp"

namespace aalwines::pda {

/// Reusable scratch memory for the solver entry points.  Saturation and the
/// accepting-configuration search each reset their own arena on entry, so a
/// workspace shared across calls reuses the high-water footprint instead of
/// re-allocating.  Two arenas because the searches run *re-entrantly* inside
/// saturation (SolverOptions::check_accepted → find_accepted): one arena
/// would be reset under the worklist's live bucket nodes.  Not thread-safe:
/// one workspace per thread (the parallel solver's worker threads live
/// *inside* one workspace-owning call, they never share a workspace between
/// calls).
struct SolverWorkspace {
    util::Arena worklist; ///< post*/pre* bucket-queue nodes
    util::Arena search;   ///< find_accepted product-graph nodes
    /// Parallel saturation (SolverOptions::threads > 1) caches its worker
    /// pool and per-shard arenas here, so repeated queries on one workspace
    /// reuse threads and high-water shard memory.
    std::unique_ptr<util::TaskPool> pool;
    std::vector<util::Arena> shard_arenas;
};

/// Sentinel for SolverOptions::threads / AALWINES_SOLVER_THREADS=auto: pick
/// a thread count from the hardware and the problem size (1 when the
/// problem is small, weights are non-scalar, or the machine has one core).
inline constexpr std::size_t k_solver_threads_auto = SIZE_MAX;

/// Deterministic owner shard of a control/automaton state (splitmix-style
/// hash of the interned state id).  Exposed so tests can pin the
/// assignment: rebalancing changes must show up in review, not silently
/// reshuffle every parallel run.
[[nodiscard]] unsigned solver_shard_of(StateId state, unsigned shard_count) noexcept;

/// Worklist discipline for the saturation Dijkstra loop.
enum class Worklist : std::uint8_t {
    Auto,   ///< Bucket when every weight is a small scalar, else Heap
    Heap,   ///< binary heap ordered by (weight, insertion seq)
    Bucket, ///< Dial's bucket queue keyed on scalar weights, FIFO per bucket
            ///< (falls back to Heap when weights are not scalar)
};

struct SolverOptions {
    /// Worklist selection; Auto picks the bucket queue whenever sound.  The
    /// two disciplines finalize items in the identical (weight, insertion)
    /// order, so results do not depend on this knob (tested).
    Worklist worklist = Worklist::Auto;

    /// Optional scratch-memory workspace reused across calls.
    SolverWorkspace* workspace = nullptr;

    /// Saturation worker threads.  0 (the default) reads the
    /// AALWINES_SOLVER_THREADS environment override ("auto" or a count;
    /// unset → 1).  k_solver_threads_auto sizes from the hardware.  Any
    /// resolved count above 1 runs the sharded parallel loop — results
    /// (accepting sets and minimal weights) are identical to sequential;
    /// equal-weight witness tie-breaks may differ.  Forced back to 1 when
    /// the bucket worklist is ineligible (non-scalar weights, Heap).
    std::size_t threads = 0;

    /// Stop after this many finalized items (0 = unlimited).  A safety valve
    /// for benchmark timeouts; saturation is still sound when hit (the
    /// automaton under-approximates post*/pre*), the caller must treat a
    /// truncated run as inconclusive.
    std::size_t max_iterations = 0;

    /// Demand-driven early termination.  Called on an exponential schedule;
    /// must return the weight of the best configuration accepted *so far*
    /// (typically via find_accepted on the automaton being saturated, which
    /// only reads finalized items), or Weight::infinity() when none exists.
    /// Because items finalize in non-decreasing weight order and extend is
    /// monotone, saturation may stop as soon as that weight is <= the
    /// frontier weight: no cheaper accepted configuration can appear later.
    /// With unit weights this stops at the first check after satisfiability.
    std::function<Weight()> check_accepted;
};

struct SolverStats {
    std::size_t iterations = 0;  ///< worklist pops (items finalized)
    std::size_t transitions = 0; ///< automaton transitions after saturation
    std::size_t epsilons = 0;    ///< ε-transitions after saturation
    std::size_t relaxations = 0; ///< inserts/weight decreases enqueued
    std::size_t peak_queue = 0;  ///< worklist length high-water mark
    bool truncated = false;
    bool early_terminated = false;
    bool bucket_worklist = false; ///< the bucket queue was used for this run

    // Parallel saturation (threads_used > 1 only when the sharded loop ran).
    std::size_t threads_used = 1;
    std::size_t rounds = 0;   ///< level-synchronous key rounds executed
    std::size_t handoffs = 0; ///< staged tuples routed to a different shard
    std::vector<std::size_t> shard_pops; ///< per-shard finalized items
    /// max/mean of shard_pops (1.0 = perfectly balanced, threads = one shard
    /// did all the work); 0 when the sharded loop did not run or popped
    /// nothing.  The measurable target for work-stealing (ROADMAP item 1a).
    double shard_imbalance = 0.0;
};

/// Saturate `aut` (which initially accepts the source configurations C)
/// into an automaton accepting post*(C).  The initial automaton must have
/// no transitions into control states.
SolverStats post_star(PAutomaton& aut, const SolverOptions& options = {});

/// Saturate `aut` (initially accepting the target configurations C) into an
/// automaton accepting pre*(C).
SolverStats pre_star(PAutomaton& aut, const SolverOptions& options = {});

/// A configuration accepted by the automaton: control state + a concrete
/// stack spelled by `path` (one chosen symbol per traversed transition).
/// In a post*-saturated automaton the accepting run may start with one
/// ε-transition (ε-transitions leave control states only, and lead to
/// non-control states, so at most one can occur — and only as the first
/// move); `leading_epsilon` records it.
struct AcceptedConfig {
    Weight weight;
    StateId control_state = 0;
    std::optional<std::uint32_t> leading_epsilon;
    std::vector<std::pair<TransId, Symbol>> path;
};

/// Find the minimum-weight accepted configuration whose control state is in
/// `starts` and whose stack is in L(stack_nfa) (ε-free NFA over symbols
/// < domain).  Dijkstra over the product automaton; when every automaton
/// weight is scalar and the product is small enough, the node table is a
/// flat array in `workspace->search` (or a call-local arena).
[[nodiscard]] std::optional<AcceptedConfig> find_accepted(const PAutomaton& aut,
                                                          std::span<const StateId> starts,
                                                          const nfa::Nfa& stack_nfa,
                                                          Symbol domain,
                                                          SolverWorkspace* workspace = nullptr);

/// Up to `count` accepted configurations in non-decreasing weight order
/// (k-shortest accepting walks of the product automaton: each product node
/// may be settled up to `count` times).  Distinct walks may spell the same
/// configuration; callers deduplicate at their own level.
[[nodiscard]] std::vector<AcceptedConfig> find_accepted_n(const PAutomaton& aut,
                                                          std::span<const StateId> starts,
                                                          const nfa::Nfa& stack_nfa,
                                                          Symbol domain,
                                                          std::size_t count);

/// A concrete PDA run: start at `initial_state` with `initial_stack`
/// (top first) and apply `rules` in order.
struct PdaWitness {
    StateId initial_state = 0;
    std::vector<Symbol> initial_stack;
    std::vector<RuleId> rules;
};

/// Reconstruct the run leading to `config` in a post*-saturated automaton
/// (walks provenance backwards from the accepting path).
[[nodiscard]] std::optional<PdaWitness> unroll_post_star(const PAutomaton& aut,
                                                         const AcceptedConfig& config);

/// Reconstruct the run starting at `config` in a pre*-saturated automaton
/// (walks provenance forwards into the target set).
[[nodiscard]] std::optional<PdaWitness> unroll_pre_star(const PAutomaton& aut,
                                                        const AcceptedConfig& config);

/// Replay a witness on the PDA, returning the visited configurations
/// (state, stack top-first) including the initial one.  Returns nullopt if
/// the witness is not a valid run (used by tests and trace rebuilding).
[[nodiscard]] std::optional<std::vector<std::pair<StateId, std::vector<Symbol>>>>
replay_witness(const Pda& pda, const PdaWitness& witness);

} // namespace aalwines::pda
