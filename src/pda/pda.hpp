#pragma once
// Weighted pushdown system (paper §4.1).
//
// Rules are in the normal form  p γ → q w  with |w| ≤ 2:
//   Pop:   p γ → q ε
//   Swap:  p γ → q γ'
//   Push:  p γ → q γ₁γ₂   (γ₁ is the new top; γ₂ may be "same as matched")
//
// The left-hand symbol is a PreSpec: a concrete symbol, a *symbol class*
// (every symbol of one stratum — how the MPLS translation expresses "any
// label revealed by a pop, of the right kind"), or any symbol.  Classes keep
// the rule set polynomial instead of multiplying by the label alphabet.
//
// Every rule carries a Weight (see weight.hpp) and an opaque 32-bit tag the
// verification layer uses to map witness rule sequences back to forwarding
// decisions.

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "nfa/symbol_set.hpp"
#include "pda/weight.hpp"
#include "util/flat_map.hpp"

namespace aalwines::pda {

using StateId = std::uint32_t;
using Symbol = nfa::Symbol;
using RuleId = std::uint32_t;

inline constexpr Symbol k_no_symbol = UINT32_MAX;
/// In a Push rule, label2 == k_same_symbol keeps the matched symbol below
/// the newly pushed top (a plain MPLS push on an unknown stack).
inline constexpr Symbol k_same_symbol = UINT32_MAX - 1;

using SymbolClass = std::uint8_t;
inline constexpr SymbolClass k_no_class = 0xFF;

/// Left-hand-side symbol specification of a rule.
struct PreSpec {
    enum class Kind : std::uint8_t { Concrete, Class, Any };
    Kind kind = Kind::Concrete;
    Symbol symbol = k_no_symbol;  ///< for Concrete
    SymbolClass cls = k_no_class; ///< for Class

    [[nodiscard]] static PreSpec concrete(Symbol s) { return {Kind::Concrete, s, k_no_class}; }
    [[nodiscard]] static PreSpec of_class(SymbolClass c) {
        return {Kind::Class, k_no_symbol, c};
    }
    [[nodiscard]] static PreSpec any() { return {Kind::Any, k_no_symbol, k_no_class}; }

    bool operator==(const PreSpec&) const = default;
};

struct Rule {
    StateId from = 0;
    StateId to = 0;
    PreSpec pre;
    enum class OpKind : std::uint8_t { Pop, Swap, Push };
    OpKind op = OpKind::Pop;
    Symbol label1 = k_no_symbol; ///< Swap: written symbol; Push: new top
    Symbol label2 = k_no_symbol; ///< Push: symbol below top (or k_same_symbol)
    Weight weight = Weight::one();
    std::uint32_t tag = UINT32_MAX; ///< caller-defined; UINT32_MAX = internal
    /// Ordinal of this rule among the rules emitted from `from`, assigned by
    /// add_rule (caller-supplied values are overwritten).  Per-state emission
    /// sequences are canonical — identical across eager builds, lazy
    /// materialization order, and rebase re-materialization — so
    /// (from, ord) is a stable rule identity where the global RuleId is not
    /// (lazy materialization permutes id blocks between runs).  The solver's
    /// canonical witness tie-breaking keys on it.
    std::uint32_t ord = 0;
};

class Pda;

/// Demand-driven rule source (the lazy network→PDA translation).  A PDA with
/// a provider attached starts rule-less; the first time saturation asks for a
/// state's outgoing rules (`for_each_applicable`) the provider is invoked to
/// emit exactly that state's rules via `Pda::add_rule`.  Contract:
///   - every state is materialized at most once (the PDA tracks a bitmap);
///   - the provider may fill *other* states as a side effect (an op chain's
///     interior states are emitted together with the chain) and must mark
///     them with `Pda::mark_materialized` so they are not asked again;
///   - all states must exist before the provider is attached — materializing
///     never adds states (saturation shares the state id space with the
///     P-automaton's helper states, so the PDA cannot grow mid-run).
class RuleProvider {
public:
    virtual ~RuleProvider() = default;
    /// Emit every rule whose from-state is `state` (pda.add_rule).
    virtual void materialize_state(Pda& pda, StateId state) = 0;
};

class Pda {
public:
    /// `alphabet_size` is the stack-symbol universe [0, alphabet_size).
    explicit Pda(Symbol alphabet_size) : _alphabet_size(alphabet_size) {}

    StateId add_state() {
        _match_by_state.emplace_back();
        if (_provider != nullptr) {
            // Keep the lazy bookkeeping in step (only legal while no rule
            // references the new state yet — see RuleProvider contract).
            _materialized.push_back(false);
            _swaps_into.emplace_back();
            _pushes_into.emplace_back();
        }
        return static_cast<StateId>(_match_by_state.size() - 1);
    }

    /// Capacity hints for bulk construction (the translation knows its
    /// control-state count exactly and its rule count approximately);
    /// purely an allocation-churn optimization.
    void reserve_states(std::size_t count) { _match_by_state.reserve(count); }
    void reserve_rules(std::size_t count) {
        _rules.reserve(count);
        _rule_lists.reserve(count);
        _concrete_lists.reserve(count);
    }

    /// Declare that `symbol` belongs to `cls` (default: no class).
    void set_symbol_class(Symbol symbol, SymbolClass cls);

    RuleId add_rule(Rule rule);

    [[nodiscard]] std::size_t state_count() const noexcept { return _match_by_state.size(); }
    /// Live rules (excludes slots tombstoned by invalidate_states).
    [[nodiscard]] std::size_t rule_count() const noexcept {
        return _rules.size() - _free_rule_slots.size();
    }
    /// Bound for whole-PDA id loops; slots in [0, rule_slot_count()) may be
    /// dead — check rule_dead(id) when iterating a PDA that has been through
    /// invalidate_states (eager PDAs never have dead slots).
    [[nodiscard]] std::size_t rule_slot_count() const noexcept { return _rules.size(); }
    [[nodiscard]] bool rule_dead(RuleId id) const noexcept { return _dead_rules[id]; }
    [[nodiscard]] Symbol alphabet_size() const noexcept { return _alphabet_size; }
    [[nodiscard]] const Rule& rule(RuleId id) const { return _rules[id]; }
    /// Raw slot array — includes stale data in dead slots (see rule_dead).
    [[nodiscard]] const std::vector<Rule>& rules() const noexcept { return _rules; }

    /// Run-independent rule identity: (from state, per-state emission
    /// ordinal) packed into one sortable 64-bit key.  Equal-weight witness
    /// tie-breaks prefer the smallest key (see pautomaton.hpp).
    [[nodiscard]] std::uint64_t rule_canonical_key(RuleId id) const {
        const Rule& r = _rules[id];
        return (static_cast<std::uint64_t>(r.from) << 32) | r.ord;
    }

    [[nodiscard]] SymbolClass class_of(Symbol symbol) const {
        return symbol < _symbol_classes.size() ? _symbol_classes[symbol] : k_no_class;
    }

    /// All symbols of one class, as an include-set (built lazily, cached).
    [[nodiscard]] const nfa::SymbolSet& class_set(SymbolClass cls) const;

    /// The symbol set matched by a rule's PreSpec.
    [[nodiscard]] nfa::SymbolSet pre_set(const PreSpec& pre) const;

    /// Invoke `fn(rule_id, matched)` for every rule from `state` applicable
    /// to some symbol of `label`; `matched` is the (non-empty) subset of
    /// `label` the rule fires on.
    template <typename Fn>
    void for_each_applicable(StateId state, const nfa::SymbolSet& label, Fn&& fn) const;

    /// Overload for a concrete top symbol.
    template <typename Fn>
    void for_each_applicable(StateId state, Symbol symbol, Fn&& fn) const;

    /// Remove the rules whose ids appear in `discard` (sorted).  Used by the
    /// reduction pass; rebuilds the match indexes.  Tags are preserved.
    void remove_rules(const std::vector<RuleId>& discard);

    /// Un-materialize states of a lazy PDA: drop every rule leaving a state
    /// in `heads` — following chains, i.e. also dropping the rules of any
    /// state reached through a rule target for which `owned(target)` holds —
    /// and clear the materialized flags so the provider is asked again on
    /// next demand.  Cost is O(dropped rules), not O(all rules): dropped
    /// slots are tombstoned onto a free list (add_rule reuses them), their
    /// match lists are emptied in place (list slots and (state, symbol) keys
    /// survive, so re-emission lands in the same lists in the same order),
    /// and per-state ordinal counters restart — a provider that re-emits
    /// identical per-state rule sequences therefore reproduces the original
    /// Rule::ord values, which is what keeps incremental re-verification
    /// byte-identical to a cold run.  Surviving rule ids are NOT renumbered.
    /// The scalar-weight hint declared at set_rule_provider is retained.
    /// The delta subsystem's frontier re-saturation is the only caller.
    void invalidate_states(const std::vector<StateId>& heads,
                           const std::function<bool(StateId)>& owned);

    /// Whether `state`'s outgoing rules exist (always true when eager).
    [[nodiscard]] bool is_materialized(StateId state) const {
        return _provider == nullptr || _materialized[state];
    }

    /// Swap rules p γ → q γ' with q == `target`; built once per PDA (lazily,
    /// invalidated by add_rule/remove_rules) instead of per pre* call.  Not
    /// thread-safe on first use: saturate a shared PDA from one thread, or
    /// call `build_target_index()` up front.
    [[nodiscard]] const std::vector<RuleId>& swaps_into(StateId target) const {
        if (!_target_index_ready) build_target_index();
        return _swaps_into[target];
    }
    /// Push rules p γ → q γ₁γ₂ with q == `target` (same caching contract).
    [[nodiscard]] const std::vector<RuleId>& pushes_into(StateId target) const {
        if (!_target_index_ready) build_target_index();
        return _pushes_into[target];
    }
    void build_target_index() const;

    /// True while every rule weight is scalar (≤ 1 component, finite); the
    /// solver switches to the bucketed worklist only then.
    [[nodiscard]] bool all_weights_scalar() const noexcept { return _all_weights_scalar; }
    /// Largest scalar rule weight seen (0 when none/all 1̄).
    [[nodiscard]] std::uint64_t max_scalar_weight() const noexcept {
        return _max_scalar_weight;
    }

    /// The fully concrete ("direct") encoding of this PDA: every class/any
    /// rule is instantiated per matching symbol and "same as matched" push
    /// operands are resolved.  Tags are preserved on every instance.  This
    /// is the encoding a checker without symbolic wildcards (such as Moped)
    /// consumes; its size grows with the label alphabet.  A lazy PDA is
    /// fully materialized first.
    [[nodiscard]] Pda expand_concrete() const;

    /// Attach a demand-driven rule source and switch the PDA to lazy mode:
    /// `for_each_applicable` materializes a state's rules on first use, and
    /// the per-target swap/push index is filled incrementally as rules
    /// arrive (so it is never rebuilt by a whole-PDA scan).  Must be called
    /// after every state exists and before any rule.  `weights_scalar_hint`
    /// pre-seeds `all_weights_scalar()` — the bucketed-worklist decision is
    /// made before any rule has materialized, so the provider must declare
    /// whether every rule it will ever emit carries a scalar weight.
    void set_rule_provider(RuleProvider* provider, bool weights_scalar_hint = true);

    [[nodiscard]] bool lazy() const noexcept { return _provider != nullptr; }

    /// Mark `state` materialized without invoking the provider — for states
    /// a provider fills as a side effect of another state's materialization
    /// (chain interiors).
    void mark_materialized(StateId state);

    /// Warm every lazily-built structure a read of `state`'s rules touches:
    /// materializes the state (lazy mode) and builds the class-set cache
    /// entries its class rules consult.  After this, `for_each_applicable`
    /// on the state is a pure read — the parallel solver prefetches its
    /// round's frontier states serially so the expansion phase can run the
    /// match index from many threads without synchronization.
    void prefetch_state(StateId state) const;

    /// Demand every remaining state's rules (no-op without a provider).
    /// Logically const: materialization is memoized evaluation of the fixed
    /// rule set the provider denotes.  pre* and whole-PDA passes
    /// (expand_concrete, reduction, serialization) need this eager fallback.
    void materialize_all() const;

    /// States whose outgoing rules exist (== state_count() when eager).
    [[nodiscard]] std::size_t materialized_state_count() const noexcept {
        return _provider != nullptr ? _materialized_count : state_count();
    }
    [[nodiscard]] bool fully_materialized() const noexcept {
        return materialized_state_count() == state_count();
    }

private:
    /// Per-state view of the match index.  Point lookups go through the flat
    /// interned-key table `_concrete_lists` (one probe for (state, symbol));
    /// the vectors here only exist so set-labelled matching can enumerate a
    /// state's distinct symbols/classes without hash-map iteration.
    struct StateMatch {
        std::vector<std::pair<Symbol, std::uint32_t>> concrete; ///< (symbol, list id)
        std::vector<std::pair<SymbolClass, std::uint32_t>> classes;
        std::uint32_t any_list = UINT32_MAX;
    };

    [[nodiscard]] static std::uint64_t concrete_key(StateId state, Symbol symbol) noexcept {
        return (static_cast<std::uint64_t>(state) << 32) | symbol;
    }
    void index_rule(RuleId id);

    /// Lazy-mode fast path: materialize `state`'s rules on first demand.
    /// Must run before any read of the state's match index.
    void ensure_materialized(StateId state) const {
        if (_provider != nullptr && !_materialized[state]) materialize_state(state);
    }
    void materialize_state(StateId state) const; ///< slow path of the above

    Symbol _alphabet_size;
    std::vector<Rule> _rules;
    std::vector<bool> _dead_rules; ///< aligned with _rules; true = tombstone
    std::vector<RuleId> _free_rule_slots; ///< dead slots awaiting reuse (LIFO)
    std::size_t _rules_added = 0; ///< monotone add_rule count (telemetry)
    std::vector<StateMatch> _match_by_state;
    util::FlatMap64 _concrete_lists; ///< (state, symbol) → id into _rule_lists
    std::vector<std::vector<RuleId>> _rule_lists;
    std::vector<SymbolClass> _symbol_classes;
    bool _all_weights_scalar = true;
    std::uint64_t _max_scalar_weight = 0;
    mutable std::array<std::optional<nfa::SymbolSet>, 256> _class_sets;
    mutable bool _target_index_ready = false;
    mutable std::vector<std::vector<RuleId>> _swaps_into;
    mutable std::vector<std::vector<RuleId>> _pushes_into;
    RuleProvider* _provider = nullptr;
    mutable std::vector<bool> _materialized; ///< per state, lazy mode only
    mutable std::size_t _materialized_count = 0;
    /// Next Rule::ord per from-state (grown on demand by add_rule; reset per
    /// state by invalidate_states so re-materialization reproduces ordinals).
    std::vector<std::uint32_t> _next_rule_ord;
};

template <typename Fn>
void Pda::for_each_applicable(StateId state, Symbol symbol, Fn&& fn) const {
    ensure_materialized(state);
    const auto& match = _match_by_state[state];
    const bool has_class_rules = !match.classes.empty() && class_of(symbol) != k_no_class;
    const auto concrete_list = _concrete_lists.find(concrete_key(state, symbol));
    if (concrete_list == util::FlatMap64::k_npos && !has_class_rules &&
        match.any_list == UINT32_MAX)
        return; // common miss: no singleton set built
    const auto single = nfa::SymbolSet::single(symbol);
    if (concrete_list != util::FlatMap64::k_npos)
        for (const auto id : _rule_lists[concrete_list]) fn(id, single);
    if (has_class_rules) {
        const auto cls = class_of(symbol);
        for (const auto& [c, list] : match.classes)
            if (c == cls)
                for (const auto id : _rule_lists[list]) fn(id, single);
    }
    if (match.any_list != UINT32_MAX)
        for (const auto id : _rule_lists[match.any_list]) fn(id, single);
}

template <typename Fn>
void Pda::for_each_applicable(StateId state, const nfa::SymbolSet& label, Fn&& fn) const {
    ensure_materialized(state);
    const auto& match = _match_by_state[state];
    using Mode = nfa::SymbolSet::Mode;
    // Concrete-pre rules.
    if (label.mode() == Mode::Include && label.symbols().size() <= match.concrete.size()) {
        for (const auto symbol : label.symbols())
            if (const auto list = _concrete_lists.find(concrete_key(state, symbol));
                list != util::FlatMap64::k_npos) {
                const auto single = nfa::SymbolSet::single(symbol);
                for (const auto id : _rule_lists[list]) fn(id, single);
            }
    } else {
        for (const auto& [symbol, list] : match.concrete)
            if (label.contains(symbol)) {
                const auto single = nfa::SymbolSet::single(symbol);
                for (const auto id : _rule_lists[list]) fn(id, single);
            }
    }
    // Class rules.
    for (const auto& [cls, list] : match.classes) {
        auto matched = nfa::SymbolSet::intersection(label, class_set(cls));
        if (matched.is_empty_set()) continue;
        for (const auto id : _rule_lists[list]) fn(id, matched);
    }
    // Any rules.
    if (!label.is_empty_set() && match.any_list != UINT32_MAX)
        for (const auto id : _rule_lists[match.any_list]) fn(id, label);
}

} // namespace aalwines::pda
