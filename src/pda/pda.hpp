#pragma once
// Weighted pushdown system (paper §4.1).
//
// Rules are in the normal form  p γ → q w  with |w| ≤ 2:
//   Pop:   p γ → q ε
//   Swap:  p γ → q γ'
//   Push:  p γ → q γ₁γ₂   (γ₁ is the new top; γ₂ may be "same as matched")
//
// The left-hand symbol is a PreSpec: a concrete symbol, a *symbol class*
// (every symbol of one stratum — how the MPLS translation expresses "any
// label revealed by a pop, of the right kind"), or any symbol.  Classes keep
// the rule set polynomial instead of multiplying by the label alphabet.
//
// Every rule carries a Weight (see weight.hpp) and an opaque 32-bit tag the
// verification layer uses to map witness rule sequences back to forwarding
// decisions.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "nfa/symbol_set.hpp"
#include "pda/weight.hpp"

namespace aalwines::pda {

using StateId = std::uint32_t;
using Symbol = nfa::Symbol;
using RuleId = std::uint32_t;

inline constexpr Symbol k_no_symbol = UINT32_MAX;
/// In a Push rule, label2 == k_same_symbol keeps the matched symbol below
/// the newly pushed top (a plain MPLS push on an unknown stack).
inline constexpr Symbol k_same_symbol = UINT32_MAX - 1;

using SymbolClass = std::uint8_t;
inline constexpr SymbolClass k_no_class = 0xFF;

/// Left-hand-side symbol specification of a rule.
struct PreSpec {
    enum class Kind : std::uint8_t { Concrete, Class, Any };
    Kind kind = Kind::Concrete;
    Symbol symbol = k_no_symbol;  ///< for Concrete
    SymbolClass cls = k_no_class; ///< for Class

    [[nodiscard]] static PreSpec concrete(Symbol s) { return {Kind::Concrete, s, k_no_class}; }
    [[nodiscard]] static PreSpec of_class(SymbolClass c) {
        return {Kind::Class, k_no_symbol, c};
    }
    [[nodiscard]] static PreSpec any() { return {Kind::Any, k_no_symbol, k_no_class}; }

    bool operator==(const PreSpec&) const = default;
};

struct Rule {
    StateId from = 0;
    StateId to = 0;
    PreSpec pre;
    enum class OpKind : std::uint8_t { Pop, Swap, Push };
    OpKind op = OpKind::Pop;
    Symbol label1 = k_no_symbol; ///< Swap: written symbol; Push: new top
    Symbol label2 = k_no_symbol; ///< Push: symbol below top (or k_same_symbol)
    Weight weight = Weight::one();
    std::uint32_t tag = UINT32_MAX; ///< caller-defined; UINT32_MAX = internal
};

class Pda {
public:
    /// `alphabet_size` is the stack-symbol universe [0, alphabet_size).
    explicit Pda(Symbol alphabet_size) : _alphabet_size(alphabet_size) {}

    StateId add_state() {
        _rules_by_state.emplace_back();
        return static_cast<StateId>(_rules_by_state.size() - 1);
    }

    /// Declare that `symbol` belongs to `cls` (default: no class).
    void set_symbol_class(Symbol symbol, SymbolClass cls);

    RuleId add_rule(Rule rule);

    [[nodiscard]] std::size_t state_count() const noexcept { return _rules_by_state.size(); }
    [[nodiscard]] std::size_t rule_count() const noexcept { return _rules.size(); }
    [[nodiscard]] Symbol alphabet_size() const noexcept { return _alphabet_size; }
    [[nodiscard]] const Rule& rule(RuleId id) const { return _rules[id]; }
    [[nodiscard]] const std::vector<Rule>& rules() const noexcept { return _rules; }

    [[nodiscard]] SymbolClass class_of(Symbol symbol) const {
        return symbol < _symbol_classes.size() ? _symbol_classes[symbol] : k_no_class;
    }

    /// All symbols of one class, as an include-set (built lazily, cached).
    [[nodiscard]] const nfa::SymbolSet& class_set(SymbolClass cls) const;

    /// The symbol set matched by a rule's PreSpec.
    [[nodiscard]] nfa::SymbolSet pre_set(const PreSpec& pre) const;

    /// Invoke `fn(rule_id, matched)` for every rule from `state` applicable
    /// to some symbol of `label`; `matched` is the (non-empty) subset of
    /// `label` the rule fires on.
    template <typename Fn>
    void for_each_applicable(StateId state, const nfa::SymbolSet& label, Fn&& fn) const;

    /// Overload for a concrete top symbol.
    template <typename Fn>
    void for_each_applicable(StateId state, Symbol symbol, Fn&& fn) const;

    /// Remove the rules whose ids appear in `discard` (sorted).  Used by the
    /// reduction pass; rebuilds the match indexes.  Tags are preserved.
    void remove_rules(const std::vector<RuleId>& discard);

    /// The fully concrete ("direct") encoding of this PDA: every class/any
    /// rule is instantiated per matching symbol and "same as matched" push
    /// operands are resolved.  Tags are preserved on every instance.  This
    /// is the encoding a checker without symbolic wildcards (such as Moped)
    /// consumes; its size grows with the label alphabet.
    [[nodiscard]] Pda expand_concrete() const;

private:
    struct StateIndex {
        std::unordered_map<Symbol, std::vector<RuleId>> concrete;
        std::unordered_map<SymbolClass, std::vector<RuleId>> by_class;
        std::vector<RuleId> any;
    };

    Symbol _alphabet_size;
    std::vector<Rule> _rules;
    std::vector<StateIndex> _rules_by_state;
    std::vector<SymbolClass> _symbol_classes;
    mutable std::unordered_map<SymbolClass, nfa::SymbolSet> _class_sets;
};

template <typename Fn>
void Pda::for_each_applicable(StateId state, Symbol symbol, Fn&& fn) const {
    const auto& index = _rules_by_state[state];
    if (auto it = index.concrete.find(symbol); it != index.concrete.end())
        for (const auto id : it->second) fn(id, nfa::SymbolSet::single(symbol));
    const auto cls = class_of(symbol);
    if (cls != k_no_class) {
        if (auto it = index.by_class.find(cls); it != index.by_class.end())
            for (const auto id : it->second) fn(id, nfa::SymbolSet::single(symbol));
    }
    for (const auto id : index.any) fn(id, nfa::SymbolSet::single(symbol));
}

template <typename Fn>
void Pda::for_each_applicable(StateId state, const nfa::SymbolSet& label, Fn&& fn) const {
    const auto& index = _rules_by_state[state];
    using Mode = nfa::SymbolSet::Mode;
    // Concrete-pre rules.
    if (label.mode() == Mode::Include && label.symbols().size() <= index.concrete.size()) {
        for (const auto symbol : label.symbols())
            if (auto it = index.concrete.find(symbol); it != index.concrete.end())
                for (const auto id : it->second) fn(id, nfa::SymbolSet::single(symbol));
    } else {
        for (const auto& [symbol, ids] : index.concrete)
            if (label.contains(symbol))
                for (const auto id : ids) fn(id, nfa::SymbolSet::single(symbol));
    }
    // Class rules.
    for (const auto& [cls, ids] : index.by_class) {
        auto matched = nfa::SymbolSet::intersection(label, class_set(cls));
        if (matched.is_empty_set()) continue;
        for (const auto id : ids) fn(id, matched);
    }
    // Any rules.
    if (!label.is_empty_set())
        for (const auto id : index.any) fn(id, label);
}

} // namespace aalwines::pda
