#pragma once
// Weight domain for the weighted pushdown system (paper §3, §4.1).
//
// Weights form a bounded, commutative, idempotent semiring:
//   ⊕ = lexicographic minimum          (combine: choose the better path)
//   ⊗ = component-wise addition        (extend: concatenate path segments)
//   0̄ = +∞ (absorbing, unreachable)    1̄ = the all-zero vector
// over fixed-width vectors of uint64.  The empty vector is the canonical 1̄,
// so unweighted verification runs through the same solver allocation-free.
// Commutativity of ⊗ lets post* accumulate weights without the left/right
// extend distinction of the general Reps et al. framework.

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace aalwines::pda {

class Weight {
public:
    /// 1̄: neutral under extend; the weight of "no cost".
    Weight() = default;

    [[nodiscard]] static Weight one() { return Weight(); }
    [[nodiscard]] static Weight infinity() {
        Weight w;
        w._infinite = true;
        return w;
    }
    [[nodiscard]] static Weight of(std::vector<std::uint64_t> components) {
        Weight w;
        w._components = std::move(components);
        return w;
    }
    /// Scalar convenience: a one-component vector.
    [[nodiscard]] static Weight scalar(std::uint64_t value) { return of({value}); }

    [[nodiscard]] bool is_infinite() const noexcept { return _infinite; }
    [[nodiscard]] bool is_one() const noexcept { return !_infinite && _components.empty(); }

    /// The value of a zero- or one-component weight (1̄ ≡ 0), nullopt for
    /// multi-component or infinite weights.  Scalar weights order like their
    /// values, which is what lets the solver key a bucketed worklist on them.
    [[nodiscard]] std::optional<std::uint64_t> as_scalar() const noexcept {
        if (_infinite || _components.size() > 1) return std::nullopt;
        return _components.empty() ? 0 : _components.front();
    }
    [[nodiscard]] const std::vector<std::uint64_t>& components() const noexcept {
        return _components;
    }

    /// ⊗: component-wise *saturating* sum (weights accumulate along paths;
    /// clamping at 2⁶⁴-1 keeps the order monotone even on adversarial
    /// distance functions); shorter vectors are padded with zeros.
    [[nodiscard]] friend Weight extend(const Weight& a, const Weight& b) {
        if (a._infinite || b._infinite) return infinity();
        if (a._components.empty()) return b;
        if (b._components.empty()) return a;
        const auto& longer = a._components.size() >= b._components.size() ? a : b;
        const auto& shorter = &longer == &a ? b : a;
        Weight out = longer;
        for (std::size_t i = 0; i < shorter._components.size(); ++i) {
            const auto addend = shorter._components[i];
            auto& component = out._components[i];
            component = component > UINT64_MAX - addend ? UINT64_MAX
                                                        : component + addend;
        }
        return out;
    }

    /// Lexicographic order; +∞ compares greatest, missing components are 0.
    [[nodiscard]] std::strong_ordering operator<=>(const Weight& other) const {
        if (_infinite || other._infinite) {
            if (_infinite && other._infinite) return std::strong_ordering::equal;
            return _infinite ? std::strong_ordering::greater : std::strong_ordering::less;
        }
        const std::size_t n = std::max(_components.size(), other._components.size());
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t a = i < _components.size() ? _components[i] : 0;
            const std::uint64_t b = i < other._components.size() ? other._components[i] : 0;
            if (a != b) return a <=> b;
        }
        return std::strong_ordering::equal;
    }

    [[nodiscard]] bool operator==(const Weight& other) const {
        return (*this <=> other) == std::strong_ordering::equal;
    }

    [[nodiscard]] std::string to_string() const {
        if (_infinite) return "inf";
        if (_components.empty()) return "(0)";
        std::string out = "(";
        for (std::size_t i = 0; i < _components.size(); ++i) {
            if (i) out += ", ";
            out += std::to_string(_components[i]);
        }
        return out + ")";
    }

private:
    std::vector<std::uint64_t> _components;
    bool _infinite = false;
};

} // namespace aalwines::pda
