#pragma once
// PDA reduction by static top-of-stack analysis (paper §4.2): a forward
// fixpoint over-approximates, for every control state, the set of symbols
// that can possibly be on top of the stack; rules whose left-hand side can
// never match are removed before saturation.
//
// Level 1 tracks only the top symbol (pops fall back to a global
// "anything that can be buried" set); level 2 additionally tracks the
// possible second-of-stack symbol per state, making pops considerably more
// precise on tunnel-heavy MPLS dataplanes.

#include <span>

#include "pda/pda.hpp"

namespace aalwines::pda {

/// Seed of the analysis: at `state` the top of stack can be in `top` and
/// the symbol below it in `second` (from the initial configurations).
struct TosSeed {
    StateId state = 0;
    nfa::SymbolSet top;
    nfa::SymbolSet second;
};

struct ReductionStats {
    std::size_t rules_before = 0;
    std::size_t rules_after = 0;
    [[nodiscard]] std::size_t removed() const { return rules_before - rules_after; }
};

/// Run the analysis at `level` (0 = off, 1 = top-only, 2 = top + second)
/// and remove unmatchable rules in place.  `deep_symbols` over-approximates
/// every symbol that may sit at depth ≥ 3 in any initial stack.
ReductionStats reduce(Pda& pda, std::span<const TosSeed> seeds,
                      const nfa::SymbolSet& deep_symbols, int level);

} // namespace aalwines::pda
