#include "pda/pda.hpp"

#include <algorithm>
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"

namespace aalwines::pda {

void Pda::set_symbol_class(Symbol symbol, SymbolClass cls) {
    AALWINES_ASSERT(symbol < _alphabet_size, "symbol outside the stack alphabet");
    if (_symbol_classes.size() <= symbol) _symbol_classes.resize(symbol + 1, k_no_class);
    const auto previous = _symbol_classes[symbol];
    if (previous == cls) return;
    _symbol_classes[symbol] = cls;
    // Only the two affected class sets change membership.
    _class_sets[previous].reset();
    _class_sets[cls].reset();
}

void Pda::index_rule(RuleId id) {
    const auto& rule = _rules[id];
    auto& match = _match_by_state[rule.from];
    switch (rule.pre.kind) {
        case PreSpec::Kind::Concrete: {
            const auto key = concrete_key(rule.from, rule.pre.symbol);
            const auto next = static_cast<std::uint32_t>(_rule_lists.size());
            const auto [list, inserted] = _concrete_lists.try_emplace(key, next);
            if (inserted) {
                _rule_lists.emplace_back();
                match.concrete.emplace_back(rule.pre.symbol, list);
            }
            _rule_lists[list].push_back(id);
            break;
        }
        case PreSpec::Kind::Class: {
            for (auto& [cls, list] : match.classes) {
                if (cls != rule.pre.cls) continue;
                _rule_lists[list].push_back(id);
                return;
            }
            const auto list = static_cast<std::uint32_t>(_rule_lists.size());
            _rule_lists.emplace_back().push_back(id);
            match.classes.emplace_back(rule.pre.cls, list);
            break;
        }
        case PreSpec::Kind::Any: {
            if (match.any_list == UINT32_MAX) {
                match.any_list = static_cast<std::uint32_t>(_rule_lists.size());
                _rule_lists.emplace_back();
            }
            _rule_lists[match.any_list].push_back(id);
            break;
        }
    }
}

RuleId Pda::add_rule(Rule rule) {
    AALWINES_ASSERT(rule.from < _match_by_state.size(), "rule.from is not a PDA state");
    AALWINES_ASSERT(rule.to < _match_by_state.size(), "rule.to is not a PDA state");
    AALWINES_ASSERT(rule.op != Rule::OpKind::Swap || rule.label1 < _alphabet_size,
                    "swap rule writes a symbol outside the stack alphabet");
    AALWINES_ASSERT(rule.op != Rule::OpKind::Push ||
                        (rule.label1 < _alphabet_size &&
                         (rule.label2 < _alphabet_size || rule.label2 == k_same_symbol)),
                    "push rule operand outside the stack alphabet");
    AALWINES_ASSERT(rule.pre.kind != PreSpec::Kind::Concrete ||
                        rule.pre.symbol < _alphabet_size,
                    "rule precondition symbol outside the stack alphabet");
    const RuleId id = static_cast<RuleId>(_rules.size());
    if (const auto scalar = rule.weight.as_scalar()) {
        _max_scalar_weight = std::max(_max_scalar_weight, *scalar);
    } else {
        AALWINES_ASSERT(_provider == nullptr || !_all_weights_scalar,
                        "lazy provider declared scalar weights but emitted a vector one");
        _all_weights_scalar = false;
    }
    if (_provider != nullptr) {
        // Lazy mode: the per-target index is live from the start and filled
        // on demand, rule by rule, instead of by a whole-PDA rebuild.
        switch (rule.op) {
            case Rule::OpKind::Swap: _swaps_into[rule.to].push_back(id); break;
            case Rule::OpKind::Push: _pushes_into[rule.to].push_back(id); break;
            case Rule::OpKind::Pop: break;
        }
    } else {
        _target_index_ready = false;
    }
    _rules.push_back(std::move(rule));
    index_rule(id);
    return id;
}

const nfa::SymbolSet& Pda::class_set(SymbolClass cls) const {
    auto& cached = _class_sets[cls];
    if (cached) return *cached;
    std::vector<Symbol> members;
    for (Symbol s = 0; s < _symbol_classes.size(); ++s)
        if (_symbol_classes[s] == cls) members.push_back(s);
    cached = nfa::SymbolSet::of(std::move(members));
    return *cached;
}

nfa::SymbolSet Pda::pre_set(const PreSpec& pre) const {
    switch (pre.kind) {
        case PreSpec::Kind::Concrete: return nfa::SymbolSet::single(pre.symbol);
        case PreSpec::Kind::Class: return class_set(pre.cls);
        case PreSpec::Kind::Any: return nfa::SymbolSet::any();
    }
    return nfa::SymbolSet::none();
}

void Pda::set_rule_provider(RuleProvider* provider, bool weights_scalar_hint) {
    AALWINES_ASSERT(provider != nullptr, "null rule provider");
    AALWINES_ASSERT(_provider == nullptr, "rule provider already attached");
    AALWINES_ASSERT(_rules.empty(), "the provider must be attached before any rule");
    _provider = provider;
    _materialized.assign(state_count(), false);
    _materialized_count = 0;
    _all_weights_scalar = weights_scalar_hint;
    // The per-target index is filled incrementally by add_rule from now on.
    _swaps_into.assign(state_count(), {});
    _pushes_into.assign(state_count(), {});
    _target_index_ready = true;
}

void Pda::mark_materialized(StateId state) {
    AALWINES_ASSERT(_provider != nullptr, "mark_materialized needs a rule provider");
    if (_materialized[state]) return;
    _materialized[state] = true;
    ++_materialized_count;
    telemetry::count(telemetry::Counter::pda_states_materialized);
}

void Pda::materialize_state(StateId state) const {
    // Logically const: filling the memoized rule cache for one state.
    auto* self = const_cast<Pda*>(this); // NOLINT(cppcoreguidelines-pro-type-const-cast)
    self->_materialized[state] = true;
    ++self->_materialized_count;
    const auto before = _rules.size();
    self->_provider->materialize_state(*self, state);
    telemetry::count(telemetry::Counter::pda_states_materialized);
    telemetry::count(telemetry::Counter::pda_rules_materialized, _rules.size() - before);
}

void Pda::prefetch_state(StateId state) const {
    ensure_materialized(state);
    // Warming a class set fills the mutable _class_sets cache — the write
    // the parallel expansion phase must never race on.
    for (const auto& [cls, list] : _match_by_state[state].classes) {
        (void)list;
        (void)class_set(cls);
    }
}

void Pda::materialize_all() const {
    if (_provider == nullptr) return;
    // Chain interiors are filled (and marked) together with the control
    // state that owns their chain, so iterating every state in id order
    // leaves exactly the never-demanded pool states as no-ops.
    for (StateId s = 0; s < state_count(); ++s) ensure_materialized(s);
}

void Pda::build_target_index() const {
    if (_provider != nullptr) {
        // Lazy mode keeps the index live incrementally; a caller that wants
        // the *complete* index (pre*) needs the whole rule set.
        materialize_all();
        return;
    }
    if (_target_index_ready) return;
    _swaps_into.assign(state_count(), {});
    _pushes_into.assign(state_count(), {});
    for (RuleId id = 0; id < _rules.size(); ++id) {
        const auto& rule = _rules[id];
        switch (rule.op) {
            case Rule::OpKind::Swap: _swaps_into[rule.to].push_back(id); break;
            case Rule::OpKind::Push: _pushes_into[rule.to].push_back(id); break;
            case Rule::OpKind::Pop: break; // pre* handles pops at initialization
        }
    }
    _target_index_ready = true;
}

void Pda::remove_rules(const std::vector<RuleId>& discard) {
    AALWINES_ASSERT(_provider == nullptr,
                    "cannot remove rules from a lazy PDA (reduction runs eagerly)");
    if (discard.empty()) return;
    std::vector<Rule> kept;
    kept.reserve(_rules.size() - discard.size());
    std::size_t di = 0;
    for (RuleId id = 0; id < _rules.size(); ++id) {
        if (di < discard.size() && discard[di] == id) {
            ++di;
            continue;
        }
        kept.push_back(std::move(_rules[id]));
    }
    AALWINES_ASSERT(di == discard.size(), "discard list must be sorted and unique");
    _rules = std::move(kept);
    // Rebuild the match indexes with the new rule ids.
    for (auto& match : _match_by_state) match = StateMatch{};
    _concrete_lists.clear();
    _rule_lists.clear();
    _all_weights_scalar = true;
    _max_scalar_weight = 0;
    for (RuleId id = 0; id < _rules.size(); ++id) {
        index_rule(id);
        if (const auto scalar = _rules[id].weight.as_scalar())
            _max_scalar_weight = std::max(_max_scalar_weight, *scalar);
        else
            _all_weights_scalar = false;
    }
    _target_index_ready = false;
}

void Pda::invalidate_states(const std::vector<StateId>& heads,
                            const std::function<bool(StateId)>& owned) {
    AALWINES_ASSERT(_provider != nullptr,
                    "invalidate_states is the lazy-PDA re-saturation path");
    if (heads.empty()) return;
    std::vector<bool> drop(state_count(), false);
    for (const auto s : heads) {
        AALWINES_ASSERT(s < state_count(), "invalidated state out of range");
        drop[s] = true;
    }
    // Close over owned chain targets.  Chain rules are emitted head-first in
    // increasing id order, so one forward pass usually reaches the fixpoint;
    // loop to be safe against any future emission-order change.
    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto& rule : _rules)
            if (drop[rule.from] && !drop[rule.to] && owned(rule.to)) {
                drop[rule.to] = true;
                changed = true;
            }
    }
    std::size_t cleared = 0;
    for (StateId s = 0; s < state_count(); ++s)
        if (drop[s] && _materialized[s]) {
            _materialized[s] = false;
            --_materialized_count;
            ++cleared;
        }
    std::vector<Rule> kept;
    kept.reserve(_rules.size());
    for (auto& rule : _rules)
        if (!drop[rule.from]) kept.push_back(std::move(rule));
    _rules = std::move(kept);
    // Rebuild the match and per-target indexes over the compacted ids.  The
    // scalar flag stays the provider's declared hint — it covers rules the
    // provider has yet to emit, not just the kept subset; only the observed
    // maximum is recomputed.
    for (auto& match : _match_by_state) match = StateMatch{};
    _concrete_lists.clear();
    _rule_lists.clear();
    _swaps_into.assign(state_count(), {});
    _pushes_into.assign(state_count(), {});
    _max_scalar_weight = 0;
    for (RuleId id = 0; id < _rules.size(); ++id) {
        const auto& rule = _rules[id];
        index_rule(id);
        switch (rule.op) {
            case Rule::OpKind::Swap: _swaps_into[rule.to].push_back(id); break;
            case Rule::OpKind::Push: _pushes_into[rule.to].push_back(id); break;
            case Rule::OpKind::Pop: break;
        }
        if (const auto scalar = rule.weight.as_scalar())
            _max_scalar_weight = std::max(_max_scalar_weight, *scalar);
    }
    _target_index_ready = true;
    telemetry::count(telemetry::Counter::delta_states_invalidated, cleared);
}

Pda Pda::expand_concrete() const {
    materialize_all(); // the concrete copy is a whole-PDA pass
    Pda out(_alphabet_size);
    for (StateId s = 0; s < state_count(); ++s) out.add_state();
    for (Symbol s = 0; s < _symbol_classes.size(); ++s)
        if (_symbol_classes[s] != k_no_class) out.set_symbol_class(s, _symbol_classes[s]);
    for (const auto& rule : _rules) {
        if (rule.pre.kind == PreSpec::Kind::Concrete) {
            auto concrete = rule;
            if (concrete.op == Rule::OpKind::Push && concrete.label2 == k_same_symbol)
                concrete.label2 = concrete.pre.symbol;
            out.add_rule(std::move(concrete));
            continue;
        }
        for (const auto symbol : pre_set(rule.pre).materialize(_alphabet_size)) {
            auto concrete = rule;
            concrete.pre = PreSpec::concrete(symbol);
            if (concrete.op == Rule::OpKind::Push && concrete.label2 == k_same_symbol)
                concrete.label2 = symbol;
            out.add_rule(std::move(concrete));
        }
    }
    return out;
}

} // namespace aalwines::pda
