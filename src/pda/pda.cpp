#include "pda/pda.hpp"

#include <algorithm>
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"

namespace aalwines::pda {

void Pda::set_symbol_class(Symbol symbol, SymbolClass cls) {
    AALWINES_ASSERT(symbol < _alphabet_size, "symbol outside the stack alphabet");
    if (_symbol_classes.size() <= symbol) _symbol_classes.resize(symbol + 1, k_no_class);
    const auto previous = _symbol_classes[symbol];
    if (previous == cls) return;
    _symbol_classes[symbol] = cls;
    // Only the two affected class sets change membership.
    _class_sets[previous].reset();
    _class_sets[cls].reset();
}

void Pda::index_rule(RuleId id) {
    const auto& rule = _rules[id];
    auto& match = _match_by_state[rule.from];
    switch (rule.pre.kind) {
        case PreSpec::Kind::Concrete: {
            const auto key = concrete_key(rule.from, rule.pre.symbol);
            const auto next = static_cast<std::uint32_t>(_rule_lists.size());
            const auto [list, inserted] = _concrete_lists.try_emplace(key, next);
            if (inserted) {
                _rule_lists.emplace_back();
                match.concrete.emplace_back(rule.pre.symbol, list);
            }
            _rule_lists[list].push_back(id);
            break;
        }
        case PreSpec::Kind::Class: {
            for (auto& [cls, list] : match.classes) {
                if (cls != rule.pre.cls) continue;
                _rule_lists[list].push_back(id);
                return;
            }
            const auto list = static_cast<std::uint32_t>(_rule_lists.size());
            _rule_lists.emplace_back().push_back(id);
            match.classes.emplace_back(rule.pre.cls, list);
            break;
        }
        case PreSpec::Kind::Any: {
            if (match.any_list == UINT32_MAX) {
                match.any_list = static_cast<std::uint32_t>(_rule_lists.size());
                _rule_lists.emplace_back();
            }
            _rule_lists[match.any_list].push_back(id);
            break;
        }
    }
}

RuleId Pda::add_rule(Rule rule) {
    AALWINES_ASSERT(rule.from < _match_by_state.size(), "rule.from is not a PDA state");
    AALWINES_ASSERT(rule.to < _match_by_state.size(), "rule.to is not a PDA state");
    AALWINES_ASSERT(rule.op != Rule::OpKind::Swap || rule.label1 < _alphabet_size,
                    "swap rule writes a symbol outside the stack alphabet");
    AALWINES_ASSERT(rule.op != Rule::OpKind::Push ||
                        (rule.label1 < _alphabet_size &&
                         (rule.label2 < _alphabet_size || rule.label2 == k_same_symbol)),
                    "push rule operand outside the stack alphabet");
    AALWINES_ASSERT(rule.pre.kind != PreSpec::Kind::Concrete ||
                        rule.pre.symbol < _alphabet_size,
                    "rule precondition symbol outside the stack alphabet");
    // Reuse a tombstoned slot when one exists (lazy rebase churn), else grow.
    RuleId id;
    if (!_free_rule_slots.empty()) {
        id = _free_rule_slots.back();
        _free_rule_slots.pop_back();
        _dead_rules[id] = false;
    } else {
        id = static_cast<RuleId>(_rules.size());
    }
    ++_rules_added;
    if (_next_rule_ord.size() <= rule.from)
        _next_rule_ord.resize(state_count(), 0);
    rule.ord = _next_rule_ord[rule.from]++;
    if (const auto scalar = rule.weight.as_scalar()) {
        _max_scalar_weight = std::max(_max_scalar_weight, *scalar);
    } else {
        AALWINES_ASSERT(_provider == nullptr || !_all_weights_scalar,
                        "lazy provider declared scalar weights but emitted a vector one");
        _all_weights_scalar = false;
    }
    if (_provider != nullptr) {
        // Lazy mode: the per-target index is live from the start and filled
        // on demand, rule by rule, instead of by a whole-PDA rebuild.
        switch (rule.op) {
            case Rule::OpKind::Swap: _swaps_into[rule.to].push_back(id); break;
            case Rule::OpKind::Push: _pushes_into[rule.to].push_back(id); break;
            case Rule::OpKind::Pop: break;
        }
    } else {
        _target_index_ready = false;
    }
    if (id < _rules.size()) {
        _rules[id] = std::move(rule);
    } else {
        _rules.push_back(std::move(rule));
        _dead_rules.push_back(false);
    }
    index_rule(id);
    return id;
}

const nfa::SymbolSet& Pda::class_set(SymbolClass cls) const {
    auto& cached = _class_sets[cls];
    if (cached) return *cached;
    std::vector<Symbol> members;
    for (Symbol s = 0; s < _symbol_classes.size(); ++s)
        if (_symbol_classes[s] == cls) members.push_back(s);
    cached = nfa::SymbolSet::of(std::move(members));
    return *cached;
}

nfa::SymbolSet Pda::pre_set(const PreSpec& pre) const {
    switch (pre.kind) {
        case PreSpec::Kind::Concrete: return nfa::SymbolSet::single(pre.symbol);
        case PreSpec::Kind::Class: return class_set(pre.cls);
        case PreSpec::Kind::Any: return nfa::SymbolSet::any();
    }
    return nfa::SymbolSet::none();
}

void Pda::set_rule_provider(RuleProvider* provider, bool weights_scalar_hint) {
    AALWINES_ASSERT(provider != nullptr, "null rule provider");
    AALWINES_ASSERT(_provider == nullptr, "rule provider already attached");
    AALWINES_ASSERT(_rules.empty(), "the provider must be attached before any rule");
    _provider = provider;
    _materialized.assign(state_count(), false);
    _materialized_count = 0;
    _all_weights_scalar = weights_scalar_hint;
    // The per-target index is filled incrementally by add_rule from now on.
    _swaps_into.assign(state_count(), {});
    _pushes_into.assign(state_count(), {});
    _target_index_ready = true;
}

void Pda::mark_materialized(StateId state) {
    AALWINES_ASSERT(_provider != nullptr, "mark_materialized needs a rule provider");
    if (_materialized[state]) return;
    _materialized[state] = true;
    ++_materialized_count;
    telemetry::count(telemetry::Counter::pda_states_materialized);
}

void Pda::materialize_state(StateId state) const {
    // Logically const: filling the memoized rule cache for one state.
    auto* self = const_cast<Pda*>(this); // NOLINT(cppcoreguidelines-pro-type-const-cast)
    self->_materialized[state] = true;
    ++self->_materialized_count;
    // _rules_added, not _rules.size(): add_rule may be filling reused slots.
    const auto before = _rules_added;
    self->_provider->materialize_state(*self, state);
    telemetry::count(telemetry::Counter::pda_states_materialized);
    telemetry::count(telemetry::Counter::pda_rules_materialized, _rules_added - before);
}

void Pda::prefetch_state(StateId state) const {
    ensure_materialized(state);
    // Warming a class set fills the mutable _class_sets cache — the write
    // the parallel expansion phase must never race on.
    for (const auto& [cls, list] : _match_by_state[state].classes) {
        (void)list;
        (void)class_set(cls);
    }
}

void Pda::materialize_all() const {
    if (_provider == nullptr) return;
    // Chain interiors are filled (and marked) together with the control
    // state that owns their chain, so iterating every state in id order
    // leaves exactly the never-demanded pool states as no-ops.
    for (StateId s = 0; s < state_count(); ++s) ensure_materialized(s);
}

void Pda::build_target_index() const {
    if (_provider != nullptr) {
        // Lazy mode keeps the index live incrementally; a caller that wants
        // the *complete* index (pre*) needs the whole rule set.
        materialize_all();
        return;
    }
    if (_target_index_ready) return;
    _swaps_into.assign(state_count(), {});
    _pushes_into.assign(state_count(), {});
    for (RuleId id = 0; id < _rules.size(); ++id) {
        const auto& rule = _rules[id];
        switch (rule.op) {
            case Rule::OpKind::Swap: _swaps_into[rule.to].push_back(id); break;
            case Rule::OpKind::Push: _pushes_into[rule.to].push_back(id); break;
            case Rule::OpKind::Pop: break; // pre* handles pops at initialization
        }
    }
    _target_index_ready = true;
}

void Pda::remove_rules(const std::vector<RuleId>& discard) {
    AALWINES_ASSERT(_provider == nullptr,
                    "cannot remove rules from a lazy PDA (reduction runs eagerly)");
    if (discard.empty()) return;
    std::vector<Rule> kept;
    kept.reserve(_rules.size() - discard.size());
    std::size_t di = 0;
    for (RuleId id = 0; id < _rules.size(); ++id) {
        if (di < discard.size() && discard[di] == id) {
            ++di;
            continue;
        }
        kept.push_back(std::move(_rules[id]));
    }
    AALWINES_ASSERT(di == discard.size(), "discard list must be sorted and unique");
    _rules = std::move(kept);
    _dead_rules.assign(_rules.size(), false); // eager PDAs never have tombstones
    // Rebuild the match indexes with the new rule ids.
    for (auto& match : _match_by_state) match = StateMatch{};
    _concrete_lists.clear();
    _rule_lists.clear();
    _all_weights_scalar = true;
    _max_scalar_weight = 0;
    for (RuleId id = 0; id < _rules.size(); ++id) {
        index_rule(id);
        if (const auto scalar = _rules[id].weight.as_scalar())
            _max_scalar_weight = std::max(_max_scalar_weight, *scalar);
        else
            _all_weights_scalar = false;
    }
    _target_index_ready = false;
}

void Pda::invalidate_states(const std::vector<StateId>& heads,
                            const std::function<bool(StateId)>& owned) {
    AALWINES_ASSERT(_provider != nullptr,
                    "invalidate_states is the lazy-PDA re-saturation path");
    if (heads.empty()) return;
    // O(dropped rules), never O(all rules): every rule is indexed under its
    // from-state, so a dropped state's match lists enumerate exactly the
    // rules to kill — the chain closure is a plain worklist over them.
    std::vector<bool> drop(state_count(), false);
    std::vector<StateId> dropped;
    dropped.reserve(heads.size());
    const auto push_state = [&](StateId s) {
        AALWINES_ASSERT(s < state_count(), "invalidated state out of range");
        if (drop[s]) return;
        drop[s] = true;
        dropped.push_back(s);
    };
    for (const auto s : heads) push_state(s);
    std::vector<RuleId> dead;
    std::vector<StateId> touched_targets;
    for (std::size_t i = 0; i < dropped.size(); ++i) { // grows during the loop
        auto& match = _match_by_state[dropped[i]];
        // Empty the lists in place: the list slots, the StateMatch entries,
        // and the (state, symbol) keys in _concrete_lists all survive, so a
        // provider re-emitting the identical per-state sequence lands in the
        // same lists in the same order (with _next_rule_ord reset below this
        // reproduces Rule::ord — the canonical-tie-break contract).
        const auto drain = [&](std::uint32_t list) {
            for (const auto id : _rule_lists[list]) {
                const auto& rule = _rules[id];
                dead.push_back(id);
                if (!drop[rule.to] && owned(rule.to)) push_state(rule.to);
                if (rule.op != Rule::OpKind::Pop) touched_targets.push_back(rule.to);
            }
            _rule_lists[list].clear();
        };
        for (const auto& [symbol, list] : match.concrete) drain(list);
        for (const auto& [cls, list] : match.classes) drain(list);
        if (match.any_list != UINT32_MAX) drain(match.any_list);
    }
    std::size_t cleared = 0;
    for (const auto s : dropped)
        if (_materialized[s]) {
            _materialized[s] = false;
            --_materialized_count;
            ++cleared;
            if (s < _next_rule_ord.size()) _next_rule_ord[s] = 0;
        }
    // Tombstone the dead slots for reuse, then strip them from the touched
    // per-target lists — one order-preserving pass per distinct target.  The
    // scalar flag stays the provider's declared hint and _max_scalar_weight
    // a monotone upper bound (it only sizes worklist buckets).
    for (const auto id : dead) {
        _dead_rules[id] = true;
        _free_rule_slots.push_back(id);
    }
    std::sort(touched_targets.begin(), touched_targets.end());
    touched_targets.erase(std::unique(touched_targets.begin(), touched_targets.end()),
                          touched_targets.end());
    for (const auto t : touched_targets) {
        const auto strip = [&](std::vector<RuleId>& list) {
            list.erase(std::remove_if(list.begin(), list.end(),
                                      [&](RuleId id) { return _dead_rules[id]; }),
                       list.end());
        };
        strip(_swaps_into[t]);
        strip(_pushes_into[t]);
    }
    telemetry::count(telemetry::Counter::delta_states_invalidated, cleared);
}

Pda Pda::expand_concrete() const {
    materialize_all(); // the concrete copy is a whole-PDA pass
    Pda out(_alphabet_size);
    for (StateId s = 0; s < state_count(); ++s) out.add_state();
    for (Symbol s = 0; s < _symbol_classes.size(); ++s)
        if (_symbol_classes[s] != k_no_class) out.set_symbol_class(s, _symbol_classes[s]);
    for (RuleId id = 0; id < _rules.size(); ++id) {
        if (_dead_rules[id]) continue;
        const auto& rule = _rules[id];
        if (rule.pre.kind == PreSpec::Kind::Concrete) {
            auto concrete = rule;
            if (concrete.op == Rule::OpKind::Push && concrete.label2 == k_same_symbol)
                concrete.label2 = concrete.pre.symbol;
            out.add_rule(std::move(concrete));
            continue;
        }
        for (const auto symbol : pre_set(rule.pre).materialize(_alphabet_size)) {
            auto concrete = rule;
            concrete.pre = PreSpec::concrete(symbol);
            if (concrete.op == Rule::OpKind::Push && concrete.label2 == k_same_symbol)
                concrete.label2 = symbol;
            out.add_rule(std::move(concrete));
        }
    }
    return out;
}

} // namespace aalwines::pda
