#include "pda/pda.hpp"

#include <algorithm>
#include "util/check.hpp"

namespace aalwines::pda {

void Pda::set_symbol_class(Symbol symbol, SymbolClass cls) {
    AALWINES_ASSERT(symbol < _alphabet_size, "symbol outside the stack alphabet");
    if (_symbol_classes.size() <= symbol) _symbol_classes.resize(symbol + 1, k_no_class);
    _symbol_classes[symbol] = cls;
    _class_sets.clear(); // invalidate cache
}

RuleId Pda::add_rule(Rule rule) {
    AALWINES_ASSERT(rule.from < _rules_by_state.size(), "rule.from is not a PDA state");
    AALWINES_ASSERT(rule.to < _rules_by_state.size(), "rule.to is not a PDA state");
    AALWINES_ASSERT(rule.op != Rule::OpKind::Swap || rule.label1 < _alphabet_size,
                    "swap rule writes a symbol outside the stack alphabet");
    AALWINES_ASSERT(rule.op != Rule::OpKind::Push ||
                        (rule.label1 < _alphabet_size &&
                         (rule.label2 < _alphabet_size || rule.label2 == k_same_symbol)),
                    "push rule operand outside the stack alphabet");
    const RuleId id = static_cast<RuleId>(_rules.size());
    auto& index = _rules_by_state[rule.from];
    switch (rule.pre.kind) {
        case PreSpec::Kind::Concrete:
            AALWINES_ASSERT(rule.pre.symbol < _alphabet_size,
                            "rule precondition symbol outside the stack alphabet");
            index.concrete[rule.pre.symbol].push_back(id);
            break;
        case PreSpec::Kind::Class: index.by_class[rule.pre.cls].push_back(id); break;
        case PreSpec::Kind::Any: index.any.push_back(id); break;
    }
    _rules.push_back(std::move(rule));
    return id;
}

const nfa::SymbolSet& Pda::class_set(SymbolClass cls) const {
    if (auto it = _class_sets.find(cls); it != _class_sets.end()) return it->second;
    std::vector<Symbol> members;
    for (Symbol s = 0; s < _symbol_classes.size(); ++s)
        if (_symbol_classes[s] == cls) members.push_back(s);
    auto [it, inserted] = _class_sets.emplace(cls, nfa::SymbolSet::of(std::move(members)));
    return it->second;
}

nfa::SymbolSet Pda::pre_set(const PreSpec& pre) const {
    switch (pre.kind) {
        case PreSpec::Kind::Concrete: return nfa::SymbolSet::single(pre.symbol);
        case PreSpec::Kind::Class: return class_set(pre.cls);
        case PreSpec::Kind::Any: return nfa::SymbolSet::any();
    }
    return nfa::SymbolSet::none();
}

void Pda::remove_rules(const std::vector<RuleId>& discard) {
    if (discard.empty()) return;
    std::vector<Rule> kept;
    kept.reserve(_rules.size() - discard.size());
    std::size_t di = 0;
    for (RuleId id = 0; id < _rules.size(); ++id) {
        if (di < discard.size() && discard[di] == id) {
            ++di;
            continue;
        }
        kept.push_back(std::move(_rules[id]));
    }
    AALWINES_ASSERT(di == discard.size(), "discard list must be sorted and unique");
    _rules = std::move(kept);
    // Rebuild the per-state indexes with the new rule ids.
    for (auto& index : _rules_by_state) index = StateIndex{};
    for (RuleId id = 0; id < _rules.size(); ++id) {
        const auto& rule = _rules[id];
        auto& index = _rules_by_state[rule.from];
        switch (rule.pre.kind) {
            case PreSpec::Kind::Concrete: index.concrete[rule.pre.symbol].push_back(id); break;
            case PreSpec::Kind::Class: index.by_class[rule.pre.cls].push_back(id); break;
            case PreSpec::Kind::Any: index.any.push_back(id); break;
        }
    }
}

Pda Pda::expand_concrete() const {
    Pda out(_alphabet_size);
    for (StateId s = 0; s < state_count(); ++s) out.add_state();
    for (Symbol s = 0; s < _symbol_classes.size(); ++s)
        if (_symbol_classes[s] != k_no_class) out.set_symbol_class(s, _symbol_classes[s]);
    for (const auto& rule : _rules) {
        if (rule.pre.kind == PreSpec::Kind::Concrete) {
            auto concrete = rule;
            if (concrete.op == Rule::OpKind::Push && concrete.label2 == k_same_symbol)
                concrete.label2 = concrete.pre.symbol;
            out.add_rule(std::move(concrete));
            continue;
        }
        for (const auto symbol : pre_set(rule.pre).materialize(_alphabet_size)) {
            auto concrete = rule;
            concrete.pre = PreSpec::concrete(symbol);
            if (concrete.op == Rule::OpKind::Push && concrete.label2 == k_same_symbol)
                concrete.label2 = symbol;
            out.add_rule(std::move(concrete));
        }
    }
    return out;
}

} // namespace aalwines::pda
