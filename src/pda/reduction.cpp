#include "pda/reduction.hpp"

#include <algorithm>
#include <deque>
#include <iterator>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "util/check.hpp"

namespace aalwines::pda {

namespace {

/// Bounded abstract domain for symbol sets, keyed by symbol class: each
/// class is either "all symbols of the class" or a small explicit set that
/// widens to "all" past a threshold.  All lattice operations are
/// alphabet-size independent, which keeps the fixpoint cheap even on
/// operator networks with 10⁵ labels.  Widening only loses precision (keeps
/// more rules), never soundness.
///
/// Parts live in a small flat vector (the MPLS translation uses a handful
/// of strata) and merges union whole sorted vectors at once, with a
/// no-allocation subset fast path — in a fixpoint most merges add nothing,
/// and this makes those O(|src|) comparisons instead of per-symbol
/// map-lookup-and-insert.
class StrataSet {
public:
    static constexpr std::size_t k_widen_threshold = 64;

    [[nodiscard]] bool contains(Symbol symbol, SymbolClass cls) const {
        const auto* part = find(cls);
        if (part == nullptr) return false;
        if (part->all) return true;
        return std::binary_search(part->some.begin(), part->some.end(), symbol);
    }

    [[nodiscard]] bool has_class(SymbolClass cls) const {
        const auto* part = find(cls);
        return part != nullptr && (part->all || !part->some.empty());
    }

    [[nodiscard]] bool empty() const { return _parts.empty(); }

    /// Insert one symbol; returns true on growth.
    bool add(Symbol symbol, SymbolClass cls) {
        auto& part = part_of(cls);
        if (part.all) return false;
        auto it = std::lower_bound(part.some.begin(), part.some.end(), symbol);
        if (it != part.some.end() && *it == symbol) return false;
        part.some.insert(it, symbol);
        widen(cls, part);
        return true;
    }

    /// Make the whole class present; returns true on growth.
    bool add_class(SymbolClass cls) {
        auto& part = part_of(cls);
        if (part.all) return false;
        part.all = true;
        part.some.clear();
        return true;
    }

    /// this ∪= other; returns true on growth.
    bool merge(const StrataSet& other) {
        bool changed = false;
        for (const auto& entry : other._parts)
            if (merge_part(entry.cls, entry.part)) changed = true;
        return changed;
    }

    /// this ∪= (other restricted to class cls); returns true on growth.
    bool merge_class(const StrataSet& other, SymbolClass cls) {
        const auto* part = other.find(cls);
        if (part == nullptr) return false;
        return merge_part(cls, *part);
    }

private:
    struct Part {
        bool all = false;
        std::vector<Symbol> some; // sorted
    };
    struct Entry {
        SymbolClass cls;
        Part part;
    };

    bool merge_part(SymbolClass cls, const Part& src) {
        if (!src.all && src.some.empty()) return false;
        auto& dst = part_of(cls);
        if (dst.all) return false;
        if (src.all) {
            dst.all = true;
            dst.some.clear();
            dst.some.shrink_to_fit();
            return true;
        }
        if (is_subset(src.some, dst.some)) return false;
        std::vector<Symbol> merged;
        merged.reserve(dst.some.size() + src.some.size());
        std::set_union(dst.some.begin(), dst.some.end(), src.some.begin(),
                       src.some.end(), std::back_inserter(merged));
        dst.some = std::move(merged);
        widen(cls, dst);
        return true;
    }

    static bool is_subset(const std::vector<Symbol>& sub,
                          const std::vector<Symbol>& super) {
        if (sub.size() > super.size()) return false;
        auto it = super.begin();
        for (const auto symbol : sub) {
            it = std::lower_bound(it, super.end(), symbol);
            if (it == super.end() || *it != symbol) return false;
            ++it;
        }
        return true;
    }

    static void widen(SymbolClass cls, Part& part) {
        // Classless symbols cannot be summarized by a class set, so they
        // never widen; in the MPLS translation every label has a stratum.
        if (cls != k_no_class && part.some.size() > k_widen_threshold) {
            part.all = true;
            part.some.clear();
            part.some.shrink_to_fit();
        }
    }

    [[nodiscard]] const Part* find(SymbolClass cls) const {
        for (const auto& entry : _parts)
            if (entry.cls == cls) return &entry.part;
        return nullptr;
    }
    [[nodiscard]] Part& part_of(SymbolClass cls) {
        for (auto& entry : _parts)
            if (entry.cls == cls) return entry.part;
        return _parts.emplace_back(Entry{cls, {}}).part;
    }

    std::vector<Entry> _parts;
};

/// Does `pre` match anything in `top`?
bool pre_matches(const Pda& pda, const PreSpec& pre, const StrataSet& top) {
    switch (pre.kind) {
        case PreSpec::Kind::Concrete:
            return top.contains(pre.symbol, pda.class_of(pre.symbol));
        case PreSpec::Kind::Class: return top.has_class(pre.cls);
        case PreSpec::Kind::Any: return !top.empty();
    }
    return false;
}

/// Grow `target` by (top ∩ pre) — the symbols a "push same" rule can leave
/// below the new top.
bool grow_matched(const Pda& pda, StrataSet& target, const StrataSet& top,
                  const PreSpec& pre) {
    switch (pre.kind) {
        case PreSpec::Kind::Concrete: {
            const auto cls = pda.class_of(pre.symbol);
            if (!top.contains(pre.symbol, cls)) return false;
            return target.add(pre.symbol, cls);
        }
        case PreSpec::Kind::Class: return target.merge_class(top, pre.cls);
        case PreSpec::Kind::Any: return target.merge(top);
    }
    return false;
}

/// Import a concrete SymbolSet (a seed) into the abstract domain.
bool grow_from_symbol_set(const Pda& pda, StrataSet& target, const nfa::SymbolSet& set) {
    using Mode = nfa::SymbolSet::Mode;
    if (set.is_empty_set()) return false;
    if (set.mode() == Mode::Include) {
        bool changed = false;
        for (const auto symbol : set.symbols())
            changed = target.add(symbol, pda.class_of(symbol)) || changed;
        return changed;
    }
    // Any / Exclude: over-approximate with "every class entirely".
    bool changed = false;
    std::vector<SymbolClass> classes;
    for (Symbol s = 0; s < pda.alphabet_size(); ++s) {
        const auto cls = pda.class_of(s);
        if (std::find(classes.begin(), classes.end(), cls) == classes.end())
            classes.push_back(cls);
        if (classes.size() >= 8) break; // enough: class ids are few by design
    }
    for (const auto cls : classes) changed = target.add_class(cls) || changed;
    return changed;
}

} // namespace

ReductionStats reduce(Pda& pda, std::span<const TosSeed> seeds,
                      const nfa::SymbolSet& deep_symbols, int level) {
    // The reduction is a whole-PDA fixpoint followed by rule removal, so a
    // lazy PDA would have to materialize everything first — which defeats
    // demand-driven construction.  The lazy translation therefore skips this
    // pass entirely: saturation's match index filters on the *exact*
    // reachable top-of-stack labels per state, subsuming the abstract
    // StrataSet filter rule-application-wise (pruned rules can never match a
    // reachable top, so removal never changes post*/pre* results).
    AALWINES_CHECK(!pda.lazy(), "reduce() requires an eagerly built PDA");
    ReductionStats stats;
    stats.rules_before = pda.rule_count();
    stats.rules_after = pda.rule_count();
    if (level <= 0) return stats;
    const bool track_second = level >= 2;

    const auto n = pda.state_count();
    std::vector<StrataSet> top(n);    // possible top-of-stack per state
    std::vector<StrataSet> second(n); // possible second-of-stack per state

    // The coarse level-1 approximation of what a pop can reveal: anything
    // that may be buried anywhere — seeds' second symbols, deep symbols and
    // every symbol a push rule can leave below the new top.
    StrataSet buried;
    grow_from_symbol_set(pda, buried, deep_symbols);
    for (const auto& seed : seeds) grow_from_symbol_set(pda, buried, seed.second);
    for (const auto& rule : pda.rules()) {
        if (rule.op != Rule::OpKind::Push) continue;
        if (rule.label2 == k_same_symbol)
            grow_from_symbol_set(pda, buried, pda.pre_set(rule.pre));
        else
            buried.add(rule.label2, pda.class_of(rule.label2));
    }

    std::deque<StateId> worklist;
    std::vector<bool> queued(n, false);
    auto enqueue = [&](StateId state) {
        if (!queued[state]) {
            queued[state] = true;
            worklist.push_back(state);
        }
    };

    for (const auto& seed : seeds) {
        bool changed = grow_from_symbol_set(pda, top[seed.state], seed.top);
        if (track_second)
            changed = grow_from_symbol_set(pda, second[seed.state], seed.second) || changed;
        if (changed) enqueue(seed.state);
    }

    // Group rules by source state once.
    std::vector<std::vector<RuleId>> by_from(n);
    for (RuleId id = 0; id < pda.rule_count(); ++id)
        by_from[pda.rule(id).from].push_back(id);

    while (!worklist.empty()) {
        const auto state = worklist.front();
        worklist.pop_front();
        queued[state] = false;
        for (const auto rule_id : by_from[state]) {
            const auto& rule = pda.rule(rule_id);
            if (!pre_matches(pda, rule.pre, top[state])) continue;
            bool changed = false;
            switch (rule.op) {
                case Rule::OpKind::Swap:
                    changed = top[rule.to].add(rule.label1, pda.class_of(rule.label1));
                    if (track_second)
                        changed = second[rule.to].merge(second[state]) || changed;
                    break;
                case Rule::OpKind::Push:
                    changed = top[rule.to].add(rule.label1, pda.class_of(rule.label1));
                    if (rule.label2 == k_same_symbol)
                        changed = grow_matched(pda, second[rule.to], top[state],
                                               rule.pre) ||
                                  changed;
                    else
                        changed = second[rule.to].add(rule.label2,
                                                      pda.class_of(rule.label2)) ||
                                  changed;
                    break;
                case Rule::OpKind::Pop:
                    changed = top[rule.to].merge(track_second ? second[state] : buried);
                    if (track_second) changed = second[rule.to].merge(buried) || changed;
                    break;
            }
            if (changed) enqueue(rule.to);
        }
    }

    // Remove rules whose left-hand side can never appear on top.
    std::vector<RuleId> discard;
    for (RuleId id = 0; id < pda.rule_count(); ++id) {
        const auto& rule = pda.rule(id);
        if (!pre_matches(pda, rule.pre, top[rule.from])) discard.push_back(id);
    }
    pda.remove_rules(discard);
    stats.rules_after = pda.rule_count();
    telemetry::count(telemetry::Counter::reduction_rules_pruned, discard.size());
    return stats;
}

} // namespace aalwines::pda
