#include "pda/solver.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <queue>
#include <string_view>
#include <thread>

#include "telemetry/telemetry.hpp"
#include "util/check.hpp"
#include "util/hot_path.hpp"

namespace aalwines::pda {

namespace {

/// Heap worklist entry; min-ordered by (weight, insertion sequence).  The
/// sequence tie-break makes the unweighted case behave like BFS, which
/// keeps witnesses short.
struct HeapItem {
    Weight weight;
    std::uint64_t seq = 0;
    bool is_eps = false;
    std::uint32_t id = 0;
};

struct HeapCompare {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
        const auto cmp = a.weight <=> b.weight;
        if (cmp != std::strong_ordering::equal) return cmp == std::strong_ordering::greater;
        return a.seq > b.seq;
    }
};

using Heap = std::priority_queue<HeapItem, std::vector<HeapItem>, HeapCompare>;

/// Binary-heap worklist: the general discipline, any weight domain.
class HeapWorklist {
public:
    using Item = HeapItem;

    void push(const Weight& weight, bool is_eps, std::uint32_t id) {
        _heap.push({weight, _seq++, is_eps, id});
    }
    [[nodiscard]] bool empty() const { return _heap.empty(); }
    [[nodiscard]] std::size_t size() const { return _heap.size(); }
    Item pop() {
        Item item = _heap.top();
        _heap.pop();
        return item;
    }

private:
    Heap _heap;
    std::uint64_t _seq = 0;
};

[[nodiscard]] bool weight_is_current(const HeapItem& item, const Weight& weight) {
    return item.weight == weight;
}
// `strict` (canonical tie-breaking runs): keep saturating through the whole
// weight level equal to `best`, so every equal-weight minimal derivation is
// finalized before we stop — the canonical provenance choice then depends
// only on automaton content, never on where in the level a run halted.
[[nodiscard]] bool best_stops(const Weight& best, const HeapItem& item, bool strict) {
    return strict ? best < item.weight : best <= item.weight;
}

/// Dial's bucket queue, usable when every weight is a scalar (≤ 1 component).
/// Bucket index = scalar weight; FIFO within a bucket reproduces the heap's
/// (weight, insertion-seq) order exactly, so both disciplines finalize items
/// identically.  Saturation pushes are mostly monotone (extend only adds),
/// but post* inserts the first leg of a push rule at weight 1̄ (key 0) at any
/// point, so a push below the cursor rewinds it — the heap would pop that
/// minimal item next too.  Keys at or above the cap spill into a binary heap
/// drained only when no bucket entry is live (bucket keys < cap ≤ overflow
/// keys, so buckets always go first).  Nodes are bump-allocated.
class BucketWorklist {
public:
    struct Item {
        std::uint64_t key = 0;
        bool is_eps = false;
        std::uint32_t id = 0;
    };
    static constexpr std::uint64_t k_bucket_cap = 1u << 20;

    explicit BucketWorklist(util::Arena& arena) : _arena(&arena) {}

    void push(const Weight& weight, bool is_eps, std::uint32_t id) {
        const auto scalar = weight.as_scalar();
        AALWINES_ASSERT(scalar.has_value(), "bucket worklist requires scalar weights");
        const std::uint64_t key = *scalar;
        if (key >= k_bucket_cap) {
            _overflow.push({weight, _seq++, is_eps, id});
            ++_size;
            return;
        }
        if (key < _cursor) _cursor = key;
        auto* node = _arena->create<Node>(Node{id, is_eps, nullptr});
        if (key >= _buckets.size()) _buckets.resize(key + 1);
        auto& bucket = _buckets[key];
        if (bucket.tail != nullptr)
            bucket.tail->next = node;
        else
            bucket.head = node;
        bucket.tail = node;
        ++_size;
    }

    [[nodiscard]] bool empty() const { return _size == 0; }
    [[nodiscard]] std::size_t size() const { return _size; }

    /// Smallest queued key without popping (advances the bucket cursor);
    /// nullopt when empty.  The parallel engine uses this to agree on the
    /// global frontier level before each round's drain.
    [[nodiscard]] std::optional<std::uint64_t> min_key() {
        if (_size == 0) return std::nullopt;
        while (_cursor < _buckets.size() && _buckets[_cursor].head == nullptr) ++_cursor;
        if (_cursor < _buckets.size()) return _cursor;
        return *_overflow.top().weight.as_scalar();
    }

    Item pop() {
        while (_cursor < _buckets.size() && _buckets[_cursor].head == nullptr) ++_cursor;
        --_size;
        if (_cursor < _buckets.size()) {
            auto& bucket = _buckets[_cursor];
            Node* node = bucket.head;
            bucket.head = node->next;
            if (bucket.head == nullptr) bucket.tail = nullptr;
            return {_cursor, node->is_eps, node->id};
        }
        const HeapItem top = _overflow.top();
        _overflow.pop();
        return {*top.weight.as_scalar(), top.is_eps, top.id};
    }

private:
    struct Node {
        std::uint32_t id;
        bool is_eps;
        Node* next;
    };
    struct Bucket {
        Node* head = nullptr;
        Node* tail = nullptr;
    };

    util::Arena* _arena;
    std::vector<Bucket> _buckets;
    std::uint64_t _cursor = 0;
    std::size_t _size = 0;
    Heap _overflow;
    std::uint64_t _seq = 0;
};

[[nodiscard]] bool weight_is_current(const BucketWorklist::Item& item, const Weight& weight) {
    const auto scalar = weight.as_scalar();
    return scalar.has_value() && *scalar == item.key;
}
[[nodiscard]] bool best_stops(const Weight& best, const BucketWorklist::Item& item,
                              bool strict) {
    if (const auto scalar = best.as_scalar())
        return strict ? *scalar < item.key : *scalar <= item.key;
    const auto frontier = Weight::scalar(item.key);
    return strict ? best < frontier : best <= frontier;
}

[[nodiscard]] bool bucket_eligible(const PAutomaton& aut, const SolverOptions& options) {
    switch (options.worklist) {
        case Worklist::Heap: return false;
        case Worklist::Auto:
        case Worklist::Bucket:
            // Bucket forced on non-scalar weights still falls back: there is
            // no scalar key to index buckets with.
            return aut.all_scalar_weights() && aut.pda().all_weights_scalar();
    }
    return false;
}

EdgeLabel label_of_pre(const Pda& pda, const PreSpec& pre) {
    switch (pre.kind) {
        case PreSpec::Kind::Concrete: return EdgeLabel::of(pre.symbol);
        case PreSpec::Kind::Class: return EdgeLabel::of_set(pda.class_set(pre.cls));
        case PreSpec::Kind::Any: return EdgeLabel::of_set(nfa::SymbolSet::any());
    }
    return EdgeLabel::of_set(nfa::SymbolSet::none());
}

template <typename WL>
AALWINES_HOT_PATH void post_star_loop(PAutomaton& aut, const SolverOptions& options,
                                      SolverStats& stats, std::size_t& eps_relaxations,
                                      WL& worklist) {
    const Pda& pda = aut.pda();

    auto enqueue_trans = [&](TransId id) {
        ++stats.relaxations;
        worklist.push(aut.transition(id).weight, false, id);
    };
    auto enqueue_eps = [&](std::uint32_t id) {
        ++stats.relaxations;
        ++eps_relaxations;
        worklist.push(aut.epsilon(id).weight, true, id);
    };

    for (TransId id = 0; id < aut.transition_count(); ++id) enqueue_trans(id);

    std::size_t next_check = 512; // demand-driven acceptance checks, doubling

    while (!worklist.empty()) {
        stats.peak_queue = std::max(stats.peak_queue, worklist.size());
        const auto item = worklist.pop();

        if (options.check_accepted && stats.iterations >= next_check) {
            next_check *= 2;
            const auto best = options.check_accepted();
            // Items finalize in non-decreasing weight order: once the best
            // accepted weight is <= the frontier, it is globally minimal.
            if (!best.is_infinite() && best_stops(best, item, aut.canonical_tiebreaks())) {
                stats.early_terminated = true;
                break;
            }
        }

        if (item.is_eps) {
            auto& eps = aut.epsilon(item.id);
            if (eps.finalized || !weight_is_current(item, eps.weight)) continue; // stale
            eps.finalized = true;
            ++stats.iterations;
            // Combination: ε(x→q) ∘ (q, L, q')  ⇒  (x, L, q').
            const EpsTransition eps_copy = eps;
            const auto& outgoing = aut.transitions_from(eps_copy.to);
            for (std::size_t i = 0; i < outgoing.size(); ++i) {
                const TransId tid = outgoing[i];
                const Transition trans = aut.transition(tid); // copy (relocation below)
                if (!trans.finalized) continue;
                auto [nid, improved] = aut.add_transition(
                    eps_copy.from, trans.label, trans.to,
                    extend(eps_copy.weight, trans.weight),
                    {Provenance::Kind::PostCombine, UINT32_MAX, item.id, tid});
                if (improved) enqueue_trans(nid);
            }
        } else {
            auto& trans_ref = aut.transition(item.id);
            if (trans_ref.finalized || !weight_is_current(item, trans_ref.weight)) continue;
            trans_ref.finalized = true;
            ++stats.iterations;
            const Transition trans = trans_ref; // copy: the vector may grow below

            if (aut.is_control_state(trans.from)) {
                auto apply = [&](RuleId rule_id, const nfa::SymbolSet& matched) {
                    const Rule& rule = pda.rule(rule_id);
                    switch (rule.op) {
                        case Rule::OpKind::Swap: {
                            auto [nid, improved] = aut.add_transition(
                                rule.to, EdgeLabel::of(rule.label1), trans.to,
                                extend(trans.weight, rule.weight),
                                {Provenance::Kind::PostSwap, rule_id, item.id, k_no_trans});
                            if (improved) enqueue_trans(nid);
                            break;
                        }
                        case Rule::OpKind::Pop: {
                            auto [nid, improved] = aut.add_epsilon(
                                rule.to, trans.to, extend(trans.weight, rule.weight),
                                {Provenance::Kind::PostEps, rule_id, item.id, k_no_trans});
                            if (improved) enqueue_eps(nid);
                            break;
                        }
                        case Rule::OpKind::Push: {
                            const StateId mid = aut.mid_state(rule.to, rule.label1);
                            auto [t1, improved1] = aut.add_transition(
                                rule.to, EdgeLabel::of(rule.label1), mid, Weight::one(),
                                {Provenance::Kind::PostPushT1, rule_id, k_no_trans,
                                 k_no_trans});
                            if (improved1) enqueue_trans(t1);
                            const EdgeLabel below =
                                rule.label2 == k_same_symbol
                                    ? EdgeLabel::of_set(matched)
                                    : EdgeLabel::of(rule.label2);
                            auto [t2, improved2] = aut.add_transition(
                                mid, below, trans.to, extend(trans.weight, rule.weight),
                                {Provenance::Kind::PostPushT2, rule_id, item.id,
                                 k_no_trans});
                            if (improved2) enqueue_trans(t2);
                            break;
                        }
                    }
                };
                // On a lazy PDA this pop is what demands trans.from's rules:
                // the first finalized transition out of a control state
                // materializes its outgoing rules (and only then).
                if (trans.label.is_concrete())
                    pda.for_each_applicable(trans.from, trans.label.concrete, apply);
                else
                    pda.for_each_applicable(trans.from, trans.label.set, apply);
            }

            // Combination where this transition is the second component.
            for (const auto eid : aut.epsilons_into(trans.from)) {
                const EpsTransition eps = aut.epsilon(eid);
                if (!eps.finalized) continue;
                auto [nid, improved] = aut.add_transition(
                    eps.from, trans.label, trans.to, extend(eps.weight, trans.weight),
                    {Provenance::Kind::PostCombine, UINT32_MAX, eid, item.id});
                if (improved) enqueue_trans(nid);
            }
        }

        if (options.max_iterations != 0 && stats.iterations >= options.max_iterations) {
            stats.truncated = true;
            break;
        }
    }
}

template <typename WL>
AALWINES_HOT_PATH void pre_star_loop(PAutomaton& aut, const SolverOptions& options,
                                     SolverStats& stats, WL& worklist) {
    const Pda& pda = aut.pda();
    // Cached across calls on the same PDA.  pre* consumes rules by *target*
    // state and seeds every pop rule unconditionally below, so demand-driven
    // construction cannot skip work here: a lazy PDA falls back to full
    // materialization (build_target_index materializes, and its per-target
    // index was already filled incrementally by add_rule).
    pda.build_target_index();

    auto enqueue_trans = [&](TransId id) {
        ++stats.relaxations;
        worklist.push(aut.transition(id).weight, false, id);
    };

    // Push rules whose first written symbol matched a transition into state
    // `m` wait there for a matching second transition out of `m`.
    std::vector<std::vector<std::pair<RuleId, TransId>>> partials(aut.state_count());

    for (TransId id = 0; id < aut.transition_count(); ++id) enqueue_trans(id);
    for (RuleId id = 0; id < pda.rule_slot_count(); ++id) {
        if (pda.rule_dead(id)) continue;
        const auto& rule = pda.rule(id);
        if (rule.op != Rule::OpKind::Pop) continue;
        auto [nid, improved] =
            aut.add_transition(rule.from, label_of_pre(pda, rule.pre), rule.to, rule.weight,
                               {Provenance::Kind::PrePop, id, k_no_trans, k_no_trans});
        if (improved) enqueue_trans(nid);
    }

    auto try_complete = [&](RuleId rule_id, TransId t1_id, TransId t2_id) {
        const auto& rule = pda.rule(rule_id);
        const Transition t1 = aut.transition(t1_id);
        const Transition t2 = aut.transition(t2_id);
        EdgeLabel new_label;
        if (rule.label2 == k_same_symbol) {
            auto inter = t2.label.intersect(pda.pre_set(rule.pre));
            if (!inter) return;
            new_label = std::move(*inter);
        } else {
            if (!t2.label.contains(rule.label2)) return;
            new_label = label_of_pre(pda, rule.pre);
        }
        auto [nid, improved] = aut.add_transition(
            rule.from, std::move(new_label), t2.to,
            extend(rule.weight, extend(t1.weight, t2.weight)),
            {Provenance::Kind::PrePush, rule_id, t1_id, t2_id});
        if (improved) enqueue_trans(nid);
    };

    while (!worklist.empty()) {
        stats.peak_queue = std::max(stats.peak_queue, worklist.size());
        const auto item = worklist.pop();
        auto& trans_ref = aut.transition(item.id);
        if (trans_ref.finalized || !weight_is_current(item, trans_ref.weight)) continue;
        trans_ref.finalized = true;
        ++stats.iterations;
        const Transition trans = trans_ref; // copy

        // Rules can only target PDA control states; transitions leaving
        // automaton-only helper states never match a rule's right-hand side.
        if (trans.from < pda.state_count()) {
            // Swap rules p γ → q γ' with q == trans.from and γ' in the label.
            for (const auto rule_id : pda.swaps_into(trans.from)) {
                const auto& rule = pda.rule(rule_id);
                if (!trans.label.contains(rule.label1)) continue;
                auto [nid, improved] = aut.add_transition(
                    rule.from, label_of_pre(pda, rule.pre), trans.to,
                    extend(rule.weight, trans.weight),
                    {Provenance::Kind::PreSwap, rule_id, item.id, k_no_trans});
                if (improved) enqueue_trans(nid);
            }
            // Push rules where this transition reads the first written symbol.
            for (const auto rule_id : pda.pushes_into(trans.from)) {
                const auto& rule = pda.rule(rule_id);
                if (!trans.label.contains(rule.label1)) continue;
                partials[trans.to].push_back({rule_id, item.id});
                const auto& outgoing = aut.transitions_from(trans.to);
                for (std::size_t i = 0; i < outgoing.size(); ++i) {
                    if (aut.transition(outgoing[i]).finalized)
                        try_complete(rule_id, item.id, outgoing[i]);
                }
            }
        }
        // This transition as the second written symbol of pending pushes.
        const auto pending = partials[trans.from]; // copy: may grow during iteration
        for (const auto& [rule_id, t1_id] : pending) try_complete(rule_id, t1_id, item.id);

        if (options.max_iterations != 0 && stats.iterations >= options.max_iterations) {
            stats.truncated = true;
            break;
        }
    }
}

} // namespace

unsigned solver_shard_of(StateId state, unsigned shard_count) noexcept {
    // splitmix64-style finalizer over the interned id; +1 keeps state 0 off
    // the multiplier's zero fixed point.  Pinned by a unit test: rebalancing
    // changes must be visible in review, not silently reshuffle runs.
    std::uint64_t hash = (static_cast<std::uint64_t>(state) + 1) * 0x9E3779B97F4A7C15ull;
    hash ^= hash >> 32;
    return static_cast<unsigned>(hash % shard_count);
}

/// Level-synchronous sharded saturation (SolverOptions::threads > 1).
///
/// Sequential saturation is Dijkstra: pop the single globally minimal item,
/// expand it, repeat.  The parallel engine drains an entire *weight level*
/// per round instead — every queued item whose scalar key equals the global
/// minimum — with one worker per shard, where a shard owns the states
/// solver_shard_of hashes to it (a transition/ε item belongs to its
/// from-state's owner).  A round is a fixed sequence of barrier-separated
/// phases:
///
///   1. round_begin (serial): global minimum key over the shard worklists;
///      truncation and demand-driven early-termination checks.
///   2. drain (parallel): each shard pops its own items at that key and
///      finalizes them (stale entries skipped, exactly as sequentially).
///   3. after_drain (serial): demand-materialize the frontier states' rules
///      and warm the class-set cache — the only mutating reads the PDA rule
///      lookup path performs — so the next phase sees a frozen PDA.
///   4. expand (parallel, strictly read-only): apply rules/combinations to
///      the drained items, staging every would-be insertion into
///      per-destination hand-off queues.
///   5. route (serial): the few global-index mutations, in shard order —
///      resolve post* push mid-states (these may add automaton states),
///      commit ε-transitions, register pre* push partials.
///   6. integrate (parallel): each shard consumes the tuples staged *for
///      it*, deduplicating against its own (from, symbol) key chains: relax
///      existing transitions in place, or record a Fresh entry.  A chain is
///      owned by exactly one shard, so no locks anywhere.
///   7. assign (serial): prefix-sum the Fresh counts into dense global ids
///      and resize the transition table — ids stay dense and creation-
///      ordered, so provenance/witness/validate code never notices the
///      threading.
///   8. commit (parallel): write Fresh transitions into their slots, link
///      key chains, append owner-disjoint adjacency, enqueue.
///
/// Equal-weight tie-breaks (provenance choice, mid-state numbering,
/// adjacency order) may differ from the sequential engine, but accepting
/// sets and minimal weights are identical: staged weights never undercut
/// the round key (the Dijkstra argument per level), and — as a safety net
/// where the sequential engine asserts instead — a strict improvement of a
/// finalized transition un-finalizes and re-enqueues it (label-correcting
/// fallback), so convergence cannot depend on the batch finalization order
/// within a round.  For a fixed thread count the schedule is deterministic
/// (shards are consumed in index order everywhere), so repeated runs
/// produce byte-identical automata.
class ParallelSaturation {
public:
    ParallelSaturation(PAutomaton& aut, const SolverOptions& options, SolverStats& stats,
                       util::TaskPool& pool, std::span<util::Arena> arenas)
        : _aut(aut), _pda(aut.pda()), _options(options), _stats(stats), _pool(pool),
          _n(pool.threads()), _barrier(pool.threads()) {
        _shards.reserve(_n);
        for (unsigned t = 0; t < _n; ++t) {
            arenas[t].reset();
            _shards.push_back(std::make_unique<Shard>(arenas[t], _n));
        }
        _bases.resize(_n, 0);
    }

    void run_post() {
        _post = true;
        seed();
        run_rounds();
        finish();
    }

    void run_pre() {
        _post = false;
        // pre* consumes rules by target state: build (and on a lazy PDA,
        // fully materialize) the per-target index up front, and warm every
        // class set the read-only expansion phase can touch — label_of_pre
        // and pre_set consult the lazily-built class-set cache.
        _pda.build_target_index();
        for (const auto& rule : _pda.rules())
            if (rule.pre.kind == PreSpec::Kind::Class) (void)_pda.class_set(rule.pre.cls);
        _partials.resize(_aut.state_count()); // pre* never adds states
        for (RuleId id = 0; id < _pda.rule_slot_count(); ++id) {
            if (_pda.rule_dead(id)) continue;
            const auto& rule = _pda.rule(id);
            if (rule.op != Rule::OpKind::Pop) continue;
            (void)_aut.add_transition(rule.from, label_of_pre(_pda, rule.pre), rule.to,
                                      rule.weight,
                                      {Provenance::Kind::PrePop, id, k_no_trans, k_no_trans});
        }
        seed();
        run_rounds();
        finish();
    }

    [[nodiscard]] std::size_t eps_relaxations() const noexcept { return _eps_relax; }

private:
    struct StagedTrans {
        StateId from;
        StateId to;
        EdgeLabel label;
        Weight weight;
        Provenance prov;
    };
    struct StagedEps {
        StateId from;
        StateId to;
        Weight weight;
        Provenance prov;
    };
    struct StagedPush {
        StateId rule_to; ///< the push rule's target state (t1's from)
        StateId to;      ///< the matched transition's target (t2's to)
        Symbol label1;
        EdgeLabel below;
        Weight weight; ///< t2's weight
        RuleId rule;
        TransId src;
    };
    /// A transition created this round, waiting for its dense global id.
    struct Fresh {
        StateId from;
        StateId to;
        EdgeLabel label;
        Weight weight;
        Provenance prov;
        std::uint64_t key;       ///< pack(from, symbol); concrete labels only
        TransId chain_tail;      ///< last pre-existing id of the key chain
        std::uint32_t fresh_prev; ///< previous Fresh of this key, or UINT32_MAX
        TransId global_head;     ///< pre-existing chain head, or k_no_trans
    };
    /// Marks a shard head-map value as a Fresh index instead of a global
    /// transition id.  Real ids stay far below this bit for any automaton
    /// that fits in memory, and FlatMap64::k_npos is checked first, so the
    /// value space is unambiguous.
    static constexpr std::uint32_t k_fresh_flag = 0x8000'0000u;

    struct Shard {
        Shard(util::Arena& arena, unsigned n) : wl(arena), out(n) {}
        BucketWorklist wl;
        util::FlatMap64 heads; ///< (from,symbol) -> head id or k_fresh_flag|index
        std::vector<BucketWorklist::Item> drained;
        std::vector<std::vector<StagedTrans>> out; ///< per destination shard
        std::vector<StagedEps> eps_out;            ///< post*: committed in route
        std::vector<StagedPush> push_out;          ///< post*: mid resolved in route
        std::vector<std::pair<StateId, std::pair<RuleId, TransId>>> partial_out; ///< pre*
        std::vector<Fresh> fresh;
        std::size_t pops = 0;
        std::size_t handoffs = 0;
        std::size_t relaxations = 0;
        std::uint64_t max_scalar = 0;
    };

    void seed() {
        _seeded_transitions = static_cast<TransId>(_aut.transition_count());
        for (TransId id = 0; id < _seeded_transitions; ++id) {
            const Transition& trans = _aut._transitions[id];
            Shard& sh = *_shards[solver_shard_of(trans.from, _n)];
            // First insert in id order is the true chain head, because
            // add_transition appends at the tail.
            if (trans.label.is_concrete())
                sh.heads.try_emplace(PAutomaton::pack(trans.from, trans.label.concrete), id);
            ++sh.relaxations;
            sh.wl.push(trans.weight, false, id);
        }
    }

    void run_rounds() {
        _pool.run([this](unsigned t) {
            for (;;) {
                if (t == 0) round_begin();
                _barrier.arrive_and_wait();
                if (_done) break;
                drain(t);
                _barrier.arrive_and_wait();
                if (t == 0) serial_after_drain();
                _barrier.arrive_and_wait();
                if (_post)
                    expand_post(t);
                else
                    expand_pre(t);
                _barrier.arrive_and_wait();
                if (t == 0) serial_route();
                _barrier.arrive_and_wait();
                integrate(t);
                _barrier.arrive_and_wait();
                if (t == 0) serial_assign();
                _barrier.arrive_and_wait();
                commit(t);
                _barrier.arrive_and_wait();
            }
        });
    }

    void round_begin() {
        std::size_t queued = 0;
        std::size_t iterations = 0;
        std::optional<std::uint64_t> min;
        for (unsigned t = 0; t < _n; ++t) {
            Shard& sh = *_shards[t];
            queued += sh.wl.size();
            iterations += sh.pops;
            const auto key = sh.wl.min_key();
            if (key && (!min || *key < *min)) min = key;
        }
        _stats.peak_queue = std::max(_stats.peak_queue, queued);
        if (!min) {
            _done = true;
            return;
        }
        if (_options.max_iterations != 0) {
            if (iterations >= _options.max_iterations) {
                _stats.truncated = true;
                _done = true;
                return;
            }
            // Shared budget keeps the cap exact even though a round drains a
            // whole weight level: shards claim per-item, leftovers requeue.
            _round_budget.store(_options.max_iterations - iterations,
                                std::memory_order_relaxed);
        }
        if (_options.check_accepted && iterations >= _next_check) {
            while (_next_check <= iterations) _next_check *= 2;
            const auto best = _options.check_accepted();
            // Same argument as sequentially: anything still reachable costs
            // at least the frontier key, so a best at or below it is final.
            // Canonical runs stop strictly, finishing the whole level (see
            // best_stops) — with level-synchronous rounds that costs at most
            // the remainder of the current round.
            const auto frontier = Weight::scalar(*min);
            if (!best.is_infinite() &&
                (_aut.canonical_tiebreaks() ? best < frontier : best <= frontier)) {
                _stats.early_terminated = true;
                _done = true;
                return;
            }
        }
        _round_key = *min;
        ++_rounds;
    }

    [[nodiscard]] bool claim_budget() {
        auto budget = _round_budget.load(std::memory_order_relaxed);
        while (budget != 0) {
            if (_round_budget.compare_exchange_weak(budget, budget - 1,
                                                    std::memory_order_relaxed))
                return true;
        }
        return false;
    }

    void drain(unsigned t) {
        Shard& sh = *_shards[t];
        sh.drained.clear();
        const bool capped = _options.max_iterations != 0;
        for (;;) {
            const auto key = sh.wl.min_key();
            if (!key || *key != _round_key) break;
            if (capped && !claim_budget()) break; // cap hit: leave the rest queued
            const auto item = sh.wl.pop();
            const bool stale =
                item.is_eps
                    ? (_aut._epsilons[item.id].finalized ||
                       !weight_is_current(item, _aut._epsilons[item.id].weight))
                    : (_aut._transitions[item.id].finalized ||
                       !weight_is_current(item, _aut._transitions[item.id].weight));
            if (stale) {
                // Stale entries don't count as pops sequentially either.
                if (capped) _round_budget.fetch_add(1, std::memory_order_relaxed);
                continue;
            }
            if (item.is_eps)
                _aut._epsilons[item.id].finalized = true;
            else
                _aut._transitions[item.id].finalized = true;
            sh.drained.push_back(item);
            ++sh.pops;
        }
    }

    void serial_after_drain() {
        std::size_t frontier = 0;
        for (unsigned t = 0; t < _n; ++t) {
            Shard& sh = *_shards[t];
            frontier += sh.drained.size();
            if (!_post) continue; // pre* warmed everything up front
            for (const auto& item : sh.drained) {
                if (item.is_eps) continue;
                const StateId from = _aut._transitions[item.id].from;
                if (_aut.is_control_state(from)) _pda.prefetch_state(from);
            }
        }
        telemetry::observe(telemetry::Histogram::saturation_frontier, frontier);
    }

    void stage(Shard& sh, unsigned self, StagedTrans&& staged) {
        const unsigned dest = solver_shard_of(staged.from, _n);
        if (dest != self) ++sh.handoffs;
        sh.out[dest].push_back(std::move(staged));
    }

    void expand_post(unsigned t) {
        Shard& sh = *_shards[t];
        for (const auto& item : sh.drained) {
            if (item.is_eps) {
                // Combination: ε(x→q) ∘ (q, L, q')  ⇒  (x, L, q').
                const EpsTransition& eps = _aut._epsilons[item.id];
                for (const auto tid : _aut._trans_from[eps.to]) {
                    const Transition& trans = _aut._transitions[tid];
                    if (!trans.finalized) continue;
                    stage(sh, t,
                          {eps.from, trans.to, trans.label,
                           extend(eps.weight, trans.weight),
                           {Provenance::Kind::PostCombine, UINT32_MAX, item.id, tid}});
                }
                continue;
            }
            const Transition& trans = _aut._transitions[item.id];
            if (_aut.is_control_state(trans.from)) {
                auto apply = [&](RuleId rule_id, const nfa::SymbolSet& matched) {
                    const Rule& rule = _pda.rule(rule_id);
                    switch (rule.op) {
                        case Rule::OpKind::Swap:
                            stage(sh, t,
                                  {rule.to, trans.to, EdgeLabel::of(rule.label1),
                                   extend(trans.weight, rule.weight),
                                   {Provenance::Kind::PostSwap, rule_id, item.id,
                                    k_no_trans}});
                            break;
                        case Rule::OpKind::Pop:
                            sh.eps_out.push_back(
                                {rule.to, trans.to, extend(trans.weight, rule.weight),
                                 {Provenance::Kind::PostEps, rule_id, item.id,
                                  k_no_trans}});
                            break;
                        case Rule::OpKind::Push: {
                            const EdgeLabel below = rule.label2 == k_same_symbol
                                                        ? EdgeLabel::of_set(matched)
                                                        : EdgeLabel::of(rule.label2);
                            sh.push_out.push_back({rule.to, trans.to, rule.label1, below,
                                                   extend(trans.weight, rule.weight),
                                                   rule_id, item.id});
                            break;
                        }
                    }
                };
                if (trans.label.is_concrete())
                    _pda.for_each_applicable(trans.from, trans.label.concrete, apply);
                else
                    _pda.for_each_applicable(trans.from, trans.label.set, apply);
            }
            // Combination where this transition is the second component.
            for (const auto eid : _aut._eps_by_target[trans.from]) {
                const EpsTransition& eps = _aut._epsilons[eid];
                if (!eps.finalized) continue;
                stage(sh, t,
                      {eps.from, trans.to, trans.label, extend(eps.weight, trans.weight),
                       {Provenance::Kind::PostCombine, UINT32_MAX, eid, item.id}});
            }
        }
    }

    void try_complete_staged(Shard& sh, unsigned t, RuleId rule_id, TransId t1_id,
                             TransId t2_id) {
        const Rule& rule = _pda.rule(rule_id);
        const Transition& t1 = _aut._transitions[t1_id];
        const Transition& t2 = _aut._transitions[t2_id];
        EdgeLabel new_label;
        if (rule.label2 == k_same_symbol) {
            auto inter = t2.label.intersect(_pda.pre_set(rule.pre));
            if (!inter) return;
            new_label = std::move(*inter);
        } else {
            if (!t2.label.contains(rule.label2)) return;
            new_label = label_of_pre(_pda, rule.pre);
        }
        stage(sh, t,
              {rule.from, t2.to, std::move(new_label),
               extend(rule.weight, extend(t1.weight, t2.weight)),
               {Provenance::Kind::PrePush, rule_id, t1_id, t2_id}});
    }

    void expand_pre(unsigned t) {
        Shard& sh = *_shards[t];
        for (const auto& item : sh.drained) {
            const Transition& trans = _aut._transitions[item.id];
            if (trans.from < _pda.state_count()) {
                for (const auto rule_id : _pda.swaps_into(trans.from)) {
                    const Rule& rule = _pda.rule(rule_id);
                    if (!trans.label.contains(rule.label1)) continue;
                    stage(sh, t,
                          {rule.from, trans.to, label_of_pre(_pda, rule.pre),
                           extend(rule.weight, trans.weight),
                           {Provenance::Kind::PreSwap, rule_id, item.id, k_no_trans}});
                }
                for (const auto rule_id : _pda.pushes_into(trans.from)) {
                    const Rule& rule = _pda.rule(rule_id);
                    if (!trans.label.contains(rule.label1)) continue;
                    sh.partial_out.push_back({trans.to, {rule_id, item.id}});
                    // Same-round t2s are already finalized by the drain
                    // phase, so the pair is never missed: whichever side
                    // finalizes later sees the other (and same-round pairs
                    // are caught exactly once, here — the partial below is
                    // not registered until the route phase).
                    for (const auto tid : _aut._trans_from[trans.to]) {
                        if (_aut._transitions[tid].finalized)
                            try_complete_staged(sh, t, rule_id, item.id, tid);
                    }
                }
            }
            // This transition as the second written symbol of pending pushes.
            for (const auto& [rule_id, t1_id] : _partials[trans.from])
                try_complete_staged(sh, t, rule_id, t1_id, item.id);
        }
    }

    void route_from(unsigned src, StagedTrans&& staged) {
        const unsigned dest = solver_shard_of(staged.from, _n);
        if (dest != src) ++_shards[src]->handoffs;
        _shards[src]->out[dest].push_back(std::move(staged));
    }

    /// Mirror of PAutomaton::add_epsilon with the label-correcting
    /// un-finalize fallback; runs serially in the route phase because the
    /// ε-indexes are global (cross-shard by construction: rule.to vs
    /// trans.to owners are unrelated).
    void commit_epsilon(unsigned src, StagedEps& staged) {
        const auto key = PAutomaton::pack(staged.from, staged.to);
        const auto next = static_cast<std::uint32_t>(_aut._epsilons.size());
        const auto [id, inserted] = _aut._eps_index.try_emplace(key, next);
        const unsigned dest = solver_shard_of(staged.from, _n);
        if (!inserted) {
            EpsTransition& existing = _aut._epsilons[id];
            if (!(staged.weight < existing.weight)) {
                if (_aut._canonical_tiebreaks && staged.weight == existing.weight &&
                    _aut.compare_provenance(staged.prov, existing.prov) < 0)
                    existing.prov = staged.prov;
                return;
            }
            existing.weight = std::move(staged.weight);
            existing.prov = staged.prov;
            existing.finalized = false; // label-correcting fallback (class doc)
            if (dest != src) ++_shards[src]->handoffs;
            ++_eps_relax;
            _shards[dest]->wl.push(existing.weight, true, id);
            return;
        }
        _aut.note_weight(staged.weight);
        _aut._epsilons.push_back(
            {staged.from, staged.to, std::move(staged.weight), staged.prov, false});
        _aut._eps_by_target[staged.to].push_back(id);
        _aut._eps_from[staged.from].push_back(id);
        if (dest != src) ++_shards[src]->handoffs;
        ++_eps_relax;
        _shards[dest]->wl.push(_aut._epsilons[id].weight, true, id);
    }

    void serial_route() {
        if (_post) {
            for (unsigned s = 0; s < _n; ++s) {
                Shard& sh = *_shards[s];
                for (auto& push : sh.push_out) {
                    // mid_state may add an automaton state — the reason push
                    // legs resolve serially (t2's owner is unknowable until
                    // the mid state has an id).
                    const StateId mid = _aut.mid_state(push.rule_to, push.label1);
                    route_from(s, {push.rule_to, mid, EdgeLabel::of(push.label1),
                                   Weight::one(),
                                   {Provenance::Kind::PostPushT1, push.rule, k_no_trans,
                                    k_no_trans}});
                    route_from(s, {mid, push.to, std::move(push.below),
                                   std::move(push.weight),
                                   {Provenance::Kind::PostPushT2, push.rule, push.src,
                                    k_no_trans}});
                }
                sh.push_out.clear();
                for (auto& eps : sh.eps_out) commit_epsilon(s, eps);
                sh.eps_out.clear();
            }
        } else {
            for (unsigned s = 0; s < _n; ++s) {
                Shard& sh = *_shards[s];
                for (const auto& [at, partial] : sh.partial_out)
                    _partials[at].push_back(partial);
                sh.partial_out.clear();
            }
        }
    }

    void make_fresh(Shard& sh, StagedTrans& staged, std::uint64_t key, TransId chain_tail,
                    std::uint32_t fresh_prev, TransId global_head) {
        sh.fresh.push_back({staged.from, staged.to, std::move(staged.label),
                            std::move(staged.weight), staged.prov, key, chain_tail,
                            fresh_prev, global_head});
    }

    void relax_existing(Shard& sh, TransId id, StagedTrans& staged) {
        Transition& existing = _aut._transitions[id];
        if (!(staged.weight < existing.weight)) {
            // Equal-weight re-derivation: canonical runs keep the smallest
            // provenance so the choice is content-determined, not a function
            // of shard/round arrival order.  Safe without locks — a target
            // transition is integrated by exactly one shard.
            if (_aut._canonical_tiebreaks && staged.weight == existing.weight &&
                _aut.compare_provenance(staged.prov, existing.prov) < 0)
                existing.prov = staged.prov;
            return;
        }
        existing.weight = std::move(staged.weight);
        existing.prov = staged.prov;
        existing.finalized = false; // label-correcting fallback (class doc)
        ++sh.relaxations;
        sh.wl.push(existing.weight, false, id);
    }

    void relax_fresh(Fresh& fresh, StagedTrans& staged) {
        if (!(staged.weight < fresh.weight)) {
            if (_aut._canonical_tiebreaks && staged.weight == fresh.weight &&
                _aut.compare_provenance(staged.prov, fresh.prov) < 0)
                fresh.prov = staged.prov;
            return;
        }
        fresh.weight = std::move(staged.weight);
        fresh.prov = staged.prov;
    }

    void integrate_concrete(Shard& sh, StagedTrans& staged) {
        const auto key = PAutomaton::pack(staged.from, staged.label.concrete);
        const auto found = sh.heads.find(key);
        if (found == util::FlatMap64::k_npos) {
            make_fresh(sh, staged, key, k_no_trans, UINT32_MAX, k_no_trans);
            sh.heads.insert_or_assign(
                key, k_fresh_flag | static_cast<std::uint32_t>(sh.fresh.size() - 1));
            return;
        }
        if ((found & k_fresh_flag) != 0) {
            // Walk this round's fresh chain (latest first), then the
            // pre-existing global chain behind it.
            const std::uint32_t latest = found & ~k_fresh_flag;
            std::uint32_t cursor = latest;
            for (;;) {
                Fresh& fresh = sh.fresh[cursor];
                if (fresh.to == staged.to) {
                    relax_fresh(fresh, staged);
                    return;
                }
                if (fresh.fresh_prev == UINT32_MAX) break;
                cursor = fresh.fresh_prev;
            }
            for (TransId cur = sh.fresh[cursor].global_head; cur != k_no_trans;
                 cur = _aut._transitions[cur].next_same_key) {
                if (_aut._transitions[cur].to == staged.to) {
                    relax_existing(sh, cur, staged);
                    return;
                }
            }
            make_fresh(sh, staged, key, k_no_trans, latest, k_no_trans);
            sh.heads.insert_or_assign(
                key, k_fresh_flag | static_cast<std::uint32_t>(sh.fresh.size() - 1));
            return;
        }
        TransId last = found;
        for (TransId cur = found; cur != k_no_trans;
             last = cur, cur = _aut._transitions[cur].next_same_key) {
            if (_aut._transitions[cur].to == staged.to) {
                relax_existing(sh, cur, staged);
                return;
            }
        }
        make_fresh(sh, staged, key, last, UINT32_MAX, found);
        sh.heads.insert_or_assign(
            key, k_fresh_flag | static_cast<std::uint32_t>(sh.fresh.size() - 1));
    }

    void integrate_set(Shard& sh, StagedTrans& staged) {
        // Set-labelled: linear scan, mirroring the sequential slow path.
        for (const auto id : _aut._trans_from[staged.from]) {
            const Transition& existing = _aut._transitions[id];
            if (existing.to != staged.to || existing.label.is_concrete()) continue;
            if (!(existing.label == staged.label)) continue;
            relax_existing(sh, id, staged);
            return;
        }
        for (auto& fresh : sh.fresh) {
            if (fresh.from != staged.from || fresh.to != staged.to) continue;
            if (fresh.label.is_concrete() || !(fresh.label == staged.label)) continue;
            relax_fresh(fresh, staged);
            return;
        }
        make_fresh(sh, staged, 0, k_no_trans, UINT32_MAX, k_no_trans);
    }

    void integrate(unsigned t) {
        Shard& own = *_shards[t];
        for (unsigned s = 0; s < _n; ++s) {
            auto& in = _shards[s]->out[t]; // only thread t touches column t
            for (auto& staged : in) {
                if (staged.label.is_concrete())
                    integrate_concrete(own, staged);
                else
                    integrate_set(own, staged);
            }
            in.clear();
        }
    }

    void serial_assign() {
        auto base = static_cast<std::uint32_t>(_aut._transitions.size());
        for (unsigned t = 0; t < _n; ++t) {
            _bases[t] = base;
            base += static_cast<std::uint32_t>(_shards[t]->fresh.size());
        }
        _aut._transitions.resize(base);
    }

    void commit(unsigned t) {
        Shard& sh = *_shards[t];
        const std::uint32_t base = _bases[t];
        for (std::uint32_t i = 0; i < sh.fresh.size(); ++i) {
            Fresh& fresh = sh.fresh[i];
            const TransId id = base + i;
            Transition& slot = _aut._transitions[id];
            slot.from = fresh.from;
            slot.to = fresh.to;
            slot.label = std::move(fresh.label);
            slot.weight = std::move(fresh.weight);
            slot.prov = fresh.prov;
            slot.next_same_key = k_no_trans;
            slot.finalized = false;
            _aut._trans_from[slot.from].push_back(id); // owner-disjoint vectors
            if (slot.label.is_concrete()) {
                if (fresh.fresh_prev != UINT32_MAX) {
                    _aut._transitions[base + fresh.fresh_prev].next_same_key = id;
                } else {
                    if (fresh.chain_tail != k_no_trans)
                        _aut._transitions[fresh.chain_tail].next_same_key = id;
                    // Restore the head map to global-id space: the chain
                    // head is the pre-existing one, or this transition.
                    sh.heads.insert_or_assign(
                        fresh.key,
                        fresh.global_head != k_no_trans ? fresh.global_head : id);
                }
            }
            if (const auto scalar = slot.weight.as_scalar();
                scalar && *scalar > sh.max_scalar)
                sh.max_scalar = *scalar;
            ++sh.relaxations;
            sh.wl.push(slot.weight, false, id);
        }
        sh.fresh.clear();
    }

    void finish() {
        // Sync the automaton's global key map with everything the rounds
        // created: ids ascend along every chain, so the first insert per
        // key is the true head; pre-existing heads win via try_emplace.
        for (TransId id = _seeded_transitions;
             id < static_cast<TransId>(_aut._transitions.size()); ++id) {
            const Transition& trans = _aut._transitions[id];
            if (trans.label.is_concrete())
                _aut._concrete_heads.try_emplace(
                    PAutomaton::pack(trans.from, trans.label.concrete), id);
        }
        _stats.threads_used = _n;
        _stats.rounds = _rounds;
        _stats.shard_pops.resize(_n);
        std::size_t pops = 0;
        std::size_t handoffs = 0;
        std::size_t relaxations = _eps_relax;
        std::uint64_t max_scalar = _aut._max_scalar_weight;
        for (unsigned t = 0; t < _n; ++t) {
            const Shard& sh = *_shards[t];
            _stats.shard_pops[t] = sh.pops;
            pops += sh.pops;
            handoffs += sh.handoffs;
            relaxations += sh.relaxations;
            max_scalar = std::max(max_scalar, sh.max_scalar);
        }
        _stats.iterations = pops;
        _stats.handoffs = handoffs;
        _stats.relaxations = relaxations;
        _aut._max_scalar_weight = max_scalar;
        if (pops > 0) {
            std::size_t max_pops = 0;
            for (const auto p : _stats.shard_pops) max_pops = std::max(max_pops, p);
            _stats.shard_imbalance = static_cast<double>(max_pops) * static_cast<double>(_n) /
                                     static_cast<double>(pops);
            telemetry::gauge_max(telemetry::Gauge::shard_imbalance_pct_high_water,
                                 static_cast<std::uint64_t>(_stats.shard_imbalance * 100.0));
        }
        telemetry::count(telemetry::Counter::solver_parallel_pops, pops);
        telemetry::count(telemetry::Counter::solver_handoff_tuples, handoffs);
        telemetry::count(telemetry::Counter::solver_parallel_rounds, _rounds);
        telemetry::gauge_max(telemetry::Gauge::solver_threads_high_water, _n);
    }

    PAutomaton& _aut;
    const Pda& _pda;
    const SolverOptions& _options;
    SolverStats& _stats;
    util::TaskPool& _pool;
    const unsigned _n;
    util::SpinBarrier _barrier;
    std::vector<std::unique_ptr<Shard>> _shards;
    std::vector<std::uint32_t> _bases;
    std::vector<std::vector<std::pair<RuleId, TransId>>> _partials; ///< pre* only
    TransId _seeded_transitions = 0;
    bool _post = true;
    // Round state: written by thread 0 between barriers, read by all after
    // the next barrier (the barrier's release/acquire pair publishes it).
    std::uint64_t _round_key = 0;
    bool _done = false;
    std::size_t _rounds = 0;
    std::size_t _next_check = 512;
    std::size_t _eps_relax = 0;
    std::atomic<std::size_t> _round_budget{SIZE_MAX}; ///< max_iterations only
};

namespace {

constexpr std::size_t k_auto_min_states = 2048;
constexpr std::size_t k_max_solver_threads = 64;

std::size_t env_solver_threads() {
    static const std::size_t cached = [] {
        const char* env = std::getenv("AALWINES_SOLVER_THREADS");
        if (env == nullptr || *env == '\0') return std::size_t{1};
        if (std::string_view(env) == "auto") return k_solver_threads_auto;
        char* end = nullptr;
        const auto value = std::strtoull(env, &end, 10);
        if (end == env || *end != '\0' || value == 0) return std::size_t{1};
        return static_cast<std::size_t>(value);
    }();
    return cached;
}

unsigned resolve_solver_threads(const PAutomaton& aut, const SolverOptions& options,
                                bool bucket_ok) {
    if (!bucket_ok) return 1; // level rounds need scalar keys
    std::size_t requested = options.threads != 0 ? options.threads : env_solver_threads();
    if (requested == k_solver_threads_auto) {
        const std::size_t hw = std::thread::hardware_concurrency();
        // Sharding a small problem (or a single core) only adds barriers.
        if (hw <= 1 || aut.pda().state_count() < k_auto_min_states) return 1;
        requested = std::min<std::size_t>(hw, 8);
    }
    return static_cast<unsigned>(std::min(requested, k_max_solver_threads));
}

/// Pool + per-shard arenas for a parallel run, cached in the workspace when
/// one is supplied so repeated queries reuse threads and shard memory.
struct ParallelResources {
    util::TaskPool* pool = nullptr;
    std::span<util::Arena> arenas;
    std::unique_ptr<util::TaskPool> owned_pool;
    std::vector<util::Arena> owned_arenas;
};

ParallelResources parallel_resources(const SolverOptions& options, unsigned threads) {
    ParallelResources res;
    if (options.workspace != nullptr) {
        auto& ws = *options.workspace;
        if (!ws.pool || ws.pool->threads() != threads)
            ws.pool = std::make_unique<util::TaskPool>(threads);
        if (ws.shard_arenas.size() < threads) ws.shard_arenas.resize(threads);
        res.pool = ws.pool.get();
        res.arenas = std::span(ws.shard_arenas.data(), threads);
        return res;
    }
    res.owned_pool = std::make_unique<util::TaskPool>(threads);
    res.owned_arenas.resize(threads);
    res.pool = res.owned_pool.get();
    res.arenas = std::span(res.owned_arenas.data(), threads);
    return res;
}

} // namespace

SolverStats post_star(PAutomaton& aut, const SolverOptions& options) {
    AALWINES_SPAN("post_star");
    SolverStats stats;
    std::size_t eps_relaxations = 0;

    const bool bucket_ok = bucket_eligible(aut, options);
    const unsigned threads = resolve_solver_threads(aut, options, bucket_ok);
    if (threads > 1) {
        auto res = parallel_resources(options, threads);
        ParallelSaturation engine(aut, options, stats, *res.pool, res.arenas);
        engine.run_post();
        eps_relaxations = engine.eps_relaxations();
        stats.bucket_worklist = true;
    } else if (bucket_ok) {
        util::Arena local_arena;
        util::Arena& arena = options.workspace ? options.workspace->worklist : local_arena;
        arena.reset();
        BucketWorklist worklist(arena);
        post_star_loop(aut, options, stats, eps_relaxations, worklist);
        stats.bucket_worklist = true;
    } else {
        HeapWorklist worklist;
        post_star_loop(aut, options, stats, eps_relaxations, worklist);
    }

    stats.transitions = aut.transition_count();
    stats.epsilons = aut.epsilon_count();
    telemetry::count(telemetry::Counter::post_star_pops, stats.iterations);
    telemetry::count(telemetry::Counter::edge_relaxations,
                     stats.relaxations - eps_relaxations);
    telemetry::count(telemetry::Counter::epsilon_relaxations, eps_relaxations);
    telemetry::gauge_max(telemetry::Gauge::transition_high_water, stats.transitions);
    telemetry::gauge_max(telemetry::Gauge::epsilon_high_water, stats.epsilons);
    telemetry::gauge_max(telemetry::Gauge::worklist_high_water, stats.peak_queue);
    return stats;
}

SolverStats pre_star(PAutomaton& aut, const SolverOptions& options) {
    AALWINES_SPAN("pre_star");
    SolverStats stats;

    const bool bucket_ok = bucket_eligible(aut, options);
    const unsigned threads = resolve_solver_threads(aut, options, bucket_ok);
    if (threads > 1) {
        auto res = parallel_resources(options, threads);
        ParallelSaturation engine(aut, options, stats, *res.pool, res.arenas);
        engine.run_pre();
        stats.bucket_worklist = true;
    } else if (bucket_ok) {
        util::Arena local_arena;
        util::Arena& arena = options.workspace ? options.workspace->worklist : local_arena;
        arena.reset();
        BucketWorklist worklist(arena);
        pre_star_loop(aut, options, stats, worklist);
        stats.bucket_worklist = true;
    } else {
        HeapWorklist worklist;
        pre_star_loop(aut, options, stats, worklist);
    }

    stats.transitions = aut.transition_count();
    stats.epsilons = aut.epsilon_count();
    telemetry::count(telemetry::Counter::pre_star_pops, stats.iterations);
    telemetry::count(telemetry::Counter::edge_relaxations, stats.relaxations);
    telemetry::gauge_max(telemetry::Gauge::transition_high_water, stats.transitions);
    telemetry::gauge_max(telemetry::Gauge::worklist_high_water, stats.peak_queue);
    return stats;
}

std::vector<AcceptedConfig> find_accepted_n(const PAutomaton& aut,
                                            std::span<const StateId> starts,
                                            const nfa::Nfa& stack_nfa, Symbol domain,
                                            std::size_t count) {
    AALWINES_SPAN("find_accepted");
    // k-shortest accepting walks over the product automaton: a node may be
    // settled up to `count` times; every settled visit keeps a back-pointer
    // to the visit it was reached from, so each accepting visit spells its
    // own path.
    //
    // Known caveat: multi-witness enumeration keeps the plain (weight, seq)
    // discipline — equal-weight walk *order* here is insertion-order based
    // and is not covered by the canonical tie-breaking guarantee (which
    // applies to the single-witness find_accepted only).  Callers requesting
    // max_witnesses > 1 may see equal-weight witnesses permuted across
    // solver thread counts.
    struct Visit {
        Weight dist;
        std::uint64_t key = 0;            // (automaton state << 32) | nfa state
        std::uint32_t parent = UINT32_MAX; // index into `settled`
        TransId via_trans = k_no_trans;    // k_no_trans => ε-move or start
        std::uint32_t via_epsilon = UINT32_MAX;
        Symbol via_symbol = k_no_symbol;
    };
    auto key_of = [](StateId a, std::uint32_t n) {
        return (static_cast<std::uint64_t>(a) << 32) | n;
    };

    struct HeapEntry {
        Weight dist;
        std::uint64_t seq;
        Visit visit;
    };
    struct EntryCompare {
        bool operator()(const HeapEntry& a, const HeapEntry& b) const {
            const auto cmp = a.dist <=> b.dist;
            if (cmp != std::strong_ordering::equal)
                return cmp == std::strong_ordering::greater;
            return a.seq > b.seq;
        }
    };
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, EntryCompare> heap;
    std::uint64_t seq = 0;
    std::vector<Visit> settled;
    util::FlatMap64 settle_counts;
    std::vector<AcceptedConfig> results;
    std::size_t decrease_keys = 0;

    for (const auto start : starts)
        for (const auto n0 : stack_nfa.initial())
            heap.push({Weight::one(), seq++,
                       Visit{Weight::one(), key_of(start, n0), UINT32_MAX, k_no_trans,
                             UINT32_MAX, k_no_symbol}});

    while (!heap.empty() && results.size() < count) {
        const auto item = heap.top();
        heap.pop();
        const auto found = settle_counts.find(item.visit.key);
        const std::uint32_t settles = found == util::FlatMap64::k_npos ? 0 : found;
        if (settles >= count) continue;
        settle_counts.insert_or_assign(item.visit.key, settles + 1);
        const auto visit_index = static_cast<std::uint32_t>(settled.size());
        settled.push_back(item.visit);
        const auto a_state = static_cast<StateId>(item.visit.key >> 32);
        const auto n_state = static_cast<std::uint32_t>(item.visit.key & 0xFFFFFFFFu);

        if (aut.is_final(a_state) && stack_nfa.states()[n_state].accepting) {
            AcceptedConfig config;
            config.weight = item.visit.dist;
            for (std::uint32_t cursor = visit_index; cursor != UINT32_MAX;
                 cursor = settled[cursor].parent) {
                const auto& step = settled[cursor];
                if (step.parent == UINT32_MAX) {
                    config.control_state = static_cast<StateId>(step.key >> 32);
                } else if (step.via_trans == k_no_trans) {
                    config.leading_epsilon = step.via_epsilon;
                } else {
                    config.path.emplace_back(step.via_trans, step.via_symbol);
                }
            }
            std::reverse(config.path.begin(), config.path.end());
            results.push_back(std::move(config));
            // Fall through: longer configurations may read onward through
            // this accepting node, so keep extending the visit.
        }

        for (const auto tid : aut.transitions_from(a_state)) {
            const auto& trans = aut.transition(tid);
            if (!trans.finalized) continue;
            for (const auto& edge : stack_nfa.states()[n_state].edges) {
                auto inter = trans.label.intersect(edge.symbols);
                if (!inter) continue;
                const auto symbol = inter->pick(domain);
                if (!symbol) continue;
                auto next_dist = extend(item.visit.dist, trans.weight);
                ++decrease_keys;
                heap.push({next_dist, seq++,
                           Visit{std::move(next_dist), key_of(trans.to, edge.target),
                                 visit_index, tid, UINT32_MAX, *symbol}});
            }
        }
        if (aut.is_control_state(a_state)) {
            for (const auto eps_id : aut.epsilons_from(a_state)) {
                const auto& eps = aut.epsilon(eps_id);
                if (!eps.finalized) continue;
                auto next_dist = extend(item.visit.dist, eps.weight);
                ++decrease_keys;
                heap.push({next_dist, seq++,
                           Visit{std::move(next_dist), key_of(eps.to, n_state),
                                 visit_index, k_no_trans, eps_id, k_no_symbol}});
            }
        }
    }
    telemetry::count(telemetry::Counter::accept_decrease_keys, decrease_keys);
    return results;
}

namespace {

/// Scalar product-search cap: the flat node table is product-indexed, so
/// bound its footprint (nodes are 32 bytes; 2²¹ entries ≈ 64 MiB).
constexpr std::size_t k_flat_search_cap = std::size_t{1} << 21;

/// Product-graph node of the scalar fast path.  Trivially destructible and
/// all-ones initializable: dist UINT64_MAX = unreached, parent/via fields
/// UINT32_MAX = the matching "none" sentinels — so the arena-backed table is
/// initialized with one memset.  No `finalized` flag: pushes happen only on
/// strict improvement, so at most one live heap entry matches `dist`, and
/// monotone weights make relaxing a settled node impossible.
///
/// Canonical runs (PAutomaton::canonical_tiebreaks) search by the composite
/// key (dist, hops) instead of dist alone: hops is a strictly positive edge
/// increment, so every parent pointer crosses to a strictly smaller key —
/// equal-*weight* parent rewrites can never form a cycle (zero-weight product
/// cycles otherwise could), and every candidate for a node's final parent is
/// offered by a strictly-smaller-key predecessor before the node itself pops.
/// Among exact (dist, hops) ties the canonically smallest step is kept, so
/// the reconstructed path is a pure function of automaton content.
struct ScalarNode {
    std::uint64_t dist;
    std::uint32_t hops;      ///< canonical runs only; UINT32_MAX = unreached
    std::uint32_t parent;    ///< product index, UINT32_MAX = search root
    TransId via_trans;       ///< k_no_trans => ε-move or root
    std::uint32_t via_epsilon;
    Symbol via_symbol;
};
static_assert(std::is_trivially_destructible_v<ScalarNode>);

struct ScalarItem {
    std::uint64_t dist;
    std::uint64_t seq;
    std::uint32_t hops;
    std::uint32_t node;
};
struct ScalarCompare {
    bool canonical = false;
    bool operator()(const ScalarItem& a, const ScalarItem& b) const {
        if (a.dist != b.dist) return a.dist > b.dist;
        if (canonical && a.hops != b.hops) return a.hops > b.hops;
        return a.seq > b.seq;
    }
};

[[nodiscard]] std::uint64_t saturating_add(std::uint64_t a, std::uint64_t b) {
    return a > UINT64_MAX - b ? UINT64_MAX : a + b;
}

/// find_accepted over a flat, arena-backed node table: sound when every
/// automaton weight is scalar.  Mirrors the general path's push order (ε
/// first, then transitions) and (dist, seq) tie-break, so both paths settle
/// nodes — and pick witnesses — identically.  The returned weight is
/// *recomputed* by extending the actual edge weights along the found path:
/// Weight::one() and Weight::scalar(0) compare equal but serialize
/// differently, and callers round-trip weights into reports byte-for-byte.
/// (Sole divergence: a path whose scalar distance saturates to exactly
/// 2⁶⁴−1 collides with the unreached sentinel and is not found.)
std::optional<AcceptedConfig> find_accepted_scalar(const PAutomaton& aut,
                                                   std::span<const StateId> starts,
                                                   const nfa::Nfa& stack_nfa,
                                                   Symbol domain, util::Arena& arena) {
    const std::size_t n_nfa = stack_nfa.states().size();
    const std::size_t n_product = aut.state_count() * n_nfa;
    const bool canonical = aut.canonical_tiebreaks();
    auto* nodes = arena.create_array<ScalarNode>(n_product);
    std::memset(static_cast<void*>(nodes), 0xFF, n_product * sizeof(ScalarNode));

    std::priority_queue<ScalarItem, std::vector<ScalarItem>, ScalarCompare> queue{
        ScalarCompare{canonical}};
    std::uint64_t seq = 0;
    std::size_t decrease_keys = 0;

    // Content key of a product node: (canonical automaton state, NFA state).
    auto prod_key = [&](std::uint32_t index) {
        return std::pair(aut.canonical_state(static_cast<StateId>(index / n_nfa)),
                         static_cast<std::uint32_t>(index % n_nfa));
    };
    // Canonical order on the (incoming step, predecessor) candidates of a
    // node at an exact (dist, hops) tie: ε-steps first, then the edge's
    // content identity, the read symbol, and finally the predecessor's key.
    auto step_less = [&](std::uint32_t cand_parent, TransId cand_trans,
                         std::uint32_t cand_eps, Symbol cand_symbol,
                         const ScalarNode& inc) {
        const bool cand_is_eps = cand_trans == k_no_trans;
        const bool inc_is_eps = inc.via_trans == k_no_trans;
        if (cand_is_eps != inc_is_eps) return cand_is_eps;
        if (cand_is_eps) {
            if (const int c = aut.compare_eps_identity(cand_eps, inc.via_epsilon))
                return c < 0;
        } else {
            if (const int c = aut.compare_trans_identity(cand_trans, inc.via_trans))
                return c < 0;
            if (cand_symbol != inc.via_symbol) return cand_symbol < inc.via_symbol;
        }
        if (inc.parent == UINT32_MAX) return false; // a root incumbent stays
        return prod_key(cand_parent) < prod_key(inc.parent);
    };
    auto reconstruct = [&](std::uint32_t accept) {
        AcceptedConfig config;
        std::uint32_t cursor = accept;
        while (nodes[cursor].parent != UINT32_MAX) {
            const auto& info = nodes[cursor];
            if (info.via_trans == k_no_trans) {
                // ε-move: only possible as the very first step.
                config.leading_epsilon = info.via_epsilon;
            } else {
                config.path.emplace_back(info.via_trans, info.via_symbol);
            }
            cursor = info.parent;
        }
        std::reverse(config.path.begin(), config.path.end());
        config.control_state = static_cast<StateId>(cursor / n_nfa);
        Weight weight = Weight::one();
        if (config.leading_epsilon)
            weight = extend(weight, aut.epsilon(*config.leading_epsilon).weight);
        for (const auto& [tid, symbol] : config.path)
            weight = extend(weight, aut.transition(tid).weight);
        config.weight = std::move(weight);
        return config;
    };

    for (const auto start : starts) {
        for (const auto n0 : stack_nfa.initial()) {
            const auto index = static_cast<std::uint32_t>(start * n_nfa + n0);
            if (nodes[index].dist > 0) {
                nodes[index].dist = 0;
                nodes[index].hops = 0;
                queue.push({0, seq++, 0, index});
            }
        }
    }

    // Canonical runs drain the whole minimal-dist level before choosing the
    // accepting node, instead of returning at the first accepting pop.
    std::optional<std::uint32_t> accept_node;
    std::uint64_t accept_dist = 0;

    while (!queue.empty()) {
        if (accept_node && queue.top().dist > accept_dist) break;
        const auto item = queue.top();
        queue.pop();
        if (item.dist != nodes[item.node].dist ||
            (canonical && item.hops != nodes[item.node].hops))
            continue; // stale
        const auto dist = item.dist;
        const auto hops = item.hops;
        const auto a_state = static_cast<StateId>(item.node / n_nfa);
        const auto n_state = static_cast<std::uint32_t>(item.node % n_nfa);

        if (aut.is_final(a_state) && stack_nfa.states()[n_state].accepting) {
            if (!canonical) {
                telemetry::count(telemetry::Counter::accept_decrease_keys, decrease_keys);
                return reconstruct(item.node);
            }
            if (!accept_node) {
                accept_node = item.node;
                accept_dist = dist;
            } else if (prod_key(item.node) < prod_key(*accept_node)) {
                accept_node = item.node; // same dist: drained level only
            }
            // Fall through: this node may still be a parent candidate on
            // another equal-dist accepting chain (zero-weight edges).
        }

        // ε-moves (post* only; they leave control states and read nothing).
        if (aut.is_control_state(a_state)) {
            for (const auto eps_id : aut.epsilons_from(a_state)) {
                const auto& eps = aut.epsilon(eps_id);
                if (!eps.finalized) continue;
                const auto next_index =
                    static_cast<std::uint32_t>(eps.to * n_nfa + n_state);
                const auto next_dist = saturating_add(dist, *eps.weight.as_scalar());
                auto& next = nodes[next_index];
                if (next_dist < next.dist ||
                    (canonical && next_dist == next.dist && hops + 1 < next.hops)) {
                    next.dist = next_dist;
                    next.hops = hops + 1;
                    next.parent = item.node;
                    next.via_trans = k_no_trans;
                    next.via_epsilon = eps_id;
                    next.via_symbol = k_no_symbol;
                    ++decrease_keys;
                    queue.push({next_dist, seq++, hops + 1, next_index});
                } else if (canonical && next_dist == next.dist && hops + 1 == next.hops &&
                           step_less(item.node, k_no_trans, eps_id, k_no_symbol, next)) {
                    next.parent = item.node;
                    next.via_trans = k_no_trans;
                    next.via_epsilon = eps_id;
                    next.via_symbol = k_no_symbol;
                }
            }
        }

        for (const auto tid : aut.transitions_from(a_state)) {
            const auto& trans = aut.transition(tid);
            if (!trans.finalized) continue;
            const auto trans_weight = *trans.weight.as_scalar();
            for (const auto& edge : stack_nfa.states()[n_state].edges) {
                auto inter = trans.label.intersect(edge.symbols);
                if (!inter) continue;
                const auto symbol = inter->pick(domain);
                if (!symbol) continue;
                const auto next_index =
                    static_cast<std::uint32_t>(trans.to * n_nfa + edge.target);
                const auto next_dist = saturating_add(dist, trans_weight);
                auto& next = nodes[next_index];
                if (next_dist < next.dist ||
                    (canonical && next_dist == next.dist && hops + 1 < next.hops)) {
                    next.dist = next_dist;
                    next.hops = hops + 1;
                    next.parent = item.node;
                    next.via_trans = tid;
                    next.via_epsilon = UINT32_MAX;
                    next.via_symbol = *symbol;
                    ++decrease_keys;
                    queue.push({next_dist, seq++, hops + 1, next_index});
                } else if (canonical && next_dist == next.dist && hops + 1 == next.hops &&
                           step_less(item.node, tid, UINT32_MAX, *symbol, next)) {
                    next.parent = item.node;
                    next.via_trans = tid;
                    next.via_epsilon = UINT32_MAX;
                    next.via_symbol = *symbol;
                }
            }
        }
    }
    telemetry::count(telemetry::Counter::accept_decrease_keys, decrease_keys);
    if (accept_node) return reconstruct(*accept_node);
    return std::nullopt;
}

/// General-weight find_accepted: product nodes interned on demand through a
/// flat key→id table (sparse product graphs stay sparse).
std::optional<AcceptedConfig> find_accepted_general(const PAutomaton& aut,
                                                    std::span<const StateId> starts,
                                                    const nfa::Nfa& stack_nfa,
                                                    Symbol domain) {
    struct NodeInfo {
        Weight dist = Weight::infinity();
        std::uint64_t key = 0;
        std::uint32_t hops = UINT32_MAX;     // canonical runs only (see ScalarNode)
        std::uint32_t parent = UINT32_MAX;   // index into `nodes`
        TransId via_trans = k_no_trans;      // k_no_trans => via ε-transition
        std::uint32_t via_epsilon = UINT32_MAX;
        Symbol via_symbol = k_no_symbol;
        bool finalized = false;
    };
    auto key_of = [](StateId a, std::uint32_t n) {
        return (static_cast<std::uint64_t>(a) << 32) | n;
    };
    util::FlatMap64 index;
    std::vector<NodeInfo> nodes;
    auto intern = [&](std::uint64_t key) -> std::uint32_t {
        const auto next = static_cast<std::uint32_t>(nodes.size());
        const auto [id, inserted] = index.try_emplace(key, next);
        if (inserted) {
            NodeInfo node;
            node.key = key;
            nodes.push_back(std::move(node));
        }
        return id;
    };

    struct ProductItem {
        Weight weight;
        std::uint64_t seq;
        std::uint32_t hops;
        std::uint32_t node;
    };
    struct ProductCompare {
        bool canonical = false;
        bool operator()(const ProductItem& a, const ProductItem& b) const {
            const auto cmp = a.weight <=> b.weight;
            if (cmp != std::strong_ordering::equal)
                return cmp == std::strong_ordering::greater;
            if (canonical && a.hops != b.hops) return a.hops > b.hops;
            return a.seq > b.seq;
        }
    };
    const bool canonical = aut.canonical_tiebreaks();
    std::priority_queue<ProductItem, std::vector<ProductItem>, ProductCompare> queue{
        ProductCompare{canonical}};
    std::uint64_t seq = 0;
    std::size_t decrease_keys = 0;

    // See find_accepted_scalar: content keys and the canonical step order for
    // exact (dist, hops) ties; hops keep the parent graph acyclic.
    auto prod_key = [&](std::uint32_t id) {
        return std::pair(aut.canonical_state(static_cast<StateId>(nodes[id].key >> 32)),
                         static_cast<std::uint32_t>(nodes[id].key & 0xFFFFFFFFu));
    };
    auto step_less = [&](std::uint32_t cand_parent, TransId cand_trans,
                         std::uint32_t cand_eps, Symbol cand_symbol,
                         const NodeInfo& inc) {
        const bool cand_is_eps = cand_trans == k_no_trans;
        const bool inc_is_eps = inc.via_trans == k_no_trans;
        if (cand_is_eps != inc_is_eps) return cand_is_eps;
        if (cand_is_eps) {
            if (const int c = aut.compare_eps_identity(cand_eps, inc.via_epsilon))
                return c < 0;
        } else {
            if (const int c = aut.compare_trans_identity(cand_trans, inc.via_trans))
                return c < 0;
            if (cand_symbol != inc.via_symbol) return cand_symbol < inc.via_symbol;
        }
        if (inc.parent == UINT32_MAX) return false; // a root incumbent stays
        return prod_key(cand_parent) < prod_key(inc.parent);
    };
    auto reconstruct = [&](std::uint32_t accept) {
        AcceptedConfig config;
        config.weight = nodes[accept].dist;
        std::uint32_t cursor = accept;
        while (nodes[cursor].parent != UINT32_MAX) {
            const auto& info = nodes[cursor];
            if (info.via_trans == k_no_trans) {
                // ε-move: only possible as the very first step.
                config.leading_epsilon = info.via_epsilon;
            } else {
                config.path.emplace_back(info.via_trans, info.via_symbol);
            }
            cursor = info.parent;
        }
        std::reverse(config.path.begin(), config.path.end());
        config.control_state = static_cast<StateId>(nodes[cursor].key >> 32);
        return config;
    };

    for (const auto start : starts) {
        for (const auto n0 : stack_nfa.initial()) {
            const auto id = intern(key_of(start, n0));
            if (Weight::one() < nodes[id].dist) {
                nodes[id].dist = Weight::one();
                nodes[id].hops = 0;
                queue.push({Weight::one(), seq++, 0, id});
            }
        }
    }

    std::optional<std::uint32_t> accept_node;
    Weight accept_dist = Weight::infinity();

    while (!queue.empty()) {
        if (accept_node && accept_dist < queue.top().weight) break;
        const auto item = queue.top();
        queue.pop();
        auto& node = nodes[item.node];
        if (node.finalized || !(item.weight == node.dist) ||
            (canonical && item.hops != node.hops))
            continue;
        node.finalized = true;
        const Weight dist = node.dist; // copy: `nodes` may relocate below
        const auto hops = item.hops;
        const auto a_state = static_cast<StateId>(node.key >> 32);
        const auto n_state = static_cast<std::uint32_t>(node.key & 0xFFFFFFFFu);

        if (aut.is_final(a_state) && stack_nfa.states()[n_state].accepting) {
            if (!canonical) {
                telemetry::count(telemetry::Counter::accept_decrease_keys, decrease_keys);
                return reconstruct(item.node);
            }
            if (!accept_node) {
                accept_node = item.node;
                accept_dist = dist;
            } else if (prod_key(item.node) < prod_key(*accept_node)) {
                accept_node = item.node; // same dist: drained level only
            }
            // Fall through and keep draining the minimal-dist level.
        }

        // ε-moves (post* only; they leave control states and read nothing).
        if (aut.is_control_state(a_state)) {
            for (const auto eps_id : aut.epsilons_from(a_state)) {
                const auto& eps = aut.epsilon(eps_id);
                if (!eps.finalized) continue;
                const auto next_id = intern(key_of(eps.to, n_state));
                auto next_dist = extend(dist, eps.weight);
                auto& next = nodes[next_id];
                if (next.finalized) continue;
                if (next_dist < next.dist ||
                    (canonical && next_dist == next.dist && hops + 1 < next.hops)) {
                    next.dist = next_dist;
                    next.hops = hops + 1;
                    next.parent = item.node;
                    next.via_trans = k_no_trans;
                    next.via_epsilon = eps_id;
                    next.via_symbol = k_no_symbol;
                    ++decrease_keys;
                    queue.push({std::move(next_dist), seq++, hops + 1, next_id});
                } else if (canonical && next_dist == next.dist && hops + 1 == next.hops &&
                           step_less(item.node, k_no_trans, eps_id, k_no_symbol, next)) {
                    next.parent = item.node;
                    next.via_trans = k_no_trans;
                    next.via_epsilon = eps_id;
                    next.via_symbol = k_no_symbol;
                }
            }
        }

        for (const auto tid : aut.transitions_from(a_state)) {
            const auto& trans = aut.transition(tid);
            if (!trans.finalized) continue;
            for (const auto& edge : stack_nfa.states()[n_state].edges) {
                auto inter = trans.label.intersect(edge.symbols);
                if (!inter) continue;
                const auto symbol = inter->pick(domain);
                if (!symbol) continue;
                const auto next_id = intern(key_of(trans.to, edge.target));
                auto next_dist = extend(dist, trans.weight);
                auto& next = nodes[next_id];
                if (next.finalized) continue;
                if (next_dist < next.dist ||
                    (canonical && next_dist == next.dist && hops + 1 < next.hops)) {
                    next.dist = next_dist;
                    next.hops = hops + 1;
                    next.parent = item.node;
                    next.via_trans = tid;
                    next.via_epsilon = UINT32_MAX;
                    next.via_symbol = *symbol;
                    ++decrease_keys;
                    queue.push({std::move(next_dist), seq++, hops + 1, next_id});
                } else if (canonical && next_dist == next.dist && hops + 1 == next.hops &&
                           step_less(item.node, tid, UINT32_MAX, *symbol, next)) {
                    next.parent = item.node;
                    next.via_trans = tid;
                    next.via_epsilon = UINT32_MAX;
                    next.via_symbol = *symbol;
                }
            }
        }
    }
    telemetry::count(telemetry::Counter::accept_decrease_keys, decrease_keys);
    if (accept_node) return reconstruct(*accept_node);
    return std::nullopt;
}

} // namespace

std::optional<AcceptedConfig> find_accepted(const PAutomaton& aut,
                                            std::span<const StateId> starts,
                                            const nfa::Nfa& stack_nfa, Symbol domain,
                                            SolverWorkspace* workspace) {
    AALWINES_SPAN("find_accepted");
    const std::size_t n_product = aut.state_count() * stack_nfa.states().size();
    if (aut.all_scalar_weights() && n_product > 0 && n_product <= k_flat_search_cap) {
        if (workspace != nullptr) {
            workspace->search.reset();
            return find_accepted_scalar(aut, starts, stack_nfa, domain, workspace->search);
        }
        util::Arena local_arena;
        return find_accepted_scalar(aut, starts, stack_nfa, domain, local_arena);
    }
    return find_accepted_general(aut, starts, stack_nfa, domain);
}

namespace {
constexpr std::size_t k_unroll_guard = 100'000'000;

std::optional<Symbol> choose_pre_symbol(const Pda& pda, const EdgeLabel& label,
                                        const Rule& rule) {
    auto inter = label.intersect(pda.pre_set(rule.pre));
    if (!inter) return std::nullopt;
    return inter->pick(pda.alphabet_size());
}
} // namespace

std::optional<PdaWitness> unroll_post_star(const PAutomaton& aut,
                                           const AcceptedConfig& config) {
    const Pda& pda = aut.pda();
    std::deque<std::pair<TransId, Symbol>> path(config.path.begin(), config.path.end());
    std::vector<RuleId> rules_reversed;

    if (config.leading_epsilon) {
        // The accepting run started with ε(p → q): the last derivation step
        // was the pop that created it; undo it and continue normally.
        const auto& eps = aut.epsilon(*config.leading_epsilon);
        if (eps.prov.kind != Provenance::Kind::PostEps) return std::nullopt;
        const auto& rule = pda.rule(eps.prov.rule);
        const auto& prev = aut.transition(eps.prov.a);
        const auto pre_symbol = choose_pre_symbol(pda, prev.label, rule);
        if (!pre_symbol) return std::nullopt;
        path.push_front({eps.prov.a, *pre_symbol});
        rules_reversed.push_back(eps.prov.rule);
    }

    for (std::size_t guard = 0; guard < k_unroll_guard; ++guard) {
        if (path.empty()) return std::nullopt; // configurations are never empty here
        const auto [tid, symbol] = path.front();
        const auto& trans = aut.transition(tid);
        switch (trans.prov.kind) {
            case Provenance::Kind::Initial: {
                PdaWitness witness;
                witness.initial_state = trans.from;
                for (const auto& [id, s] : path) witness.initial_stack.push_back(s);
                witness.rules.assign(rules_reversed.rbegin(), rules_reversed.rend());
                telemetry::count(telemetry::Counter::witness_unroll_steps,
                                 witness.rules.size());
                return witness;
            }
            case Provenance::Kind::PostSwap: {
                const auto& rule = pda.rule(trans.prov.rule);
                const auto& prev = aut.transition(trans.prov.a);
                const auto pre_symbol = choose_pre_symbol(pda, prev.label, rule);
                if (!pre_symbol) return std::nullopt;
                path.front() = {trans.prov.a, *pre_symbol};
                rules_reversed.push_back(trans.prov.rule);
                break;
            }
            case Provenance::Kind::PostPushT1: {
                if (path.size() < 2) return std::nullopt;
                const auto [t2_id, symbol2] = path[1];
                const auto& t2 = aut.transition(t2_id);
                if (t2.prov.kind != Provenance::Kind::PostPushT2) return std::nullopt;
                const auto& rule = pda.rule(t2.prov.rule);
                const auto& prev = aut.transition(t2.prov.a);
                Symbol pre_symbol;
                if (rule.label2 == k_same_symbol) {
                    pre_symbol = symbol2; // the matched symbol stayed below the push
                } else {
                    const auto chosen = choose_pre_symbol(pda, prev.label, rule);
                    if (!chosen) return std::nullopt;
                    pre_symbol = *chosen;
                }
                path.pop_front();
                path.pop_front();
                path.push_front({t2.prov.a, pre_symbol});
                rules_reversed.push_back(t2.prov.rule);
                break;
            }
            case Provenance::Kind::PostCombine: {
                const auto& eps = aut.epsilon(trans.prov.a);
                if (eps.prov.kind != Provenance::Kind::PostEps) return std::nullopt;
                const auto& rule = pda.rule(eps.prov.rule);
                const auto& prev = aut.transition(eps.prov.a);
                const auto pre_symbol = choose_pre_symbol(pda, prev.label, rule);
                if (!pre_symbol) return std::nullopt;
                path.front() = {trans.prov.b, symbol};
                path.push_front({eps.prov.a, *pre_symbol});
                rules_reversed.push_back(eps.prov.rule);
                break;
            }
            default:
                return std::nullopt; // PushT2/Eps/pre* kinds cannot lead a config path
        }
    }
    return std::nullopt;
}

std::optional<PdaWitness> unroll_pre_star(const PAutomaton& aut,
                                          const AcceptedConfig& config) {
    const Pda& pda = aut.pda();
    if (config.leading_epsilon) return std::nullopt; // pre* automata have no ε
    PdaWitness witness;
    witness.initial_state = config.control_state;
    for (const auto& [id, symbol] : config.path) witness.initial_stack.push_back(symbol);

    std::deque<std::pair<TransId, Symbol>> path(config.path.begin(), config.path.end());
    for (std::size_t guard = 0; guard < k_unroll_guard; ++guard) {
        if (path.empty()) {
            telemetry::count(telemetry::Counter::witness_unroll_steps,
                             witness.rules.size());
            return witness; // stack fully consumed into the target set
        }
        const auto [tid, symbol] = path.front();
        const auto& trans = aut.transition(tid);
        switch (trans.prov.kind) {
            case Provenance::Kind::Initial:
                telemetry::count(telemetry::Counter::witness_unroll_steps,
                                 witness.rules.size());
                return witness; // remaining path lies inside the target automaton
            case Provenance::Kind::PrePop: {
                witness.rules.push_back(trans.prov.rule);
                path.pop_front();
                break;
            }
            case Provenance::Kind::PreSwap: {
                const auto& rule = pda.rule(trans.prov.rule);
                witness.rules.push_back(trans.prov.rule);
                path.front() = {trans.prov.a, rule.label1};
                break;
            }
            case Provenance::Kind::PrePush: {
                const auto& rule = pda.rule(trans.prov.rule);
                witness.rules.push_back(trans.prov.rule);
                const Symbol below =
                    rule.label2 == k_same_symbol ? symbol : rule.label2;
                path.pop_front();
                path.push_front({trans.prov.b, below});
                path.push_front({trans.prov.a, rule.label1});
                break;
            }
            default:
                return std::nullopt; // post* kinds cannot appear in a pre* automaton
        }
    }
    return std::nullopt;
}

std::optional<std::vector<std::pair<StateId, std::vector<Symbol>>>>
replay_witness(const Pda& pda, const PdaWitness& witness) {
    std::vector<std::pair<StateId, std::vector<Symbol>>> configs;
    StateId state = witness.initial_state;
    // Internal stack representation: top at back.
    std::vector<Symbol> stack(witness.initial_stack.rbegin(), witness.initial_stack.rend());

    auto record = [&]() {
        std::vector<Symbol> top_first(stack.rbegin(), stack.rend());
        configs.emplace_back(state, std::move(top_first));
    };
    record();

    for (const auto rule_id : witness.rules) {
        const auto& rule = pda.rule(rule_id);
        if (rule.from != state || stack.empty()) return std::nullopt;
        const Symbol top = stack.back();
        if (!pda.pre_set(rule.pre).contains(top)) return std::nullopt;
        switch (rule.op) {
            case Rule::OpKind::Pop: stack.pop_back(); break;
            case Rule::OpKind::Swap: stack.back() = rule.label1; break;
            case Rule::OpKind::Push: {
                stack.back() = rule.label2 == k_same_symbol ? top : rule.label2;
                stack.push_back(rule.label1);
                break;
            }
        }
        state = rule.to;
        record();
    }
    return configs;
}

} // namespace aalwines::pda
