#include "pda/solver.hpp"

#include <cassert>
#include <deque>
#include <queue>
#include <unordered_map>

#include "telemetry/telemetry.hpp"
#include "util/hash.hpp"

namespace aalwines::pda {

namespace {

/// Worklist entry; min-ordered by (weight, insertion sequence).  The
/// sequence tie-break makes the unweighted case behave like BFS, which
/// keeps witnesses short.
struct QueueItem {
    Weight weight;
    std::uint64_t seq = 0;
    bool is_eps = false;
    std::uint32_t id = 0;
};

struct QueueCompare {
    bool operator()(const QueueItem& a, const QueueItem& b) const {
        const auto cmp = a.weight <=> b.weight;
        if (cmp != std::strong_ordering::equal) return cmp == std::strong_ordering::greater;
        return a.seq > b.seq;
    }
};

using Queue = std::priority_queue<QueueItem, std::vector<QueueItem>, QueueCompare>;

EdgeLabel label_of_pre(const Pda& pda, const PreSpec& pre) {
    switch (pre.kind) {
        case PreSpec::Kind::Concrete: return EdgeLabel::of(pre.symbol);
        case PreSpec::Kind::Class: return EdgeLabel::of_set(pda.class_set(pre.cls));
        case PreSpec::Kind::Any: return EdgeLabel::of_set(nfa::SymbolSet::any());
    }
    return EdgeLabel::of_set(nfa::SymbolSet::none());
}

} // namespace

SolverStats post_star(PAutomaton& aut, const SolverOptions& options) {
    AALWINES_SPAN("post_star");
    const Pda& pda = aut.pda();
    SolverStats stats;
    Queue queue;
    std::uint64_t seq = 0;

    std::size_t eps_relaxations = 0;
    auto enqueue_trans = [&](TransId id) {
        ++stats.relaxations;
        queue.push({aut.transition(id).weight, seq++, false, id});
    };
    auto enqueue_eps = [&](std::uint32_t id) {
        ++stats.relaxations;
        ++eps_relaxations;
        queue.push({aut.epsilon(id).weight, seq++, true, id});
    };

    for (TransId id = 0; id < aut.transition_count(); ++id) enqueue_trans(id);

    std::size_t next_check = 512; // demand-driven acceptance checks, doubling

    while (!queue.empty()) {
        stats.peak_queue = std::max(stats.peak_queue, queue.size());
        const QueueItem item = queue.top();
        queue.pop();

        if (options.check_accepted && stats.iterations >= next_check) {
            next_check *= 2;
            const auto best = options.check_accepted();
            // Items finalize in non-decreasing weight order: once the best
            // accepted weight is <= the frontier, it is globally minimal.
            if (!best.is_infinite() && best <= item.weight) {
                stats.early_terminated = true;
                break;
            }
        }

        if (item.is_eps) {
            auto& eps = aut.epsilon(item.id);
            if (eps.finalized || !(item.weight == eps.weight)) continue; // stale
            eps.finalized = true;
            ++stats.iterations;
            // Combination: ε(x→q) ∘ (q, L, q')  ⇒  (x, L, q').
            const EpsTransition eps_copy = eps;
            const auto& outgoing = aut.transitions_from(eps_copy.to);
            for (std::size_t i = 0; i < outgoing.size(); ++i) {
                const TransId tid = outgoing[i];
                const Transition trans = aut.transition(tid); // copy (relocation below)
                if (!trans.finalized) continue;
                auto [nid, improved] = aut.add_transition(
                    eps_copy.from, trans.label, trans.to,
                    extend(eps_copy.weight, trans.weight),
                    {Provenance::Kind::PostCombine, UINT32_MAX, item.id, tid});
                if (improved) enqueue_trans(nid);
            }
        } else {
            auto& trans_ref = aut.transition(item.id);
            if (trans_ref.finalized || !(item.weight == trans_ref.weight)) continue;
            trans_ref.finalized = true;
            ++stats.iterations;
            const Transition trans = trans_ref; // copy: the vector may grow below

            if (aut.is_control_state(trans.from)) {
                auto apply = [&](RuleId rule_id, const nfa::SymbolSet& matched) {
                    const Rule& rule = pda.rule(rule_id);
                    switch (rule.op) {
                        case Rule::OpKind::Swap: {
                            auto [nid, improved] = aut.add_transition(
                                rule.to, EdgeLabel::of(rule.label1), trans.to,
                                extend(trans.weight, rule.weight),
                                {Provenance::Kind::PostSwap, rule_id, item.id, k_no_trans});
                            if (improved) enqueue_trans(nid);
                            break;
                        }
                        case Rule::OpKind::Pop: {
                            auto [nid, improved] = aut.add_epsilon(
                                rule.to, trans.to, extend(trans.weight, rule.weight),
                                {Provenance::Kind::PostEps, rule_id, item.id, k_no_trans});
                            if (improved) enqueue_eps(nid);
                            break;
                        }
                        case Rule::OpKind::Push: {
                            const StateId mid = aut.mid_state(rule.to, rule.label1);
                            auto [t1, improved1] = aut.add_transition(
                                rule.to, EdgeLabel::of(rule.label1), mid, Weight::one(),
                                {Provenance::Kind::PostPushT1, rule_id, k_no_trans,
                                 k_no_trans});
                            if (improved1) enqueue_trans(t1);
                            const EdgeLabel below =
                                rule.label2 == k_same_symbol
                                    ? EdgeLabel::of_set(matched)
                                    : EdgeLabel::of(rule.label2);
                            auto [t2, improved2] = aut.add_transition(
                                mid, below, trans.to, extend(trans.weight, rule.weight),
                                {Provenance::Kind::PostPushT2, rule_id, item.id,
                                 k_no_trans});
                            if (improved2) enqueue_trans(t2);
                            break;
                        }
                    }
                };
                if (trans.label.is_concrete())
                    pda.for_each_applicable(trans.from, trans.label.concrete, apply);
                else
                    pda.for_each_applicable(trans.from, trans.label.set, apply);
            }

            // Combination where this transition is the second component.
            for (const auto eid : aut.epsilons_into(trans.from)) {
                const EpsTransition eps = aut.epsilon(eid);
                if (!eps.finalized) continue;
                auto [nid, improved] = aut.add_transition(
                    eps.from, trans.label, trans.to, extend(eps.weight, trans.weight),
                    {Provenance::Kind::PostCombine, UINT32_MAX, eid, item.id});
                if (improved) enqueue_trans(nid);
            }
        }

        if (options.max_iterations != 0 && stats.iterations >= options.max_iterations) {
            stats.truncated = true;
            break;
        }
    }

    stats.transitions = aut.transition_count();
    stats.epsilons = aut.epsilon_count();
    telemetry::count(telemetry::Counter::post_star_pops, stats.iterations);
    telemetry::count(telemetry::Counter::edge_relaxations,
                     stats.relaxations - eps_relaxations);
    telemetry::count(telemetry::Counter::epsilon_relaxations, eps_relaxations);
    telemetry::gauge_max(telemetry::Gauge::transition_high_water, stats.transitions);
    telemetry::gauge_max(telemetry::Gauge::epsilon_high_water, stats.epsilons);
    telemetry::gauge_max(telemetry::Gauge::worklist_high_water, stats.peak_queue);
    return stats;
}

SolverStats pre_star(PAutomaton& aut, const SolverOptions& options) {
    AALWINES_SPAN("pre_star");
    const Pda& pda = aut.pda();
    SolverStats stats;
    Queue queue;
    std::uint64_t seq = 0;

    auto enqueue_trans = [&](TransId id) {
        ++stats.relaxations;
        queue.push({aut.transition(id).weight, seq++, false, id});
    };

    // Rule indexes by target state.
    std::vector<std::vector<RuleId>> swaps_by_target(pda.state_count());
    std::vector<std::vector<RuleId>> pushes_by_target(pda.state_count());
    for (RuleId id = 0; id < pda.rule_count(); ++id) {
        const auto& rule = pda.rule(id);
        switch (rule.op) {
            case Rule::OpKind::Swap: swaps_by_target[rule.to].push_back(id); break;
            case Rule::OpKind::Push: pushes_by_target[rule.to].push_back(id); break;
            case Rule::OpKind::Pop: break; // handled at initialization
        }
    }
    // Push rules whose first written symbol matched a transition into state
    // `m` wait there for a matching second transition out of `m`.
    std::vector<std::vector<std::pair<RuleId, TransId>>> partials(aut.state_count());

    for (TransId id = 0; id < aut.transition_count(); ++id) enqueue_trans(id);
    for (RuleId id = 0; id < pda.rule_count(); ++id) {
        const auto& rule = pda.rule(id);
        if (rule.op != Rule::OpKind::Pop) continue;
        auto [nid, improved] =
            aut.add_transition(rule.from, label_of_pre(pda, rule.pre), rule.to, rule.weight,
                               {Provenance::Kind::PrePop, id, k_no_trans, k_no_trans});
        if (improved) enqueue_trans(nid);
    }

    auto try_complete = [&](RuleId rule_id, TransId t1_id, TransId t2_id) {
        const auto& rule = pda.rule(rule_id);
        const Transition t1 = aut.transition(t1_id);
        const Transition t2 = aut.transition(t2_id);
        EdgeLabel new_label;
        if (rule.label2 == k_same_symbol) {
            auto inter = t2.label.intersect(pda.pre_set(rule.pre));
            if (!inter) return;
            new_label = std::move(*inter);
        } else {
            if (!t2.label.contains(rule.label2)) return;
            new_label = label_of_pre(pda, rule.pre);
        }
        auto [nid, improved] = aut.add_transition(
            rule.from, std::move(new_label), t2.to,
            extend(rule.weight, extend(t1.weight, t2.weight)),
            {Provenance::Kind::PrePush, rule_id, t1_id, t2_id});
        if (improved) enqueue_trans(nid);
    };

    while (!queue.empty()) {
        stats.peak_queue = std::max(stats.peak_queue, queue.size());
        const QueueItem item = queue.top();
        queue.pop();
        auto& trans_ref = aut.transition(item.id);
        if (trans_ref.finalized || !(item.weight == trans_ref.weight)) continue;
        trans_ref.finalized = true;
        ++stats.iterations;
        const Transition trans = trans_ref; // copy

        // Rules can only target PDA control states; transitions leaving
        // automaton-only helper states never match a rule's right-hand side.
        if (trans.from < pda.state_count()) {
            // Swap rules p γ → q γ' with q == trans.from and γ' in the label.
            for (const auto rule_id : swaps_by_target[trans.from]) {
                const auto& rule = pda.rule(rule_id);
                if (!trans.label.contains(rule.label1)) continue;
                auto [nid, improved] = aut.add_transition(
                    rule.from, label_of_pre(pda, rule.pre), trans.to,
                    extend(rule.weight, trans.weight),
                    {Provenance::Kind::PreSwap, rule_id, item.id, k_no_trans});
                if (improved) enqueue_trans(nid);
            }
            // Push rules where this transition reads the first written symbol.
            for (const auto rule_id : pushes_by_target[trans.from]) {
                const auto& rule = pda.rule(rule_id);
                if (!trans.label.contains(rule.label1)) continue;
                partials[trans.to].push_back({rule_id, item.id});
                const auto& outgoing = aut.transitions_from(trans.to);
                for (std::size_t i = 0; i < outgoing.size(); ++i) {
                    if (aut.transition(outgoing[i]).finalized)
                        try_complete(rule_id, item.id, outgoing[i]);
                }
            }
        }
        // This transition as the second written symbol of pending pushes.
        const auto pending = partials[trans.from]; // copy: may grow during iteration
        for (const auto& [rule_id, t1_id] : pending) try_complete(rule_id, t1_id, item.id);

        if (options.max_iterations != 0 && stats.iterations >= options.max_iterations) {
            stats.truncated = true;
            break;
        }
    }

    stats.transitions = aut.transition_count();
    stats.epsilons = aut.epsilon_count();
    telemetry::count(telemetry::Counter::pre_star_pops, stats.iterations);
    telemetry::count(telemetry::Counter::edge_relaxations, stats.relaxations);
    telemetry::gauge_max(telemetry::Gauge::transition_high_water, stats.transitions);
    telemetry::gauge_max(telemetry::Gauge::worklist_high_water, stats.peak_queue);
    return stats;
}

std::vector<AcceptedConfig> find_accepted_n(const PAutomaton& aut,
                                            std::span<const StateId> starts,
                                            const nfa::Nfa& stack_nfa, Symbol domain,
                                            std::size_t count) {
    AALWINES_SPAN("find_accepted");
    // k-shortest accepting walks over the product automaton: a node may be
    // settled up to `count` times; every settled visit keeps a back-pointer
    // to the visit it was reached from, so each accepting visit spells its
    // own path.
    struct Visit {
        Weight dist;
        std::uint64_t key = 0;            // (automaton state << 32) | nfa state
        std::uint32_t parent = UINT32_MAX; // index into `settled`
        TransId via_trans = k_no_trans;    // k_no_trans => ε-move or start
        std::uint32_t via_epsilon = UINT32_MAX;
        Symbol via_symbol = k_no_symbol;
    };
    auto key_of = [](StateId a, std::uint32_t n) {
        return (static_cast<std::uint64_t>(a) << 32) | n;
    };

    struct HeapItem {
        Weight dist;
        std::uint64_t seq;
        Visit visit;
    };
    struct HeapCompare {
        bool operator()(const HeapItem& a, const HeapItem& b) const {
            const auto cmp = a.dist <=> b.dist;
            if (cmp != std::strong_ordering::equal)
                return cmp == std::strong_ordering::greater;
            return a.seq > b.seq;
        }
    };
    std::priority_queue<HeapItem, std::vector<HeapItem>, HeapCompare> heap;
    std::uint64_t seq = 0;
    std::vector<Visit> settled;
    std::unordered_map<std::uint64_t, std::size_t> settle_counts;
    std::vector<AcceptedConfig> results;
    std::size_t decrease_keys = 0;

    for (const auto start : starts)
        for (const auto n0 : stack_nfa.initial())
            heap.push({Weight::one(), seq++,
                       Visit{Weight::one(), key_of(start, n0), UINT32_MAX, k_no_trans,
                             UINT32_MAX, k_no_symbol}});

    while (!heap.empty() && results.size() < count) {
        const auto item = heap.top();
        heap.pop();
        auto& settles = settle_counts[item.visit.key];
        if (settles >= count) continue;
        ++settles;
        const auto visit_index = static_cast<std::uint32_t>(settled.size());
        settled.push_back(item.visit);
        const auto a_state = static_cast<StateId>(item.visit.key >> 32);
        const auto n_state = static_cast<std::uint32_t>(item.visit.key & 0xFFFFFFFFu);

        if (aut.is_final(a_state) && stack_nfa.states()[n_state].accepting) {
            AcceptedConfig config;
            config.weight = item.visit.dist;
            for (std::uint32_t cursor = visit_index; cursor != UINT32_MAX;
                 cursor = settled[cursor].parent) {
                const auto& step = settled[cursor];
                if (step.parent == UINT32_MAX) {
                    config.control_state = static_cast<StateId>(step.key >> 32);
                } else if (step.via_trans == k_no_trans) {
                    config.leading_epsilon = step.via_epsilon;
                } else {
                    config.path.emplace_back(step.via_trans, step.via_symbol);
                }
            }
            std::reverse(config.path.begin(), config.path.end());
            results.push_back(std::move(config));
            // Fall through: longer configurations may read onward through
            // this accepting node, so keep extending the visit.
        }

        for (const auto tid : aut.transitions_from(a_state)) {
            const auto& trans = aut.transition(tid);
            if (!trans.finalized) continue;
            for (const auto& edge : stack_nfa.states()[n_state].edges) {
                auto inter = trans.label.intersect(edge.symbols);
                if (!inter) continue;
                const auto symbol = inter->pick(domain);
                if (!symbol) continue;
                auto next_dist = extend(item.visit.dist, trans.weight);
                ++decrease_keys;
                heap.push({next_dist, seq++,
                           Visit{std::move(next_dist), key_of(trans.to, edge.target),
                                 visit_index, tid, UINT32_MAX, *symbol}});
            }
        }
        if (aut.is_control_state(a_state)) {
            for (const auto eps_id : aut.epsilons_from(a_state)) {
                const auto& eps = aut.epsilon(eps_id);
                if (!eps.finalized) continue;
                auto next_dist = extend(item.visit.dist, eps.weight);
                ++decrease_keys;
                heap.push({next_dist, seq++,
                           Visit{std::move(next_dist), key_of(eps.to, n_state),
                                 visit_index, k_no_trans, eps_id, k_no_symbol}});
            }
        }
    }
    telemetry::count(telemetry::Counter::accept_decrease_keys, decrease_keys);
    return results;
}

std::optional<AcceptedConfig> find_accepted(const PAutomaton& aut,
                                            std::span<const StateId> starts,
                                            const nfa::Nfa& stack_nfa, Symbol domain) {
    AALWINES_SPAN("find_accepted");
    // Dijkstra over the product of the P-automaton with the stack NFA.
    struct NodeInfo {
        Weight dist = Weight::infinity();
        bool finalized = false;
        std::uint64_t parent = UINT64_MAX;
        TransId via_trans = k_no_trans;      // k_no_trans => via ε-transition
        std::uint32_t via_epsilon = UINT32_MAX;
        Symbol via_symbol = k_no_symbol;
    };
    auto key_of = [](StateId a, std::uint32_t n) {
        return (static_cast<std::uint64_t>(a) << 32) | n;
    };
    std::unordered_map<std::uint64_t, NodeInfo> nodes;

    struct ProductItem {
        Weight weight;
        std::uint64_t seq;
        std::uint64_t key;
    };
    struct ProductCompare {
        bool operator()(const ProductItem& a, const ProductItem& b) const {
            const auto cmp = a.weight <=> b.weight;
            if (cmp != std::strong_ordering::equal)
                return cmp == std::strong_ordering::greater;
            return a.seq > b.seq;
        }
    };
    std::priority_queue<ProductItem, std::vector<ProductItem>, ProductCompare> queue;
    std::uint64_t seq = 0;
    std::size_t decrease_keys = 0;

    for (const auto start : starts) {
        for (const auto n0 : stack_nfa.initial()) {
            const auto key = key_of(start, n0);
            auto& node = nodes[key];
            if (Weight::one() < node.dist) {
                node.dist = Weight::one();
                queue.push({Weight::one(), seq++, key});
            }
        }
    }

    while (!queue.empty()) {
        const auto item = queue.top();
        queue.pop();
        auto& node = nodes[item.key];
        if (node.finalized || !(item.weight == node.dist)) continue;
        node.finalized = true;
        const Weight dist = node.dist; // copy: `nodes` may rehash below
        const auto a_state = static_cast<StateId>(item.key >> 32);
        const auto n_state = static_cast<std::uint32_t>(item.key & 0xFFFFFFFFu);

        if (aut.is_final(a_state) && stack_nfa.states()[n_state].accepting) {
            // Reconstruct the accepting path.
            AcceptedConfig config;
            config.weight = dist;
            std::uint64_t cursor = item.key;
            while (nodes.at(cursor).parent != UINT64_MAX) {
                const auto& info = nodes.at(cursor);
                if (info.via_trans == k_no_trans) {
                    // ε-move: only possible as the very first step.
                    config.leading_epsilon = info.via_epsilon;
                } else {
                    config.path.emplace_back(info.via_trans, info.via_symbol);
                }
                cursor = info.parent;
            }
            std::reverse(config.path.begin(), config.path.end());
            config.control_state = static_cast<StateId>(cursor >> 32);
            telemetry::count(telemetry::Counter::accept_decrease_keys, decrease_keys);
            return config;
        }

        // ε-moves (post* only; they leave control states and read nothing).
        if (aut.is_control_state(a_state)) {
            for (const auto eps_id : aut.epsilons_from(a_state)) {
                const auto& eps = aut.epsilon(eps_id);
                if (!eps.finalized) continue;
                const auto next_key = key_of(eps.to, n_state);
                auto next_dist = extend(dist, eps.weight);
                auto& next = nodes[next_key];
                if (next_dist < next.dist && !next.finalized) {
                    next.dist = next_dist;
                    next.parent = item.key;
                    next.via_trans = k_no_trans;
                    next.via_epsilon = eps_id;
                    next.via_symbol = k_no_symbol;
                    ++decrease_keys;
                    queue.push({std::move(next_dist), seq++, next_key});
                }
            }
        }

        for (const auto tid : aut.transitions_from(a_state)) {
            const auto& trans = aut.transition(tid);
            if (!trans.finalized) continue;
            for (const auto& edge : stack_nfa.states()[n_state].edges) {
                auto inter = trans.label.intersect(edge.symbols);
                if (!inter) continue;
                const auto symbol = inter->pick(domain);
                if (!symbol) continue;
                const auto next_key = key_of(trans.to, edge.target);
                auto next_dist = extend(dist, trans.weight);
                auto& next = nodes[next_key];
                if (next_dist < next.dist && !next.finalized) {
                    next.dist = next_dist;
                    next.parent = item.key;
                    next.via_trans = tid;
                    next.via_symbol = *symbol;
                    ++decrease_keys;
                    queue.push({std::move(next_dist), seq++, next_key});
                }
            }
        }
    }
    telemetry::count(telemetry::Counter::accept_decrease_keys, decrease_keys);
    return std::nullopt;
}

namespace {
constexpr std::size_t k_unroll_guard = 100'000'000;

std::optional<Symbol> choose_pre_symbol(const Pda& pda, const EdgeLabel& label,
                                        const Rule& rule) {
    auto inter = label.intersect(pda.pre_set(rule.pre));
    if (!inter) return std::nullopt;
    return inter->pick(pda.alphabet_size());
}
} // namespace

std::optional<PdaWitness> unroll_post_star(const PAutomaton& aut,
                                           const AcceptedConfig& config) {
    const Pda& pda = aut.pda();
    std::deque<std::pair<TransId, Symbol>> path(config.path.begin(), config.path.end());
    std::vector<RuleId> rules_reversed;

    if (config.leading_epsilon) {
        // The accepting run started with ε(p → q): the last derivation step
        // was the pop that created it; undo it and continue normally.
        const auto& eps = aut.epsilon(*config.leading_epsilon);
        if (eps.prov.kind != Provenance::Kind::PostEps) return std::nullopt;
        const auto& rule = pda.rule(eps.prov.rule);
        const auto& prev = aut.transition(eps.prov.a);
        const auto pre_symbol = choose_pre_symbol(pda, prev.label, rule);
        if (!pre_symbol) return std::nullopt;
        path.push_front({eps.prov.a, *pre_symbol});
        rules_reversed.push_back(eps.prov.rule);
    }

    for (std::size_t guard = 0; guard < k_unroll_guard; ++guard) {
        if (path.empty()) return std::nullopt; // configurations are never empty here
        const auto [tid, symbol] = path.front();
        const auto& trans = aut.transition(tid);
        switch (trans.prov.kind) {
            case Provenance::Kind::Initial: {
                PdaWitness witness;
                witness.initial_state = trans.from;
                for (const auto& [id, s] : path) witness.initial_stack.push_back(s);
                witness.rules.assign(rules_reversed.rbegin(), rules_reversed.rend());
                telemetry::count(telemetry::Counter::witness_unroll_steps,
                                 witness.rules.size());
                return witness;
            }
            case Provenance::Kind::PostSwap: {
                const auto& rule = pda.rule(trans.prov.rule);
                const auto& prev = aut.transition(trans.prov.a);
                const auto pre_symbol = choose_pre_symbol(pda, prev.label, rule);
                if (!pre_symbol) return std::nullopt;
                path.front() = {trans.prov.a, *pre_symbol};
                rules_reversed.push_back(trans.prov.rule);
                break;
            }
            case Provenance::Kind::PostPushT1: {
                if (path.size() < 2) return std::nullopt;
                const auto [t2_id, symbol2] = path[1];
                const auto& t2 = aut.transition(t2_id);
                if (t2.prov.kind != Provenance::Kind::PostPushT2) return std::nullopt;
                const auto& rule = pda.rule(t2.prov.rule);
                const auto& prev = aut.transition(t2.prov.a);
                Symbol pre_symbol;
                if (rule.label2 == k_same_symbol) {
                    pre_symbol = symbol2; // the matched symbol stayed below the push
                } else {
                    const auto chosen = choose_pre_symbol(pda, prev.label, rule);
                    if (!chosen) return std::nullopt;
                    pre_symbol = *chosen;
                }
                path.pop_front();
                path.pop_front();
                path.push_front({t2.prov.a, pre_symbol});
                rules_reversed.push_back(t2.prov.rule);
                break;
            }
            case Provenance::Kind::PostCombine: {
                const auto& eps = aut.epsilon(trans.prov.a);
                if (eps.prov.kind != Provenance::Kind::PostEps) return std::nullopt;
                const auto& rule = pda.rule(eps.prov.rule);
                const auto& prev = aut.transition(eps.prov.a);
                const auto pre_symbol = choose_pre_symbol(pda, prev.label, rule);
                if (!pre_symbol) return std::nullopt;
                path.front() = {trans.prov.b, symbol};
                path.push_front({eps.prov.a, *pre_symbol});
                rules_reversed.push_back(eps.prov.rule);
                break;
            }
            default:
                return std::nullopt; // PushT2/Eps/pre* kinds cannot lead a config path
        }
    }
    return std::nullopt;
}

std::optional<PdaWitness> unroll_pre_star(const PAutomaton& aut,
                                          const AcceptedConfig& config) {
    const Pda& pda = aut.pda();
    if (config.leading_epsilon) return std::nullopt; // pre* automata have no ε
    PdaWitness witness;
    witness.initial_state = config.control_state;
    for (const auto& [id, symbol] : config.path) witness.initial_stack.push_back(symbol);

    std::deque<std::pair<TransId, Symbol>> path(config.path.begin(), config.path.end());
    for (std::size_t guard = 0; guard < k_unroll_guard; ++guard) {
        if (path.empty()) {
            telemetry::count(telemetry::Counter::witness_unroll_steps,
                             witness.rules.size());
            return witness; // stack fully consumed into the target set
        }
        const auto [tid, symbol] = path.front();
        const auto& trans = aut.transition(tid);
        switch (trans.prov.kind) {
            case Provenance::Kind::Initial:
                telemetry::count(telemetry::Counter::witness_unroll_steps,
                                 witness.rules.size());
                return witness; // remaining path lies inside the target automaton
            case Provenance::Kind::PrePop: {
                witness.rules.push_back(trans.prov.rule);
                path.pop_front();
                break;
            }
            case Provenance::Kind::PreSwap: {
                const auto& rule = pda.rule(trans.prov.rule);
                witness.rules.push_back(trans.prov.rule);
                path.front() = {trans.prov.a, rule.label1};
                break;
            }
            case Provenance::Kind::PrePush: {
                const auto& rule = pda.rule(trans.prov.rule);
                witness.rules.push_back(trans.prov.rule);
                const Symbol below =
                    rule.label2 == k_same_symbol ? symbol : rule.label2;
                path.pop_front();
                path.push_front({trans.prov.b, below});
                path.push_front({trans.prov.a, rule.label1});
                break;
            }
            default:
                return std::nullopt; // post* kinds cannot appear in a pre* automaton
        }
    }
    return std::nullopt;
}

std::optional<std::vector<std::pair<StateId, std::vector<Symbol>>>>
replay_witness(const Pda& pda, const PdaWitness& witness) {
    std::vector<std::pair<StateId, std::vector<Symbol>>> configs;
    StateId state = witness.initial_state;
    // Internal stack representation: top at back.
    std::vector<Symbol> stack(witness.initial_stack.rbegin(), witness.initial_stack.rend());

    auto record = [&]() {
        std::vector<Symbol> top_first(stack.rbegin(), stack.rend());
        configs.emplace_back(state, std::move(top_first));
    };
    record();

    for (const auto rule_id : witness.rules) {
        const auto& rule = pda.rule(rule_id);
        if (rule.from != state || stack.empty()) return std::nullopt;
        const Symbol top = stack.back();
        if (!pda.pre_set(rule.pre).contains(top)) return std::nullopt;
        switch (rule.op) {
            case Rule::OpKind::Pop: stack.pop_back(); break;
            case Rule::OpKind::Swap: stack.back() = rule.label1; break;
            case Rule::OpKind::Push: {
                stack.back() = rule.label2 == k_same_symbol ? top : rule.label2;
                stack.push_back(rule.label1);
                break;
            }
        }
        state = rule.to;
        record();
    }
    return configs;
}

} // namespace aalwines::pda
