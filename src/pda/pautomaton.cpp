#include "pda/pautomaton.hpp"

#include "util/check.hpp"

namespace aalwines::pda {

PAutomaton::PAutomaton(const Pda& pda) : _pda(&pda), _control_count(pda.state_count()) {
    _final.resize(_control_count, false);
    _trans_from.resize(_control_count);
    _eps_by_target.resize(_control_count);
    _eps_from.resize(_control_count);
}

StateId PAutomaton::add_state() {
    _final.push_back(false);
    _trans_from.emplace_back();
    _eps_by_target.emplace_back();
    _eps_from.emplace_back();
    return static_cast<StateId>(_trans_from.size() - 1);
}

void PAutomaton::set_final(StateId state, bool final) {
    AALWINES_ASSERT(state < _final.size(), "set_final on an unknown state");
    _final[state] = final;
}

std::pair<TransId, bool> PAutomaton::add_transition(StateId from, EdgeLabel label,
                                                    StateId to, Weight weight,
                                                    Provenance prov) {
    AALWINES_ASSERT(from < _trans_from.size() && to < _trans_from.size(),
                    "transition endpoint is not an automaton state");
    if (label.is_concrete()) {
        note_weight(weight);
        const std::uint64_t key = pack(from, label.concrete);
        const TransId id = static_cast<TransId>(_transitions.size());
        const auto [head, inserted] = _concrete_heads.try_emplace(key, id);
        if (!inserted) {
            // Walk the (short) chain of transitions sharing (from, symbol).
            TransId last = head;
            for (TransId cur = head; cur != k_no_trans;
                 last = cur, cur = _transitions[cur].next_same_key) {
                if (_transitions[cur].to != to) continue;
                auto& existing = _transitions[cur];
                if (weight < existing.weight) {
                    // Monotone (Dijkstra) processing never improves a finalized
                    // transition; a relaxation can only hit pending ones.
                    AALWINES_ASSERT(!existing.finalized,
                                    "relaxation of a finalized transition");
                    existing.weight = std::move(weight);
                    existing.prov = prov;
                    return {cur, true};
                }
                return {cur, false};
            }
            _transitions[last].next_same_key = id;
        }
        _transitions.push_back({from, to, label, std::move(weight), prov, k_no_trans, false});
        _trans_from[from].push_back(id);
        return {id, true};
    }
    // Set-labelled: linear scan over the (few) set edges out of `from`.
    for (const auto id : _trans_from[from]) {
        auto& existing = _transitions[id];
        if (existing.to != to || existing.label.is_concrete()) continue;
        if (!(existing.label == label)) continue;
        if (weight < existing.weight) {
            AALWINES_ASSERT(!existing.finalized, "relaxation of a finalized transition");
            existing.weight = std::move(weight);
            existing.prov = prov;
            return {id, true};
        }
        return {id, false};
    }
    note_weight(weight);
    const TransId id = static_cast<TransId>(_transitions.size());
    _transitions.push_back({from, to, std::move(label), std::move(weight), prov, k_no_trans, false});
    _trans_from[from].push_back(id);
    return {id, true};
}

std::pair<std::uint32_t, bool> PAutomaton::add_epsilon(StateId from, StateId to,
                                                       Weight weight, Provenance prov) {
    const auto id = static_cast<std::uint32_t>(_epsilons.size());
    const auto [existing_id, inserted] = _eps_index.try_emplace(pack(from, to), id);
    if (!inserted) {
        auto& existing = _epsilons[existing_id];
        if (weight < existing.weight) {
            AALWINES_ASSERT(!existing.finalized, "relaxation of a finalized epsilon");
            existing.weight = std::move(weight);
            existing.prov = prov;
            return {existing_id, true};
        }
        return {existing_id, false};
    }
    note_weight(weight);
    _epsilons.push_back({from, to, std::move(weight), prov, false});
    _eps_by_target[to].push_back(id);
    _eps_from[from].push_back(id);
    return {id, true};
}

StateId PAutomaton::mid_state(StateId to, Symbol top) {
    if (const auto found = _mid_states.find(pack(to, top)); found != util::FlatMap64::k_npos)
        return found;
    const auto state = add_state();
    _mid_states.try_emplace(pack(to, top), state);
    return state;
}

} // namespace aalwines::pda
