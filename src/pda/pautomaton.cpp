#include "pda/pautomaton.hpp"

#include "util/check.hpp"

namespace aalwines::pda {

PAutomaton::PAutomaton(const Pda& pda) : _pda(&pda), _control_count(pda.state_count()) {
    _final.resize(_control_count, false);
    _trans_from.resize(_control_count);
    _eps_by_target.resize(_control_count);
    _eps_from.resize(_control_count);
}

StateId PAutomaton::add_state() {
    _final.push_back(false);
    _trans_from.emplace_back();
    _eps_by_target.emplace_back();
    _eps_from.emplace_back();
    return static_cast<StateId>(_trans_from.size() - 1);
}

void PAutomaton::set_final(StateId state, bool final) {
    AALWINES_ASSERT(state < _final.size(), "set_final on an unknown state");
    _final[state] = final;
}

std::pair<TransId, bool> PAutomaton::add_transition(StateId from, EdgeLabel label,
                                                    StateId to, Weight weight,
                                                    Provenance prov) {
    AALWINES_ASSERT(from < _trans_from.size() && to < _trans_from.size(),
                    "transition endpoint is not an automaton state");
    if (label.is_concrete()) {
        const ConcreteKey key{from, label.concrete, to};
        if (auto it = _concrete_index.find(key); it != _concrete_index.end()) {
            auto& existing = _transitions[it->second];
            if (weight < existing.weight) {
                // Monotone (Dijkstra) processing never improves a finalized
                // transition; a relaxation can only hit pending ones.
                AALWINES_ASSERT(!existing.finalized, "relaxation of a finalized transition");
                existing.weight = std::move(weight);
                existing.prov = prov;
                return {it->second, true};
            }
            return {it->second, false};
        }
        const TransId id = static_cast<TransId>(_transitions.size());
        _transitions.push_back({from, to, label, std::move(weight), prov, false});
        _trans_from[from].push_back(id);
        _concrete_index.emplace(key, id);
        return {id, true};
    }
    // Set-labelled: linear scan over the (few) set edges out of `from`.
    for (const auto id : _trans_from[from]) {
        auto& existing = _transitions[id];
        if (existing.to != to || existing.label.is_concrete()) continue;
        if (!(existing.label == label)) continue;
        if (weight < existing.weight) {
            AALWINES_ASSERT(!existing.finalized, "relaxation of a finalized transition");
            existing.weight = std::move(weight);
            existing.prov = prov;
            return {id, true};
        }
        return {id, false};
    }
    const TransId id = static_cast<TransId>(_transitions.size());
    _transitions.push_back({from, to, std::move(label), std::move(weight), prov, false});
    _trans_from[from].push_back(id);
    return {id, true};
}

std::pair<std::uint32_t, bool> PAutomaton::add_epsilon(StateId from, StateId to,
                                                       Weight weight, Provenance prov) {
    const std::uint64_t key = (static_cast<std::uint64_t>(from) << 32) | to;
    if (auto it = _eps_index.find(key); it != _eps_index.end()) {
        auto& existing = _epsilons[it->second];
        if (weight < existing.weight) {
            AALWINES_ASSERT(!existing.finalized, "relaxation of a finalized epsilon");
            existing.weight = std::move(weight);
            existing.prov = prov;
            return {it->second, true};
        }
        return {it->second, false};
    }
    const auto id = static_cast<std::uint32_t>(_epsilons.size());
    _epsilons.push_back({from, to, std::move(weight), prov, false});
    _eps_by_target[to].push_back(id);
    _eps_from[from].push_back(id);
    _eps_index.emplace(key, id);
    return {id, true};
}

StateId PAutomaton::mid_state(StateId to, Symbol top) {
    const std::uint64_t key = (static_cast<std::uint64_t>(to) << 32) | top;
    if (auto it = _mid_states.find(key); it != _mid_states.end()) return it->second;
    const auto state = add_state();
    _mid_states.emplace(key, state);
    return state;
}

} // namespace aalwines::pda
