#include "pda/pautomaton.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace aalwines::pda {

int canonical_compare(const EdgeLabel& a, const EdgeLabel& b) {
    if (a.is_concrete() != b.is_concrete()) return a.is_concrete() ? -1 : 1;
    if (a.is_concrete()) {
        if (a.concrete != b.concrete) return a.concrete < b.concrete ? -1 : 1;
        return 0;
    }
    if (a.set.mode() != b.set.mode())
        return static_cast<int>(a.set.mode()) < static_cast<int>(b.set.mode()) ? -1 : 1;
    const auto& as = a.set.symbols();
    const auto& bs = b.set.symbols();
    const std::size_t n = std::min(as.size(), bs.size());
    for (std::size_t i = 0; i < n; ++i)
        if (as[i] != bs[i]) return as[i] < bs[i] ? -1 : 1;
    if (as.size() != bs.size()) return as.size() < bs.size() ? -1 : 1;
    return 0;
}

namespace {
[[nodiscard]] int cmp_u64(std::uint64_t a, std::uint64_t b) {
    return a == b ? 0 : (a < b ? -1 : 1);
}
} // namespace

PAutomaton::PAutomaton(const Pda& pda) : _pda(&pda), _control_count(pda.state_count()) {
    _final.resize(_control_count, false);
    _trans_from.resize(_control_count);
    _eps_by_target.resize(_control_count);
    _eps_from.resize(_control_count);
    _canonical_key.resize(_control_count);
    for (StateId s = 0; s < _control_count; ++s) _canonical_key[s] = s;
}

StateId PAutomaton::add_state() {
    _final.push_back(false);
    _trans_from.emplace_back();
    _eps_by_target.emplace_back();
    _eps_from.emplace_back();
    const auto id = static_cast<StateId>(_trans_from.size() - 1);
    // Pre-saturation states (control mirrors, NFA copies) are created in a
    // deterministic order, so their id doubles as the canonical key;
    // mid_state() overrides this for saturation-created states.
    _canonical_key.push_back(id);
    return id;
}

void PAutomaton::set_final(StateId state, bool final) {
    AALWINES_ASSERT(state < _final.size(), "set_final on an unknown state");
    _final[state] = final;
}

int PAutomaton::compare_trans_identity(std::uint32_t a, std::uint32_t b) const {
    if (a == b) return 0;
    if (a == k_no_trans || b == k_no_trans) return a == k_no_trans ? -1 : 1;
    const Transition& ta = _transitions[a];
    const Transition& tb = _transitions[b];
    if (const int c = cmp_u64(canonical_state(ta.from), canonical_state(tb.from))) return c;
    if (const int c = cmp_u64(canonical_state(ta.to), canonical_state(tb.to))) return c;
    return canonical_compare(ta.label, tb.label);
}

int PAutomaton::compare_eps_identity(std::uint32_t a, std::uint32_t b) const {
    if (a == b) return 0;
    if (a == UINT32_MAX || b == UINT32_MAX) return a == UINT32_MAX ? -1 : 1;
    const EpsTransition& ea = _epsilons[a];
    const EpsTransition& eb = _epsilons[b];
    if (const int c = cmp_u64(canonical_state(ea.from), canonical_state(eb.from))) return c;
    return cmp_u64(canonical_state(ea.to), canonical_state(eb.to));
}

int PAutomaton::compare_provenance(const Provenance& a, const Provenance& b) const {
    if (a.kind != b.kind)
        return static_cast<int>(a.kind) < static_cast<int>(b.kind) ? -1 : 1;
    if (a.rule != b.rule) {
        if (a.rule == UINT32_MAX || b.rule == UINT32_MAX)
            return a.rule == UINT32_MAX ? -1 : 1;
        if (const int c =
                cmp_u64(_pda->rule_canonical_key(a.rule), _pda->rule_canonical_key(b.rule)))
            return c;
    }
    // `a` is an ε id for PostCombine, a TransId everywhere else; `b` is
    // always a TransId (PostCombine's second component, PrePush's t2).
    if (a.kind == Provenance::Kind::PostCombine) {
        if (const int c = compare_eps_identity(a.a, b.a)) return c;
    } else {
        if (const int c = compare_trans_identity(a.a, b.a)) return c;
    }
    return compare_trans_identity(a.b, b.b);
}

std::pair<TransId, bool> PAutomaton::add_transition(StateId from, EdgeLabel label,
                                                    StateId to, Weight weight,
                                                    Provenance prov) {
    AALWINES_ASSERT(from < _trans_from.size() && to < _trans_from.size(),
                    "transition endpoint is not an automaton state");
    if (label.is_concrete()) {
        note_weight(weight);
        const std::uint64_t key = pack(from, label.concrete);
        const TransId id = static_cast<TransId>(_transitions.size());
        const auto [head, inserted] = _concrete_heads.try_emplace(key, id);
        if (!inserted) {
            // Walk the (short) chain of transitions sharing (from, symbol).
            TransId last = head;
            for (TransId cur = head; cur != k_no_trans;
                 last = cur, cur = _transitions[cur].next_same_key) {
                if (_transitions[cur].to != to) continue;
                auto& existing = _transitions[cur];
                if (weight < existing.weight) {
                    // Monotone (Dijkstra) processing never improves a finalized
                    // transition; a relaxation can only hit pending ones.
                    AALWINES_ASSERT(!existing.finalized,
                                    "relaxation of a finalized transition");
                    existing.weight = std::move(weight);
                    existing.prov = prov;
                    return {cur, true};
                }
                // Equal-weight re-derivation: keep the canonically smallest
                // provenance so the witness does not depend on arrival order.
                if (_canonical_tiebreaks && weight == existing.weight &&
                    compare_provenance(prov, existing.prov) < 0)
                    existing.prov = prov;
                return {cur, false};
            }
            _transitions[last].next_same_key = id;
        }
        _transitions.push_back({from, to, label, std::move(weight), prov, k_no_trans, false});
        _trans_from[from].push_back(id);
        return {id, true};
    }
    // Set-labelled: linear scan over the (few) set edges out of `from`.
    for (const auto id : _trans_from[from]) {
        auto& existing = _transitions[id];
        if (existing.to != to || existing.label.is_concrete()) continue;
        if (!(existing.label == label)) continue;
        if (weight < existing.weight) {
            AALWINES_ASSERT(!existing.finalized, "relaxation of a finalized transition");
            existing.weight = std::move(weight);
            existing.prov = prov;
            return {id, true};
        }
        if (_canonical_tiebreaks && weight == existing.weight &&
            compare_provenance(prov, existing.prov) < 0)
            existing.prov = prov;
        return {id, false};
    }
    note_weight(weight);
    const TransId id = static_cast<TransId>(_transitions.size());
    _transitions.push_back({from, to, std::move(label), std::move(weight), prov, k_no_trans, false});
    _trans_from[from].push_back(id);
    return {id, true};
}

std::pair<std::uint32_t, bool> PAutomaton::add_epsilon(StateId from, StateId to,
                                                       Weight weight, Provenance prov) {
    const auto id = static_cast<std::uint32_t>(_epsilons.size());
    const auto [existing_id, inserted] = _eps_index.try_emplace(pack(from, to), id);
    if (!inserted) {
        auto& existing = _epsilons[existing_id];
        if (weight < existing.weight) {
            AALWINES_ASSERT(!existing.finalized, "relaxation of a finalized epsilon");
            existing.weight = std::move(weight);
            existing.prov = prov;
            return {existing_id, true};
        }
        if (_canonical_tiebreaks && weight == existing.weight &&
            compare_provenance(prov, existing.prov) < 0)
            existing.prov = prov;
        return {existing_id, false};
    }
    note_weight(weight);
    _epsilons.push_back({from, to, std::move(weight), prov, false});
    _eps_by_target[to].push_back(id);
    _eps_from[from].push_back(id);
    return {id, true};
}

StateId PAutomaton::mid_state(StateId to, Symbol top) {
    if (const auto found = _mid_states.find(pack(to, top)); found != util::FlatMap64::k_npos)
        return found;
    const auto state = add_state();
    _mid_states.try_emplace(pack(to, top), state);
    // Mid-states are the only states created *during* saturation; their raw
    // id depends on discovery order, but their (owner, pushed-symbol)
    // identity does not.  The high bit sorts them after every
    // pre-saturation state.
    _canonical_key[state] = (std::uint64_t{1} << 63) | pack(to, top);
    return state;
}

} // namespace aalwines::pda
