#pragma once
// P-automata: NFAs over the PDA stack alphabet whose states include every
// PDA control state.  A configuration (p, γ₁…γₙ) is accepted iff the word
// γ₁…γₙ (top first) is read from state p to a final state.
//
// The `post*`/`pre*` saturation procedures (solver.hpp) grow a P-automaton
// in place; every transition carries the best weight found so far and a
// provenance record from which witness rule sequences are reconstructed.
//
// Edge labels are either a concrete symbol or a symbolic set (see
// nfa::SymbolSet) — initial automata compiled from header regexes use sets,
// saturation mostly adds concrete edges.

#include <cstdint>
#include <optional>
#include <vector>

#include "nfa/symbol_set.hpp"
#include "pda/pda.hpp"
#include "pda/weight.hpp"
#include "util/flat_map.hpp"

namespace aalwines::pda {

class ParallelSaturation; // sharded saturation engine (solver.cpp)

using TransId = std::uint32_t;
inline constexpr TransId k_no_trans = UINT32_MAX;

/// Label of a P-automaton edge: one symbol or a symbol set.
struct EdgeLabel {
    Symbol concrete = k_no_symbol; ///< valid when != k_no_symbol
    nfa::SymbolSet set;            ///< used when concrete == k_no_symbol

    [[nodiscard]] static EdgeLabel of(Symbol symbol) {
        EdgeLabel label;
        label.concrete = symbol;
        return label;
    }
    [[nodiscard]] static EdgeLabel of_set(nfa::SymbolSet symbols) {
        // Collapse singleton include-sets to the concrete representation.
        if (symbols.mode() == nfa::SymbolSet::Mode::Include && symbols.symbols().size() == 1)
            return of(symbols.symbols().front());
        EdgeLabel label;
        label.set = std::move(symbols);
        return label;
    }

    [[nodiscard]] bool is_concrete() const noexcept { return concrete != k_no_symbol; }
    [[nodiscard]] bool contains(Symbol symbol) const {
        return is_concrete() ? concrete == symbol : set.contains(symbol);
    }
    [[nodiscard]] nfa::SymbolSet as_set() const {
        return is_concrete() ? nfa::SymbolSet::single(concrete) : set;
    }
    /// Intersection with `other`, nullopt when definitely empty.
    [[nodiscard]] std::optional<EdgeLabel> intersect(const nfa::SymbolSet& other) const {
        if (is_concrete())
            return other.contains(concrete) ? std::optional(*this) : std::nullopt;
        auto inter = nfa::SymbolSet::intersection(set, other);
        if (inter.is_empty_set()) return std::nullopt;
        return of_set(std::move(inter));
    }
    [[nodiscard]] std::optional<Symbol> pick(Symbol domain) const {
        if (is_concrete())
            return concrete < domain ? std::optional(concrete) : std::nullopt;
        return set.pick(domain);
    }

    bool operator==(const EdgeLabel& other) const {
        if (is_concrete() != other.is_concrete()) return false;
        return is_concrete() ? concrete == other.concrete : set == other.set;
    }
};

/// Total, run-independent order on edge labels: concrete before symbolic,
/// concrete by symbol, sets by (mode, sorted payload).  Returns <0/0/>0.
[[nodiscard]] int canonical_compare(const EdgeLabel& a, const EdgeLabel& b);

/// How a transition came to exist; drives witness reconstruction.
struct Provenance {
    enum class Kind : std::uint8_t {
        Initial,     ///< part of the automaton before saturation
        PostSwap,    ///< post*: swap rule `rule` applied to transition `a`
        PostPushT1,  ///< post*: control → mid edge of push rule `rule`
        PostPushT2,  ///< post*: mid → q edge; rule `rule` applied to `a`
        PostEps,     ///< post*: pop rule `rule` applied to `a` (ε-transition)
        PostCombine, ///< post*: ε-transition `a` composed with transition `b`
        PrePop,      ///< pre*: pop rule `rule`
        PreSwap,     ///< pre*: swap rule `rule` over transition `a`
        PrePush,     ///< pre*: push rule `rule` over transitions `a`, `b`
    };
    Kind kind = Kind::Initial;
    RuleId rule = UINT32_MAX;
    std::uint32_t a = k_no_trans; ///< TransId, or ε-id for PostCombine
    std::uint32_t b = k_no_trans;
};

struct Transition {
    StateId from = 0;
    StateId to = 0;
    EdgeLabel label;
    Weight weight;
    Provenance prov;
    /// Next transition sharing this one's interned (from, symbol) key —
    /// intrusive chain headed by PAutomaton::_concrete_heads; k_no_trans ends
    /// it.  Chains stay short (distinct `to` states per (from, symbol)).
    TransId next_same_key = k_no_trans;
    bool finalized = false;
};

/// post* ε-transition p --ε--> q (always from a control state).
struct EpsTransition {
    StateId from = 0;
    StateId to = 0;
    Weight weight;
    Provenance prov;
    bool finalized = false;
};

class PAutomaton {
public:
    /// States [0, pda.state_count()) mirror the PDA control states.
    explicit PAutomaton(const Pda& pda);

    [[nodiscard]] const Pda& pda() const noexcept { return *_pda; }

    StateId add_state();
    void set_final(StateId state, bool final = true);
    [[nodiscard]] bool is_final(StateId state) const { return _final[state]; }
    [[nodiscard]] bool is_control_state(StateId state) const noexcept {
        return state < _control_count;
    }
    [[nodiscard]] std::size_t state_count() const noexcept { return _trans_from.size(); }

    /// Insert or relax a transition.  Returns {id, improved}: `improved` is
    /// true when the transition is new or its weight strictly decreased
    /// (callers re-enqueue it then).
    std::pair<TransId, bool> add_transition(StateId from, EdgeLabel label, StateId to,
                                            Weight weight, Provenance prov);
    std::pair<std::uint32_t, bool> add_epsilon(StateId from, StateId to, Weight weight,
                                               Provenance prov);

    [[nodiscard]] Transition& transition(TransId id) { return _transitions[id]; }
    [[nodiscard]] const Transition& transition(TransId id) const { return _transitions[id]; }
    [[nodiscard]] EpsTransition& epsilon(std::uint32_t id) { return _epsilons[id]; }
    [[nodiscard]] const EpsTransition& epsilon(std::uint32_t id) const { return _epsilons[id]; }

    [[nodiscard]] std::size_t transition_count() const noexcept { return _transitions.size(); }
    [[nodiscard]] std::size_t epsilon_count() const noexcept { return _epsilons.size(); }

    [[nodiscard]] const std::vector<TransId>& transitions_from(StateId state) const {
        return _trans_from[state];
    }
    [[nodiscard]] const std::vector<std::uint32_t>& epsilons_into(StateId state) const {
        return _eps_by_target[state];
    }
    [[nodiscard]] const std::vector<std::uint32_t>& epsilons_from(StateId state) const {
        return _eps_from[state];
    }

    /// The shared mid-state q_{p,γ} for post* push rules targeting (to, top).
    StateId mid_state(StateId to, Symbol top);

    // --- Canonical witness tie-breaking ------------------------------------
    //
    // Raw ids (StateId of mid-states, TransId, RuleId under lazy
    // materialization) depend on discovery order and therefore on the thread
    // count.  The keys below are pure functions of *content* instead:
    //   state   → its pre-saturation id (those are deterministic), or for a
    //             saturation-created mid-state its (owner, symbol) identity;
    //   rule    → (from, per-state emission ordinal), see Pda::rule_canonical_key;
    //   trans/ε → the (canonical from, canonical to, label) triple.
    // When `canonical_tiebreaks()` is on, equal-weight provenance updates keep
    // the candidate with the smallest canonical key, making the reconstructed
    // witness a pure function of the saturated automaton's content — i.e.
    // identical across worklist disciplines and solver thread counts.  The
    // flag is enabled by the translation layer for weighted runs (where the
    // minimal weight level is always fully saturated, see solver.cpp); unit-
    // weight runs keep first-arrival provenance — their early-terminated
    // saturation frontier is itself thread-dependent, so canonical selection
    // there would cost hot-path compares without buying stability.

    [[nodiscard]] bool canonical_tiebreaks() const noexcept { return _canonical_tiebreaks; }
    void set_canonical_tiebreaks(bool on) noexcept { _canonical_tiebreaks = on; }

    /// Stable content key of a state (see above); sortable, run-independent.
    [[nodiscard]] std::uint64_t canonical_state(StateId state) const noexcept {
        return _canonical_key[state];
    }

    /// Total orders on transition/ε identities and provenance records.
    /// Return <0/0/>0; ids may be k_no_trans/UINT32_MAX sentinels (sorted
    /// first).  Only meaningful for comparing candidates of the *same*
    /// target (equal-weight tie-breaks).
    [[nodiscard]] int compare_trans_identity(std::uint32_t a, std::uint32_t b) const;
    [[nodiscard]] int compare_eps_identity(std::uint32_t a, std::uint32_t b) const;
    [[nodiscard]] int compare_provenance(const Provenance& a, const Provenance& b) const;

    /// True while every transition and ε weight is scalar; together with
    /// Pda::all_weights_scalar() this gates the bucketed worklist.
    [[nodiscard]] bool all_scalar_weights() const noexcept { return _all_weights_scalar; }
    /// Largest scalar transition/ε weight seen (sizes the bucket array).
    [[nodiscard]] std::uint64_t max_scalar_weight() const noexcept {
        return _max_scalar_weight;
    }

private:
    /// The sharded parallel solver partitions transition insertion across
    /// owner threads and must mirror add_transition/add_epsilon against
    /// per-shard key maps, then merge them back into _concrete_heads and the
    /// scalar-weight summary.  It upholds every invariant documented here
    /// (chains append at the tail in id order, note_weight on every commit).
    friend class ParallelSaturation;

    [[nodiscard]] static std::uint64_t pack(StateId hi, std::uint32_t lo) noexcept {
        return (static_cast<std::uint64_t>(hi) << 32) | lo;
    }
    void note_weight(const Weight& weight) noexcept {
        if (const auto scalar = weight.as_scalar()) {
            if (*scalar > _max_scalar_weight) _max_scalar_weight = *scalar;
        } else {
            _all_weights_scalar = false;
        }
    }

    const Pda* _pda;
    std::size_t _control_count;
    std::vector<bool> _final;
    std::vector<Transition> _transitions;
    std::vector<EpsTransition> _epsilons;
    std::vector<std::vector<TransId>> _trans_from;
    std::vector<std::vector<std::uint32_t>> _eps_by_target;
    std::vector<std::vector<std::uint32_t>> _eps_from;
    util::FlatMap64 _concrete_heads; ///< (from,symbol) → head of next_same_key chain
    util::FlatMap64 _eps_index;      ///< (from,to) → ε id
    util::FlatMap64 _mid_states;     ///< (to,top) → state
    std::vector<std::uint64_t> _canonical_key; ///< per state, see canonical_state
    bool _all_weights_scalar = true;
    bool _canonical_tiebreaks = false;
    std::uint64_t _max_scalar_weight = 0;
};

} // namespace aalwines::pda
