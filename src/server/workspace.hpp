#pragma once
// Session workspaces for the verification daemon: each loaded network is
// registered once (the expensive load/synthesis/translation amortizes over
// every later query, as the paper's online tool and Tiramisu's shared graph
// construction both exploit) and handed out as shared, immutable state to
// concurrently running query handlers.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "model/routing.hpp"
#include "util/mutex.hpp"

namespace aalwines::server {

struct Workspace {
    std::string id;                         ///< registry handle, "n1", "n2", ...
    std::uint64_t sequence = 0;             ///< monotonic load sequence number
    std::shared_ptr<const Network> network; ///< immutable once registered
};

/// Thread-safe id → network map.  Networks are immutable after
/// registration; erase only unlinks — in-flight queries keep their
/// shared_ptr alive until they finish.
class WorkspaceRegistry {
public:
    /// Register a loaded network and mint its id.
    Workspace add(Network&& network);

    /// Look up by id; empty network pointer when unknown.
    [[nodiscard]] Workspace find(const std::string& id) const;

    /// Unlink a workspace; false when the id is unknown.
    bool erase(const std::string& id);

    [[nodiscard]] std::vector<Workspace> list() const;
    [[nodiscard]] std::size_t size() const;

private:
    mutable util::Mutex _mutex;
    std::vector<Workspace> _workspaces GUARDED_BY(_mutex);
    std::uint64_t _next_sequence GUARDED_BY(_mutex) = 1;
};

} // namespace aalwines::server
