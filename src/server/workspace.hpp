#pragma once
// Session workspaces for the verification daemon: each loaded network is
// registered once (the expensive load/synthesis/translation amortizes over
// every later query, as the paper's online tool and Tiramisu's shared graph
// construction both exploit) and handed out as shared, immutable state to
// concurrently running query handlers.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "model/routing.hpp"
#include "util/mutex.hpp"

namespace aalwines::server {

struct Workspace {
    std::string id;                         ///< registry handle, "n1", "n2", ...
    std::uint64_t sequence = 0;             ///< monotonic load sequence number
    /// Delta generation: 0 for the network as loaded, +1 per applied PATCH.
    /// Together with `sequence` it versions every cache key — patching
    /// never resurrects results computed against an older snapshot.
    std::uint64_t generation = 0;
    /// Each snapshot is immutable; a PATCH swaps in a *new* snapshot via
    /// update_network, so handlers that already copied the Workspace keep a
    /// consistent (network, generation) pair for their whole request.
    std::shared_ptr<const Network> network;
};

/// Thread-safe id → network map.  Networks are immutable after
/// registration; erase only unlinks — in-flight queries keep their
/// shared_ptr alive until they finish.
class WorkspaceRegistry {
public:
    /// Register a loaded network and mint its id.
    Workspace add(Network&& network);

    /// Look up by id; nullopt when unknown.
    [[nodiscard]] std::optional<Workspace> find(const std::string& id) const;

    /// Publish a patched snapshot for `id` (see Workspace::generation);
    /// false when the id is unknown (e.g. deleted concurrently).
    bool update_network(const std::string& id, std::shared_ptr<const Network> network,
                        std::uint64_t generation);

    /// Unlink a workspace; false when the id is unknown.
    bool erase(const std::string& id);

    [[nodiscard]] std::vector<Workspace> list() const;
    [[nodiscard]] std::size_t size() const;

private:
    mutable util::Mutex _mutex;
    std::vector<Workspace> _workspaces GUARDED_BY(_mutex);
    std::uint64_t _next_sequence GUARDED_BY(_mutex) = 1;
};

} // namespace aalwines::server
