#include "server/service.hpp"

#include <chrono>
#include <thread>

#include "cli/options.hpp"
#include "io/results_json.hpp"
#include "telemetry/exposition.hpp"
#include "telemetry/telemetry.hpp"
#include "util/errors.hpp"
#include "verify/batch.hpp"

namespace aalwines::server {

namespace {

http::Response json_response(int status, json::Value body) {
    http::Response response;
    response.status = status;
    response.body = json::write(body, 2) + "\n";
    return response;
}

json::Value network_info(const Workspace& workspace) {
    const auto& network = *workspace.network;
    const auto& topology = network.topology;
    std::size_t backup_rules = 0;
    network.routing.for_each([&](LinkId, Label, const RoutingEntry& groups) {
        for (std::size_t p = 1; p < groups.size(); ++p) backup_rules += groups[p].size();
    });
    json::Object info;
    info.emplace("id", workspace.id);
    info.emplace("name", network.name);
    info.emplace("routers", topology.router_count());
    info.emplace("links", topology.link_count());
    info.emplace("interfaces", topology.interface_count());
    info.emplace("labels", network.labels.size());
    info.emplace("tableEntries", network.routing.entry_count());
    info.emplace("forwardingRules", network.routing.rule_count());
    info.emplace("backupRules", backup_rules);
    info.emplace("generation", workspace.generation);
    info.emplace("patches", workspace.generation);
    if (const auto down = topology.down_link_count(); down > 0)
        info.emplace("linksDown", down);
    return json::Value(std::move(info));
}

/// Render one DeltaEffects category as human-readable link names.
json::Value links_to_json(const Topology& topology, const std::vector<LinkId>& links) {
    json::Array out;
    for (const auto link : links) out.emplace_back(topology.describe_link(link));
    return json::Value(std::move(out));
}

/// Pull an optional typed field out of a request body object.
const json::Value* field(const json::Object& object, const std::string& key) {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
}

std::string string_field(const json::Object& object, const std::string& key) {
    const auto* value = field(object, key);
    if (value == nullptr) return {};
    if (!value->is_string())
        throw cli::usage_error("field '" + key + "' must be a string");
    return value->as_string();
}

std::size_t size_field(const json::Object& object, const std::string& key,
                       std::size_t fallback) {
    const auto* value = field(object, key);
    if (value == nullptr) return fallback;
    if (!value->is_int() || value->as_int() < 0)
        throw cli::usage_error("field '" + key + "' must be a non-negative integer");
    return static_cast<std::size_t>(value->as_int());
}

bool bool_field(const json::Object& object, const std::string& key, bool fallback) {
    const auto* value = field(object, key);
    if (value == nullptr) return fallback;
    if (!value->is_bool()) throw cli::usage_error("field '" + key + "' must be a boolean");
    return value->as_bool();
}

} // namespace

http::Response error_response(int status, const std::string& message) {
    json::Object body;
    body.emplace("error", message);
    return json_response(status, json::Value(std::move(body)));
}

Service::Service(ServiceConfig config)
    : _config(config), _cache(config.cache_capacity) {
    if (!_config.access_log_path.empty() || _config.slow_query_ms > 0)
        _access_log =
            std::make_unique<AccessLog>(_config.access_log_path, _config.slow_query_ms);
}

void Service::set_runtime_info(std::function<json::Object()> provider) {
    _runtime_info = std::move(provider);
}

http::Response Service::handle(const http::Request& request, double queue_wait_ms) {
    const auto start = std::chrono::steady_clock::now();
    json::Object log;
    http::Response response;
    try {
        response = route(request, _access_log ? &log : nullptr);
    } catch (const cli::usage_error& error) {
        response = error_response(400, error.what());
    } catch (const parse_error& error) {
        response = error_response(400, error.what());
    } catch (const model_error& error) {
        response = error_response(422, error.what());
    } catch (const std::exception& error) {
        response = error_response(500, error.what());
    }
    // Counted and observed together after routing, so any snapshot — even
    // one taken by this very /metrics request — sees
    // request_duration.count == server_requests.
    telemetry::count(telemetry::Counter::server_requests);
    const auto seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    telemetry::observe_duration(telemetry::Histogram::request_duration, seconds);
    if (queue_wait_ms >= 0)
        telemetry::observe_duration(telemetry::Histogram::request_queue_wait,
                                    queue_wait_ms / 1000.0);

    if (_access_log) {
        const auto duration_ms = seconds * 1000.0;
        const bool slow = _access_log->slow_ms() > 0 &&
                          duration_ms >= static_cast<double>(_access_log->slow_ms());
        json::Object record; // "id" is stamped by AccessLog::write
        record.emplace("time", log_timestamp());
        record.emplace("method", request.method);
        record.emplace("target", request.target);
        record.emplace("status", response.status);
        record.emplace("durationMs", duration_ms);
        if (queue_wait_ms >= 0) record.emplace("queueWaitMs", queue_wait_ms);
        if (slow) record.emplace("slow", true);
        for (auto& [key, value] : log) {
            // Full query texts are verbose; only slow requests carry them.
            if (key == "queryTexts" && !slow) continue;
            record.emplace(key, std::move(value));
        }
        _access_log->write(std::move(record), slow);
    }
    return response;
}

http::Response Service::route(const http::Request& request, json::Object* log) {
    const auto& target = request.target;
    if (target == "/healthz") {
        if (request.method != "GET" && request.method != "HEAD")
            return error_response(405, "use GET /healthz");
        json::Object body;
        body.emplace("status", "ok");
        body.emplace("workspaces", _workspaces.size());
        return json_response(200, json::Value(std::move(body)));
    }
    if (target == "/metrics") {
        if (request.method != "GET")
            return error_response(405, "use GET /metrics");
        return handle_metrics(request);
    }
    if (target == "/networks" || target == "/networks/")
        return handle_networks(request);
    if (target.rfind("/networks/", 0) == 0) {
        auto rest = target.substr(10);
        std::string action;
        if (const auto slash = rest.find('/'); slash != std::string::npos) {
            action = rest.substr(slash + 1);
            rest.erase(slash);
            if (action != "query" && action != "sweep")
                return error_response(404, "unknown endpoint");
        }
        return handle_network_item(request, rest, action, log);
    }
    return error_response(404, "unknown endpoint");
}

http::Response Service::handle_networks(const http::Request& request) {
    if (request.method == "GET") {
        json::Array list;
        for (const auto& workspace : _workspaces.list())
            list.push_back(network_info(workspace));
        json::Object body;
        body.emplace("networks", json::Value(std::move(list)));
        return json_response(200, json::Value(std::move(body)));
    }
    if (request.method != "POST")
        return error_response(405, "use GET or POST /networks");

    const auto parsed = json::parse(request.body);
    if (!parsed.is_object())
        throw cli::usage_error("request body must be a JSON object");
    const auto& object = parsed.as_object();
    cli::NetworkDocuments documents;
    documents.demo = string_field(object, "demo");
    documents.gml = string_field(object, "gml");
    documents.topology_xml = string_field(object, "topologyXml");
    documents.routing_xml = string_field(object, "routingXml");
    documents.locations_json = string_field(object, "locations");

    auto network = cli::load_network(documents);
    if (const auto name = string_field(object, "name"); !name.empty())
        network.name = name;
    const auto workspace = _workspaces.add(std::move(network));
    return json_response(201, network_info(workspace));
}

http::Response Service::handle_network_item(const http::Request& request,
                                            const std::string& id,
                                            const std::string& action,
                                            json::Object* log) {
    const auto workspace = _workspaces.find(id);
    if (!workspace) return error_response(404, "unknown network '" + id + "'");
    if (!action.empty()) {
        if (request.method != "POST")
            return error_response(405, "use POST /networks/{id}/" + action);
        return action == "sweep" ? handle_sweep(request, *workspace, log)
                                 : handle_query(request, *workspace, log);
    }
    if (request.method == "GET") return json_response(200, network_info(*workspace));
    if (request.method == "PATCH") return handle_patch(request, *workspace, log);
    if (request.method == "DELETE") {
        _workspaces.erase(id);
        {
            const util::MutexLock lock(_mutex);
            _reverifiers.erase(id);
            _invalidations.erase(id);
        }
        http::Response response;
        response.status = 204;
        return response;
    }
    return error_response(405, "use GET, PATCH or DELETE /networks/{id}");
}

std::shared_ptr<delta::Reverifier> Service::reverifier_for(const Workspace& workspace,
                                                           bool create) {
    const util::MutexLock lock(_mutex);
    if (const auto it = _reverifiers.find(workspace.id); it != _reverifiers.end())
        return it->second;
    if (!create) return nullptr;
    auto reverifier = std::make_shared<delta::Reverifier>(workspace.network);
    _reverifiers.emplace(workspace.id, reverifier);
    return reverifier;
}

http::Response Service::handle_patch(const http::Request& request,
                                     const Workspace& workspace, json::Object* log) {
    const auto start = std::chrono::steady_clock::now();
    const auto parsed = json::parse(request.body);
    const auto delta = delta::NetworkDelta::from_json(parsed);

    auto reverifier = reverifier_for(workspace, /*create=*/true);
    const auto applied = reverifier->apply(delta); // model_error -> 422 via handle()
    // Publish the snapshot, then retire every cached result of this
    // workspace (and only this workspace) — the key's generation field
    // already guarantees staleness can't be served, eviction frees memory.
    _workspaces.update_network(workspace.id, reverifier->network(), applied.generation);
    const auto evicted = _cache.invalidate(cache_scope(workspace.sequence));
    std::uint64_t invalidations = 0;
    {
        const util::MutexLock lock(_mutex);
        invalidations = ++_invalidations[workspace.id];
    }

    telemetry::count(telemetry::Counter::server_patches);
    telemetry::observe_duration(
        telemetry::Histogram::patch_apply,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count());

    if (log != nullptr) {
        log->emplace("network", workspace.id);
        log->emplace("generation", applied.generation);
        log->emplace("operations", delta.ops.size());
        log->emplace("cacheEvictions", evicted);
    }

    const auto& topology = reverifier->network()->topology;
    json::Object effects;
    effects.emplace("entryLinks", links_to_json(topology, applied.effects.entry_links));
    effects.emplace("stateLinks", links_to_json(topology, applied.effects.state_links));
    effects.emplace("distanceLinks",
                    links_to_json(topology, applied.effects.distance_links));
    effects.emplace("labelAdded", applied.effects.label_added);

    json::Object body;
    body.emplace("id", workspace.id);
    body.emplace("generation", applied.generation);
    body.emplace("operations", delta.ops.size());
    body.emplace("effects", json::Value(std::move(effects)));
    body.emplace("cacheEvictions", evicted);
    body.emplace("invalidations", invalidations);
    return json_response(200, json::Value(std::move(body)));
}

http::Response Service::handle_query(const http::Request& request,
                                     const Workspace& workspace, json::Object* log) {
    const auto parsed = json::parse(request.body);
    if (!parsed.is_object())
        throw cli::usage_error("request body must be a JSON object");
    const auto& object = parsed.as_object();

    const bool batch = field(object, "queries") != nullptr;
    std::vector<std::string> texts;
    if (batch) {
        const auto* queries = field(object, "queries");
        if (!queries->is_array())
            throw cli::usage_error("field 'queries' must be an array of strings");
        for (const auto& entry : queries->as_array()) {
            if (!entry.is_string())
                throw cli::usage_error("field 'queries' must be an array of strings");
            texts.push_back(entry.as_string());
        }
    } else {
        const auto text = string_field(object, "query");
        if (text.empty()) throw cli::usage_error("missing field 'query'");
        texts.push_back(text);
    }

    cli::VerifySpec spec;
    spec.engine = string_field(object, "engine");
    if (spec.engine.empty()) spec.engine = "dual";
    spec.weight = string_field(object, "weight");
    spec.reduction =
        static_cast<int>(size_field(object, "reduction", static_cast<std::size_t>(2)));
    spec.trace = bool_field(object, "trace", true);
    spec.witnesses = size_field(object, "witnesses", 1);
    spec.max_iterations = size_field(object, "maxIterations", 0);
    spec.translation = string_field(object, "translation");
    if (spec.translation.empty()) spec.translation = "auto";
    spec.solver_threads = string_field(object, "solverThreads");
    const bool stats = bool_field(object, "stats", false);
    auto jobs = size_field(object, "jobs", 1);
    const auto max_jobs = _config.max_jobs != 0
                              ? _config.max_jobs
                              : std::max(1u, std::thread::hardware_concurrency());
    jobs = std::min(std::max<std::size_t>(jobs, 1), max_jobs);

    WeightExpr weights;
    const auto options = cli::make_verify_options(spec, weights); // validates

    // Serve what the cache already has; verify only the misses, as a batch.
    struct Slot {
        std::string key;
        std::shared_ptr<const verify::VerifyResult> result;
        std::string error;
        std::string path; ///< reverifier tier ("reused"|"warm"|"cold"); "" = batch
        bool cached = false;
    };
    std::vector<Slot> slots(texts.size());
    std::vector<std::string> missing;
    std::vector<std::size_t> missing_index;
    for (std::size_t i = 0; i < texts.size(); ++i) {
        slots[i].key = cache_key(workspace.sequence, workspace.generation, texts[i],
                                 spec.engine, spec.weight, spec.reduction, spec.witnesses,
                                 spec.max_iterations, spec.trace, spec.translation);
        slots[i].result = _cache.find(slots[i].key);
        slots[i].cached = slots[i].result != nullptr;
        if (!slots[i].cached) {
            missing.push_back(texts[i]);
            missing_index.push_back(i);
        }
    }
    if (!missing.empty()) {
        // A patched workspace answers through its Reverifier: per-query
        // translation caches survive across generations, so a repeat query
        // after a small delta reuses or rebases instead of recompiling.
        // Never-patched workspaces keep the plain batch path (parallel
        // across `jobs` workers, zero session overhead).
        if (const auto reverifier = reverifier_for(workspace, /*create=*/false)) {
            for (std::size_t m = 0; m < missing.size(); ++m) {
                auto& slot = slots[missing_index[m]];
                try {
                    auto outcome = reverifier->verify(missing[m], spec);
                    slot.path = delta::to_string(outcome.path);
                    slot.result = std::make_shared<const verify::VerifyResult>(
                        std::move(outcome.result));
                    _cache.insert(slot.key, slot.result);
                } catch (const std::exception& error) {
                    slot.error = error.what();
                }
            }
        } else {
            auto items = verify::verify_batch(*workspace.network, missing, options, jobs);
            for (std::size_t m = 0; m < items.size(); ++m) {
                auto& slot = slots[missing_index[m]];
                if (!items[m].error.empty()) {
                    slot.error = std::move(items[m].error);
                    continue;
                }
                slot.result = std::make_shared<const verify::VerifyResult>(
                    std::move(items[m].result));
                _cache.insert(slot.key, slot.result);
            }
        }
    }

    if (log != nullptr) {
        std::string combined;
        for (const auto& text : texts) {
            combined += text;
            combined += '\n';
        }
        log->emplace("network", workspace.id);
        log->emplace("queryHash", stable_hash_hex(combined));
        log->emplace("queries", texts.size());
        std::size_t hits = 0;
        for (const auto& slot : slots) hits += slot.cached ? 1 : 0;
        log->emplace("cacheHits", hits);
        log->emplace("cacheMisses", texts.size() - hits);
        if (!batch)
            log->emplace("answer", slots[0].error.empty()
                                       ? std::string(verify::to_string(slots[0].result->answer))
                                       : "error");
        else
            log->emplace("answer", "batch");
        // Pipeline time spent by *this* request: cached slots did no work.
        double compile = 0, solve = 0, witness = 0;
        for (const auto& slot : slots) {
            if (slot.cached || slot.result == nullptr) continue;
            for (const auto* phase : {&slot.result->stats.over, &slot.result->stats.under}) {
                if (!phase->ran) continue;
                compile += phase->translate_seconds + phase->reduce_seconds;
                solve += phase->saturate_seconds;
                witness += phase->accept_seconds + phase->witness_seconds;
            }
        }
        log->emplace("compileMs", compile * 1000.0);
        log->emplace("solveMs", solve * 1000.0);
        log->emplace("witnessMs", witness * 1000.0);
        json::Array query_texts;
        for (const auto& text : texts) query_texts.emplace_back(text);
        log->emplace("queryTexts", json::Value(std::move(query_texts)));
    }

    auto to_entry = [&](std::size_t i) {
        if (!slots[i].error.empty()) {
            json::Object entry;
            entry.emplace("query", texts[i]);
            entry.emplace("error", slots[i].error);
            return json::Value(std::move(entry));
        }
        auto entry = io::result_to_json_value(*workspace.network, texts[i],
                                              *slots[i].result, stats);
        entry.as_object().emplace("cached", slots[i].cached);
        if (!slots[i].path.empty()) entry.as_object().emplace("path", slots[i].path);
        return entry;
    };

    if (!batch) {
        if (!slots[0].error.empty()) {
            json::Object body;
            body.emplace("query", texts[0]);
            body.emplace("error", slots[0].error);
            return json_response(400, json::Value(std::move(body)));
        }
        return json_response(200, to_entry(0));
    }
    json::Array results;
    for (std::size_t i = 0; i < texts.size(); ++i) results.push_back(to_entry(i));
    json::Object body;
    body.emplace("network", workspace.id);
    body.emplace("results", json::Value(std::move(results)));
    return json_response(200, json::Value(std::move(body)));
}

http::Response Service::handle_sweep(const http::Request& request,
                                     const Workspace& workspace, json::Object* log) {
    const auto parsed = json::parse(request.body);
    if (!parsed.is_object())
        throw cli::usage_error("request body must be a JSON object");
    const auto& object = parsed.as_object();

    verify::SweepSpec sweep_spec;
    sweep_spec.query_template = string_field(object, "template");
    if (sweep_spec.query_template.empty())
        throw cli::usage_error("missing field 'template'");
    if (const auto* pairs = field(object, "pairs"); pairs != nullptr) {
        if (!pairs->is_array())
            throw cli::usage_error("field 'pairs' must be an array of [src, dst] pairs");
        for (const auto& pair : pairs->as_array()) {
            if (!pair.is_array() || pair.as_array().size() != 2 ||
                !pair.as_array()[0].is_string() || !pair.as_array()[1].is_string())
                throw cli::usage_error("each pair must be a [src, dst] string pair");
            sweep_spec.endpoint_pairs.emplace_back(pair.as_array()[0].as_string(),
                                                   pair.as_array()[1].as_string());
        }
    }
    if (const auto* budgets = field(object, "budgets"); budgets != nullptr) {
        if (!budgets->is_array())
            throw cli::usage_error("field 'budgets' must be an array of integers");
        for (const auto& k : budgets->as_array()) {
            if (!k.is_int() || k.as_int() < 0)
                throw cli::usage_error(
                    "field 'budgets' must be an array of non-negative integers");
            sweep_spec.failure_budgets.push_back(static_cast<std::uint64_t>(k.as_int()));
        }
    }
    if (const auto* scenarios = field(object, "scenarios"); scenarios != nullptr)
        sweep_spec.scenarios = cli::scenarios_from_json(*scenarios);
    if (field(object, "singleFailures") != nullptr)
        cli::append_single_failure_scenarios(sweep_spec, *workspace.network,
                                             size_field(object, "singleFailures", 0));

    cli::VerifySpec spec;
    spec.engine = string_field(object, "engine");
    if (spec.engine.empty()) spec.engine = "dual";
    spec.weight = string_field(object, "weight");
    spec.reduction =
        static_cast<int>(size_field(object, "reduction", static_cast<std::size_t>(2)));
    spec.trace = bool_field(object, "trace", true);
    spec.witnesses = size_field(object, "witnesses", 1);
    spec.max_iterations = size_field(object, "maxIterations", 0);
    spec.translation = string_field(object, "translation");
    if (spec.translation.empty()) spec.translation = "auto";
    spec.solver_threads = string_field(object, "solverThreads");
    const bool stats = bool_field(object, "stats", false);
    auto jobs = size_field(object, "jobs", 0); // 0 = one worker per chain, capped
    const auto max_jobs = _config.max_jobs != 0
                              ? _config.max_jobs
                              : std::max(1u, std::thread::hardware_concurrency());
    jobs = jobs == 0 ? max_jobs : std::min(jobs, max_jobs);

    WeightExpr weights;
    const auto options = cli::make_verify_options(spec, weights); // validates

    // Sweeps bypass the result cache: the sweep engine *is* the
    // amortization (shared NFAs, rebased frontiers, pooled workspaces),
    // and a grid rarely repeats verbatim.
    const auto sweep =
        verify::run_sweep(*workspace.network, sweep_spec, options, jobs);

    if (log != nullptr) {
        log->emplace("network", workspace.id);
        log->emplace("sweepCells", sweep.stats.cells);
        log->emplace("coldSaturations", sweep.stats.cold_saturations);
        log->emplace("reusedFrontiers", sweep.stats.reused_frontiers);
        log->emplace("sharedSaturations", sweep.stats.shared_saturations);
        log->emplace("errors", sweep.stats.errors);
        log->emplace("answer", "sweep");
    }

    auto body = io::sweep_to_json_value(*workspace.network, sweep_spec, sweep, stats);
    body.as_object().emplace("network", workspace.id);
    body.as_object().emplace("generation", workspace.generation);
    return json_response(200, std::move(body));
}

http::Response Service::handle_metrics(const http::Request& request) {
    const auto snap = telemetry::snapshot();
    auto runtime = _runtime_info ? _runtime_info() : json::Object{};

    if (request.query_parameter("format", "prometheus")) {
        // Point-in-time server state rides along as extra gauges; the
        // registry's own gauges are high-water marks and keep their names.
        std::vector<telemetry::ExpositionGauge> extra;
        extra.push_back({"aalwines_cache_entries",
                         "Compiled-result cache entries currently resident.",
                         static_cast<double>(_cache.size())});
        extra.push_back({"aalwines_cache_capacity",
                         "Compiled-result cache capacity (entries).",
                         static_cast<double>(_cache.capacity())});
        extra.push_back({"aalwines_workspaces",
                         "Networks currently loaded.",
                         static_cast<double>(_workspaces.size())});
        if (const auto depth = runtime.find("queueDepth"); depth != runtime.end())
            extra.push_back({"aalwines_queue_depth",
                             "Accepted connections currently waiting for a worker.",
                             static_cast<double>(depth->second.as_int())});

        http::Response response;
        response.content_type = "text/plain; version=0.0.4; charset=utf-8";
        response.body = telemetry::to_prometheus(snap, extra);
        return response;
    }

    json::Object counters;
    for (std::size_t i = 0; i < telemetry::k_counter_count; ++i)
        counters.emplace(std::string(telemetry::name_of(static_cast<telemetry::Counter>(i))),
                         snap.counters[i]);
    // High-water marks (maximum across threads and runs) — *not* current
    // values; see the "current" object for the point-in-time state.
    json::Object gauges;
    for (std::size_t i = 0; i < telemetry::k_gauge_count; ++i)
        gauges.emplace(std::string(telemetry::name_of(static_cast<telemetry::Gauge>(i))),
                       snap.gauges[i]);
    json::Object histograms;
    for (std::size_t i = 0; i < telemetry::k_histogram_count; ++i) {
        const auto& data = snap.histograms[i];
        if (data.count == 0) continue; // only observed histograms
        json::Object entry;
        entry.emplace("count", data.count);
        entry.emplace("sum", data.sum);
        entry.emplace("p50", data.p50());
        entry.emplace("p90", data.p90());
        entry.emplace("p99", data.p99());
        histograms.emplace(
            std::string(telemetry::name_of(static_cast<telemetry::Histogram>(i))),
            json::Value(std::move(entry)));
    }

    json::Object cache;
    cache.emplace("entries", _cache.size());
    cache.emplace("capacity", _cache.capacity());
    cache.emplace("hits", snap.counter(telemetry::Counter::server_cache_hits));
    cache.emplace("misses", snap.counter(telemetry::Counter::server_cache_misses));
    cache.emplace("evictions", snap.counter(telemetry::Counter::server_cache_evictions));

    json::Object deltas;
    deltas.emplace("patches", snap.counter(telemetry::Counter::server_patches));
    deltas.emplace("tier1Reused", snap.counter(telemetry::Counter::delta_tier1_reused));
    deltas.emplace("tier2Resaturations",
                   snap.counter(telemetry::Counter::delta_tier2_resaturations));
    deltas.emplace("coldRebuilds", snap.counter(telemetry::Counter::delta_cold_rebuilds));
    deltas.emplace("statesInvalidated",
                   snap.counter(telemetry::Counter::delta_states_invalidated));
    {
        // Per-workspace invalidation totals: how often each loaded
        // network's cached results were retired by a PATCH.
        json::Object per_workspace;
        const util::MutexLock lock(_mutex);
        for (const auto& [id, count] : _invalidations) per_workspace.emplace(id, count);
        deltas.emplace("invalidations", json::Value(std::move(per_workspace)));
    }

    json::Object current;
    current.emplace("cacheEntries", _cache.size());
    current.emplace("workspaces", _workspaces.size());
    if (const auto depth = runtime.find("queueDepth"); depth != runtime.end())
        current.emplace("queueDepth", depth->second);

    json::Object server;
    server.emplace("workspaces", _workspaces.size());
    server.emplace("cache", json::Value(std::move(cache)));
    server.emplace("deltas", json::Value(std::move(deltas)));
    server.emplace("requests", snap.counter(telemetry::Counter::server_requests));
    server.emplace("rejected", snap.counter(telemetry::Counter::server_rejected));
    for (auto& [key, value] : runtime) server.emplace(key, std::move(value));

    json::Object body;
    body.emplace("schema", "aalwines-metrics-2");
    body.emplace("server", json::Value(std::move(server)));
    body.emplace("current", json::Value(std::move(current)));
    body.emplace("counters", json::Value(std::move(counters)));
    body.emplace("gauges", json::Value(std::move(gauges)));
    body.emplace("histograms", json::Value(std::move(histograms)));
    // Process-wide peak RSS (VmHWM) — covers the whole daemon lifetime,
    // not the current request.
    body.emplace("peakRssKb", telemetry::peak_rss_kb());
    return json_response(200, json::Value(std::move(body)));
}

} // namespace aalwines::server
