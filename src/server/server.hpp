#pragma once
// `aalwines serve` — the long-running verification daemon's socket front
// end.  A single acceptor thread feeds a bounded queue of accepted
// connections; a fixed worker pool pops, reads one HTTP request, answers
// through the Service, and closes.  Admission control: when the queue is
// full the acceptor replies `503 Service Unavailable` + `Retry-After`
// immediately instead of queueing unboundedly.  `request_stop()` is
// async-signal-safe (a self-pipe write), so SIGINT/SIGTERM drain
// gracefully: stop accepting, finish queued and in-flight requests, join.

#include <cstdint>
#include <chrono>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "server/http.hpp"
#include "server/service.hpp"
#include "util/mutex.hpp"

namespace aalwines::server {

struct ServerConfig {
    std::string bind_address = "127.0.0.1";
    std::uint16_t port = 0;          ///< 0 = ephemeral, read back via port()
    std::size_t workers = 0;         ///< 0 = hardware concurrency
    std::size_t queue_capacity = 64; ///< pending-connection bound
    int retry_after_seconds = 1;     ///< advertised on 503 rejections
    long recv_timeout_ms = 10000;    ///< per-socket read budget
    long send_timeout_ms = 10000;    ///< per-socket write budget
    long deadline_ms = 0; ///< max queue wait before a request is expired (504); 0 = off
    std::size_t max_body_bytes = 64ull << 20;
    /// Test instrumentation: runs in the worker after the request is read,
    /// before it is handled (used to hold requests in flight).
    std::function<void(const http::Request&)> on_request;
};

class Server {
public:
    Server(Service& service, ServerConfig config);
    ~Server();
    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Bind, listen and spawn acceptor + workers.  Throws std::runtime_error
    /// when the address cannot be bound.
    void start();

    /// The bound port (after start()); useful with an ephemeral port 0.
    [[nodiscard]] std::uint16_t port() const { return _port; }

    /// Async-signal-safe shutdown trigger: stop accepting, drain, exit.
    void request_stop() noexcept;

    /// Block until the daemon has drained and every thread is joined.
    /// Safe to call from several threads: the first caller joins, the
    /// others block until the drain completes (none returns early).
    void wait();

    /// request_stop() + wait().
    void stop();

    /// Pending (accepted, not yet handled) connections — for /metrics/tests.
    [[nodiscard]] std::size_t queue_depth() const;

private:
    struct Pending {
        int fd = -1;
        std::chrono::steady_clock::time_point accepted;
    };

    void accept_loop();
    void worker_loop();
    void serve_connection(Pending pending);

    Service& _service;
    ServerConfig _config;        ///< immutable after construction
    std::uint16_t _port = 0;     ///< written by start() before any thread spawns
    int _listen_fd = -1;         ///< owned by the acceptor thread after start()
    int _wake_read = -1, _wake_write = -1; ///< written by start() before spawning

    mutable util::Mutex _mutex;
    util::CondVar _ready; ///< signals _queue growth and the drain flag
    std::deque<Pending> _queue GUARDED_BY(_mutex);
    bool _draining GUARDED_BY(_mutex) = false;

    // _acceptor/_workers are written by start() before any concurrency and
    // joined by the single wait() caller that won _join_started.
    std::thread _acceptor;
    std::vector<std::thread> _workers;
    bool _started = false; ///< main-thread only (start() / destructor)
    util::CondVar _join_cv;
    bool _join_started GUARDED_BY(_mutex) = false;
    bool _join_done GUARDED_BY(_mutex) = false;
};

} // namespace aalwines::server
