#pragma once
// Structured request logging for the verification daemon (`--access-log`).
//
// One JSON object per line (JSON Lines), written after each request:
//
//   {"id": 17, "time": "2026-08-09T12:34:56Z", "method": "POST",
//    "target": "/networks/n1/query", "status": 200, "durationMs": 12.3,
//    "queueWaitMs": 0.4, "network": "n1", "queryHash": "9fc38a1f00215c7d",
//    "queries": 1, "cacheHits": 0, "cacheMisses": 1, "answer": "yes",
//    "compileMs": 1.2, "solveMs": 9.8, "witnessMs": 0.7}
//
// Requests slower than `--slow-query-ms` additionally carry "slow": true
// plus the verbatim query texts; with a threshold but no log file, only
// those slow records are emitted (to stderr), making the flag usable as a
// standalone slow-query log.

#include <cstdint>
#include <string>

#include "json/json.hpp"
#include "util/mutex.hpp"

namespace aalwines::server {

class AccessLog {
public:
    /// `path` empty = no file sink; `slow_ms` 0 = no slow-query threshold.
    /// "-" logs to stdout.  Throws std::runtime_error when the file cannot
    /// be opened for appending.
    AccessLog(std::string path, std::uint32_t slow_ms);
    ~AccessLog();
    AccessLog(const AccessLog&) = delete;
    AccessLog& operator=(const AccessLog&) = delete;

    /// Anything to do at all?  False for the default-constructed config.
    [[nodiscard]] bool enabled() const { return _fd >= 0 || _slow_ms > 0; }

    [[nodiscard]] std::uint32_t slow_ms() const { return _slow_ms; }

    /// Stamp `record` with the next monotonic request id (first = 1) and
    /// serialise it as one line.  Id assignment and the file write happen
    /// under one lock, so line order always matches id order — consumers
    /// may assume record N of the file carries id N.  `slow` routes a copy
    /// to stderr when no file sink is configured.  Thread-safe; write
    /// errors are ignored (logging must never fail a request).
    void write(json::Object record, bool slow);

private:
    int _fd = -1;             ///< file or stdout; -1 = slow-to-stderr only
    std::uint32_t _slow_ms = 0; ///< both immutable after construction
    util::Mutex _mutex;
    std::uint64_t _next_id GUARDED_BY(_mutex) = 0;
};

/// RFC 3339 UTC timestamp ("2026-08-09T12:34:56Z") for log records.
[[nodiscard]] std::string log_timestamp();

/// Stable 64-bit FNV-1a of `text` as 16 lower-case hex digits — the query
/// hash logged for correlating identical queries across requests (std::hash
/// is not stable across runs/builds, so it is unsuitable here).
[[nodiscard]] std::string stable_hash_hex(const std::string& text);

} // namespace aalwines::server
