#pragma once
// The daemon's REST surface, independent of any socket: maps one HTTP
// request to one JSON response.  Exercised directly by unit tests and
// through src/server/server.hpp in production.
//
//   GET    /healthz              liveness probe
//   GET    /metrics              telemetry snapshot + server/cache gauges
//   GET    /networks             list loaded workspaces
//   POST   /networks             load a network (demo | gml | XML pair)
//   GET    /networks/{id}        workspace statistics
//   PATCH  /networks/{id}        apply a what-if delta (new generation)
//   DELETE /networks/{id}        unload a workspace
//   POST   /networks/{id}/query  verify one query or a batch
//   POST   /networks/{id}/sweep  run an amortized what-if battery (a query
//                                template over endpoint-pair × failure-budget
//                                × link-failure-scenario axes) and return the
//                                health matrix (see verify/sweep.hpp)
//
// A PATCH applies a NetworkDelta (docs/FORMATS.md) to a copy-on-write
// snapshot and publishes it as the workspace's next delta generation; the
// workspace's cached results are evicted and later queries run through a
// delta::Reverifier, which reuses or rebases per-query translation caches
// instead of recompiling from scratch.
//
// See docs/SERVER.md for the request/response schemas.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "delta/reverify.hpp"
#include "json/json.hpp"
#include "server/access_log.hpp"
#include "server/cache.hpp"
#include "server/http.hpp"
#include "server/workspace.hpp"
#include "util/mutex.hpp"

namespace aalwines::server {

struct ServiceConfig {
    std::size_t cache_capacity = 256; ///< compiled-result LRU entries, 0 = off
    std::size_t max_jobs = 0;         ///< per-request --jobs cap, 0 = hardware
    std::string access_log_path;      ///< JSON-lines request log; "" = off, "-" = stdout
    std::uint32_t slow_query_ms = 0;  ///< flag+detail requests slower than this; 0 = off
};

class Service {
public:
    explicit Service(ServiceConfig config = {});

    /// Handle one request.  Thread-safe; never throws (internal errors
    /// become 500 responses).  `queue_wait_ms` is the accept-to-worker
    /// delay measured by the socket layer (< 0 = unknown/not queued).
    [[nodiscard]] http::Response handle(const http::Request& request,
                                        double queue_wait_ms = -1.0);

    /// Extra key/values merged into the /metrics "server" object (queue
    /// depth, worker count, ... — installed by the socket front end).
    void set_runtime_info(std::function<json::Object()> provider);

    [[nodiscard]] WorkspaceRegistry& workspaces() { return _workspaces; }
    [[nodiscard]] ResultCache& cache() { return _cache; }

private:
    [[nodiscard]] http::Response route(const http::Request& request, json::Object* log);
    [[nodiscard]] http::Response handle_networks(const http::Request& request);
    [[nodiscard]] http::Response handle_network_item(const http::Request& request,
                                                     const std::string& id,
                                                     const std::string& action,
                                                     json::Object* log);
    [[nodiscard]] http::Response handle_query(const http::Request& request,
                                              const Workspace& workspace,
                                              json::Object* log);
    [[nodiscard]] http::Response handle_sweep(const http::Request& request,
                                              const Workspace& workspace,
                                              json::Object* log);
    [[nodiscard]] http::Response handle_patch(const http::Request& request,
                                              const Workspace& workspace,
                                              json::Object* log);
    [[nodiscard]] http::Response handle_metrics(const http::Request& request);

    /// The workspace's incremental re-verifier.  Created on first demand
    /// (`create` = true, the PATCH path); queries pass false and get null
    /// for never-patched workspaces, keeping their fast verify_batch path.
    [[nodiscard]] std::shared_ptr<delta::Reverifier> reverifier_for(const Workspace& workspace,
                                                                    bool create);

    ServiceConfig _config;
    WorkspaceRegistry _workspaces;
    ResultCache _cache;
    std::function<json::Object()> _runtime_info;
    std::unique_ptr<AccessLog> _access_log;
    mutable util::Mutex _mutex;
    /// Keyed by workspace id; dropped with the workspace.  shared_ptr so a
    /// handler can use one after the workspace was deleted concurrently.
    std::unordered_map<std::string, std::shared_ptr<delta::Reverifier>> _reverifiers
        GUARDED_BY(_mutex);
    /// Per-workspace cache-invalidation totals (PATCHes that evicted), for
    /// /metrics.
    std::unordered_map<std::string, std::uint64_t> _invalidations GUARDED_BY(_mutex);
};

/// JSON error body + status, shared with the socket layer's early replies.
[[nodiscard]] http::Response error_response(int status, const std::string& message);

} // namespace aalwines::server
