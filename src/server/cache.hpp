#pragma once
// Compiled-query LRU cache: memoizes VerifyResults keyed by everything that
// determines them — network workspace, query text, engine, weight
// expression, reduction level, witness count, iteration cap, translation
// mode (lazy answers match eager ones, but their stats differ).  Repeat
// queries (the dominant interactive pattern: re-checking the same
// invariants after each what-if edit) skip parse, translation and
// saturation entirely.  Hit/miss totals land in the telemetry registry
// (server_cache_hits / server_cache_misses) and in /metrics.

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "util/mutex.hpp"
#include "verify/engine.hpp"

namespace aalwines::server {

/// Build the canonical cache key.  `sequence` is the workspace's load
/// sequence number, so re-loading a network never resurrects stale results;
/// `generation` is its delta generation, so a PATCH retires every result
/// computed against the pre-patch snapshot even if eviction lags.
/// solverThreads is deliberately NOT part of the key: answers and minimal
/// weights are thread-count independent, and weighted-engine witnesses are
/// canonical (PAutomaton::canonical_tiebreaks), so equivalent queries hit the
/// same entry across thread settings.  A cached dual-engine result returns
/// whichever valid witness the first computation produced.
[[nodiscard]] std::string cache_key(std::uint64_t sequence, std::uint64_t generation,
                                    const std::string& query_text,
                                    const std::string& engine, const std::string& weight,
                                    int reduction, std::size_t witnesses,
                                    std::size_t max_iterations, bool trace,
                                    const std::string& translation);

/// The key prefix shared by every entry of the workspace with this load
/// sequence — the argument for ResultCache::invalidate after a PATCH.
[[nodiscard]] std::string cache_scope(std::uint64_t sequence);

class ResultCache {
public:
    /// `capacity` = max cached results; 0 disables caching entirely.
    explicit ResultCache(std::size_t capacity) : _capacity(capacity) {}

    /// Look up a result; null on miss.  Hits refresh LRU order and count
    /// telemetry::Counter::server_cache_hits (misses the sibling counter).
    [[nodiscard]] std::shared_ptr<const verify::VerifyResult> find(const std::string& key);

    /// Insert (or refresh) a result, evicting the least recently used
    /// entries beyond capacity.
    void insert(const std::string& key, std::shared_ptr<const verify::VerifyResult> result);

    /// Drop every entry whose key starts with `prefix` (one workspace's
    /// results — see cache_scope), leaving other workspaces' entries alone.
    /// Counts telemetry::Counter::server_cache_evictions; returns how many
    /// entries were dropped.
    std::size_t invalidate(const std::string& prefix);

    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] std::size_t capacity() const { return _capacity; }

private:
    struct Entry {
        std::string key;
        std::shared_ptr<const verify::VerifyResult> result;
    };

    /// Evict LRU entries beyond capacity and raise the
    /// cache_entries_high_water gauge — called with the size about to
    /// settle, so the gauge never reads _order.size() unlocked.
    void evict_locked() REQUIRES(_mutex);

    mutable util::Mutex _mutex;
    std::size_t _capacity; ///< immutable after construction
    std::list<Entry> _order GUARDED_BY(_mutex); ///< front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator> _index
        GUARDED_BY(_mutex);
};

} // namespace aalwines::server
