#include "server/http.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>

#include <sys/socket.h>
#include <unistd.h>

namespace aalwines::server::http {

namespace {

constexpr std::size_t k_max_header_bytes = 64 * 1024;

std::string lower(std::string text) {
    std::transform(text.begin(), text.end(), text.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return text;
}

std::string trim(std::string_view text) {
    const auto first = text.find_first_not_of(" \t\r");
    if (first == std::string_view::npos) return {};
    const auto last = text.find_last_not_of(" \t\r");
    return std::string(text.substr(first, last - first + 1));
}

/// Receive more bytes into `buffer`; distinguishes timeout from close/error.
enum class RecvStatus { Data, Closed, TimedOut, Error };

RecvStatus recv_some(int fd, std::string& buffer) {
    char chunk[4096];
    for (;;) {
        const auto n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n > 0) {
            buffer.append(chunk, static_cast<std::size_t>(n));
            return RecvStatus::Data;
        }
        if (n == 0) return RecvStatus::Closed;
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return RecvStatus::TimedOut;
        return RecvStatus::Error;
    }
}

/// Parse request line + headers from `head` (everything before the blank
/// line).  Returns false on malformed input.
bool parse_head(std::string_view head, Request& request) {
    const auto line_end = head.find("\r\n");
    const auto request_line = head.substr(0, line_end);
    const auto method_end = request_line.find(' ');
    if (method_end == std::string_view::npos) return false;
    const auto target_end = request_line.find(' ', method_end + 1);
    if (target_end == std::string_view::npos) return false;
    const auto version = request_line.substr(target_end + 1);
    if (version.rfind("HTTP/1.", 0) != 0) return false;
    request.method = std::string(request_line.substr(0, method_end));
    std::transform(request.method.begin(), request.method.end(), request.method.begin(),
                   [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
    auto target =
        std::string(request_line.substr(method_end + 1, target_end - method_end - 1));
    if (const auto query = target.find('?'); query != std::string::npos) {
        request.query = target.substr(query + 1);
        target.erase(query);
    }
    if (target.empty() || target[0] != '/') return false;
    request.target = std::move(target);

    std::size_t pos = line_end == std::string_view::npos ? head.size() : line_end + 2;
    while (pos < head.size()) {
        auto end = head.find("\r\n", pos);
        if (end == std::string_view::npos) end = head.size();
        const auto line = head.substr(pos, end - pos);
        pos = end + 2;
        if (line.empty()) continue;
        const auto colon = line.find(':');
        if (colon == std::string_view::npos) return false;
        request.headers[lower(trim(line.substr(0, colon)))] = trim(line.substr(colon + 1));
    }
    return true;
}

} // namespace

bool Request::query_parameter(std::string_view key, std::string_view value) const {
    std::string_view rest = query;
    while (!rest.empty()) {
        const auto amp = rest.find('&');
        const auto param = rest.substr(0, amp);
        rest = amp == std::string_view::npos ? std::string_view{} : rest.substr(amp + 1);
        if (const auto eq = param.find('='); eq != std::string_view::npos) {
            if (param.substr(0, eq) == key && param.substr(eq + 1) == value) return true;
        } else if (param == key && value.empty()) {
            return true;
        }
    }
    return false;
}

std::string_view status_text(int status) {
    switch (status) {
        case 100: return "Continue";
        case 200: return "OK";
        case 201: return "Created";
        case 204: return "No Content";
        case 400: return "Bad Request";
        case 404: return "Not Found";
        case 405: return "Method Not Allowed";
        case 408: return "Request Timeout";
        case 413: return "Content Too Large";
        case 422: return "Unprocessable Content";
        case 500: return "Internal Server Error";
        case 503: return "Service Unavailable";
        case 504: return "Gateway Timeout";
        default: return "Unknown";
    }
}

ReadStatus read_request(int fd, Request& request, std::size_t max_body) {
    std::string buffer;
    std::size_t head_end = std::string::npos;
    while (head_end == std::string::npos) {
        if (buffer.size() > k_max_header_bytes) return ReadStatus::TooLarge;
        switch (recv_some(fd, buffer)) {
            case RecvStatus::Data: break;
            case RecvStatus::Closed:
                return buffer.empty() ? ReadStatus::Closed : ReadStatus::Malformed;
            case RecvStatus::TimedOut: return ReadStatus::TimedOut;
            case RecvStatus::Error: return ReadStatus::Closed;
        }
        head_end = buffer.find("\r\n\r\n");
    }
    if (!parse_head(std::string_view(buffer).substr(0, head_end + 2), request))
        return ReadStatus::Malformed;

    std::size_t content_length = 0;
    if (const auto* length = request.header("content-length")) {
        const auto* end = length->data() + length->size();
        const auto [ptr, ec] = std::from_chars(length->data(), end, content_length);
        if (ec != std::errc() || ptr != end) return ReadStatus::Malformed;
    } else if (request.header("transfer-encoding") != nullptr) {
        return ReadStatus::Malformed; // chunked bodies are not supported
    }
    if (content_length > max_body) return ReadStatus::TooLarge;

    // curl sends Expect: 100-continue for larger bodies and stalls ~1s
    // waiting for the interim response; oblige before reading the body.
    if (const auto* expect = request.header("expect");
        expect != nullptr && lower(*expect) == "100-continue")
        write_all(fd, "HTTP/1.1 100 Continue\r\n\r\n");

    std::string body = buffer.substr(head_end + 4);
    while (body.size() < content_length) {
        switch (recv_some(fd, body)) {
            case RecvStatus::Data: break;
            case RecvStatus::Closed: return ReadStatus::Malformed;
            case RecvStatus::TimedOut: return ReadStatus::TimedOut;
            case RecvStatus::Error: return ReadStatus::Closed;
        }
    }
    body.resize(content_length); // ignore pipelined extra bytes
    request.body = std::move(body);
    return ReadStatus::Ok;
}

std::string to_wire(const Response& response) {
    std::string wire = "HTTP/1.1 " + std::to_string(response.status) + " " +
                       std::string(status_text(response.status)) + "\r\n";
    wire += "Content-Type: " + response.content_type + "\r\n";
    wire += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
    for (const auto& [key, value] : response.headers)
        wire += key + ": " + value + "\r\n";
    wire += "Connection: close\r\n\r\n";
    wire += response.body;
    return wire;
}

bool write_all(int fd, std::string_view data) {
    while (!data.empty()) {
        const auto n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        data.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
}

} // namespace aalwines::server::http
