#include "server/workspace.hpp"

#include <algorithm>

namespace aalwines::server {

Workspace WorkspaceRegistry::add(Network&& network) {
    const util::MutexLock lock(_mutex);
    Workspace workspace;
    workspace.sequence = _next_sequence++;
    workspace.id = "n" + std::to_string(workspace.sequence);
    workspace.network = std::make_shared<const Network>(std::move(network));
    _workspaces.push_back(workspace);
    return workspace;
}

std::optional<Workspace> WorkspaceRegistry::find(const std::string& id) const {
    const util::MutexLock lock(_mutex);
    for (const auto& workspace : _workspaces)
        if (workspace.id == id) return workspace;
    return std::nullopt;
}

bool WorkspaceRegistry::update_network(const std::string& id,
                                       std::shared_ptr<const Network> network,
                                       std::uint64_t generation) {
    const util::MutexLock lock(_mutex);
    for (auto& workspace : _workspaces) {
        if (workspace.id != id) continue;
        workspace.network = std::move(network);
        workspace.generation = generation;
        return true;
    }
    return false;
}

bool WorkspaceRegistry::erase(const std::string& id) {
    const util::MutexLock lock(_mutex);
    const auto it = std::find_if(_workspaces.begin(), _workspaces.end(),
                                 [&](const Workspace& w) { return w.id == id; });
    if (it == _workspaces.end()) return false;
    _workspaces.erase(it);
    return true;
}

std::vector<Workspace> WorkspaceRegistry::list() const {
    const util::MutexLock lock(_mutex);
    return _workspaces;
}

std::size_t WorkspaceRegistry::size() const {
    const util::MutexLock lock(_mutex);
    return _workspaces.size();
}

} // namespace aalwines::server
