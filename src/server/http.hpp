#pragma once
// Minimal HTTP/1.1 message layer for the verification daemon: enough of
// RFC 9112 to serve JSON to curl and the bundled client — request-line +
// headers + Content-Length bodies, `Expect: 100-continue`, and exactly one
// request per connection (every response carries `Connection: close`).
// Self-contained over POSIX sockets; no external dependencies.

#include <cstddef>
#include <map>
#include <string>
#include <string_view>

namespace aalwines::server::http {

struct Request {
    std::string method;  ///< upper-case, e.g. "GET"
    std::string target;  ///< path only; any query string lands in `query`
    std::string query;   ///< raw query string without the '?', may be empty
    std::map<std::string, std::string> headers; ///< keys lower-cased
    std::string body;

    [[nodiscard]] const std::string* header(const std::string& lower_key) const {
        const auto it = headers.find(lower_key);
        return it == headers.end() ? nullptr : &it->second;
    }

    /// True when the raw query string carries `key=value` (or a bare `key`
    /// when `value` is empty) as one of its `&`-separated parameters.
    /// Sufficient for the daemon's un-escaped parameters (e.g.
    /// `format=prometheus`); no percent-decoding is performed.
    [[nodiscard]] bool query_parameter(std::string_view key,
                                       std::string_view value) const;
};

struct Response {
    int status = 200;
    std::string content_type = "application/json";
    std::map<std::string, std::string> headers; ///< extra headers, as-is
    std::string body;
};

/// Reason phrase for the status codes the daemon emits.
[[nodiscard]] std::string_view status_text(int status);

enum class ReadStatus {
    Ok,        ///< request fully parsed
    Closed,    ///< peer closed before sending a (complete) request
    Malformed, ///< unparsable request line / headers / length
    TooLarge,  ///< headers or body exceed the configured limits
    TimedOut,  ///< socket receive timeout expired mid-request
};

/// Read one request from a connected socket.  Sends `100 Continue` itself
/// when the client expects it.  `max_body` bounds the declared
/// Content-Length; headers are capped at 64 KiB.
[[nodiscard]] ReadStatus read_request(int fd, Request& request, std::size_t max_body);

/// Serialise a response (status line, headers, body) ready for write().
[[nodiscard]] std::string to_wire(const Response& response);

/// Write all of `data` to the socket; false on error/short write.
bool write_all(int fd, std::string_view data);

} // namespace aalwines::server::http
