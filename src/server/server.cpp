#include "server/server.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "telemetry/telemetry.hpp"

namespace aalwines::server {

namespace {

void set_timeout(int fd, int option, long ms) {
    if (ms <= 0) return;
    timeval tv{};
    tv.tv_sec = ms / 1000;
    tv.tv_usec = (ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof tv);
}

void close_quietly(int fd) {
    if (fd >= 0) ::close(fd);
}

} // namespace

Server::Server(Service& service, ServerConfig config)
    : _service(service), _config(std::move(config)) {
    if (_config.workers == 0)
        _config.workers = std::max(1u, std::thread::hardware_concurrency());
    if (_config.queue_capacity == 0) _config.queue_capacity = 1;
}

Server::~Server() {
    if (_started) stop();
    close_quietly(_wake_read);
    close_quietly(_wake_write);
}

void Server::start() {
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) throw std::runtime_error("pipe() failed");
    _wake_read = pipe_fds[0];
    _wake_write = pipe_fds[1];
    ::fcntl(_wake_read, F_SETFD, FD_CLOEXEC);
    ::fcntl(_wake_write, F_SETFD, FD_CLOEXEC);

    _listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (_listen_fd < 0) throw std::runtime_error("socket() failed");
    const int yes = 1;
    ::setsockopt(_listen_fd, SOL_SOCKET, SO_REUSEADDR, &yes, sizeof yes);

    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(_config.port);
    if (::inet_pton(AF_INET, _config.bind_address.c_str(), &address.sin_addr) != 1) {
        close_quietly(_listen_fd);
        _listen_fd = -1;
        throw std::runtime_error("invalid bind address '" + _config.bind_address + "'");
    }
    if (::bind(_listen_fd, reinterpret_cast<sockaddr*>(&address), sizeof address) != 0 ||
        ::listen(_listen_fd, 128) != 0) {
        const std::string reason = std::strerror(errno);
        close_quietly(_listen_fd);
        _listen_fd = -1;
        throw std::runtime_error("cannot listen on " + _config.bind_address + ":" +
                                 std::to_string(_config.port) + ": " + reason);
    }
    sockaddr_in bound{};
    socklen_t bound_size = sizeof bound;
    ::getsockname(_listen_fd, reinterpret_cast<sockaddr*>(&bound), &bound_size);
    _port = ntohs(bound.sin_port);

    _service.set_runtime_info([this] {
        json::Object info;
        info.emplace("queueDepth", queue_depth());
        info.emplace("queueCapacity", _config.queue_capacity);
        info.emplace("workers", _config.workers);
        info.emplace("port", static_cast<std::size_t>(_port));
        return info;
    });

    _started = true;
    _acceptor = std::thread([this] { accept_loop(); });
    _workers.reserve(_config.workers);
    for (std::size_t i = 0; i < _config.workers; ++i)
        _workers.emplace_back([this] { worker_loop(); });
}

void Server::request_stop() noexcept {
    if (_wake_write < 0) return;
    const char byte = 1;
    // Async-signal-safe: a single write(); the acceptor does the rest.
    [[maybe_unused]] const auto ignored = ::write(_wake_write, &byte, 1);
}

void Server::wait() {
    {
        const util::MutexLock lock(_mutex);
        if (_join_started) {
            // Another thread is already joining (e.g. the signal waiter
            // racing the main thread's stop()).  Returning here would hand
            // the caller a daemon that is still serving; block until the
            // drain really finished instead.
            while (!_join_done) _join_cv.wait(_mutex);
            return;
        }
        _join_started = true;
    }
    if (_acceptor.joinable()) _acceptor.join();
    for (auto& worker : _workers)
        if (worker.joinable()) worker.join();
    {
        const util::MutexLock lock(_mutex);
        _join_done = true;
    }
    _join_cv.notify_all();
}

void Server::stop() {
    request_stop();
    wait();
}

std::size_t Server::queue_depth() const {
    const util::MutexLock lock(_mutex);
    return _queue.size();
}

void Server::accept_loop() {
    for (;;) {
        pollfd fds[2] = {{_listen_fd, POLLIN, 0}, {_wake_read, POLLIN, 0}};
        const int ready = ::poll(fds, 2, -1);
        if (ready < 0) {
            if (errno == EINTR) continue;
            break;
        }
        if ((fds[1].revents & POLLIN) != 0) break; // drain requested
        if ((fds[0].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) break;
        if ((fds[0].revents & POLLIN) == 0) continue;

        const int fd = ::accept(_listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN) continue;
            break; // EMFILE storms and fatal errors both end up draining
        }
        set_timeout(fd, SO_RCVTIMEO, _config.recv_timeout_ms);
        set_timeout(fd, SO_SNDTIMEO, _config.send_timeout_ms);

        bool admitted = false;
        {
            const util::MutexLock lock(_mutex);
            if (_queue.size() < _config.queue_capacity) {
                _queue.push_back({fd, std::chrono::steady_clock::now()});
                telemetry::gauge_max(telemetry::Gauge::server_queue_high_water,
                                     _queue.size());
                admitted = true;
            }
        }
        if (admitted) {
            _ready.notify_one();
            continue;
        }
        // Admission control: reply 503 without consuming the request.
        telemetry::count(telemetry::Counter::server_rejected);
        auto response = error_response(503, "verification queue is full");
        response.headers.emplace("Retry-After",
                                 std::to_string(_config.retry_after_seconds));
        http::write_all(fd, http::to_wire(response));
        close_quietly(fd);
    }
    close_quietly(_listen_fd);
    _listen_fd = -1;
    {
        const util::MutexLock lock(_mutex);
        _draining = true;
    }
    _ready.notify_all();
}

void Server::worker_loop() {
    for (;;) {
        Pending pending;
        {
            const util::MutexLock lock(_mutex);
            while (!_draining && _queue.empty()) _ready.wait(_mutex);
            if (_queue.empty()) return; // draining and nothing left
            pending = _queue.front();
            _queue.pop_front();
        }
        serve_connection(pending);
    }
}

void Server::serve_connection(Pending pending) {
    http::Request request;
    const auto status = http::read_request(pending.fd, request, _config.max_body_bytes);
    http::Response response;
    bool respond = true;
    switch (status) {
        case http::ReadStatus::Ok: {
            if (_config.deadline_ms > 0 &&
                std::chrono::steady_clock::now() - pending.accepted >
                    std::chrono::milliseconds(_config.deadline_ms)) {
                response = error_response(504, "request exceeded its deadline queued");
                break;
            }
            if (_config.on_request) _config.on_request(request);
            const auto queue_wait =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - pending.accepted)
                    .count();
            response = _service.handle(request, queue_wait);
            break;
        }
        case http::ReadStatus::Closed: respond = false; break;
        case http::ReadStatus::Malformed:
            response = error_response(400, "malformed HTTP request");
            break;
        case http::ReadStatus::TooLarge:
            response = error_response(413, "request exceeds the configured body limit");
            break;
        case http::ReadStatus::TimedOut:
            response = error_response(408, "timed out reading the request");
            break;
    }
    if (respond) http::write_all(pending.fd, http::to_wire(response));
    close_quietly(pending.fd);
}

} // namespace aalwines::server
