#include "server/cache.hpp"

#include <chrono>

#include "telemetry/telemetry.hpp"

namespace aalwines::server {

std::string cache_key(std::uint64_t sequence, std::uint64_t generation,
                      const std::string& query_text,
                      const std::string& engine, const std::string& weight,
                      int reduction, std::size_t witnesses, std::size_t max_iterations,
                      bool trace, const std::string& translation) {
    // '\x1f' (ASCII unit separator) cannot appear in query or weight text.
    std::string key = cache_scope(sequence);
    key += std::to_string(generation);
    key += '\x1f';
    key += engine;
    key += '\x1f';
    key += weight;
    key += '\x1f';
    key += std::to_string(reduction);
    key += '\x1f';
    key += std::to_string(witnesses);
    key += '\x1f';
    key += std::to_string(max_iterations);
    key += '\x1f';
    key += trace ? '1' : '0';
    key += '\x1f';
    key += translation;
    key += '\x1f';
    key += query_text;
    return key;
}

std::string cache_scope(std::uint64_t sequence) {
    return std::to_string(sequence) + '\x1f';
}

std::shared_ptr<const verify::VerifyResult> ResultCache::find(const std::string& key) {
    if (_capacity == 0) return nullptr;
    const auto start = std::chrono::steady_clock::now();
    std::shared_ptr<const verify::VerifyResult> result;
    {
        const util::MutexLock lock(_mutex);
        const auto it = _index.find(key);
        if (it != _index.end()) {
            _order.splice(_order.begin(), _order, it->second);
            result = it->second->result;
        }
    }
    telemetry::count(result != nullptr ? telemetry::Counter::server_cache_hits
                                       : telemetry::Counter::server_cache_misses);
    telemetry::observe_duration(
        telemetry::Histogram::cache_lookup,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count());
    return result;
}

void ResultCache::insert(const std::string& key,
                         std::shared_ptr<const verify::VerifyResult> result) {
    if (_capacity == 0) return;
    const util::MutexLock lock(_mutex);
    if (const auto it = _index.find(key); it != _index.end()) {
        it->second->result = std::move(result);
        _order.splice(_order.begin(), _order, it->second);
        return;
    }
    _order.push_front({key, std::move(result)});
    _index.emplace(key, _order.begin());
    evict_locked();
}

std::size_t ResultCache::invalidate(const std::string& prefix) {
    if (_capacity == 0) return 0;
    std::size_t dropped = 0;
    {
        const util::MutexLock lock(_mutex);
        for (auto it = _order.begin(); it != _order.end();) {
            if (it->key.compare(0, prefix.size(), prefix) != 0) {
                ++it;
                continue;
            }
            _index.erase(it->key);
            it = _order.erase(it);
            ++dropped;
        }
    }
    if (dropped > 0) telemetry::count(telemetry::Counter::server_cache_evictions, dropped);
    return dropped;
}

void ResultCache::evict_locked() {
    std::size_t dropped = 0;
    while (_order.size() > _capacity) {
        _index.erase(_order.back().key);
        _order.pop_back();
        ++dropped;
    }
    if (dropped > 0)
        telemetry::count(telemetry::Counter::server_cache_evictions, dropped);
    // Under the mutex: the size is settled, so concurrent inserts cannot
    // publish a high-water mark the cache never actually reached.
    telemetry::gauge_max(telemetry::Gauge::cache_entries_high_water, _order.size());
}

std::size_t ResultCache::size() const {
    const util::MutexLock lock(_mutex);
    return _order.size();
}

} // namespace aalwines::server
