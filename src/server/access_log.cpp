#include "server/access_log.hpp"

#include <cstdio>
#include <ctime>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

namespace aalwines::server {

AccessLog::AccessLog(std::string path, std::uint32_t slow_ms) : _slow_ms(slow_ms) {
    if (path.empty()) return;
    if (path == "-") {
        _fd = ::dup(STDOUT_FILENO);
    } else {
        _fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
    }
    if (_fd < 0) throw std::runtime_error("cannot open access log '" + path + "'");
}

AccessLog::~AccessLog() {
    if (_fd >= 0) ::close(_fd);
}

void AccessLog::write(json::Object record, bool slow) {
    const bool to_file = _fd >= 0;
    const bool to_stderr = slow && !to_file;
    if (!to_file && !to_stderr) return;
    const util::MutexLock lock(_mutex);
    // Id and write share one critical section: two requests can otherwise
    // mint ids 1 and 2 but land in the file in the opposite order, breaking
    // the "record N carries id N" contract the smoke tests rely on.
    record.insert_or_assign("id", json::Value(++_next_id));
    auto line = json::write(json::Value(std::move(record)), 0);
    line.push_back('\n');
    if (to_file) {
        std::string_view rest = line;
        while (!rest.empty()) {
            const auto n = ::write(_fd, rest.data(), rest.size());
            if (n <= 0) break; // logging must never fail the request
            rest.remove_prefix(static_cast<std::size_t>(n));
        }
    } else {
        std::fputs(line.c_str(), stderr);
    }
}

std::string log_timestamp() {
    const auto now = std::time(nullptr);
    std::tm utc{};
    gmtime_r(&now, &utc);
    char buf[32];
    std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &utc);
    return buf;
}

std::string stable_hash_hex(const std::string& text) {
    std::uint64_t hash = 14695981039346656037ull; // FNV-1a offset basis
    for (const unsigned char c : text) {
        hash ^= c;
        hash *= 1099511628211ull; // FNV prime
    }
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(hash));
    return buf;
}

} // namespace aalwines::server
