#include "cli/options.hpp"

#include <charconv>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "io/formats.hpp"
#include "io/isis.hpp"
#include "pda/solver.hpp"
#include "synthesis/networks.hpp"
#include "synthesis/queries.hpp"

namespace aalwines::cli {

namespace {

/// Strict unsigned parse for option values; throws usage_error on garbage.
std::size_t parse_size(const std::string& flag, const std::string& text) {
    std::size_t value = 0;
    const auto* end = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(text.data(), end, value);
    if (ec != std::errc() || ptr != end)
        throw usage_error(flag + " expects a non-negative integer, got '" + text + "'");
    return value;
}

int parse_int(const std::string& flag, const std::string& text) {
    int value = 0;
    const auto* end = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(text.data(), end, value);
    if (ec != std::errc() || ptr != end)
        throw usage_error(flag + " expects an integer, got '" + text + "'");
    return value;
}

Network load_demo(const std::string& demo) {
    if (demo == "figure1") return synthesis::make_figure1_network();
    if (demo == "nordunet") return std::move(synthesis::make_nordunet_like().network);
    if (demo.rfind("zoo:", 0) == 0) {
        const auto index = parse_size("--demo zoo:", demo.substr(4));
        return std::move(synthesis::make_zoo_like(index).net.network);
    }
    throw usage_error("unknown demo '" + demo + "' (figure1, nordunet or zoo:N)");
}

} // namespace

std::vector<std::string> demo_query_battery(const std::string& demo, std::size_t count) {
    synthesis::QueryBatteryOptions options;
    if (count > 0) options.count = count;
    // Re-synthesize the demo: the battery needs the SyntheticNetwork's edge
    // metadata, which load_demo discards.  Deterministic, so the queries
    // target the same network the caller loaded.
    if (demo == "nordunet")
        return synthesis::make_query_battery(synthesis::make_nordunet_like(), options);
    if (demo.rfind("zoo:", 0) == 0) {
        const auto index = parse_size("--demo zoo:", demo.substr(4));
        return synthesis::make_query_battery(synthesis::make_zoo_like(index).net, options);
    }
    throw usage_error("--battery needs --demo nordunet or --demo zoo:N "
                      "(query batteries are generated from synthesis metadata)");
}

namespace {

Network load_gml_text(const std::string& text, const std::string& fallback_name) {
    synthesis::SyntheticTopology topo;
    std::string name;
    topo.topology = io::read_gml(text, &name);
    // Low-degree routers act as edges, as in the zoo pipeline.
    for (RouterId r = 0; r < topo.topology.router_count(); ++r)
        if (topo.topology.out_links(r).size() <= 2) topo.edge_routers.push_back(r);
    if (topo.edge_routers.size() < 2)
        for (RouterId r = 0; r < std::min<std::size_t>(4, topo.topology.router_count()); ++r)
            topo.edge_routers.push_back(r);
    synthesis::DataplaneOptions options;
    options.max_lsp_pairs = topo.topology.router_count() * 4;
    auto net = synthesis::build_dataplane(std::move(topo), options);
    net.network.name = name.empty() ? fallback_name : name;
    return std::move(net.network);
}

} // namespace

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw io_error("cannot open '" + path + "'");
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

Network load_network(const NetworkSource& source) {
    if (!source.demo.empty()) return load_demo(source.demo);
    if (!source.isis_file.empty()) {
        const auto base = std::filesystem::path(source.isis_file).parent_path();
        const auto entries = io::parse_isis_mapping(read_file(source.isis_file));
        std::vector<io::IsisRouterDocuments> documents;
        for (const auto& entry : entries) {
            io::IsisRouterDocuments doc;
            doc.entry = entry;
            if (!entry.is_edge()) {
                doc.adjacency_xml = read_file((base / entry.adjacency_file).string());
                doc.route_xml = read_file((base / entry.route_file).string());
                doc.pfe_xml = read_file((base / entry.pfe_file).string());
            }
            documents.push_back(std::move(doc));
        }
        return io::read_isis(documents);
    }
    if (!source.gml_file.empty())
        return load_gml_text(read_file(source.gml_file), source.gml_file);
    if (!source.topology_file.empty() && !source.routing_file.empty())
        return io::read_network_xml(read_file(source.topology_file),
                                    read_file(source.routing_file));
    if (!source.topology_file.empty() || !source.routing_file.empty())
        throw usage_error("--topology and --routing must be given together");
    throw usage_error("no network given (use --topology/--routing, --gml or --demo)");
}

Network load_network(const NetworkDocuments& documents) {
    Network network = [&] {
        if (!documents.demo.empty()) return load_demo(documents.demo);
        if (!documents.gml.empty()) return load_gml_text(documents.gml, "gml");
        if (!documents.topology_xml.empty() && !documents.routing_xml.empty())
            return io::read_network_xml(documents.topology_xml, documents.routing_xml);
        throw usage_error(
            "no network given (need demo, gml, or topologyXml + routingXml)");
    }();
    if (!documents.locations_json.empty())
        io::apply_locations_json(documents.locations_json, network.topology);
    return network;
}

verify::VerifyOptions make_verify_options(const VerifySpec& spec, WeightExpr& weights) {
    verify::VerifyOptions options;
    if (spec.reduction < 0 || spec.reduction > 2)
        throw usage_error("--reduction expects 0, 1 or 2");
    options.reduction_level = spec.reduction;
    options.build_trace = spec.trace;
    options.max_witnesses = spec.witnesses;
    options.max_iterations = spec.max_iterations;
    if (!spec.weight.empty()) {
        weights = parse_weight_expression(spec.weight);
        options.weights = &weights;
        options.engine = verify::EngineKind::Weighted;
    }
    if (spec.engine == "moped") options.engine = verify::EngineKind::Moped;
    else if (spec.engine == "exact") options.engine = verify::EngineKind::Exact;
    else if (spec.engine == "weighted") {
        options.engine = verify::EngineKind::Weighted;
        if (options.weights == nullptr)
            throw usage_error("engine 'weighted' requires a weight expression");
    } else if (spec.engine != "dual") {
        throw usage_error("unknown engine '" + spec.engine +
                          "' (moped, dual, weighted or exact)");
    }
    if (spec.translation == "lazy") options.translation = verify::TranslationMode::Lazy;
    else if (spec.translation == "eager")
        options.translation = verify::TranslationMode::Eager;
    else if (spec.translation != "auto")
        throw usage_error("unknown translation mode '" + spec.translation +
                          "' (auto, lazy or eager)");
    if (!spec.solver_threads.empty()) {
        if (spec.solver_threads == "auto") {
            options.solver_threads = pda::k_solver_threads_auto;
        } else {
            options.solver_threads = parse_size("--solver-threads", spec.solver_threads);
            if (options.solver_threads == 0)
                throw usage_error("--solver-threads expects a positive count or 'auto'");
        }
    }
    return options;
}

std::vector<std::string> split_queries(const std::string& text) {
    std::vector<std::string> queries;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        // '#' only comments out whole lines: inside a query it is the
        // router#router separator of link atoms like [.#v0].
        const auto start = line.find_first_not_of(" \t\r");
        if (start == std::string::npos || line[start] == '#') continue;
        std::istringstream parts(line);
        std::string part;
        while (std::getline(parts, part, ';')) {
            const auto first = part.find_first_not_of(" \t\r");
            if (first == std::string::npos) continue;
            const auto last = part.find_last_not_of(" \t\r");
            queries.push_back(part.substr(first, last - first + 1));
        }
    }
    return queries;
}

Cli parse_cli(int argc, char** argv) {
    Cli cli;
    auto value = [&](int& i) -> std::string {
        if (i + 1 >= argc)
            throw usage_error(std::string("option '") + argv[i] + "' expects a value");
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--topology") cli.source.topology_file = value(i);
        else if (arg == "--routing") cli.source.routing_file = value(i);
        else if (arg == "--gml") cli.source.gml_file = value(i);
        else if (arg == "--isis") cli.source.isis_file = value(i);
        else if (arg == "--demo") cli.source.demo = value(i);
        else if (arg == "--locations") cli.source.locations_file = value(i);
        else if (arg == "--query" || arg == "-q") cli.queries.push_back(value(i));
        else if (arg == "--engine") cli.spec.engine = value(i);
        else if (arg == "--translation") cli.spec.translation = value(i);
        else if (arg == "--weight") cli.spec.weight = value(i);
        else if (arg == "--reduction") cli.spec.reduction = parse_int(arg, value(i));
        else if (arg == "--jobs") cli.jobs = parse_size(arg, value(i));
        else if (arg == "--queries-file") cli.queries_file = value(i);
        else if (arg == "--battery") cli.battery = parse_size(arg, value(i));
        else if (arg == "--interactive") cli.interactive = true;
        else if (arg == "--witnesses") cli.spec.witnesses = parse_size(arg, value(i));
        else if (arg == "--max-iterations")
            cli.spec.max_iterations = parse_size(arg, value(i));
        else if (arg == "--solver-threads") cli.spec.solver_threads = value(i);
        else if (arg == "--no-trace") cli.spec.trace = false;
        else if (arg == "--validate") cli.validate = true;
        else if (arg == "--validate=deep") cli.validate = cli.validate_deep = true;
        else if (arg == "--json") cli.as_json = true;
        else if (arg == "--html") cli.html_file = value(i);
        else if (arg == "--trace-json") cli.trace_json_file = value(i);
        else if (arg == "--trace-chrome") cli.trace_chrome_file = value(i);
        else if (arg == "--stats") cli.stats = true;
        else if (arg == "--explain") cli.explain = true;
        else if (arg == "--write-topology") cli.write_topology = value(i);
        else if (arg == "--write-routing") cli.write_routing = value(i);
        else if (arg == "--write-gml") cli.write_gml = value(i);
        else if (arg == "--info") cli.info = true;
        else if (arg == "--help" || arg == "-h") cli.help = true;
        else throw usage_error("unknown option '" + arg + "'");
    }
    return cli;
}

SweepCli parse_sweep_cli(int argc, char** argv, int first) {
    SweepCli sweep;
    auto value = [&](int& i) -> std::string {
        if (i + 1 >= argc)
            throw usage_error(std::string("option '") + argv[i] + "' expects a value");
        return argv[++i];
    };
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--topology") sweep.source.topology_file = value(i);
        else if (arg == "--routing") sweep.source.routing_file = value(i);
        else if (arg == "--gml") sweep.source.gml_file = value(i);
        else if (arg == "--isis") sweep.source.isis_file = value(i);
        else if (arg == "--demo") sweep.source.demo = value(i);
        else if (arg == "--locations") sweep.source.locations_file = value(i);
        else if (arg == "--template") sweep.query_template = value(i);
        else if (arg == "--pair") {
            const auto pair = value(i);
            const auto colon = pair.find(':');
            if (colon == std::string::npos || colon == 0 || colon + 1 == pair.size())
                throw usage_error("--pair expects SRC:DST, got '" + pair + "'");
            sweep.pairs.emplace_back(pair.substr(0, colon), pair.substr(colon + 1));
        } else if (arg == "--k") {
            std::istringstream parts(value(i));
            std::string part;
            while (std::getline(parts, part, ','))
                sweep.budgets.push_back(parse_size("--k", part));
            if (sweep.budgets.empty()) throw usage_error("--k expects N[,M,...]");
        } else if (arg == "--scenarios") sweep.scenarios_file = value(i);
        else if (arg == "--single-failures") {
            sweep.single_failures = true;
            sweep.single_failure_cap = parse_size(arg, value(i));
        } else if (arg == "--engine") sweep.spec.engine = value(i);
        else if (arg == "--translation") sweep.spec.translation = value(i);
        else if (arg == "--weight") sweep.spec.weight = value(i);
        else if (arg == "--reduction") sweep.spec.reduction = parse_int(arg, value(i));
        else if (arg == "--max-iterations")
            sweep.spec.max_iterations = parse_size(arg, value(i));
        else if (arg == "--solver-threads") sweep.spec.solver_threads = value(i);
        else if (arg == "--no-trace") sweep.spec.trace = false;
        else if (arg == "--witnesses") sweep.spec.witnesses = parse_size(arg, value(i));
        else if (arg == "--jobs") sweep.jobs = parse_size(arg, value(i));
        else if (arg == "--json") sweep.as_json = true;
        else if (arg == "--stats") sweep.stats = true;
        else if (arg == "--help" || arg == "-h") sweep.help = true;
        else throw usage_error("unknown option '" + arg + "'");
    }
    return sweep;
}

std::vector<verify::SweepScenario> scenarios_from_json(const json::Value& value) {
    if (!value.is_array())
        throw usage_error("scenarios must be a JSON array of scenario objects");
    std::vector<verify::SweepScenario> scenarios;
    scenarios.reserve(value.as_array().size());
    for (const auto& entry : value.as_array()) {
        if (!entry.is_object())
            throw usage_error("each scenario must be an object with 'failedLinks'");
        verify::SweepScenario scenario;
        if (const auto* name = entry.find("name"); name != nullptr) {
            if (!name->is_string())
                throw usage_error("scenario 'name' must be a string");
            scenario.name = name->as_string();
        }
        if (const auto* links = entry.find("failedLinks"); links != nullptr) {
            if (!links->is_array())
                throw usage_error("scenario 'failedLinks' must be an array of "
                                  "[router, interface] pairs");
            for (const auto& link : links->as_array()) {
                if (!link.is_array() || link.as_array().size() != 2 ||
                    !link.as_array()[0].is_string() || !link.as_array()[1].is_string())
                    throw usage_error("each failed link must be a [router, interface] "
                                      "string pair");
                scenario.failed_links.emplace_back(link.as_array()[0].as_string(),
                                                   link.as_array()[1].as_string());
            }
        }
        scenarios.push_back(std::move(scenario));
    }
    return scenarios;
}

void append_single_failure_scenarios(verify::SweepSpec& spec, const Network& network,
                                     std::size_t cap) {
    auto generated = verify::make_single_failure_scenarios(network, cap);
    // The generated battery leads with its own baseline; keep it only when
    // no explicit scenarios cover the grid yet.
    const auto begin =
        spec.scenarios.empty() ? generated.begin() : generated.begin() + 1;
    spec.scenarios.insert(spec.scenarios.end(), std::make_move_iterator(begin),
                          std::make_move_iterator(generated.end()));
}

verify::SweepSpec make_sweep_spec(const SweepCli& sweep, const Network& network) {
    if (sweep.query_template.empty())
        throw usage_error("sweep needs --template (with {src}/{dst}/{k} placeholders)");
    verify::SweepSpec spec;
    spec.query_template = sweep.query_template;
    spec.endpoint_pairs = sweep.pairs;
    spec.failure_budgets = sweep.budgets;
    if (!sweep.scenarios_file.empty())
        spec.scenarios = scenarios_from_json(json::parse(read_file(sweep.scenarios_file)));
    if (sweep.single_failures)
        append_single_failure_scenarios(spec, network, sweep.single_failure_cap);
    return spec;
}

ServeCli parse_serve_cli(int argc, char** argv, int first) {
    ServeCli serve;
    auto value = [&](int& i) -> std::string {
        if (i + 1 >= argc)
            throw usage_error(std::string("option '") + argv[i] + "' expects a value");
        return argv[++i];
    };
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--port") serve.port = parse_int(arg, value(i));
        else if (arg == "--bind") serve.bind_address = value(i);
        else if (arg == "--workers") serve.workers = parse_size(arg, value(i));
        else if (arg == "--queue") serve.queue_capacity = parse_size(arg, value(i));
        else if (arg == "--cache") serve.cache_capacity = parse_size(arg, value(i));
        else if (arg == "--deadline-ms") serve.deadline_ms = parse_int(arg, value(i));
        else if (arg == "--max-body-mb")
            serve.max_body_bytes = parse_size(arg, value(i)) << 20;
        else if (arg == "--topology") serve.preload.topology_file = value(i);
        else if (arg == "--routing") serve.preload.routing_file = value(i);
        else if (arg == "--gml") serve.preload.gml_file = value(i);
        else if (arg == "--isis") serve.preload.isis_file = value(i);
        else if (arg == "--demo") serve.preload.demo = value(i);
        else if (arg == "--locations") serve.preload.locations_file = value(i);
        else if (arg == "--access-log") serve.access_log = value(i);
        else if (arg == "--slow-query-ms") serve.slow_query_ms = parse_size(arg, value(i));
        else if (arg == "--help" || arg == "-h") serve.help = true;
        else throw usage_error("unknown option '" + arg + "'");
    }
    if (serve.port < 0 || serve.port > 65535)
        throw usage_error("--port expects 0..65535");
    return serve;
}

} // namespace aalwines::cli
