// aalwines — command-line front end for the AalWiNes what-if analysis
// engine.  Loads a network (vendor-agnostic XML, a bundled demo network, or
// a Topology Zoo GML), verifies queries with the selected engine, and
// prints results as text or JSON.  `aalwines serve` runs the same pipeline
// as a long-lived HTTP daemon (docs/SERVER.md).
//
// Exit codes: 0 ok · 1 load/runtime error · 2 usage error ·
// 3 inconclusive or failed query · 4 validation violation.

#include <algorithm>
#include <csignal>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/options.hpp"
#include "io/formats.hpp"
#include "io/html_report.hpp"
#include "io/results_json.hpp"
#include "json/json.hpp"
#include "model/quantity.hpp"
#include "server/server.hpp"
#include "telemetry/exposition.hpp"
#include "telemetry/telemetry.hpp"
#include "validate/cross_check.hpp"
#include "verify/batch.hpp"
#include "verify/engine.hpp"

namespace {

using namespace aalwines;

void usage(std::ostream& out) {
    out <<
        "usage: aalwines [options] --query '<a> b <c> k'\n"
        "       aalwines serve [options]   (run the HTTP daemon, see below)\n"
        "       aalwines sweep [options]   (amortized what-if battery, see below)\n"
        "\n"
        "network sources (choose one):\n"
        "  --topology FILE --routing FILE   vendor-agnostic XML (Appendix A)\n"
        "  --isis MAPPING                   IS-IS export mapping file (Appendix A.1);\n"
        "                                   referenced XML files resolve relative to it\n"
        "  --gml FILE                       Topology Zoo GML (synthesizes a dataplane)\n"
        "  --demo figure1|nordunet|zoo:N    bundled demo networks\n"
        "\n"
        "options:\n"
        "  --query Q            query to verify (repeatable)\n"
        "  --engine E           moped | dual | weighted | exact  (default dual)\n"
        "  --weight W           weight vector, e.g. 'hops, failures + 3*tunnels'\n"
        "                       (implies --engine weighted)\n"
        "  --reduction N        PDA reduction level 0|1|2  (default 2)\n"
        "  --translation M      PDA rule materialization: auto | lazy | eager\n"
        "                       (auto: demand-driven for dual/weighted, eager\n"
        "                       for moped/exact)\n"
        "  --locations FILE     apply router coordinates (JSON)\n"
        "  --queries-file F     read one query per line from F ('#' comments)\n"
        "  --battery N          also verify N generated battery queries (the\n"
        "                       paper-suite shapes; needs --demo nordunet|zoo:N)\n"
        "  --interactive        read queries from stdin, one per line (the\n"
        "                       network stays loaded; ';' separates queries on\n"
        "                       a line; quit with EOF or 'quit')\n"
        "  --jobs N             verify queries on N worker threads (default 1)\n"
        "  --max-iterations N   per-saturation iteration cap (0 = unlimited)\n"
        "  --solver-threads T   saturation worker threads: a count, or 'auto'\n"
        "                       to size from the hardware (default: the\n"
        "                       AALWINES_SOLVER_THREADS env var, else 1);\n"
        "                       answers and weights are thread-independent\n"
        "  --no-trace           do not reconstruct witness traces\n"
        "  --witnesses N        enumerate up to N distinct witness traces\n"
        "  --validate           check network well-formedness and replay every\n"
        "                       witness trace through the dataplane semantics\n"
        "  --validate=deep      additionally cross-check answers against the\n"
        "                       Moped baseline and (when tractable) the exact\n"
        "                       engine (see docs/CORRECTNESS.md)\n"
        "  --json               machine-readable output\n"
        "  --html FILE          write an HTML report with topology + witness paths\n"
        "  --stats              print engine statistics\n"
        "  --explain            print a per-query phase breakdown (translate /\n"
        "                       reduce / saturate / accept / witness, per pass,\n"
        "                       plus materialized vs total rules)\n"
        "  --trace-json FILE    write the telemetry trace (span tree + counters)\n"
        "                       as JSON on exit (see docs/OBSERVABILITY.md)\n"
        "  --trace-chrome FILE  write the span tree as Chrome trace-event JSON\n"
        "                       on exit (opens in ui.perfetto.dev)\n"
        "  --write-topology F   write the loaded topology as XML and exit\n"
        "  --write-routing F    write the loaded routing as XML and exit\n"
        "  --write-gml F        write the loaded topology as GML and exit\n"
        "  --info               print network statistics and exit\n"
        "\n"
        "serve options (see docs/SERVER.md for the HTTP API):\n"
        "  --port N             listen port (default 0 = ephemeral, printed)\n"
        "  --bind ADDR          bind address (default 127.0.0.1)\n"
        "  --workers N          worker threads (default: hardware concurrency)\n"
        "  --queue N            pending-request bound; overflow answers 503\n"
        "                       with Retry-After (default 64)\n"
        "  --cache N            compiled-query LRU capacity, 0 = off (default 256)\n"
        "  --deadline-ms N      expire requests that waited longer (504; 0 = off)\n"
        "  --max-body-mb N      request body limit (default 64)\n"
        "  --access-log FILE    append one JSON line per request ('-' = stdout;\n"
        "                       see docs/OBSERVABILITY.md for the record fields)\n"
        "  --slow-query-ms N    flag requests slower than N ms in the access\n"
        "                       log with full query detail (without\n"
        "                       --access-log, slow requests go to stderr)\n"
        "  plus any network source flags above to preload a workspace\n"
        "\n"
        "sweep options (amortize translation/saturation across a grid of\n"
        "queries; see docs/PERFORMANCE.md):\n"
        "  --template T         query template; {src}, {dst} and {k} expand per\n"
        "                       cell, e.g. '<ip> [.#{src}] .* [{dst}#.] <ip> {k}'\n"
        "  --pair SRC:DST       endpoint-pair axis (repeatable)\n"
        "  --k N[,M,...]        failure-budget axis\n"
        "  --scenarios FILE     link-failure scenarios as JSON:\n"
        "                       [{\"name\": \"...\", \"failedLinks\": [[router,\n"
        "                       out-interface], ...]}, ...]\n"
        "  --single-failures N  also sweep the baseline plus every single-link\n"
        "                       failure (capped at N scenarios; 0 = all links)\n"
        "  --jobs N             chain worker threads (default: hardware)\n"
        "  --json               emit the health-matrix JSON\n"
        "  --stats              include sharing accounting (and, with --json,\n"
        "                       per-cell engine stats)\n"
        "  plus network source and engine/verification flags above\n";
}

std::string read_file(const std::string& path) { return cli::read_file(path); }

void print_issues(const validate::Report& report, const std::string& subject) {
    for (const auto& issue : report.issues())
        std::cerr << "aalwines: validate: " << subject << ": "
                  << validate::to_string(issue.severity) << "(" << issue.component
                  << "): " << issue.message << "\n";
}

/// Witness replay (and, deep, cross-engine) validation of one query result.
/// Returns false when an error-severity issue was found.
bool validate_result(const Network& network, const std::string& query_text,
                     const verify::VerifyResult& result, const verify::VerifyOptions& options,
                     bool deep) {
    validate::Report report;
    try {
        const auto query = query::parse_query(query_text, network);
        report = validate::check_result(network, query, result, options.weights);
        if (deep) {
            validate::CrossCheckOptions cross;
            cross.weights = options.weights;
            cross.deep = true;
            cross.max_iterations = options.max_iterations;
            report.merge(validate::cross_check(network, query, cross).report);
        }
    } catch (const std::exception& error) {
        std::cerr << "aalwines: validate: " << query_text << ": " << error.what() << "\n";
        return false;
    }
    print_issues(report, query_text);
    return report.ok();
}

void write_trace_json(const std::string& path) {
    if (path.empty()) return;
    std::ofstream out(path);
    if (!out) {
        std::cerr << "aalwines: cannot write '" << path << "'\n";
        return;
    }
    out << telemetry::to_json(telemetry::snapshot(), 2) << "\n";
    std::cerr << "wrote " << path << "\n";
}

void write_trace_chrome(const std::string& path) {
    if (path.empty()) return;
    std::ofstream out(path);
    if (!out) {
        std::cerr << "aalwines: cannot write '" << path << "'\n";
        return;
    }
    out << telemetry::to_chrome_trace(telemetry::snapshot()) << "\n";
    std::cerr << "wrote " << path << " (open in ui.perfetto.dev)\n";
}

/// Both on-exit trace sinks; the snapshot is shared implicitly (each call
/// takes its own, but nothing runs between them).
void write_trace_outputs(const cli::Cli& cli) {
    write_trace_json(cli.trace_json_file);
    write_trace_chrome(cli.trace_chrome_file);
}

/// `--explain`: the per-pass phase breakdown of one result, from the same
/// PhaseStats the JSON stats output serialises.
void print_explain(const verify::VerifyStats& stats) {
    const auto pass = [](const char* name, const verify::PhaseStats& phase) {
        if (!phase.ran) return;
        const auto ms = [](double seconds) { return seconds * 1000.0; };
        std::cout << "  " << name << ": translate " << ms(phase.translate_seconds)
                  << "ms  reduce " << ms(phase.reduce_seconds) << "ms  saturate "
                  << ms(phase.saturate_seconds) << "ms  accept "
                  << ms(phase.accept_seconds) << "ms  witness "
                  << ms(phase.witness_seconds) << "ms  (phase total "
                  << ms(phase.seconds) << "ms)\n";
        std::cout << "    rules: " << phase.pda_rules_materialized << " materialized of "
                  << phase.pda_rules_total << " total";
        if (phase.lazy_translation && phase.pda_rules_total > 0)
            std::cout << " ("
                      << 100 * phase.pda_rules_materialized / phase.pda_rules_total
                      << "%, lazy; materialization happens inside saturate)";
        else if (!phase.lazy_translation)
            std::cout << " (eager)";
        std::cout << "\n";
        if (phase.truncated) std::cout << "    truncated: iteration cap hit\n";
    };
    std::cout << "  explain (total " << stats.total_seconds * 1000.0 << "ms):\n";
    pass("over pass ", stats.over);
    pass("under pass", stats.under);
}

void print_result_text(const Network& network, const verify::VerifyResult& result,
                       bool stats, bool explain) {
    std::cout << "  answer: " << to_string(result.answer);
    if (!result.weight.empty()) {
        std::cout << "  weight: (";
        for (std::size_t i = 0; i < result.weight.size(); ++i)
            std::cout << (i ? ", " : "") << result.weight[i];
        std::cout << ")";
    }
    std::cout << "\n";
    if (result.witnesses.size() > 1) {
        for (std::size_t w = 0; w < result.witnesses.size(); ++w) {
            std::cout << "  witness " << (w + 1) << ":\n"
                      << display_trace(network, result.witnesses[w]);
        }
    } else if (result.trace) {
        std::cout << "  witness trace:\n" << display_trace(network, *result.trace);
    }
    if (!result.note.empty()) std::cout << "  note: " << result.note << "\n";
    if (stats) {
        std::cout << "  time: " << result.stats.total_seconds << "s"
                  << "  pda-rules: " << result.stats.over.pda_rules << " (of "
                  << result.stats.over.pda_rules_before_reduction
                  << " before reduction)"
                  << "  saturation-iterations: "
                  << result.stats.over.saturation_iterations
                  << "  relaxations: " << result.stats.over.worklist_relaxations
                  << "  peak-worklist: " << result.stats.over.peak_worklist << "\n";
        if (result.stats.over.solver_threads > 1)
            std::cout << "  solver-threads: " << result.stats.over.solver_threads
                      << "  parallel-rounds: " << result.stats.over.parallel_rounds
                      << "  handoffs: " << result.stats.over.parallel_handoffs
                      << "  shard-imbalance: " << result.stats.over.shard_imbalance
                      << "\n";
        if (result.stats.over.lazy_translation)
            std::cout << "  materialized-rules: "
                      << result.stats.over.pda_rules_materialized << " of "
                      << result.stats.over.pda_rules_total
                      << "  materialized-states: "
                      << result.stats.over.pda_states_materialized << " of "
                      << result.stats.over.pda_states << "\n";
        if (result.stats.over.pda_rules_expanded != 0)
            std::cout << "  expanded-pda-rules: " << result.stats.over.pda_rules_expanded
                      << "  expanded-pda-states: " << result.stats.over.pda_states_expanded
                      << "\n";
        if (result.stats.under.ran)
            std::cout << "  under-phase: " << result.stats.under.saturation_iterations
                      << " iterations, " << result.stats.under.worklist_relaxations
                      << " relaxations, " << result.stats.under.seconds << "s\n";
    }
    if (explain) print_explain(result.stats);
}

// ---------------------------------------------------------------------------
// `aalwines serve`

server::Server* g_server = nullptr; ///< signal handler target

extern "C" void handle_stop_signal(int) {
    if (g_server != nullptr) g_server->request_stop();
}

int serve_main(const cli::ServeCli& serve) {
    server::ServiceConfig service_config;
    service_config.cache_capacity = serve.cache_capacity;
    service_config.access_log_path = serve.access_log;
    service_config.slow_query_ms = static_cast<std::uint32_t>(serve.slow_query_ms);
    server::Service service(service_config);

    if (!serve.preload.empty()) {
        Network network = cli::load_network(serve.preload);
        if (!serve.preload.locations_file.empty())
            io::apply_locations_json(read_file(serve.preload.locations_file),
                                     network.topology);
        const auto workspace = service.workspaces().add(std::move(network));
        std::cerr << "aalwines: preloaded network '" << workspace.network->name
                  << "' as " << workspace.id << "\n";
    }

    server::ServerConfig config;
    config.bind_address = serve.bind_address;
    config.port = static_cast<std::uint16_t>(serve.port);
    config.workers = serve.workers;
    config.queue_capacity = serve.queue_capacity;
    config.deadline_ms = serve.deadline_ms;
    config.max_body_bytes = serve.max_body_bytes;
    server::Server daemon(service, config);
    daemon.start();

    g_server = &daemon;
    struct sigaction action{};
    action.sa_handler = handle_stop_signal;
    ::sigaction(SIGINT, &action, nullptr);
    ::sigaction(SIGTERM, &action, nullptr);

    const auto workers = serve.workers != 0
                             ? serve.workers
                             : std::max(1u, std::thread::hardware_concurrency());
    std::cerr << "aalwines: serving on " << serve.bind_address << ":" << daemon.port()
              << " (workers=" << workers << ", queue=" << serve.queue_capacity
              << ", cache=" << serve.cache_capacity << ")\n";
    daemon.wait();
    g_server = nullptr;
    std::cerr << "aalwines: drained, shutting down\n";
    return 0;
}

// ---------------------------------------------------------------------------
// `aalwines sweep`

/// One answer character per matrix cell.
char cell_char(const verify::SweepCell& cell) {
    if (!cell.error.empty()) return 'E';
    switch (cell.result.answer) {
        case verify::Answer::Yes: return 'y';
        case verify::Answer::No: return 'n';
        case verify::Answer::Inconclusive: return 'i';
    }
    return '?';
}

int sweep_main(const cli::SweepCli& sweep_cli) {
    Network network = cli::load_network(sweep_cli.source);
    if (!sweep_cli.source.locations_file.empty())
        io::apply_locations_json(read_file(sweep_cli.source.locations_file),
                                 network.topology);
    const auto spec = cli::make_sweep_spec(sweep_cli, network);
    WeightExpr weights;
    const auto options = cli::make_verify_options(sweep_cli.spec, weights);
    const auto sweep = verify::run_sweep(network, spec, options, sweep_cli.jobs);

    bool all_ok = true;
    for (const auto& cell : sweep.cells)
        if (!cell.error.empty() || cell.result.answer == verify::Answer::Inconclusive)
            all_ok = false;

    if (sweep_cli.as_json) {
        std::cout << json::write(io::sweep_to_json_value(network, spec, sweep,
                                                         sweep_cli.stats),
                                 2)
                  << "\n";
        return all_ok ? 0 : 3;
    }

    // The effective axes, after the engine's empty-axis collapse.
    const std::size_t n_pairs = std::max<std::size_t>(1, spec.endpoint_pairs.size());
    const std::size_t n_budgets = std::max<std::size_t>(1, spec.failure_budgets.size());
    const std::size_t n_scenarios = std::max<std::size_t>(1, spec.scenarios.size());

    std::cout << "sweep: " << n_pairs << " pairs x " << n_budgets << " budgets x "
              << n_scenarios << " scenarios = " << sweep.stats.cells << " cells\n"
              << "template: " << spec.query_template << "\n"
              << "scenarios:\n";
    for (std::size_t s = 0; s < n_scenarios; ++s) {
        const auto* name = s < spec.scenarios.size() ? &spec.scenarios[s].name : nullptr;
        std::cout << "  s" << s << ": "
                  << (name != nullptr && !name->empty() ? *name : "baseline") << "\n";
    }
    std::cout << "matrix (cols s0..s" << (n_scenarios - 1)
              << "; y=yes n=no i=inconclusive E=error):\n";
    for (std::size_t p = 0; p < n_pairs; ++p) {
        for (std::size_t b = 0; b < n_budgets; ++b) {
            std::string label = p < spec.endpoint_pairs.size()
                                    ? spec.endpoint_pairs[p].first + " -> " +
                                          spec.endpoint_pairs[p].second
                                    : "(all)";
            if (b < spec.failure_budgets.size())
                label += "  k=" + std::to_string(spec.failure_budgets[b]);
            std::cout << "  " << label << "  ";
            for (std::size_t s = 0; s < n_scenarios; ++s)
                std::cout << cell_char(sweep.cells[(p * n_budgets + b) * n_scenarios + s]);
            std::cout << "\n";
        }
    }
    // Errors repeat along a chain (all its cells fail alike); print each
    // distinct message once.
    std::vector<std::string> seen_errors;
    for (const auto& cell : sweep.cells) {
        if (cell.error.empty()) continue;
        if (std::find(seen_errors.begin(), seen_errors.end(), cell.error) !=
            seen_errors.end())
            continue;
        seen_errors.push_back(cell.error);
        std::cerr << "aalwines: " << cell.query_text << ": " << cell.error << "\n";
    }
    if (sweep_cli.stats) {
        const auto& stats = sweep.stats;
        std::cout << "stats: cold-saturations " << stats.cold_saturations
                  << "  reused-frontiers " << stats.reused_frontiers
                  << "  shared-saturations " << stats.shared_saturations
                  << "  nfa-compiles " << stats.nfa_compiles << "  errors "
                  << stats.errors << "  (" << stats.seconds << "s)\n";
    }
    return all_ok ? 0 : 3;
}

// ---------------------------------------------------------------------------
// One-shot CLI

int run_cli(const cli::Cli& cli) {
    Network network = cli::load_network(cli.source);
    if (!cli.source.locations_file.empty())
        io::apply_locations_json(read_file(cli.source.locations_file), network.topology);

    bool validation_ok = true;
    if (cli.validate) {
        const auto report = validate::check_network(network);
        print_issues(report, "network");
        if (!report.ok()) {
            std::cerr << "aalwines: validate: network is malformed ("
                      << report.error_count() << " errors)\n";
            return 4;
        }
    }

    if (!cli.write_topology.empty()) {
        std::ofstream(cli.write_topology)
            << io::write_topology_xml(network.topology, network.name);
        std::cout << "wrote " << cli.write_topology << "\n";
    }
    if (!cli.write_routing.empty()) {
        std::ofstream(cli.write_routing) << io::write_routing_xml(network);
        std::cout << "wrote " << cli.write_routing << "\n";
    }
    if (!cli.write_gml.empty()) {
        std::ofstream(cli.write_gml) << io::write_gml(network.topology, network.name);
        std::cout << "wrote " << cli.write_gml << "\n";
    }
    if (cli.info) {
        const auto& topology = network.topology;
        std::size_t entries = network.routing.entry_count();
        std::size_t backup_rules = 0;
        network.routing.for_each([&](LinkId, Label, const RoutingEntry& groups) {
            for (std::size_t p = 1; p < groups.size(); ++p)
                backup_rules += groups[p].size();
        });
        std::size_t max_degree = 0;
        for (RouterId r = 0; r < topology.router_count(); ++r)
            max_degree = std::max(max_degree, topology.out_links(r).size());
        std::cout << "network:         " << network.name << "\n"
                  << "routers:         " << topology.router_count() << "\n"
                  << "directed links:  " << topology.link_count() << "\n"
                  << "interfaces:      " << topology.interface_count() << "\n"
                  << "max out-degree:  " << max_degree << "\n"
                  << "labels:          " << network.labels.size() << " (ip "
                  << network.labels.of_type(LabelType::Ip).size() << ", smpls "
                  << network.labels.of_type(LabelType::MplsBos).size() << ", mpls "
                  << network.labels.of_type(LabelType::Mpls).size() << ")\n"
                  << "table entries:   " << entries << "\n"
                  << "forwarding rules:" << network.routing.rule_count()
                  << " (backup: " << backup_rules << ")\n";
    }
    if (!cli.write_topology.empty() || !cli.write_routing.empty() ||
        !cli.write_gml.empty() || cli.info) {
        write_trace_outputs(cli);
        return 0;
    }

    std::vector<std::string> queries = cli.queries;
    if (!cli.queries_file.empty())
        for (auto& query : cli::split_queries(read_file(cli.queries_file)))
            queries.push_back(std::move(query));
    if (cli.battery > 0)
        for (auto& query : cli::demo_query_battery(cli.source.demo, cli.battery))
            queries.push_back(std::move(query));
    if (queries.empty() && !cli.interactive) {
        std::cerr << "aalwines: no --query given\n";
        return 2;
    }

    WeightExpr weights;
    const auto options = cli::make_verify_options(cli.spec, weights);

    json::Array results;
    std::vector<io::ReportEntry> report;
    bool all_ok = true;
    const auto batch = verify::verify_batch(network, queries, options, cli.jobs);
    for (const auto& item : batch) {
        const auto& query_text = item.query_text;
        if (!item.error.empty()) {
            std::cerr << "aalwines: " << query_text << ": " << item.error << "\n";
            all_ok = false;
            continue;
        }
        const auto& result = item.result;
        if (cli.as_json) {
            results.push_back(
                io::result_to_json_value(network, query_text, result, cli.stats));
        } else {
            std::cout << query_text << "\n";
            print_result_text(network, result, cli.stats, cli.explain);
        }
        if (result.answer == verify::Answer::Inconclusive) all_ok = false;
        if (cli.validate &&
            !validate_result(network, query_text, result, options, cli.validate_deep))
            validation_ok = false;
        if (!cli.html_file.empty()) report.push_back({query_text, result});
    }
    if (!cli.html_file.empty()) {
        std::ofstream(cli.html_file) << io::write_html_report(network, report);
        std::cerr << "wrote " << cli.html_file << "\n";
    }
    if (cli.as_json && !cli.interactive)
        std::cout << json::write(json::Value(std::move(results)), 2) << "\n";

    if (cli.interactive) {
        // The network (and nothing else) stays resident: every line is
        // parsed and verified on demand — the interactivity the paper
        // demonstrates through its GUI.  Lines run through verify_batch,
        // so ';'-separated queries on one line spread over --jobs workers
        // and a bad query never tears the loaded network down.
        std::string line;
        while (std::getline(std::cin, line)) {
            if (line == "quit" || line == "exit") break;
            const auto line_queries = cli::split_queries(line);
            if (line_queries.empty()) continue;
            const auto interactive_batch =
                verify::verify_batch(network, line_queries, options, cli.jobs);
            for (const auto& item : interactive_batch) {
                if (!item.error.empty()) {
                    std::cout << "error: " << item.error << "\n";
                    continue;
                }
                const auto& result = item.result;
                if (cli.validate &&
                    !validate_result(network, item.query_text, result, options,
                                     cli.validate_deep))
                    validation_ok = false;
                if (cli.as_json) {
                    std::cout << io::result_to_json(network, item.query_text, result,
                                                    cli.stats)
                              << "\n";
                } else {
                    if (interactive_batch.size() > 1)
                        std::cout << item.query_text << "\n";
                    std::cout << "answer: " << to_string(result.answer);
                    if (!result.weight.empty()) {
                        std::cout << "  weight: (";
                        for (std::size_t i = 0; i < result.weight.size(); ++i)
                            std::cout << (i ? ", " : "") << result.weight[i];
                        std::cout << ")";
                    }
                    std::cout << "  (" << result.stats.total_seconds << "s)\n";
                    if (result.trace) std::cout << display_trace(network, *result.trace);
                    if (cli.explain) print_explain(result.stats);
                }
            }
            std::cout.flush();
        }
        write_trace_outputs(cli);
        return validation_ok ? 0 : 4;
    }
    write_trace_outputs(cli);
    if (!validation_ok) return 4;
    if (cli.validate) std::cerr << "aalwines: validate: all checks passed\n";
    return all_ok ? 0 : 3;
}

} // namespace

int main(int argc, char** argv) {
    try {
        if (argc > 1 && std::string(argv[1]) == "serve") {
            const auto serve = cli::parse_serve_cli(argc, argv, 2);
            if (serve.help) {
                usage(std::cout);
                return 0;
            }
            return serve_main(serve);
        }
        if (argc > 1 && std::string(argv[1]) == "sweep") {
            const auto sweep = cli::parse_sweep_cli(argc, argv, 2);
            if (sweep.help) {
                usage(std::cout);
                return 0;
            }
            return sweep_main(sweep);
        }
        const auto cli = cli::parse_cli(argc, argv);
        if (cli.help) {
            usage(std::cout);
            return 0;
        }
        return run_cli(cli);
    } catch (const cli::usage_error& error) {
        std::cerr << "aalwines: " << error.what() << "\n";
        usage(std::cerr);
        return 2;
    } catch (const std::exception& error) {
        std::cerr << "aalwines: " << error.what() << "\n";
        return 1;
    }
}
