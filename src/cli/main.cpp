// aalwines — command-line front end for the AalWiNes what-if analysis
// engine.  Loads a network (vendor-agnostic XML, a bundled demo network, or
// a Topology Zoo GML), verifies queries with the selected engine, and
// prints results as text or JSON.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <filesystem>

#include "io/formats.hpp"
#include "io/isis.hpp"
#include "io/html_report.hpp"
#include "io/results_json.hpp"
#include "json/json.hpp"
#include "model/quantity.hpp"
#include "synthesis/networks.hpp"
#include "synthesis/queries.hpp"
#include "telemetry/telemetry.hpp"
#include "validate/cross_check.hpp"
#include "verify/batch.hpp"
#include "verify/engine.hpp"

namespace {

using namespace aalwines;

[[noreturn]] void usage(int code) {
    std::cerr <<
        "usage: aalwines [options] --query '<a> b <c> k'\n"
        "\n"
        "network sources (choose one):\n"
        "  --topology FILE --routing FILE   vendor-agnostic XML (Appendix A)\n"
        "  --isis MAPPING                   IS-IS export mapping file (Appendix A.1);\n"
        "                                   referenced XML files resolve relative to it\n"
        "  --gml FILE                       Topology Zoo GML (synthesizes a dataplane)\n"
        "  --demo figure1|nordunet|zoo:N    bundled demo networks\n"
        "\n"
        "options:\n"
        "  --query Q            query to verify (repeatable)\n"
        "  --engine E           moped | dual | weighted | exact  (default dual)\n"
        "  --weight W           weight vector, e.g. 'hops, failures + 3*tunnels'\n"
        "                       (implies --engine weighted)\n"
        "  --reduction N        PDA reduction level 0|1|2  (default 2)\n"
        "  --locations FILE     apply router coordinates (JSON)\n"
        "  --queries-file F     read one query per line from F ('#' comments)\n"
        "  --interactive        read queries from stdin, one per line (the\n"
        "                       network stays loaded; quit with EOF or 'quit')\n"
        "  --jobs N             verify queries on N worker threads (default 1)\n"
        "  --no-trace           do not reconstruct witness traces\n"
        "  --witnesses N        enumerate up to N distinct witness traces\n"
        "  --validate           check network well-formedness and replay every\n"
        "                       witness trace through the dataplane semantics\n"
        "  --validate=deep      additionally cross-check answers against the\n"
        "                       Moped baseline and (when tractable) the exact\n"
        "                       engine (see docs/CORRECTNESS.md)\n"
        "  --json               machine-readable output\n"
        "  --html FILE          write an HTML report with topology + witness paths\n"
        "  --stats              print engine statistics\n"
        "  --trace-json FILE    write the telemetry trace (span tree + counters)\n"
        "                       as JSON on exit (see docs/OBSERVABILITY.md)\n"
        "  --write-topology F   write the loaded topology as XML and exit\n"
        "  --write-routing F    write the loaded routing as XML and exit\n"
        "  --write-gml F        write the loaded topology as GML and exit\n"
        "  --info               print network statistics and exit\n";
    std::exit(code);
}

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::cerr << "aalwines: cannot open '" << path << "'\n";
        std::exit(1);
    }
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

struct Cli {
    std::string topology_file, routing_file, gml_file, demo, locations_file, isis_file;
    std::vector<std::string> queries;
    std::string engine = "dual";
    std::string weight;
    int reduction = 2;
    std::size_t jobs = 1;
    std::size_t witnesses = 1;
    std::string queries_file;
    bool interactive = false;
    bool want_trace = true;
    bool validate = false;
    bool validate_deep = false;
    bool as_json = false;
    std::string html_file;
    std::string trace_json_file;
    bool stats = false;
    std::string write_topology, write_routing, write_gml;
    bool info = false;
};

Cli parse_cli(int argc, char** argv) {
    Cli cli;
    auto value = [&](int& i) -> std::string {
        if (i + 1 >= argc) usage(2);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--topology") cli.topology_file = value(i);
        else if (arg == "--routing") cli.routing_file = value(i);
        else if (arg == "--gml") cli.gml_file = value(i);
        else if (arg == "--isis") cli.isis_file = value(i);
        else if (arg == "--demo") cli.demo = value(i);
        else if (arg == "--locations") cli.locations_file = value(i);
        else if (arg == "--query" || arg == "-q") cli.queries.push_back(value(i));
        else if (arg == "--engine") cli.engine = value(i);
        else if (arg == "--weight") cli.weight = value(i);
        else if (arg == "--reduction") cli.reduction = std::stoi(value(i));
        else if (arg == "--jobs") cli.jobs = static_cast<std::size_t>(std::stoul(value(i)));
        else if (arg == "--queries-file") cli.queries_file = value(i);
        else if (arg == "--interactive") cli.interactive = true;
        else if (arg == "--witnesses") cli.witnesses = static_cast<std::size_t>(std::stoul(value(i)));
        else if (arg == "--no-trace") cli.want_trace = false;
        else if (arg == "--validate") cli.validate = true;
        else if (arg == "--validate=deep") cli.validate = cli.validate_deep = true;
        else if (arg == "--json") cli.as_json = true;
        else if (arg == "--html") cli.html_file = value(i);
        else if (arg == "--trace-json") cli.trace_json_file = value(i);
        else if (arg == "--stats") cli.stats = true;
        else if (arg == "--write-topology") cli.write_topology = value(i);
        else if (arg == "--write-routing") cli.write_routing = value(i);
        else if (arg == "--write-gml") cli.write_gml = value(i);
        else if (arg == "--info") cli.info = true;
        else if (arg == "--help" || arg == "-h") usage(0);
        else {
            std::cerr << "aalwines: unknown option '" << arg << "'\n";
            usage(2);
        }
    }
    return cli;
}

Network load_network(const Cli& cli) {
    if (!cli.demo.empty()) {
        if (cli.demo == "figure1") return synthesis::make_figure1_network();
        if (cli.demo == "nordunet") return std::move(synthesis::make_nordunet_like().network);
        if (cli.demo.rfind("zoo:", 0) == 0) {
            const auto index = static_cast<std::size_t>(std::stoul(cli.demo.substr(4)));
            return std::move(synthesis::make_zoo_like(index).net.network);
        }
        std::cerr << "aalwines: unknown demo '" << cli.demo << "'\n";
        std::exit(2);
    }
    if (!cli.isis_file.empty()) {
        const auto base = std::filesystem::path(cli.isis_file).parent_path();
        const auto entries = io::parse_isis_mapping(read_file(cli.isis_file));
        std::vector<io::IsisRouterDocuments> documents;
        for (const auto& entry : entries) {
            io::IsisRouterDocuments doc;
            doc.entry = entry;
            if (!entry.is_edge()) {
                doc.adjacency_xml = read_file((base / entry.adjacency_file).string());
                doc.route_xml = read_file((base / entry.route_file).string());
                doc.pfe_xml = read_file((base / entry.pfe_file).string());
            }
            documents.push_back(std::move(doc));
        }
        return io::read_isis(documents);
    }
    if (!cli.gml_file.empty()) {
        synthesis::SyntheticTopology topo;
        std::string name;
        topo.topology = io::read_gml(read_file(cli.gml_file), &name);
        // Low-degree routers act as edges, as in the zoo pipeline.
        for (RouterId r = 0; r < topo.topology.router_count(); ++r)
            if (topo.topology.out_links(r).size() <= 2) topo.edge_routers.push_back(r);
        if (topo.edge_routers.size() < 2)
            for (RouterId r = 0; r < std::min<std::size_t>(4, topo.topology.router_count());
                 ++r)
                topo.edge_routers.push_back(r);
        synthesis::DataplaneOptions options;
        options.max_lsp_pairs = topo.topology.router_count() * 4;
        auto net = synthesis::build_dataplane(std::move(topo), options);
        net.network.name = name.empty() ? cli.gml_file : name;
        return std::move(net.network);
    }
    if (!cli.topology_file.empty() && !cli.routing_file.empty())
        return io::read_network_xml(read_file(cli.topology_file),
                                    read_file(cli.routing_file));
    std::cerr << "aalwines: no network given (use --topology/--routing, --gml or --demo)\n";
    std::exit(2);
}

void print_issues(const validate::Report& report, const std::string& subject) {
    for (const auto& issue : report.issues())
        std::cerr << "aalwines: validate: " << subject << ": "
                  << validate::to_string(issue.severity) << "(" << issue.component
                  << "): " << issue.message << "\n";
}

/// Witness replay (and, deep, cross-engine) validation of one query result.
/// Returns false when an error-severity issue was found.
bool validate_result(const Network& network, const std::string& query_text,
                     const verify::VerifyResult& result, const verify::VerifyOptions& options,
                     bool deep) {
    validate::Report report;
    try {
        const auto query = query::parse_query(query_text, network);
        report = validate::check_result(network, query, result, options.weights);
        if (deep) {
            validate::CrossCheckOptions cross;
            cross.weights = options.weights;
            cross.deep = true;
            cross.max_iterations = options.max_iterations;
            report.merge(validate::cross_check(network, query, cross).report);
        }
    } catch (const std::exception& error) {
        std::cerr << "aalwines: validate: " << query_text << ": " << error.what() << "\n";
        return false;
    }
    print_issues(report, query_text);
    return report.ok();
}

void write_trace_json(const std::string& path) {
    if (path.empty()) return;
    std::ofstream out(path);
    if (!out) {
        std::cerr << "aalwines: cannot write '" << path << "'\n";
        return;
    }
    out << telemetry::to_json(telemetry::snapshot(), 2) << "\n";
    std::cerr << "wrote " << path << "\n";
}

} // namespace

int main(int argc, char** argv) {
    const auto cli = parse_cli(argc, argv);
    try {
        Network network = load_network(cli);
        if (!cli.locations_file.empty())
            io::apply_locations_json(read_file(cli.locations_file), network.topology);

        bool validation_ok = true;
        if (cli.validate) {
            const auto report = validate::check_network(network);
            print_issues(report, "network");
            if (!report.ok()) {
                std::cerr << "aalwines: validate: network is malformed ("
                          << report.error_count() << " errors)\n";
                return 4;
            }
        }

        if (!cli.write_topology.empty()) {
            std::ofstream(cli.write_topology)
                << io::write_topology_xml(network.topology, network.name);
            std::cout << "wrote " << cli.write_topology << "\n";
        }
        if (!cli.write_routing.empty()) {
            std::ofstream(cli.write_routing) << io::write_routing_xml(network);
            std::cout << "wrote " << cli.write_routing << "\n";
        }
        if (!cli.write_gml.empty()) {
            std::ofstream(cli.write_gml) << io::write_gml(network.topology, network.name);
            std::cout << "wrote " << cli.write_gml << "\n";
        }
        if (cli.info) {
            const auto& topology = network.topology;
            std::size_t entries = network.routing.entry_count();
            std::size_t backup_rules = 0;
            network.routing.for_each([&](LinkId, Label, const RoutingEntry& groups) {
                for (std::size_t p = 1; p < groups.size(); ++p)
                    backup_rules += groups[p].size();
            });
            std::size_t max_degree = 0;
            for (RouterId r = 0; r < topology.router_count(); ++r)
                max_degree = std::max(max_degree, topology.out_links(r).size());
            std::cout << "network:         " << network.name << "\n"
                      << "routers:         " << topology.router_count() << "\n"
                      << "directed links:  " << topology.link_count() << "\n"
                      << "interfaces:      " << topology.interface_count() << "\n"
                      << "max out-degree:  " << max_degree << "\n"
                      << "labels:          " << network.labels.size() << " (ip "
                      << network.labels.of_type(LabelType::Ip).size() << ", smpls "
                      << network.labels.of_type(LabelType::MplsBos).size() << ", mpls "
                      << network.labels.of_type(LabelType::Mpls).size() << ")\n"
                      << "table entries:   " << entries << "\n"
                      << "forwarding rules:" << network.routing.rule_count()
                      << " (backup: " << backup_rules << ")\n";
        }
        if (!cli.write_topology.empty() || !cli.write_routing.empty() ||
            !cli.write_gml.empty() || cli.info) {
            write_trace_json(cli.trace_json_file);
            return 0;
        }

        std::vector<std::string> queries = cli.queries;
        if (!cli.queries_file.empty()) {
            std::istringstream lines(read_file(cli.queries_file));
            std::string line;
            while (std::getline(lines, line)) {
                const auto first = line.find_first_not_of(" \t\r");
                if (first == std::string::npos || line[first] == '#') continue;
                queries.push_back(line);
            }
        }
        if (queries.empty() && !cli.interactive) {
            std::cerr << "aalwines: no --query given\n";
            return 2;
        }

        verify::VerifyOptions options;
        options.reduction_level = cli.reduction;
        options.build_trace = cli.want_trace;
        options.max_witnesses = cli.witnesses;
        WeightExpr weights;
        if (!cli.weight.empty()) {
            weights = parse_weight_expression(cli.weight);
            options.weights = &weights;
            options.engine = verify::EngineKind::Weighted;
        }
        if (cli.engine == "moped") options.engine = verify::EngineKind::Moped;
        else if (cli.engine == "exact") options.engine = verify::EngineKind::Exact;
        else if (cli.engine == "weighted") {
            options.engine = verify::EngineKind::Weighted;
            if (options.weights == nullptr) {
                std::cerr << "aalwines: --engine weighted requires --weight\n";
                return 2;
            }
        } else if (cli.engine != "dual") {
            std::cerr << "aalwines: unknown engine '" << cli.engine << "'\n";
            return 2;
        }

        json::Array results;
        std::vector<io::ReportEntry> report;
        bool all_ok = true;
        const auto batch = verify::verify_batch(network, queries, options, cli.jobs);
        for (const auto& item : batch) {
            const auto& query_text = item.query_text;
            if (!item.error.empty()) {
                std::cerr << "aalwines: " << query_text << ": " << item.error << "\n";
                all_ok = false;
                continue;
            }
            const auto& result = item.result;
            if (cli.as_json) {
                results.push_back(
                    io::result_to_json_value(network, query_text, result, cli.stats));
            } else {
                std::cout << query_text << "\n  answer: " << to_string(result.answer);
                if (!result.weight.empty()) {
                    std::cout << "  weight: (";
                    for (std::size_t i = 0; i < result.weight.size(); ++i)
                        std::cout << (i ? ", " : "") << result.weight[i];
                    std::cout << ")";
                }
                std::cout << "\n";
                if (result.witnesses.size() > 1) {
                    for (std::size_t w = 0; w < result.witnesses.size(); ++w) {
                        std::cout << "  witness " << (w + 1) << ":\n"
                                  << display_trace(network, result.witnesses[w]);
                    }
                } else if (result.trace) {
                    std::cout << "  witness trace:\n"
                              << display_trace(network, *result.trace);
                }
                if (!result.note.empty()) std::cout << "  note: " << result.note << "\n";
                if (cli.stats) {
                    std::cout << "  time: " << result.stats.total_seconds << "s"
                              << "  pda-rules: " << result.stats.over.pda_rules << " (of "
                              << result.stats.over.pda_rules_before_reduction
                              << " before reduction)"
                              << "  saturation-iterations: "
                              << result.stats.over.saturation_iterations
                              << "  relaxations: "
                              << result.stats.over.worklist_relaxations
                              << "  peak-worklist: " << result.stats.over.peak_worklist
                              << "\n";
                    if (result.stats.over.pda_rules_expanded != 0)
                        std::cout << "  expanded-pda-rules: "
                                  << result.stats.over.pda_rules_expanded
                                  << "  expanded-pda-states: "
                                  << result.stats.over.pda_states_expanded << "\n";
                    if (result.stats.under.ran)
                        std::cout << "  under-phase: "
                                  << result.stats.under.saturation_iterations
                                  << " iterations, "
                                  << result.stats.under.worklist_relaxations
                                  << " relaxations, " << result.stats.under.seconds
                                  << "s\n";
                }
            }
            if (result.answer == verify::Answer::Inconclusive) all_ok = false;
            if (cli.validate &&
                !validate_result(network, query_text, result, options, cli.validate_deep))
                validation_ok = false;
            if (!cli.html_file.empty()) report.push_back({query_text, result});
        }
        if (!cli.html_file.empty()) {
            std::ofstream(cli.html_file) << io::write_html_report(network, report);
            std::cerr << "wrote " << cli.html_file << "\n";
        }
        if (cli.as_json) std::cout << json::write(json::Value(std::move(results)), 2) << "\n";

        if (cli.interactive) {
            // The network (and nothing else) stays resident: every query is
            // parsed and verified on demand — the interactivity the paper
            // demonstrates through its GUI.
            std::string line;
            while (std::getline(std::cin, line)) {
                const auto first = line.find_first_not_of(" \t\r");
                if (first == std::string::npos || line[first] == '#') continue;
                if (line == "quit" || line == "exit") break;
                try {
                    const auto query = query::parse_query(line, network);
                    const auto result = verify::verify(network, query, options);
                    if (cli.validate &&
                        !validate_result(network, line, result, options, cli.validate_deep))
                        validation_ok = false;
                    if (cli.as_json) {
                        std::cout << io::result_to_json(network, line, result, cli.stats)
                                  << "\n";
                    } else {
                        std::cout << "answer: " << to_string(result.answer);
                        if (!result.weight.empty()) {
                            std::cout << "  weight: (";
                            for (std::size_t i = 0; i < result.weight.size(); ++i)
                                std::cout << (i ? ", " : "") << result.weight[i];
                            std::cout << ")";
                        }
                        std::cout << "  (" << result.stats.total_seconds << "s)\n";
                        if (result.trace)
                            std::cout << display_trace(network, *result.trace);
                    }
                } catch (const std::exception& error) {
                    std::cout << "error: " << error.what() << "\n";
                }
                std::cout.flush();
            }
            write_trace_json(cli.trace_json_file);
            return validation_ok ? 0 : 4;
        }
        write_trace_json(cli.trace_json_file);
        if (!validation_ok) return 4;
        if (cli.validate)
            std::cerr << "aalwines: validate: all checks passed\n";
        return all_ok ? 0 : 3;
    } catch (const std::exception& error) {
        std::cerr << "aalwines: " << error.what() << "\n";
        return 1;
    }
}
