#pragma once
// Reusable command-line / request option handling for the aalwines front
// ends.  The one-shot CLI, the `aalwines serve` daemon, and the tests all
// share the same network-loading and verify-option resolution logic, so
// nothing in here terminates the process: bad usage raises `usage_error`,
// unreadable files raise `io_error`, and malformed documents propagate the
// library's own parse/model errors.  Only `main()` maps those to exit codes
// (see docs/SERVER.md for the exit-code contract).

#include <cstddef>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "model/quantity.hpp"
#include "model/routing.hpp"
#include "verify/engine.hpp"
#include "verify/sweep.hpp"

namespace aalwines::cli {

/// Bad command-line or request usage (unknown option/engine, missing value,
/// invalid combination).  The CLI prints the message plus usage and exits 2.
class usage_error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// A file could not be opened or read.  The CLI exits 1.
class io_error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Read a whole file; throws io_error when it cannot be opened.
[[nodiscard]] std::string read_file(const std::string& path);

/// Where a network comes from, as file paths (the one-shot CLI and the
/// daemon's preload flags).  Exactly one source must be set.
struct NetworkSource {
    std::string topology_file, routing_file; ///< vendor-agnostic XML pair
    std::string gml_file;                    ///< Topology Zoo GML
    std::string isis_file;                   ///< IS-IS export mapping
    std::string demo;                        ///< figure1 | nordunet | zoo:N
    std::string locations_file;              ///< optional coordinates JSON

    [[nodiscard]] bool empty() const {
        return topology_file.empty() && routing_file.empty() && gml_file.empty() &&
               isis_file.empty() && demo.empty();
    }
};

/// The same sources as in-memory documents (the daemon's `POST /networks`
/// body).  IS-IS imports reference sibling files on disk and are therefore
/// file-only.
struct NetworkDocuments {
    std::string demo;                       ///< figure1 | nordunet | zoo:N
    std::string gml;                        ///< GML document text
    std::string topology_xml, routing_xml;  ///< XML pair document text
    std::string locations_json;             ///< optional coordinates JSON text
};

/// Load/synthesize a network.  Throws usage_error when no (or an unknown)
/// source is given, io_error for unreadable files, and parse_error /
/// model_error for malformed documents.
[[nodiscard]] Network load_network(const NetworkSource& source);
[[nodiscard]] Network load_network(const NetworkDocuments& documents);

/// Engine/option selection shared by the CLI flags and the daemon's
/// per-request JSON options.  Strings are kept unresolved so the struct is
/// trivially serialisable; resolve with `make_verify_options`.
struct VerifySpec {
    std::string engine = "dual"; ///< moped | dual | weighted | exact
    std::string weight;          ///< weight expression (implies weighted)
    int reduction = 2;           ///< PDA reduction level 0|1|2
    bool trace = true;           ///< reconstruct witness traces
    std::size_t witnesses = 1;   ///< max distinct witness traces
    std::size_t max_iterations = 0; ///< saturation cap, 0 = unlimited
    /// PDA rule materialization: auto | lazy | eager (auto picks lazy for
    /// dual/weighted, eager for moped/exact).
    std::string translation = "auto";
    /// Saturation worker threads: "" = inherit the AALWINES_SOLVER_THREADS
    /// environment override (default sequential), "auto" = size from the
    /// hardware and problem, otherwise a positive count.
    std::string solver_threads;
};

/// Resolve a VerifySpec.  `weights` receives the parsed weight expression
/// (the returned options point into it, so it must outlive them).  Throws
/// usage_error on an unknown engine or a weighted engine without weights,
/// parse_error on a malformed weight expression.
[[nodiscard]] verify::VerifyOptions make_verify_options(const VerifySpec& spec,
                                                        WeightExpr& weights);

/// The paper-suite query battery instantiated over a synthesized --demo
/// network (nordunet | zoo:N); `count` = 0 keeps the battery default.  The
/// nightly CI job feeds these through --validate=deep.  Throws usage_error
/// for sources without synthesis metadata (files, figure1).
[[nodiscard]] std::vector<std::string> demo_query_battery(const std::string& demo,
                                                          std::size_t count);

/// Split query text into one query per line, dropping blank lines and
/// '#'-comments (the --queries-file format).  Each line may also hold
/// several ';'-separated queries, as in the interactive REPL.
[[nodiscard]] std::vector<std::string> split_queries(const std::string& text);

/// Parsed one-shot CLI (see usage() in main.cpp for the flag reference).
struct Cli {
    NetworkSource source;
    std::vector<std::string> queries;
    VerifySpec spec;
    std::size_t jobs = 1;
    std::string queries_file;
    std::size_t battery = 0; ///< append N battery queries (--demo nordunet/zoo:N)
    bool interactive = false;
    bool validate = false;
    bool validate_deep = false;
    bool as_json = false;
    bool stats = false;
    bool explain = false; ///< per-query phase breakdown (text output)
    bool info = false;
    bool help = false;
    std::string html_file;
    std::string trace_json_file;
    std::string trace_chrome_file; ///< span tree as Chrome trace-event JSON
    std::string write_topology, write_routing, write_gml;
};

/// Parse the one-shot CLI argument vector.  Throws usage_error on unknown
/// options or missing values; --help/-h sets `help` instead of exiting.
[[nodiscard]] Cli parse_cli(int argc, char** argv);

/// Parsed `aalwines serve` command line.
struct ServeCli {
    std::string bind_address = "127.0.0.1";
    int port = 0;                  ///< 0 = ephemeral (printed on startup)
    std::size_t workers = 0;       ///< 0 = hardware concurrency
    std::size_t queue_capacity = 64;
    std::size_t cache_capacity = 256;
    long deadline_ms = 0;          ///< per-request wall budget, 0 = none
    std::size_t max_body_bytes = 64ull << 20;
    NetworkSource preload;         ///< optional network loaded at startup
    std::string access_log;        ///< JSON-lines request log ("" off, "-" stdout)
    std::size_t slow_query_ms = 0; ///< slow-request threshold, 0 = off
    bool help = false;
};

/// Parse `aalwines serve ...` (argv past the subcommand). Throws usage_error.
[[nodiscard]] ServeCli parse_serve_cli(int argc, char** argv, int first);

/// Parsed `aalwines sweep` command line (the sweep engine front end; see
/// verify/sweep.hpp for the grid model and sharing tiers).
struct SweepCli {
    NetworkSource source;
    VerifySpec spec;
    std::string query_template;   ///< --template, with {src}/{dst}/{k}
    std::vector<std::pair<std::string, std::string>> pairs; ///< --pair SRC:DST
    std::vector<std::uint64_t> budgets;                     ///< --k N,M,...
    std::string scenarios_file;   ///< --scenarios FILE (JSON scenario list)
    bool single_failures = false; ///< --single-failures N given
    std::size_t single_failure_cap = 0; ///< its N (0 = every up link)
    std::size_t jobs = 0;         ///< chain workers (0 = hardware concurrency)
    bool as_json = false;
    bool stats = false;
    bool help = false;
};

/// Parse `aalwines sweep ...` (argv past the subcommand). Throws usage_error.
[[nodiscard]] SweepCli parse_sweep_cli(int argc, char** argv, int first);

/// Decode a scenario list from JSON — the `--scenarios` file and the
/// daemon's sweep request body share this shape:
///   [ {"name": "core down", "failedLinks": [["R1", "eth0"], ...]}, ... ]
/// `name` is optional.  Throws usage_error on a malformed document.
[[nodiscard]] std::vector<verify::SweepScenario> scenarios_from_json(
    const json::Value& value);

/// Append the generated single-link-failure battery to a spec's scenario
/// axis (`cap` failure scenarios, 0 = every up link).  The generated
/// baseline is kept only when the spec had no scenarios yet — explicit
/// scenario lists decide themselves whether to include one.
void append_single_failure_scenarios(verify::SweepSpec& spec, const Network& network,
                                     std::size_t cap);

/// Assemble the sweep grid from a parsed command line: template, pairs and
/// budgets verbatim, scenarios from the --scenarios file and/or generated
/// single-link failures.  Throws usage_error when no template was given.
[[nodiscard]] verify::SweepSpec make_sweep_spec(const SweepCli& sweep,
                                                const Network& network);

} // namespace aalwines::cli
