#include "verify/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>

#include "delta/delta.hpp"
#include "pda/solver.hpp"
#include "telemetry/telemetry.hpp"
#include "util/errors.hpp"
#include "verify/translation.hpp"

namespace aalwines::verify {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

void replace_all(std::string& text, std::string_view placeholder,
                 const std::string& value) {
    for (std::size_t at = text.find(placeholder); at != std::string::npos;
         at = text.find(placeholder, at + value.size()))
        text.replace(at, placeholder.size(), value);
}

/// One scenario's snapshot plus which links it flipped relative to the base
/// network (sorted link ids) — shared read-only by every chain.
struct ScenarioState {
    std::shared_ptr<const Network> network;
    std::vector<LinkId> flips;
};

std::vector<ScenarioState> build_scenarios(const Network& base,
                                           const std::vector<SweepScenario>& scenarios) {
    std::vector<ScenarioState> states;
    states.reserve(scenarios.size());
    for (const auto& scenario : scenarios) {
        ScenarioState state;
        if (scenario.failed_links.empty()) {
            // Baseline: alias the caller's network, nothing to copy.
            state.network = std::shared_ptr<const Network>(
                std::shared_ptr<const Network>{}, &base);
        } else {
            delta::NetworkDelta delta;
            for (const auto& [router, interface] : scenario.failed_links) {
                delta::DeltaOp op;
                op.kind = delta::DeltaOp::Kind::LinkState;
                op.router = router;
                op.out_interface = interface;
                op.up = false;
                delta.ops.push_back(std::move(op));
            }
            auto applied = delta::apply_delta(base, delta); // model_error on bad names
            state.network = std::move(applied.network);
            // state_links holds exactly the links whose up/down state
            // differs from the base (already-down links do not flip).
            state.flips = std::move(applied.effects.state_links);
            std::sort(state.flips.begin(), state.flips.end());
        }
        states.push_back(std::move(state));
    }
    return states;
}

/// Links whose up/down state differs between two scenarios: each `flips`
/// set is relative to the same base, so the symmetric difference is exact.
std::vector<LinkId> toggled_between(const std::vector<LinkId>& a,
                                    const std::vector<LinkId>& b) {
    std::vector<LinkId> out;
    std::set_symmetric_difference(a.begin(), a.end(), b.begin(), b.end(),
                                  std::back_inserter(out));
    return out;
}

} // namespace

std::string_view to_string(CellPath path) {
    switch (path) {
        case CellPath::Cold: return "cold";
        case CellPath::Warm: return "warm";
        case CellPath::Reused: return "reused";
    }
    return "?";
}

std::string instantiate_template(const std::string& query_template,
                                 const std::string& src, const std::string& dst,
                                 std::uint64_t failures) {
    std::string text = query_template;
    replace_all(text, "{src}", src);
    replace_all(text, "{dst}", dst);
    replace_all(text, "{k}", std::to_string(failures));
    return text;
}

std::vector<SweepScenario> make_single_failure_scenarios(const Network& network,
                                                         std::size_t count) {
    std::vector<SweepScenario> scenarios;
    scenarios.push_back({"baseline", {}});
    const auto& topology = network.topology;
    for (LinkId id = 0; id < topology.link_count(); ++id) {
        if (count != 0 && scenarios.size() > count) break;
        if (!topology.link_up(id)) continue; // already failed for free
        const auto& link = topology.link(id);
        SweepScenario scenario;
        scenario.name = topology.describe_link(id);
        scenario.failed_links.emplace_back(topology.router_name(link.source),
                                           topology.interface(link.source_interface).name);
        scenarios.push_back(std::move(scenario));
    }
    return scenarios;
}

SweepResult run_sweep(const Network& network, const SweepSpec& spec,
                      const VerifyOptions& options, std::size_t jobs) {
    AALWINES_SPAN("run_sweep");
    const auto sweep_start = Clock::now();
    if (spec.query_template.empty())
        throw model_error("sweep spec has no query template");

    // Collapse empty axes to one implicit element so the grid is never
    // empty and cell indexing stays uniform.
    const std::vector<std::pair<std::string, std::string>> one_pair{{"", ""}};
    const std::vector<std::uint64_t> one_budget{0};
    const std::vector<SweepScenario> one_scenario{{"baseline", {}}};
    const auto& pairs = spec.endpoint_pairs.empty() ? one_pair : spec.endpoint_pairs;
    const auto& budgets = spec.failure_budgets.empty() ? one_budget : spec.failure_budgets;
    const auto& scenarios = spec.scenarios.empty() ? one_scenario : spec.scenarios;

    // Scenario snapshots resolve up front (model_error on unknown names
    // before any verification runs) and are shared by every chain.
    const auto scenario_states = build_scenarios(network, scenarios);

    const std::size_t n_scenarios = scenarios.size();
    const std::size_t n_chains = pairs.size() * budgets.size();

    SweepResult sweep;
    sweep.cells.resize(n_chains * n_scenarios);
    for (std::size_t chain = 0; chain < n_chains; ++chain) {
        const std::size_t p = chain / budgets.size();
        const std::size_t b = chain % budgets.size();
        const auto text =
            instantiate_template(spec.query_template, pairs[p].first, pairs[p].second,
                                 budgets[b]);
        for (std::size_t s = 0; s < n_scenarios; ++s) {
            auto& cell = sweep.cells[chain * n_scenarios + s];
            cell.pair = p;
            cell.budget = b;
            cell.scenario = s;
            cell.query_text = text;
        }
    }

    // NFA tier: one compile per endpoint pair, raced for by that pair's
    // chains (call_once publishes the compile to every waiter; a throwing
    // compile leaves the flag unset, so the error surfaces per chain).
    std::vector<std::unique_ptr<std::once_flag>> nfa_once(pairs.size());
    for (auto& flag : nfa_once) flag = std::make_unique<std::once_flag>();
    std::vector<std::shared_ptr<const CompiledNfas>> pair_nfas(pairs.size());

    const bool native = options.engine == EngineKind::Dual ||
                        options.engine == EngineKind::Weighted;
    const bool lazy = use_lazy_translation(options.translation, options.engine);
    // Frontier tier needs rebase, which only the lazy native engines
    // support — the same gate as delta::Reverifier's warm path.
    const bool warm_capable = native && lazy;

    if (jobs == 0) jobs = std::max(1u, std::thread::hardware_concurrency());
    jobs = std::min(jobs, n_chains);

    // Concurrency contract (no mutex on purpose): `next` hands each worker
    // a distinct chain index via relaxed fetch_add, so every chain's cell
    // slots have exactly one writer; pair_nfas publication goes through
    // call_once.  The joins publish the cells; `network`, `options` and the
    // scenario states are read-only throughout.
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        AALWINES_SPAN("sweep_worker");
        // Workspace tier: one solver workspace per worker, reused by every
        // cell the worker runs (worklist buckets, search arenas, the
        // parallel solver's thread pool).
        pda::SolverWorkspace workspace;
        VerifyOptions cell_options = options;
        cell_options.workspace = &workspace;
        for (;;) {
            const auto chain = next.fetch_add(1, std::memory_order_relaxed);
            if (chain >= n_chains) return;
            const std::size_t p = chain / budgets.size();
            SweepCell* cells = &sweep.cells[chain * n_scenarios];

            query::Query query;
            try {
                // Parse once per chain against the base network: scenarios
                // share its topology and label table (link-state deltas
                // never add routers, links or labels), so every atom
                // resolves to the same ids as a per-scenario parse.
                query = query::parse_query(cells[0].query_text, network);
                std::call_once(*nfa_once[p], [&] {
                    pair_nfas[p] = std::make_shared<const CompiledNfas>(
                        compile_query_nfas(network, query));
                });
            } catch (const std::exception& error) {
                for (std::size_t s = 0; s < n_scenarios; ++s)
                    cells[s].error = error.what();
                continue;
            }
            const auto& nfas = pair_nfas[p];

            // Frontier tier state.  The live session chains scenario to
            // scenario (rebase keeps the untouched materialization warm),
            // but the *reuse* test compares each scenario against a frozen
            // footprint snapshot of the chain's first verified cell — the
            // anchor.  Anchoring matters: a single-failure battery diffs
            // one flipped link against the anchor instead of two against
            // its predecessor (the new failure plus the restored previous
            // one), so far more cells carry the anchor's answer over for
            // free, while warm cells still pay only the affected cone.
            std::unique_ptr<TranslationCache> cache;
            std::size_t based_on = 0; // scenario the live session sits on
            std::size_t anchor = 0;
            const VerifyResult* anchor_result = nullptr;
            LinkFootprint anchor_footprint;

            for (std::size_t s = 0; s < n_scenarios; ++s) {
                auto& cell = cells[s];
                const auto& scenario = scenario_states[s];
                const auto cell_start = Clock::now();
                try {
                    if (!native) {
                        cell.result = verify(*scenario.network, query, cell_options);
                        cell.path = CellPath::Cold;
                    } else if (anchor_result != nullptr &&
                               !anchor_footprint.touches(toggled_between(
                                   scenario_states[anchor].flips, scenario.flips))) {
                        // The diff to the anchor misses its materialized
                        // footprint and every initial-configuration
                        // candidate: the anchor's answer provably carries
                        // over without running anything — no session needed.
                        cell.result = *anchor_result;
                        cell.path = CellPath::Reused;
                    } else if (cache == nullptr) {
                        cache = std::make_unique<TranslationCache>(
                            *scenario.network, query, cell_options.weights, lazy, nfas);
                        cell.result =
                            verify(*scenario.network, query, cell_options, *cache);
                        cell.path = CellPath::Cold;
                        based_on = s;
                        if (warm_capable && anchor_result == nullptr) {
                            // Freeze the anchor's footprint now, while the
                            // session still holds exactly what this cell's
                            // saturations materialized (it stays valid
                            // across link-state flips — see LinkFootprint).
                            anchor = s;
                            anchor_result = &cell.result;
                            if (auto* over = cache->over_or_null())
                                over->add_to_footprint(anchor_footprint);
                            if (auto* under = cache->under_or_null())
                                under->add_to_footprint(anchor_footprint);
                        }
                    } else {
                        // Split exactly like delta::Reverifier: a link-state
                        // flip dirties the link's own entries *and* its role
                        // as an out-link (skipped rules, failure budget,
                        // initial-state membership).
                        const auto toggled = toggled_between(
                            scenario_states[based_on].flips, scenario.flips);
                        std::vector<bool> dirty(network.topology.link_count(), false);
                        for (const auto link : toggled) dirty[link] = true;
                        cache->rebase(*scenario.network, dirty, dirty);
                        cell.result =
                            verify(*scenario.network, query, cell_options, *cache);
                        cell.path = CellPath::Warm;
                        based_on = s;
                    }
                } catch (const std::exception& error) {
                    cell.error = error.what();
                    // No half-rebased session survives an error; the next
                    // scenario rebuilds cold from its own snapshot.  The
                    // anchor snapshot and result stay valid — they describe
                    // the anchor cell, not the live session.
                    cache.reset();
                }
                cell.seconds = seconds_since(cell_start);
                if (!warm_capable) {
                    // Eager native engines keep the NFA and workspace tiers
                    // but cannot rebase: every cell verifies cold through a
                    // fresh session.
                    cache.reset();
                }
            }
        }
    };

    if (jobs <= 1) {
        worker();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(jobs);
        for (std::size_t i = 0; i < jobs; ++i) threads.emplace_back(worker);
        for (auto& thread : threads) thread.join();
    }

    auto& stats = sweep.stats;
    stats.cells = sweep.cells.size();
    for (const auto& cell : sweep.cells) {
        if (!cell.error.empty()) {
            ++stats.errors;
            continue;
        }
        switch (cell.path) {
            case CellPath::Cold: ++stats.cold_saturations; break;
            case CellPath::Warm: ++stats.reused_frontiers; break;
            case CellPath::Reused: ++stats.shared_saturations; break;
        }
    }
    for (const auto& nfas : pair_nfas) stats.nfa_compiles += nfas != nullptr ? 1 : 0;
    stats.seconds = seconds_since(sweep_start);
    return sweep;
}

} // namespace aalwines::verify
