#pragma once
// Moped-style textual pushdown-system format.
//
// The Moped model checker is driven through a textual input format; P-Rex
// (and AalWiNes when using the Moped backend) serialise the compiled PDA,
// hand it to the external process and parse the reply.  Our baseline models
// that round trip faithfully: the PDA is written to text and re-parsed
// before solving.  Rule order — and therefore rule ids and tags — is
// preserved exactly, so witnesses from the round-tripped system map back
// onto the original translation.
//
// Format (line oriented):
//   pds <state-count> <alphabet-size>
//   class <symbol> <class-id>
//   rule <from> <pre-kind> <pre-value> <op> <label1> <label2> <to> <tag>
// where pre-kind ∈ {c, k, a} (concrete/class/any), op ∈ {pop, swap, push},
// and absent symbols are written as '-' ("same as matched" as '=').

#include <string>
#include <string_view>

#include "pda/pda.hpp"

namespace aalwines::verify {

[[nodiscard]] std::string write_moped_format(const pda::Pda& pda);

/// Parse a document produced by write_moped_format.  Weights are not part
/// of the format (Moped is unweighted): parsed rules all carry weight 1̄.
[[nodiscard]] pda::Pda parse_moped_format(std::string_view text);

} // namespace aalwines::verify
