#include "verify/engine.hpp"

#include <algorithm>
#include <chrono>

#include "pda/solver.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"
#include "util/errors.hpp"
#include "verify/translation.hpp"

namespace aalwines::verify {

void absorb_solver_stats(PhaseStats& phase, const pda::SolverStats& solver) {
    phase.saturation_iterations = solver.iterations;
    phase.automaton_transitions = solver.transitions + solver.epsilons;
    phase.worklist_relaxations = solver.relaxations;
    phase.peak_worklist = solver.peak_queue;
    phase.truncated = solver.truncated;
    phase.solver_threads = solver.threads_used;
    phase.parallel_rounds = solver.rounds;
    phase.parallel_handoffs = solver.handoffs;
    phase.shard_imbalance = solver.shard_imbalance;
}

std::string_view to_string(Answer answer) {
    switch (answer) {
        case Answer::Yes: return "yes";
        case Answer::No: return "no";
        case Answer::Inconclusive: return "inconclusive";
    }
    return "?";
}

std::string_view to_string(EngineKind engine) {
    switch (engine) {
        case EngineKind::Moped: return "moped";
        case EngineKind::Dual: return "dual";
        case EngineKind::Weighted: return "weighted";
        case EngineKind::Exact: return "exact";
    }
    return "?";
}

std::string_view to_string(TranslationMode mode) {
    switch (mode) {
        case TranslationMode::Auto: return "auto";
        case TranslationMode::Lazy: return "lazy";
        case TranslationMode::Eager: return "eager";
    }
    return "?";
}

bool use_lazy_translation(TranslationMode mode, EngineKind engine) {
    switch (mode) {
        case TranslationMode::Lazy: return true;
        case TranslationMode::Eager: return false;
        case TranslationMode::Auto: break;
    }
    return engine == EngineKind::Dual || engine == EngineKind::Weighted;
}

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Outcome of one over- or under-approximating post* run.
struct PhaseOutcome {
    bool satisfied = false;   ///< an accepted configuration exists
    bool truncated = false;   ///< iteration cap hit: result unreliable
    std::optional<Trace> trace;
    std::vector<Trace> witnesses; ///< feasible traces (up to max_witnesses)
    Feasibility feasibility;
    std::vector<std::uint64_t> weight;
    PhaseStats stats;
};

PhaseOutcome run_post_star_phase(const Network& network, const query::Query& query,
                                 Approximation approximation,
                                 const VerifyOptions& options, TranslationCache& cache,
                                 pda::SolverWorkspace& workspace) {
    AALWINES_SPAN(approximation == Approximation::Under ? "post_star_phase(under)"
                                                        : "post_star_phase(over)");
    PhaseOutcome outcome;
    const auto start = Clock::now();
    outcome.stats.ran = true;

    // Memoized across the over/under dual passes: the cache shares the
    // compiled query NFAs, and the whole translation when the failure budget
    // makes the two approximations coincide.  reduce() is idempotent.
    Translation& translation = cache.translation(approximation);
    outcome.stats.pda_rules_before_reduction = translation.rules_before_reduction();
    const auto translated = Clock::now();
    outcome.stats.translate_seconds = seconds_since(start);
    translation.reduce(options.reduction_level);
    outcome.stats.reduce_seconds = seconds_since(translated);
    telemetry::observe_duration(telemetry::Histogram::query_translate,
                                outcome.stats.translate_seconds +
                                    outcome.stats.reduce_seconds);

    const auto saturate_start = Clock::now();
    auto automaton = translation.make_initial_automaton();
    // Weighted runs stop saturation strictly past the minimal weight level,
    // so every equal-weight minimal derivation is present in any run and the
    // canonically smallest one can be kept — witnesses become thread-count
    // and worklist-discipline independent (the server query cache relies on
    // this to drop solverThreads from its key).
    if (options.engine == EngineKind::Weighted)
        automaton.set_canonical_tiebreaks(true);
    const auto domain = static_cast<pda::Symbol>(network.labels.size());
    pda::SolverOptions sopts;
    sopts.max_iterations = options.max_iterations;
    sopts.workspace = &workspace;
    sopts.threads = options.solver_threads;
    if (options.max_witnesses <= 1) {
        // Demand-driven: stop saturating once a (minimal) witness is certain.
        // (Alternative-witness collection needs the fully saturated automaton.)
        sopts.check_accepted = [&]() {
            const auto found =
                pda::find_accepted(automaton, translation.accepting_states(),
                                   translation.final_header_nfa(), domain, &workspace);
            return found ? found->weight : pda::Weight::infinity();
        };
    }
    const auto sat_stats = pda::post_star(automaton, sopts);
    absorb_solver_stats(outcome.stats, sat_stats);
    outcome.truncated = sat_stats.truncated;
    outcome.stats.saturate_seconds = seconds_since(saturate_start);
    telemetry::observe_duration(telemetry::Histogram::query_saturate,
                                outcome.stats.saturate_seconds);

    // Snapshot the PDA size after saturation: a lazy translation grows its
    // rule set on demand, so the materialized counts are only meaningful
    // once the worklist has drained (or early-terminated).
    outcome.stats.pda_rules = translation.pda().rule_count();
    outcome.stats.pda_states = translation.pda().state_count();
    outcome.stats.lazy_translation = translation.lazy();
    outcome.stats.pda_rules_total = translation.total_rules();
    outcome.stats.pda_rules_materialized = translation.pda().rule_count();
    outcome.stats.pda_states_materialized = translation.pda().materialized_state_count();
    if (translation.lazy() && outcome.stats.pda_rules_total > 0)
        telemetry::observe(telemetry::Histogram::materialized_rule_pct,
                           100 * outcome.stats.pda_rules_materialized /
                               outcome.stats.pda_rules_total);

    const auto accept_start = Clock::now();
    const auto accepted =
        pda::find_accepted(automaton, translation.accepting_states(),
                           translation.final_header_nfa(), domain, &workspace);
    outcome.stats.accept_seconds = seconds_since(accept_start);
    if (!accepted) {
        telemetry::observe_duration(telemetry::Histogram::query_witness,
                                    outcome.stats.accept_seconds);
        outcome.stats.seconds = seconds_since(start);
        return outcome;
    }
    outcome.satisfied = true;
    outcome.weight = accepted->weight.components();

    const auto witness_start = Clock::now();
    const auto witness = pda::unroll_post_star(automaton, *accepted);
    if (witness) {
        if (auto trace = translation.witness_to_trace(*witness)) {
            outcome.feasibility =
                check_feasibility(network, *trace, query.max_failures);
            outcome.trace = std::move(trace);
        }
    }
    if (options.max_witnesses > 1) {
        // Enumerate alternative witnesses: walk the k-shortest accepted
        // configurations, keep the distinct feasible traces.
        const auto configs = pda::find_accepted_n(
            automaton, translation.accepting_states(), translation.final_header_nfa(),
            domain, options.max_witnesses * 4);
        std::optional<pda::Weight> best_feasible_weight;
        for (const auto& config : configs) {
            if (outcome.witnesses.size() >= options.max_witnesses) break;
            const auto alt_witness = pda::unroll_post_star(automaton, config);
            if (!alt_witness) continue;
            auto trace = translation.witness_to_trace(*alt_witness);
            if (!trace) continue;
            if (!check_feasibility(network, *trace, query.max_failures).feasible)
                continue;
            if (std::find(outcome.witnesses.begin(), outcome.witnesses.end(), *trace) !=
                outcome.witnesses.end())
                continue;
            if (!best_feasible_weight) best_feasible_weight = config.weight;
            outcome.witnesses.push_back(std::move(*trace));
        }
        if (!outcome.witnesses.empty()) {
            // The canonical witness (and its reported weight) is the best
            // *feasible* configuration — the minimal accepted one may have
            // been infeasible.
            outcome.trace = outcome.witnesses.front();
            outcome.feasibility =
                check_feasibility(network, *outcome.trace, query.max_failures);
            outcome.weight = best_feasible_weight->components();
        }
    } else if (outcome.trace && outcome.feasibility.feasible) {
        outcome.witnesses.push_back(*outcome.trace);
    }
    outcome.stats.witness_seconds = seconds_since(witness_start);
    telemetry::observe_duration(telemetry::Histogram::query_witness,
                                outcome.stats.accept_seconds +
                                    outcome.stats.witness_seconds);
    outcome.stats.seconds = seconds_since(start);
    return outcome;
}

telemetry::Histogram duration_histogram(EngineKind engine) {
    switch (engine) {
        case EngineKind::Moped: return telemetry::Histogram::query_duration_moped;
        case EngineKind::Dual: return telemetry::Histogram::query_duration_dual;
        case EngineKind::Weighted: return telemetry::Histogram::query_duration_weighted;
        case EngineKind::Exact: return telemetry::Histogram::query_duration_exact;
    }
    return telemetry::Histogram::query_duration_dual;
}

VerifyResult verify_impl(const Network& network, const query::Query& query,
                         const VerifyOptions& options, TranslationCache* external) {
    if (options.engine == EngineKind::Moped) {
        if (external != nullptr)
            throw model_error("the Moped engine cannot reuse a translation cache");
        if (options.weights != nullptr && !options.weights->empty())
            throw model_error("the Moped engine cannot verify weighted queries");
        return moped_verify(network, query, options);
    }
    if (options.engine == EngineKind::Exact) {
        if (external != nullptr)
            throw model_error("the exact engine cannot reuse a translation cache");
        return exact_verify(network, query, options);
    }
    if (options.engine == EngineKind::Weighted &&
        (options.weights == nullptr || options.weights->empty()))
        throw model_error("the weighted engine requires a weight expression");

    const auto start = std::chrono::steady_clock::now();
    VerifyResult result;

    // Shared across both phases: compiled query NFAs (and, when the
    // approximations coincide, the translation itself) plus solver scratch
    // memory, so the under pass reuses the over pass's high-water footprint.
    // An external cache additionally survives across verify calls — the
    // incremental what-if path rebases it between network generations.
    std::optional<TranslationCache> local;
    if (external == nullptr)
        local.emplace(network, query,
                      options.engine == EngineKind::Weighted ? options.weights : nullptr,
                      use_lazy_translation(options.translation, options.engine));
    else
        AALWINES_ASSERT(&external->network() == &network,
                        "external translation cache not rebased to this network");
    TranslationCache& cache = external != nullptr ? *external : *local;
    std::optional<pda::SolverWorkspace> local_workspace;
    if (options.workspace == nullptr) local_workspace.emplace();
    pda::SolverWorkspace& workspace =
        options.workspace != nullptr ? *options.workspace : *local_workspace;

    if (query.mode == query::Mode::Under) {
        // Under-approximation only: YES answers are trustworthy, everything
        // else is inconclusive (the under-approximation misses traces whose
        // loops double-count failed links).
        auto under = run_post_star_phase(network, query, Approximation::Under, options,
                                         cache, workspace);
        result.stats.under = under.stats;
        if (under.satisfied && under.trace && under.feasibility.feasible) {
            result.answer = Answer::Yes;
            if (options.build_trace) result.trace = std::move(under.trace);
            result.weight = std::move(under.weight);
        } else {
            result.answer = Answer::Inconclusive;
            result.note = "UNDER mode: the under-approximation found no valid trace "
                          "(not a conclusive NO)";
        }
        result.stats.total_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
        return result;
    }

    auto over = run_post_star_phase(network, query, Approximation::Over, options,
                                    cache, workspace);
    result.stats.over = over.stats;

    if (!over.satisfied) {
        result.answer = over.truncated ? Answer::Inconclusive : Answer::No;
        if (over.truncated) result.note = "over-approximation truncated (iteration cap)";
        result.stats.total_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
        return result;
    }
    if (over.trace && over.feasibility.feasible) {
        result.answer = Answer::Yes;
        if (options.build_trace) {
            result.trace = std::move(over.trace);
            result.witnesses = std::move(over.witnesses);
        }
        result.weight = std::move(over.weight);
        result.stats.total_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
        return result;
    }
    if (query.mode == query::Mode::Over) {
        // Over-approximation only: satisfiable there, but the candidate
        // witness is infeasible — report YES with a caveat (OVER trusts the
        // over-approximation; some such YES answers are spurious).
        result.answer = Answer::Yes;
        result.weight = std::move(over.weight);
        result.note = "OVER mode: satisfied in the over-approximation; the witness "
                      "exceeds the failure budget and may be spurious";
        result.stats.total_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
        return result;
    }

    // Over-approximation produced an infeasible candidate; decide with the
    // under-approximation (global failure counter in the control state).
    auto under = run_post_star_phase(network, query, Approximation::Under, options,
                                     cache, workspace);
    result.stats.under = under.stats;
    if (under.satisfied && under.trace && under.feasibility.feasible) {
        result.answer = Answer::Yes;
        if (options.build_trace) {
            result.trace = std::move(under.trace);
            result.witnesses = std::move(under.witnesses);
        }
        result.weight = std::move(under.weight);
    } else {
        result.answer = Answer::Inconclusive;
        result.note = under.truncated
                          ? "under-approximation truncated (iteration cap)"
                          : "over-approximation satisfied but witness infeasible; "
                            "under-approximation found no valid trace";
    }
    result.stats.total_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    return result;
}

} // namespace

VerifyResult verify(const Network& network, const query::Query& query,
                    const VerifyOptions& options) {
    AALWINES_SPAN("verify");
    const auto start = Clock::now();
    auto result = verify_impl(network, query, options, nullptr);
    telemetry::observe_duration(duration_histogram(options.engine), seconds_since(start));
    return result;
}

VerifyResult verify(const Network& network, const query::Query& query,
                    const VerifyOptions& options, TranslationCache& cache) {
    AALWINES_SPAN("verify");
    const auto start = Clock::now();
    auto result = verify_impl(network, query, options, &cache);
    telemetry::observe_duration(duration_histogram(options.engine), seconds_since(start));
    return result;
}

} // namespace aalwines::verify
