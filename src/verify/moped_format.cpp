#include "verify/moped_format.hpp"

#include <charconv>
#include <sstream>

#include "util/errors.hpp"

namespace aalwines::verify {

namespace {

void write_symbol(std::string& out, pda::Symbol symbol) {
    if (symbol == pda::k_no_symbol) out += "-";
    else if (symbol == pda::k_same_symbol) out += "=";
    else out += std::to_string(symbol);
}

class LineReader {
public:
    explicit LineReader(std::string_view text) : _text(text) {}

    /// Next whitespace-separated token on the current logical stream.
    std::string_view token() {
        while (_pos < _text.size() &&
               (_text[_pos] == ' ' || _text[_pos] == '\n' || _text[_pos] == '\t' ||
                _text[_pos] == '\r'))
            ++_pos;
        const auto start = _pos;
        while (_pos < _text.size() && _text[_pos] != ' ' && _text[_pos] != '\n' &&
               _text[_pos] != '\t' && _text[_pos] != '\r')
            ++_pos;
        return _text.substr(start, _pos - start);
    }

    [[nodiscard]] bool at_end() {
        while (_pos < _text.size() &&
               (_text[_pos] == ' ' || _text[_pos] == '\n' || _text[_pos] == '\t' ||
                _text[_pos] == '\r'))
            ++_pos;
        return _pos >= _text.size();
    }

private:
    std::string_view _text;
    std::size_t _pos = 0;
};

std::uint64_t parse_uint(std::string_view token) {
    std::uint64_t value = 0;
    auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || ptr != token.data() + token.size())
        throw parse_error("moped format: expected a number, got '" + std::string(token) + "'");
    return value;
}

pda::Symbol parse_symbol(std::string_view token) {
    if (token == "-") return pda::k_no_symbol;
    if (token == "=") return pda::k_same_symbol;
    return static_cast<pda::Symbol>(parse_uint(token));
}

} // namespace

std::string write_moped_format(const pda::Pda& pda) {
    std::string out;
    out.reserve(pda.rule_count() * 32 + 64);
    out += "pds " + std::to_string(pda.state_count()) + " " +
           std::to_string(pda.alphabet_size()) + "\n";
    for (pda::Symbol s = 0; s < pda.alphabet_size(); ++s) {
        const auto cls = pda.class_of(s);
        if (cls != pda::k_no_class)
            out += "class " + std::to_string(s) + " " + std::to_string(cls) + "\n";
    }
    for (const auto& rule : pda.rules()) {
        out += "rule " + std::to_string(rule.from) + " ";
        switch (rule.pre.kind) {
            case pda::PreSpec::Kind::Concrete:
                out += "c " + std::to_string(rule.pre.symbol);
                break;
            case pda::PreSpec::Kind::Class:
                out += "k " + std::to_string(rule.pre.cls);
                break;
            case pda::PreSpec::Kind::Any: out += "a 0"; break;
        }
        switch (rule.op) {
            case pda::Rule::OpKind::Pop: out += " pop "; break;
            case pda::Rule::OpKind::Swap: out += " swap "; break;
            case pda::Rule::OpKind::Push: out += " push "; break;
        }
        write_symbol(out, rule.label1);
        out += " ";
        write_symbol(out, rule.label2);
        out += " " + std::to_string(rule.to) + " " + std::to_string(rule.tag) + "\n";
    }
    return out;
}

pda::Pda parse_moped_format(std::string_view text) {
    LineReader reader(text);
    if (reader.token() != "pds") throw parse_error("moped format: missing 'pds' header");
    const auto state_count = parse_uint(reader.token());
    const auto alphabet = static_cast<pda::Symbol>(parse_uint(reader.token()));
    pda::Pda pda(alphabet);
    for (std::uint64_t i = 0; i < state_count; ++i) pda.add_state();

    while (!reader.at_end()) {
        const auto keyword = reader.token();
        if (keyword == "class") {
            const auto symbol = static_cast<pda::Symbol>(parse_uint(reader.token()));
            const auto cls = static_cast<pda::SymbolClass>(parse_uint(reader.token()));
            pda.set_symbol_class(symbol, cls);
        } else if (keyword == "rule") {
            pda::Rule rule;
            rule.from = static_cast<pda::StateId>(parse_uint(reader.token()));
            const auto pre_kind = reader.token();
            const auto pre_value = parse_uint(reader.token());
            if (pre_kind == "c")
                rule.pre = pda::PreSpec::concrete(static_cast<pda::Symbol>(pre_value));
            else if (pre_kind == "k")
                rule.pre = pda::PreSpec::of_class(static_cast<pda::SymbolClass>(pre_value));
            else if (pre_kind == "a")
                rule.pre = pda::PreSpec::any();
            else
                throw parse_error("moped format: bad pre kind '" + std::string(pre_kind) + "'");
            const auto op = reader.token();
            if (op == "pop") rule.op = pda::Rule::OpKind::Pop;
            else if (op == "swap") rule.op = pda::Rule::OpKind::Swap;
            else if (op == "push") rule.op = pda::Rule::OpKind::Push;
            else throw parse_error("moped format: bad op '" + std::string(op) + "'");
            rule.label1 = parse_symbol(reader.token());
            rule.label2 = parse_symbol(reader.token());
            rule.to = static_cast<pda::StateId>(parse_uint(reader.token()));
            rule.tag = static_cast<std::uint32_t>(parse_uint(reader.token()));
            pda.add_rule(std::move(rule));
        } else {
            throw parse_error("moped format: unknown keyword '" + std::string(keyword) + "'");
        }
    }
    return pda;
}

} // namespace aalwines::verify
