#include "verify/batch.hpp"

#include <atomic>
#include <thread>

#include "telemetry/telemetry.hpp"

namespace aalwines::verify {

std::vector<BatchItem> verify_batch(const Network& network,
                                    const std::vector<std::string>& texts,
                                    const VerifyOptions& options, std::size_t jobs) {
    AALWINES_SPAN("verify_batch");
    std::vector<BatchItem> items(texts.size());
    for (std::size_t i = 0; i < texts.size(); ++i) items[i].query_text = texts[i];
    if (texts.empty()) return items;

    if (jobs == 0) jobs = std::max(1u, std::thread::hardware_concurrency());
    jobs = std::min(jobs, texts.size());

    // Concurrency contract (no mutex on purpose): `next` is the only shared
    // mutable word — a relaxed fetch_add hands each worker a distinct index,
    // so every items[index] slot has exactly one writer.  The joins below
    // publish the slots to the caller; `network`/`options` are read-only.
    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        AALWINES_SPAN("batch_worker");
        for (;;) {
            const auto index = next.fetch_add(1, std::memory_order_relaxed);
            if (index >= items.size()) return;
            auto& item = items[index];
            try {
                const auto query = query::parse_query(item.query_text, network);
                item.result = verify(network, query, options);
            } catch (const std::exception& error) {
                item.error = error.what();
            }
        }
    };

    if (jobs == 1) {
        worker();
        return items;
    }
    std::vector<std::thread> threads;
    threads.reserve(jobs);
    for (std::size_t i = 0; i < jobs; ++i) threads.emplace_back(worker);
    for (auto& thread : threads) thread.join();
    return items;
}

} // namespace aalwines::verify
