#pragma once
// Sweep engine: amortized verification of a whole query battery — one query
// template instantiated over (endpoint pair × failure budget k × link-failure
// scenario) — against one network.
//
// Verifying the grid one cell at a time repeats work the cells share.  The
// sweep engine plans the grid and shares it across cells instead:
//
//   NFA tier       The query NFAs (path regex, L(a) ∩ H, L(c) ∩ H) depend
//                  only on the template's regexes and the label table —
//                  never on k or link state — so one CompiledNfas per
//                  endpoint pair serves every (k, scenario) cell of that
//                  pair (`SweepStats::nfa_compiles` counts pairs, not
//                  cells).
//   Frontier tier  Cells of one (pair, k) chain differ only in which links
//                  are down.  The chain keeps one lazy TranslationCache and
//                  walks the scenario axis by diffing failed-link sets:
//                  when the diff misses the materialized translation
//                  footprint and every initial-configuration candidate, the
//                  previous cell's result provably carries over without
//                  running anything (`shared_saturations`); otherwise the
//                  translation is rebased (Translation::rebase) and
//                  saturation re-enters from the surviving frontier,
//                  re-materializing only the invalidated states
//                  (`reused_frontiers`).  Answers are byte-identical to a
//                  cold run on the scenario network either way.
//   Workspace tier Each worker owns one pda::SolverWorkspace reused across
//                  all its cells (VerifyOptions::workspace), so worklist
//                  buckets, search arenas and the parallel solver's thread
//                  pool are allocated once per worker, not once per cell.
//
// Chains — one per (pair, k) — distribute over a `jobs`-sized worker pool;
// within a chain, scenarios run in spec order so each cell can reuse its
// predecessor.  The frontier tier needs a warm-capable engine (dual or
// weighted with lazy translation, exactly like delta::Reverifier); other
// engines still get the NFA and workspace tiers, with every cell cold.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "verify/engine.hpp"

namespace aalwines::verify {

/// One concrete failure scenario: the set of links administratively down,
/// addressed like the delta layer by (router, out-interface) name.  Links
/// already down in the base network stay down in every scenario.
struct SweepScenario {
    std::string name; ///< display name; "" = generated ("baseline", "s3", …)
    std::vector<std::pair<std::string, std::string>> failed_links;
};

/// The sweep grid: a query template plus its generator axes.  The template
/// may use the placeholders `{src}`, `{dst}` (endpoint-pair routers) and
/// `{k}` (failure budget); axes whose placeholder is absent simply repeat
/// the same query.  Empty axes collapse to one implicit element (one
/// unsubstituted pair / budget 0 / the baseline scenario).
struct SweepSpec {
    std::string query_template;
    std::vector<std::pair<std::string, std::string>> endpoint_pairs;
    std::vector<std::uint64_t> failure_budgets;
    std::vector<SweepScenario> scenarios;
};

/// How a cell's answer was obtained (the sweep's analogue of
/// delta::VerifyPath).
enum class CellPath : std::uint8_t {
    Cold,   ///< fresh saturation (first scenario of a chain, or not warm-capable)
    Warm,   ///< re-entered saturation from the chain's rebased frontier
    Reused, ///< previous cell's result carried over without running anything
};

[[nodiscard]] std::string_view to_string(CellPath path);

struct SweepCell {
    std::size_t pair = 0;     ///< index into SweepSpec::endpoint_pairs
    std::size_t budget = 0;   ///< index into SweepSpec::failure_budgets
    std::size_t scenario = 0; ///< index into SweepSpec::scenarios
    std::string query_text;   ///< the instantiated template
    VerifyResult result;
    std::string error;        ///< non-empty when the cell failed to parse/verify
    CellPath path = CellPath::Cold;
    double seconds = 0.0;     ///< wall clock spent on this cell
};

/// Cross-cell sharing accounting (`--stats` / the sweep JSON's "stats").
struct SweepStats {
    std::size_t cells = 0;
    std::size_t cold_saturations = 0;  ///< cells verified from scratch
    std::size_t reused_frontiers = 0;  ///< cells re-saturated from a rebased frontier
    std::size_t shared_saturations = 0;///< cells answered from an earlier saturation
    std::size_t nfa_compiles = 0;      ///< templates compiled (≤ endpoint pairs)
    std::size_t errors = 0;
    double seconds = 0.0;              ///< wall clock of the whole sweep
};

struct SweepResult {
    /// Pair-major, then budget, then scenario: cell (p, b, s) sits at
    /// (p * budgets + b) * scenarios + s.
    std::vector<SweepCell> cells;
    SweepStats stats;
};

/// Substitute `{src}`, `{dst}` and `{k}` into the template (every
/// occurrence; absent placeholders are fine).
[[nodiscard]] std::string instantiate_template(const std::string& query_template,
                                               const std::string& src,
                                               const std::string& dst,
                                               std::uint64_t failures);

/// The baseline plus one scenario per administratively-up link of `network`
/// (in link-id order, capped at `count` failure scenarios; 0 = all links) —
/// the "every single-link failure" what-if battery.
[[nodiscard]] std::vector<SweepScenario> make_single_failure_scenarios(
    const Network& network, std::size_t count = 0);

/// Execute the sweep with up to `jobs` chain workers (0 = hardware
/// concurrency).  Per-cell parse/verify errors land in the cell's `error`;
/// an unresolvable scenario (unknown router/interface) throws model_error
/// before anything runs.  Cell answers, weights and traces are identical to
/// an independent cold verification of the same query on the same scenario
/// network (stats differ: warm cells report only the re-saturated part).
[[nodiscard]] SweepResult run_sweep(const Network& network, const SweepSpec& spec,
                                    const VerifyOptions& options = {},
                                    std::size_t jobs = 0);

} // namespace aalwines::verify
