#pragma once
// Query verification engines (paper §4.2, Figure 3):
//
//   Dual     — unweighted: over-approximating post* first (conclusive NO, or
//              a candidate trace whose feasibility is checked in polynomial
//              time); on an infeasible candidate, an under-approximating
//              PDA with a global failure counter decides YES or returns
//              INCONCLUSIVE.
//   Weighted — same pipeline on a weighted PDA; the witness returned is
//              minimal w.r.t. the lexicographic weight vector (Problem 2).
//   Moped    — baseline modelling the external Moped model checker used by
//              P-Rex: the (reduced) PDA is serialised to a Moped-style text
//              format, parsed back, and solved by classical pre* saturation
//              with full saturation before the membership check.  Logical
//              properties only (requesting weights is an error).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "model/quantity.hpp"
#include "model/trace.hpp"
#include "query/query.hpp"

namespace aalwines::pda {
struct SolverStats;
struct SolverWorkspace;
}

namespace aalwines::verify {

enum class Answer : std::uint8_t { Yes, No, Inconclusive };

[[nodiscard]] std::string_view to_string(Answer answer);

enum class EngineKind : std::uint8_t { Moped, Dual, Weighted, Exact };

[[nodiscard]] std::string_view to_string(EngineKind engine);

/// Network→PDA rule materialization strategy (TranslationOptions::lazy).
enum class TranslationMode : std::uint8_t { Auto, Lazy, Eager };

[[nodiscard]] std::string_view to_string(TranslationMode mode);

/// Resolve Auto per engine: demand-driven for the native post* engines
/// (Dual, Weighted), where saturation demands only the reachable control
/// states; eager for engines that consume the whole rule set up front
/// (Moped's serialization round-trip, Exact's per-scenario enumeration and
/// pre* seeding).  Explicit Lazy/Eager is honored for every engine.
[[nodiscard]] bool use_lazy_translation(TranslationMode mode, EngineKind engine);

struct VerifyOptions {
    EngineKind engine = EngineKind::Dual;
    /// PDA reduction level: 0 = off, 1 = top-of-stack, 2 = + second symbol.
    int reduction_level = 2;
    /// Minimisation objective for EngineKind::Weighted.
    const WeightExpr* weights = nullptr;
    /// Per-saturation iteration cap (0 = unlimited); exceeding it makes the
    /// phase inconclusive — the benchmark harness's timeout stand-in.
    std::size_t max_iterations = 0;
    /// By default the Moped baseline models P-Rex's pipeline, which predates
    /// the top-of-stack reduction: the PDA is expanded and solved unreduced.
    /// Set true to feed Moped the reduced PDA instead (the architecture of
    /// the paper's Figure 3); bench_reduction quantifies the difference.
    bool moped_reduction = false;
    /// Reconstruct a witness trace on YES answers.
    bool build_trace = true;
    /// Collect up to this many distinct feasible witness traces (ordered by
    /// weight for the weighted engine).  Values > 1 disable demand-driven
    /// early termination so the saturated automaton covers alternatives.
    std::size_t max_witnesses = 1;
    /// When (and whether) network→PDA rules materialize — see
    /// use_lazy_translation for the Auto resolution.
    TranslationMode translation = TranslationMode::Auto;
    /// Saturation worker threads, forwarded to pda::SolverOptions::threads:
    /// 0 = read the AALWINES_SOLVER_THREADS environment override (default 1),
    /// pda::k_solver_threads_auto = size from the hardware, otherwise an
    /// explicit count.  Answers and minimal weights are thread-count
    /// independent.  Weighted-engine witnesses are *fully* thread-count
    /// independent too (canonical equal-weight tie-breaking, see
    /// PAutomaton::canonical_tiebreaks; multi-witness enumeration order is
    /// the documented exception); dual-engine equal-weight tie-breaks may
    /// still differ across thread counts — their early-terminated saturation
    /// frontier is itself thread-dependent.
    std::size_t solver_threads = 0;
    /// Optional caller-owned solver scratch memory reused across calls
    /// (worklist buckets, search arenas, the parallel thread pool).  The
    /// sweep engine pools one workspace per worker; nullptr = call-local.
    pda::SolverWorkspace* workspace = nullptr;
};

/// Timing and size figures for one saturation phase.  Every engine reports
/// the same semantics so `--stats` output is comparable across engines:
/// `pda_rules`/`pda_states` describe the symbolic translation PDA after any
/// reduction (the solver's direct input for dual/weighted); engines that
/// additionally expand the PDA (Moped's concrete label encoding) report that
/// backend's size in the `_expanded` fields, which stay 0 elsewhere.
struct PhaseStats {
    std::size_t pda_rules_before_reduction = 0;
    std::size_t pda_rules = 0;
    std::size_t pda_states = 0;
    std::size_t pda_rules_expanded = 0;  ///< Moped concrete backend only
    std::size_t pda_states_expanded = 0; ///< Moped concrete backend only
    std::size_t saturation_iterations = 0; ///< worklist pops (items finalized)
    std::size_t automaton_transitions = 0; ///< incl. ε-transitions
    std::size_t worklist_relaxations = 0;  ///< inserts + weight decreases
    std::size_t peak_worklist = 0;         ///< worklist length high-water mark
    /// Demand-driven materialization figures, snapshotted when the phase
    /// ends.  `pda_rules_total` is the eager-equivalent rule count (before
    /// reduction); with a lazy translation `pda_rules_materialized` /
    /// `pda_states_materialized` are the subset saturation actually
    /// demanded, and equal the full counts when eager.
    std::size_t pda_rules_total = 0;
    std::size_t pda_rules_materialized = 0;
    std::size_t pda_states_materialized = 0;
    bool lazy_translation = false;
    double seconds = 0.0;
    /// Wall-clock split of `seconds` by pipeline stage (dual/weighted
    /// engines; 0 elsewhere).  With a lazy translation, rule
    /// materialization happens on demand inside the saturation stage, so
    /// `translate_seconds` covers only the symbolic setup.
    double translate_seconds = 0.0; ///< network->PDA translation setup
    double reduce_seconds = 0.0;    ///< top-of-stack reduction
    double saturate_seconds = 0.0;  ///< initial automaton + post* saturation
    double accept_seconds = 0.0;    ///< acceptance search (find_accepted)
    double witness_seconds = 0.0;   ///< witness unroll + alternatives
    bool ran = false;
    bool truncated = false;
    // Parallel saturation (solver_threads > 1 when the sharded loop ran; the
    // round/hand-off counters stay 0 on the sequential path).
    std::size_t solver_threads = 1;
    std::size_t parallel_rounds = 0;
    std::size_t parallel_handoffs = 0;
    /// max/mean per-shard pops of the sharded solver (1.0 = perfectly
    /// balanced); 0 when the sequential path ran.  ROADMAP item 1a's
    /// work-stealing target metric.
    double shard_imbalance = 0.0;
};

/// Copy solver-side counters into a phase record (shared by every engine so
/// the fields above mean the same thing regardless of solver direction).
void absorb_solver_stats(PhaseStats& phase, const pda::SolverStats& solver);

struct VerifyStats {
    PhaseStats over;
    PhaseStats under;
    double total_seconds = 0.0;
};

struct VerifyResult {
    Answer answer = Answer::Inconclusive;
    std::optional<Trace> trace;           ///< witness on YES (when requested)
    std::vector<Trace> witnesses;         ///< all collected witnesses (max_witnesses)
    std::vector<std::uint64_t> weight;    ///< witness weight per priority (Weighted)
    VerifyStats stats;
    std::string note;                     ///< human-readable detail
};

class TranslationCache;

/// Decide the query satisfiability problem (Problem 1) — and, for the
/// weighted engine, the minimum witness problem (Problem 2).
[[nodiscard]] VerifyResult verify(const Network& network, const query::Query& query,
                                  const VerifyOptions& options = {});

/// Same, reusing a caller-owned TranslationCache — the incremental what-if
/// path: the cache outlives the call and is rebased between network
/// generations instead of rebuilt, so saturation re-materializes only the
/// invalidated frontier.  Only the native post* engines (Dual, Weighted)
/// accept an external cache; `cache` must have been built for this
/// query/weights and rebased to exactly `network`.
[[nodiscard]] VerifyResult verify(const Network& network, const query::Query& query,
                                  const VerifyOptions& options, TranslationCache& cache);

/// Implementation of the Moped baseline; used directly by benches.
[[nodiscard]] VerifyResult moped_verify(const Network& network, const query::Query& query,
                                        const VerifyOptions& options);

/// Implementation of the exact (scenario-enumerating) engine.
[[nodiscard]] VerifyResult exact_verify(const Network& network, const query::Query& query,
                                        const VerifyOptions& options);

} // namespace aalwines::verify
