#pragma once
// Translation of (MPLS network, query) into a weighted pushdown system
// (paper §4.2): control states are (last traversed link, path-NFA state)
// pairs — extended with an accumulated failure counter for the
// under-approximation — and the stack is the label stack.
//
// Over-approximation: a TE group whose activation requires c locally failed
// links contributes rules whenever c ≤ k; the total across routers may
// exceed k, hence over-approximation.  Under-approximation: the counter in
// the control state bounds the *sum* of local failures along the trace,
// which may double-count a link revisited in a loop, hence
// under-approximation (paper §4.2).

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "model/quantity.hpp"
#include "model/trace.hpp"
#include "nfa/nfa.hpp"
#include "pda/pautomaton.hpp"
#include "pda/reduction.hpp"
#include "pda/solver.hpp"
#include "query/query.hpp"

namespace aalwines::verify {

enum class Approximation : std::uint8_t { Over, Under, Exact };

/// The three query NFAs every translation needs: compiling them (regex →
/// Thompson → ε-elimination, plus two intersections with the valid-header
/// language H) is independent of the approximation, so one verify() call
/// compiles them once and shares them across the over/under dual passes —
/// and across every scenario of the exact engine.
struct CompiledNfas {
    nfa::Nfa path;           ///< B, over links
    nfa::Nfa initial_header; ///< L(a) ∩ H, over labels
    nfa::Nfa final_header;   ///< L(c) ∩ H, over labels
};

[[nodiscard]] CompiledNfas compile_query_nfas(const Network& network,
                                              const query::Query& query);

struct TranslationOptions {
    Approximation approximation = Approximation::Over;
    /// Weight vector for the minimum-witness problem; nullptr = unweighted.
    const WeightExpr* weights = nullptr;
    /// For Approximation::Exact: the concrete failure scenario.  The PDA
    /// then encodes Definition 4 exactly — only active links, only the
    /// first active TE group per entry (deciding the query requires
    /// enumerating every such scenario, which is exponential in k; this is
    /// what the over/under pair avoids).
    const std::set<LinkId>* failed_links = nullptr;
    /// Pre-compiled query NFAs (see CompiledNfas); nullptr = compile here.
    const CompiledNfas* nfas = nullptr;
};

class Translation {
public:
    Translation(const Network& network, const query::Query& query,
                const TranslationOptions& options);

    [[nodiscard]] pda::Pda& pda() noexcept { return *_pda; }
    [[nodiscard]] const pda::Pda& pda() const noexcept { return *_pda; }

    /// Run the top-of-stack reduction at `level` (0 = off).  Idempotent: a
    /// second call returns the first call's stats without touching the PDA,
    /// so a translation shared across phases reduces exactly once.
    pda::ReductionStats reduce(int level);

    /// Rule count before the first reduce() ran (== rule_count() until then).
    [[nodiscard]] std::size_t rules_before_reduction() const {
        return _reduced ? _reduce_stats.rules_before : _pda->rule_count();
    }

    /// P-automaton accepting the initial configurations
    /// {((e₁,q₁,0), h) : h ∈ L(a) ∩ H} — the post* source.
    [[nodiscard]] pda::PAutomaton make_initial_automaton() const;

    /// P-automaton accepting the final configurations
    /// {((e,q,f), h) : q accepting, h ∈ L(c) ∩ H} — the pre* source.
    [[nodiscard]] pda::PAutomaton make_final_automaton() const;

    /// Same automata built over `backend` — a PDA with identical control
    /// states (e.g. the Moped round-tripped copy of this translation).
    /// `concrete_edges` materializes every symbolic edge set into concrete
    /// per-symbol edges (checkers without symbolic alphabets need this).
    [[nodiscard]] pda::PAutomaton make_initial_automaton(const pda::Pda& backend,
                                                         bool concrete_edges = false) const;
    [[nodiscard]] pda::PAutomaton make_final_automaton(const pda::Pda& backend,
                                                       bool concrete_edges = false) const;

    /// Control states where the path NFA accepts (post* acceptance starts).
    [[nodiscard]] const std::vector<pda::StateId>& accepting_states() const {
        return _accepting_states;
    }
    /// Control states of initial configurations (pre* acceptance starts).
    [[nodiscard]] const std::vector<pda::StateId>& initial_states() const {
        return _initial_states;
    }

    [[nodiscard]] const nfa::Nfa& initial_header_nfa() const { return _nfa_a; }
    [[nodiscard]] const nfa::Nfa& final_header_nfa() const { return _nfa_c; }

    /// Rebuild the network trace from a PDA witness (either direction).
    [[nodiscard]] std::optional<Trace> witness_to_trace(const pda::PdaWitness& witness) const;

    /// Same, for a witness whose rule ids refer to `backend` (a round-trip
    /// or concrete expansion of this translation's PDA; tags and control
    /// states must be preserved).
    [[nodiscard]] std::optional<Trace> witness_to_trace(const pda::PdaWitness& witness,
                                                        const pda::Pda& backend) const;

private:
    struct ControlInfo {
        LinkId link = k_invalid_id;     ///< last traversed link (chain: the *next* link)
        std::uint32_t nfa_state = 0;
        std::uint32_t failures = 0;     ///< accumulated (under-approximation only)
        bool chain = false;             ///< intermediate state of an op chain
    };

    /// Per-rule bookkeeping for trace reconstruction: the first rule of each
    /// forwarding chain records the link the packet is sent through.
    struct StepInfo {
        LinkId out_link = k_invalid_id;
        std::uint32_t local_failures = 0;
    };

    void build_control_states();
    void build_rules();
    void add_entry_rules(LinkId in_link, Label label, const RoutingEntry& groups);
    void add_chain(pda::StateId from, Label top, const ForwardingRule& rule,
                   pda::StateId target, pda::Weight weight, std::uint32_t tag);
    [[nodiscard]] pda::Weight make_step_weight(const ForwardingRule& rule,
                                               std::uint64_t local_failures) const;
    [[nodiscard]] pda::Weight make_initial_weight(LinkId first_link) const;
    [[nodiscard]] pda::StateId control_state(LinkId link, std::uint32_t nfa_state,
                                             std::uint32_t failures) const;
    /// Attach a header NFA copy reachable from `sources`; used for both the
    /// initial and the final automaton.
    void attach_header_nfa(pda::PAutomaton& aut, const nfa::Nfa& header_nfa,
                           const std::vector<pda::StateId>& sources, bool weighted_entry,
                           bool concrete_edges) const;

    const Network* _network;
    const query::Query* _query;
    TranslationOptions _options;

    nfa::Nfa _nfa_b;            // path NFA over links
    nfa::Nfa _nfa_a;            // L(a) ∩ H over labels
    nfa::Nfa _nfa_c;            // L(c) ∩ H over labels
    /// The path NFA inverted by consumed link: (q, q') per move on `link`.
    /// Built once per translation so rule emission does not re-scan every
    /// NFA edge for every forwarding rule.
    std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> _moves_by_link;
    std::uint32_t _failure_slots = 1; // k+1 for Under, 1 for Over

    std::unique_ptr<pda::Pda> _pda;
    std::vector<ControlInfo> _control_info; // per PDA state
    std::vector<StepInfo> _steps;           // indexed by rule tag
    std::vector<pda::StateId> _accepting_states;
    std::vector<pda::StateId> _initial_states;
    bool _reduced = false;
    pda::ReductionStats _reduce_stats;
};

/// Memoizes the network→PDA translation across the over/under dual passes
/// of one verify() call.  The query NFAs are compiled once and shared, and
/// when the query's failure budget is zero the two approximations emit
/// rule-for-rule identical PDAs (both have a single failure slot), so they
/// share a single Translation — the second phase then skips translation and
/// reduction entirely.
class TranslationCache {
public:
    TranslationCache(const Network& network, const query::Query& query,
                     const WeightExpr* weights);

    /// The memoized translation for `approximation` (Over or Under only;
    /// exact scenarios each need their own Translation — share nfas()).
    [[nodiscard]] Translation& translation(Approximation approximation);

    [[nodiscard]] const CompiledNfas& nfas() const { return _nfas; }

private:
    const Network* _network;
    const query::Query* _query;
    const WeightExpr* _weights;
    CompiledNfas _nfas;
    std::unique_ptr<Translation> _over;
    std::unique_ptr<Translation> _under;
};

/// The valid-header language H = mpls* smpls ip | ip as a regex (top-first).
[[nodiscard]] nfa::Regex valid_header_regex(const LabelTable& labels);

} // namespace aalwines::verify
